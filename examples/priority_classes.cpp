// Priority classes with PERR: latency isolation for control traffic.
//
//   ./build/examples/priority_classes [--cycles N]
//
// A switch port carries two kinds of traffic:
//   class 0 (high): short control/ack packets from two flows
//   class 1 (low):  saturating bulk transfers from four flows, two of
//                   them misbehaving (oversized packets / double rate)
// PERR gives the control class strict priority at packet boundaries
// while ERR keeps the bulk class fair *internally*.  Compare with plain
// ERR (control mixed into the same round robin) and FCFS.
#include <cstdio>
#include <iostream>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "core/perr.hpp"
#include "core/registry.hpp"
#include "harness/scenario.hpp"
#include "traffic/workload.hpp"

using namespace wormsched;

namespace {

traffic::WorkloadSpec build_workload() {
  traffic::WorkloadSpec spec;
  // Flows 0-1: control (high class): sparse, tiny packets.
  for (int i = 0; i < 2; ++i) {
    traffic::FlowSpec control;
    control.arrival = traffic::ArrivalSpec::poisson(0.01);
    control.length = traffic::LengthSpec::uniform(1, 4);
    spec.flows.push_back(control);
  }
  // Flows 2-3: well-behaved bulk.
  for (int i = 0; i < 2; ++i) {
    traffic::FlowSpec bulk;
    bulk.arrival = traffic::ArrivalSpec::bernoulli(0.012);
    bulk.length = traffic::LengthSpec::uniform(16, 48);
    spec.flows.push_back(bulk);
  }
  // Flow 4: oversized packets; flow 5: double rate.
  traffic::FlowSpec big;
  big.arrival = traffic::ArrivalSpec::bernoulli(0.012);
  big.length = traffic::LengthSpec::uniform(64, 128);
  spec.flows.push_back(big);
  traffic::FlowSpec fast;
  fast.arrival = traffic::ArrivalSpec::bernoulli(0.024);
  fast.length = traffic::LengthSpec::uniform(16, 48);
  spec.flows.push_back(fast);
  return spec;
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli("PERR priority-class isolation demo");
  cli.add_option("cycles", "simulated cycles", "300000");
  if (!cli.parse(argc, argv)) return 1;
  const Cycle cycles = cli.get_uint("cycles");

  const auto workload = build_workload();
  const auto trace = traffic::generate_trace(workload, cycles, 17);
  std::printf("offered load: %.2f flits/cycle (bulk saturates the port)\n\n",
              workload.offered_load());

  AsciiTable table("mean / p99 delay (cycles) per flow");
  table.set_header({"scheduler", "ctrl-0 mean", "ctrl-0 p99", "bulk-2 mean",
                    "big-4 mean", "fast-5 mean"});
  const auto report = [&](const harness::ScenarioResult& r) {
    table.add_row(r.scheduler_name,
                  fixed(r.delays.flow(FlowId(0)).mean(), 1),
                  fixed(r.delays.flow_quantile(FlowId(0), 0.99), 1),
                  fixed(r.delays.flow(FlowId(2)).mean(), 1),
                  fixed(r.delays.flow(FlowId(4)).mean(), 1),
                  fixed(r.delays.flow(FlowId(5)).mean(), 1));
  };

  harness::ScenarioConfig config;
  config.horizon = cycles;
  // PERR: flows 0-1 in class 0, the rest in class 1.
  config.sched.perr_priorities = {0, 0, 1, 1, 1, 1};
  report(harness::run_scenario("perr", config, trace));
  config.sched.perr_priorities.clear();
  report(harness::run_scenario("err", config, trace));
  report(harness::run_scenario("fcfs", config, trace));
  table.print(std::cout);

  std::cout <<
      "\nWhat to look for:\n"
      "  PERR: control packets wait at most for one in-flight bulk packet\n"
      "        (mean delay tens of cycles; p99 bounded by the largest bulk\n"
      "        packet), regardless of how deep the bulk backlog grows.\n"
      "  ERR:  control is fair but not prioritized — it waits a full round\n"
      "        of bulk opportunities, so its delay tracks the bulk packet\n"
      "        sizes.\n"
      "  FCFS: control queues behind the entire arrival backlog.\n"
      "  In every case ERR machinery keeps the *bulk* class fair: flow 4's\n"
      "  oversized packets and flow 5's double rate pay for themselves.\n";
  return 0;
}
