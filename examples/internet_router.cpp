// Internet router demo: ERR as a datagram scheduler.
//
//   ./build/examples/internet_router [--scheduler err] [--cycles N]
//
// The paper notes (Secs. 1, 6) that ERR "may also be implemented in
// Internet routers for fair scheduling of various flows of traffic with
// each flow corresponding to a source-destination pair".  This demo
// models an output port shared by:
//   flow 0  a well-behaved video stream   (steady rate, mid packets, w=2)
//   flow 1  a bulk transfer               (saturating, large packets)
//   flow 2  a bursty web/misc aggregate   (on-off, small packets)
//   flow 3  a misbehaving UDP blast       (2x its fair rate)
// and reports goodput and delay per flow under a chosen discipline.
#include <cstdio>
#include <iostream>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "harness/scenario.hpp"
#include "traffic/workload.hpp"

using namespace wormsched;

int main(int argc, char** argv) {
  CliParser cli("differentiated-services router port demo");
  cli.add_option("scheduler", "err|drr|pbrr|fbrr|fcfs|scfq|vc|wfq|wf2q+",
                 "err");
  cli.add_option("cycles", "simulated cycles", "200000");
  cli.add_flag("compare", "run all schedulers and summarize");
  if (!cli.parse(argc, argv)) return 1;
  const Cycle cycles = cli.get_uint("cycles");

  traffic::WorkloadSpec workload;
  {
    traffic::FlowSpec video;
    video.arrival = traffic::ArrivalSpec::periodic(0.02);
    video.length = traffic::LengthSpec::constant(12);
    traffic::FlowSpec bulk;
    bulk.arrival = traffic::ArrivalSpec::bernoulli(0.02);
    bulk.length = traffic::LengthSpec::uniform(32, 64);
    traffic::FlowSpec web;
    web.arrival = traffic::ArrivalSpec::on_off(0.15, 400, 600);
    web.length = traffic::LengthSpec::truncated_exponential(0.3, 1, 16);
    traffic::FlowSpec blast;
    blast.arrival = traffic::ArrivalSpec::bernoulli(0.1);
    blast.length = traffic::LengthSpec::constant(8);
    workload.flows = {video, bulk, web, blast};
  }
  const auto trace = traffic::generate_trace(workload, cycles, 7);

  const auto run = [&](std::string_view name) {
    harness::ScenarioConfig config;
    config.horizon = cycles;
    config.weights = {2.0, 1.0, 1.0, 1.0};  // video gets a premium class
    config.sched.drr_quantum = 64;
    return harness::run_scenario(name, config, trace);
  };

  const auto offered = [&](std::uint32_t f) {
    return static_cast<double>(trace.flow_flits(FlowId(f)));
  };

  if (cli.get_flag("compare")) {
    AsciiTable table("mean delay (cycles) per flow, all disciplines");
    table.set_header({"scheduler", "video (w=2)", "bulk", "web burst",
                      "udp blast"});
    for (const auto name : core::scheduler_names()) {
      const auto r = run(name);
      table.add_row(name, fixed(r.delays.flow(FlowId(0)).mean(), 1),
                    fixed(r.delays.flow(FlowId(1)).mean(), 1),
                    fixed(r.delays.flow(FlowId(2)).mean(), 1),
                    fixed(r.delays.flow(FlowId(3)).mean(), 1));
    }
    table.print(std::cout);
    return 0;
  }

  const auto result = run(cli.get("scheduler"));
  std::printf("scheduler: %s, %llu cycles, offered load %.2f flits/cycle\n\n",
              result.scheduler_name.c_str(),
              static_cast<unsigned long long>(cycles),
              workload.offered_load());
  AsciiTable table("per-flow goodput and delay");
  table.set_header({"flow", "offered flits", "served flits", "served %",
                    "mean delay", "p99 delay"});
  const char* names[4] = {"video (w=2)", "bulk", "web burst", "udp blast"};
  for (std::uint32_t f = 0; f < 4; ++f) {
    const auto served =
        static_cast<double>(result.service_log.total(FlowId(f)));
    table.add_row(names[f], fixed(offered(f), 0), fixed(served, 0),
                  fixed(100.0 * served / offered(f), 1),
                  fixed(result.delays.flow(FlowId(f)).mean(), 1),
                  fixed(result.delays.flow_quantile(FlowId(f), 0.99), 1));
  }
  table.print(std::cout);
  std::cout <<
      "\nUnder ERR the UDP blast cannot push the video stream's delay up:\n"
      "flows demanding less than their fair share are served at their\n"
      "demand, and the blast absorbs the queueing (try --scheduler fcfs\n"
      "or --compare to see the difference).\n";
  return 0;
}
