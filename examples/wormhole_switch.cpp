// Wormhole switch demo: why ERR charges occupancy, not length.
//
//   ./build/examples/wormhole_switch [--cycles N] [--stall P]
//
// Four input queues contend for one output whose downstream stalls
// randomly (a congested next-hop switch).  Because wormhole switching
// forbids interleaving, a stalled worm blocks everyone (paper Sec. 1) —
// and a packet's output occupancy can far exceed its flit count.  The
// demo runs the same traffic through every arbiter and shows how only the
// cycle-charging ERR equalizes occupancy.
#include <cstdio>
#include <iostream>

#include "common/cli.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "wormhole/switch.hpp"

using namespace wormsched;
using namespace wormsched::wormhole;

int main(int argc, char** argv) {
  CliParser cli("wormhole switch arbitration demo");
  cli.add_option("cycles", "simulated cycles", "100000");
  cli.add_option("stall", "downstream stall probability", "0.3");
  if (!cli.parse(argc, argv)) return 1;
  const Cycle cycles = cli.get_uint("cycles");

  // Input 0 sends long worms (16 flits), inputs 1-3 short ones (2-4).
  const Flits lengths[4] = {16, 4, 3, 2};

  AsciiTable table("4-input wormhole switch, stall probability " +
                   cli.get("stall"));
  table.set_header({"arbiter", "occ share in0", "occ share in1",
                    "occ share in2", "occ share in3", "flits in0",
                    "mean delay in3"});
  for (const char* arbiter : {"err-cycles", "err-flits", "rr", "fcfs"}) {
    SwitchConfig config;
    config.num_inputs = 4;
    config.arbiter = arbiter;
    config.stall_probability = cli.get_double("stall");
    config.seed = 3;
    WormholeSwitch sw(config);
    // Saturate every input for the whole run.
    for (std::uint32_t f = 0; f < 4; ++f) {
      const auto count = static_cast<int>(
          cycles / static_cast<Cycle>(lengths[f]) + 1);
      for (int k = 0; k < count; ++k) sw.inject(0, FlowId(f), lengths[f]);
    }
    for (Cycle t = 0; t < cycles; ++t) sw.tick(t);

    double total_occ = 0;
    for (std::uint32_t f = 0; f < 4; ++f)
      total_occ += static_cast<double>(sw.occupancy_cycles(FlowId(f)));
    const auto share = [&](std::uint32_t f) {
      return fixed(
          static_cast<double>(sw.occupancy_cycles(FlowId(f))) / total_occ, 3);
    };
    table.add_row(arbiter, share(0), share(1), share(2), share(3),
                  static_cast<long long>(sw.forwarded_flits(FlowId(0))),
                  fixed(sw.delay(FlowId(3)).mean(), 1));
  }
  table.print(std::cout);
  std::cout <<
      "\nWhat to look for:\n"
      "  err-cycles: occupancy shares ~0.25 each — the output *time* is\n"
      "              divided fairly even though packet costs are unknown\n"
      "              in advance and inflated unpredictably by stalls.\n"
      "  err-flits:  flit counts equalize instead, so input 0 (long worms)\n"
      "              holds the output proportionally longer.\n"
      "  rr:         one packet per visit — input 0 gets ~16/25 of the\n"
      "              occupancy, the PBRR unfairness of paper Fig. 4(a).\n"
      "  fcfs:       shares follow injection order, not fairness.\n";
  return 0;
}
