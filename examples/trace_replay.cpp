// Trace record & replay: archive a workload, then compare disciplines on
// the byte-identical arrival sequence.
//
//   ./build/examples/trace_replay                  # generate + compare
//   ./build/examples/trace_replay --trace my.csv   # reuse a saved trace
//
// This is the experimental-methodology example: scheduler comparisons in
// this repository never re-sample traffic per discipline — every figure
// replays one trace into each scheduler, so differences are attributable
// to the algorithm alone.  The CSV trace format ('cycle,flow,length') can
// be produced by any external tool.
#include <cstdio>
#include <filesystem>
#include <iostream>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "harness/scenario.hpp"
#include "metrics/fairness.hpp"
#include "traffic/trace_io.hpp"

using namespace wormsched;

int main(int argc, char** argv) {
  CliParser cli("record/replay scheduler comparison");
  cli.add_option("trace", "trace CSV to replay (generated if absent)",
                 "trace_replay_demo.csv");
  cli.add_option("cycles", "horizon when generating", "100000");
  cli.add_option("seed", "generation seed", "42");
  if (!cli.parse(argc, argv)) return 1;

  const std::string path = cli.get("trace");
  const Cycle cycles = cli.get_uint("cycles");

  if (!std::filesystem::exists(path)) {
    // Three flows with deliberately mismatched behaviour.
    traffic::WorkloadSpec spec;
    traffic::FlowSpec small_steady;
    small_steady.arrival = traffic::ArrivalSpec::bernoulli(0.05);
    small_steady.length = traffic::LengthSpec::uniform(1, 8);
    traffic::FlowSpec large_steady;
    large_steady.arrival = traffic::ArrivalSpec::bernoulli(0.012);
    large_steady.length = traffic::LengthSpec::uniform(16, 48);
    traffic::FlowSpec bursty;
    bursty.arrival = traffic::ArrivalSpec::on_off(0.3, 300, 700);
    bursty.length = traffic::LengthSpec::uniform(1, 16);
    spec.flows = {small_steady, large_steady, bursty};
    const auto trace =
        traffic::generate_trace(spec, cycles, cli.get_uint("seed"));
    traffic::save_trace_file(path, trace);
    std::printf("generated %zu arrivals -> %s\n", trace.entries.size(),
                path.c_str());
  }

  const traffic::Trace trace = traffic::load_trace_file(path);
  std::printf("replaying %s: %zu packets, %lld flits, %zu flows\n\n",
              path.c_str(), trace.entries.size(),
              static_cast<long long>(trace.total_flits()), trace.num_flows);

  const Cycle horizon =
      trace.entries.empty() ? 1 : trace.entries.back().cycle + 1;
  AsciiTable table("same trace, every discipline");
  table.set_header({"scheduler", "mean delay", "p95 delay",
                    "FM over [10%, end) (flits)"});
  for (const auto name : core::scheduler_names()) {
    harness::ScenarioConfig config;
    config.horizon = horizon;
    config.drain = true;
    config.sched.drr_quantum = 64;
    const auto result = harness::run_scenario(name, config, trace);
    const Flits fm = metrics::fairness_measure(
        result.service_log, result.activity, horizon / 10, horizon);
    table.add_row(name, fixed(result.delays.overall().mean(), 1),
                  fixed(result.delays.quantile(0.95), 1), fm);
  }
  table.print(std::cout);
  std::cout << "\nDelete " << path << " to regenerate a fresh workload.\n";
  return 0;
}
