// Mesh network demo: a 4x4 wormhole mesh with ERR output arbitration.
//
//   ./build/examples/mesh_network [--pattern uniform|transpose|hotspot]
//                                 [--arbiter err-cycles] [--rate R]
//
// Drives the full router substrate (virtual channels, credit flow
// control, DOR routing) with a synthetic traffic pattern and reports
// throughput and latency, including the per-source breakdown that makes
// arbitration fairness visible under a hotspot.
#include <algorithm>
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "sim/engine.hpp"
#include "wormhole/network.hpp"
#include "wormhole/patterns.hpp"

using namespace wormsched;
using namespace wormsched::wormhole;

int main(int argc, char** argv) {
  CliParser cli("4x4 wormhole mesh demo");
  cli.add_option("pattern", "uniform|transpose|bitcomp|hotspot|neighbor",
                 "hotspot");
  cli.add_option("arbiter", "err-cycles|err-flits|rr|fcfs", "err-cycles");
  cli.add_option("rate", "packets per node per cycle", "0.02");
  cli.add_option("cycles", "injection cycles", "50000");
  cli.add_option("torus", "1 = torus instead of mesh", "0");
  if (!cli.parse(argc, argv)) return 1;

  NetworkConfig config;
  config.topo = cli.get_int("torus") != 0 ? TopologySpec::torus(4, 4)
                                          : TopologySpec::mesh(4, 4);
  config.router.arbiter = cli.get("arbiter");
  Network net(config);

  NetworkTrafficSource::Config traffic_config;
  traffic_config.packets_per_node_per_cycle = cli.get_double("rate");
  traffic_config.lengths = traffic::LengthSpec::uniform(1, 16);
  traffic_config.inject_until = cli.get_uint("cycles");
  const std::string pattern = cli.get("pattern");
  if (pattern == "uniform") {
    traffic_config.pattern.kind = PatternSpec::Kind::kUniform;
  } else if (pattern == "transpose") {
    traffic_config.pattern.kind = PatternSpec::Kind::kTranspose;
  } else if (pattern == "bitcomp") {
    traffic_config.pattern.kind = PatternSpec::Kind::kBitComplement;
  } else if (pattern == "neighbor") {
    traffic_config.pattern.kind = PatternSpec::Kind::kNeighbor;
  } else {
    traffic_config.pattern.kind = PatternSpec::Kind::kHotspot;
    traffic_config.pattern.hotspot = NodeId(5);
    traffic_config.pattern.hotspot_fraction = 0.5;
  }
  NetworkTrafficSource source(net, traffic_config);

  sim::Engine engine;
  engine.add_component(source);
  engine.add_component(net);
  engine.run_until(cli.get_uint("cycles"));
  const Cycle end = engine.run_until_idle(cli.get_uint("cycles") * 20);

  std::printf("%s, %s arbitration, %s pattern\n",
              config.topo.describe().c_str(), cli.get("arbiter").c_str(),
              traffic_config.pattern.describe().c_str());
  std::printf("injected %llu packets, delivered %zu, drained at cycle %llu\n",
              static_cast<unsigned long long>(net.injected_packets()),
              net.delivered().size(), static_cast<unsigned long long>(end));
  const auto overall = net.latency_overall();
  std::printf("latency: mean %.1f, min %.0f, max %.0f cycles\n\n",
              overall.mean(), overall.min(), overall.max());

  AsciiTable table("per-source delivered flits and latency");
  table.set_header({"node", "delivered flits", "mean latency"});
  const auto flits = net.delivered_flits_by_flow(net.topology().num_nodes());
  for (std::uint32_t n = 0; n < net.topology().num_nodes(); ++n) {
    const auto lat = net.latency_by_source(NodeId(n));
    table.add_row(n, static_cast<long long>(flits[n]),
                  lat.count() == 0 ? std::string("-") : fixed(lat.mean(), 1));
  }
  table.print(std::cout);

  // Hottest output ports (per-router observability counters).
  struct Hot {
    std::uint32_t node;
    wormhole::Direction dir;
    wormhole::Router::PortStats stats;
  };
  std::vector<Hot> hot;
  for (std::uint32_t n = 0; n < net.topology().num_nodes(); ++n) {
    for (std::uint32_t d = 0; d < wormhole::kNumDirections; ++d) {
      const auto dir = static_cast<wormhole::Direction>(d);
      hot.push_back(Hot{n, dir, net.router(NodeId(n)).port_stats(dir)});
    }
  }
  std::sort(hot.begin(), hot.end(),
            [](const Hot& a, const Hot& b) { return a.stats.flits > b.stats.flits; });
  AsciiTable hot_table("hottest output ports");
  hot_table.set_header({"router", "port", "flits", "busy cycles",
                        "starved cycles", "packet grants"});
  for (std::size_t i = 0; i < std::min<std::size_t>(8, hot.size()); ++i) {
    const Hot& h = hot[i];
    hot_table.add_row(h.node, direction_name(h.dir),
                      static_cast<unsigned long long>(h.stats.flits),
                      static_cast<unsigned long long>(h.stats.busy),
                      static_cast<unsigned long long>(h.stats.starved),
                      static_cast<unsigned long long>(h.stats.grants));
  }
  hot_table.print(std::cout);
  return 0;
}
