// Quickstart: schedule packets from three flows with Elastic Round Robin.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
//
// The example walks through the library's central abstraction (paper
// Sec. 1): n flows with FIFO packet queues, one output that moves one flit
// per cycle, and a scheduler that decides which packet to dequeue next —
// without ever looking at a packet's length before it has been sent.
#include <cstdio>

#include "core/err.hpp"
#include "metrics/delay.hpp"
#include "metrics/service_log.hpp"

using namespace wormsched;

int main() {
  // Three flows.  Flow 2 sends packets 4x the size of the others — the
  // classic unfairness trigger for naive round robin.
  core::ErrScheduler scheduler(core::ErrConfig{3});

  metrics::ServiceLog log(3, /*flit_bytes=*/8);
  metrics::DelayStats delays(3);
  metrics::ObserverChain observers;
  observers.add(log);
  observers.add(delays);
  scheduler.set_observer(&observers);

  // Enqueue a burst at cycle 0: 12 small packets for flows 0 and 1,
  // 3 big ones for flow 2.  Total work: 2*12*8 + 3*32 = 288 flits.
  PacketId::rep_type next_id = 0;
  const auto enqueue = [&](Cycle now, std::uint32_t flow, Flits length) {
    scheduler.enqueue(now, core::Packet{.id = PacketId(next_id++),
                                        .flow = FlowId(flow),
                                        .length = length,
                                        .arrival = now});
  };
  for (int k = 0; k < 12; ++k) {
    enqueue(0, 0, 8);
    enqueue(0, 1, 8);
  }
  for (int k = 0; k < 3; ++k) enqueue(0, 2, 32);

  // Serve one flit per cycle until everything drains.
  Cycle now = 0;
  while (!scheduler.idle()) {
    (void)scheduler.pull_flit(now);
    ++now;
  }

  std::printf("drained %lld flits in %llu cycles\n\n",
              static_cast<long long>(log.grand_total()),
              static_cast<unsigned long long>(now));
  std::printf("%-6s %12s %12s %16s\n", "flow", "flits", "bytes",
              "mean delay (cy)");
  for (std::uint32_t f = 0; f < 3; ++f) {
    std::printf("%-6u %12lld %12llu %16.1f\n", f,
                static_cast<long long>(log.total(FlowId(f))),
                static_cast<unsigned long long>(log.total_bytes(FlowId(f))),
                delays.flow(FlowId(f)).mean());
  }
  std::printf(
      "\nDespite flow 2's 32-flit packets, ERR gives each flow an equal\n"
      "flit share over the busy period (96 flits each) — the overshoot a\n"
      "big packet causes in one round is repaid in the next (paper Sec. 3).\n");
  return 0;
}
