// Round trace: reproduces the paper's Figure 3 — a cycle-by-round view of
// ERR's allowances, surplus counts and MaxSC over three flows with
// scripted packet sizes.
//
//   ./build/examples/round_trace [--rounds N]
//
// The same numbers are locked in by tests/core/err_trace_test.cpp; this
// executable renders them as the paper's figure does.
#include <iostream>
#include <vector>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "core/err.hpp"

using namespace wormsched;

int main(int argc, char** argv) {
  CliParser cli("ERR round trace (paper Fig. 3)");
  cli.add_option("rounds", "rounds to display", "3");
  if (!cli.parse(argc, argv)) return 1;
  const std::size_t rounds = cli.get_uint("rounds");

  core::ErrScheduler scheduler(core::ErrConfig{3});
  std::vector<core::ErrOpportunity> log;
  scheduler.policy().set_opportunity_listener(
      [&](const core::ErrOpportunity& r) { log.push_back(r); });

  // The scripted queues (flits per packet).  Every flow stays backlogged
  // through round 3; the trailing 1-flit packets keep the queues nonempty.
  const std::vector<std::vector<Flits>> queues = {
      {32, 16, 8, 1},
      {24, 8, 8, 8, 8, 1},
      {12, 20, 4, 6, 6, 6, 1},
  };
  PacketId::rep_type next_id = 0;
  for (std::uint32_t f = 0; f < queues.size(); ++f)
    for (const Flits len : queues[f])
      scheduler.enqueue(0, core::Packet{.id = PacketId(next_id++),
                                        .flow = FlowId(f),
                                        .length = len,
                                        .arrival = 0});

  Cycle now = 0;
  while (!scheduler.idle() &&
         (log.empty() || log.back().round <= rounds)) {
    (void)scheduler.pull_flit(now);
    ++now;
  }

  AsciiTable table("ERR execution trace (three flows, scripted packets)");
  table.set_header({"round", "flow", "allowance A_i", "Sent_i",
                    "SC_i = Sent - A", "MaxSC so far"});
  std::size_t last_round = 1;
  for (const auto& r : log) {
    if (r.round > rounds) break;
    if (r.round != last_round) {
      table.add_rule();
      last_round = r.round;
    }
    table.add_row(r.round, r.flow.value(), fixed(r.allowance, 0),
                  fixed(r.sent, 0), fixed(r.surplus_count, 0),
                  fixed(r.max_sc_so_far, 0));
  }
  table.print(std::cout);
  std::cout <<
      "\nReading the table (paper Sec. 3):\n"
      "  round 1: every allowance is 1, so each flow sends exactly one\n"
      "           packet and records its overshoot in SC.\n"
      "  round 2: A_i = 1 + MaxSC(prev) - SC_i — flows that got little\n"
      "           service receive proportionately more opportunity.\n"
      "  the flow holding the round's MaxSC always restarts at A = 1.\n";
  return 0;
}
