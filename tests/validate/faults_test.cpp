// Unit tests for the deterministic fault injector: every answer must be a
// pure function of (spec, cycle, node) — that purity is what lets the
// dense and active-set network paths observe identical fault schedules —
// and the quarantine-release contract (non-decreasing release cycles)
// must hold or the network's FIFO quarantine breaks.
#include <gtest/gtest.h>

#include <vector>

#include "traffic/workload.hpp"
#include "validate/faults.hpp"

namespace wormsched::validate {
namespace {

FaultSpec all_on(std::uint64_t seed) {
  FaultSpec spec = FaultSpec::chaos(seed);
  spec.num_nodes = 16;
  return spec;
}

TEST(FaultsTest, ChaosSpecEnablesEveryFaultClass) {
  const FaultSpec spec = FaultSpec::chaos(7);
  EXPECT_TRUE(spec.enabled);
  EXPECT_GT(spec.link_stall_rate, 0.0);
  EXPECT_GT(spec.credit_stall_rate, 0.0);
  EXPECT_GT(spec.churn_rate, 0.0);
  EXPECT_GT(spec.burst_rate, 0.0);
  EXPECT_FALSE(spec.describe().empty());
}

TEST(FaultsTest, AnswersAreDeterministicInTheSpec) {
  const ScheduledFaults a(all_on(42));
  const ScheduledFaults b(all_on(42));
  for (Cycle t = 0; t < 1000; ++t) {
    ASSERT_EQ(a.link_stalled(t), b.link_stalled(t)) << "cycle " << t;
    for (std::uint32_t n = 0; n < 16; ++n) {
      const NodeId node(n);
      ASSERT_EQ(a.credit_hold_cycles(t, node), b.credit_hold_cycles(t, node));
      ASSERT_EQ(a.injection_multiplier(t, node),
                b.injection_multiplier(t, node));
      ASSERT_EQ(a.burst_destination(t, node), b.burst_destination(t, node));
    }
  }
}

TEST(FaultsTest, AnswersArePureAcrossRepeatedQueries) {
  const ScheduledFaults f(all_on(9));
  // Query out of order and repeatedly: a stateful implementation (cursor,
  // cached epoch) would diverge between interleavings.
  const std::vector<Cycle> cycles = {500, 3, 500, 64, 63, 3, 1000, 500};
  std::vector<Cycle> first;
  for (const Cycle t : cycles)
    first.push_back(f.credit_hold_cycles(t, NodeId(5)));
  for (std::size_t i = 0; i < cycles.size(); ++i)
    EXPECT_EQ(f.credit_hold_cycles(cycles[i], NodeId(5)), first[i]);
  EXPECT_EQ(first[0], first[2]);
  EXPECT_EQ(first[0], first[7]);
}

TEST(FaultsTest, DifferentSeedsGiveDifferentSchedules) {
  const ScheduledFaults a(all_on(1));
  const ScheduledFaults b(all_on(2));
  bool differs = false;
  for (Cycle t = 0; t < 4096 && !differs; ++t) {
    if (a.link_stalled(t) != b.link_stalled(t) ||
        a.credit_hold_cycles(t, NodeId(0)) !=
            b.credit_hold_cycles(t, NodeId(0)))
      differs = true;
  }
  EXPECT_TRUE(differs);
}

TEST(FaultsTest, StallLengthsAreClampedToTheWindow) {
  FaultSpec spec = all_on(3);
  spec.window = 32;
  spec.link_stall_cycles = 1000;    // longer than the epoch
  spec.credit_stall_cycles = 1000;  // longer than the epoch
  spec.link_stall_rate = 1.0;
  spec.credit_stall_rate = 1.0;
  const ScheduledFaults f(spec);
  for (Cycle t = 0; t < 512; ++t) {
    const Cycle hold = f.credit_hold_cycles(t, NodeId(1));
    EXPECT_LE(hold, spec.window) << "cycle " << t;
  }
  // Clamped to the epoch, the release lands exactly on the next epoch
  // boundary — never later, so releases stay monotone across epochs.
  EXPECT_EQ(f.credit_hold_cycles(spec.window - 1, NodeId(1)), 1u);
}

TEST(FaultsTest, QuarantineReleaseCyclesAreMonotone) {
  FaultSpec spec = all_on(11);
  spec.credit_stall_rate = 1.0;
  const ScheduledFaults f(spec);
  for (std::uint32_t n = 0; n < 8; ++n) {
    Cycle last_release = 0;
    for (Cycle t = 0; t < 1024; ++t) {
      const Cycle hold = f.credit_hold_cycles(t, NodeId(n));
      if (hold == 0) continue;
      const Cycle release = t + hold;
      // Non-decreasing release per node keeps the network's quarantine a
      // FIFO (the FaultModel contract).
      EXPECT_GE(release, last_release) << "node " << n << " cycle " << t;
      last_release = release;
    }
  }
}

TEST(FaultsTest, ZeroRatesProduceNoFaults) {
  FaultSpec spec;
  spec.enabled = true;
  spec.num_nodes = 16;  // all rates left at 0
  const ScheduledFaults f(spec);
  for (Cycle t = 0; t < 512; ++t) {
    EXPECT_FALSE(f.link_stalled(t));
    for (std::uint32_t n = 0; n < 16; ++n) {
      EXPECT_EQ(f.credit_hold_cycles(t, NodeId(n)), 0u);
      EXPECT_DOUBLE_EQ(f.injection_multiplier(t, NodeId(n)), 1.0);
      EXPECT_FALSE(f.burst_destination(t, NodeId(n)).has_value());
    }
  }
}

TEST(FaultsTest, BurstDestinationsStayInRange) {
  FaultSpec spec = all_on(5);
  spec.burst_rate = 1.0;
  spec.num_nodes = 7;
  const ScheduledFaults f(spec);
  bool saw_burst = false;
  for (Cycle t = 0; t < 2048; t += 13) {
    for (std::uint32_t n = 0; n < 7; ++n) {
      const auto dest = f.burst_destination(t, NodeId(n));
      if (!dest.has_value()) continue;
      saw_burst = true;
      EXPECT_LT(dest->value(), 7u);
    }
  }
  EXPECT_TRUE(saw_burst);

  // Without a fabric size there is nothing to redirect to.
  spec.num_nodes = 0;
  const ScheduledFaults g(spec);
  for (Cycle t = 0; t < 256; ++t)
    EXPECT_FALSE(g.burst_destination(t, NodeId(0)).has_value());
}

traffic::Trace sample_trace() {
  traffic::WorkloadSpec spec;
  for (int i = 0; i < 3; ++i) {
    traffic::FlowSpec f;
    f.arrival = traffic::ArrivalSpec::bernoulli(0.05);
    f.length = traffic::LengthSpec::uniform(1, 8);
    spec.flows.push_back(f);
  }
  return traffic::generate_trace(spec, 4000, 17);
}

TEST(FaultsTest, ApplyTraceFaultsIsDeterministic) {
  const traffic::Trace input = sample_trace();
  const FaultSpec spec = FaultSpec::chaos(23);
  const traffic::Trace a = apply_trace_faults(spec, input);
  const traffic::Trace b = apply_trace_faults(spec, input);
  ASSERT_EQ(a.entries.size(), b.entries.size());
  for (std::size_t i = 0; i < a.entries.size(); ++i) {
    EXPECT_EQ(a.entries[i].cycle, b.entries[i].cycle);
    EXPECT_EQ(a.entries[i].flow.value(), b.entries[i].flow.value());
    EXPECT_EQ(a.entries[i].length, b.entries[i].length);
  }
}

TEST(FaultsTest, ApplyTraceFaultsKeepsTheTraceSorted) {
  const traffic::Trace out =
      apply_trace_faults(FaultSpec::chaos(29), sample_trace());
  ASSERT_FALSE(out.entries.empty());
  for (std::size_t i = 1; i < out.entries.size(); ++i)
    EXPECT_GE(out.entries[i].cycle, out.entries[i - 1].cycle);
}

TEST(FaultsTest, ApplyTraceFaultsActuallyPerturbs) {
  const traffic::Trace input = sample_trace();
  const traffic::Trace out = apply_trace_faults(FaultSpec::chaos(31), input);
  bool changed = out.entries.size() != input.entries.size();
  for (std::size_t i = 0; !changed && i < input.entries.size(); ++i)
    changed = out.entries[i].cycle != input.entries[i].cycle ||
              out.entries[i].flow.value() != input.entries[i].flow.value();
  EXPECT_TRUE(changed);
}

TEST(FaultsTest, DisabledSpecPassesTraceThrough) {
  const traffic::Trace input = sample_trace();
  const traffic::Trace out = apply_trace_faults(FaultSpec{}, input);
  ASSERT_EQ(out.entries.size(), input.entries.size());
  for (std::size_t i = 0; i < input.entries.size(); ++i) {
    EXPECT_EQ(out.entries[i].cycle, input.entries[i].cycle);
    EXPECT_EQ(out.entries[i].flow.value(), input.entries[i].flow.value());
    EXPECT_EQ(out.entries[i].length, input.entries[i].length);
  }
}

}  // namespace
}  // namespace wormsched::validate
