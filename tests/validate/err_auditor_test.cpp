// Unit tests for the ERR invariant auditor: hand-built opportunity
// streams that satisfy the paper's bounds must audit clean, and a stream
// corrupted in each specific way must trip the matching check.  The
// corruption tests construct the AuditLog in kCount mode so detection is
// testable in Debug builds too (kDefault would abort on the first hit).
#include <gtest/gtest.h>

#include <string_view>

#include "harness/scenario.hpp"
#include "traffic/workload.hpp"
#include "validate/err_auditor.hpp"
#include "validate/violation.hpp"

namespace wormsched::validate {
namespace {

using core::ErrOpportunity;

bool has_check(const AuditLog& log, std::string_view check) {
  for (const auto& v : log.kept())
    if (v.check == check) return true;
  return false;
}

std::string digest(const AuditLog& log) {
  std::string out;
  for (const auto& v : log.kept()) out += "[" + v.check + "] " + v.detail + "\n";
  return out;
}

/// Record builder: the positional arguments mirror the allowance equation
/// A = w(1 + prev_max) - SC(r-1); sent/sc/max_sc/mc are the opportunity's
/// outcome (sc = post-reset surplus, mc = largest single charge).
ErrOpportunity rec(std::size_t round, std::uint32_t flow, double w,
                   double prev, double allowance, double sent, double sc,
                   double max_sc, double mc, std::size_t active_after,
                   bool deactivated = false) {
  return ErrOpportunity{.round = round,
                        .flow = FlowId(flow),
                        .weight = w,
                        .allowance = allowance,
                        .sent = sent,
                        .surplus_count = sc,
                        .max_sc_so_far = max_sc,
                        .previous_max_sc = prev,
                        .max_charge = mc,
                        .active_after = active_after,
                        .deactivated = deactivated};
}

/// Two flows, two rounds, all bounds tight: flow 0 overshoots by 1 in
/// round 1 (a 2-flit packet against allowance 1) and repays it in round 2.
void feed_clean_stream(ErrAuditor& auditor) {
  auditor.on_opportunity(rec(1, 0, 1.0, 0.0, 1.0, 2.0, 1.0, 1.0, 2.0, 2));
  auditor.on_opportunity(rec(1, 1, 1.0, 0.0, 1.0, 1.0, 0.0, 1.0, 1.0, 2));
  auditor.on_opportunity(rec(2, 0, 1.0, 1.0, 1.0, 1.0, 0.0, 0.0, 1.0, 2));
  auditor.on_opportunity(rec(2, 1, 1.0, 1.0, 2.0, 2.0, 0.0, 0.0, 1.0, 2));
}

TEST(ErrAuditorTest, CleanSyntheticStreamAuditsClean) {
  AuditLog log(AuditLog::Mode::kCount);
  ErrAuditor auditor(2, ErrAuditorConfig{}, log);
  feed_clean_stream(auditor);
  EXPECT_TRUE(log.clean()) << digest(log);
  EXPECT_EQ(auditor.opportunities(), 4u);
  EXPECT_DOUBLE_EQ(auditor.m(), 2.0);
  EXPECT_DOUBLE_EQ(auditor.max_surplus_seen(), 1.0);
  // Flow 0 ran one normalized unit ahead then flow 1 caught up: spread 2,
  // comfortably inside the Theorem 3 bound of 3m = 6.
  EXPECT_DOUBLE_EQ(auditor.max_fairness_measure(), 2.0);
}

TEST(ErrAuditorTest, CleanDeactivationAndReactivation) {
  AuditLog log(AuditLog::Mode::kCount);
  ErrAuditor auditor(2, ErrAuditorConfig{}, log);
  feed_clean_stream(auditor);
  // Round 3: flow 1 drains (SC reset to 0), flow 0 carries on alone.
  auditor.on_opportunity(rec(3, 0, 1.0, 0.0, 1.0, 1.0, 0.0, 0.0, 1.0, 2));
  auditor.on_opportunity(
      rec(3, 1, 1.0, 0.0, 1.0, 1.0, 0.0, 0.0, 1.0, 1, /*deactivated=*/true));
  auditor.on_opportunity(rec(4, 0, 1.0, 0.0, 1.0, 1.0, 0.0, 0.0, 1.0, 1));
  // Round 5: flow 1 re-enters with SC 0 — a fresh streak, not a gap error.
  auditor.on_opportunity(rec(5, 0, 1.0, 0.0, 1.0, 1.0, 0.0, 0.0, 1.0, 2));
  auditor.on_opportunity(rec(5, 1, 1.0, 0.0, 1.0, 1.0, 0.0, 0.0, 1.0, 2));
  EXPECT_TRUE(log.clean()) << digest(log);
}

TEST(ErrAuditorTest, IdleResetRespectedWhenConfigured) {
  AuditLog log(AuditLog::Mode::kCount);
  ErrAuditorConfig config;
  config.reset_on_idle = true;
  ErrAuditor auditor(1, config, log);
  // Flow 0 overshoots to SC 2 and empties the active set...
  auditor.on_opportunity(
      rec(1, 0, 1.0, 0.0, 1.0, 3.0, 0.0, 2.0, 3.0, 0, /*deactivated=*/true));
  // ...so round 2 must start from MaxSC 0, not the carried 2.
  auditor.on_opportunity(rec(2, 0, 1.0, 0.0, 1.0, 1.0, 0.0, 0.0, 1.0, 1));
  EXPECT_TRUE(log.clean()) << digest(log);
}

TEST(ErrAuditorTest, DetectsMissingIdleReset) {
  AuditLog log(AuditLog::Mode::kCount);
  ErrAuditor auditor(1, ErrAuditorConfig{}, log);  // reset_on_idle = false
  auditor.on_opportunity(
      rec(1, 0, 1.0, 0.0, 1.0, 3.0, 0.0, 2.0, 3.0, 0, /*deactivated=*/true));
  // Without the reset rule the snapshot should have carried MaxSC = 2.
  auditor.on_opportunity(rec(2, 0, 1.0, 0.0, 1.0, 1.0, 0.0, 0.0, 1.0, 1));
  EXPECT_TRUE(has_check(log, "err.maxsc.snapshot")) << digest(log);
}

TEST(ErrAuditorTest, DetectsAllowanceMismatch) {
  AuditLog log(AuditLog::Mode::kCount);
  ErrAuditor auditor(1, ErrAuditorConfig{}, log);
  auditor.on_opportunity(rec(1, 0, 1.0, 0.0, 1.0, 1.0, 0.0, 0.0, 1.0, 1));
  // Tracked SC is 0, so allowance 0.7 implies a phantom SC of 0.3.
  auditor.on_opportunity(rec(2, 0, 1.0, 0.0, 0.7, 0.7, 0.0, 0.0, 1.0, 1));
  EXPECT_TRUE(has_check(log, "err.allowance.mismatch")) << digest(log);
}

TEST(ErrAuditorTest, DetectsNegativeSurplus) {
  AuditLog log(AuditLog::Mode::kCount);
  ErrAuditor auditor(1, ErrAuditorConfig{}, log);
  // Allowance above w(1 + MaxSC) means SC(r-1) was negative.
  auditor.on_opportunity(rec(1, 0, 1.0, 0.0, 1.5, 1.5, 0.0, 0.0, 1.0, 1));
  EXPECT_TRUE(has_check(log, "err.lemma1.lower")) << digest(log);
}

TEST(ErrAuditorTest, DetectsSurplusAboveLargestCharge) {
  AuditLog log(AuditLog::Mode::kCount);
  ErrAuditor auditor(1, ErrAuditorConfig{}, log);
  // Overshoot of 4 with largest charge 2: Lemma 1's upper half broken.
  auditor.on_opportunity(rec(1, 0, 1.0, 0.0, 1.0, 5.0, 4.0, 4.0, 2.0, 1));
  EXPECT_TRUE(has_check(log, "err.lemma1.upper")) << digest(log);
}

TEST(ErrAuditorTest, DetectsEarlyTermination) {
  AuditLog log(AuditLog::Mode::kCount);
  ErrAuditor auditor(1, ErrAuditorConfig{}, log);
  // Sent 1 against allowance 2 without deactivating: the do/while quit
  // early (sc_before = 1(1+1) - 2 = 0, so the allowance itself is fine).
  auditor.on_opportunity(rec(1, 0, 1.0, 1.0, 2.0, 1.0, -1.0, 0.0, 1.0, 1));
  EXPECT_TRUE(has_check(log, "err.lemma1.residual")) << digest(log);
}

TEST(ErrAuditorTest, DetectsMissingResetOnDeactivation) {
  AuditLog log(AuditLog::Mode::kCount);
  ErrAuditor auditor(1, ErrAuditorConfig{}, log);
  auditor.on_opportunity(
      rec(1, 0, 1.0, 0.0, 1.0, 2.0, 1.0, 1.0, 2.0, 0, /*deactivated=*/true));
  EXPECT_TRUE(has_check(log, "err.record.reset")) << digest(log);
}

TEST(ErrAuditorTest, DetectsRecordedSurplusMismatch) {
  AuditLog log(AuditLog::Mode::kCount);
  ErrAuditor auditor(1, ErrAuditorConfig{}, log);
  // Sent - A = 1 but the record claims SC = 0.5.
  auditor.on_opportunity(rec(1, 0, 1.0, 0.0, 1.0, 2.0, 0.5, 1.0, 2.0, 1));
  EXPECT_TRUE(has_check(log, "err.record.sc")) << digest(log);
}

TEST(ErrAuditorTest, DetectsRoundSkip) {
  AuditLog log(AuditLog::Mode::kCount);
  ErrAuditor auditor(1, ErrAuditorConfig{}, log);
  auditor.on_opportunity(rec(1, 0, 1.0, 0.0, 1.0, 1.0, 0.0, 0.0, 1.0, 1));
  auditor.on_opportunity(rec(4, 0, 1.0, 0.0, 1.0, 1.0, 0.0, 0.0, 1.0, 1));
  EXPECT_TRUE(has_check(log, "err.round.skip")) << digest(log);
}

TEST(ErrAuditorTest, DetectsMaxScSnapshotMismatch) {
  AuditLog log(AuditLog::Mode::kCount);
  ErrAuditor auditor(1, ErrAuditorConfig{}, log);
  auditor.on_opportunity(rec(1, 0, 1.0, 0.0, 1.0, 2.0, 1.0, 1.0, 2.0, 1));
  // Round 1 folded MaxSC = 1 but round 2 claims a snapshot of 0.5.
  auditor.on_opportunity(rec(2, 0, 1.0, 0.5, 0.5, 0.5, 0.0, 0.0, 1.0, 1));
  EXPECT_TRUE(has_check(log, "err.maxsc.snapshot")) << digest(log);
}

TEST(ErrAuditorTest, DetectsSnapshotDriftWithinRound) {
  AuditLog log(AuditLog::Mode::kCount);
  ErrAuditor auditor(2, ErrAuditorConfig{}, log);
  auditor.on_opportunity(rec(1, 0, 1.0, 0.0, 1.0, 1.0, 0.0, 0.0, 1.0, 2));
  // Same round, different PreviousMaxSC: the snapshot must be fixed for
  // the whole round.
  auditor.on_opportunity(rec(1, 1, 1.0, 0.5, 1.5, 1.5, 0.0, 0.0, 1.5, 2));
  EXPECT_TRUE(has_check(log, "err.maxsc.snapshot-drift")) << digest(log);
}

TEST(ErrAuditorTest, DetectsMaxScFoldError) {
  AuditLog log(AuditLog::Mode::kCount);
  ErrAuditor auditor(1, ErrAuditorConfig{}, log);
  // This opportunity's overshoot is 1 but the record's running MaxSC says
  // 0.5 — the fold lost a value.
  auditor.on_opportunity(rec(1, 0, 1.0, 0.0, 1.0, 2.0, 1.0, 0.5, 2.0, 1));
  EXPECT_TRUE(has_check(log, "err.maxsc.fold")) << digest(log);
}

TEST(ErrAuditorTest, DetectsTheorem2BoundViolation) {
  AuditLog log(AuditLog::Mode::kCount);
  ErrAuditor auditor(1, ErrAuditorConfig{}, log);
  // A 1-round window served 10 against w(n + sum MaxSC) = 1: deviation 9
  // with m = 2 claimed.
  auditor.on_opportunity(rec(1, 0, 1.0, 0.0, 1.0, 10.0, 9.0, 9.0, 2.0, 1));
  EXPECT_TRUE(has_check(log, "err.theorem2.bound")) << digest(log);
}

TEST(ErrAuditorTest, MidStreamAttachAdoptsInheritedSurplusAsMFloor) {
  // Regression: an auditor attached mid-run — the checkpoint-restore path
  // rebuilds all run-local wiring fresh — inherits surplus state whose
  // charges it never saw.  Here the stream joins at round 238 where a
  // flow walks in with SC = 13 (A = 1*(1+13) - 13 = 1) yet every charge
  // the auditor observes is small (mc = 4).  Before the m-floor adoption
  // this fired err.theorem2.bound with dev = -10 against m = 4; the
  // inherited SC proves an earlier charge >= 13, so the stream is clean.
  AuditLog log(AuditLog::Mode::kCount);
  ErrAuditor auditor(2, ErrAuditorConfig{}, log);
  auditor.on_opportunity(rec(238, 0, 1.0, 13.0, 1.0, 4.0, 3.0, 3.0, 4.0, 2));
  auditor.on_opportunity(rec(238, 1, 1.0, 13.0, 12.0, 12.0, 0.0, 3.0, 4.0, 2));
  auditor.on_opportunity(rec(239, 0, 1.0, 3.0, 1.0, 1.0, 0.0, 0.0, 1.0, 2));
  auditor.on_opportunity(rec(239, 1, 1.0, 3.0, 4.0, 4.0, 0.0, 0.0, 2.0, 2));
  EXPECT_TRUE(log.clean()) << digest(log);
  EXPECT_GE(auditor.m(), 13.0);  // adopted from the inherited surplus
}

TEST(ErrAuditorTest, DetectsTheorem3FairnessViolation) {
  AuditLog log(AuditLog::Mode::kCount);
  ErrAuditorConfig config;
  config.fm_bound_factor = 0.1;  // the clean stream's FM of 2 > 0.1 * m
  ErrAuditor auditor(2, config, log);
  feed_clean_stream(auditor);
  EXPECT_TRUE(has_check(log, "err.theorem3.fm")) << digest(log);
}

TEST(ErrAuditorTest, DetectsOutOfRangeFlow) {
  AuditLog log(AuditLog::Mode::kCount);
  ErrAuditor auditor(2, ErrAuditorConfig{}, log);
  auditor.on_opportunity(rec(1, 5, 1.0, 0.0, 1.0, 1.0, 0.0, 0.0, 1.0, 1));
  EXPECT_TRUE(has_check(log, "err.record.flow")) << digest(log);
}

// --- End-to-end: the auditor attached to real ErrPolicy runs -----------

harness::ScenarioConfig audited_config(AuditLog& log) {
  harness::ScenarioConfig config;
  config.horizon = 10'000;
  config.drain = true;
  config.audit = true;
  config.audit_log = &log;
  return config;
}

traffic::WorkloadSpec mixed_workload() {
  traffic::WorkloadSpec spec;
  for (std::size_t i = 0; i < 4; ++i) {
    traffic::FlowSpec f;
    f.arrival = i % 2 == 0 ? traffic::ArrivalSpec::on_off(0.3, 50, 150)
                           : traffic::ArrivalSpec::bernoulli(0.03);
    f.length = traffic::LengthSpec::uniform(1, 16);
    spec.flows.push_back(f);
  }
  return spec;
}

TEST(ErrAuditorScenarioTest, CleanRunHasNoViolations) {
  AuditLog log(AuditLog::Mode::kCount);
  const auto result =
      run_scenario("err", audited_config(log), mixed_workload());
  EXPECT_GT(result.audit_opportunities, 0u);
  EXPECT_EQ(result.audit_violations, 0u) << digest(log);
}

TEST(ErrAuditorScenarioTest, CleanWeightedRun) {
  AuditLog log(AuditLog::Mode::kCount);
  harness::ScenarioConfig config = audited_config(log);
  config.weights = {1.0, 2.0, 3.5, 1.0};
  const auto result = run_scenario("err", config, mixed_workload());
  EXPECT_GT(result.audit_opportunities, 0u);
  EXPECT_EQ(result.audit_violations, 0u) << digest(log);
}

TEST(ErrAuditorScenarioTest, CleanResetOnIdleRun) {
  AuditLog log(AuditLog::Mode::kCount);
  harness::ScenarioConfig config = audited_config(log);
  config.sched.err_reset_on_idle = true;
  const auto result = run_scenario("err", config, mixed_workload());
  EXPECT_GT(result.audit_opportunities, 0u);
  EXPECT_EQ(result.audit_violations, 0u) << digest(log);
}

}  // namespace
}  // namespace wormsched::validate
