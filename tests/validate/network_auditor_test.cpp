// Tests for the network conservation auditor: audited fabric runs (both
// execution paths, with and without fault injection) must come back
// violation-free, and the sampling cadence must follow check_every while
// the observer hook still fires every cycle.
#include <gtest/gtest.h>

#include "harness/network_sweep.hpp"
#include "sim/engine.hpp"
#include "validate/faults.hpp"
#include "validate/network_auditor.hpp"
#include "validate/violation.hpp"
#include "wormhole/network.hpp"

namespace wormsched::validate {
namespace {

harness::NetworkScenarioConfig audited_scenario() {
  harness::NetworkScenarioConfig config;
  config.traffic.packets_per_node_per_cycle = 0.03;
  config.traffic.inject_until = 2000;
  config.audit = true;
  return config;
}

TEST(NetworkAuditorTest, CleanActiveSetRun) {
  const auto result = harness::run_network_scenario(audited_scenario(), 1);
  EXPECT_GT(result.delivered_packets, 0u);
  EXPECT_GT(result.audit_checks, 0u);
  EXPECT_GT(result.audit_opportunities, 0u);
  EXPECT_EQ(result.audit_violations, 0u);
}

TEST(NetworkAuditorTest, CleanDenseRun) {
  harness::NetworkScenarioConfig config = audited_scenario();
  config.network.dense_tick = true;
  const auto result = harness::run_network_scenario(config, 1);
  EXPECT_GT(result.delivered_packets, 0u);
  EXPECT_GT(result.audit_checks, 0u);
  EXPECT_EQ(result.audit_violations, 0u);
}

TEST(NetworkAuditorTest, CleanDensePipelineRun) {
  // The dense router pipeline maintains the pending bitmasks through the
  // shared helpers but never reads them, so an audited dense-pipeline run
  // exercises check_router_masks against independently-derived state.
  harness::NetworkScenarioConfig config = audited_scenario();
  config.network.router.dense_pipeline = true;
  const auto result = harness::run_network_scenario(config, 1);
  EXPECT_GT(result.delivered_packets, 0u);
  EXPECT_GT(result.audit_checks, 0u);
  EXPECT_EQ(result.audit_violations, 0u);
}

TEST(NetworkAuditorTest, CleanFaultedRun) {
  harness::NetworkScenarioConfig config = audited_scenario();
  config.faults = FaultSpec::chaos(5);
  const auto result = harness::run_network_scenario(config, 1);
  // Faults delay flits and credits but never drop them, so conservation
  // must survive stalled links and quarantined credits.
  EXPECT_GT(result.delivered_packets, 0u);
  EXPECT_GT(result.audit_checks, 0u);
  EXPECT_EQ(result.audit_violations, 0u);
}

TEST(NetworkAuditorTest, CleanFaultedDenseRun) {
  harness::NetworkScenarioConfig config = audited_scenario();
  config.network.dense_tick = true;
  config.faults = FaultSpec::chaos(5);
  const auto result = harness::run_network_scenario(config, 1);
  EXPECT_GT(result.delivered_packets, 0u);
  EXPECT_EQ(result.audit_violations, 0u);
}

TEST(NetworkAuditorTest, ChecksEveryCycleByDefault) {
  wormhole::Network net(wormhole::NetworkConfig{});
  AuditLog log(AuditLog::Mode::kCount);
  NetworkAuditor auditor(NetworkAuditorConfig{}, log);
  net.attach_observer(&auditor);
  net.inject(0, wormhole::PacketDescriptor{.id = PacketId(0), .flow = FlowId(0),
                                           .source = NodeId(0),
                                           .dest = NodeId(15), .length = 4});
  sim::Engine engine;
  engine.add_component(net);
  engine.run_until(100);
  EXPECT_EQ(auditor.checks_run(), 100u);
  EXPECT_TRUE(log.clean());
}

TEST(NetworkAuditorTest, SamplingCadenceHonorsCheckEvery) {
  wormhole::Network net(wormhole::NetworkConfig{});
  AuditLog log(AuditLog::Mode::kCount);
  NetworkAuditor auditor(
      NetworkAuditorConfig{.mode = AuditMode::kFull, .check_every = 4}, log);
  net.attach_observer(&auditor);
  net.inject(0, wormhole::PacketDescriptor{.id = PacketId(0), .flow = FlowId(0),
                                           .source = NodeId(0),
                                           .dest = NodeId(15), .length = 4});
  sim::Engine engine;
  engine.add_component(net);
  engine.run_until(200);
  // Cycles 0, 4, ..., 196: the hook fires every cycle, the O(fabric)
  // conservation walk only on the sampled ones.
  EXPECT_EQ(auditor.checks_run(), 50u);
  EXPECT_TRUE(log.clean());
}

TEST(NetworkAuditorTest, FinishFlushesTailWindow) {
  // Regression: with check_every > 1 a violation arising after the last
  // sampled cycle used to escape the run entirely — nothing ever checked
  // the tail window.  finish() closes it.
  wormhole::Network net(wormhole::NetworkConfig{});
  AuditLog log(AuditLog::Mode::kCount);
  NetworkAuditor auditor(
      NetworkAuditorConfig{.mode = AuditMode::kFull, .check_every = 4}, log);
  net.attach_observer(&auditor);
  net.inject(0, wormhole::PacketDescriptor{.id = PacketId(0), .flow = FlowId(0),
                                           .source = NodeId(0),
                                           .dest = NodeId(15), .length = 4});
  sim::Engine engine;
  engine.add_component(net);
  engine.run_until(97);  // checks at 0, 4, ..., 96

  // Plant a flit that was never injected: flit conservation is broken
  // from here on, but cycles 97-98 fall between samples.
  wormhole::Flit phantom;
  phantom.type = wormhole::FlitType::kHeadTail;
  phantom.packet = PacketId(1'000'000);
  phantom.flow = FlowId(0);
  phantom.source = NodeId(3);
  phantom.dest = NodeId(3);
  net.router(NodeId(3)).accept_flit(wormhole::Direction::kLocal, 0, phantom);
  engine.run_until(99);
  ASSERT_TRUE(log.clean()) << "tail cycles must not have been sampled yet";

  auditor.finish(99, net);
  EXPECT_FALSE(log.clean());
  // Idempotent: a second flush adds nothing.
  const std::uint64_t after_first = log.count();
  auditor.finish(99, net);
  EXPECT_EQ(log.count(), after_first);
}

TEST(NetworkAuditorTest, IncrementalFinishRunsFinalCrosscheck) {
  wormhole::Network net(wormhole::NetworkConfig{});
  AuditLog log(AuditLog::Mode::kCount);
  NetworkAuditor auditor(NetworkAuditorConfig{.check_every = 8}, log);
  net.attach_observer(&auditor);
  net.inject(0, wormhole::PacketDescriptor{.id = PacketId(0), .flow = FlowId(0),
                                           .source = NodeId(0),
                                           .dest = NodeId(15), .length = 4});
  sim::Engine engine;
  engine.add_component(net);
  engine.run_until(97);
  const std::uint64_t rescans_before = auditor.full_rescans();
  auditor.finish(97, net);
  EXPECT_GT(auditor.full_rescans(), rescans_before);
  EXPECT_TRUE(log.clean());
}

}  // namespace
}  // namespace wormsched::validate
