// Allocation audit for the incremental network auditor: once the ledgers
// are seeded and every ring buffer has hit its high-water mark, an
// audited steady-state cycle — CycleDelta collection in the network,
// ledger ingest + verification in the auditor, and the periodic
// full-rescan cross-check — must execute without touching the heap.
//
// Same counting override of the global allocation functions as
// tests/wormhole/router_alloc_test.cpp.  The workload is one enormous
// packet: its worm streams through the fabric for the whole measured
// window, so there is per-cycle movement to audit but no packet delivery
// (the delivered log growing would be the network's cost, not the
// auditor's, and would drown the signal this test is after).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "sim/engine.hpp"
#include "validate/network_auditor.hpp"
#include "validate/violation.hpp"
#include "wormhole/network.hpp"

namespace {
std::atomic<std::uint64_t> g_allocations{0};

void* counted_alloc(std::size_t size, std::size_t alignment) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  void* p = nullptr;
  if (posix_memalign(&p, alignment < sizeof(void*) ? sizeof(void*) : alignment,
                     size == 0 ? 1 : size) != 0) {
    throw std::bad_alloc();
  }
  return p;
}
}  // namespace

void* operator new(std::size_t size) {
  return counted_alloc(size, alignof(std::max_align_t));
}
void* operator new[](std::size_t size) {
  return counted_alloc(size, alignof(std::max_align_t));
}
void* operator new(std::size_t size, std::align_val_t align) {
  return counted_alloc(size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return counted_alloc(size, static_cast<std::size_t>(align));
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace wormsched::validate {
namespace {

TEST(NetworkAuditorAlloc, IncrementalSteadyStateIsAllocationFree) {
  wormhole::Network net(wormhole::NetworkConfig{});  // 4x4 mesh
  AuditLog log(AuditLog::Mode::kCount);
  NetworkAuditor auditor(NetworkAuditorConfig{}, log);  // incremental
  net.attach_observer(&auditor);
  ASSERT_TRUE(net.collecting_delta());

  // One 50k-flit worm corner to corner: movement every cycle for far
  // longer than the test runs, no delivery inside the window.
  net.inject(0, wormhole::PacketDescriptor{.id = PacketId(0),
                                           .flow = FlowId(0),
                                           .source = NodeId(0),
                                           .dest = NodeId(15),
                                           .length = 50'000});
  sim::Engine engine;
  engine.add_component(net);

  // Warm-up: buffers, wires, and the delta vectors reach their
  // high-water marks, the ledgers are seeded, and (at 256 checks) the
  // first periodic full-rescan cross-check exercises the scratch arrays.
  engine.run_until(512);
  ASSERT_GT(net.injected_flits(), 0);

  // Measured window: 1024 audited cycles including four full rescans.
  const std::uint64_t before = g_allocations.load(std::memory_order_relaxed);
  engine.run_until(512 + 1024);
  const std::uint64_t allocs =
      g_allocations.load(std::memory_order_relaxed) - before;
  EXPECT_EQ(allocs, 0u);
  EXPECT_GT(auditor.checks_run(), 1024u);
  EXPECT_GE(auditor.full_rescans(), 4u);
  EXPECT_TRUE(log.clean());
}

TEST(NetworkAuditorAlloc, CounterObservesHeapTraffic) {
  const std::uint64_t before = g_allocations.load(std::memory_order_relaxed);
  auto* p = new int(5);
  delete p;
  EXPECT_GT(g_allocations.load(std::memory_order_relaxed), before);
}

}  // namespace
}  // namespace wormsched::validate
