// Differential fuzz for the two network-auditor modes.  The incremental
// dirty-set auditor promises the same verdicts as the full-rescan oracle:
// on clean runs (fault injection on — faults delay, never drop) both must
// report zero violations over bit-identical simulations, and on runs with
// a planted conservation break both must converge on the same canonical
// violation ids.  The incremental run is also the only configuration that
// switches on CycleDelta collection, so this suite doubles as the
// regression net proving collection never perturbs the simulation.
//
// The suite name contains "FuzzAuditTest" so CI's fuzz block
// (-R 'FuzzAuditTest|...') picks these up alongside the ERR fuzz audits.
#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "sim/engine.hpp"
#include "validate/faults.hpp"
#include "validate/network_auditor.hpp"
#include "validate/violation.hpp"
#include "wormhole/network.hpp"
#include "wormhole/patterns.hpp"

namespace wormsched::validate {
namespace {

using wormhole::DeliveredPacket;
using wormhole::Direction;
using wormhole::Network;
using wormhole::NetworkConfig;
using wormhole::NetworkTrafficSource;

struct AuditedRun {
  std::vector<DeliveredPacket> delivered;
  std::uint64_t delivered_flits = 0;
  Cycle end_cycle = 0;
  std::uint64_t violations = 0;
  std::vector<Violation> kept;
  std::uint64_t checks = 0;
  std::uint64_t full_rescans = 0;
};

AuditedRun run_audited(AuditMode mode, std::uint64_t seed,
                       const FaultSpec& base_spec, Cycle inject_until) {
  NetworkConfig config;  // 4x4 mesh, ERR arbiters
  std::optional<ScheduledFaults> faults;
  if (base_spec.enabled) {
    FaultSpec spec = base_spec;
    spec.seed += seed;
    spec.num_nodes = 16;
    faults.emplace(spec);
    config.faults = &*faults;
  }
  Network net(config);
  AuditLog log(AuditLog::Mode::kCount);
  NetworkAuditor auditor(NetworkAuditorConfig{.mode = mode}, log);
  net.attach_observer(&auditor);

  NetworkTrafficSource::Config traffic;
  traffic.packets_per_node_per_cycle = 0.04;
  traffic.inject_until = inject_until;
  traffic.seed = seed;
  traffic.faults = config.faults;
  NetworkTrafficSource source(net, traffic);

  sim::Engine engine;
  engine.add_component(source);
  engine.add_component(net);
  engine.run_until(traffic.inject_until);
  AuditedRun run;
  run.end_cycle = engine.run_until_idle(200'000);
  auditor.finish(run.end_cycle, net);
  run.delivered = net.delivered();
  run.delivered_flits = net.delivered_flits();
  run.violations = log.count();
  run.kept = log.kept();
  run.checks = auditor.checks_run();
  run.full_rescans = auditor.full_rescans();
  return run;
}

// Same five-preset rotation the pipeline fuzz uses: one seed in five runs
// fault-free, the rest stress a distinct fault class.
FaultSpec preset_for(std::uint64_t seed) {
  FaultSpec spec;
  switch (seed % 5) {
    case 0:
      break;
    case 1:
      spec.enabled = true;
      spec.link_stall_rate = 0.4;
      spec.link_stall_cycles = 6;
      break;
    case 2:
      spec.enabled = true;
      spec.credit_stall_rate = 0.4;
      spec.credit_stall_cycles = 20;
      break;
    case 3:
      spec.enabled = true;
      spec.churn_rate = 0.25;
      spec.burst_rate = 0.2;
      break;
    default:
      spec = FaultSpec::chaos(0);
      break;
  }
  return spec;
}

class NetworkFuzzAuditTest : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(NetworkFuzzAuditTest, IncrementalMatchesFullOracle) {
  const std::uint64_t seed = GetParam();
  const FaultSpec spec = preset_for(seed);
  const AuditedRun full =
      run_audited(AuditMode::kFull, seed, spec, /*inject_until=*/500);
  const AuditedRun incremental =
      run_audited(AuditMode::kIncremental, seed, spec, /*inject_until=*/500);

  // Identical verdicts: a clean fabric is clean in both modes, down to
  // the (empty) payload list.
  EXPECT_EQ(full.violations, 0u);
  EXPECT_EQ(incremental.violations, 0u);
  ASSERT_EQ(full.kept.size(), incremental.kept.size());
  EXPECT_GT(incremental.full_rescans, 0u);  // snapshot + finish at least

  // Bit-identical simulation: the incremental run collects a CycleDelta
  // every cycle, the full run does not; any observable difference means
  // collection perturbed the fabric.
  EXPECT_GT(full.delivered.size(), 0u);
  EXPECT_EQ(full.end_cycle, incremental.end_cycle);
  EXPECT_EQ(full.delivered_flits, incremental.delivered_flits);
  ASSERT_EQ(full.delivered.size(), incremental.delivered.size());
  for (std::size_t i = 0; i < full.delivered.size(); ++i) {
    const DeliveredPacket& a = full.delivered[i];
    const DeliveredPacket& b = incremental.delivered[i];
    ASSERT_EQ(a.id.value(), b.id.value()) << "packet #" << i;
    ASSERT_EQ(a.source.value(), b.source.value()) << "packet #" << i;
    ASSERT_EQ(a.dest.value(), b.dest.value()) << "packet #" << i;
    ASSERT_EQ(a.length, b.length) << "packet #" << i;
    ASSERT_EQ(a.created, b.created) << "packet #" << i;
    ASSERT_EQ(a.delivered, b.delivered) << "packet #" << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, NetworkFuzzAuditTest,
                         ::testing::Range<std::uint64_t>(2000, 2200));

// Planted-fault agreement: inject the same conservation break into both
// modes' fabrics and compare the canonical oracle ids they settle on.
// The incremental auditor escalates to the oracle (and then resyncs, so
// its report *count* legitimately differs from the every-check full
// mode), but the set of canonical `net.*` ids must match.  Ledger-side
// `net.ledger.*` ids are incremental-only forensics and are filtered.
std::set<std::string> canonical_ids(const std::vector<Violation>& kept) {
  std::set<std::string> ids;
  for (const Violation& v : kept)
    if (v.check.rfind("net.ledger.", 0) != 0) ids.insert(v.check);
  return ids;
}

std::set<std::string> run_with_planted_flit(AuditMode mode) {
  Network net(NetworkConfig{});  // 4x4 mesh
  AuditLog log(AuditLog::Mode::kCount);
  NetworkAuditor auditor(NetworkAuditorConfig{.mode = mode}, log);
  net.attach_observer(&auditor);

  NetworkTrafficSource::Config traffic;
  traffic.packets_per_node_per_cycle = 0.04;
  traffic.inject_until = 400;
  traffic.seed = 11;
  NetworkTrafficSource source(net, traffic);

  sim::Engine engine;
  engine.add_component(source);
  engine.add_component(net);
  engine.run_until(200);
  // A flit from nowhere in router 5's local input, destined to router 5
  // itself.  It bypasses inject(), so the fabric holds (and soon has
  // delivered) one more flit than was ever injected — flit conservation
  // is broken from this cycle forever.  Local input VC class 1 is the
  // safe spot for the plant: local units take part in no credit
  // protocol, and on a mesh the NIC only ever feeds class 0, so the
  // phantom cannot interleave with a real packet's flit stream — the
  // simulation itself keeps running on valid state.
  wormhole::Flit phantom;
  phantom.packet = PacketId(1'000'000);
  phantom.flow = FlowId(0);
  phantom.source = NodeId(5);
  phantom.dest = NodeId(5);
  phantom.type = wormhole::FlitType::kHeadTail;
  phantom.index = 0;
  phantom.created = 200;
  net.router(NodeId(5)).accept_flit(Direction::kLocal, 1, phantom);
  engine.run_until(traffic.inject_until);
  const Cycle end = engine.run_until_idle(200'000);
  auditor.finish(end, net);
  EXPECT_FALSE(log.clean());
  return canonical_ids(log.kept());
}

TEST(NetworkFuzzAuditTestPlanted, ModesAgreeOnCanonicalIds) {
  const auto full = run_with_planted_flit(AuditMode::kFull);
  const auto incremental = run_with_planted_flit(AuditMode::kIncremental);
  EXPECT_FALSE(full.empty());
  EXPECT_EQ(full, incremental);
  EXPECT_EQ(full.count("net.conservation.flits"), 1u);
}

}  // namespace
}  // namespace wormsched::validate
