#include "traffic/trace_io.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace wormsched::traffic {
namespace {

Trace sample_trace() {
  Trace t;
  t.num_flows = 3;
  t.entries = {
      {0, FlowId(2), 5},
      {0, FlowId(0), 1},
      {4, FlowId(1), 64},
      {9, FlowId(0), 12},
  };
  return t;
}

TEST(TraceIo, RoundTripPreservesEverything) {
  const Trace original = sample_trace();
  std::stringstream buffer;
  save_trace(buffer, original);
  const Trace loaded = load_trace(buffer);
  ASSERT_EQ(loaded.entries.size(), original.entries.size());
  EXPECT_EQ(loaded.num_flows, original.num_flows);
  for (std::size_t i = 0; i < original.entries.size(); ++i) {
    EXPECT_EQ(loaded.entries[i].cycle, original.entries[i].cycle);
    EXPECT_EQ(loaded.entries[i].flow, original.entries[i].flow);
    EXPECT_EQ(loaded.entries[i].length, original.entries[i].length);
  }
}

TEST(TraceIo, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/ws_trace_test.csv";
  const Trace original = sample_trace();
  save_trace_file(path, original);
  const Trace loaded = load_trace_file(path);
  EXPECT_EQ(loaded.entries.size(), original.entries.size());
  EXPECT_EQ(loaded.total_flits(), original.total_flits());
  std::remove(path.c_str());
}

TEST(TraceIo, GeneratedTraceRoundTrip) {
  WorkloadSpec spec;
  FlowSpec f;
  f.arrival = ArrivalSpec::bernoulli(0.05);
  f.length = LengthSpec::uniform(1, 32);
  spec.flows = {f, f};
  const Trace original = generate_trace(spec, 5000, 11);
  std::stringstream buffer;
  save_trace(buffer, original);
  const Trace loaded = load_trace(buffer);
  EXPECT_EQ(loaded.total_flits(), original.total_flits());
  EXPECT_EQ(loaded.max_observed_length(), original.max_observed_length());
}

TEST(TraceIo, HeaderOnlyTraceThrows) {
  // Regression: a header-only trace used to load as num_flows == 0 and
  // drive a zero-flow scheduler downstream.
  std::stringstream buffer;
  save_trace(buffer, Trace{});
  EXPECT_THROW((void)load_trace(buffer), std::runtime_error);
}

TEST(TraceIo, HeaderOnlyErrorMentionsEntries) {
  std::stringstream buffer("cycle,flow,length\n");
  try {
    (void)load_trace(buffer);
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("no entries"), std::string::npos)
        << e.what();
  }
}

TEST(TraceIo, CrlfLineEndingsAccepted) {
  // Regression: a CRLF-terminated file failed the header compare with a
  // misleading "missing header" error.
  std::stringstream buffer("cycle,flow,length\r\n1,0,2\r\n2,1,3\r\n");
  const Trace loaded = load_trace(buffer);
  ASSERT_EQ(loaded.entries.size(), 2u);
  EXPECT_EQ(loaded.num_flows, 2u);
  EXPECT_EQ(loaded.entries[1].cycle, 2u);
  EXPECT_EQ(loaded.entries[1].length, 3);
}

TEST(TraceIo, CrlfRoundTripMatchesLf) {
  const Trace original = sample_trace();
  std::stringstream lf;
  save_trace(lf, original);
  // Re-encode the same bytes with CRLF endings, as a Windows editor or
  // `git config core.autocrlf` would.
  std::string text = lf.str();
  std::string crlf_text;
  for (const char c : text) {
    if (c == '\n') crlf_text += '\r';
    crlf_text += c;
  }
  std::stringstream crlf(crlf_text);
  const Trace loaded = load_trace(crlf);
  ASSERT_EQ(loaded.entries.size(), original.entries.size());
  EXPECT_EQ(loaded.num_flows, original.num_flows);
  EXPECT_EQ(loaded.total_flits(), original.total_flits());
}

TEST(TraceIo, MissingHeaderThrows) {
  std::stringstream buffer("1,2,3\n");
  EXPECT_THROW((void)load_trace(buffer), std::runtime_error);
}

TEST(TraceIo, MalformedFieldThrows) {
  std::stringstream buffer("cycle,flow,length\n1,abc,3\n");
  EXPECT_THROW((void)load_trace(buffer), std::runtime_error);
}

TEST(TraceIo, MissingFieldThrows) {
  std::stringstream buffer("cycle,flow,length\n1,2\n");
  EXPECT_THROW((void)load_trace(buffer), std::runtime_error);
}

TEST(TraceIo, NonPositiveLengthThrows) {
  std::stringstream buffer("cycle,flow,length\n1,0,0\n");
  EXPECT_THROW((void)load_trace(buffer), std::runtime_error);
}

TEST(TraceIo, TimeTravelThrows) {
  std::stringstream buffer("cycle,flow,length\n5,0,1\n3,0,1\n");
  EXPECT_THROW((void)load_trace(buffer), std::runtime_error);
}

TEST(TraceIo, BlankLinesTolerated) {
  std::stringstream buffer("cycle,flow,length\n1,0,2\n\n2,1,3\n");
  const Trace loaded = load_trace(buffer);
  EXPECT_EQ(loaded.entries.size(), 2u);
  EXPECT_EQ(loaded.num_flows, 2u);
}

}  // namespace
}  // namespace wormsched::traffic
