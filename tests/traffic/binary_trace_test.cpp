// Binary trace container tests (docs/TRACE_FORMAT.md).
//
// The committed tests/data/golden_v1.wst pins the version-1 byte format:
// it was written by `wormsched trace-gen --flows 16 --cycles 400 --seed
// 42` and its header totals are asserted verbatim below.  Any layout
// change that still claims version 1 breaks these tests; an intentional
// change must bump kBinaryTraceFormatVersion and commit a new golden.
//
// The rejection matrix mirrors the snapshot golden suite: bad magic,
// wrong version, CRC corruption, byte-granularity truncation, varint
// overflow and META/stream total disagreement must all throw
// SnapshotError — never crash, never read out of bounds (the ASan CI
// leg runs this suite too).
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "common/snapshot.hpp"
#include "traffic/binary_trace.hpp"
#include "traffic/trace_synth.hpp"

namespace wormsched::traffic {
namespace {

std::string golden_path() { return WS_GOLDEN_TRACE; }

std::vector<std::uint8_t> golden_bytes() {
  std::ifstream in(golden_path(), std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing golden file " << golden_path();
  return std::vector<std::uint8_t>((std::istreambuf_iterator<char>(in)),
                                   std::istreambuf_iterator<char>());
}

// File-format constants, restated independently of the implementation so
// a constant drift in binary_trace.cpp cannot silently re-pin the format.
constexpr std::size_t kVersionOffset = 8;  // u32 after the 8-byte magic
constexpr std::size_t kHeaderFixed = 8 + 4 + 4 + 8;  // ... + meta length

/// Payload offset inside a container image (after the meta JSON).
std::size_t payload_offset(const std::vector<std::uint8_t>& bytes) {
  std::uint64_t meta_len = 0;
  std::memcpy(&meta_len, bytes.data() + 16, sizeof(meta_len));
  return kHeaderFixed + static_cast<std::size_t>(meta_len) + 8;
}

/// Rewrites the CRC trailer after a deliberate payload edit, so the test
/// reaches the semantic validation instead of the CRC check.
void refresh_crc(std::vector<std::uint8_t>& bytes) {
  const std::size_t payload = payload_offset(bytes);
  const std::size_t payload_len = bytes.size() - payload - 4;
  const std::uint32_t crc =
      snapshot_crc32(bytes.data() + payload, payload_len);
  std::memcpy(bytes.data() + bytes.size() - 4, &crc, sizeof(crc));
}

Trace drain(BinaryTraceReader& reader) {
  Trace trace;
  trace.num_flows = reader.num_flows();
  while (auto entry = reader.next()) trace.entries.push_back(*entry);
  return trace;
}

TEST(BinaryTrace, RoundTripIsBitIdentical) {
  SynthSpec spec;
  spec.num_flows = 64;
  spec.horizon = 2'000;
  spec.elephant_fraction = 0.2;
  spec.churn_epoch = 300;
  spec.incast_every = 500;
  const Trace original = synthesize_trace(spec, 9);
  ASSERT_FALSE(original.entries.empty());

  const auto bytes = encode_binary_trace(original, "{\"k\":1}");
  const Trace decoded = decode_binary_trace(bytes);
  ASSERT_EQ(decoded.num_flows, original.num_flows);
  ASSERT_EQ(decoded.entries.size(), original.entries.size());
  for (std::size_t i = 0; i < original.entries.size(); ++i) {
    EXPECT_EQ(decoded.entries[i].cycle, original.entries[i].cycle);
    EXPECT_EQ(decoded.entries[i].flow, original.entries[i].flow);
    EXPECT_EQ(decoded.entries[i].length, original.entries[i].length);
  }
  // Re-encoding the decode reproduces the image byte for byte.
  EXPECT_EQ(encode_binary_trace(decoded, "{\"k\":1}"), bytes);
}

TEST(BinaryTrace, StreamingReaderMatchesWholeTraceDecode) {
  SynthSpec spec;
  spec.num_flows = 8;
  spec.horizon = 1'000;
  const Trace original = synthesize_trace(spec, 3);
  const auto bytes = encode_binary_trace(original);

  BinaryTraceReader reader(bytes);
  EXPECT_EQ(reader.entry_count(), original.entries.size());
  EXPECT_EQ(reader.total_flits(), original.total_flits());
  EXPECT_EQ(reader.max_length(), original.max_observed_length());
  const Trace streamed = drain(reader);
  const Trace decoded = decode_binary_trace(bytes);
  ASSERT_EQ(streamed.entries.size(), decoded.entries.size());
  for (std::size_t i = 0; i < streamed.entries.size(); ++i)
    EXPECT_EQ(streamed.entries[i].cycle, decoded.entries[i].cycle);
  // Exhausted reader stays exhausted.
  EXPECT_FALSE(reader.next().has_value());
}

TEST(BinaryTrace, EmptyTraceRoundTrips) {
  Trace empty;
  empty.num_flows = 4;
  const auto bytes = encode_binary_trace(empty);
  BinaryTraceReader reader(bytes);
  EXPECT_EQ(reader.entry_count(), 0u);
  EXPECT_EQ(reader.horizon(), 0u);
  EXPECT_FALSE(reader.next().has_value());
}

TEST(BinaryTrace, FileRoundTripAndSniff) {
  SynthSpec spec;
  spec.num_flows = 5;
  spec.horizon = 300;
  const Trace original = synthesize_trace(spec, 11);
  const std::string path = testing::TempDir() + "roundtrip.wst";
  save_binary_trace_file(path, original);
  EXPECT_TRUE(is_binary_trace_file(path));
  const Trace loaded = load_binary_trace_file(path);
  EXPECT_EQ(loaded.entries.size(), original.entries.size());
  EXPECT_EQ(loaded.total_flits(), original.total_flits());
  std::remove(path.c_str());
  EXPECT_FALSE(is_binary_trace_file(path));  // missing file: false, no throw
}

// --- Golden format pin -----------------------------------------------

TEST(BinaryTraceGolden, HeaderTotalsArePinned) {
  const auto bytes = golden_bytes();
  ASSERT_EQ(bytes.size(), 236u);
  BinaryTraceReader reader(bytes);
  EXPECT_EQ(reader.num_flows(), 16u);
  EXPECT_EQ(reader.entry_count(), 20u);
  EXPECT_EQ(reader.horizon(), 386u);
  EXPECT_EQ(reader.total_flits(), 435);
  EXPECT_EQ(reader.max_length(), 252);
  EXPECT_NE(reader.meta_json().find("wormsched-trace-meta-v1"),
            std::string::npos);
  EXPECT_NE(reader.meta_json().find("\"seed\":42"), std::string::npos);
}

TEST(BinaryTraceGolden, DecodesAndReencodesBitIdentically) {
  const auto bytes = golden_bytes();
  BinaryTraceReader reader(bytes);
  const std::string meta = reader.meta_json();
  const Trace trace = drain(reader);
  EXPECT_EQ(trace.entries.size(), 20u);
  EXPECT_EQ(trace.total_flits(), 435);
  // The golden bytes are reproducible from their own decode: writer and
  // reader agree on the version-1 layout exactly.
  EXPECT_EQ(encode_binary_trace(trace, meta), bytes);
}

// --- Rejection matrix ------------------------------------------------

TEST(BinaryTraceGolden, BadMagicIsRejected) {
  auto bytes = golden_bytes();
  bytes[0] = 'X';
  EXPECT_THROW((void)decode_binary_trace(bytes), SnapshotError);
  EXPECT_FALSE(is_binary_trace(bytes.data(), bytes.size()));
}

TEST(BinaryTraceGolden, WrongVersionIsRejectedWithClearMessage) {
  auto bytes = golden_bytes();
  bytes[kVersionOffset] = 0x7F;
  try {
    (void)decode_binary_trace(bytes);
    FAIL() << "wrong version was accepted";
  } catch (const SnapshotError& e) {
    EXPECT_NE(std::string(e.what()).find("version"), std::string::npos);
  }
}

TEST(BinaryTraceGolden, CrcCatchesAnySinglePayloadCorruption) {
  const auto bytes = golden_bytes();
  const std::size_t payload = payload_offset(bytes);
  for (std::size_t i = payload; i < bytes.size() - 4; ++i) {
    auto mutant = bytes;
    mutant[i] ^= 0xFF;
    EXPECT_THROW((void)decode_binary_trace(mutant), SnapshotError)
        << "corrupted byte " << i << " was accepted";
  }
}

TEST(BinaryTraceGolden, EveryTruncationFailsCleanly) {
  const auto bytes = golden_bytes();
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    const std::vector<std::uint8_t> cut(
        bytes.begin(), bytes.begin() + static_cast<std::ptrdiff_t>(len));
    bool threw = false;
    try {
      BinaryTraceReader reader(cut);
      (void)drain(reader);
    } catch (const SnapshotError&) {
      threw = true;
    }
    EXPECT_TRUE(threw) << "truncation at " << len << " was accepted";
  }
}

TEST(BinaryTraceGolden, MetaTotalDisagreementIsCaughtDespiteValidCrc) {
  // META section body starts after the section header (u32 tag +
  // u64 length): num_flows, entry_count, horizon, then i64 total_flits.
  auto bytes = golden_bytes();
  const std::size_t total_flits_at = payload_offset(bytes) + 12 + 24;
  std::int64_t total = 0;
  std::memcpy(&total, bytes.data() + total_flits_at, sizeof(total));
  ++total;
  std::memcpy(bytes.data() + total_flits_at, &total, sizeof(total));
  refresh_crc(bytes);
  EXPECT_THROW((void)decode_binary_trace(bytes), SnapshotError);
}

TEST(BinaryTraceGolden, ShrunkFlowCountRejectsOutOfRangeEntries) {
  // Same valid-CRC trick on num_flows: entries now name flows past the
  // declared range and the per-entry validation must catch them.
  auto bytes = golden_bytes();
  const std::size_t num_flows_at = payload_offset(bytes) + 12;
  const std::uint64_t one = 1;
  std::memcpy(bytes.data() + num_flows_at, &one, sizeof(one));
  refresh_crc(bytes);
  EXPECT_THROW((void)decode_binary_trace(bytes), SnapshotError);
}

TEST(BinaryTraceGolden, ZeroFlowCountIsRejected) {
  auto bytes = golden_bytes();
  const std::size_t num_flows_at = payload_offset(bytes) + 12;
  const std::uint64_t zero = 0;
  std::memcpy(bytes.data() + num_flows_at, &zero, sizeof(zero));
  refresh_crc(bytes);
  EXPECT_THROW((void)decode_binary_trace(bytes), SnapshotError);
}

TEST(BinaryTrace, VarintOverflowIsRejected) {
  // Hand-build a container whose single entry starts with an 11-byte
  // varint (ten continuation bytes): the decoder must throw, not wrap.
  SnapshotWriter payload;
  payload.begin_section(0x4154454D);  // "META"
  payload.u64(1);   // num_flows
  payload.u64(1);   // entry_count
  payload.u64(1);   // horizon
  payload.i64(1);   // total_flits
  payload.i64(1);   // max_length
  payload.end_section();
  payload.begin_section(0x52544E45);  // "ENTR"
  for (int i = 0; i < 10; ++i) payload.u8(0xFF);
  payload.u8(0x01);
  payload.end_section();

  SnapshotWriter file;
  for (const char c : {'W', 'S', 'T', 'R', 'A', 'C', 'E', '\0'})
    file.u8(static_cast<std::uint8_t>(c));
  file.u32(kBinaryTraceFormatVersion);
  file.u32(0);
  file.str("{}");
  file.u64(payload.bytes().size());
  file.raw(payload.bytes().data(), payload.bytes().size());
  file.u32(snapshot_crc32(payload.bytes().data(), payload.bytes().size()));

  EXPECT_THROW((void)decode_binary_trace(file.bytes()), SnapshotError);
}

// --- Synthesizer determinism -----------------------------------------

TEST(TraceSynth, SameSeedSameTraceDifferentSeedDiffers) {
  SynthSpec spec;
  spec.num_flows = 32;
  spec.horizon = 1'500;
  spec.churn_epoch = 250;
  const Trace a = synthesize_trace(spec, 5);
  const Trace b = synthesize_trace(spec, 5);
  const Trace c = synthesize_trace(spec, 6);
  ASSERT_EQ(a.entries.size(), b.entries.size());
  for (std::size_t i = 0; i < a.entries.size(); ++i) {
    EXPECT_EQ(a.entries[i].cycle, b.entries[i].cycle);
    EXPECT_EQ(a.entries[i].flow, b.entries[i].flow);
    EXPECT_EQ(a.entries[i].length, b.entries[i].length);
  }
  EXPECT_EQ(encode_binary_trace(a), encode_binary_trace(b));
  EXPECT_NE(encode_binary_trace(a), encode_binary_trace(c));
}

TEST(TraceSynth, StreamingSinkMatchesMaterializedTrace) {
  SynthSpec spec;
  spec.num_flows = 16;
  spec.horizon = 800;
  spec.incast_every = 200;
  const Trace whole = synthesize_trace(spec, 21);
  BinaryTraceWriter writer(spec.num_flows);
  synthesize_trace(spec, 21,
                   [&](const TraceEntry& e) { writer.append(e); });
  EXPECT_EQ(writer.finish(), encode_binary_trace(whole));
}

TEST(TraceSynth, EntriesAreOrderedInRangeAndRoughlyAtLoad) {
  SynthSpec spec;
  spec.num_flows = 100;
  spec.horizon = 20'000;
  spec.load = 0.8;
  const Trace trace = synthesize_trace(spec, 77);
  Cycle prev = 0;
  for (const TraceEntry& e : trace.entries) {
    EXPECT_GE(e.cycle, prev);
    EXPECT_LT(e.cycle, spec.horizon);
    EXPECT_LT(e.flow.index(), spec.num_flows);
    EXPECT_GT(e.length, 0);
    prev = e.cycle;
  }
  const double offered = static_cast<double>(trace.total_flits()) /
                         static_cast<double>(spec.horizon);
  EXPECT_GT(offered, 0.5 * spec.load);
  EXPECT_LT(offered, 1.5 * spec.load);
}

}  // namespace
}  // namespace wormsched::traffic
