#include "traffic/length.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace wormsched::traffic {
namespace {

TEST(LengthSpec, ConstantAlwaysSame) {
  Rng rng(1);
  const auto spec = LengthSpec::constant(17);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(sample_length(rng, spec), 17);
  EXPECT_DOUBLE_EQ(spec.mean_length(), 17.0);
  EXPECT_EQ(spec.max_length(), 17);
}

TEST(LengthSpec, UniformStaysInRangeWithCorrectMean) {
  Rng rng(2);
  const auto spec = LengthSpec::uniform(1, 64);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const Flits len = sample_length(rng, spec);
    ASSERT_GE(len, 1);
    ASSERT_LE(len, 64);
    sum += static_cast<double>(len);
  }
  EXPECT_NEAR(sum / n, 32.5, 0.3);
  EXPECT_DOUBLE_EQ(spec.mean_length(), 32.5);
}

TEST(LengthSpec, TruncExpMatchesAnalyticMean) {
  Rng rng(3);
  const auto spec = LengthSpec::truncated_exponential(0.2, 1, 64);
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(sample_length(rng, spec));
  EXPECT_NEAR(sum / n, spec.mean_length(), 0.05);
  // Analytic mean of the discrete truncated law with lambda=0.2 on [1,64]:
  // 1 + e^{-0.2}/(1 - e^{-0.2}) ~= 5.52 (truncation at 64 is negligible).
  // Small packets dominate — the Fig. 6 regime.
  EXPECT_NEAR(spec.mean_length(), 5.52, 0.02);
}

TEST(LengthSpec, BimodalSplitsMass) {
  Rng rng(4);
  const auto spec = LengthSpec::bimodal(2, 100, 0.75);
  int small = 0;
  const int n = 40000;
  for (int i = 0; i < n; ++i) {
    const Flits len = sample_length(rng, spec);
    ASSERT_TRUE(len == 2 || len == 100);
    if (len == 2) ++small;
  }
  EXPECT_NEAR(static_cast<double>(small) / n, 0.75, 0.01);
  EXPECT_DOUBLE_EQ(spec.mean_length(), 0.75 * 2 + 0.25 * 100);
}

TEST(LengthSpec, DescribeNamesTheLaw) {
  EXPECT_EQ(LengthSpec::uniform(1, 64).describe(), "U[1,64]");
  EXPECT_NE(LengthSpec::truncated_exponential(0.2, 1, 64)
                .describe()
                .find("TruncExp"),
            std::string::npos);
}

}  // namespace
}  // namespace wormsched::traffic
