#include "traffic/workload.hpp"

#include <gtest/gtest.h>

namespace wormsched::traffic {
namespace {

WorkloadSpec two_flow_spec() {
  WorkloadSpec spec;
  FlowSpec a;
  a.arrival = ArrivalSpec::bernoulli(0.02);
  a.length = LengthSpec::uniform(1, 64);
  FlowSpec b;
  b.arrival = ArrivalSpec::bernoulli(0.04);
  b.length = LengthSpec::uniform(1, 128);
  spec.flows = {a, b};
  return spec;
}

TEST(Workload, OfferedLoadIsSumOfFlowLoads) {
  const auto spec = two_flow_spec();
  EXPECT_NEAR(spec.offered_load(), 0.02 * 32.5 + 0.04 * 64.5, 1e-12);
}

TEST(Workload, MaxPacketLengthIsMax) {
  EXPECT_EQ(two_flow_spec().max_packet_length(), 128);
}

TEST(Workload, TraceIsTimeOrderedAndInRange) {
  const Trace trace = generate_trace(two_flow_spec(), 50000, 42);
  ASSERT_FALSE(trace.entries.empty());
  EXPECT_EQ(trace.num_flows, 2u);
  Cycle prev = 0;
  for (const TraceEntry& e : trace.entries) {
    EXPECT_GE(e.cycle, prev);
    prev = e.cycle;
    EXPECT_LT(e.cycle, 50000u);
    EXPECT_LT(e.flow.index(), 2u);
    EXPECT_GE(e.length, 1);
    EXPECT_LE(e.length, e.flow.index() == 0 ? 64 : 128);
  }
}

TEST(Workload, TraceIsDeterministicPerSeed) {
  const Trace a = generate_trace(two_flow_spec(), 20000, 7);
  const Trace b = generate_trace(two_flow_spec(), 20000, 7);
  ASSERT_EQ(a.entries.size(), b.entries.size());
  for (std::size_t i = 0; i < a.entries.size(); ++i) {
    EXPECT_EQ(a.entries[i].cycle, b.entries[i].cycle);
    EXPECT_EQ(a.entries[i].flow, b.entries[i].flow);
    EXPECT_EQ(a.entries[i].length, b.entries[i].length);
  }
}

TEST(Workload, DifferentSeedsDiffer) {
  const Trace a = generate_trace(two_flow_spec(), 20000, 7);
  const Trace b = generate_trace(two_flow_spec(), 20000, 8);
  bool differs = a.entries.size() != b.entries.size();
  for (std::size_t i = 0; !differs && i < a.entries.size(); ++i)
    differs = a.entries[i].cycle != b.entries[i].cycle ||
              a.entries[i].length != b.entries[i].length;
  EXPECT_TRUE(differs);
}

TEST(Workload, InjectUntilCutsTheTrace) {
  auto spec = two_flow_spec();
  spec.inject_until = 1000;
  const Trace trace = generate_trace(spec, 50000, 42);
  for (const TraceEntry& e : trace.entries) EXPECT_LT(e.cycle, 1000u);
}

TEST(Workload, TraceVolumeTracksOfferedLoad) {
  const auto spec = two_flow_spec();
  const Cycle horizon = 400000;
  const Trace trace = generate_trace(spec, horizon, 11);
  const double measured = static_cast<double>(trace.total_flits()) /
                          static_cast<double>(horizon);
  EXPECT_NEAR(measured, spec.offered_load(), 0.15 * spec.offered_load());
}

TEST(Workload, PerFlowHelpers) {
  const Trace trace = generate_trace(two_flow_spec(), 30000, 5);
  EXPECT_EQ(trace.flow_flits(FlowId(0)) + trace.flow_flits(FlowId(1)),
            trace.total_flits());
  EXPECT_LE(trace.max_observed_length(), 128);
  EXPECT_GE(trace.max_observed_length(), 1);
}

TEST(Workload, ChangingOneFlowDoesNotPerturbAnother) {
  // Per-flow RNG streams: flow 0's arrivals stay identical when flow 1's
  // parameters change.
  auto spec_a = two_flow_spec();
  auto spec_b = two_flow_spec();
  spec_b.flows[1].arrival.rate = 0.08;
  const Trace a = generate_trace(spec_a, 20000, 3);
  const Trace b = generate_trace(spec_b, 20000, 3);
  std::vector<std::pair<Cycle, Flits>> flow0_a, flow0_b;
  for (const auto& e : a.entries)
    if (e.flow == FlowId(0)) flow0_a.emplace_back(e.cycle, e.length);
  for (const auto& e : b.entries)
    if (e.flow == FlowId(0)) flow0_b.emplace_back(e.cycle, e.length);
  EXPECT_EQ(flow0_a, flow0_b);
}

}  // namespace
}  // namespace wormsched::traffic
