#include "traffic/arrival.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "common/stats.hpp"

namespace wormsched::traffic {
namespace {

std::uint64_t count_arrivals(ArrivalProcess& proc, Cycle cycles) {
  std::uint64_t total = 0;
  for (Cycle t = 0; t < cycles; ++t) total += proc.packets_this_cycle(t);
  return total;
}

TEST(Arrival, BernoulliLongRunRate) {
  ArrivalProcess proc(ArrivalSpec::bernoulli(0.05), Rng(1));
  const auto total = count_arrivals(proc, 200000);
  EXPECT_NEAR(static_cast<double>(total) / 200000.0, 0.05, 0.003);
}

TEST(Arrival, BernoulliAtMostOnePerCycle) {
  ArrivalProcess proc(ArrivalSpec::bernoulli(0.99), Rng(2));
  for (Cycle t = 0; t < 1000; ++t) EXPECT_LE(proc.packets_this_cycle(t), 1u);
}

TEST(Arrival, PoissonLongRunRate) {
  ArrivalProcess proc(ArrivalSpec::poisson(0.08), Rng(3));
  const auto total = count_arrivals(proc, 200000);
  EXPECT_NEAR(static_cast<double>(total) / 200000.0, 0.08, 0.004);
}

TEST(Arrival, PoissonCanBatchWithinACycle) {
  // With rate 2/cycle multi-arrivals per cycle must occur.
  ArrivalProcess proc(ArrivalSpec::poisson(2.0), Rng(4));
  bool saw_batch = false;
  for (Cycle t = 0; t < 1000 && !saw_batch; ++t)
    saw_batch = proc.packets_this_cycle(t) >= 2;
  EXPECT_TRUE(saw_batch);
}

TEST(Arrival, PeriodicExactSpacing) {
  ArrivalProcess proc(ArrivalSpec::periodic(0.1), Rng(5));
  std::vector<Cycle> arrivals;
  for (Cycle t = 0; t < 100; ++t)
    if (proc.packets_this_cycle(t) > 0) arrivals.push_back(t);
  ASSERT_EQ(arrivals.size(), 10u);
  for (std::size_t i = 1; i < arrivals.size(); ++i)
    EXPECT_EQ(arrivals[i] - arrivals[i - 1], 10u);
}

TEST(Arrival, OnOffLongRunRateMatchesDutyCycle) {
  const auto spec = ArrivalSpec::on_off(0.5, 200.0, 200.0);
  ArrivalProcess proc(spec, Rng(6));
  const auto total = count_arrivals(proc, 400000);
  EXPECT_NEAR(static_cast<double>(total) / 400000.0, spec.mean_rate(), 0.02);
  EXPECT_DOUBLE_EQ(spec.mean_rate(), 0.25);
}

TEST(Arrival, OnOffIsBurstier) {
  // Compare variance of per-window counts: on-off must exceed Bernoulli at
  // equal mean rate.
  auto windowed_variance = [](ArrivalProcess& proc) {
    RunningStat stat;
    for (int w = 0; w < 2000; ++w) {
      std::uint64_t count = 0;
      for (Cycle t = 0; t < 100; ++t)
        count += proc.packets_this_cycle(static_cast<Cycle>(w) * 100 + t);
      stat.add(static_cast<double>(count));
    }
    return stat.variance();
  };
  ArrivalProcess bern(ArrivalSpec::bernoulli(0.25), Rng(7));
  ArrivalProcess onoff(ArrivalSpec::on_off(0.5, 200.0, 200.0), Rng(8));
  EXPECT_GT(windowed_variance(onoff), 2.0 * windowed_variance(bern));
}

TEST(Arrival, ZeroRateNeverArrives) {
  ArrivalProcess proc(ArrivalSpec::bernoulli(0.0), Rng(9));
  EXPECT_EQ(count_arrivals(proc, 10000), 0u);
}

TEST(ArrivalSpec, DescribeNamesTheProcess) {
  EXPECT_NE(ArrivalSpec::poisson(0.1).describe().find("Poisson"),
            std::string::npos);
  EXPECT_NE(ArrivalSpec::on_off(0.5, 10, 20).describe().find("OnOff"),
            std::string::npos);
}

}  // namespace
}  // namespace wormsched::traffic
