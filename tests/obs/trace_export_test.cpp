// Golden tests for the trace exporters and run manifests: the Chrome JSON
// and timeline CSV renderings are deterministic for a given event
// sequence, so small sinks can be compared byte-for-byte.
#include "obs/trace_export.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "obs/manifest.hpp"

namespace wormsched::obs {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

TEST(ChromeTrace, GoldenTwoEventWindow) {
  TraceSink sink;
  sink.record(TraceEvent::packet_enqueue(5, /*flow=*/1, /*packet=*/9, 4));
  sink.record(TraceEvent::flit_eject(8, /*node=*/3, /*flow=*/1, /*packet=*/9,
                                     /*index=*/3, /*tail=*/true,
                                     /*latency=*/12.0));
  std::ostringstream os;
  write_chrome_trace(os, sink);
  EXPECT_EQ(os.str(),
            "{\"traceEvents\":[\n"
            "{\"name\":\"packet_enqueue\",\"cat\":\"sched\",\"ph\":\"i\","
            "\"s\":\"t\",\"ts\":5,\"pid\":0,\"tid\":1,"
            "\"args\":{\"packet\":9,\"length\":4}},\n"
            "{\"name\":\"flit_eject\",\"cat\":\"net\",\"ph\":\"i\","
            "\"s\":\"t\",\"ts\":8,\"pid\":0,\"tid\":3,"
            "\"args\":{\"flow\":1,\"packet\":9,\"index\":3,\"tail\":true,"
            "\"latency\":12}}\n"
            "],\"displayTimeUnit\":\"ms\",\"otherData\":{"
            "\"tool\":\"wormsched\",\"recorded\":2,\"dropped\":0,"
            "\"filtered\":0}}\n");
}

TEST(ChromeTrace, SchedulerEventsUseFlowTrackFabricEventsNodeTrack) {
  TraceSink sink;
  sink.record(TraceEvent::opportunity(1, /*flow=*/6, /*round=*/2, 3.0, 1.0,
                                      /*node=*/9, /*unit=*/4));
  sink.record(TraceEvent::router_stall(2, /*node=*/9, /*port=*/1));
  std::ostringstream os;
  write_chrome_trace(os, sink);
  const std::string out = os.str();
  // The opportunity rides the flow track even though it carries a node...
  EXPECT_NE(out.find("\"name\":\"opportunity\",\"cat\":\"sched\",\"ph\":\"i\","
                     "\"s\":\"t\",\"ts\":1,\"pid\":0,\"tid\":6"),
            std::string::npos)
      << out;
  // ...while the stall rides the node track.
  EXPECT_NE(out.find("\"name\":\"router_stall\",\"cat\":\"net\",\"ph\":\"i\","
                     "\"s\":\"t\",\"ts\":2,\"pid\":0,\"tid\":9"),
            std::string::npos)
      << out;
}

TEST(ChromeTrace, ViolationEmbedsEscapedNoteText) {
  TraceSink sink;
  const std::uint32_t idx = sink.note("sc_monotone: \"max\" went\nbackwards");
  sink.record(TraceEvent::violation(3, idx));
  std::ostringstream os;
  write_chrome_trace(os, sink);
  EXPECT_NE(os.str().find("{\"detail\":\"sc_monotone: \\\"max\\\" "
                          "went\\nbackwards\"}"),
            std::string::npos)
      << os.str();
}

TEST(TimelineCsv, GoldenServiceRows) {
  TraceSink sink;
  sink.record(TraceEvent::packet_enqueue(1, 0, 100, 3));
  sink.record(TraceEvent::opportunity(4, 0, /*round=*/2, 3.0, 1.0));
  sink.record(TraceEvent::packet_dequeue(4, 0, 100, 3, /*allowance=*/2.5,
                                         /*surplus=*/1.0));
  // Non-service events are omitted; non-tail ejects are omitted.
  sink.record(TraceEvent::router_stall(5, 1, 0));
  sink.record(TraceEvent::flit_eject(6, 2, 0, 100, 2, /*tail=*/false, 0.0));
  sink.record(TraceEvent::flit_eject(7, 2, 0, 100, 3, /*tail=*/true, 6.0));
  std::ostringstream os;
  write_service_timeline_csv(os, sink);
  EXPECT_EQ(os.str(),
            "cycle,event,flow,node,id,units,allowance,surplus\n"
            "1,packet_enqueue,0,0,100,3,0,0\n"
            "4,opportunity,0,0,2,0,3,1\n"
            "4,packet_dequeue,0,0,100,3,2.5,1\n"
            "7,flit_eject,0,2,100,1,6,0\n");
}

TEST(ExportTrace, WritesOnlyRequestedFiles) {
  TraceSink sink;
  sink.record(TraceEvent::round_boundary(1, 1, 0.0));
  const std::string dir = ::testing::TempDir();
  TraceRequest request;
  request.chrome_path = dir + "/ws_export_test.json";
  EXPECT_TRUE(request.enabled());
  export_trace(request, sink);
  const std::string json = slurp(request.chrome_path);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"round\""), std::string::npos);
  std::remove(request.chrome_path.c_str());

  TraceRequest none;
  EXPECT_FALSE(none.enabled());
  export_trace(none, sink);  // no paths, no files, no throw
}

TEST(ExportTrace, UnwritablePathThrows) {
  TraceSink sink;
  TraceRequest request;
  request.chrome_path = "/nonexistent-dir/trace.json";
  EXPECT_THROW(export_trace(request, sink), std::runtime_error);
}

TEST(WithSeedSuffix, InsertsBeforeExtension) {
  EXPECT_EQ(with_seed_suffix("trace.json", 3), "trace.seed3.json");
  EXPECT_EQ(with_seed_suffix("out/timeline.csv", 0), "out/timeline.seed0.csv");
  EXPECT_EQ(with_seed_suffix("noext", 2), "noext.seed2");
  // A dot in a directory name is not an extension.
  EXPECT_EQ(with_seed_suffix("run.v2/trace", 1), "run.v2/trace.seed1");
}

TEST(JsonEscape, EscapesQuotesBackslashesAndControls) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(json_escape("line\nbreak\ttab"), "line\\nbreak\\ttab");
  EXPECT_EQ(json_escape(std::string("\x01", 1)), "\\u0001");
}

TEST(RunManifest, GoldenJson) {
  RunManifest m;
  m.tool = "wormsched network";
  m.git_sha = "abc123";
  m.seed = 7;
  m.add_config("cycles", "2000");
  m.add_config("topo", "mesh8x8");
  m.add_counter("delivered_packets", 4721);
  m.add_counter("mean_latency", 18.25);
  m.violations = 2;
  m.trace_path = "trace.json";
  m.trace_recorded = 65536;
  m.trace_dropped = 12;
  std::ostringstream os;
  m.write(os);
  EXPECT_EQ(os.str(),
            "{\n"
            "  \"schema\": \"wormsched-manifest-v1\",\n"
            "  \"tool\": \"wormsched network\",\n"
            "  \"git_sha\": \"abc123\",\n"
            "  \"seed\": 7,\n"
            "  \"config\": {\n"
            "    \"cycles\": \"2000\",\n"
            "    \"topo\": \"mesh8x8\"\n"
            "  },\n"
            "  \"counters\": {\n"
            "    \"delivered_packets\": 4721,\n"
            "    \"mean_latency\": 18.25\n"
            "  },\n"
            "  \"violations\": 2,\n"
            "  \"trace\": {\"path\": \"trace.json\", \"recorded\": 65536, "
            "\"dropped\": 12}\n"
            "}\n");
}

TEST(RunManifest, EmptySectionsAndNullTrace) {
  RunManifest m;
  m.tool = "t";
  m.git_sha = "x";
  std::ostringstream os;
  m.write(os);
  EXPECT_EQ(os.str(),
            "{\n"
            "  \"schema\": \"wormsched-manifest-v1\",\n"
            "  \"tool\": \"t\",\n"
            "  \"git_sha\": \"x\",\n"
            "  \"seed\": 0,\n"
            "  \"config\": {},\n"
            "  \"counters\": {},\n"
            "  \"violations\": 0,\n"
            "  \"trace\": null\n"
            "}\n");
}

TEST(RunManifest, DefaultGitShaIsNeverEmpty) {
  RunManifest m;  // picks up current_git_sha()
  EXPECT_FALSE(m.git_sha.empty());
}

TEST(RunManifest, GitShaHonorsEnvOverride) {
  ::setenv("WORMSCHED_GIT_SHA", "deadbeef", 1);
  EXPECT_EQ(current_git_sha(), "deadbeef");
  ::unsetenv("WORMSCHED_GIT_SHA");
}

TEST(RunManifest, FileWriteRoundTrips) {
  RunManifest m;
  m.tool = "t";
  const std::string path = ::testing::TempDir() + "/ws_manifest_test.json";
  m.write_file(path);
  EXPECT_NE(slurp(path).find("wormsched-manifest-v1"), std::string::npos);
  std::remove(path.c_str());
  EXPECT_THROW(m.write_file("/nonexistent-dir/m.json"), std::runtime_error);
}

}  // namespace
}  // namespace wormsched::obs
