// End-to-end observability tests: the harness runners drive TraceSinks
// through the same wiring the CLI uses, and the exports must come out
// well-formed, deterministic, and free of any effect on the simulation.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "harness/network_sweep.hpp"
#include "harness/scenario.hpp"
#include "obs/trace_export.hpp"
#include "obs/trace_sink.hpp"
#include "traffic/workload.hpp"

namespace wormsched::harness {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

/// Cheap structural JSON sanity: balanced braces/brackets outside
/// strings, and the chrome envelope keys present.  (No JSON library in
/// the toolchain; CI additionally parses the file with python -m
/// json.tool.)
void expect_chrome_json_well_formed(const std::string& text) {
  ASSERT_FALSE(text.empty());
  EXPECT_EQ(text.compare(0, 16, "{\"traceEvents\":["), 0) << text.substr(0, 64);
  long depth = 0;
  bool in_string = false;
  bool escaped = false;
  for (const char c : text) {
    if (escaped) {
      escaped = false;
      continue;
    }
    if (c == '\\') {
      escaped = true;
    } else if (c == '"') {
      in_string = !in_string;
    } else if (!in_string && (c == '{' || c == '[')) {
      ++depth;
    } else if (!in_string && (c == '}' || c == ']')) {
      --depth;
      EXPECT_GE(depth, 0);
    }
  }
  EXPECT_EQ(depth, 0);
  EXPECT_FALSE(in_string);
  EXPECT_NE(text.find("\"otherData\""), std::string::npos);
}

traffic::WorkloadSpec small_workload() {
  traffic::WorkloadSpec spec;
  traffic::FlowSpec f;
  f.arrival = traffic::ArrivalSpec::bernoulli(0.05);
  f.length = traffic::LengthSpec::uniform(1, 8);
  spec.flows = {f, f, f};
  return spec;
}

TEST(TraceE2e, StandaloneErrRunRecordsSchedulerEvents) {
  ScenarioConfig config;
  config.horizon = 2000;
  config.drain = true;
  config.audit = true;  // shares the opportunity listener with the sink
  obs::TraceSink sink;
  config.trace = &sink;
  const ScenarioResult result = run_scenario("err", config, small_workload());
  EXPECT_GT(result.delays.packets(), 0u);
  EXPECT_GT(sink.count(obs::EventKind::kPacketEnqueue), 0u);
  EXPECT_EQ(sink.count(obs::EventKind::kPacketEnqueue),
            sink.count(obs::EventKind::kPacketDequeue));
  EXPECT_GT(sink.count(obs::EventKind::kOpportunity), 0u);
  EXPECT_GT(sink.count(obs::EventKind::kRoundBoundary), 0u);
  // The audit shared the same listener slot and still ran.
  EXPECT_GT(result.audit_opportunities, 0u);
  EXPECT_EQ(result.audit_violations, 0u);
}

TEST(TraceE2e, TracingDoesNotPerturbStandaloneResults) {
  ScenarioConfig config;
  config.horizon = 2000;
  config.drain = true;
  const ScenarioResult plain = run_scenario("err", config, small_workload());
  obs::TraceSink sink;
  config.trace = &sink;
  const ScenarioResult traced = run_scenario("err", config, small_workload());
  EXPECT_EQ(plain.end_cycle, traced.end_cycle);
  EXPECT_EQ(plain.delays.packets(), traced.delays.packets());
  EXPECT_DOUBLE_EQ(plain.delays.overall().mean(),
                   traced.delays.overall().mean());
}

NetworkScenarioConfig small_network() {
  NetworkScenarioConfig config;
  config.network.topo = wormhole::TopologySpec::mesh(4, 4);
  config.traffic.packets_per_node_per_cycle = 0.02;
  config.traffic.inject_until = 600;
  config.traffic.lengths = traffic::LengthSpec::uniform(1, 6);
  config.traffic.pattern.kind = wormhole::PatternSpec::Kind::kUniform;
  return config;
}

TEST(TraceE2e, NetworkRunExportsChromeJsonAndTimeline) {
  const std::string dir = ::testing::TempDir();
  NetworkScenarioConfig config = small_network();
  config.audit = true;
  config.trace.chrome_path = dir + "/ws_e2e_trace.json";
  config.trace.timeline_csv = dir + "/ws_e2e_timeline.csv";
  const NetworkScenarioResult result = run_network_scenario(config, 3);
  EXPECT_GT(result.delivered_packets, 0u);
  EXPECT_GT(result.trace_recorded, 0u);
  EXPECT_EQ(result.audit_violations, 0u);

  expect_chrome_json_well_formed(slurp(config.trace.chrome_path));
  const std::string csv = slurp(config.trace.timeline_csv);
  EXPECT_EQ(
      csv.rfind("cycle,event,flow,node,id,units,allowance,surplus\n", 0), 0u);
  EXPECT_NE(csv.find("flit_eject"), std::string::npos);
  std::remove(config.trace.chrome_path.c_str());
  std::remove(config.trace.timeline_csv.c_str());
}

TEST(TraceE2e, TracingDoesNotPerturbNetworkResults) {
  NetworkScenarioConfig config = small_network();
  const NetworkScenarioResult plain = run_network_scenario(config, 5);
  const std::string path = ::testing::TempDir() + "/ws_e2e_perturb.json";
  config.trace.chrome_path = path;
  const NetworkScenarioResult traced = run_network_scenario(config, 5);
  EXPECT_EQ(plain.end_cycle, traced.end_cycle);
  EXPECT_EQ(plain.delivered_packets, traced.delivered_packets);
  EXPECT_EQ(plain.delivered_flits, traced.delivered_flits);
  EXPECT_DOUBLE_EQ(plain.latency.mean(), traced.latency.mean());
  std::remove(path.c_str());
}

TEST(TraceE2e, EventMaskRestrictsRecordedKinds) {
  NetworkScenarioConfig config = small_network();
  config.trace.chrome_path = ::testing::TempDir() + "/ws_e2e_mask.json";
  config.trace.mask = obs::event_bit(obs::EventKind::kFlitEject);
  (void)run_network_scenario(config, 3);
  const std::string json = slurp(config.trace.chrome_path);
  EXPECT_NE(json.find("flit_eject"), std::string::npos);
  EXPECT_EQ(json.find("flit_inject"), std::string::npos);
  EXPECT_EQ(json.find("router_stall"), std::string::npos);
  std::remove(config.trace.chrome_path.c_str());
}

TEST(TraceE2e, SweepWritesPerSeedTraceFiles) {
  const std::string dir = ::testing::TempDir();
  NetworkScenarioConfig config = small_network();
  config.trace.chrome_path = dir + "/ws_e2e_sweep.json";
  SweepOptions sweep;
  sweep.base_seed = 9;
  sweep.seeds = 2;
  sweep.jobs = 2;
  const SweepResult r = sweep_network(
      config, sweep, [](const NetworkScenarioResult& run, SweepResult& out) {
        out.add("delivered", static_cast<double>(run.delivered_packets));
      });
  EXPECT_GT(r.mean("delivered"), 0.0);
  // Parallel workers each own a sink and a per-seed output path.
  for (const std::uint64_t k : {0ull, 1ull}) {
    const std::string path = obs::with_seed_suffix(config.trace.chrome_path, k);
    expect_chrome_json_well_formed(slurp(path));
    std::remove(path.c_str());
  }
}

TEST(TraceE2e, FaultedRunRecordsFaultEvents) {
  NetworkScenarioConfig config = small_network();
  config.traffic.packets_per_node_per_cycle = 0.05;
  config.faults = validate::FaultSpec::chaos(1);
  config.trace.chrome_path = ::testing::TempDir() + "/ws_e2e_fault.json";
  const NetworkScenarioResult result = run_network_scenario(config, 7);
  EXPECT_GT(result.delivered_packets, 0u);
  const std::string json = slurp(config.trace.chrome_path);
  EXPECT_NE(json.find("\"cat\":\"fault\""), std::string::npos);
  std::remove(config.trace.chrome_path.c_str());
}

}  // namespace
}  // namespace wormsched::harness
