// Tests for the shared tracing/manifest CLI surface: every traced front
// end (wormsched run / network) declares its flags through these helpers.
#include "obs/trace_cli.hpp"

#include <gtest/gtest.h>

namespace wormsched::obs {
namespace {

TEST(TraceCli, DefaultsAreDisabled) {
  CliParser cli("test");
  add_trace_options(cli);
  const char* argv[] = {"prog"};
  ASSERT_TRUE(cli.parse(1, argv));
  std::string error;
  const auto request = trace_request_from_cli(cli, &error);
  ASSERT_TRUE(request.has_value()) << error;
  EXPECT_FALSE(request->enabled());
  EXPECT_EQ(request->mask, kAllEventsMask);
  EXPECT_EQ(request->capacity, std::size_t{1} << 16);
  EXPECT_EQ(manifest_path_from_cli(cli), "");
}

TEST(TraceCli, FlagsFlowIntoRequest) {
  CliParser cli("test");
  add_trace_options(cli);
  const char* argv[] = {"prog",
                        "--trace=t.json",
                        "--trace-csv=t.csv",
                        "--trace-events=packet,violation",
                        "--trace-capacity=128",
                        "--manifest=m.json"};
  ASSERT_TRUE(cli.parse(6, argv));
  std::string error;
  const auto request = trace_request_from_cli(cli, &error);
  ASSERT_TRUE(request.has_value()) << error;
  EXPECT_TRUE(request->enabled());
  EXPECT_EQ(request->chrome_path, "t.json");
  EXPECT_EQ(request->timeline_csv, "t.csv");
  EXPECT_EQ(request->capacity, 128u);
  EXPECT_EQ(request->mask, event_bit(EventKind::kPacketEnqueue) |
                               event_bit(EventKind::kPacketDequeue) |
                               event_bit(EventKind::kViolation));
  EXPECT_EQ(manifest_path_from_cli(cli), "m.json");
}

TEST(TraceCli, BadEventListReportsError) {
  CliParser cli("test");
  add_trace_options(cli);
  const char* argv[] = {"prog", "--trace-events=nonsense"};
  ASSERT_TRUE(cli.parse(2, argv));
  std::string error;
  EXPECT_FALSE(trace_request_from_cli(cli, &error).has_value());
  EXPECT_NE(error.find("nonsense"), std::string::npos) << error;
}

TEST(TraceCli, ManifestFromCliCapturesEffectiveConfig) {
  CliParser cli("test");
  cli.add_option("cycles", "run length", "1000");
  add_trace_options(cli);
  const char* argv[] = {"prog", "--cycles=50"};
  ASSERT_TRUE(cli.parse(2, argv));
  const RunManifest m = manifest_from_cli("wormsched test", cli, 11);
  EXPECT_EQ(m.tool, "wormsched test");
  EXPECT_EQ(m.seed, 11u);
  bool saw_cycles = false;
  for (const auto& [key, value] : m.config) {
    if (key == "cycles") {
      saw_cycles = true;
      EXPECT_EQ(value, "50");
    }
  }
  EXPECT_TRUE(saw_cycles);
  EXPECT_FALSE(m.git_sha.empty());
}

}  // namespace
}  // namespace wormsched::obs
