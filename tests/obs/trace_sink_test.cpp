// TraceSink unit tests: ring semantics (drop-oldest, snapshot order),
// kind-mask filtering, note interning bounds, and --trace-events parsing.
#include "obs/trace_sink.hpp"

#include <gtest/gtest.h>

namespace wormsched::obs {
namespace {

TraceSink::Options small(std::size_t capacity,
                         std::uint32_t mask = kAllEventsMask) {
  TraceSink::Options o;
  o.capacity = capacity;
  o.mask = mask;
  return o;
}

TEST(TraceSink, RecordsInOrderBelowCapacity) {
  TraceSink sink(small(8));
  for (Cycle t = 0; t < 5; ++t)
    sink.record(TraceEvent::packet_enqueue(t, /*flow=*/2, /*packet=*/t, 3));
  EXPECT_EQ(sink.size(), 5u);
  EXPECT_EQ(sink.recorded(), 5u);
  EXPECT_EQ(sink.dropped(), 0u);
  const auto events = sink.snapshot();
  ASSERT_EQ(events.size(), 5u);
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].cycle, i);
    EXPECT_EQ(events[i].kind, EventKind::kPacketEnqueue);
  }
}

TEST(TraceSink, FullRingDropsOldestAndSnapshotsOldestFirst) {
  TraceSink sink(small(4));
  for (Cycle t = 0; t < 10; ++t)
    sink.record(TraceEvent::round_boundary(t, /*round=*/t, 0.0));
  EXPECT_EQ(sink.size(), 4u);
  EXPECT_EQ(sink.recorded(), 10u);
  EXPECT_EQ(sink.dropped(), 6u);
  const auto events = sink.snapshot();
  ASSERT_EQ(events.size(), 4u);
  // The retained window is the most recent events, oldest first.
  for (std::size_t i = 0; i < events.size(); ++i)
    EXPECT_EQ(events[i].cycle, 6 + i);
}

TEST(TraceSink, MaskFiltersAndCounts) {
  TraceSink sink(small(16, event_bit(EventKind::kOpportunity)));
  sink.record(TraceEvent::opportunity(1, 0, 1, 2.0, 0.0));
  sink.record(TraceEvent::round_boundary(1, 1, 0.0));
  sink.record(TraceEvent::router_stall(2, 3, 0));
  EXPECT_EQ(sink.size(), 1u);
  EXPECT_EQ(sink.recorded(), 1u);
  EXPECT_EQ(sink.filtered(), 2u);
  EXPECT_EQ(sink.count(EventKind::kOpportunity), 1u);
  EXPECT_EQ(sink.count(EventKind::kRoundBoundary), 0u);
  EXPECT_TRUE(sink.wants(EventKind::kOpportunity));
  EXPECT_FALSE(sink.wants(EventKind::kRouterStall));
}

TEST(TraceSink, PerKindCountersTrackAcceptedEvents) {
  TraceSink sink(small(4));
  for (std::uint64_t i = 0; i < 7; ++i)
    sink.record(TraceEvent::flit_inject(i, 0, 0, i, 0));
  // Ring overwrites don't decrement the lifetime per-kind counter.
  EXPECT_EQ(sink.count(EventKind::kFlitInject), 7u);
}

TEST(TraceSink, ClockIsStampedByDriver) {
  TraceSink sink;
  EXPECT_EQ(sink.now(), 0u);
  sink.set_now(42);
  EXPECT_EQ(sink.now(), 42u);
}

TEST(TraceSink, ZeroCapacityClampsToOne) {
  TraceSink sink(small(0));
  EXPECT_EQ(sink.capacity(), 1u);
  sink.record(TraceEvent::fault_link_stall(1));
  sink.record(TraceEvent::fault_link_stall(2));
  const auto events = sink.snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].cycle, 2u);
}

TEST(TraceSink, NoteInterningIsBounded) {
  TraceSink sink;
  for (std::size_t i = 0; i < TraceSink::kNoteLimit; ++i) {
    const std::uint32_t idx = sink.note("note " + std::to_string(i));
    EXPECT_EQ(idx, i);
  }
  EXPECT_EQ(sink.note_count(), TraceSink::kNoteLimit);
  // A violation storm reuses the last slot instead of growing memory.
  const std::uint32_t overflow_idx = sink.note("storm");
  EXPECT_EQ(overflow_idx, TraceSink::kNoteLimit - 1);
  EXPECT_EQ(sink.note_count(), TraceSink::kNoteLimit);
  EXPECT_EQ(sink.note_text(overflow_idx), "storm");
  EXPECT_EQ(sink.note_text(0), "note 0");
}

TEST(ParseEventMask, AllSelectsEverything) {
  std::string error;
  const auto mask = parse_event_mask("all", &error);
  ASSERT_TRUE(mask.has_value()) << error;
  EXPECT_EQ(*mask, kAllEventsMask);
}

TEST(ParseEventMask, GroupsCompose) {
  std::string error;
  const auto mask = parse_event_mask("packet,fault", &error);
  ASSERT_TRUE(mask.has_value()) << error;
  EXPECT_EQ(*mask, event_bit(EventKind::kPacketEnqueue) |
                       event_bit(EventKind::kPacketDequeue) |
                       event_bit(EventKind::kFaultLinkStall) |
                       event_bit(EventKind::kFaultCreditHold));
}

TEST(ParseEventMask, EveryDocumentedGroupParses) {
  for (const char* group : {"packet", "opportunity", "round", "flit", "stall",
                            "fault", "violation", "all"}) {
    std::string error;
    EXPECT_TRUE(parse_event_mask(group, &error).has_value())
        << group << ": " << error;
  }
}

TEST(ParseEventMask, UnknownGroupErrors) {
  std::string error;
  EXPECT_FALSE(parse_event_mask("packet,bogus", &error).has_value());
  EXPECT_NE(error.find("bogus"), std::string::npos) << error;
}

TEST(ParseEventMask, EmptyListErrors) {
  std::string error;
  EXPECT_FALSE(parse_event_mask("", &error).has_value());
  EXPECT_FALSE(parse_event_mask(",,", &error).has_value());
  EXPECT_EQ(error, "empty event list");
}

}  // namespace
}  // namespace wormsched::obs
