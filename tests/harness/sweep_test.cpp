#include "harness/sweep.hpp"

#include <gtest/gtest.h>

namespace wormsched::harness {
namespace {

traffic::WorkloadSpec light_workload() {
  traffic::WorkloadSpec spec;
  traffic::FlowSpec f;
  f.arrival = traffic::ArrivalSpec::bernoulli(0.01);
  f.length = traffic::LengthSpec::uniform(1, 8);
  spec.flows = {f, f};
  return spec;
}

MetricExtractor delay_extractor() {
  return [](const ScenarioResult& r, SweepResult& out) {
    out.add("mean_delay", r.delays.overall().mean());
    out.add("packets", static_cast<double>(r.delays.packets()));
  };
}

TEST(Sweep, AggregatesAcrossSeeds) {
  ScenarioConfig config;
  config.horizon = 5000;
  config.drain = true;
  const SweepResult result = sweep_scenario("err", config, light_workload(),
                                            /*base_seed=*/1, /*seeds=*/4,
                                            delay_extractor());
  ASSERT_TRUE(result.has("mean_delay"));
  EXPECT_EQ(result.stat("mean_delay").count(), 4u);
  EXPECT_GT(result.mean("mean_delay"), 0.0);
  EXPECT_GT(result.mean("packets"), 10.0);
}

TEST(Sweep, DifferentSeedsProduceVariance) {
  ScenarioConfig config;
  config.horizon = 5000;
  config.drain = true;
  const SweepResult result = sweep_scenario("err", config, light_workload(),
                                            1, 6, delay_extractor());
  EXPECT_GT(result.stddev("packets"), 0.0);
}

TEST(Sweep, SameBaseSeedReproduces) {
  ScenarioConfig config;
  config.horizon = 5000;
  config.drain = true;
  const SweepResult a = sweep_scenario("drr", config, light_workload(), 9, 3,
                                       delay_extractor());
  const SweepResult b = sweep_scenario("drr", config, light_workload(), 9, 3,
                                       delay_extractor());
  EXPECT_DOUBLE_EQ(a.mean("mean_delay"), b.mean("mean_delay"));
  EXPECT_DOUBLE_EQ(a.stddev("mean_delay"), b.stddev("mean_delay"));
}

TEST(Sweep, SummaryFormatsMeanAndSpread) {
  SweepResult result;
  result.add("x", 1.0);
  result.add("x", 3.0);
  EXPECT_EQ(result.summary("x", 1), "2.0 +/- 1.4");
  result.add("single_only", 5.0);
  EXPECT_EQ(result.summary("single_only", 0), "5");
}

TEST(Sweep, MetricsLists) {
  SweepResult result;
  result.add("b", 1.0);
  result.add("a", 1.0);
  const auto names = result.metrics();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "a");  // map order
  EXPECT_FALSE(result.has("c"));
}

}  // namespace
}  // namespace wormsched::harness
