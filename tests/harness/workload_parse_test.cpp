#include "harness/workload_parse.hpp"

#include <gtest/gtest.h>

namespace wormsched::harness {
namespace {

TEST(WorkloadParse, SingleUniformFlow) {
  const auto parsed = parse_workload("bern:0.01:u1-64");
  ASSERT_TRUE(parsed.has_value());
  ASSERT_EQ(parsed->spec.flows.size(), 1u);
  const auto& f = parsed->spec.flows[0];
  EXPECT_EQ(f.arrival.kind, traffic::ArrivalSpec::Kind::kBernoulli);
  EXPECT_DOUBLE_EQ(f.arrival.rate, 0.01);
  EXPECT_EQ(f.length.kind, traffic::LengthSpec::Kind::kUniform);
  EXPECT_EQ(f.length.lo, 1);
  EXPECT_EQ(f.length.hi, 64);
  EXPECT_DOUBLE_EQ(parsed->weights[0], 1.0);
}

TEST(WorkloadParse, Fig4StyleSpec) {
  const auto parsed =
      parse_workload("bern:0.005:u1-64*2;bern:0.004:u1-128;bern:0.01:u1-64");
  ASSERT_TRUE(parsed.has_value());
  ASSERT_EQ(parsed->spec.flows.size(), 4u);
  EXPECT_EQ(parsed->spec.flows[0].length.hi, 64);
  EXPECT_EQ(parsed->spec.flows[1].length.hi, 64);
  EXPECT_EQ(parsed->spec.flows[2].length.hi, 128);
  EXPECT_DOUBLE_EQ(parsed->spec.flows[3].arrival.rate, 0.01);
}

TEST(WorkloadParse, AllLengthKinds) {
  const auto parsed = parse_workload(
      "bern:0.01:c16;bern:0.01:e0.2-1-64;bern:0.01:b2-100-0.9");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->spec.flows[0].length.kind,
            traffic::LengthSpec::Kind::kConstant);
  EXPECT_EQ(parsed->spec.flows[1].length.kind,
            traffic::LengthSpec::Kind::kTruncExp);
  EXPECT_DOUBLE_EQ(parsed->spec.flows[1].length.lambda, 0.2);
  EXPECT_EQ(parsed->spec.flows[2].length.kind,
            traffic::LengthSpec::Kind::kBimodal);
  EXPECT_DOUBLE_EQ(parsed->spec.flows[2].length.bimodal_small_prob, 0.9);
}

TEST(WorkloadParse, AllArrivalKinds) {
  const auto parsed = parse_workload(
      "poisson:0.02:u1-8;periodic:0.05:u1-8;onoff-100-300:0.5:u1-8");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->spec.flows[0].arrival.kind,
            traffic::ArrivalSpec::Kind::kPoisson);
  EXPECT_EQ(parsed->spec.flows[1].arrival.kind,
            traffic::ArrivalSpec::Kind::kPeriodic);
  const auto& onoff = parsed->spec.flows[2].arrival;
  EXPECT_EQ(onoff.kind, traffic::ArrivalSpec::Kind::kOnOff);
  EXPECT_DOUBLE_EQ(onoff.mean_on, 100.0);
  EXPECT_DOUBLE_EQ(onoff.mean_off, 300.0);
}

TEST(WorkloadParse, WeightsParsed) {
  const auto parsed = parse_workload("bern:0.01:u1-8:2.5*2;bern:0.01:u1-8");
  ASSERT_TRUE(parsed.has_value());
  ASSERT_EQ(parsed->weights.size(), 3u);
  EXPECT_DOUBLE_EQ(parsed->weights[0], 2.5);
  EXPECT_DOUBLE_EQ(parsed->weights[1], 2.5);
  EXPECT_DOUBLE_EQ(parsed->weights[2], 1.0);
}

TEST(WorkloadParse, ErrorsAreReported) {
  std::string error;
  EXPECT_FALSE(parse_workload("", &error).has_value());
  EXPECT_FALSE(parse_workload("bern:0.01", &error).has_value());
  EXPECT_NE(error.find("arrival:rate:length"), std::string::npos);
  EXPECT_FALSE(parse_workload("warp:0.01:u1-8", &error).has_value());
  EXPECT_NE(error.find("unknown arrival"), std::string::npos);
  EXPECT_FALSE(parse_workload("bern:fast:u1-8", &error).has_value());
  EXPECT_FALSE(parse_workload("bern:0.01:u8-1", &error).has_value());
  EXPECT_FALSE(parse_workload("bern:0.01:q5", &error).has_value());
  EXPECT_FALSE(parse_workload("bern:0.01:u1-8*0", &error).has_value());
  EXPECT_FALSE(parse_workload("bern:0.01:u1-8:-1", &error).has_value());
}

TEST(WorkloadParse, ParsedSpecGeneratesTraffic) {
  const auto parsed = parse_workload("bern:0.05:u1-8*3");
  ASSERT_TRUE(parsed.has_value());
  const auto trace = traffic::generate_trace(parsed->spec, 10000, 1);
  EXPECT_GT(trace.entries.size(), 1000u);
  EXPECT_EQ(trace.num_flows, 3u);
}

}  // namespace
}  // namespace wormsched::harness
