// The parallel-sweep determinism contract (docs/PERFORMANCE.md): seeds
// fan across workers but fold in seed order, so every aggregate is
// byte-identical for any --jobs value.  These tests pin exact equality —
// EXPECT_EQ on doubles, not near — between jobs=1 and jobs=4 for both
// the standalone and the network sweep paths.
#include <gtest/gtest.h>

#include "harness/network_sweep.hpp"
#include "harness/sweep.hpp"

namespace wormsched::harness {
namespace {

traffic::WorkloadSpec light_workload() {
  traffic::WorkloadSpec spec;
  traffic::FlowSpec f;
  f.arrival = traffic::ArrivalSpec::bernoulli(0.02);
  f.length = traffic::LengthSpec::uniform(1, 8);
  spec.flows = {f, f, f};
  return spec;
}

MetricExtractor standalone_extractor() {
  return [](const ScenarioResult& r, SweepResult& out) {
    out.add("mean_delay", r.delays.overall().mean());
    out.add("served", static_cast<double>(r.service_log.grand_total()));
    out.add("end_cycle", static_cast<double>(r.end_cycle));
  };
}

void expect_identical(const SweepResult& a, const SweepResult& b) {
  const auto names = a.metrics();
  ASSERT_EQ(names, b.metrics());
  for (const auto& name : names) {
    const RunningStat& sa = a.stat(name);
    const RunningStat& sb = b.stat(name);
    EXPECT_EQ(sa.count(), sb.count()) << name;
    // Exact bit equality, not EXPECT_DOUBLE_EQ: the fold order is the
    // contract, and identical order means identical rounding.
    EXPECT_EQ(sa.mean(), sb.mean()) << name;
    EXPECT_EQ(sa.stddev(), sb.stddev()) << name;
    EXPECT_EQ(sa.min(), sb.min()) << name;
    EXPECT_EQ(sa.max(), sb.max()) << name;
  }
}

TEST(SweepParallel, StandaloneJobs4MatchesJobs1Exactly) {
  ScenarioConfig config;
  config.horizon = 4000;
  config.drain = true;
  SweepOptions serial;
  serial.base_seed = 11;
  serial.seeds = 6;
  serial.jobs = 1;
  SweepOptions parallel = serial;
  parallel.jobs = 4;
  const SweepResult a = sweep_scenario("err", config, light_workload(),
                                       serial, standalone_extractor());
  const SweepResult b = sweep_scenario("err", config, light_workload(),
                                       parallel, standalone_extractor());
  ASSERT_EQ(a.stat("served").count(), 6u);
  expect_identical(a, b);
}

TEST(SweepParallel, LegacyOverloadMatchesOptionsOverload) {
  ScenarioConfig config;
  config.horizon = 4000;
  config.drain = true;
  SweepOptions options;
  options.base_seed = 3;
  options.seeds = 4;
  options.jobs = 1;
  const SweepResult a = sweep_scenario("drr", config, light_workload(),
                                       options, standalone_extractor());
  const SweepResult b = sweep_scenario("drr", config, light_workload(),
                                       /*base_seed=*/3, /*seeds=*/4,
                                       standalone_extractor());
  expect_identical(a, b);
}

NetworkScenarioConfig small_network_point() {
  NetworkScenarioConfig point;
  point.network.topo = wormhole::TopologySpec::mesh(4, 4);
  point.traffic.packets_per_node_per_cycle = 0.02;
  point.traffic.inject_until = 2000;
  point.traffic.lengths = traffic::LengthSpec::uniform(1, 8);
  return point;
}

NetworkMetricExtractor network_extractor() {
  return [](const NetworkScenarioResult& r, SweepResult& out) {
    out.add("delivered", static_cast<double>(r.delivered_packets));
    out.add("flits", static_cast<double>(r.delivered_flits));
    out.add("mean_latency", r.latency.mean());
    out.add("p99_latency", r.p99_latency);
    out.add("end_cycle", static_cast<double>(r.end_cycle));
  };
}

TEST(SweepParallel, NetworkJobs4MatchesJobs1Exactly) {
  SweepOptions serial;
  serial.base_seed = 21;
  serial.seeds = 5;
  serial.jobs = 1;
  SweepOptions parallel = serial;
  parallel.jobs = 4;
  const SweepResult a =
      sweep_network(small_network_point(), serial, network_extractor());
  const SweepResult b =
      sweep_network(small_network_point(), parallel, network_extractor());
  ASSERT_EQ(a.stat("delivered").count(), 5u);
  EXPECT_GT(a.mean("delivered"), 0.0);
  expect_identical(a, b);
}

TEST(SweepParallel, JobsZeroMeansAllCoresAndStaysIdentical) {
  SweepOptions serial;
  serial.base_seed = 7;
  serial.seeds = 3;
  serial.jobs = 1;
  SweepOptions all_cores = serial;
  all_cores.jobs = 0;
  const SweepResult a =
      sweep_network(small_network_point(), serial, network_extractor());
  const SweepResult b =
      sweep_network(small_network_point(), all_cores, network_extractor());
  expect_identical(a, b);
}

}  // namespace
}  // namespace wormsched::harness
