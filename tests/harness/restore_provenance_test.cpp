// Regression tests: observability wiring must survive a checkpoint
// restore (docs/OBSERVABILITY.md).
//
// Two past-tense bugs pinned here: (1) the AuditLog violation-window
// dump — a violation reported after a restore must still produce
// `<trace>.violation.json`, now carrying the snapshot provenance
// (restored-from SHA, original seed, restore cycle) so a post-mortem can
// regenerate the exact run; (2) TraceSink kind masks are run-local
// wiring that must be re-applied on restore, not silently reset to
// all-events.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "harness/checkpoint.hpp"
#include "harness/network_sweep.hpp"
#include "obs/trace_event.hpp"
#include "validate/violation.hpp"
#include "wormhole/network.hpp"

namespace wormsched::harness {
namespace {

std::string temp_path(const std::string& name) {
  return testing::TempDir() + "provenance_test_" + name + ".json";
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

NetworkScenarioConfig traced_config(const std::string& chrome_path) {
  NetworkScenarioConfig config;
  config.network.topo = wormhole::TopologySpec::mesh(3, 3);
  config.traffic.packets_per_node_per_cycle = 0.03;
  config.traffic.inject_until = 2'000;
  config.trace.chrome_path = chrome_path;
  return config;
}

TEST(RestoreProvenance, ViolationAfterRestoreDumpsWindowWithProvenance) {
  const std::string chrome = temp_path("violation_run");
  const std::string dump = chrome + ".violation.json";
  std::remove(dump.c_str());

  NetworkScenarioConfig config = traced_config(chrome);
  validate::AuditLog log(validate::AuditLog::Mode::kCount);
  config.audit_log = &log;

  SnapshotFile file;
  {
    NetworkRun run(config, 77);
    run.advance_to(600);
    file = run.make_snapshot_file();
  }

  NetworkRun resumed(config, file);
  resumed.advance_to(900);
  // Plant a violation (as an auditor would report one) after the
  // restore: the window dump must fire from the restored run's wiring.
  resumed.audit_log().report("test.planted", "violation injected by test");
  (void)resumed.finish();

  const std::string dumped = slurp(dump);
  ASSERT_FALSE(dumped.empty()) << "no violation-window dump at " << dump;
  // The dump names the snapshot it continued from.
  EXPECT_NE(dumped.find("\"restored\":true"), std::string::npos);
  EXPECT_NE(dumped.find("\"restored_from_sha\":"), std::string::npos);
  EXPECT_NE(dumped.find("\"original_seed\":77"), std::string::npos);
  EXPECT_NE(dumped.find("\"restore_cycle\":600"), std::string::npos);
  // And contains the violation event itself.
  EXPECT_NE(dumped.find("violation"), std::string::npos);

  // The main trace export carries the same provenance block.
  const std::string main_trace = slurp(chrome);
  ASSERT_FALSE(main_trace.empty());
  EXPECT_NE(main_trace.find("\"restored\":true"), std::string::npos);
  EXPECT_NE(main_trace.find("\"original_seed\":77"), std::string::npos);

  std::remove(dump.c_str());
  std::remove(chrome.c_str());
}

TEST(RestoreProvenance, FreshRunTraceCarriesNoProvenanceBlock) {
  const std::string chrome = temp_path("fresh_run");
  NetworkScenarioConfig config = traced_config(chrome);
  NetworkRun run(config, 5);
  run.run_to_completion();
  (void)run.finish();
  const std::string trace = slurp(chrome);
  ASSERT_FALSE(trace.empty());
  EXPECT_EQ(trace.find("\"restored\""), std::string::npos);
  std::remove(chrome.c_str());
}

TEST(RestoreProvenance, TraceKindMaskSurvivesRestore) {
  // Request only fault + violation events: a restored run must keep
  // filtering flit traffic out, not fall back to the all-events mask.
  const std::string chrome = temp_path("masked_run");
  NetworkScenarioConfig config = traced_config(chrome);
  config.trace.mask = obs::event_bit(obs::EventKind::kViolation) |
                      obs::event_bit(obs::EventKind::kFaultLinkStall) |
                      obs::event_bit(obs::EventKind::kFaultCreditHold);

  SnapshotFile file;
  {
    NetworkRun run(config, 13);
    run.advance_to(500);
    file = run.make_snapshot_file();
  }
  NetworkRun resumed(config, file);
  resumed.run_to_completion();
  const NetworkScenarioResult result = resumed.finish();

  // Plenty of flit traffic happened, none of it recorded: a fault-free
  // run under this mask records nothing at all.
  EXPECT_GT(result.delivered_flits, 0u);
  EXPECT_EQ(result.trace_recorded, 0u);

  const std::string trace = slurp(chrome);
  EXPECT_EQ(trace.find("flit_inject"), std::string::npos);
  EXPECT_EQ(trace.find("flit_eject"), std::string::npos);
  std::remove(chrome.c_str());
}

TEST(RestoreProvenance, RestoreCountSurvivesManifestRoundTrip) {
  // The checkpoint's own manifest (wormsched-manifest-v1) records the
  // chain depth; each restore increments it.
  NetworkScenarioConfig config;
  config.network.topo = wormhole::TopologySpec::mesh(3, 3);
  config.traffic.inject_until = 1'000;

  NetworkRun first(config, 9);
  first.advance_to(200);
  const SnapshotFile a = first.make_snapshot_file();
  EXPECT_NE(a.manifest_json.find("\"restore_count\": \"0\""),
            std::string::npos)
      << a.manifest_json;

  NetworkRun second(config, a);
  second.advance_to(400);
  const SnapshotFile b = second.make_snapshot_file();
  EXPECT_NE(b.manifest_json.find("\"restore_count\": \"1\""),
            std::string::npos)
      << b.manifest_json;
}

}  // namespace
}  // namespace wormsched::harness
