// Soak-mode memory-flatness audit: a windowed-stats soak must reach a
// steady state with ZERO heap allocations per cycle, so memory stays
// flat over unbounded horizons (docs/TESTING.md).
//
// The hook is a counting override of the global allocation functions
// (same four shapes as wormhole/router_alloc_test.cpp), plus RSS
// sampling from /proc/self/statm.  The run warms up until every lazy
// structure has reached its high-water mark — ring buffers at depth, the
// latency quantile reservoir at capacity (the last allocator in the
// delivery path) — then the second half of the run must allocate
// nothing and hold RSS flat.
//
// The default horizon keeps the sanitizer CI legs tolerable; the
// soak-smoke CI job reruns this binary with WS_SOAK_CYCLES=5000000 for
// the full five-million-cycle claim.
#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <new>

#include "harness/checkpoint.hpp"
#include "harness/network_sweep.hpp"
#include "metrics/windowed.hpp"
#include "wormhole/network.hpp"

namespace {
std::atomic<std::uint64_t> g_allocations{0};

void* counted_alloc(std::size_t size, std::size_t alignment) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  void* p = nullptr;
  if (posix_memalign(&p, alignment < sizeof(void*) ? sizeof(void*) : alignment,
                     size == 0 ? 1 : size) != 0) {
    throw std::bad_alloc();
  }
  return p;
}

std::uint64_t allocations() {
  return g_allocations.load(std::memory_order_relaxed);
}
}  // namespace

void* operator new(std::size_t size) {
  return counted_alloc(size, alignof(std::max_align_t));
}
void* operator new[](std::size_t size) {
  return counted_alloc(size, alignof(std::max_align_t));
}
void* operator new(std::size_t size, std::align_val_t align) {
  return counted_alloc(size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return counted_alloc(size, static_cast<std::size_t>(align));
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace wormsched::harness {
namespace {

/// Resident set size in bytes, from /proc/self/statm.
std::uint64_t rss_bytes() {
  std::ifstream statm("/proc/self/statm");
  std::uint64_t total_pages = 0;
  std::uint64_t resident_pages = 0;
  statm >> total_pages >> resident_pages;
  return resident_pages * static_cast<std::uint64_t>(sysconf(_SC_PAGESIZE));
}

Cycle soak_cycles() {
  if (const char* env = std::getenv("WS_SOAK_CYCLES")) {
    const long long v = std::atoll(env);
    if (v > 0) return static_cast<Cycle>(v);
  }
  return 2'000'000;
}

TEST(SoakAlloc, SteadyStateAllocatesNothingAndHoldsRssFlat) {
  const Cycle cycles = soak_cycles();
  const Cycle window = 10'000;

  NetworkScenarioConfig config;
  config.network.topo = wormhole::TopologySpec::mesh(8, 8);
  config.network.record_delivered = false;  // the soak contract
  config.traffic.packets_per_node_per_cycle = 0.02;
  config.traffic.lengths = traffic::LengthSpec::uniform(1, 16);
  config.traffic.inject_until = cycles;  // inject for the whole horizon

  metrics::WindowedConfig wconfig;
  wconfig.window = window;
  metrics::SteadyStateTracker tracker(wconfig);

  NetworkRun run(config, 7);

  // Warm-up phase: first half of the horizon.  Everything that grows
  // lazily must top out here; the quantile reservoir (capacity 2^20
  // samples) is the slowest filler, so assert it really is full before
  // the measured phase starts — otherwise the zero-alloc assertion
  // below would be vacuous about the delivery path.
  const Cycle measured_from = cycles / 2;
  while (!run.done() && run.now() < measured_from) {
    run.advance_to(std::min<Cycle>(run.now() + window, measured_from));
    tracker.observe(run.now(), run.network().latency_overall(),
                    run.network().delivered_flits());
  }
  ASSERT_FALSE(run.done());
  ASSERT_GE(run.network().latency_quantiles().sample_count(),
            std::uint64_t{1} << 20)
      << "warm-up too short to fill the latency reservoir; raise "
         "WS_SOAK_CYCLES";
  ASSERT_TRUE(tracker.warmed_up());

  // Measured phase: second half of the horizon.  The alloc counter is
  // read LAST: rss_bytes() itself opens an ifstream, whose filebuf is a
  // heap allocation that must not be charged to the simulator.
  const std::uint64_t rss_before = rss_bytes();
  const std::uint64_t delivered_before = run.network().delivered_packets();
  const std::uint64_t allocs_before = allocations();
  while (!run.done() && run.now() < cycles) {
    run.advance_to(std::min<Cycle>(run.now() + window, cycles));
    tracker.observe(run.now(), run.network().latency_overall(),
                    run.network().delivered_flits());
  }
  const std::uint64_t allocs_after = allocations();
  const std::uint64_t rss_after = rss_bytes();

  EXPECT_EQ(run.now(), cycles);
  // The steady-state phase delivered a lot of traffic...
  EXPECT_GT(run.network().delivered_packets(), delivered_before);
  // ...with zero heap allocations anywhere in the stack: fabric, NIC
  // queues, traffic source, accumulators, tracker.
  EXPECT_EQ(allocs_after - allocs_before, 0u)
      << "steady-state cycles allocated memory";
  // RSS flat: allow slack for lazily-touched pages of already-allocated
  // arenas (and sanitizer bookkeeping), but nothing resembling growth
  // proportional to the horizon.
  const std::uint64_t rss_growth =
      rss_after > rss_before ? rss_after - rss_before : 0;
  EXPECT_LT(rss_growth, std::uint64_t{8} * 1024 * 1024)
      << "RSS grew " << rss_growth << " bytes during steady state";

  const NetworkScenarioResult result = run.finish();
  EXPECT_GT(result.delivered_packets, 0u);
  EXPECT_GT(tracker.windows_closed(), 0u);
}

}  // namespace
}  // namespace wormsched::harness
