// Restore-equivalence differential harness — the checkpoint feature's
// headline test (docs/TESTING.md).
//
// Claim under test: running N cycles straight is indistinguishable from
// running k cycles, checkpointing, restoring (in a new runner, possibly
// with different run-local wiring such as thread count), and continuing
// to N.  "Indistinguishable" is exact: flit-for-flit delivery counts,
// bit-identical double statistics (restored accumulators continue the
// same floating-point stream), and identical auditor verdicts.
//
// The seed corpus spans 200 fabric runs across five configurations —
// plain, faulted, audited, faulted+audited, and sharded (threads > 1) —
// each split at a seed-dependent cycle so checkpoint boundaries fall at
// arbitrary points of injection and drain, plus a standalone-scheduler
// corpus over weighted and fault-perturbed workloads.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "common/snapshot.hpp"
#include "harness/checkpoint.hpp"
#include "harness/network_sweep.hpp"
#include "validate/violation.hpp"
#include "wormhole/network.hpp"

namespace wormsched::harness {
namespace {

constexpr std::uint64_t kSeedsPerConfig = 40;  // x5 configs = 200 seeds

NetworkScenarioConfig plain_config() {
  NetworkScenarioConfig config;
  config.network.topo = wormhole::TopologySpec::mesh(3, 3);
  config.traffic.packets_per_node_per_cycle = 0.03;
  config.traffic.lengths = traffic::LengthSpec::uniform(1, 8);
  config.traffic.inject_until = 800;
  return config;
}

NetworkScenarioConfig faulted_config() {
  NetworkScenarioConfig config = plain_config();
  config.faults.enabled = true;
  config.faults.seed = 400;
  config.faults.window = 64;
  config.faults.link_stall_rate = 0.05;
  config.faults.credit_stall_rate = 0.05;
  config.faults.churn_rate = 0.10;
  config.faults.burst_rate = 0.05;
  return config;
}

NetworkScenarioConfig audited_config() {
  NetworkScenarioConfig config = plain_config();
  config.audit = true;
  return config;
}

NetworkScenarioConfig faulted_audited_config() {
  NetworkScenarioConfig config = faulted_config();
  config.audit = true;
  return config;
}

NetworkScenarioConfig sharded_config() {
  NetworkScenarioConfig config = plain_config();
  config.network.shards = 4;
  config.network.threads = 2;
  return config;
}

/// Seed-dependent split point: boundaries must land at arbitrary cycles
/// of injection *and* drain, not a favoured phase.
Cycle split_cycle(std::uint64_t seed) { return 100 + (seed * 37) % 900; }

void expect_identical(const NetworkScenarioResult& a,
                      const NetworkScenarioResult& b,
                      const std::string& label) {
  EXPECT_EQ(a.end_cycle, b.end_cycle) << label;
  EXPECT_EQ(a.generated_packets, b.generated_packets) << label;
  EXPECT_EQ(a.delivered_packets, b.delivered_packets) << label;
  EXPECT_EQ(a.delivered_flits, b.delivered_flits) << label;
  EXPECT_EQ(a.latency.count(), b.latency.count()) << label;
  // EXPECT_EQ on doubles, not DOUBLE_EQ: bit-identity is the contract.
  EXPECT_EQ(a.latency.mean(), b.latency.mean()) << label;
  EXPECT_EQ(a.latency.sum(), b.latency.sum()) << label;
  EXPECT_EQ(a.latency.min(), b.latency.min()) << label;
  EXPECT_EQ(a.latency.max(), b.latency.max()) << label;
  EXPECT_EQ(a.latency.stddev(), b.latency.stddev()) << label;
  EXPECT_EQ(a.p99_latency, b.p99_latency) << label;
  // Identical auditor verdict.  Check/opportunity *counts* legitimately
  // differ (a restored run's auditors attach fresh at the restore
  // cycle); the verdict — how many invariant violations — may not.
  EXPECT_EQ(a.audit_violations, b.audit_violations) << label;
}

NetworkScenarioResult run_straight(const NetworkScenarioConfig& config,
                                   std::uint64_t seed) {
  NetworkRun run(config, seed);
  run.run_to_completion();
  return run.finish();
}

NetworkScenarioResult run_split(const NetworkScenarioConfig& config,
                                std::uint64_t seed, Cycle split,
                                const NetworkScenarioConfig& restore_config) {
  SnapshotFile file;
  {
    NetworkRun run(config, seed);
    run.advance_to(split);
    file = run.make_snapshot_file();
  }
  NetworkRun resumed(restore_config, file);
  resumed.run_to_completion();
  return resumed.finish();
}

void run_corpus(const NetworkScenarioConfig& config,
                const NetworkScenarioConfig& restore_config,
                std::uint64_t base_seed, const std::string& label) {
  for (std::uint64_t k = 0; k < kSeedsPerConfig; ++k) {
    const std::uint64_t seed = base_seed + k;
    // Audited runs use external count-mode logs so an (unexpected)
    // violation becomes a comparable count, not a Debug abort.
    NetworkScenarioConfig straight_config = config;
    NetworkScenarioConfig seg_config = config;
    NetworkScenarioConfig res_config = restore_config;
    validate::AuditLog straight_log(validate::AuditLog::Mode::kCount);
    validate::AuditLog split_log(validate::AuditLog::Mode::kCount);
    if (config.audit) {
      straight_config.audit_log = &straight_log;
      seg_config.audit_log = &split_log;
      res_config.audit_log = &split_log;
    }
    const NetworkScenarioResult a = run_straight(straight_config, seed);
    const NetworkScenarioResult b =
        run_split(seg_config, seed, split_cycle(seed), res_config);
    expect_identical(a, b, label + " seed " + std::to_string(seed));
    if (::testing::Test::HasFailure()) return;  // one seed's dump is enough
  }
}

TEST(RestoreDifferential, Plain200SeedCorpusPart) {
  run_corpus(plain_config(), plain_config(), 1000, "plain");
}

TEST(RestoreDifferential, Faulted) {
  run_corpus(faulted_config(), faulted_config(), 2000, "faulted");
}

TEST(RestoreDifferential, Audited) {
  run_corpus(audited_config(), audited_config(), 3000, "audited");
}

TEST(RestoreDifferential, FaultedAudited) {
  run_corpus(faulted_audited_config(), faulted_audited_config(), 4000,
             "faulted+audited");
}

TEST(RestoreDifferential, ShardedThreads2) {
  // Saved sharded, restored sharded — and the serial straight run is the
  // reference, so this additionally pins sharded == serial.
  run_corpus(sharded_config(), sharded_config(), 5000, "sharded");
}

TEST(RestoreDifferential, RestoreUnderDifferentThreadCount) {
  // A checkpoint written serially restores under threads=4 (and one
  // written sharded restores serially) with identical results: sharding
  // is run-local wiring, never snapshot state.
  NetworkScenarioConfig four = plain_config();
  four.network.shards = 4;
  four.network.threads = 4;
  for (std::uint64_t seed = 6000; seed < 6010; ++seed) {
    const NetworkScenarioResult a = run_straight(plain_config(), seed);
    const NetworkScenarioResult b =
        run_split(plain_config(), seed, split_cycle(seed), four);
    const NetworkScenarioResult c =
        run_split(four, seed, split_cycle(seed), plain_config());
    expect_identical(a, b, "serial->threads4 seed " + std::to_string(seed));
    expect_identical(a, c, "threads4->serial seed " + std::to_string(seed));
  }
}

TEST(RestoreDifferential, CheckpointChainMatchesStraight) {
  // checkpoint -> restore -> checkpoint -> restore: segmentation composes.
  const NetworkScenarioConfig config = faulted_config();
  for (std::uint64_t seed = 7000; seed < 7010; ++seed) {
    const NetworkScenarioResult a = run_straight(config, seed);

    SnapshotFile first;
    {
      NetworkRun run(config, seed);
      run.advance_to(200);
      first = run.make_snapshot_file();
    }
    SnapshotFile second;
    {
      NetworkRun run(config, first);
      run.advance_to(550);
      second = run.make_snapshot_file();
    }
    NetworkRun last(config, second);
    EXPECT_EQ(last.restore_count(), 2u);
    last.run_to_completion();
    expect_identical(a, last.finish(), "chain seed " + std::to_string(seed));
  }
}

/// --- Standalone-scheduler (ScenarioRun) corpus ---------------------------

void expect_identical(const ScenarioResult& a, const ScenarioResult& b,
                      const std::string& label) {
  EXPECT_EQ(a.end_cycle, b.end_cycle) << label;
  EXPECT_EQ(a.scheduler_name, b.scheduler_name) << label;
  ASSERT_EQ(a.num_flows(), b.num_flows()) << label;
  EXPECT_EQ(a.service_log.grand_total(), b.service_log.grand_total()) << label;
  for (std::size_t i = 0; i < a.num_flows(); ++i) {
    const FlowId flow(static_cast<FlowId::rep_type>(i));
    EXPECT_EQ(a.service_log.total(flow), b.service_log.total(flow))
        << label << " flow " << i;
  }
  EXPECT_EQ(a.delays.overall().count(), b.delays.overall().count()) << label;
  EXPECT_EQ(a.delays.overall().mean(), b.delays.overall().mean()) << label;
  EXPECT_EQ(a.delays.overall().sum(), b.delays.overall().sum()) << label;
  EXPECT_EQ(a.delays.overall().max(), b.delays.overall().max()) << label;
  EXPECT_EQ(a.service_starts, b.service_starts) << label;
  EXPECT_EQ(a.max_served_packet, b.max_served_packet) << label;
  EXPECT_EQ(a.residual_backlog, b.residual_backlog) << label;
  EXPECT_EQ(a.audit_violations, b.audit_violations) << label;
}

ScenarioSpec scenario_spec(const std::string& scheduler, std::uint64_t seed,
                           bool faulted) {
  ScenarioSpec spec;
  spec.scheduler = scheduler;
  // Weighted workload: the :2.5 weight and *2 replication come from the
  // workload grammar, so restored weights must survive via the snapshot.
  spec.workload_text = "bern:0.02:u1-8:2.5*2;bern:0.03:u1-16;bern:0.01:e0.2-1-64";
  spec.config.horizon = 3000;
  spec.config.drain = true;
  spec.config.seed = seed;
  if (faulted) {
    spec.faults.enabled = true;
    spec.faults.seed = seed + 17;
    spec.faults.churn_rate = 0.05;
    spec.faults.burst_rate = 0.05;
    spec.faults.trace_jitter_max = 8;
  }
  return spec;
}

void run_scenario_corpus(const std::string& scheduler, bool faulted,
                         std::uint64_t base_seed) {
  for (std::uint64_t seed = base_seed; seed < base_seed + 10; ++seed) {
    const ScenarioSpec spec = scenario_spec(scheduler, seed, faulted);
    ScenarioResult a = [&] {
      ScenarioRun run(spec);
      run.run_to_completion();
      return run.finish();
    }();

    const Cycle split = 200 + (seed * 53) % 2600;
    SnapshotFile file;
    {
      ScenarioRun run(spec);
      run.advance_to(split);
      file = run.make_snapshot_file();
    }
    ScenarioRun resumed(spec, file);
    EXPECT_TRUE(resumed.restored());
    resumed.run_to_completion();
    ScenarioResult b = resumed.finish();
    expect_identical(a, b, scheduler + (faulted ? " faulted" : "") +
                               " seed " + std::to_string(seed));
    if (::testing::Test::HasFailure()) return;
  }
}

TEST(RestoreDifferentialScenario, ErrWeighted) {
  run_scenario_corpus("err", /*faulted=*/false, 100);
}

TEST(RestoreDifferentialScenario, ErrFaulted) {
  run_scenario_corpus("err", /*faulted=*/true, 200);
}

TEST(RestoreDifferentialScenario, DrrWeighted) {
  run_scenario_corpus("drr", /*faulted=*/false, 300);
}

TEST(RestoreDifferentialScenario, WfqWeighted) {
  run_scenario_corpus("wfq", /*faulted=*/false, 400);
}

TEST(RestoreDifferentialScenario, RestoreIgnoresDivergentWiringSpec) {
  // The restore ctor takes sim-defining inputs from the checkpoint, not
  // from the caller's spec: a caller passing a different scheduler or
  // horizon still reproduces the saved run.
  const ScenarioSpec spec = scenario_spec("err", 42, /*faulted=*/false);
  ScenarioResult a = [&] {
    ScenarioRun run(spec);
    run.run_to_completion();
    return run.finish();
  }();

  SnapshotFile file;
  {
    ScenarioRun run(spec);
    run.advance_to(1000);
    file = run.make_snapshot_file();
  }
  ScenarioSpec divergent;
  divergent.scheduler = "drr";          // overridden by the checkpoint
  divergent.workload_text = "bern:0.5:c1";  // likewise
  divergent.config.horizon = 10;        // likewise
  ScenarioRun resumed(divergent, file);
  EXPECT_EQ(resumed.spec().scheduler, "err");
  resumed.run_to_completion();
  expect_identical(a, resumed.finish(), "divergent wiring");
}

}  // namespace
}  // namespace wormsched::harness
