#include "harness/scenario.hpp"

#include <gtest/gtest.h>

#include "metrics/fairness.hpp"

namespace wormsched::harness {
namespace {

traffic::WorkloadSpec simple_workload(std::size_t flows, double rate) {
  traffic::WorkloadSpec spec;
  for (std::size_t i = 0; i < flows; ++i) {
    traffic::FlowSpec f;
    f.arrival = traffic::ArrivalSpec::bernoulli(rate);
    f.length = traffic::LengthSpec::uniform(1, 16);
    spec.flows.push_back(f);
  }
  return spec;
}

TEST(Scenario, RunsEveryRegisteredScheduler) {
  ScenarioConfig config;
  config.horizon = 5000;
  const auto trace =
      traffic::generate_trace(simple_workload(3, 0.01), 5000, 1);
  for (const auto name : core::scheduler_names()) {
    const ScenarioResult result = run_scenario(name, config, trace);
    EXPECT_EQ(result.scheduler_name, name);
    EXPECT_EQ(result.end_cycle, 5000u);
    EXPECT_GT(result.service_log.grand_total(), 0) << name;
  }
}

TEST(Scenario, ConservationUnderLightLoad) {
  // Light load + no drain: everything injected early gets served.
  ScenarioConfig config;
  config.horizon = 20000;
  auto workload = simple_workload(3, 0.005);
  workload.inject_until = 15000;
  const auto trace = traffic::generate_trace(workload, config.horizon, 2);
  const auto result = run_scenario("err", config, trace);
  EXPECT_EQ(result.service_log.grand_total() + result.residual_backlog,
            trace.total_flits());
}

TEST(Scenario, DrainServesEverything) {
  ScenarioConfig config;
  config.horizon = 2000;
  config.drain = true;
  auto workload = simple_workload(4, 0.05);  // overloaded during injection
  workload.inject_until = 2000;
  const auto trace = traffic::generate_trace(workload, config.horizon, 3);
  const auto result = run_scenario("pbrr", config, trace);
  EXPECT_EQ(result.residual_backlog, 0);
  EXPECT_EQ(result.service_log.grand_total(), trace.total_flits());
  EXPECT_GE(result.end_cycle, 2000u);
  EXPECT_EQ(result.delays.packets(), trace.entries.size());
}

TEST(Scenario, MaxServedPacketTracksM) {
  ScenarioConfig config;
  config.horizon = 3000;
  config.drain = true;
  traffic::WorkloadSpec workload;
  traffic::FlowSpec f;
  f.arrival = traffic::ArrivalSpec::bernoulli(0.01);
  f.length = traffic::LengthSpec::constant(13);
  workload.flows.push_back(f);
  workload.inject_until = 3000;
  const auto result = run_scenario("fcfs", config, workload);
  EXPECT_EQ(result.max_served_packet, 13);
}

TEST(Scenario, ServiceStartsAreRecorded) {
  ScenarioConfig config;
  config.horizon = 3000;
  config.drain = true;
  auto workload = simple_workload(2, 0.01);
  workload.inject_until = 3000;
  const auto trace = traffic::generate_trace(workload, config.horizon, 4);
  const auto result = run_scenario("err", config, trace);
  EXPECT_EQ(result.service_starts.size(), trace.entries.size());
}

TEST(Scenario, WeightsReachTheScheduler) {
  ScenarioConfig config;
  config.horizon = 30000;
  config.weights = {3.0, 1.0};
  // Saturate both flows.
  traffic::WorkloadSpec workload;
  for (int i = 0; i < 2; ++i) {
    traffic::FlowSpec f;
    f.arrival = traffic::ArrivalSpec::bernoulli(0.2);
    f.length = traffic::LengthSpec::uniform(1, 8);
    workload.flows.push_back(f);
  }
  const auto trace = traffic::generate_trace(workload, config.horizon, 5);
  const auto result = run_scenario("err", config, trace);
  const double ratio =
      static_cast<double>(result.service_log.total(FlowId(0))) /
      static_cast<double>(result.service_log.total(FlowId(1)));
  EXPECT_NEAR(ratio, 3.0, 0.2);
}

TEST(Scenario, SameTraceSameSchedulerIsBitReproducible) {
  ScenarioConfig config;
  config.horizon = 8000;
  const auto trace =
      traffic::generate_trace(simple_workload(3, 0.02), 8000, 6);
  const auto a = run_scenario("err", config, trace);
  const auto b = run_scenario("err", config, trace);
  for (std::uint32_t f = 0; f < 3; ++f)
    EXPECT_EQ(a.service_log.total(FlowId(f)),
              b.service_log.total(FlowId(f)));
  EXPECT_EQ(a.service_starts, b.service_starts);
}

TEST(ScenarioDeath, UnknownSchedulerAborts) {
  ScenarioConfig config;
  config.horizon = 10;
  const auto trace = traffic::generate_trace(simple_workload(1, 0.1), 10, 1);
  EXPECT_DEATH((void)run_scenario("bogus", config, trace), "unknown");
}

}  // namespace
}  // namespace wormsched::harness
