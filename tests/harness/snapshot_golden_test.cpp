// Golden snapshot tests: the committed tests/data/golden_v2.wsnp pins
// the v2 checkpoint format (compatibility policy in docs/TESTING.md).
// v2 added flow-control state (router on/off handshake bools, wire
// credit kind, flow-control config in the network fingerprint); the
// retired golden_v1.wsnp stays committed so the version gate itself is
// pinned — an old-format file must exit 2, never misparse.
//
// The golden file was written by `wormsched soak --topo mesh3x3
// --cycles 3000 --horizon 20000 --window 1000 --rate 0.02 --seed 42`:
// a mid-run fabric checkpoint with a trailing SOAK section.  Any layout
// change that still claims version 2 breaks these tests; an intentional
// layout change must bump kSnapshotFormatVersion and commit a new
// golden alongside this one.
//
// The rejection matrix drives the CLI failure contract end to end:
// corrupted, truncated and wrong-version variants must exit 2 with a
// clear stderr message (load_checkpoint_or_exit), and no malformed
// variant may ever reach undefined behaviour (the ASan CI leg runs this
// suite too).
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "common/snapshot.hpp"
#include "harness/checkpoint.hpp"
#include "harness/network_sweep.hpp"
#include "harness/soak.hpp"
#include "wormhole/network.hpp"

namespace wormsched::harness {
namespace {

std::string golden_path() { return WS_GOLDEN_SNAPSHOT; }

std::vector<std::uint8_t> golden_bytes() {
  std::ifstream in(golden_path(), std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing golden file " << golden_path();
  return std::vector<std::uint8_t>((std::istreambuf_iterator<char>(in)),
                                   std::istreambuf_iterator<char>());
}

std::string write_variant(const std::string& name,
                          const std::vector<std::uint8_t>& bytes) {
  const std::string path = testing::TempDir() + "golden_" + name + ".wsnp";
  std::ofstream out(path, std::ios::binary);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  return path;
}

/// The geometry the golden run used (everything else — traffic law,
/// horizon, seed — travels inside the checkpoint).
NetworkScenarioConfig golden_geometry() {
  NetworkScenarioConfig config;
  config.network.topo = wormhole::TopologySpec::mesh(3, 3);
  return config;
}

TEST(SnapshotGolden, LoadsAndCarriesProvenance) {
  const SnapshotFile file = read_snapshot_file(golden_path());
  EXPECT_EQ(file.version, kSnapshotFormatVersion);
  EXPECT_NE(file.manifest_json.find("wormsched-manifest-v1"),
            std::string::npos);

  const CheckpointProvenance prov = read_checkpoint_provenance(file);
  EXPECT_EQ(prov.kind, "network");
  EXPECT_EQ(prov.original_seed, 42u);
  EXPECT_EQ(prov.restore_count, 0u);
  EXPECT_EQ(prov.saved_cycle, 3'000u);
}

TEST(SnapshotGolden, RestoresAndRunsToCompletion) {
  // The load-bearing promise: a version-1 snapshot written by an older
  // build keeps producing the identical run on this one.  The expected
  // values are the golden run's own outputs, pinned at commit time.
  const SnapshotFile file = read_snapshot_file(golden_path());
  NetworkRun run(golden_geometry(), file);
  EXPECT_EQ(run.now(), 3'000u);
  run.run_to_completion();
  const NetworkScenarioResult result = run.finish();
  EXPECT_EQ(result.generated_packets, 3'568u);
  EXPECT_EQ(result.delivered_packets, 3'568u);
  EXPECT_EQ(result.end_cycle, 20'014u);
  EXPECT_GT(result.delivered_flits, result.delivered_packets);
}

TEST(SnapshotGolden, ResumesAsSoakWithTrackerState) {
  // The golden file carries a trailing SOAK section (3 closed windows at
  // save time); resume_soak must pick the tracker up, not start fresh.
  const SnapshotFile file = read_snapshot_file(golden_path());
  SoakOptions options;
  options.cycles = 8'000;
  options.window.window = 1'000;
  const SoakSummary summary = resume_soak(golden_geometry(), file, options);
  EXPECT_EQ(summary.restore_count, 1u);
  EXPECT_EQ(summary.end_cycle, 8'000u);
  EXPECT_EQ(summary.windows_closed, 8u);  // 3 restored + 5 new
}

TEST(SnapshotGoldenDeathTest, WrongVersionExits2WithClearMessage) {
  auto bytes = golden_bytes();
  bytes[8] = 0x7F;  // u32 format version follows the 8-byte magic
  const std::string path = write_variant("wrong_version", bytes);
  EXPECT_EXIT((void)load_checkpoint_or_exit(path),
              ::testing::ExitedWithCode(2), "version");
  std::remove(path.c_str());
}

TEST(SnapshotGoldenDeathTest, V1GoldenRejectedWithVersionMessage) {
  // The real retired v1 image (not a synthetic byte flip): the loader
  // must refuse it at the version gate with exit 2, never attempt to
  // parse v1 state with v2 readers.
  EXPECT_EXIT((void)load_checkpoint_or_exit(WS_GOLDEN_SNAPSHOT_V1),
              ::testing::ExitedWithCode(2), "version");
}

TEST(SnapshotGoldenDeathTest, BadMagicExits2WithClearMessage) {
  auto bytes = golden_bytes();
  bytes[0] = 'X';
  const std::string path = write_variant("bad_magic", bytes);
  EXPECT_EXIT((void)load_checkpoint_or_exit(path),
              ::testing::ExitedWithCode(2), "magic");
  std::remove(path.c_str());
}

TEST(SnapshotGoldenDeathTest, CorruptedPayloadExits2WithClearMessage) {
  auto bytes = golden_bytes();
  bytes[bytes.size() / 2] ^= 0xFF;  // payload byte; CRC must catch it
  const std::string path = write_variant("corrupt", bytes);
  EXPECT_EXIT((void)load_checkpoint_or_exit(path),
              ::testing::ExitedWithCode(2), "CRC");
  std::remove(path.c_str());
}

TEST(SnapshotGoldenDeathTest, TruncatedFileExits2WithClearMessage) {
  auto bytes = golden_bytes();
  bytes.resize(bytes.size() / 3);
  const std::string path = write_variant("truncated", bytes);
  EXPECT_EXIT((void)load_checkpoint_or_exit(path),
              ::testing::ExitedWithCode(2), "truncat");
  std::remove(path.c_str());
}

TEST(SnapshotGoldenDeathTest, MissingFileExits2WithClearMessage) {
  EXPECT_EXIT(
      (void)load_checkpoint_or_exit(golden_path() + ".does-not-exist"),
      ::testing::ExitedWithCode(2), "wormsched:");
}

TEST(SnapshotGolden, EveryTruncationFailsCleanly) {
  // Chop the golden image at every length (byte granularity): each
  // variant must throw SnapshotError from the container parse — never
  // crash, never read out of bounds, never restore garbage.
  const auto bytes = golden_bytes();
  ASSERT_GT(bytes.size(), 0u);
  for (std::size_t len = 0; len < bytes.size(); len += 7) {
    const std::vector<std::uint8_t> cut(bytes.begin(), bytes.begin() + len);
    EXPECT_THROW((void)parse_snapshot_bytes(cut), SnapshotError) << len;
  }
}

TEST(SnapshotGolden, MetaCorruptionCannotMisreadKind) {
  // Rewrite the container with a corrupted META section (valid CRC, so
  // the container parses): the provenance reader must reject an unknown
  // kind with SnapshotError rather than restore the wrong run type.
  SnapshotFile file = read_snapshot_file(golden_path());
  // META is the first section: tag u32 | len u64 | str kind ("network").
  // Flip a byte of the kind string inside the payload.
  // Section header = 4 (tag) + 8 (len); string = 8 (len) + chars.
  file.payload[4 + 8 + 8] = 'x';
  const std::string path = write_variant("bad_kind", {});
  write_snapshot_file(path, file.manifest_json, file.payload);
  const SnapshotFile reread = read_snapshot_file(path);
  EXPECT_THROW((void)read_checkpoint_provenance(reread), SnapshotError);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace wormsched::harness
