#include "harness/paper_workloads.hpp"

#include <gtest/gtest.h>

namespace wormsched::harness {
namespace {

TEST(Fig4Workload, MatchesPaperParameters) {
  const auto spec = fig4_workload();
  ASSERT_EQ(spec.num_flows(), 8u);
  // Flow 2: U[1,128]; all others U[1,64].
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_EQ(spec.flows[i].length.lo, 1) << i;
    EXPECT_EQ(spec.flows[i].length.hi, i == 2 ? 128 : 64) << i;
  }
  // Flow 3 at double the packet rate of flow 0.
  EXPECT_NEAR(spec.flows[3].arrival.rate, 2.0 * spec.flows[0].arrival.rate,
              1e-12);
  EXPECT_EQ(spec.max_packet_length(), 128);
}

TEST(Fig4Workload, OfferedLoadEqualsOverload) {
  EXPECT_NEAR(fig4_workload(8, 1.5).offered_load(), 1.5, 1e-9);
  EXPECT_NEAR(fig4_workload(8, 1.2).offered_load(), 1.2, 1e-9);
}

TEST(Fig4Workload, EveryFlowExceedsFairShare) {
  // The all-flows-active-for-4M-cycles methodology requires each flow's
  // offered load to beat its 1/8 fair share at the default overload.
  const auto spec = fig4_workload();
  for (const auto& f : spec.flows) {
    EXPECT_GT(f.arrival.mean_rate() * f.length.mean_length(), 1.0 / 8.0);
  }
}

TEST(Fig5Workload, TransientWindowAndRatio) {
  const auto spec = fig5_workload(1.25);
  EXPECT_EQ(spec.num_flows(), 4u);
  EXPECT_EQ(spec.inject_until, 10000u);
  EXPECT_NEAR(spec.offered_load(), 1.25, 1e-9);
  EXPECT_EQ(spec.flows[2].length.hi, 128);
  EXPECT_NEAR(spec.flows[3].arrival.rate, 2.0 * spec.flows[1].arrival.rate,
              1e-12);
}

TEST(Fig6Workload, ExponentialLengthsAndSymmetry) {
  const auto spec = fig6_workload(6);
  ASSERT_EQ(spec.num_flows(), 6u);
  for (const auto& f : spec.flows) {
    EXPECT_EQ(f.length.kind, traffic::LengthSpec::Kind::kTruncExp);
    EXPECT_DOUBLE_EQ(f.length.lambda, 0.2);
    EXPECT_EQ(f.length.lo, 1);
    EXPECT_EQ(f.length.hi, 64);
    EXPECT_NEAR(f.arrival.rate, spec.flows[0].arrival.rate, 1e-12);
  }
  EXPECT_NEAR(spec.offered_load(), 1.5, 1e-9);
}

TEST(Fig6Workload, ScalesAcrossFlowCounts) {
  for (std::size_t n = 2; n <= 10; ++n) {
    const auto spec = fig6_workload(n);
    EXPECT_EQ(spec.num_flows(), n);
    EXPECT_NEAR(spec.offered_load(), 1.5, 1e-9) << n;
  }
}

}  // namespace
}  // namespace wormsched::harness
