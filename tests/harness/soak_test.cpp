// Soak-mode tests: checkpointed segment chains must reproduce the
// straight run's windowed steady-state metrics bit-exactly
// (docs/TESTING.md).
//
// The load-bearing property is the observe cadence: drive_soak stops at
// every window boundary regardless of where a segment started, so the
// boundary schedule — and therefore the SteadyStateTracker's entire
// state — depends only on (window, cycles), never on checkpoint
// placement.  These tests split soaks at awkward points (mid-window,
// multiple chained segments) and require exact-double equality against
// the uninterrupted run.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "common/snapshot.hpp"
#include "harness/checkpoint.hpp"
#include "harness/network_sweep.hpp"
#include "harness/soak.hpp"
#include "metrics/windowed.hpp"
#include "wormhole/network.hpp"

namespace wormsched::harness {
namespace {

NetworkScenarioConfig soak_point() {
  NetworkScenarioConfig config;
  config.network.topo = wormhole::TopologySpec::mesh(4, 4);
  config.traffic.packets_per_node_per_cycle = 0.02;
  config.traffic.lengths = traffic::LengthSpec::uniform(1, 8);
  config.traffic.inject_until = 200'000;  // horizon: outlives every segment
  return config;
}

SoakOptions options_for(Cycle cycles, const std::string& checkpoint = "") {
  SoakOptions options;
  options.cycles = cycles;
  options.checkpoint_path = checkpoint;
  options.window.window = 2'000;
  options.window.stable_windows = 3;
  return options;
}

void expect_identical(const SoakSummary& a, const SoakSummary& b) {
  EXPECT_EQ(a.end_cycle, b.end_cycle);
  EXPECT_EQ(a.generated_packets, b.generated_packets);
  EXPECT_EQ(a.delivered_packets, b.delivered_packets);
  EXPECT_EQ(a.delivered_flits, b.delivered_flits);
  EXPECT_EQ(a.warmed_up, b.warmed_up);
  EXPECT_EQ(a.warmup_end, b.warmup_end);
  EXPECT_EQ(a.windows_closed, b.windows_closed);
  // Bit-exact doubles: the tracker state travels in the checkpoint.
  EXPECT_EQ(a.steady_mean_delay, b.steady_mean_delay);
  EXPECT_EQ(a.steady_throughput, b.steady_throughput);
  EXPECT_EQ(a.window_mean_stddev, b.window_mean_stddev);
  EXPECT_EQ(a.audit_violations, b.audit_violations);
  // restore_count / checkpoints_written legitimately differ.
}

std::string temp_path(const std::string& name) {
  return testing::TempDir() + "soak_test_" + name + ".wsnp";
}

TEST(Soak, SplitSegmentMatchesStraightRunExactly) {
  const NetworkScenarioConfig config = soak_point();
  const SoakSummary straight = run_soak(config, 11, options_for(40'000));

  const std::string path = temp_path("split");
  // Segment 1 stops at 15,500 — deliberately inside a 2,000-cycle window,
  // so the restored segment must finish the partially-elapsed window.
  const SoakSummary first = run_soak(config, 11, options_for(15'500, path));
  EXPECT_EQ(first.end_cycle, 15'500u);
  const SoakSummary resumed =
      resume_soak(config, read_snapshot_file(path), options_for(40'000));
  EXPECT_EQ(resumed.restore_count, 1u);
  expect_identical(straight, resumed);
  std::remove(path.c_str());
}

TEST(Soak, ThreeSegmentChainMatchesStraightRunExactly) {
  const NetworkScenarioConfig config = soak_point();
  const SoakSummary straight = run_soak(config, 23, options_for(36'000));

  const std::string path = temp_path("chain");
  (void)run_soak(config, 23, options_for(9'300, path));
  (void)resume_soak(config, read_snapshot_file(path),
                    options_for(21'700, path));
  const SoakSummary last =
      resume_soak(config, read_snapshot_file(path), options_for(36'000));
  EXPECT_EQ(last.restore_count, 2u);
  expect_identical(straight, last);
  std::remove(path.c_str());
}

TEST(Soak, PeriodicCheckpointsDoNotPerturbTheRun) {
  // Writing checkpoints every N cycles must not change any metric: the
  // save path is const over the run state.
  const NetworkScenarioConfig config = soak_point();
  const SoakSummary quiet = run_soak(config, 31, options_for(30'000));
  const std::string path = temp_path("periodic");
  SoakOptions noisy = options_for(30'000, path);
  noisy.checkpoint_every = 7'000;  // off-window-boundary cadence
  const SoakSummary checkpointed = run_soak(config, 31, noisy);
  EXPECT_GE(checkpointed.checkpoints_written, 5u);  // 4 periodic + final
  expect_identical(quiet, checkpointed);

  // And the last periodic checkpoint resumes onto the straight path.
  const SoakSummary extended =
      resume_soak(config, read_snapshot_file(path), options_for(44'000));
  const SoakSummary straight44 = run_soak(config, 31, options_for(44'000));
  expect_identical(straight44, extended);
  std::remove(path.c_str());
}

TEST(Soak, ResumesFromNetworkCheckpointWithoutSoakSection) {
  // A checkpoint written by `wormsched network --checkpoint` has no SOAK
  // trailer; resume_soak starts a fresh tracker instead of failing.
  const NetworkScenarioConfig config = soak_point();
  SnapshotFile file;
  {
    NetworkRun run(config, 41);
    run.advance_to(10'000);
    file = run.make_snapshot_file();  // no SOAK section
  }
  const SoakSummary resumed = resume_soak(config, file, options_for(24'000));
  EXPECT_EQ(resumed.restore_count, 1u);
  EXPECT_EQ(resumed.end_cycle, 24'000u);
  EXPECT_GT(resumed.delivered_packets, 0u);
  EXPECT_GT(resumed.windows_closed, 0u);
}

TEST(Soak, ForcesO1DeliveryAccounting) {
  // Soak mode must run with the per-packet delivery log off while still
  // reporting full delivery counts from the O(1) accumulators.
  const NetworkScenarioConfig config = soak_point();  // record_delivered on
  const SoakSummary summary = run_soak(config, 51, options_for(20'000));
  EXPECT_GT(summary.delivered_packets, 0u);
  EXPECT_GT(summary.delivered_flits, summary.delivered_packets);
}

TEST(Soak, WarmupDetectionConvergesAndReportsSteadyStats) {
  const NetworkScenarioConfig config = soak_point();
  const SoakSummary summary = run_soak(config, 61, options_for(40'000));
  EXPECT_TRUE(summary.warmed_up);
  EXPECT_GT(summary.warmup_end, 0u);
  EXPECT_LT(summary.warmup_end, 40'000u);
  EXPECT_GT(summary.steady_mean_delay, 0.0);
  EXPECT_GT(summary.steady_throughput, 0.0);
  EXPECT_EQ(summary.windows_closed, 20u);  // 40,000 / 2,000
}

TEST(Soak, TrackerStateRoundTripsBitExactly) {
  // Unit-level: a mid-run tracker serialized and restored reports the
  // identical statistics and keeps closing windows identically.
  metrics::WindowedConfig wconfig;
  wconfig.window = 100;
  wconfig.stable_windows = 2;
  metrics::SteadyStateTracker a(wconfig);
  RunningStat cumulative;
  std::uint64_t flits = 0;
  for (Cycle t = 100; t <= 1'500; t += 100) {
    for (int i = 0; i < 20; ++i) cumulative.add(10.0 + 0.001 * i);
    flits += 160;
    a.observe(t, cumulative, flits);
  }

  SnapshotWriter w;
  a.save(w);
  metrics::SteadyStateTracker b(wconfig);
  SnapshotReader r(w.bytes());
  b.restore(r);
  EXPECT_EQ(a.warmed_up(), b.warmed_up());
  EXPECT_EQ(a.warmup_end(), b.warmup_end());
  EXPECT_EQ(a.windows_closed(), b.windows_closed());
  EXPECT_EQ(a.steady_mean_delay(), b.steady_mean_delay());
  EXPECT_EQ(a.steady_throughput(), b.steady_throughput());

  for (Cycle t = 1'600; t <= 2'000; t += 100) {
    for (int i = 0; i < 20; ++i) cumulative.add(11.0);
    flits += 160;
    a.observe(t, cumulative, flits);
    b.observe(t, cumulative, flits);
  }
  EXPECT_EQ(a.windows_closed(), b.windows_closed());
  EXPECT_EQ(a.steady_mean_delay(), b.steady_mean_delay());
  EXPECT_EQ(a.steady_throughput(), b.steady_throughput());
}

}  // namespace
}  // namespace wormsched::harness
