#include "sim/engine.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace wormsched::sim {
namespace {

TEST(Engine, StartsAtCycleZero) {
  Engine e;
  EXPECT_EQ(e.now(), 0u);
}

TEST(Engine, RunUntilAdvancesClock) {
  Engine e;
  e.run_until(10);
  EXPECT_EQ(e.now(), 10u);
}

TEST(Engine, EventsFireAtScheduledCycle) {
  Engine e;
  std::vector<Cycle> fired;
  e.schedule_at(3, [&](Cycle t) { fired.push_back(t); });
  e.schedule_at(7, [&](Cycle t) { fired.push_back(t); });
  e.run_until(10);
  EXPECT_EQ(fired, (std::vector<Cycle>{3, 7}));
}

TEST(Engine, SameCycleEventsFifo) {
  Engine e;
  std::vector<int> order;
  e.schedule_at(5, [&](Cycle) { order.push_back(1); });
  e.schedule_at(5, [&](Cycle) { order.push_back(2); });
  e.schedule_at(5, [&](Cycle) { order.push_back(3); });
  e.run_until(6);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Engine, EventMayScheduleSameCycleEvent) {
  Engine e;
  int count = 0;
  e.schedule_at(2, [&](Cycle t) {
    ++count;
    e.schedule_at(t, [&](Cycle) { ++count; });
  });
  e.run_until(3);
  EXPECT_EQ(count, 2);
}

TEST(Engine, ScheduleAfterIsRelative) {
  Engine e;
  Cycle fired = 0;
  e.run_until(4);
  e.schedule_after(3, [&](Cycle t) { fired = t; });
  e.run_until(10);
  EXPECT_EQ(fired, 7u);
}

TEST(EngineDeath, PastEventAborts) {
  Engine e;
  e.run_until(5);
  EXPECT_DEATH(e.schedule_at(3, [](Cycle) {}), "past");
}

class Counter final : public Component {
 public:
  void tick(Cycle) override { ++ticks; }
  [[nodiscard]] bool idle() const override { return ticks >= quota; }
  int ticks = 0;
  int quota = 0;
};

TEST(Engine, ComponentsTickEveryCycle) {
  Engine e;
  Counter c;
  e.add_component(c);
  e.run_until(25);
  EXPECT_EQ(c.ticks, 25);
}

TEST(Engine, EventsRunBeforeComponentsWithinCycle) {
  Engine e;
  std::vector<std::string> order;
  class Probe final : public Component {
   public:
    explicit Probe(std::vector<std::string>& log) : log_(log) {}
    void tick(Cycle) override { log_.push_back("component"); }

   private:
    std::vector<std::string>& log_;
  };
  Probe p(order);
  e.add_component(p);
  e.schedule_at(0, [&](Cycle) { order.push_back("event"); });
  e.step();
  EXPECT_EQ(order, (std::vector<std::string>{"event", "component"}));
}

TEST(Engine, RunUntilIdleStopsWhenComponentsIdle) {
  Engine e;
  Counter c;
  c.quota = 8;
  e.add_component(c);
  const Cycle end = e.run_until_idle(1000);
  EXPECT_EQ(end, 8u);
  EXPECT_EQ(c.ticks, 8);
}

TEST(Engine, RunUntilIdleWaitsForPendingEvents) {
  Engine e;
  bool fired = false;
  e.schedule_at(42, [&](Cycle) { fired = true; });
  const Cycle end = e.run_until_idle(1000);
  EXPECT_TRUE(fired);
  EXPECT_EQ(end, 43u);  // the firing cycle completes
}

TEST(Engine, RunUntilIdleRespectsCap) {
  Engine e;
  Counter c;
  c.quota = 1 << 20;
  e.add_component(c);
  EXPECT_EQ(e.run_until_idle(50), 50u);
}

// --- idle-skip behaviour -------------------------------------------------
// When every component reports idle, run_until_idle jumps the clock to the
// next calendar event instead of ticking empty cycles.

TEST(Engine, IdleSkipJumpsToNextEvent) {
  Engine e;
  Counter c;  // quota 0: idle from the start, but still ticks when stepped
  e.add_component(c);
  Cycle fired = 0;
  e.schedule_at(1000, [&](Cycle t) { fired = t; });
  const Cycle end = e.run_until_idle(2000);
  EXPECT_EQ(fired, 1000u);
  EXPECT_EQ(end, 1001u);  // the firing cycle completes
  // The skip is the point: one stepped cycle, not a thousand.
  EXPECT_EQ(c.ticks, 1);
}

TEST(Engine, IdleSkipStopsAtMaxCycleMidSkip) {
  Engine e;
  Counter c;
  e.add_component(c);
  bool fired = false;
  e.schedule_at(100, [&](Cycle) { fired = true; });
  // The cap lands inside the skip window: clock parks at the cap and the
  // event stays in the calendar, exactly as if we had stepped there.
  EXPECT_EQ(e.run_until_idle(50), 50u);
  EXPECT_FALSE(fired);
  EXPECT_EQ(c.ticks, 0);
  // A later run picks the event back up.
  EXPECT_EQ(e.run_until_idle(2000), 101u);
  EXPECT_TRUE(fired);
}

TEST(Engine, IdleSkipEventExactlyAtCapDoesNotFire) {
  Engine e;
  Counter c;
  e.add_component(c);
  bool fired = false;
  e.schedule_at(50, [&](Cycle) { fired = true; });
  // run_until_idle(50) executes cycles [0, 50); an event at exactly the
  // cap belongs to the next window, matching run_until's convention.
  EXPECT_EQ(e.run_until_idle(50), 50u);
  EXPECT_FALSE(fired);
}

TEST(Engine, IdleSkipFiresEventsAtTheirExactCycles) {
  Engine e;
  Counter c;
  e.add_component(c);
  std::vector<Cycle> fired;
  e.schedule_at(10, [&](Cycle t) { fired.push_back(t); });
  e.schedule_at(500, [&](Cycle t) { fired.push_back(t); });
  const Cycle end = e.run_until_idle(1000);
  EXPECT_EQ(fired, (std::vector<Cycle>{10, 500}));
  EXPECT_EQ(end, 501u);
  EXPECT_EQ(c.ticks, 2);  // one stepped cycle per event
}

TEST(Engine, RunUntilIdleAllIdleEmptyCalendarReturnsImmediately) {
  Engine e;
  Counter c;
  e.add_component(c);
  EXPECT_EQ(e.run_until_idle(1000), 0u);
  EXPECT_EQ(c.ticks, 0);
}

TEST(Engine, IdleSkipAfterBusyPhase) {
  Engine e;
  Counter c;
  c.quota = 8;  // busy for 8 cycles, then idle
  e.add_component(c);
  e.schedule_at(1000, [](Cycle) {});
  const Cycle end = e.run_until_idle(5000);
  EXPECT_EQ(end, 1001u);
  EXPECT_EQ(c.ticks, 9);  // 8 busy cycles + the event's cycle
}

}  // namespace
}  // namespace wormsched::sim
