// West-first adaptive routing: candidate-set correctness, delivery,
// deadlock freedom under saturation, and actual congestion avoidance.
#include <gtest/gtest.h>

#include <algorithm>

#include "sim/engine.hpp"
#include "wormhole/network.hpp"
#include "wormhole/patterns.hpp"
#include "wormhole/topology.hpp"

namespace wormsched::wormhole {
namespace {

RouteCandidates candidates_for(const Topology& topo, NodeId current,
                               NodeId dest, Direction in_from,
                               std::uint32_t in_class) {
  RouteCandidates out;
  topo.west_first_candidates(current, dest, in_from, in_class, out);
  return out;
}

std::vector<Direction> directions_of(const RouteCandidates& ds) {
  std::vector<Direction> out;
  for (const auto& d : ds) out.push_back(d.out);
  std::sort(out.begin(), out.end(),
            [](Direction a, Direction b) {
              return static_cast<int>(a) < static_cast<int>(b);
            });
  return out;
}

TEST(WestFirst, WestboundIsDeterministic) {
  Topology mesh(TopologySpec::mesh(4, 4));
  // From (3,1)=7 to (0,2)=8: dest is west -> single West candidate, even
  // though a south hop would also be productive.
  const auto c =
      candidates_for(mesh, NodeId(7), NodeId(8), Direction::kLocal, 0);
  ASSERT_EQ(c.size(), 1u);
  EXPECT_EQ(c[0].out, Direction::kWest);
}

TEST(WestFirst, EastSouthAdaptive) {
  Topology mesh(TopologySpec::mesh(4, 4));
  // From (0,0)=0 to (2,2)=10: east and south both productive.
  const auto c =
      candidates_for(mesh, NodeId(0), NodeId(10), Direction::kLocal, 0);
  EXPECT_EQ(directions_of(c),
            (std::vector<Direction>{Direction::kEast, Direction::kSouth}));
}

TEST(WestFirst, PureVerticalSingleCandidate) {
  Topology mesh(TopologySpec::mesh(4, 4));
  const auto down =
      candidates_for(mesh, NodeId(1), NodeId(13), Direction::kLocal, 0);
  ASSERT_EQ(down.size(), 1u);
  EXPECT_EQ(down[0].out, Direction::kSouth);
  const auto up =
      candidates_for(mesh, NodeId(13), NodeId(1), Direction::kLocal, 0);
  ASSERT_EQ(up.size(), 1u);
  EXPECT_EQ(up[0].out, Direction::kNorth);
}

TEST(WestFirst, ArrivedIsLocal) {
  Topology mesh(TopologySpec::mesh(4, 4));
  const auto c =
      candidates_for(mesh, NodeId(5), NodeId(5), Direction::kNorth, 1);
  ASSERT_EQ(c.size(), 1u);
  EXPECT_EQ(c[0].out, Direction::kLocal);
  EXPECT_EQ(c[0].out_class, 1u);
}

TEST(WestFirstDeath, TorusRejected) {
  Topology torus(TopologySpec::torus(4, 4));
  EXPECT_DEATH((void)candidates_for(torus, NodeId(0), NodeId(5),
                                    Direction::kLocal, 0),
               "mesh-only");
}

TEST(WestFirstNetwork, DeliversEverythingUnderUniformLoad) {
  NetworkConfig config;
  config.topo = TopologySpec::mesh(4, 4);
  config.routing = NetworkConfig::Routing::kWestFirst;
  Network net(config);
  NetworkTrafficSource::Config traffic_config;
  traffic_config.packets_per_node_per_cycle = 0.02;
  traffic_config.inject_until = 3000;
  traffic_config.lengths = traffic::LengthSpec::uniform(1, 10);
  NetworkTrafficSource source(net, traffic_config);
  sim::Engine engine;
  engine.add_component(source);
  engine.add_component(net);
  engine.run_until(3000);
  engine.run_until_idle(200000);
  EXPECT_TRUE(net.idle());
  EXPECT_EQ(net.delivered().size(), source.generated());
  // Every packet actually reached its destination (Network::eject checks
  // per-flit; count here double-checks the packet ledger).
  for (const auto& p : net.delivered()) EXPECT_EQ(p.dest, p.dest);
}

TEST(WestFirstNetwork, SaturationNoDeadlock) {
  // The turn model must keep the mesh deadlock-free even at loads far past
  // saturation with small buffers.
  NetworkConfig config;
  config.topo = TopologySpec::mesh(4, 4);
  config.routing = NetworkConfig::Routing::kWestFirst;
  config.router.buffer_depth = 4;
  config.router.num_vcs = 1;  // no VC crutch: the turn model alone
  Network net(config);
  NetworkTrafficSource::Config traffic_config;
  traffic_config.packets_per_node_per_cycle = 0.1;
  traffic_config.inject_until = 2000;
  traffic_config.lengths = traffic::LengthSpec::uniform(1, 8);
  traffic_config.seed = 77;
  NetworkTrafficSource source(net, traffic_config);
  sim::Engine engine;
  engine.add_component(source);
  engine.add_component(net);
  engine.run_until(2000);
  const Cycle end = engine.run_until_idle(500000);
  EXPECT_TRUE(net.idle()) << "possible deadlock at cycle " << end;
  EXPECT_EQ(net.delivered().size(), source.generated());
}

TEST(WestFirstNetwork, RoutesAroundCongestion) {
  // Node 1 jams the row-0 east corridor (1 -> 3, long back-to-back
  // worms).  Probes go 0 -> 10 = (2,2): XY is forced east into the jam,
  // while west-first may detour south as soon as the backpressure from
  // router 1 empties router 0's east credits.
  const auto run = [](NetworkConfig::Routing routing) {
    NetworkConfig config;
    config.topo = TopologySpec::mesh(4, 4);
    config.routing = routing;
    // FCFS arbitration so the probes cannot rely on fair arbitration to
    // squeeze past the jam — the contrast isolates the routing choice.
    config.router.arbiter = "fcfs";
    Network net(config);
    sim::Engine engine;
    engine.add_component(net);
    PacketId::rep_type id = 0;
    for (int k = 0; k < 40; ++k) {
      PacketDescriptor jam;
      jam.id = PacketId(id++);
      jam.flow = FlowId(1);
      jam.source = NodeId(1);
      jam.dest = NodeId(3);
      jam.length = 32;
      jam.created = 0;
      net.inject(0, jam);
    }
    // Let the congestion build up through the credit loop.
    engine.run_until(100);
    std::vector<PacketId> probe_ids;
    for (int k = 0; k < 10; ++k) {
      PacketDescriptor probe;
      probe.id = PacketId(id++);
      probe_ids.push_back(probe.id);
      probe.flow = FlowId(0);
      probe.source = NodeId(0);
      probe.dest = NodeId(10);
      probe.length = 8;
      probe.created = engine.now();
      net.inject(engine.now(), probe);
    }
    engine.run_until_idle(100000);
    Cycle last_probe_done = 0;
    for (const auto& p : net.delivered()) {
      for (const PacketId pid : probe_ids) {
        if (p.id == pid)
          last_probe_done = std::max(last_probe_done, p.delivered);
      }
    }
    EXPECT_GT(last_probe_done, 0u);
    return last_probe_done;
  };
  const Cycle adaptive = run(NetworkConfig::Routing::kWestFirst);
  const Cycle deterministic = run(NetworkConfig::Routing::kDor);
  EXPECT_LT(adaptive, deterministic);
}

}  // namespace
}  // namespace wormsched::wormhole
