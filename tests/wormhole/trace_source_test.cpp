// TraceTrafficSource: trace-driven injection into the wormhole fabric.
//
// The trace carries when/who/how-much; the pattern supplies where-to.
// The suite checks conservation (every entry injected, every flit
// delivered), determinism, the mid-run save/restore differential (a
// restored replay finishes identically to the uninterrupted one), and
// the streaming per-flow delivered-flit accumulator against a scan of
// the delivered log.
#include <gtest/gtest.h>

#include <vector>

#include "common/snapshot.hpp"
#include "sim/engine.hpp"
#include "traffic/trace_synth.hpp"
#include "wormhole/network.hpp"
#include "wormhole/patterns.hpp"

namespace wormsched::wormhole {
namespace {

/// 16 flows over mesh4x4: flow ids map 1:1 onto source nodes.
traffic::Trace make_trace(std::uint64_t seed) {
  traffic::SynthSpec spec;
  spec.num_flows = 16;
  spec.horizon = 2'000;
  spec.load = 0.3;  // the fabric, not the trace, should be the bottleneck
  spec.mice_max_length = 8;
  spec.elephant_min_length = 12;
  spec.elephant_max_length = 24;
  return traffic::synthesize_trace(spec, seed);
}

NetworkConfig mesh4x4(bool record_delivered = true) {
  NetworkConfig config;
  config.topo = TopologySpec::mesh(4, 4);
  config.record_delivered = record_delivered;
  return config;
}

struct ReplayResult {
  Cycle end = 0;
  std::uint64_t generated = 0;
  std::uint64_t delivered_packets = 0;
  std::uint64_t delivered_flits = 0;
};

ReplayResult replay(Network& net, TraceTrafficSource& source) {
  sim::Engine engine;
  engine.add_component(source);
  engine.add_component(net);
  ReplayResult r;
  r.end = engine.run_until_idle(200'000);
  r.generated = source.generated();
  r.delivered_packets = net.delivered_packets();
  r.delivered_flits = net.delivered_flits();
  return r;
}

TEST(TraceTrafficSource, InjectsEveryEntryAndConservesFlits) {
  const traffic::Trace trace = make_trace(5);
  ASSERT_FALSE(trace.entries.empty());
  Network net(mesh4x4());
  TraceTrafficSource::Config config;
  config.trace = &trace;
  TraceTrafficSource source(net, config);
  EXPECT_EQ(source.inject_until(), trace.entries.back().cycle + 1);

  const ReplayResult r = replay(net, source);
  EXPECT_EQ(r.generated, trace.entries.size());
  EXPECT_EQ(r.delivered_packets, trace.entries.size());
  EXPECT_EQ(r.delivered_flits,
            static_cast<std::uint64_t>(trace.total_flits()));
  EXPECT_TRUE(source.idle());
}

TEST(TraceTrafficSource, ReplayIsDeterministic) {
  const traffic::Trace trace = make_trace(6);
  ReplayResult runs[2];
  for (auto& r : runs) {
    Network net(mesh4x4());
    TraceTrafficSource::Config config;
    config.trace = &trace;
    TraceTrafficSource source(net, config);
    r = replay(net, source);
  }
  EXPECT_EQ(runs[0].end, runs[1].end);
  EXPECT_EQ(runs[0].delivered_flits, runs[1].delivered_flits);
  EXPECT_EQ(runs[0].delivered_packets, runs[1].delivered_packets);
}

TEST(TraceTrafficSource, MidRunRestoreFinishesIdentically) {
  const traffic::Trace trace = make_trace(7);
  // Reference: the uninterrupted replay.
  Network ref_net(mesh4x4());
  TraceTrafficSource::Config config;
  config.trace = &trace;
  TraceTrafficSource ref_source(ref_net, config);
  const ReplayResult expected = replay(ref_net, ref_source);

  // Interrupted run: stop mid-injection, snapshot source + fabric.
  Network net_a(mesh4x4());
  TraceTrafficSource source_a(net_a, config);
  sim::Engine engine_a;
  engine_a.add_component(source_a);
  engine_a.add_component(net_a);
  const Cycle mid = trace.entries[trace.entries.size() / 2].cycle + 1;
  engine_a.run_until(mid);
  ASSERT_FALSE(source_a.idle()) << "cut point must leave entries pending";
  SnapshotWriter w;
  source_a.save_state(w);
  net_a.save_state(w);

  // Fresh objects restored from the snapshot finish the run.
  Network net_b(mesh4x4());
  TraceTrafficSource source_b(net_b, config);
  SnapshotReader r(w.bytes().data(), w.bytes().size());
  source_b.restore_state(r);
  net_b.restore_state(r);
  sim::Engine engine_b;
  engine_b.add_component(source_b);
  engine_b.add_component(net_b);
  engine_b.run_until(mid);  // advances the clock without ticking work
  const Cycle end = engine_b.run_until_idle(200'000);

  EXPECT_EQ(end, expected.end);
  EXPECT_EQ(source_b.generated(), expected.generated);
  // Latency stats reset at the restore point (derived observability
  // state), but the traffic itself must complete identically.
  EXPECT_EQ(net_b.delivered_packets() - net_a.delivered_packets(),
            expected.delivered_packets - net_a.delivered_packets());
  EXPECT_EQ(net_b.delivered_flits(), expected.delivered_flits);
}

TEST(TraceTrafficSource, RestoreRejectsCursorPastTheTrace) {
  const traffic::Trace trace = make_trace(8);
  Network net(mesh4x4());
  TraceTrafficSource::Config config;
  config.trace = &trace;
  TraceTrafficSource source(net, config);
  SnapshotWriter w;
  source.save_state(w);

  // Restoring over a shorter trace must fail the cursor bound check.
  traffic::Trace shorter = trace;
  shorter.entries.resize(1);
  // Advance the original source past entry 1 first.
  sim::Engine engine;
  engine.add_component(source);
  engine.add_component(net);
  engine.run_until_idle(200'000);
  SnapshotWriter done;
  source.save_state(done);

  TraceTrafficSource::Config short_config;
  short_config.trace = &shorter;
  Network net2(mesh4x4());
  TraceTrafficSource source2(net2, short_config);
  SnapshotReader r(done.bytes().data(), done.bytes().size());
  EXPECT_THROW(source2.restore_state(r), SnapshotError);
}

TEST(TraceTrafficSource, StreamingPerFlowTotalsMatchDeliveredLogScan) {
  const traffic::Trace trace = make_trace(9);
  Network net(mesh4x4());
  TraceTrafficSource::Config config;
  config.trace = &trace;
  TraceTrafficSource source(net, config);
  (void)replay(net, source);

  // The accumulator (fed at tail ejection) against the ground truth the
  // delivered log holds.
  const std::vector<Flits> streamed = net.delivered_flits_by_flow(16);
  std::vector<Flits> scanned(16, 0);
  for (const DeliveredPacket& p : net.delivered())
    scanned[p.flow.index()] += p.length;
  EXPECT_EQ(streamed, scanned);
}

TEST(TraceTrafficSource, PerFlowTotalsWorkWithRecordDeliveredOff) {
  const traffic::Trace trace = make_trace(9);
  // Same seed as above: the accumulator must not depend on the log.
  Network logged(mesh4x4(/*record_delivered=*/true));
  Network unlogged(mesh4x4(/*record_delivered=*/false));
  for (Network* net : {&logged, &unlogged}) {
    TraceTrafficSource::Config config;
    config.trace = &trace;
    TraceTrafficSource source(*net, config);
    (void)replay(*net, source);
  }
  EXPECT_TRUE(unlogged.delivered().empty());
  EXPECT_EQ(unlogged.delivered_flits_by_flow(16),
            logged.delivered_flits_by_flow(16));
}

}  // namespace
}  // namespace wormsched::wormhole
