// Allocation audit for the router hot path: after warm-up, Router::tick
// (including route computation via RouterEnv::route_candidates) must
// execute without touching the heap, in both the sparse and the legacy
// dense pipeline.
//
// The hook is a counting override of the global allocation functions —
// all four shapes the library uses (plain and aligned, scalar and array)
// — so any hidden std::vector growth or per-call temporary shows up as a
// nonzero delta across the measured window.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "wormhole/router.hpp"

namespace {
std::atomic<std::uint64_t> g_allocations{0};

void* counted_alloc(std::size_t size, std::size_t alignment) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  void* p = nullptr;
  if (posix_memalign(&p, alignment < sizeof(void*) ? sizeof(void*) : alignment,
                     size == 0 ? 1 : size) != 0) {
    throw std::bad_alloc();
  }
  return p;
}
}  // namespace

void* operator new(std::size_t size) {
  return counted_alloc(size, alignof(std::max_align_t));
}
void* operator new[](std::size_t size) {
  return counted_alloc(size, alignof(std::max_align_t));
}
void* operator new(std::size_t size, std::align_val_t align) {
  return counted_alloc(size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return counted_alloc(size, static_cast<std::size_t>(align));
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace wormsched::wormhole {
namespace {

/// Heap-free RouterEnv: every callback folds into plain counters, so any
/// allocation the audit catches belongs to the router itself.
class CountingEnv final : public RouterEnv {
 public:
  void send_flit(NodeId, Direction, const Flit&) override { ++sent; }
  void eject(NodeId, const Flit&, Cycle) override { ++ejected; }
  void send_credit(NodeId, Direction, std::uint32_t) override { ++credits; }
  RouteDecision route(NodeId, const Flit&, Direction,
                      std::uint32_t) override {
    return RouteDecision{Direction::kLocal, 0, false};
  }

  std::uint64_t sent = 0;
  std::uint64_t ejected = 0;
  std::uint64_t credits = 0;
};

Flit make_flit(std::uint64_t packet, Flits index, Flits length) {
  Flit f;
  f.packet = PacketId(packet);
  f.flow = FlowId(0);
  f.source = NodeId(1);
  f.dest = NodeId(0);
  f.index = index;
  const bool head = index == 0;
  const bool tail = index + 1 == length;
  f.type = head && tail ? FlitType::kHeadTail
           : head       ? FlitType::kHead
           : tail       ? FlitType::kTail
                        : FlitType::kBody;
  return f;
}

std::uint64_t measure_steady_state(bool dense_pipeline) {
  RouterConfig config;
  config.num_vcs = 2;
  config.buffer_depth = 8;
  config.arbiter = "err-cycles";
  config.dense_pipeline = dense_pipeline;
  Router r(NodeId(0), config);
  CountingEnv env;

  // Warm-up: fill the input VC to full depth once (the ring buffer grows
  // to its high-water mark here), then keep a continuous stream of 4-flit
  // packets flowing so routing, arbitration, forwarding and the
  // ERR continuation rule all execute before the measured window.
  constexpr Flits kLength = 4;
  std::uint64_t packet = 0;
  Flits next_index = 0;
  const auto feed = [&](Router& router) {
    router.accept_flit(Direction::kEast, 0,
                       make_flit(packet, next_index, kLength));
    if (++next_index == kLength) {
      next_index = 0;
      ++packet;
    }
  };
  for (int i = 0; i < 8; ++i) feed(r);
  Cycle now = 0;
  for (; now < 64; ++now) {
    if (r.buffered_flits() < config.buffer_depth) feed(r);
    r.tick(now, env);
  }
  EXPECT_GT(env.ejected, 0u);

  // Measured window: the same steady-state loop, allocation-counted.
  const std::uint64_t before =
      g_allocations.load(std::memory_order_relaxed);
  for (; now < 64 + 256; ++now) {
    if (r.buffered_flits() < config.buffer_depth) feed(r);
    r.tick(now, env);
  }
  return g_allocations.load(std::memory_order_relaxed) - before;
}

TEST(RouterAlloc, SparsePipelineSteadyStateIsAllocationFree) {
  EXPECT_EQ(measure_steady_state(/*dense_pipeline=*/false), 0u);
}

TEST(RouterAlloc, DensePipelineSteadyStateIsAllocationFree) {
  EXPECT_EQ(measure_steady_state(/*dense_pipeline=*/true), 0u);
}

TEST(RouterAlloc, CounterObservesHeapTraffic) {
  // Sanity-check the hook itself: a vector growth must register.
  const std::uint64_t before =
      g_allocations.load(std::memory_order_relaxed);
  auto* leak_free = new int(5);
  delete leak_free;
  EXPECT_GT(g_allocations.load(std::memory_order_relaxed), before);
}

}  // namespace
}  // namespace wormsched::wormhole
