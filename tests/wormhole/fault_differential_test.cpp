// Differential test across the network's execution paths.  Two
// independent switches each promise bit-identical results:
//
//  * dense_tick — legacy full-fabric ticking (every router, every cycle)
//    vs. the default active-set scheduling (only live routers tick);
//  * router.dense_pipeline — legacy full-scan router stages vs. the
//    default bitmask-sparse pipeline (RC/VA/SA walk pending bitmasks).
//
// All four combinations must produce the same packets, the same delivery
// cycles, and the same flit counts under every fault schedule.  Faults
// are pure functions of (seed, cycle, node), so the paths' different
// query interleavings must still observe the same schedule; this suite
// is the regression net for that contract, and — because the dense
// pipeline reads only per-unit flags, never the masks — it also catches
// any stale-mask divergence the sparse walks could introduce.
#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "sim/engine.hpp"
#include "validate/faults.hpp"
#include "validate/network_auditor.hpp"
#include "validate/violation.hpp"
#include "wormhole/network.hpp"
#include "wormhole/patterns.hpp"

namespace wormsched::wormhole {
namespace {

using validate::AuditLog;
using validate::FaultSpec;

struct FabricRun {
  std::vector<DeliveredPacket> delivered;
  std::uint64_t delivered_flits = 0;
  std::uint64_t generated = 0;
  Cycle end_cycle = 0;
  std::uint64_t audit_violations = 0;
};

struct FabricMode {
  bool dense_tick = false;
  bool dense_pipeline = false;
};

FabricRun run_fabric(FabricMode mode, std::uint64_t seed, FaultSpec spec,
                     Cycle inject_until = 1500) {
  NetworkConfig config;  // 4x4 mesh, ERR arbiters
  config.dense_tick = mode.dense_tick;
  config.router.dense_pipeline = mode.dense_pipeline;
  std::optional<validate::ScheduledFaults> faults;
  if (spec.enabled) {
    spec.seed += seed;
    spec.num_nodes = 16;
    faults.emplace(spec);
    config.faults = &*faults;
  }
  Network net(config);
  AuditLog log(AuditLog::Mode::kCount);
  validate::NetworkAuditor auditor(validate::NetworkAuditorConfig{}, log);
  net.attach_observer(&auditor);

  NetworkTrafficSource::Config traffic;
  traffic.packets_per_node_per_cycle = 0.04;
  traffic.inject_until = inject_until;
  traffic.seed = seed;
  traffic.faults = config.faults;
  NetworkTrafficSource source(net, traffic);

  sim::Engine engine;
  engine.add_component(source);
  engine.add_component(net);
  engine.run_until(traffic.inject_until);
  FabricRun run;
  run.end_cycle = engine.run_until_idle(200'000);
  run.delivered = net.delivered();
  run.delivered_flits = net.delivered_flits();
  run.generated = source.generated();
  run.audit_violations = log.count();
  return run;
}

void expect_same_run(const FabricRun& ref, const FabricRun& other,
                     const char* label) {
  EXPECT_EQ(other.audit_violations, 0u) << label;
  EXPECT_EQ(ref.generated, other.generated) << label;
  EXPECT_EQ(ref.end_cycle, other.end_cycle) << label;
  EXPECT_EQ(ref.delivered_flits, other.delivered_flits) << label;
  ASSERT_EQ(ref.delivered.size(), other.delivered.size()) << label;
  for (std::size_t i = 0; i < ref.delivered.size(); ++i) {
    const DeliveredPacket& a = ref.delivered[i];
    const DeliveredPacket& d = other.delivered[i];
    ASSERT_EQ(a.id.value(), d.id.value()) << label << " packet #" << i;
    ASSERT_EQ(a.flow.value(), d.flow.value()) << label << " packet #" << i;
    ASSERT_EQ(a.source.value(), d.source.value()) << label << " packet #" << i;
    ASSERT_EQ(a.dest.value(), d.dest.value()) << label << " packet #" << i;
    ASSERT_EQ(a.length, d.length) << label << " packet #" << i;
    ASSERT_EQ(a.created, d.created) << label << " packet #" << i;
    ASSERT_EQ(a.delivered, d.delivered) << label << " packet #" << i;
  }
}

void expect_identical(std::uint64_t seed, const FaultSpec& spec) {
  // Reference: active-set scheduling over the sparse router pipeline (the
  // shipping defaults).  The other three mode combinations must match it.
  const FabricRun ref = run_fabric(FabricMode{false, false}, seed, spec);
  EXPECT_GT(ref.delivered.size(), 0u);
  EXPECT_EQ(ref.audit_violations, 0u);

  expect_same_run(ref, run_fabric(FabricMode{true, false}, seed, spec),
                  "dense_tick+sparse_pipeline");
  expect_same_run(ref, run_fabric(FabricMode{false, true}, seed, spec),
                  "active_set+dense_pipeline");
  expect_same_run(ref, run_fabric(FabricMode{true, true}, seed, spec),
                  "dense_tick+dense_pipeline");
}

class FaultDifferentialTest : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(FaultDifferentialTest, NoFaults) {
  expect_identical(GetParam(), FaultSpec{});
}

TEST_P(FaultDifferentialTest, LinkStallsOnly) {
  FaultSpec spec;
  spec.enabled = true;
  spec.link_stall_rate = 0.4;
  spec.link_stall_cycles = 6;
  expect_identical(GetParam(), spec);
}

TEST_P(FaultDifferentialTest, CreditStarvationOnly) {
  FaultSpec spec;
  spec.enabled = true;
  spec.credit_stall_rate = 0.4;
  spec.credit_stall_cycles = 20;
  expect_identical(GetParam(), spec);
}

TEST_P(FaultDifferentialTest, ChurnAndBursts) {
  FaultSpec spec;
  spec.enabled = true;
  spec.churn_rate = 0.25;
  spec.burst_rate = 0.2;
  expect_identical(GetParam(), spec);
}

TEST_P(FaultDifferentialTest, AllFaultClasses) {
  expect_identical(GetParam(), FaultSpec::chaos(0));
}

INSTANTIATE_TEST_SUITE_P(Seeds, FaultDifferentialTest,
                         ::testing::Range<std::uint64_t>(1, 6));

// Pipeline fuzz: fresh seeds the 4-way matrix above never sees, rotated
// through the five fault presets, comparing only the pair that isolates
// the router-stage rewrite (active-set scheduling in both runs, sparse
// vs. dense pipeline).  Shorter injection window keeps the block cheap
// while still driving thousands of arbitration decisions per seed.
FaultSpec preset_for(std::uint64_t seed) {
  FaultSpec spec;
  switch (seed % 5) {
    case 0:  // fault-free
      break;
    case 1:
      spec.enabled = true;
      spec.link_stall_rate = 0.4;
      spec.link_stall_cycles = 6;
      break;
    case 2:
      spec.enabled = true;
      spec.credit_stall_rate = 0.4;
      spec.credit_stall_cycles = 20;
      break;
    case 3:
      spec.enabled = true;
      spec.churn_rate = 0.25;
      spec.burst_rate = 0.2;
      break;
    default:
      spec = FaultSpec::chaos(0);
      break;
  }
  return spec;
}

class PipelineFuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PipelineFuzzTest, SparseAndDensePipelinesAgree) {
  const std::uint64_t seed = GetParam();
  const FaultSpec spec = preset_for(seed);
  const FabricRun sparse =
      run_fabric(FabricMode{false, false}, seed, spec, /*inject_until=*/800);
  EXPECT_GT(sparse.delivered.size(), 0u);
  EXPECT_EQ(sparse.audit_violations, 0u);
  expect_same_run(sparse,
                  run_fabric(FabricMode{false, true}, seed, spec,
                             /*inject_until=*/800),
                  "active_set+dense_pipeline");
}

INSTANTIATE_TEST_SUITE_P(Seeds, PipelineFuzzTest,
                         ::testing::Range<std::uint64_t>(100, 140));

}  // namespace
}  // namespace wormsched::wormhole
