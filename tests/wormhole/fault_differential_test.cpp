// Differential test between the network's two execution paths: legacy
// dense ticking (every router, every cycle) and active-set scheduling
// (only live routers tick) must produce bit-identical results — same
// packets, same delivery cycles, same flit counts — under every fault
// schedule.  Faults are pure functions of (seed, cycle, node), so the two
// paths' different query interleavings must still observe the same
// schedule; this suite is the regression net for that contract.
#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "sim/engine.hpp"
#include "validate/faults.hpp"
#include "validate/network_auditor.hpp"
#include "validate/violation.hpp"
#include "wormhole/network.hpp"
#include "wormhole/patterns.hpp"

namespace wormsched::wormhole {
namespace {

using validate::AuditLog;
using validate::FaultSpec;

struct FabricRun {
  std::vector<DeliveredPacket> delivered;
  std::uint64_t delivered_flits = 0;
  std::uint64_t generated = 0;
  Cycle end_cycle = 0;
  std::uint64_t audit_violations = 0;
};

FabricRun run_fabric(bool dense, std::uint64_t seed, FaultSpec spec) {
  NetworkConfig config;  // 4x4 mesh, ERR arbiters
  config.dense_tick = dense;
  std::optional<validate::ScheduledFaults> faults;
  if (spec.enabled) {
    spec.seed += seed;
    spec.num_nodes = 16;
    faults.emplace(spec);
    config.faults = &*faults;
  }
  Network net(config);
  AuditLog log(AuditLog::Mode::kCount);
  validate::NetworkAuditor auditor(validate::NetworkAuditorConfig{}, log);
  net.set_observer(&auditor);

  NetworkTrafficSource::Config traffic;
  traffic.packets_per_node_per_cycle = 0.04;
  traffic.inject_until = 1500;
  traffic.seed = seed;
  traffic.faults = config.faults;
  NetworkTrafficSource source(net, traffic);

  sim::Engine engine;
  engine.add_component(source);
  engine.add_component(net);
  engine.run_until(traffic.inject_until);
  FabricRun run;
  run.end_cycle = engine.run_until_idle(200'000);
  run.delivered = net.delivered();
  run.delivered_flits = net.delivered_flits();
  run.generated = source.generated();
  run.audit_violations = log.count();
  return run;
}

void expect_identical(std::uint64_t seed, const FaultSpec& spec) {
  const FabricRun active = run_fabric(/*dense=*/false, seed, spec);
  const FabricRun dense = run_fabric(/*dense=*/true, seed, spec);

  EXPECT_GT(active.delivered.size(), 0u);
  EXPECT_EQ(active.audit_violations, 0u);
  EXPECT_EQ(dense.audit_violations, 0u);
  EXPECT_EQ(active.generated, dense.generated);
  EXPECT_EQ(active.end_cycle, dense.end_cycle);
  EXPECT_EQ(active.delivered_flits, dense.delivered_flits);
  ASSERT_EQ(active.delivered.size(), dense.delivered.size());
  for (std::size_t i = 0; i < active.delivered.size(); ++i) {
    const DeliveredPacket& a = active.delivered[i];
    const DeliveredPacket& d = dense.delivered[i];
    ASSERT_EQ(a.id.value(), d.id.value()) << "packet #" << i;
    ASSERT_EQ(a.flow.value(), d.flow.value()) << "packet #" << i;
    ASSERT_EQ(a.source.value(), d.source.value()) << "packet #" << i;
    ASSERT_EQ(a.dest.value(), d.dest.value()) << "packet #" << i;
    ASSERT_EQ(a.length, d.length) << "packet #" << i;
    ASSERT_EQ(a.created, d.created) << "packet #" << i;
    ASSERT_EQ(a.delivered, d.delivered) << "packet #" << i;
  }
}

class FaultDifferentialTest : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(FaultDifferentialTest, NoFaults) {
  expect_identical(GetParam(), FaultSpec{});
}

TEST_P(FaultDifferentialTest, LinkStallsOnly) {
  FaultSpec spec;
  spec.enabled = true;
  spec.link_stall_rate = 0.4;
  spec.link_stall_cycles = 6;
  expect_identical(GetParam(), spec);
}

TEST_P(FaultDifferentialTest, CreditStarvationOnly) {
  FaultSpec spec;
  spec.enabled = true;
  spec.credit_stall_rate = 0.4;
  spec.credit_stall_cycles = 20;
  expect_identical(GetParam(), spec);
}

TEST_P(FaultDifferentialTest, ChurnAndBursts) {
  FaultSpec spec;
  spec.enabled = true;
  spec.churn_rate = 0.25;
  spec.burst_rate = 0.2;
  expect_identical(GetParam(), spec);
}

TEST_P(FaultDifferentialTest, AllFaultClasses) {
  expect_identical(GetParam(), FaultSpec::chaos(0));
}

INSTANTIATE_TEST_SUITE_P(Seeds, FaultDifferentialTest,
                         ::testing::Range<std::uint64_t>(1, 6));

}  // namespace
}  // namespace wormsched::wormhole
