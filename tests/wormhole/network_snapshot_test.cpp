// Network-layer checkpoint/restore tests (docs/TESTING.md).
//
// The fabric differential itself lives in
// tests/harness/restore_differential_test.cpp; this suite covers the
// layer directly below it: Network::save_state/restore_state geometry
// validation (a snapshot must refuse a mismatched fabric with a clear
// SnapshotError, never misread it), traffic-source RNG continuation
// (including snapshots written by sharded runs), and the contract that
// sharding/threading is run-local wiring, not snapshot state.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/snapshot.hpp"
#include "harness/checkpoint.hpp"
#include "harness/network_sweep.hpp"
#include "wormhole/network.hpp"
#include "wormhole/patterns.hpp"

namespace wormsched::harness {
namespace {

NetworkScenarioConfig base_config() {
  NetworkScenarioConfig config;
  config.network.topo = wormhole::TopologySpec::mesh(3, 3);
  config.traffic.packets_per_node_per_cycle = 0.03;
  config.traffic.lengths = traffic::LengthSpec::uniform(1, 8);
  config.traffic.inject_until = 1'000;
  return config;
}

void expect_identical(const NetworkScenarioResult& a,
                      const NetworkScenarioResult& b) {
  EXPECT_EQ(a.end_cycle, b.end_cycle);
  EXPECT_EQ(a.generated_packets, b.generated_packets);
  EXPECT_EQ(a.delivered_packets, b.delivered_packets);
  EXPECT_EQ(a.delivered_flits, b.delivered_flits);
  // Exact doubles: restored accumulators continue the identical
  // floating-point stream, so == is the contract, not near-equality.
  EXPECT_EQ(a.latency.count(), b.latency.count());
  EXPECT_EQ(a.latency.mean(), b.latency.mean());
  EXPECT_EQ(a.latency.sum(), b.latency.sum());
  EXPECT_EQ(a.latency.min(), b.latency.min());
  EXPECT_EQ(a.latency.max(), b.latency.max());
  EXPECT_EQ(a.latency.stddev(), b.latency.stddev());
  EXPECT_EQ(a.p99_latency, b.p99_latency);
}

/// Straight run of `config` under `seed`.
NetworkScenarioResult straight(const NetworkScenarioConfig& config,
                               std::uint64_t seed) {
  NetworkRun run(config, seed);
  run.run_to_completion();
  return run.finish();
}

/// Split run: advance to `split`, snapshot, restore under
/// `restore_config`, continue to completion.
NetworkScenarioResult split_at(const NetworkScenarioConfig& config,
                               std::uint64_t seed, Cycle split,
                               const NetworkScenarioConfig& restore_config) {
  SnapshotFile file;
  {
    NetworkRun run(config, seed);
    run.advance_to(split);
    file = run.make_snapshot_file();
  }
  NetworkRun resumed(restore_config, file);
  EXPECT_TRUE(resumed.restored());
  EXPECT_EQ(resumed.now(), split);
  resumed.run_to_completion();
  return resumed.finish();
}

TEST(NetworkSnapshot, ShardedRestoreOfSerialCheckpointIsIdentical) {
  // Sharding is never serialized: a serial checkpoint restored under
  // shards=4/threads=2 must reproduce the serial run bit-for-bit.
  const NetworkScenarioConfig config = base_config();
  NetworkScenarioConfig sharded = config;
  sharded.network.shards = 4;
  sharded.network.threads = 2;
  const NetworkScenarioResult a = straight(config, 5);
  const NetworkScenarioResult b = split_at(config, 5, 400, sharded);
  expect_identical(a, b);
}

TEST(NetworkSnapshot, SerialRestoreOfShardedCheckpointIsIdentical) {
  NetworkScenarioConfig sharded = base_config();
  sharded.network.shards = 4;
  sharded.network.threads = 2;
  const NetworkScenarioResult a = straight(base_config(), 9);
  const NetworkScenarioResult b = split_at(sharded, 9, 377, base_config());
  expect_identical(a, b);
}

TEST(NetworkSnapshot, SourceRngContinuesAcrossRestore) {
  // The generated-packet count at every later cycle pins the Bernoulli
  // draw stream: one skipped or repeated draw after restore shifts it.
  const NetworkScenarioConfig config = base_config();
  NetworkRun reference(config, 21);
  reference.advance_to(900);
  const std::uint64_t expected = reference.source().generated();

  SnapshotFile file;
  {
    NetworkRun run(config, 21);
    run.advance_to(250);
    file = run.make_snapshot_file();
  }
  NetworkRun resumed(config, file);
  resumed.advance_to(900);
  EXPECT_EQ(resumed.source().generated(), expected);
}

TEST(NetworkSnapshot, RestoredProvenanceFields) {
  const NetworkScenarioConfig config = base_config();
  NetworkRun run(config, 33);
  run.advance_to(200);
  const SnapshotFile file = run.make_snapshot_file();

  const CheckpointProvenance prov = read_checkpoint_provenance(file);
  EXPECT_EQ(prov.kind, "network");
  EXPECT_EQ(prov.original_seed, 33u);
  EXPECT_EQ(prov.restore_count, 0u);
  EXPECT_EQ(prov.saved_cycle, 200u);

  NetworkRun resumed(config, file);
  EXPECT_EQ(resumed.original_seed(), 33u);
  EXPECT_EQ(resumed.restore_count(), 1u);
  resumed.advance_to(300);
  const CheckpointProvenance again =
      read_checkpoint_provenance(resumed.make_snapshot_file());
  EXPECT_EQ(again.restore_count, 1u);
  EXPECT_EQ(again.original_seed, 33u);
  EXPECT_EQ(again.saved_cycle, 300u);
}

/// --- Geometry / config validation ----------------------------------------

/// Positions a reader at the NNET section of a checkpoint payload.
void seek_network_section(SnapshotReader& r) {
  r.skip_section();  // META
  r.skip_section();  // NCFG
  r.enter_section(kCkptNetworkTag);
}

TEST(NetworkSnapshot, TopologyMismatchThrows) {
  NetworkRun run(base_config(), 1);
  run.advance_to(300);
  const std::vector<std::uint8_t> payload = run.checkpoint_payload();

  wormhole::NetworkConfig bigger;
  bigger.topo = wormhole::TopologySpec::mesh(4, 4);
  wormhole::Network net(bigger);
  SnapshotReader r(payload);
  seek_network_section(r);
  EXPECT_THROW(net.restore_state(r), SnapshotError);
}

TEST(NetworkSnapshot, RouterConfigMismatchThrows) {
  NetworkRun run(base_config(), 1);
  run.advance_to(300);
  const std::vector<std::uint8_t> payload = run.checkpoint_payload();

  wormhole::NetworkConfig more_vcs;
  more_vcs.topo = wormhole::TopologySpec::mesh(3, 3);
  more_vcs.router.num_vcs = 4;
  wormhole::Network net(more_vcs);
  SnapshotReader r(payload);
  seek_network_section(r);
  EXPECT_THROW(net.restore_state(r), SnapshotError);
}

TEST(NetworkSnapshot, RunRestoreRejectsMismatchedGeometry) {
  // The whole-run restore path surfaces the same validation.
  NetworkRun run(base_config(), 1);
  run.advance_to(300);
  const SnapshotFile file = run.make_snapshot_file();

  NetworkScenarioConfig wrong = base_config();
  wrong.network.topo = wormhole::TopologySpec::mesh(4, 4);
  EXPECT_THROW(NetworkRun(wrong, file), SnapshotError);
}

TEST(NetworkSnapshot, ScenarioCheckpointRejectedByNetworkRestore) {
  // Kind confusion: a standalone-scheduler checkpoint must not restore
  // as a fabric.
  ScenarioSpec spec;
  spec.workload_text = "bern:0.01:u1-8*2";
  spec.config.horizon = 500;
  ScenarioRun scenario(spec);
  scenario.advance_to(200);
  const SnapshotFile file = scenario.make_snapshot_file();
  EXPECT_THROW(NetworkRun(base_config(), file), SnapshotError);
  EXPECT_NO_THROW(ScenarioRun(spec, file));
}

TEST(NetworkSnapshot, CorruptedSectionPayloadNeverMisreads) {
  // Flip a byte inside the NNET section: the restore must either throw
  // SnapshotError or produce a structurally valid network — it must
  // never crash or read out of bounds (ASan leg enforces the latter).
  NetworkRun run(base_config(), 3);
  run.advance_to(500);
  std::vector<std::uint8_t> payload = run.checkpoint_payload();
  // Corrupt a byte in the middle of the payload (inside network state).
  payload[payload.size() / 2] ^= 0x5A;

  NetworkScenarioConfig config = base_config();
  wormhole::Network net(config.network);
  SnapshotReader r(payload);
  try {
    seek_network_section(r);
    net.restore_state(r);
  } catch (const SnapshotError&) {
    // Expected for most mutation sites; acceptable for all.
  }
}

}  // namespace
}  // namespace wormsched::harness
