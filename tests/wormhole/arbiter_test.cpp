#include "wormhole/arbiter.hpp"

#include <gtest/gtest.h>

namespace wormsched::wormhole {
namespace {

TEST(ArbiterFactory, CreatesAllKinds) {
  EXPECT_EQ(make_arbiter("err", 4)->name(), "ERR-cycles");
  EXPECT_EQ(make_arbiter("err-cycles", 4)->name(), "ERR-cycles");
  EXPECT_EQ(make_arbiter("err-flits", 4)->name(), "ERR-flits");
  EXPECT_EQ(make_arbiter("rr", 4)->name(), "RR");
  EXPECT_EQ(make_arbiter("fcfs", 4)->name(), "FCFS");
  EXPECT_EQ(make_arbiter("bogus", 4), nullptr);
}

TEST(PortArbiter, GrantConsumesPendingHead) {
  auto arb = make_arbiter("rr", 2);
  EXPECT_FALSE(arb->grant(0).has_value());
  arb->request(FlowId(1));
  EXPECT_EQ(arb->pending(FlowId(1)), 1u);
  const auto owner = arb->grant(1);
  ASSERT_TRUE(owner.has_value());
  EXPECT_EQ(*owner, FlowId(1));
  EXPECT_EQ(arb->pending(FlowId(1)), 0u);
  EXPECT_TRUE(arb->bound());
  arb->release();
  EXPECT_FALSE(arb->bound());
}

TEST(RrArbiter, RotatesAmongRequesters) {
  auto arb = make_arbiter("rr", 3);
  for (std::uint32_t f = 0; f < 3; ++f) {
    arb->request(FlowId(f));
    arb->request(FlowId(f));
  }
  std::vector<std::uint32_t> grants;
  for (int k = 0; k < 6; ++k) {
    const auto owner = arb->grant(0);
    ASSERT_TRUE(owner);
    grants.push_back(owner->value());
    arb->release();
  }
  EXPECT_EQ(grants, (std::vector<std::uint32_t>{0, 1, 2, 0, 1, 2}));
}

TEST(FcfsArbiter, GrantsInRequestOrder) {
  auto arb = make_arbiter("fcfs", 3);
  arb->request(FlowId(2));
  arb->request(FlowId(0));
  arb->request(FlowId(2));
  std::vector<std::uint32_t> grants;
  for (int k = 0; k < 3; ++k) {
    grants.push_back(arb->grant(0)->value());
    arb->release();
  }
  EXPECT_EQ(grants, (std::vector<std::uint32_t>{2, 0, 2}));
}

TEST(ErrArbiter, ContinuesFlowWithinAllowance) {
  // Requester 0 overshoots in round 1; in round 2 requester 1 has a large
  // allowance and keeps the output across consecutive packets.
  ErrArbiter arb(2, ErrArbiter::Accounting::kCycles);
  for (int k = 0; k < 6; ++k) arb.request(FlowId(0));
  for (int k = 0; k < 20; ++k) arb.request(FlowId(1));

  auto serve = [&arb](std::uint64_t cycles) {
    const auto owner = arb.grant(0);
    EXPECT_TRUE(owner.has_value());
    for (std::uint64_t c = 0; c < cycles; ++c) arb.charge_cycle();
    const auto flow = *owner;
    arb.release();
    return flow;
  };
  // Round 1: A=1 each.  Flow 0's packet holds 10 cycles (SC 9); flow 1's
  // holds 1 cycle (SC 0).
  EXPECT_EQ(serve(10), FlowId(0));
  EXPECT_EQ(serve(1), FlowId(1));
  // Round 2: A_0 = 1, A_1 = 10 -> flow 0 one packet, flow 1 ten 1-cycle
  // packets back to back.
  EXPECT_EQ(serve(10), FlowId(0));
  for (int k = 0; k < 10; ++k) EXPECT_EQ(serve(1), FlowId(1)) << k;
  EXPECT_EQ(serve(10), FlowId(0));
}

TEST(ErrArbiter, CycleVsFlitAccountingDiverge) {
  // Two packets, equal flit counts, but requester 0's packets stall the
  // output 4x longer.  Cycle accounting charges the stall; flit accounting
  // does not.
  ErrArbiter cycles(2, ErrArbiter::Accounting::kCycles);
  ErrArbiter flits(2, ErrArbiter::Accounting::kFlits);
  for (ErrArbiter* arb : {&cycles, &flits}) {
    arb->request(FlowId(0));
    arb->request(FlowId(1));
    // Flow 0: 2 flits over 8 cycles (stalled).  Flow 1: 2 flits, 2 cycles.
    (void)arb->grant(0);
    for (int c = 0; c < 8; ++c) arb->charge_cycle();
    arb->charge_flit();
    arb->charge_flit();
    arb->release();
    (void)arb->grant(0);
    arb->charge_cycle();
    arb->charge_cycle();
    arb->charge_flit();
    arb->charge_flit();
    arb->release();
  }
  // Occupancy accounting: flow 0 owes 7, flow 1 owes 1.
  EXPECT_DOUBLE_EQ(cycles.policy().surplus_count(FlowId(0)), 0.0);  // idle reset
  // Both drained, SCs reset; compare through MaxSC of the round instead.
  EXPECT_DOUBLE_EQ(cycles.policy().max_sc(), 7.0);
  EXPECT_DOUBLE_EQ(flits.policy().max_sc(), 1.0);
}

TEST(ErrArbiter, IdleSystemGrantsNothing) {
  ErrArbiter arb(2, ErrArbiter::Accounting::kCycles);
  EXPECT_FALSE(arb.grant(0).has_value());
}

TEST(PortArbiterDeath, ReleaseWithoutOwnerAborts) {
  auto arb = make_arbiter("rr", 2);
  EXPECT_DEATH(arb->release(), "no owner");
}

TEST(PortArbiterDeath, DoubleGrantAborts) {
  auto arb = make_arbiter("rr", 2);
  arb->request(FlowId(0));
  (void)arb->grant(0);
  EXPECT_DEATH((void)arb->grant(1), "still owned");
}

}  // namespace
}  // namespace wormsched::wormhole
