#include "wormhole/arbiter.hpp"

#include <gtest/gtest.h>

namespace wormsched::wormhole {
namespace {

TEST(ArbiterFactory, CreatesAllKinds) {
  EXPECT_EQ(make_arbiter("err", 4)->name(), "ERR-cycles");
  EXPECT_EQ(make_arbiter("err-cycles", 4)->name(), "ERR-cycles");
  EXPECT_EQ(make_arbiter("err-flits", 4)->name(), "ERR-flits");
  EXPECT_EQ(make_arbiter("rr", 4)->name(), "RR");
  EXPECT_EQ(make_arbiter("fcfs", 4)->name(), "FCFS");
  EXPECT_EQ(make_arbiter("bogus", 4), nullptr);
}

TEST(PortArbiter, GrantConsumesPendingHead) {
  auto arb = make_arbiter("rr", 2);
  EXPECT_FALSE(arb->grant(0).has_value());
  arb->request(FlowId(1));
  EXPECT_EQ(arb->pending(FlowId(1)), 1u);
  const auto owner = arb->grant(1);
  ASSERT_TRUE(owner.has_value());
  EXPECT_EQ(*owner, FlowId(1));
  EXPECT_EQ(arb->pending(FlowId(1)), 0u);
  EXPECT_TRUE(arb->bound());
  arb->release();
  EXPECT_FALSE(arb->bound());
}

TEST(RrArbiter, RotatesAmongRequesters) {
  auto arb = make_arbiter("rr", 3);
  for (std::uint32_t f = 0; f < 3; ++f) {
    arb->request(FlowId(f));
    arb->request(FlowId(f));
  }
  std::vector<std::uint32_t> grants;
  for (int k = 0; k < 6; ++k) {
    const auto owner = arb->grant(0);
    ASSERT_TRUE(owner);
    grants.push_back(owner->value());
    arb->release();
  }
  EXPECT_EQ(grants, (std::vector<std::uint32_t>{0, 1, 2, 0, 1, 2}));
}

TEST(FcfsArbiter, GrantsInRequestOrder) {
  auto arb = make_arbiter("fcfs", 3);
  arb->request(FlowId(2));
  arb->request(FlowId(0));
  arb->request(FlowId(2));
  std::vector<std::uint32_t> grants;
  for (int k = 0; k < 3; ++k) {
    grants.push_back(arb->grant(0)->value());
    arb->release();
  }
  EXPECT_EQ(grants, (std::vector<std::uint32_t>{2, 0, 2}));
}

TEST(ErrArbiter, ContinuesFlowWithinAllowance) {
  // Requester 0 overshoots in round 1; in round 2 requester 1 has a large
  // allowance and keeps the output across consecutive packets.
  ErrArbiter arb(2, ErrArbiter::Accounting::kCycles);
  for (int k = 0; k < 6; ++k) arb.request(FlowId(0));
  for (int k = 0; k < 20; ++k) arb.request(FlowId(1));

  auto serve = [&arb](std::uint64_t cycles) {
    const auto owner = arb.grant(0);
    EXPECT_TRUE(owner.has_value());
    for (std::uint64_t c = 0; c < cycles; ++c) arb.charge_cycle();
    const auto flow = *owner;
    arb.release();
    return flow;
  };
  // Round 1: A=1 each.  Flow 0's packet holds 10 cycles (SC 9); flow 1's
  // holds 1 cycle (SC 0).
  EXPECT_EQ(serve(10), FlowId(0));
  EXPECT_EQ(serve(1), FlowId(1));
  // Round 2: A_0 = 1, A_1 = 10 -> flow 0 one packet, flow 1 ten 1-cycle
  // packets back to back.
  EXPECT_EQ(serve(10), FlowId(0));
  for (int k = 0; k < 10; ++k) EXPECT_EQ(serve(1), FlowId(1)) << k;
  EXPECT_EQ(serve(10), FlowId(0));
}

TEST(ErrArbiter, CycleVsFlitAccountingDiverge) {
  // Two packets, equal flit counts, but requester 0's packets stall the
  // output 4x longer.  Cycle accounting charges the stall; flit accounting
  // does not.
  ErrArbiter cycles(2, ErrArbiter::Accounting::kCycles);
  ErrArbiter flits(2, ErrArbiter::Accounting::kFlits);
  for (ErrArbiter* arb : {&cycles, &flits}) {
    arb->request(FlowId(0));
    arb->request(FlowId(1));
    // Flow 0: 2 flits over 8 cycles (stalled).  Flow 1: 2 flits, 2 cycles.
    (void)arb->grant(0);
    for (int c = 0; c < 8; ++c) arb->charge_cycle();
    arb->charge_flit();
    arb->charge_flit();
    arb->release();
    (void)arb->grant(0);
    arb->charge_cycle();
    arb->charge_cycle();
    arb->charge_flit();
    arb->charge_flit();
    arb->release();
  }
  // Occupancy accounting: flow 0 owes 7, flow 1 owes 1.
  EXPECT_DOUBLE_EQ(cycles.policy().surplus_count(FlowId(0)), 0.0);  // idle reset
  // Both drained, SCs reset; compare through MaxSC of the round instead.
  EXPECT_DOUBLE_EQ(cycles.policy().max_sc(), 7.0);
  EXPECT_DOUBLE_EQ(flits.policy().max_sc(), 1.0);
}

TEST(ErrArbiter, IdleSystemGrantsNothing) {
  ErrArbiter arb(2, ErrArbiter::Accounting::kCycles);
  EXPECT_FALSE(arb.grant(0).has_value());
}

TEST(PortArbiter, PendingTotalTracksRequestsAndGrants) {
  // pending_total is the lazy-arbitration gate: the router skips grant()
  // entirely for outputs where it reads zero, so it must match the sum of
  // per-requester pending counts at every step.
  for (const char* kind : {"err-cycles", "err-flits", "rr", "fcfs"}) {
    auto arb = make_arbiter(kind, 3);
    EXPECT_EQ(arb->pending_total(), 0u) << kind;
    arb->request(FlowId(0));
    arb->request(FlowId(2));
    arb->request(FlowId(2));
    EXPECT_EQ(arb->pending_total(), 3u) << kind;
    const auto serve_one = [&arb](Cycle now) {
      (void)arb->grant(now);
      arb->charge_cycle();  // every owner is charged before release
      arb->charge_flit();
      arb->release();
    };
    (void)arb->grant(0);
    EXPECT_EQ(arb->pending_total(), 2u) << kind;
    arb->charge_cycle();
    arb->charge_flit();
    arb->release();
    serve_one(1);
    EXPECT_EQ(arb->pending_total(), 1u) << kind;
    serve_one(2);
    EXPECT_EQ(arb->pending_total(), 0u) << kind;
    // Drained: a further grant must be a no-op with nothing pending.
    EXPECT_FALSE(arb->grant(3).has_value()) << kind;
    EXPECT_EQ(arb->pending_total(), 0u) << kind;
  }
}

TEST(PortArbiter, ZeroPendingTotalMeansGrantIsANoOp) {
  // The soundness condition behind the lazy skip, checked per discipline:
  // with pending_total() == 0 and the output unbound, grant() returns
  // nullopt and later behavior is as if it was never called.
  for (const char* kind : {"err-cycles", "rr", "fcfs"}) {
    auto probed = make_arbiter(kind, 2);
    auto control = make_arbiter(kind, 2);
    // Exercise a full grant/release cycle first so internal round state
    // (ERR opportunities, RR ring position) is live, then drain.
    for (auto* arb : {probed.get(), control.get()}) {
      arb->request(FlowId(1));
      (void)arb->grant(0);
      arb->charge_cycle();
      arb->release();
    }
    // Probe only one of the two...
    for (int k = 0; k < 5; ++k) EXPECT_FALSE(probed->grant(1).has_value());
    // ...then run both through the same future and expect identical grants.
    for (auto* arb : {probed.get(), control.get()}) {
      arb->request(FlowId(0));
      arb->request(FlowId(1));
    }
    std::vector<std::uint32_t> probed_order;
    std::vector<std::uint32_t> control_order;
    for (int k = 0; k < 2; ++k) {
      probed_order.push_back(probed->grant(2)->value());
      probed->charge_cycle();
      probed->release();
      control_order.push_back(control->grant(2)->value());
      control->charge_cycle();
      control->release();
    }
    EXPECT_EQ(probed_order, control_order) << kind;
  }
}

TEST(ErrArbiter, ContinuationReRequestKeepsPendingTotalPositive) {
  // The router raises the next head's request *before* release so ERR
  // sees the backlog; across that sequence pending_total must never
  // undercount (the sparse pipeline would otherwise drop the output from
  // its requesting mask while a continuation is still owed).
  ErrArbiter arb(2, ErrArbiter::Accounting::kCycles);
  for (int k = 0; k < 3; ++k) arb.request(FlowId(0));
  EXPECT_EQ(arb.pending_total(), 3u);
  (void)arb.grant(0);
  EXPECT_EQ(arb.pending_total(), 2u);
  arb.charge_cycle();
  arb.request(FlowId(0));  // tail handling re-request, pre-release
  EXPECT_EQ(arb.pending_total(), 3u);
  arb.release();
  EXPECT_EQ(arb.pending_total(), 3u);
  // The open opportunity continues with the same flow.
  const auto owner = arb.grant(1);
  ASSERT_TRUE(owner.has_value());
  EXPECT_EQ(*owner, FlowId(0));
  EXPECT_EQ(arb.pending_total(), 2u);
}

TEST(PortArbiterDeath, ReleaseWithoutOwnerAborts) {
  auto arb = make_arbiter("rr", 2);
  EXPECT_DEATH(arb->release(), "no owner");
}

TEST(PortArbiterDeath, DoubleGrantAborts) {
  auto arb = make_arbiter("rr", 2);
  arb->request(FlowId(0));
  (void)arb->grant(0);
  EXPECT_DEATH((void)arb->grant(1), "still owned");
}

}  // namespace
}  // namespace wormsched::wormhole
