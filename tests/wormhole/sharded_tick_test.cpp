// Differential + fuzz coverage for the sharded multi-threaded tick.
//
// NetworkConfig::{shards, threads} promise results bit-identical to the
// serial kernel: same packets, same delivery cycles, same flit counts,
// same latency statistics (down to floating-point summation order), and
// the same auditor verdicts.  This suite drives the promise across shard
// geometries (including shards > routers, degenerate 1x1 and 1xN meshes,
// and torus wrap links that cross shard boundaries), the threads < shards
// oversubscription path, the single-threaded staging path (threads = 1,
// shards > 1), and a 200-seed faulted + unfaulted fuzz corpus.
#include <gtest/gtest.h>

#include <cstdio>
#include <initializer_list>
#include <optional>
#include <vector>

#include "sim/engine.hpp"
#include "validate/faults.hpp"
#include "validate/network_auditor.hpp"
#include "validate/violation.hpp"
#include "wormhole/network.hpp"
#include "wormhole/patterns.hpp"

namespace wormsched::wormhole {
namespace {

using validate::AuditLog;
using validate::FaultSpec;

struct ShardedMode {
  std::uint32_t threads = 1;
  std::uint32_t shards = 1;
};

struct FabricRun {
  std::vector<DeliveredPacket> delivered;
  std::uint64_t delivered_flits = 0;
  std::uint64_t generated = 0;
  Cycle end_cycle = 0;
  std::uint64_t audit_violations = 0;
  std::uint64_t audit_checks = 0;
  double latency_mean = 0.0;
  double latency_max = 0.0;
};

FabricRun run_fabric(TopologySpec topo, ShardedMode mode, std::uint64_t seed,
                     FaultSpec spec, Cycle inject_until) {
  NetworkConfig config;
  config.topo = topo;
  config.router.num_vcs = 2;  // torus-legal everywhere, same in every run
  config.threads = mode.threads;
  config.shards = mode.shards;
  std::optional<validate::ScheduledFaults> faults;
  if (spec.enabled) {
    spec.seed += seed;
    spec.num_nodes = topo.width * topo.height;
    faults.emplace(spec);
    config.faults = &*faults;
  }
  Network net(config);
  AuditLog log(AuditLog::Mode::kCount);
  validate::NetworkAuditor auditor(validate::NetworkAuditorConfig{}, log);
  net.attach_observer(&auditor);

  NetworkTrafficSource::Config traffic;
  traffic.packets_per_node_per_cycle = 0.04;
  traffic.inject_until = inject_until;
  traffic.seed = seed;
  traffic.faults = config.faults;
  NetworkTrafficSource source(net, traffic);

  sim::Engine engine;
  engine.add_component(source);
  engine.add_component(net);
  engine.run_until(traffic.inject_until);
  FabricRun run;
  run.end_cycle = engine.run_until_idle(200'000);
  run.delivered = net.delivered();
  run.delivered_flits = net.delivered_flits();
  run.generated = source.generated();
  run.audit_violations = log.count();
  run.audit_checks = auditor.checks_run();
  run.latency_mean = net.latency_overall().mean();
  run.latency_max = net.latency_overall().max();
  return run;
}

void expect_same_run(const FabricRun& ref, const FabricRun& other,
                     const char* label) {
  EXPECT_EQ(other.audit_violations, ref.audit_violations) << label;
  EXPECT_EQ(ref.generated, other.generated) << label;
  EXPECT_EQ(ref.end_cycle, other.end_cycle) << label;
  EXPECT_EQ(ref.delivered_flits, other.delivered_flits) << label;
  // Exact double equality on purpose: the commit phase replays ejections
  // in serial order, so even the float summation order must match.
  EXPECT_EQ(ref.latency_mean, other.latency_mean) << label;
  EXPECT_EQ(ref.latency_max, other.latency_max) << label;
  ASSERT_EQ(ref.delivered.size(), other.delivered.size()) << label;
  for (std::size_t i = 0; i < ref.delivered.size(); ++i) {
    const DeliveredPacket& a = ref.delivered[i];
    const DeliveredPacket& d = other.delivered[i];
    ASSERT_EQ(a.id.value(), d.id.value()) << label << " packet #" << i;
    ASSERT_EQ(a.flow.value(), d.flow.value()) << label << " packet #" << i;
    ASSERT_EQ(a.source.value(), d.source.value()) << label << " packet #" << i;
    ASSERT_EQ(a.dest.value(), d.dest.value()) << label << " packet #" << i;
    ASSERT_EQ(a.length, d.length) << label << " packet #" << i;
    ASSERT_EQ(a.created, d.created) << label << " packet #" << i;
    ASSERT_EQ(a.delivered, d.delivered) << label << " packet #" << i;
  }
}

void expect_sharded_matches_serial(TopologySpec topo, std::uint64_t seed,
                                   const FaultSpec& spec, Cycle inject_until,
                                   std::initializer_list<ShardedMode> modes) {
  const FabricRun serial =
      run_fabric(topo, ShardedMode{1, 1}, seed, spec, inject_until);
  EXPECT_GT(serial.delivered.size(), 0u);
  EXPECT_EQ(serial.audit_violations, 0u);
  for (const ShardedMode mode : modes) {
    const FabricRun sharded = run_fabric(topo, mode, seed, spec, inject_until);
    char label[64];
    std::snprintf(label, sizeof label, "threads=%u shards=%u", mode.threads,
                  mode.shards);
    expect_same_run(serial, sharded, label);
  }
}

// ---------------------------------------------------------------------------
// Geometry / accessor sanity.

TEST(ShardedTick, ShardCountClampsToRouterCount) {
  NetworkConfig config;
  config.topo = TopologySpec::mesh(4, 4);
  config.shards = 64;  // > 16 routers
  config.threads = 64;
  Network net(config);
  EXPECT_EQ(net.shard_count(), 16u);
  EXPECT_EQ(net.tick_lanes(), 16u);  // threads clamp to shards
}

TEST(ShardedTick, LanesClampToShards) {
  NetworkConfig config;
  config.topo = TopologySpec::mesh(4, 4);
  config.shards = 2;
  config.threads = 8;
  Network net(config);
  EXPECT_EQ(net.shard_count(), 2u);
  EXPECT_EQ(net.tick_lanes(), 2u);
}

TEST(ShardedTick, SingleShardStaysSerial) {
  NetworkConfig config;
  config.topo = TopologySpec::mesh(4, 4);
  config.shards = 1;
  config.threads = 8;
  Network net(config);
  EXPECT_EQ(net.shard_count(), 1u);
  EXPECT_EQ(net.tick_lanes(), 1u);  // no team is built for one shard
}

// A 1x1 mesh: every shard request collapses to one serial shard, and a
// packet whose source is its destination must still flow NIC -> router ->
// ejection.
TEST(ShardedTick, OneByOneMeshDeliversLocally) {
  for (const std::uint32_t shards : {1u, 8u}) {
    NetworkConfig config;
    config.topo = TopologySpec::mesh(1, 1);
    config.shards = shards;
    config.threads = shards;
    Network net(config);
    EXPECT_EQ(net.shard_count(), 1u);
    PacketDescriptor pkt;
    pkt.id = PacketId(1);
    pkt.flow = FlowId(0);
    pkt.source = NodeId(0);
    pkt.dest = NodeId(0);
    pkt.length = 5;
    pkt.created = 0;
    net.inject(0, pkt);
    sim::Engine engine;
    engine.add_component(net);
    engine.run_until_idle(1'000);
    ASSERT_EQ(net.delivered().size(), 1u) << "shards=" << shards;
    EXPECT_EQ(net.delivered()[0].length, 5u);
    EXPECT_EQ(net.delivered_flits(), 5u);
  }
}

// ---------------------------------------------------------------------------
// Differential: sharded == serial, bit for bit.

TEST(ShardedTick, MeshMatchesSerialAcrossGeometries) {
  // 4x4 mesh, no faults: even split, uneven split (16 % 5 != 0), the
  // threads < shards oversubscription path, the single-threaded staging
  // path, and the shards > routers clamp.
  expect_sharded_matches_serial(TopologySpec::mesh(4, 4), /*seed=*/11,
                                FaultSpec{}, /*inject_until=*/1200,
                                {ShardedMode{2, 2}, ShardedMode{4, 4},
                                 ShardedMode{3, 5}, ShardedMode{1, 4},
                                 ShardedMode{64, 64}});
}

TEST(ShardedTick, FaultedMeshMatchesSerial) {
  FaultSpec spec = FaultSpec::chaos(0);
  expect_sharded_matches_serial(TopologySpec::mesh(4, 4), /*seed=*/3, spec,
                                /*inject_until=*/1200,
                                {ShardedMode{4, 4}, ShardedMode{2, 7}});
}

TEST(ShardedTick, OneByNMeshMatchesSerial) {
  // A 1x8 line: every link is a shard-boundary link once shards > 1.
  expect_sharded_matches_serial(TopologySpec::mesh(1, 8), /*seed=*/5,
                                FaultSpec{}, /*inject_until=*/1500,
                                {ShardedMode{2, 2}, ShardedMode{4, 8}});
}

TEST(ShardedTick, TorusWrapLinksCrossShardBoundaries) {
  // On a 4x4 torus split into 4 row-ish shards, the north/south wrap
  // links connect the first and last shards directly; dateline VC
  // remapping must survive the staged commit.
  expect_sharded_matches_serial(TopologySpec::torus(4, 4), /*seed=*/7,
                                FaultSpec{}, /*inject_until=*/1200,
                                {ShardedMode{4, 4}, ShardedMode{2, 3}});
}

TEST(ShardedTick, FaultedTorusMatchesSerial) {
  FaultSpec spec;
  spec.enabled = true;
  spec.credit_stall_rate = 0.4;
  spec.credit_stall_cycles = 20;
  expect_sharded_matches_serial(TopologySpec::torus(4, 4), /*seed=*/13, spec,
                                /*inject_until=*/1200, {ShardedMode{4, 4}});
}

// ---------------------------------------------------------------------------
// 200-seed fuzz corpus: serial vs sharded, rotating fault presets (the
// same rotation the pipeline fuzz block uses) and shard geometries.

FaultSpec preset_for(std::uint64_t seed) {
  FaultSpec spec;
  switch (seed % 5) {
    case 0:  // fault-free
      break;
    case 1:
      spec.enabled = true;
      spec.link_stall_rate = 0.4;
      spec.link_stall_cycles = 6;
      break;
    case 2:
      spec.enabled = true;
      spec.credit_stall_rate = 0.4;
      spec.credit_stall_cycles = 20;
      break;
    case 3:
      spec.enabled = true;
      spec.churn_rate = 0.25;
      spec.burst_rate = 0.2;
      break;
    default:
      spec = FaultSpec::chaos(0);
      break;
  }
  return spec;
}

class ShardedFuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ShardedFuzzTest, ShardedAndSerialAgree) {
  const std::uint64_t seed = GetParam();
  const FaultSpec spec = preset_for(seed);
  // Rotate geometry with the seed so the corpus covers even splits,
  // uneven splits, oversubscription, and the serial staging path.
  static constexpr ShardedMode kModes[] = {
      ShardedMode{2, 2}, ShardedMode{4, 4}, ShardedMode{3, 5},
      ShardedMode{1, 4}, ShardedMode{2, 16},
  };
  const ShardedMode mode = kModes[seed % (sizeof kModes / sizeof kModes[0])];
  const FabricRun serial = run_fabric(TopologySpec::mesh(4, 4),
                                      ShardedMode{1, 1}, seed, spec,
                                      /*inject_until=*/400);
  EXPECT_GT(serial.delivered.size(), 0u);
  EXPECT_EQ(serial.audit_violations, 0u);
  const FabricRun sharded = run_fabric(TopologySpec::mesh(4, 4), mode, seed,
                                       spec, /*inject_until=*/400);
  char label[64];
  std::snprintf(label, sizeof label, "seed=%llu threads=%u shards=%u",
                static_cast<unsigned long long>(seed), mode.threads,
                mode.shards);
  expect_same_run(serial, sharded, label);
  // The auditor must have actually audited the sharded run, and must have
  // reached the identical verdict, not merely "no violations".
  EXPECT_GT(sharded.audit_checks, 0u) << label;
  EXPECT_EQ(serial.audit_checks, sharded.audit_checks) << label;
}

INSTANTIATE_TEST_SUITE_P(Seeds, ShardedFuzzTest,
                         ::testing::Range<std::uint64_t>(1000, 1200));

}  // namespace
}  // namespace wormsched::wormhole
