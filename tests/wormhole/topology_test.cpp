#include "wormhole/topology.hpp"

#include <gtest/gtest.h>

namespace wormsched::wormhole {
namespace {

TEST(Topology, CoordinateRoundTrip) {
  Topology mesh(TopologySpec::mesh(4, 3));
  EXPECT_EQ(mesh.num_nodes(), 12u);
  for (std::uint32_t n = 0; n < 12; ++n)
    EXPECT_EQ(mesh.node(mesh.coord(NodeId(n))), NodeId(n));
  EXPECT_EQ(mesh.coord(NodeId(5)).x, 1u);
  EXPECT_EQ(mesh.coord(NodeId(5)).y, 1u);
}

TEST(Topology, MeshNeighborsAndEdges) {
  Topology mesh(TopologySpec::mesh(3, 3));
  const NodeId center(4);
  EXPECT_EQ(mesh.neighbor(center, Direction::kEast), NodeId(5));
  EXPECT_EQ(mesh.neighbor(center, Direction::kWest), NodeId(3));
  EXPECT_EQ(mesh.neighbor(center, Direction::kNorth), NodeId(1));
  EXPECT_EQ(mesh.neighbor(center, Direction::kSouth), NodeId(7));
  // Corners fall off the edge.
  EXPECT_FALSE(mesh.neighbor(NodeId(0), Direction::kWest).is_valid());
  EXPECT_FALSE(mesh.neighbor(NodeId(0), Direction::kNorth).is_valid());
  EXPECT_FALSE(mesh.neighbor(NodeId(8), Direction::kEast).is_valid());
}

TEST(Topology, TorusWrapsAround) {
  Topology torus(TopologySpec::torus(3, 3));
  EXPECT_EQ(torus.neighbor(NodeId(2), Direction::kEast), NodeId(0));
  EXPECT_EQ(torus.neighbor(NodeId(0), Direction::kWest), NodeId(2));
  EXPECT_EQ(torus.neighbor(NodeId(0), Direction::kNorth), NodeId(6));
  EXPECT_TRUE(torus.is_wrap_link(NodeId(2), Direction::kEast));
  EXPECT_FALSE(torus.is_wrap_link(NodeId(1), Direction::kEast));
}

TEST(Topology, MeshNeverWraps) {
  Topology mesh(TopologySpec::mesh(3, 3));
  for (std::uint32_t n = 0; n < 9; ++n)
    for (const auto d : {Direction::kEast, Direction::kWest,
                         Direction::kNorth, Direction::kSouth})
      EXPECT_FALSE(mesh.is_wrap_link(NodeId(n), d));
}

TEST(Topology, DorRoutesXFirst) {
  Topology mesh(TopologySpec::mesh(4, 4));
  // From (0,0) to (2,2): east twice, then south twice.
  const auto d1 = mesh.route(NodeId(0), NodeId(10), Direction::kLocal, 0);
  EXPECT_EQ(d1.out, Direction::kEast);
  const auto d2 = mesh.route(NodeId(1), NodeId(10), Direction::kWest, 0);
  EXPECT_EQ(d2.out, Direction::kEast);
  const auto d3 = mesh.route(NodeId(2), NodeId(10), Direction::kWest, 0);
  EXPECT_EQ(d3.out, Direction::kSouth);
  const auto d4 = mesh.route(NodeId(10), NodeId(10), Direction::kNorth, 0);
  EXPECT_EQ(d4.out, Direction::kLocal);
}

TEST(Topology, HopCountsMesh) {
  Topology mesh(TopologySpec::mesh(4, 4));
  EXPECT_EQ(mesh.hops(NodeId(0), NodeId(0)), 0u);
  EXPECT_EQ(mesh.hops(NodeId(0), NodeId(3)), 3u);
  EXPECT_EQ(mesh.hops(NodeId(0), NodeId(15)), 6u);
}

TEST(Topology, TorusTakesShortWayRound) {
  Topology torus(TopologySpec::torus(4, 4));
  // 0 -> 3 is one west wrap hop, not three east hops.
  EXPECT_EQ(torus.hops(NodeId(0), NodeId(3)), 1u);
  const auto d = torus.route(NodeId(0), NodeId(3), Direction::kLocal, 0);
  EXPECT_EQ(d.out, Direction::kWest);
  EXPECT_TRUE(d.wraps);
  EXPECT_EQ(d.out_class, 1u);  // dateline: wrap hop rides class 1
}

TEST(Topology, DatelineClassPersistsWithinDimension) {
  Topology torus(TopologySpec::torus(5, 2));
  // 0 -> 3 goes west: wrap to 4 (class 1), then 4 -> 3 stays class 1.
  const auto first = torus.route(NodeId(0), NodeId(3), Direction::kLocal, 0);
  EXPECT_EQ(first.out, Direction::kWest);
  EXPECT_EQ(first.out_class, 1u);
  const auto second = torus.route(NodeId(4), NodeId(3), Direction::kEast, 1);
  EXPECT_EQ(second.out, Direction::kWest);
  EXPECT_FALSE(second.wraps);
  EXPECT_EQ(second.out_class, 1u);
}

TEST(Topology, DatelineClassResetsOnDimensionTurn) {
  Topology torus(TopologySpec::torus(4, 4));
  // A packet that wrapped in X (class 1) turning into Y restarts at 0.
  const auto d = torus.route(NodeId(3), NodeId(7), Direction::kEast, 1);
  EXPECT_EQ(d.out, Direction::kSouth);
  EXPECT_EQ(d.out_class, 0u);
}

TEST(Topology, EveryPairRoutesToDestination) {
  for (const auto spec :
       {TopologySpec::mesh(4, 4), TopologySpec::torus(4, 4)}) {
    Topology topo(spec);
    for (std::uint32_t a = 0; a < topo.num_nodes(); ++a)
      for (std::uint32_t b = 0; b < topo.num_nodes(); ++b)
        EXPECT_LE(topo.hops(NodeId(a), NodeId(b)), 8u)
            << spec.describe() << " " << a << "->" << b;
  }
}

TEST(Topology, DescribeAndDirectionNames) {
  EXPECT_EQ(TopologySpec::mesh(4, 4).describe(), "mesh 4x4");
  EXPECT_EQ(TopologySpec::torus(2, 8).describe(), "torus 2x8");
  EXPECT_STREQ(direction_name(Direction::kEast), "east");
}

}  // namespace
}  // namespace wormsched::wormhole
