// Router pipeline unit tests with a scripted RouterEnv: credit handling,
// output-queue contiguity, worm bubbles, VC-class stamping and credit
// returns, independent of the Network plumbing.
#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "wormhole/router.hpp"

namespace wormsched::wormhole {
namespace {

struct SentFlit {
  Direction out;
  Flit flit;
};
struct SentCredit {
  Direction in;
  std::uint32_t cls;
};

class ScriptedEnv final : public RouterEnv {
 public:
  void send_flit(NodeId, Direction out, const Flit& flit) override {
    sent.push_back(SentFlit{out, flit});
  }
  void eject(NodeId, const Flit& flit, Cycle) override {
    ejected.push_back(flit);
  }
  void send_credit(NodeId, Direction in, std::uint32_t cls) override {
    credits.push_back(SentCredit{in, cls});
  }
  RouteDecision route(NodeId, const Flit& flit, Direction, //
                      std::uint32_t in_class) override {
    RouteDecision d = route_for(flit);
    if (keep_class) d.out_class = in_class;
    return d;
  }

  std::function<RouteDecision(const Flit&)> route_for =
      [](const Flit&) { return RouteDecision{Direction::kEast, 0, false}; };
  bool keep_class = false;

  std::vector<SentFlit> sent;
  std::vector<Flit> ejected;
  std::vector<SentCredit> credits;
};

Flit make_flit(std::uint64_t packet, Flits index, Flits length,
               std::uint32_t dest = 0) {
  Flit f;
  f.packet = PacketId(packet);
  f.flow = FlowId(0);
  f.source = NodeId(1);
  f.dest = NodeId(dest);
  f.index = index;
  const bool head = index == 0;
  const bool tail = index + 1 == length;
  f.type = head && tail ? FlitType::kHeadTail
           : head       ? FlitType::kHead
           : tail       ? FlitType::kTail
                        : FlitType::kBody;
  return f;
}

RouterConfig small_config(std::uint32_t buffer_depth = 8) {
  RouterConfig config;
  config.num_vcs = 2;
  config.buffer_depth = buffer_depth;
  config.arbiter = "err-cycles";
  return config;
}

TEST(Router, ForwardsWholePacketInOrder) {
  ScriptedEnv env;
  Router r(NodeId(0), small_config());
  for (Flits i = 0; i < 3; ++i)
    r.accept_flit(Direction::kWest, 0, make_flit(7, i, 3));
  for (Cycle t = 0; t < 6; ++t) r.tick(t, env);
  ASSERT_EQ(env.sent.size(), 3u);
  for (Flits i = 0; i < 3; ++i) {
    EXPECT_EQ(env.sent[static_cast<std::size_t>(i)].out, Direction::kEast);
    EXPECT_EQ(env.sent[static_cast<std::size_t>(i)].flit.index, i);
  }
  EXPECT_TRUE(r.drained());
  EXPECT_EQ(r.forwarded_flits(), 3u);
}

TEST(Router, LocalPortEjects) {
  ScriptedEnv env;
  env.route_for = [](const Flit&) {
    return RouteDecision{Direction::kLocal, 0, false};
  };
  Router r(NodeId(0), small_config());
  r.accept_flit(Direction::kNorth, 1, make_flit(9, 0, 1));
  r.tick(0, env);
  ASSERT_EQ(env.ejected.size(), 1u);
  EXPECT_TRUE(env.sent.empty());
}

TEST(Router, RespectsCreditLimit) {
  // buffer_depth = 4 credits on the east output; a 6-flit worm must stall
  // after 4 flits until credits return.  The input is fed incrementally
  // (as the upstream credit loop would) to stay within its own buffer.
  ScriptedEnv env;
  Router r(NodeId(0), small_config(4));
  for (Flits i = 0; i < 4; ++i)
    r.accept_flit(Direction::kWest, 0, make_flit(1, i, 6));
  for (Cycle t = 0; t < 6; ++t) r.tick(t, env);
  EXPECT_EQ(env.sent.size(), 4u);  // output credits exhausted
  r.accept_flit(Direction::kWest, 0, make_flit(1, 4, 6));
  r.accept_flit(Direction::kWest, 0, make_flit(1, 5, 6));
  for (Cycle t = 6; t < 10; ++t) r.tick(t, env);
  EXPECT_EQ(env.sent.size(), 4u);  // still no credits
  EXPECT_FALSE(r.drained());
  r.accept_credit(Direction::kEast, 0);
  r.accept_credit(Direction::kEast, 0);
  for (Cycle t = 10; t < 14; ++t) r.tick(t, env);
  EXPECT_EQ(env.sent.size(), 6u);
  EXPECT_TRUE(r.drained());
}

TEST(Router, ReturnsCreditUpstreamPerForwardedFlit) {
  ScriptedEnv env;
  Router r(NodeId(0), small_config());
  for (Flits i = 0; i < 2; ++i)
    r.accept_flit(Direction::kSouth, 1, make_flit(2, i, 2));
  for (Cycle t = 0; t < 4; ++t) r.tick(t, env);
  ASSERT_EQ(env.credits.size(), 2u);
  EXPECT_EQ(env.credits[0].in, Direction::kSouth);
  EXPECT_EQ(env.credits[0].cls, 1u);
}

TEST(Router, NoCreditReturnForLocalInjection) {
  ScriptedEnv env;
  Router r(NodeId(0), small_config());
  r.accept_flit(Direction::kLocal, 0, make_flit(3, 0, 1));
  r.tick(0, env);
  EXPECT_TRUE(env.credits.empty());
  EXPECT_EQ(env.sent.size(), 1u);
}

TEST(Router, OutputQueuePacketsNeverInterleave) {
  // Two inputs race for the same output VC with multi-flit worms; the
  // output sequence must be packet-contiguous (the wormhole invariant).
  ScriptedEnv env;
  Router r(NodeId(0), small_config());
  for (Flits i = 0; i < 4; ++i)
    r.accept_flit(Direction::kWest, 0, make_flit(10, i, 4));
  for (Flits i = 0; i < 4; ++i)
    r.accept_flit(Direction::kNorth, 0, make_flit(11, i, 4));
  for (Cycle t = 0; t < 12; ++t) r.tick(t, env);
  ASSERT_EQ(env.sent.size(), 8u);
  EXPECT_EQ(env.sent[0].flit.packet, env.sent[3].flit.packet);
  EXPECT_EQ(env.sent[4].flit.packet, env.sent[7].flit.packet);
  EXPECT_NE(env.sent[0].flit.packet, env.sent[4].flit.packet);
}

TEST(Router, WormBubbleDoesNotLeakOtherPackets) {
  // The head arrives alone; the body lags.  While the worm has a bubble,
  // a competing packet on another input must NOT slip into the bound
  // output queue.
  ScriptedEnv env;
  Router r(NodeId(0), small_config());
  r.accept_flit(Direction::kWest, 0, make_flit(20, 0, 3));  // head only
  for (Flits i = 0; i < 2; ++i)
    r.accept_flit(Direction::kNorth, 0, make_flit(21, i, 2));
  for (Cycle t = 0; t < 3; ++t) r.tick(t, env);
  // Head forwarded; bubble; competitor waits.
  ASSERT_EQ(env.sent.size(), 1u);
  EXPECT_EQ(env.sent[0].flit.packet, PacketId(20));
  // Body + tail arrive; worm completes; then the competitor runs.
  r.accept_flit(Direction::kWest, 0, make_flit(20, 1, 3));
  r.accept_flit(Direction::kWest, 0, make_flit(20, 2, 3));
  for (Cycle t = 3; t < 10; ++t) r.tick(t, env);
  ASSERT_EQ(env.sent.size(), 5u);
  EXPECT_EQ(env.sent[2].flit.packet, PacketId(20));
  EXPECT_EQ(env.sent[3].flit.packet, PacketId(21));
}

TEST(Router, StampsOutputVcClass) {
  // Route decision sends the packet out on class 1 (dateline); forwarded
  // flits must carry the new class.
  ScriptedEnv env;
  env.route_for = [](const Flit&) {
    return RouteDecision{Direction::kEast, 1, true};
  };
  Router r(NodeId(0), small_config());
  for (Flits i = 0; i < 2; ++i)
    r.accept_flit(Direction::kWest, 0, make_flit(30, i, 2));
  for (Cycle t = 0; t < 4; ++t) r.tick(t, env);
  ASSERT_EQ(env.sent.size(), 2u);
  EXPECT_EQ(env.sent[0].flit.vc_class, VcId(1));
  EXPECT_EQ(env.sent[1].flit.vc_class, VcId(1));
}

TEST(Router, TwoVcClassesShareOnePortOneFlitPerCycle) {
  ScriptedEnv env;
  env.keep_class = true;  // class 0 stays 0, class 1 stays 1
  Router r(NodeId(0), small_config());
  for (Flits i = 0; i < 3; ++i)
    r.accept_flit(Direction::kWest, 0, make_flit(40, i, 3));
  for (Flits i = 0; i < 3; ++i)
    r.accept_flit(Direction::kWest, 1, make_flit(41, i, 3));
  for (Cycle t = 0; t < 6; ++t) r.tick(t, env);
  ASSERT_EQ(env.sent.size(), 6u);  // exactly one flit per cycle
  // Both VCs progress (flit-level interleaving across VCs is legal).
  bool saw40 = false;
  bool saw41 = false;
  for (std::size_t i = 0; i < 4; ++i) {
    saw40 |= env.sent[i].flit.packet == PacketId(40);
    saw41 |= env.sent[i].flit.packet == PacketId(41);
  }
  EXPECT_TRUE(saw40);
  EXPECT_TRUE(saw41);
}

TEST(Router, PortStatsAccounting) {
  ScriptedEnv env;
  Router r(NodeId(0), small_config());
  for (Flits i = 0; i < 3; ++i)
    r.accept_flit(Direction::kWest, 0, make_flit(60, i, 3));
  for (Cycle t = 0; t < 6; ++t) r.tick(t, env);
  const auto& east = r.port_stats(Direction::kEast);
  EXPECT_EQ(east.flits, 3u);
  EXPECT_EQ(east.grants, 1u);
  EXPECT_GE(east.busy, 3u);
  EXPECT_EQ(east.starved, east.busy - 3u);
  const auto& west = r.port_stats(Direction::kWest);
  EXPECT_EQ(west.flits, 0u);
  EXPECT_EQ(west.grants, 0u);
}

TEST(Router, StarvationCountsCreditStalls) {
  ScriptedEnv env;
  Router r(NodeId(0), small_config(4));
  for (Flits i = 0; i < 4; ++i)
    r.accept_flit(Direction::kWest, 0, make_flit(61, i, 6));
  for (Cycle t = 0; t < 10; ++t) r.tick(t, env);
  const auto& east = r.port_stats(Direction::kEast);
  EXPECT_EQ(east.flits, 4u);      // out of credits after 4
  EXPECT_GE(east.starved, 5u);    // bound but stuck for the rest
}

TEST(Router, PendingMasksTrackPipelineState) {
  ScriptedEnv env;
  Router r(NodeId(0), small_config());
  EXPECT_EQ(r.routable_inputs_mask(), 0u);
  EXPECT_EQ(r.requesting_outputs_mask(), 0u);
  EXPECT_EQ(r.bound_outputs_mask(), 0u);

  // A fresh head makes its input unit routable.
  r.accept_flit(Direction::kWest, 0, make_flit(70, 0, 2));
  const std::uint64_t west0 = std::uint64_t{1}
                              << r.unit(Direction::kWest, 0);
  const std::uint64_t east0 = std::uint64_t{1}
                              << r.unit(Direction::kEast, 0);
  EXPECT_EQ(r.routable_inputs_mask(), west0);

  // RC consumes the routable bit; VA consumes the request and binds the
  // east output, all within one tick.
  r.tick(0, env);
  EXPECT_EQ(r.routable_inputs_mask(), 0u);
  EXPECT_EQ(r.requesting_outputs_mask(), 0u);
  EXPECT_EQ(r.bound_outputs_mask(), east0);
  EXPECT_TRUE(r.output_bound(Direction::kEast, 0));

  // A body flit on a routed VC must NOT re-raise the routable bit.
  r.accept_flit(Direction::kWest, 0, make_flit(70, 1, 2));
  EXPECT_EQ(r.routable_inputs_mask(), 0u);

  // Tail leaves: binding dissolves, all masks drain to zero.
  for (Cycle t = 1; t < 4; ++t) r.tick(t, env);
  EXPECT_TRUE(r.drained());
  EXPECT_EQ(r.routable_inputs_mask(), 0u);
  EXPECT_EQ(r.requesting_outputs_mask(), 0u);
  EXPECT_EQ(r.bound_outputs_mask(), 0u);
}

TEST(Router, RequestingMaskStaysSetWhileBacklogged) {
  // Two packets from different inputs want the same output: after the
  // first wins VA, the loser's pending head must keep the output's
  // requesting bit up so the sparse pipeline revisits it on release.
  ScriptedEnv env;
  Router r(NodeId(0), small_config());
  r.accept_flit(Direction::kWest, 0, make_flit(71, 0, 1));
  r.accept_flit(Direction::kNorth, 0, make_flit(72, 0, 1));
  const std::uint64_t east0 = std::uint64_t{1}
                              << r.unit(Direction::kEast, 0);
  r.tick(0, env);
  // The winner's single-flit worm moved and released within the tick, so
  // the binding is gone — but the loser's pending head must keep the
  // output's requesting bit up.
  EXPECT_EQ(env.sent.size(), 1u);
  EXPECT_EQ(r.bound_outputs_mask(), 0u);
  EXPECT_EQ(r.requesting_outputs_mask(), east0);
  for (Cycle t = 1; t < 5; ++t) r.tick(t, env);
  EXPECT_TRUE(r.drained());
  EXPECT_EQ(r.requesting_outputs_mask(), 0u);
  EXPECT_EQ(env.sent.size(), 2u);
}

TEST(Router, SparseAndDensePipelinesAreFlitIdentical) {
  // Same stimulus, both pipelines, compared event-for-event.  The dense
  // pipeline reads only the per-unit flags, so a mask-maintenance bug in
  // the sparse walk shows up as a sequence divergence here.
  const auto drive = [](bool dense_pipeline) {
    ScriptedEnv env;
    env.keep_class = true;
    RouterConfig config = small_config(4);
    config.dense_pipeline = dense_pipeline;
    Router r(NodeId(0), config);
    std::uint64_t next_packet = 100;
    Cycle now = 0;
    // Phased stimulus: competing multi-flit worms on three inputs and two
    // VC classes, a worm bubble, credit exhaustion and late credits.
    for (Flits i = 0; i < 4; ++i)
      r.accept_flit(Direction::kWest, 0, make_flit(next_packet, i, 4));
    ++next_packet;
    for (Flits i = 0; i < 4; ++i)
      r.accept_flit(Direction::kNorth, 0, make_flit(next_packet, i, 4));
    ++next_packet;
    for (Flits i = 0; i < 2; ++i)
      r.accept_flit(Direction::kWest, 1, make_flit(next_packet, i, 2));
    ++next_packet;
    for (; now < 6; ++now) r.tick(now, env);
    r.accept_flit(Direction::kSouth, 0, make_flit(next_packet, 0, 3));
    for (; now < 9; ++now) r.tick(now, env);
    r.accept_flit(Direction::kSouth, 0, make_flit(next_packet, 1, 3));
    r.accept_flit(Direction::kSouth, 0, make_flit(next_packet, 2, 3));
    ++next_packet;
    // Late credits, twice: return exactly what the east output consumed
    // so far (the credit protocol forbids over-returning), drain a while,
    // then top it up again so the backlogged worms finish.
    for (std::uint32_t c = r.output_credits(Direction::kEast, 0); c < 4; ++c)
      r.accept_credit(Direction::kEast, 0);
    for (; now < 20; ++now) r.tick(now, env);
    for (std::uint32_t c = r.output_credits(Direction::kEast, 0); c < 4; ++c)
      r.accept_credit(Direction::kEast, 0);
    for (; now < 30; ++now) r.tick(now, env);
    EXPECT_TRUE(r.drained());
    return env;
  };
  const ScriptedEnv sparse = drive(false);
  const ScriptedEnv dense = drive(true);
  ASSERT_EQ(sparse.sent.size(), dense.sent.size());
  for (std::size_t i = 0; i < sparse.sent.size(); ++i) {
    EXPECT_EQ(sparse.sent[i].out, dense.sent[i].out) << i;
    EXPECT_EQ(sparse.sent[i].flit.packet, dense.sent[i].flit.packet) << i;
    EXPECT_EQ(sparse.sent[i].flit.index, dense.sent[i].flit.index) << i;
    EXPECT_EQ(sparse.sent[i].flit.vc_class, dense.sent[i].flit.vc_class) << i;
  }
  ASSERT_EQ(sparse.credits.size(), dense.credits.size());
  for (std::size_t i = 0; i < sparse.credits.size(); ++i) {
    EXPECT_EQ(sparse.credits[i].in, dense.credits[i].in) << i;
    EXPECT_EQ(sparse.credits[i].cls, dense.credits[i].cls) << i;
  }
}

TEST(Router, TailHandlingReRequestsNextHeadBeforeRelease) {
  // Back-to-back packets in one input VC: the continuation re-request
  // must keep the packets flowing with no idle cycle between them, and
  // the requesting/bound masks must stay live across the boundary.
  ScriptedEnv env;
  Router r(NodeId(0), small_config());
  for (Flits i = 0; i < 2; ++i)
    r.accept_flit(Direction::kWest, 0, make_flit(80, i, 2));
  for (Flits i = 0; i < 2; ++i)
    r.accept_flit(Direction::kWest, 0, make_flit(81, i, 2));
  Cycle sent3_at = 0;
  for (Cycle t = 0; t < 8; ++t) {
    r.tick(t, env);
    if (env.sent.size() == 3 && sent3_at == 0) sent3_at = t;
  }
  ASSERT_EQ(env.sent.size(), 4u);
  EXPECT_EQ(env.sent[1].flit.packet, PacketId(80));
  EXPECT_EQ(env.sent[2].flit.packet, PacketId(81));
  // Head of packet 81 moves on the cycle right after packet 80's tail:
  // tick 1 sends the tail (flit 2 of the run), tick 2 the next head.
  EXPECT_EQ(sent3_at, 2u);
}

TEST(RouterDeath, BufferOverflowCaught) {
  Router r(NodeId(0), small_config(4));
  for (Flits i = 0; i < 4; ++i)
    r.accept_flit(Direction::kWest, 0, make_flit(50, i, 8));
  EXPECT_DEATH(r.accept_flit(Direction::kWest, 0, make_flit(50, 4, 8)),
               "overflow");
}

TEST(RouterDeath, CreditOverflowCaught) {
  Router r(NodeId(0), small_config());
  EXPECT_DEATH(r.accept_credit(Direction::kEast, 0), "credit overflow");
}

}  // namespace
}  // namespace wormsched::wormhole
