// On/off (threshold) flow control at the router level, the infinite
// buffer model, and the config-validation death tests (buffer_depth 0,
// malformed watermarks, signals into a credit-only environment).
#include <gtest/gtest.h>

#include <functional>
#include <vector>

#include "wormhole/network.hpp"
#include "wormhole/router.hpp"

namespace wormsched::wormhole {
namespace {

struct SentSignal {
  Direction in;
  std::uint32_t cls;
  bool on;
};

/// Scripted env that records signals; credit-only envs use the base
/// class's aborting send_signal (see the death test).
class OnOffEnv final : public RouterEnv {
 public:
  void send_flit(NodeId, Direction out, const Flit& flit) override {
    sent.push_back(out);
    (void)flit;
  }
  void eject(NodeId, const Flit&, Cycle) override { ++ejected; }
  void send_credit(NodeId, Direction, std::uint32_t) override { ++credits; }
  void send_signal(NodeId, Direction in, std::uint32_t cls,
                   bool on) override {
    signals.push_back(SentSignal{in, cls, on});
  }
  RouteDecision route(NodeId, const Flit&, Direction,
                      std::uint32_t) override {
    return RouteDecision{Direction::kEast, 0, false};
  }

  std::vector<Direction> sent;
  std::vector<SentSignal> signals;
  int ejected = 0;
  int credits = 0;
};

Flit make_flit(std::uint64_t packet, Flits index, Flits length) {
  Flit f;
  f.packet = PacketId(packet);
  f.flow = FlowId(0);
  f.source = NodeId(1);
  f.dest = NodeId(0);
  f.index = index;
  const bool head = index == 0;
  const bool tail = index + 1 == length;
  f.type = head && tail ? FlitType::kHeadTail
           : head       ? FlitType::kHead
           : tail       ? FlitType::kTail
                        : FlitType::kBody;
  return f;
}

RouterConfig onoff_config() {
  RouterConfig config;
  config.num_vcs = 2;
  config.buffer_depth = 4;
  config.arbiter = "err-cycles";
  config.flow_control = FlowControl::kOnOff;
  config.on_high = 2;
  config.on_low = 1;
  return config;
}

TEST(OnOffRouter, RaisesOffAtHighWatermarkRestoresAtLow) {
  OnOffEnv env;
  Router r(NodeId(0), onoff_config());
  // Downstream parks our east output so the input backs up.
  r.accept_signal(Direction::kEast, 0, false);
  for (Flits i = 0; i < 3; ++i)
    r.accept_flit(Direction::kWest, 0, make_flit(1, i, 3));
  r.tick(0, env);
  EXPECT_TRUE(env.sent.empty());  // peer is off: nothing may leave
  ASSERT_EQ(env.signals.size(), 1u);  // occupancy 3 >= on_high 2
  EXPECT_EQ(env.signals[0].in, Direction::kWest);
  EXPECT_FALSE(env.signals[0].on);
  EXPECT_TRUE(r.off_sent(Direction::kWest, 0));

  r.tick(1, env);
  EXPECT_EQ(env.signals.size(), 1u);  // off is edge-triggered, not re-sent

  // Downstream restores us; the worm drains one flit per cycle and the
  // "on" fires when occupancy falls to on_low.
  r.accept_signal(Direction::kEast, 0, true);
  for (Cycle t = 2; t < 8 && !r.drained(); ++t) r.tick(t, env);
  EXPECT_FALSE(r.off_sent(Direction::kWest, 0));
  ASSERT_EQ(env.signals.size(), 2u);
  EXPECT_TRUE(env.signals[1].on);
  EXPECT_EQ(env.signals[1].in, Direction::kWest);
  EXPECT_EQ(env.sent.size(), 3u);
  // Threshold flow control never returns credits.
  EXPECT_EQ(env.credits, 0);
}

TEST(OnOffRouter, ParkedOutputHoldsEvenWithBufferSpace) {
  OnOffEnv env;
  Router r(NodeId(0), onoff_config());
  r.accept_signal(Direction::kEast, 0, false);
  r.accept_flit(Direction::kWest, 0, make_flit(2, 0, 1));
  for (Cycle t = 0; t < 4; ++t) r.tick(t, env);
  EXPECT_TRUE(env.sent.empty());
  r.accept_signal(Direction::kEast, 0, true);
  r.tick(4, env);
  ASSERT_EQ(env.sent.size(), 1u);
  EXPECT_EQ(env.sent[0], Direction::kEast);
  // A single buffered flit never crossed on_high: no off was raised.
  EXPECT_TRUE(env.signals.empty());
}

TEST(OnOffRouter, InfiniteBuffersAcceptBeyondDepthWithoutBackpressure) {
  OnOffEnv env;
  RouterConfig config = onoff_config();
  config.buffer_model = BufferModel::kInfinite;
  config.flow_control = FlowControl::kCredit;  // irrelevant when infinite
  config.on_high = config.on_low = 0;
  Router r(NodeId(0), config);
  // 10 flits into a depth-4 buffer: legal, the model is unbounded.
  for (Flits i = 0; i < 10; ++i)
    r.accept_flit(Direction::kWest, 0, make_flit(3, i, 10));
  for (Cycle t = 0; t < 12; ++t) r.tick(t, env);
  EXPECT_EQ(env.sent.size(), 10u);
  // No backpressure traffic of either kind.
  EXPECT_EQ(env.credits, 0);
  EXPECT_TRUE(env.signals.empty());
}

TEST(OnOffNetwork, AutoWatermarksResolveFromLinkLatency) {
  NetworkConfig config;
  config.topo = TopologySpec::mesh(2, 2);
  config.router.flow_control = FlowControl::kOnOff;
  config.router.buffer_depth = 8;
  // link_latency 1: headroom 3*1 - 2 = 1, so high = 7, low = 4.
  Network net(config);
  EXPECT_EQ(net.config().router.on_high, 7u);
  EXPECT_EQ(net.config().router.on_low, 4u);
}

using FlowControlDeathTest = ::testing::Test;

TEST(FlowControlDeathTest, BufferDepthZeroAbortsRouter) {
  RouterConfig config = onoff_config();
  config.buffer_depth = 0;
  EXPECT_DEATH(Router(NodeId(0), config),
               "buffer_depth 0 deadlocks every flow-control scheme");
}

TEST(FlowControlDeathTest, BufferDepthZeroAbortsNetwork) {
  NetworkConfig config;
  config.router.buffer_depth = 0;
  EXPECT_DEATH(Network{config},
               "buffer_depth 0 deadlocks every flow-control scheme");
}

TEST(FlowControlDeathTest, MalformedWatermarksAbort) {
  RouterConfig config = onoff_config();
  config.on_low = 3;
  config.on_high = 2;  // low > high
  EXPECT_DEATH(Router(NodeId(0), config),
               "1 <= on_low <= on_high <= buffer_depth");
  config.on_low = 1;
  config.on_high = 5;  // high > depth (4)
  EXPECT_DEATH(Router(NodeId(0), config),
               "1 <= on_low <= on_high <= buffer_depth");
}

TEST(FlowControlDeathTest, CreditOnlyEnvRejectsSignals) {
  // An env that never overrides send_signal (the credit-era interface)
  // must abort loudly if an on/off router tries to signal through it.
  class CreditOnlyEnv final : public RouterEnv {
   public:
    void send_flit(NodeId, Direction, const Flit&) override {}
    void eject(NodeId, const Flit&, Cycle) override {}
    void send_credit(NodeId, Direction, std::uint32_t) override {}
    RouteDecision route(NodeId, const Flit&, Direction,
                        std::uint32_t) override {
      return RouteDecision{Direction::kEast, 0, false};
    }
  };
  CreditOnlyEnv env;
  Router r(NodeId(0), onoff_config());
  r.accept_signal(Direction::kEast, 0, false);
  for (Flits i = 0; i < 3; ++i)
    r.accept_flit(Direction::kWest, 0, make_flit(4, i, 3));
  EXPECT_DEATH(r.tick(0, env), "router env does not carry on/off signals");
}

TEST(FlowControlDeathTest, SignalsOutsideOnOffModeAbort) {
  RouterConfig config = onoff_config();
  config.flow_control = FlowControl::kCredit;
  Router r(NodeId(0), config);
  EXPECT_DEATH(r.accept_signal(Direction::kEast, 0, false),
               "on/off signal outside on/off flow control");
}

}  // namespace
}  // namespace wormsched::wormhole
