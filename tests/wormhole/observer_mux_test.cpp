// Tests for the composable observer layer: ObserverMux attachment rules
// and dispatch order, the wants_delta() gating of CycleDelta collection,
// and the delta's event algebra — per-cycle movements must reconcile
// exactly with the fabric's own counters, and the touched list must name
// every router whose auditable state changed.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "sim/engine.hpp"
#include "wormhole/network.hpp"
#include "wormhole/observer.hpp"

namespace wormsched::wormhole {
namespace {

/// Minimal observer: counts calls, optionally wants the delta, and can
/// record per-cycle event totals for the reconciliation checks.
class Probe final : public NetworkObserver {
 public:
  explicit Probe(bool wants = false) : wants_(wants) {}

  void on_cycle_end(Cycle now, const Network& network,
                    const CycleDelta& delta) override {
    ++calls_;
    last_cycle_ = now;
    flits_to_wire_ += delta.flits_to_wire.size();
    flits_from_wire_ += delta.flits_from_wire.size();
    injections_ += delta.injections.size();
    ejections_ += delta.ejections.size();
    enqueued_ += delta.enqueued_flits;
    // Touched-set contract: every event names a router in the touched
    // list (dedup happens network-side), and on delta-collecting runs a
    // liveness flip without any event is still listed.
    for (const auto& e : delta.flits_from_wire)
      EXPECT_TRUE(touched_contains(delta, e.node));
    for (const std::uint32_t n : delta.injections)
      EXPECT_TRUE(touched_contains(delta, n));
    if (order_log_ != nullptr) order_log_->push_back(this);
    (void)network;
  }
  [[nodiscard]] bool wants_delta() const override { return wants_; }

  void log_order_to(std::vector<const Probe*>* log) { order_log_ = log; }

  [[nodiscard]] static bool touched_contains(const CycleDelta& delta,
                                             std::uint32_t node) {
    for (const std::uint32_t n : delta.touched)
      if (n == node) return true;
    return false;
  }

  std::uint64_t calls_ = 0;
  Cycle last_cycle_ = 0;
  std::uint64_t flits_to_wire_ = 0;
  std::uint64_t flits_from_wire_ = 0;
  std::uint64_t injections_ = 0;
  std::uint64_t ejections_ = 0;
  Flits enqueued_ = 0;

 private:
  bool wants_ = false;
  std::vector<const Probe*>* order_log_ = nullptr;
};

PacketDescriptor packet(std::uint64_t id, std::uint32_t src, std::uint32_t dst,
                        Flits length) {
  return PacketDescriptor{.id = PacketId(id), .flow = FlowId(src),
                          .source = NodeId(src), .dest = NodeId(dst),
                          .length = length};
}

TEST(ObserverMux, MultipleObserversAllNotifiedInAttachmentOrder) {
  Network net(NetworkConfig{});
  Probe a, b, c;
  std::vector<const Probe*> order;
  a.log_order_to(&order);
  b.log_order_to(&order);
  c.log_order_to(&order);
  net.attach_observer(&a);
  net.attach_observer(&b);
  net.attach_observer(&c);
  EXPECT_EQ(net.observers().size(), 3u);

  net.tick(0);
  EXPECT_EQ(a.calls_, 1u);
  EXPECT_EQ(b.calls_, 1u);
  EXPECT_EQ(c.calls_, 1u);
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], &a);
  EXPECT_EQ(order[1], &b);
  EXPECT_EQ(order[2], &c);
}

TEST(ObserverMux, DetachIsExactAndOrderPreserving) {
  Network net(NetworkConfig{});
  Probe a, b;
  net.attach_observer(&a);
  net.attach_observer(&b);
  net.detach_observer(&a);
  EXPECT_EQ(net.observers().size(), 1u);
  net.tick(0);
  EXPECT_EQ(a.calls_, 0u);
  EXPECT_EQ(b.calls_, 1u);
  // Detaching something never attached is a harmless no-op.
  net.detach_observer(&a);
  EXPECT_EQ(net.observers().size(), 1u);
}

TEST(ObserverMux, DeltaCollectionFollowsWantsDelta) {
  Network net(NetworkConfig{});
  EXPECT_FALSE(net.collecting_delta());

  Probe passive(/*wants=*/false);
  net.attach_observer(&passive);
  EXPECT_FALSE(net.collecting_delta()) << "passive observers keep it off";

  Probe auditor_like(/*wants=*/true);
  net.attach_observer(&auditor_like);
  EXPECT_TRUE(net.collecting_delta()) << "any wanting observer turns it on";

  net.detach_observer(&auditor_like);
  EXPECT_FALSE(net.collecting_delta()) << "off again once none wants it";
  net.detach_observer(&passive);
  EXPECT_TRUE(net.observers().empty());
}

TEST(ObserverMux, PassiveObserverSeesPopulatedDeltaWhenAnotherWantsIt) {
  Network net(NetworkConfig{});
  Probe passive(/*wants=*/false);
  Probe wanting(/*wants=*/true);
  net.attach_observer(&passive);
  net.attach_observer(&wanting);

  net.inject(0, packet(0, 0, 15, 4));
  sim::Engine engine;
  engine.add_component(net);
  engine.run_until_idle(10'000);

  // Both observers were handed the same delta object.
  EXPECT_EQ(passive.injections_, wanting.injections_);
  EXPECT_GT(passive.injections_, 0u);
  EXPECT_EQ(passive.ejections_, wanting.ejections_);
}

TEST(ObserverMux, DeltaEventsReconcileWithFabricCounters) {
  Network net(NetworkConfig{});
  Probe probe(/*wants=*/true);
  net.attach_observer(&probe);

  net.inject(0, packet(0, 0, 15, 4));
  net.inject(0, packet(1, 5, 10, 3));
  sim::Engine engine;
  engine.add_component(net);
  const Cycle end = engine.run_until_idle(10'000);
  EXPECT_GT(end, 0u);

  // Event totals over the whole run must equal the fabric's counters:
  // every queued flit was announced, every NIC hand-off and ejection has
  // one event, and the two wire directions balance on a drained fabric.
  EXPECT_EQ(probe.enqueued_, net.injected_flits());
  EXPECT_EQ(probe.injections_, net.injected_flits());
  EXPECT_EQ(probe.ejections_, net.delivered_flits());
  EXPECT_EQ(probe.flits_to_wire_, probe.flits_from_wire_);
}

TEST(ObserverMux, DenseAndActiveSetProduceSameEventTotals) {
  auto run = [](bool dense_tick) {
    NetworkConfig config;
    config.dense_tick = dense_tick;
    Network net(config);
    Probe probe(/*wants=*/true);
    net.attach_observer(&probe);
    net.inject(0, packet(0, 0, 15, 4));
    net.inject(2, packet(1, 12, 3, 5));
    sim::Engine engine;
    engine.add_component(net);
    engine.run_until_idle(10'000);
    return std::tuple{probe.flits_to_wire_, probe.flits_from_wire_,
                      probe.injections_, probe.ejections_};
  };
  EXPECT_EQ(run(false), run(true));
}

}  // namespace
}  // namespace wormsched::wormhole
