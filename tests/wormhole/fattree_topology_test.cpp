// Fat-tree topology tests: wiring-table symmetry, endpoint geometry,
// up/down routing (deterministic and adaptive candidates), and the
// strict `--topo` grammar parser (accept/reject matrix including the
// trailing-garbage and zero-dimension regressions).
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "wormhole/topology.hpp"

namespace wormsched::wormhole {
namespace {

constexpr Direction kPorts[] = {Direction::kEast, Direction::kWest,
                                Direction::kNorth, Direction::kSouth};

/// Level of a fat-tree switch: 0 = edge, 1 = aggregation, 2 = core.
std::uint32_t level_of(const TopologySpec& spec, NodeId n) {
  const std::uint32_t num_edges = spec.fat_tree_k() * spec.fat_tree_k() / 2;
  if (n.value() < num_edges) return 0;
  if (n.value() < 2 * num_edges) return 1;
  return 2;
}

TEST(FatTreeTopology, GeometryK4) {
  Topology ft(TopologySpec::fat_tree(4));
  EXPECT_EQ(ft.num_nodes(), 20u);      // 8 edge + 8 agg + 4 core
  EXPECT_EQ(ft.num_endpoints(), 8u);   // edge switches only
  for (std::uint32_t i = 0; i < 8; ++i) {
    EXPECT_EQ(ft.endpoint(i), NodeId(i));
    EXPECT_TRUE(ft.is_endpoint(NodeId(i)));
  }
  for (std::uint32_t n = 8; n < 20; ++n)
    EXPECT_FALSE(ft.is_endpoint(NodeId(n)));
}

TEST(FatTreeTopology, GeometryK2) {
  Topology ft(TopologySpec::fat_tree(2));
  EXPECT_EQ(ft.num_nodes(), 5u);  // 2 edge + 2 agg + 1 core
  EXPECT_EQ(ft.num_endpoints(), 2u);
}

TEST(FatTreeTopology, WiringIsSymmetric) {
  // Every wired link must agree end to end: following (node, port) and
  // then the far-end port returned by peer_port lands back where we
  // started.  This is the property the credit/signal return path rides.
  for (const std::uint32_t k : {2u, 4u}) {
    Topology ft(TopologySpec::fat_tree(k));
    std::uint32_t wired = 0;
    for (std::uint32_t n = 0; n < ft.num_nodes(); ++n) {
      for (const Direction d : kPorts) {
        const NodeId nbr = ft.neighbor(NodeId(n), d);
        if (!nbr.is_valid()) continue;
        ++wired;
        const Direction far = ft.peer_port(NodeId(n), d);
        EXPECT_EQ(ft.neighbor(nbr, far), NodeId(n)) << "k=" << k << " n=" << n;
        EXPECT_EQ(ft.peer_port(nbr, far), d) << "k=" << k << " n=" << n;
        // Links only join adjacent levels.
        EXPECT_EQ(1u, level_of(ft.spec(), nbr) > level_of(ft.spec(), NodeId(n))
                          ? level_of(ft.spec(), nbr) -
                                level_of(ft.spec(), NodeId(n))
                          : level_of(ft.spec(), NodeId(n)) -
                                level_of(ft.spec(), nbr));
      }
    }
    // k^3/4 edge-agg links + k^3/4 agg-core links, both directions seen.
    EXPECT_EQ(wired, 2 * (k * k * k / 4 + k * k * k / 4));
  }
}

TEST(FatTreeTopology, MeshAndTorusPeerPortIsOppositeCompass) {
  Topology mesh(TopologySpec::mesh(3, 3));
  EXPECT_EQ(mesh.peer_port(NodeId(4), Direction::kEast), Direction::kWest);
  EXPECT_EQ(mesh.peer_port(NodeId(4), Direction::kNorth), Direction::kSouth);
  Topology torus(TopologySpec::torus(3, 3));
  // Wrap links too: the far end of an eastward wrap is still a west port.
  EXPECT_EQ(torus.peer_port(NodeId(2), Direction::kEast), Direction::kWest);
}

TEST(FatTreeTopology, UpDownRouteReachesEveryPairWithoutTurningBackUp) {
  // Walk the deterministic route for every endpoint pair: it must arrive
  // within 4 hops (edge-agg-core-agg-edge), stay on VC class 0, and never
  // climb again after the first descent (the deadlock-freedom invariant).
  Topology ft(TopologySpec::fat_tree(4));
  for (std::uint32_t s = 0; s < ft.num_endpoints(); ++s) {
    for (std::uint32_t t = 0; t < ft.num_endpoints(); ++t) {
      if (s == t) continue;
      NodeId cur = ft.endpoint(s);
      const NodeId dest = ft.endpoint(t);
      Direction from = Direction::kLocal;
      std::uint32_t hops = 0;
      bool descended = false;
      while (cur != dest) {
        const RouteDecision d = ft.route(cur, dest, from, 0);
        ASSERT_NE(d.out, Direction::kLocal);
        EXPECT_EQ(d.out_class, 0u);
        const NodeId next = ft.neighbor(cur, d.out);
        ASSERT_TRUE(next.is_valid());
        const bool down = level_of(ft.spec(), next) < level_of(ft.spec(), cur);
        if (down) descended = true;
        EXPECT_FALSE(descended && !down)
            << "up-turn after descent " << s << "->" << t;
        from = ft.peer_port(cur, d.out);
        cur = next;
        ASSERT_LE(++hops, 4u) << s << "->" << t;
      }
      // Intra-pod pairs stay under their shared aggregation layer.
      const std::uint32_t half = ft.spec().fat_tree_k() / 2;
      if (s / half == t / half) {
        EXPECT_EQ(hops, 2u);
      }
      EXPECT_EQ(ft.hops(ft.endpoint(s), dest), hops);
    }
  }
}

TEST(FatTreeTopology, AdaptiveCandidatesWhileClimbing) {
  Topology ft(TopologySpec::fat_tree(4));
  // Edge switch, inter-pod destination: both uplinks are legal.
  RouteCandidates out;
  ft.updown_candidates(NodeId(0), NodeId(7), Direction::kLocal, 0, out);
  ASSERT_EQ(out.size(), 2u);
  std::set<Direction> ports;
  for (const RouteDecision& d : out) {
    EXPECT_EQ(d.out_class, 0u);
    ports.insert(d.out);
  }
  EXPECT_EQ(ports, (std::set<Direction>{Direction::kEast, Direction::kWest}));

  // Aggregation switch in the destination pod: deterministic descent.
  out.clear();
  const NodeId agg_in_dest_pod(8 + 3 * 2);  // pod 3, index 0
  ft.updown_candidates(agg_in_dest_pod, NodeId(7), Direction::kEast, 0, out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].out, ft.route(agg_in_dest_pod, NodeId(7),
                                 Direction::kEast, 0).out);

  // At the destination: local alone.
  out.clear();
  ft.updown_candidates(NodeId(7), NodeId(7), Direction::kEast, 0, out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].out, Direction::kLocal);
}

TEST(TopologyParse, AcceptsWellFormedSpecs) {
  std::string error;
  const auto mesh = parse_topology_spec("mesh4x4", &error);
  ASSERT_TRUE(mesh.has_value()) << error;
  EXPECT_EQ(mesh->kind, TopologySpec::Kind::kMesh);
  EXPECT_EQ(mesh->width, 4u);
  EXPECT_EQ(mesh->height, 4u);

  const auto torus = parse_topology_spec("torus3x2", &error);
  ASSERT_TRUE(torus.has_value()) << error;
  EXPECT_EQ(torus->kind, TopologySpec::Kind::kTorus);

  for (const char* text : {"fattree:2", "fattree:4"}) {
    const auto ft = parse_topology_spec(text, &error);
    ASSERT_TRUE(ft.has_value()) << text << ": " << error;
    EXPECT_EQ(ft->kind, TopologySpec::Kind::kFatTree);
  }
}

TEST(TopologyParse, RejectsMalformedSpecs) {
  // The regression matrix for the old std::stoul parser, which accepted
  // "mesh8xjunk" (stoul stops at the first non-digit) and threw an
  // uncaught std::invalid_argument on "meshx8".
  const struct {
    const char* text;
    const char* why;  // substring the diagnostic must contain
  } kRejects[] = {
      {"mesh8xjunk", "malformed"},
      {"meshx8", "malformed"},
      {"mesh8x", "malformed"},
      {"mesh+4x4", "malformed"},
      {"mesh4x4 ", "malformed"},
      {"mesh0x4", "non-zero"},
      {"mesh4x0", "non-zero"},
      {"mesh44", "<W>x<H>"},
      {"torus1x4", "at least 2"},
      {"fattree:3", "must be 2 or 4"},
      {"fattree:8", "must be 2 or 4"},
      {"fattree:4x", "decimal K"},
      {"fattree:", "decimal K"},
      {"ring8", "expected mesh"},
      {"", "expected mesh"},
  };
  for (const auto& reject : kRejects) {
    std::string error;
    EXPECT_FALSE(parse_topology_spec(reject.text, &error).has_value())
        << reject.text;
    EXPECT_NE(error.find(reject.why), std::string::npos)
        << "'" << reject.text << "' produced: " << error;
  }
}

}  // namespace
}  // namespace wormsched::wormhole
