#include "wormhole/switch.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.hpp"

namespace wormsched::wormhole {
namespace {

void run(WormholeSwitch& sw, Cycle from, Cycle to) {
  for (Cycle t = from; t < to; ++t) sw.tick(t);
}

TEST(WormholeSwitch, DeliversSinglePacket) {
  SwitchConfig config;
  config.num_inputs = 2;
  WormholeSwitch sw(config);
  sw.inject(0, FlowId(0), 5);
  run(sw, 0, 10);
  EXPECT_TRUE(sw.idle());
  EXPECT_EQ(sw.forwarded_flits(FlowId(0)), 5);
  EXPECT_EQ(sw.packets_delivered(FlowId(0)), 1u);
  EXPECT_EQ(sw.occupancy_cycles(FlowId(0)), 5u);
}

TEST(WormholeSwitch, PacketsNeverInterleave) {
  // Wormhole rule: once granted, a packet owns the output until its tail.
  SwitchConfig config;
  config.num_inputs = 2;
  config.arbiter = "rr";
  WormholeSwitch sw(config);
  sw.inject(0, FlowId(0), 4);
  sw.inject(0, FlowId(1), 4);
  // Track ownership per cycle through occupancy deltas.
  std::vector<std::uint64_t> occ_before(2);
  std::vector<std::uint32_t> owner_sequence;
  for (Cycle t = 0; t < 8; ++t) {
    occ_before[0] = sw.occupancy_cycles(FlowId(0));
    occ_before[1] = sw.occupancy_cycles(FlowId(1));
    sw.tick(t);
    for (std::uint32_t f = 0; f < 2; ++f)
      if (sw.occupancy_cycles(FlowId(f)) != occ_before[f])
        owner_sequence.push_back(f);
  }
  ASSERT_EQ(owner_sequence.size(), 8u);
  for (std::size_t i = 1; i < 4; ++i)
    EXPECT_EQ(owner_sequence[i], owner_sequence[0]);
  for (std::size_t i = 5; i < 8; ++i)
    EXPECT_EQ(owner_sequence[i], owner_sequence[4]);
  EXPECT_NE(owner_sequence[0], owner_sequence[4]);
}

TEST(WormholeSwitch, StallsExtendOccupancyBeyondLength) {
  SwitchConfig config;
  config.num_inputs = 1;
  config.stall_period = 4;  // every 4 cycles, 2 stalled
  config.stall_burst = 2;
  WormholeSwitch sw(config);
  sw.inject(0, FlowId(0), 6);
  run(sw, 0, 40);
  EXPECT_TRUE(sw.idle());
  EXPECT_EQ(sw.forwarded_flits(FlowId(0)), 6);
  EXPECT_GT(sw.occupancy_cycles(FlowId(0)), 6u);  // the paper's point
  EXPECT_GT(sw.stalled_cycles(), 0u);
}

TEST(WormholeSwitch, ErrCycleModeEqualizesOccupancyUnderRandomStalls) {
  // Random downstream stalls make per-packet occupancy unpredictable; the
  // ERR-cycles arbiter must still balance *occupancy time* across two
  // saturated inputs even when their packet lengths differ.
  SwitchConfig config;
  config.num_inputs = 2;
  config.arbiter = "err-cycles";
  config.stall_probability = 0.3;
  config.seed = 17;
  WormholeSwitch sw(config);
  for (int k = 0; k < 200; ++k) sw.inject(0, FlowId(0), 12);
  for (int k = 0; k < 800; ++k) sw.inject(0, FlowId(1), 3);
  run(sw, 0, 3000);
  const double occ0 = static_cast<double>(sw.occupancy_cycles(FlowId(0)));
  const double occ1 = static_cast<double>(sw.occupancy_cycles(FlowId(1)));
  EXPECT_NEAR(occ0 / occ1, 1.0, 0.1);
}

TEST(WormholeSwitch, FairAcrossUnequalPacketLengths) {
  SwitchConfig config;
  config.num_inputs = 2;
  config.arbiter = "err-cycles";
  WormholeSwitch sw(config);
  for (int k = 0; k < 100; ++k) sw.inject(0, FlowId(0), 16);
  for (int k = 0; k < 800; ++k) sw.inject(0, FlowId(1), 2);
  run(sw, 0, 1600);
  const auto f0 = sw.forwarded_flits(FlowId(0));
  const auto f1 = sw.forwarded_flits(FlowId(1));
  EXPECT_NEAR(static_cast<double>(f0), static_cast<double>(f1), 3.0 * 16);
}

TEST(WormholeSwitch, PerInputStallTargetsOnlyTheOwner) {
  SwitchConfig config;
  config.num_inputs = 2;
  config.per_input_stall = {1.0, 0.0};  // input 0's path always blocked
  WormholeSwitch sw(config);
  sw.inject(0, FlowId(1), 5);
  run(sw, 0, 10);
  // Input 1 is unaffected by input 0's congested path.
  EXPECT_EQ(sw.forwarded_flits(FlowId(1)), 5);
  // Input 0's packet, once granted, never advances (worst case).
  sw.inject(10, FlowId(0), 3);
  run(sw, 10, 40);
  EXPECT_EQ(sw.forwarded_flits(FlowId(0)), 0);
  EXPECT_GT(sw.occupancy_cycles(FlowId(0)), 20u);  // holds the output
}

TEST(WormholeSwitchDeath, MismatchedPerInputStallRejected) {
  SwitchConfig config;
  config.num_inputs = 3;
  config.per_input_stall = {0.5, 0.5};
  EXPECT_DEATH(WormholeSwitch sw(config), "one entry per input");
}

TEST(WormholeSwitch, DelayRecorded) {
  SwitchConfig config;
  config.num_inputs = 1;
  WormholeSwitch sw(config);
  sw.inject(0, FlowId(0), 3);
  run(sw, 0, 10);
  EXPECT_EQ(sw.delay(FlowId(0)).count(), 1u);
  // Injected at 0, tail forwarded at cycle 2.
  EXPECT_DOUBLE_EQ(sw.delay(FlowId(0)).mean(), 2.0);
}

TEST(WormholeSwitch, Theorem3HoldsInTheOccupancyDomain) {
  // The paper's wormhole substitution: with occupancy charging, the
  // relative fairness bound FM < 3m holds with m measured in *cycles of
  // output occupancy* of the largest packet — even though per-packet
  // occupancy is randomized by downstream stalls and unknowable a priori.
  SwitchConfig config;
  config.num_inputs = 3;
  config.arbiter = "err-cycles";
  config.stall_probability = 0.25;
  config.seed = 29;
  WormholeSwitch sw(config);
  Rng rng(31);
  for (int k = 0; k < 400; ++k)
    for (std::uint32_t f = 0; f < 3; ++f)
      sw.inject(0, FlowId(f), rng.uniform_int(1, 12));
  run(sw, 0, 4000);  // all inputs stay saturated throughout
  const auto m = sw.max_packet_occupancy();
  ASSERT_GT(m, 0u);
  std::uint64_t occ_min = ~0ull;
  std::uint64_t occ_max = 0;
  for (std::uint32_t f = 0; f < 3; ++f) {
    occ_min = std::min(occ_min, sw.occupancy_cycles(FlowId(f)));
    occ_max = std::max(occ_max, sw.occupancy_cycles(FlowId(f)));
  }
  EXPECT_LT(occ_max - occ_min, 3 * m);
}

TEST(WormholeSwitch, QueueLengthTracksBacklog) {
  SwitchConfig config;
  config.num_inputs = 2;
  WormholeSwitch sw(config);
  sw.inject(0, FlowId(0), 4);
  sw.inject(0, FlowId(0), 4);
  EXPECT_EQ(sw.queue_length(FlowId(0)), 2u);
  run(sw, 0, 4);
  EXPECT_EQ(sw.queue_length(FlowId(0)), 1u);
}

}  // namespace
}  // namespace wormsched::wormhole
