// On/off vs credit flow-control differential fuzz.
//
// The two schemes gate the same fabric differently, so per-cycle
// behaviour legitimately diverges — but three properties must hold for
// every (seed, fault schedule) point:
//
//  * conservation — each scheme, audited every cycle, finishes with zero
//    violations and delivers every generated packet (the fabric drains);
//  * scheme-independent outcomes — the delivered packet set (ids,
//    sources, destinations, lengths) is identical across schemes, because
//    flow control decides *when* flits move, never *which* packets exist
//    or where they go;
//  * sharding transparency — within one scheme, a --threads 2 sharded run
//    is bit-identical to the serial run, delivery cycles included.
//
// The 200-seed block rotates the five fault presets across seeds (the
// fuzz idiom of fault_differential_test.cpp) on mesh and fat tree.  A
// second suite pits deterministic against adaptive up/down routing on the
// fat tree under incast: both must drain deadlock-free with the same
// packet set, and the harness-level checkpoint differential pins
// restore-equivalence for the on/off + fat-tree pair.
#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <tuple>
#include <vector>

#include "harness/checkpoint.hpp"
#include "harness/network_sweep.hpp"
#include "sim/engine.hpp"
#include "validate/faults.hpp"
#include "validate/network_auditor.hpp"
#include "validate/violation.hpp"
#include "wormhole/network.hpp"
#include "wormhole/patterns.hpp"

namespace wormsched::wormhole {
namespace {

using validate::AuditLog;
using validate::FaultSpec;

struct SchemeRun {
  std::vector<DeliveredPacket> delivered;  // in delivery order
  std::uint64_t delivered_flits = 0;
  std::uint64_t generated = 0;
  Cycle end_cycle = 0;
  std::uint64_t audit_violations = 0;
};

struct SchemePoint {
  FlowControl flow_control = FlowControl::kCredit;
  TopologySpec topo = TopologySpec::mesh(3, 3);
  NetworkConfig::Routing routing = NetworkConfig::Routing::kDor;
  bool sharded = false;
  PatternSpec pattern;
  double rate = 0.05;
};

SchemeRun run_point(const SchemePoint& point, std::uint64_t seed,
                    FaultSpec spec, Cycle inject_until = 400) {
  NetworkConfig config;
  config.topo = point.topo;
  config.routing = point.routing;
  config.router.flow_control = point.flow_control;
  if (point.sharded) {
    config.shards = 4;
    config.threads = 2;
  }
  std::optional<validate::ScheduledFaults> faults;
  if (spec.enabled) {
    spec.seed += seed;
    spec.num_nodes = point.topo.num_nodes();
    faults.emplace(spec);
    config.faults = &*faults;
  }
  Network net(config);
  AuditLog log(AuditLog::Mode::kCount);
  validate::NetworkAuditor auditor(validate::NetworkAuditorConfig{}, log);
  net.attach_observer(&auditor);

  NetworkTrafficSource::Config traffic;
  traffic.packets_per_node_per_cycle = point.rate;
  traffic.pattern = point.pattern;
  traffic.inject_until = inject_until;
  traffic.seed = seed;
  traffic.faults = config.faults;
  NetworkTrafficSource source(net, traffic);

  sim::Engine engine;
  engine.add_component(source);
  engine.add_component(net);
  engine.run_until(traffic.inject_until);
  SchemeRun run;
  run.end_cycle = engine.run_until_idle(200'000);
  run.delivered = net.delivered();
  run.delivered_flits = net.delivered_flits();
  run.generated = source.generated();
  run.audit_violations = log.count();
  return run;
}

/// Scheme-independent identity of one delivered packet.
using PacketKey =
    std::tuple<std::uint64_t, std::uint32_t, std::uint32_t, Flits, Cycle>;

std::vector<PacketKey> packet_set(const SchemeRun& run) {
  std::vector<PacketKey> keys;
  keys.reserve(run.delivered.size());
  for (const DeliveredPacket& p : run.delivered)
    keys.emplace_back(p.id.value(), p.source.value(), p.dest.value(),
                      p.length, p.created);
  std::sort(keys.begin(), keys.end());
  return keys;
}

void expect_drained_clean(const SchemeRun& run, const char* label) {
  EXPECT_EQ(run.audit_violations, 0u) << label;
  EXPECT_GT(run.generated, 0u) << label;
  // Drained: run_until_idle found the fabric empty, not the cycle cap.
  EXPECT_LT(run.end_cycle, 200'000u) << label;
  EXPECT_EQ(run.delivered.size(), run.generated) << label;
}

void expect_bit_identical(const SchemeRun& a, const SchemeRun& b,
                          const char* label) {
  EXPECT_EQ(a.generated, b.generated) << label;
  EXPECT_EQ(a.end_cycle, b.end_cycle) << label;
  EXPECT_EQ(a.delivered_flits, b.delivered_flits) << label;
  ASSERT_EQ(a.delivered.size(), b.delivered.size()) << label;
  for (std::size_t i = 0; i < a.delivered.size(); ++i) {
    ASSERT_EQ(a.delivered[i].id.value(), b.delivered[i].id.value())
        << label << " packet #" << i;
    ASSERT_EQ(a.delivered[i].delivered, b.delivered[i].delivered)
        << label << " packet #" << i;
  }
}

FaultSpec preset_for(std::uint64_t seed) {
  FaultSpec spec;
  switch (seed % 5) {
    case 0:  // fault-free
      break;
    case 1:
      spec.enabled = true;
      spec.link_stall_rate = 0.4;
      spec.link_stall_cycles = 6;
      break;
    case 2:
      spec.enabled = true;
      spec.credit_stall_rate = 0.4;
      spec.credit_stall_cycles = 20;
      break;
    case 3:
      spec.enabled = true;
      spec.churn_rate = 0.25;
      spec.burst_rate = 0.2;
      break;
    default:
      spec = FaultSpec::chaos(0);
      break;
  }
  return spec;
}

void expect_schemes_agree(SchemePoint point, std::uint64_t seed) {
  const FaultSpec spec = preset_for(seed);

  point.flow_control = FlowControl::kCredit;
  point.sharded = false;
  const SchemeRun credit = run_point(point, seed, spec);
  expect_drained_clean(credit, "credit serial");
  point.sharded = true;
  expect_bit_identical(credit, run_point(point, seed, spec),
                       "credit threads=2");

  point.flow_control = FlowControl::kOnOff;
  point.sharded = false;
  const SchemeRun onoff = run_point(point, seed, spec);
  expect_drained_clean(onoff, "onoff serial");
  point.sharded = true;
  expect_bit_identical(onoff, run_point(point, seed, spec),
                       "onoff threads=2");

  // Both drained: the schemes delivered the same packets, whatever the
  // interleavings in between.
  EXPECT_EQ(credit.generated, onoff.generated);
  EXPECT_EQ(credit.delivered_flits, onoff.delivered_flits);
  EXPECT_EQ(packet_set(credit), packet_set(onoff));
}

/// 200-seed fuzz: seeds [0, 150) on the mesh, [150, 200) on the fat tree
/// (4 audited runs per seed keeps the block's runtime proportionate).
class OnOffDifferentialFuzz : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(OnOffDifferentialFuzz, CreditAndOnOffConserveTheSamePackets) {
  const std::uint64_t seed = GetParam();
  SchemePoint point;
  if (seed < 150) {
    point.topo = TopologySpec::mesh(3, 3);
  } else {
    point.topo = TopologySpec::fat_tree(4);
    point.rate = 0.04;
  }
  expect_schemes_agree(point, seed);
}

INSTANTIATE_TEST_SUITE_P(Seeds, OnOffDifferentialFuzz,
                         ::testing::Range<std::uint64_t>(0, 200));

/// Fat-tree incast: every endpoint hammers endpoint 0.  Deterministic
/// and adaptive up/down routing must both drain deadlock-free and agree
/// on the delivered packet set (routing picks paths, not packets).
class FatTreeIncastRouting : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(FatTreeIncastRouting, AdaptiveAndDeterministicAgreeUnderIncast) {
  const std::uint64_t seed = GetParam();
  SchemePoint point;
  point.topo = TopologySpec::fat_tree(4);
  point.flow_control = FlowControl::kOnOff;
  point.pattern.kind = PatternSpec::Kind::kHotspot;
  point.pattern.hotspot_fraction = 0.7;
  point.pattern.hotspot = NodeId(0);
  point.rate = 0.04;

  point.routing = NetworkConfig::Routing::kDor;
  const SchemeRun det = run_point(point, seed, preset_for(seed));
  expect_drained_clean(det, "deterministic up/down");

  point.routing = NetworkConfig::Routing::kUpDownAdaptive;
  const SchemeRun adaptive = run_point(point, seed, preset_for(seed));
  expect_drained_clean(adaptive, "adaptive up/down");
  point.sharded = true;
  expect_bit_identical(adaptive, run_point(point, seed, preset_for(seed)),
                       "adaptive threads=2");

  EXPECT_EQ(det.generated, adaptive.generated);
  EXPECT_EQ(packet_set(det), packet_set(adaptive));
}

INSTANTIATE_TEST_SUITE_P(Seeds, FatTreeIncastRouting,
                         ::testing::Range<std::uint64_t>(0, 10));

/// Harness-level checkpoint differential for the new pair: an on/off fat
/// tree under adaptive routing, split mid-run and restored, must finish
/// identically to the straight run (latency accumulators included).
TEST(OnOffFatTreeSnapshot, SplitRunMatchesStraightRun) {
  harness::NetworkScenarioConfig config;
  config.network.topo = TopologySpec::fat_tree(4);
  config.network.routing = NetworkConfig::Routing::kUpDownAdaptive;
  config.network.router.flow_control = FlowControl::kOnOff;
  config.traffic.packets_per_node_per_cycle = 0.04;
  config.traffic.pattern.kind = PatternSpec::Kind::kHotspot;
  config.traffic.pattern.hotspot_fraction = 0.7;
  config.traffic.pattern.hotspot = NodeId(0);
  config.traffic.inject_until = 1'000;

  harness::NetworkRun straight(config, 11);
  straight.run_to_completion();
  const harness::NetworkScenarioResult a = straight.finish();

  SnapshotFile file;
  {
    harness::NetworkRun run(config, 11);
    run.advance_to(400);
    file = run.make_snapshot_file();
  }
  harness::NetworkRun resumed(config, file);
  EXPECT_TRUE(resumed.restored());
  resumed.run_to_completion();
  const harness::NetworkScenarioResult b = resumed.finish();

  EXPECT_EQ(a.end_cycle, b.end_cycle);
  EXPECT_EQ(a.generated_packets, b.generated_packets);
  EXPECT_EQ(a.delivered_packets, b.delivered_packets);
  EXPECT_EQ(a.delivered_flits, b.delivered_flits);
  EXPECT_EQ(a.latency.sum(), b.latency.sum());
  EXPECT_EQ(a.p99_latency, b.p99_latency);
}

/// A credit-mode snapshot must not restore into an on/off fabric: the
/// fingerprint carries the flow-control config.
TEST(OnOffFatTreeSnapshot, FlowControlMismatchRejected) {
  harness::NetworkScenarioConfig config;
  config.network.topo = TopologySpec::mesh(3, 3);
  config.traffic.inject_until = 500;
  harness::NetworkRun run(config, 3);
  run.advance_to(200);
  const SnapshotFile file = run.make_snapshot_file();

  harness::NetworkScenarioConfig onoff = config;
  onoff.network.router.flow_control = FlowControl::kOnOff;
  EXPECT_THROW(harness::NetworkRun(onoff, file), SnapshotError);
}

}  // namespace
}  // namespace wormsched::wormhole
