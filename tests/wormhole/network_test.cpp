#include "wormhole/network.hpp"

#include <gtest/gtest.h>

#include "sim/engine.hpp"
#include "wormhole/patterns.hpp"

namespace wormsched::wormhole {
namespace {

PacketDescriptor make_packet(std::uint64_t id, std::uint32_t src,
                             std::uint32_t dest, Flits len, Cycle created) {
  PacketDescriptor p;
  p.id = PacketId(id);
  p.flow = FlowId(src);
  p.source = NodeId(src);
  p.dest = NodeId(dest);
  p.length = len;
  p.created = created;
  return p;
}

Cycle run_to_idle(Network& net, Cycle cap = 200000) {
  sim::Engine engine;
  engine.add_component(net);
  return engine.run_until_idle(cap);
}

TEST(Network, DeliversSinglePacketAcrossMesh) {
  NetworkConfig config;
  config.topo = TopologySpec::mesh(4, 4);
  Network net(config);
  net.inject(0, make_packet(1, 0, 15, 8, 0));
  const Cycle end = run_to_idle(net);
  ASSERT_EQ(net.delivered().size(), 1u);
  const DeliveredPacket& p = net.delivered()[0];
  EXPECT_EQ(p.source, NodeId(0));
  EXPECT_EQ(p.dest, NodeId(15));
  EXPECT_EQ(p.length, 8);
  // 6 link traversals take the head to the far corner by cycle 6 at the
  // earliest; the tail (flit 8) ejects 7 cycles later.
  EXPECT_GE(p.delivered - p.created, 13u);
  EXPECT_LT(end, 200u);
}

TEST(Network, LocalDelivery) {
  NetworkConfig config;
  config.topo = TopologySpec::mesh(2, 2);
  Network net(config);
  net.inject(0, make_packet(1, 1, 1, 3, 0));  // dest == source
  run_to_idle(net);
  ASSERT_EQ(net.delivered().size(), 1u);
  EXPECT_EQ(net.delivered()[0].dest, NodeId(1));
}

TEST(Network, ConservationUnderUniformLoad) {
  NetworkConfig config;
  config.topo = TopologySpec::mesh(4, 4);
  Network net(config);
  NetworkTrafficSource::Config traffic_config;
  traffic_config.packets_per_node_per_cycle = 0.01;
  traffic_config.inject_until = 3000;
  traffic_config.lengths = traffic::LengthSpec::uniform(1, 12);
  NetworkTrafficSource source(net, traffic_config);
  sim::Engine engine;
  engine.add_component(source);
  engine.add_component(net);
  engine.run_until(3000);
  engine.run_until_idle(100000);
  EXPECT_TRUE(net.idle());
  EXPECT_EQ(net.delivered().size(), source.generated());
  EXPECT_EQ(net.injected_packets(), source.generated());
  // Flit-level conservation: every flit of every packet was ejected,
  // none duplicated.
  Flits delivered_lengths = 0;
  for (const auto& p : net.delivered()) delivered_lengths += p.length;
  EXPECT_EQ(static_cast<std::uint64_t>(delivered_lengths),
            net.delivered_flits());
}

TEST(Network, TorusDeliversWithDateline) {
  NetworkConfig config;
  config.topo = TopologySpec::torus(4, 4);
  config.router.num_vcs = 2;
  Network net(config);
  // Exercise wrap links explicitly: corner-to-corner both dimensions.
  net.inject(0, make_packet(1, 0, 15, 6, 0));   // wraps west+north way
  net.inject(0, make_packet(2, 15, 0, 6, 0));
  net.inject(0, make_packet(3, 3, 0, 6, 0));    // X wrap
  run_to_idle(net);
  EXPECT_EQ(net.delivered().size(), 3u);
}

TEST(Network, TorusSaturationNoDeadlock) {
  // Heavy uniform load on a torus: the dateline VCs must prevent deadlock
  // and the network must fully drain after injection stops.
  NetworkConfig config;
  config.topo = TopologySpec::torus(4, 4);
  config.router.num_vcs = 2;
  config.router.buffer_depth = 4;
  Network net(config);
  NetworkTrafficSource::Config traffic_config;
  traffic_config.packets_per_node_per_cycle = 0.05;  // well past saturation
  traffic_config.inject_until = 2000;
  traffic_config.lengths = traffic::LengthSpec::uniform(1, 8);
  traffic_config.seed = 5;
  NetworkTrafficSource source(net, traffic_config);
  sim::Engine engine;
  engine.add_component(source);
  engine.add_component(net);
  engine.run_until(2000);
  const Cycle end = engine.run_until_idle(500000);
  EXPECT_TRUE(net.idle()) << "possible deadlock: stopped at " << end;
  EXPECT_EQ(net.delivered().size(), source.generated());
}

TEST(Network, MeshSaturationNoDeadlockAllArbiters) {
  for (const char* arbiter : {"err-cycles", "err-flits", "rr", "fcfs"}) {
    SCOPED_TRACE(arbiter);
    NetworkConfig config;
    config.topo = TopologySpec::mesh(3, 3);
    config.router.arbiter = arbiter;
    config.router.buffer_depth = 4;
    Network net(config);
    NetworkTrafficSource::Config traffic_config;
    traffic_config.packets_per_node_per_cycle = 0.08;
    traffic_config.inject_until = 1500;
    traffic_config.lengths = traffic::LengthSpec::uniform(1, 8);
    NetworkTrafficSource source(net, traffic_config);
    sim::Engine engine;
    engine.add_component(source);
    engine.add_component(net);
    engine.run_until(1500);
    engine.run_until_idle(300000);
    EXPECT_TRUE(net.idle());
    EXPECT_EQ(net.delivered().size(), source.generated());
  }
}

// Runs one traffic configuration to drain and returns the full delivery
// record, so active-set scheduling can be checked flit-for-flit against
// the legacy dense tick-everything loop.
std::vector<DeliveredPacket> run_traffic(const NetworkConfig& config,
                                         double rate, Cycle inject_until,
                                         std::uint64_t seed) {
  Network net(config);
  NetworkTrafficSource::Config traffic_config;
  traffic_config.packets_per_node_per_cycle = rate;
  traffic_config.inject_until = inject_until;
  traffic_config.lengths = traffic::LengthSpec::uniform(1, 12);
  traffic_config.pattern.kind = PatternSpec::Kind::kHotspot;
  traffic_config.seed = seed;
  NetworkTrafficSource source(net, traffic_config);
  sim::Engine engine;
  engine.add_component(source);
  engine.add_component(net);
  engine.run_until(inject_until);
  engine.run_until_idle(inject_until * 100);
  EXPECT_TRUE(net.idle());
  EXPECT_EQ(net.delivered().size(), source.generated());
  return net.delivered();
}

TEST(Network, ActiveSetBitIdenticalToDenseTick) {
  // The active set only skips ticks that are provably no-ops, so the two
  // modes must agree on every delivered packet, in order, including the
  // delivery cycle — under congested hotspot traffic where routers
  // enroll and retire constantly.
  NetworkConfig active;
  active.topo = TopologySpec::mesh(4, 4);
  active.router.buffer_depth = 4;
  NetworkConfig dense = active;
  dense.dense_tick = true;
  for (const std::uint64_t seed : {1u, 7u, 42u}) {
    SCOPED_TRACE(seed);
    const auto a = run_traffic(active, 0.03, 2000, seed);
    const auto d = run_traffic(dense, 0.03, 2000, seed);
    ASSERT_EQ(a.size(), d.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].id, d[i].id);
      EXPECT_EQ(a[i].delivered, d[i].delivered);
      EXPECT_EQ(a[i].created, d[i].created);
      EXPECT_EQ(a[i].source, d[i].source);
      EXPECT_EQ(a[i].dest, d[i].dest);
      EXPECT_EQ(a[i].length, d[i].length);
    }
  }
}

TEST(Network, IdleIsConstantTimeCounterCheck) {
  // idle() must be true exactly when nothing is buffered, bound, queued
  // or in flight — checked across inject / drain phase boundaries.
  NetworkConfig config;
  config.topo = TopologySpec::mesh(4, 4);
  Network net(config);
  EXPECT_TRUE(net.idle());
  net.inject(0, make_packet(1, 0, 15, 4, 0));
  EXPECT_FALSE(net.idle());  // NIC backlog counts as busy
  run_to_idle(net);
  EXPECT_TRUE(net.idle());
  EXPECT_EQ(net.delivered().size(), 1u);
}

TEST(Network, LatencyGrowsWithDistance) {
  NetworkConfig config;
  config.topo = TopologySpec::mesh(8, 1);
  Network net(config);
  net.inject(0, make_packet(1, 0, 1, 4, 0));
  net.inject(0, make_packet(2, 0, 7, 4, 0));
  run_to_idle(net);
  ASSERT_EQ(net.delivered().size(), 2u);
  Cycle near = 0, far = 0;
  for (const auto& p : net.delivered()) {
    if (p.dest == NodeId(1)) near = p.delivered - p.created;
    if (p.dest == NodeId(7)) far = p.delivered - p.created;
  }
  EXPECT_GT(far, near);
}

TEST(Network, PerFlowAccounting) {
  NetworkConfig config;
  config.topo = TopologySpec::mesh(2, 2);
  Network net(config);
  net.inject(0, make_packet(1, 0, 3, 5, 0));
  net.inject(0, make_packet(2, 1, 2, 7, 0));
  run_to_idle(net);
  const auto flits = net.delivered_flits_by_flow(4);
  EXPECT_EQ(flits[0], 5);
  EXPECT_EQ(flits[1], 7);
  EXPECT_EQ(flits[2], 0);
  EXPECT_EQ(net.latency_by_source(NodeId(0)).count(), 1u);
  EXPECT_EQ(net.latency_overall().count(), 2u);
}

TEST(Patterns, DestinationsAreValidAndNotSelf) {
  Topology topo(TopologySpec::mesh(4, 4));
  Rng rng(9);
  for (const auto kind :
       {PatternSpec::Kind::kUniform, PatternSpec::Kind::kTranspose,
        PatternSpec::Kind::kBitComplement, PatternSpec::Kind::kHotspot,
        PatternSpec::Kind::kNeighbor}) {
    PatternSpec pattern;
    pattern.kind = kind;
    pattern.hotspot = NodeId(5);
    for (std::uint32_t src = 0; src < 16; ++src) {
      for (int k = 0; k < 8; ++k) {
        const NodeId dest =
            pick_destination(topo, pattern, NodeId(src), rng);
        EXPECT_LT(dest.value(), 16u);
        EXPECT_NE(dest, NodeId(src));
      }
    }
  }
}

TEST(Patterns, TransposeSwapsCoordinates) {
  Topology topo(TopologySpec::mesh(4, 4));
  Rng rng(1);
  PatternSpec pattern;
  pattern.kind = PatternSpec::Kind::kTranspose;
  // (1, 2) = node 9 -> (2, 1) = node 6.
  EXPECT_EQ(pick_destination(topo, pattern, NodeId(9), rng), NodeId(6));
}

TEST(Patterns, HotspotConcentratesTraffic) {
  Topology topo(TopologySpec::mesh(4, 4));
  Rng rng(2);
  PatternSpec pattern;
  pattern.kind = PatternSpec::Kind::kHotspot;
  pattern.hotspot = NodeId(10);
  pattern.hotspot_fraction = 0.8;
  int to_hotspot = 0;
  const int n = 4000;
  for (int k = 0; k < n; ++k)
    if (pick_destination(topo, pattern, NodeId(0), rng) == NodeId(10))
      ++to_hotspot;
  EXPECT_GT(static_cast<double>(to_hotspot) / n, 0.75);
}

}  // namespace
}  // namespace wormsched::wormhole
