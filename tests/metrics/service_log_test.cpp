#include "metrics/service_log.hpp"

#include <gtest/gtest.h>

namespace wormsched::metrics {
namespace {

core::FlitEvent flit(std::uint32_t flow) {
  core::FlitEvent f;
  f.flow = FlowId(flow);
  f.packet = PacketId(0);
  return f;
}

TEST(ServiceLog, EmptyLogReportsZero) {
  ServiceLog log(2);
  EXPECT_EQ(log.sent(FlowId(0), 0, 100), 0);
  EXPECT_EQ(log.total(FlowId(1)), 0);
  EXPECT_EQ(log.grand_total(), 0);
}

TEST(ServiceLog, CountsFlitsInHalfOpenInterval) {
  ServiceLog log(2);
  log.on_flit(5, flit(0));
  log.on_flit(6, flit(0));
  log.on_flit(7, flit(1));
  log.on_flit(10, flit(0));
  EXPECT_EQ(log.sent(FlowId(0), 0, 100), 3);
  EXPECT_EQ(log.sent(FlowId(0), 5, 10), 2);   // t2 exclusive
  EXPECT_EQ(log.sent(FlowId(0), 6, 11), 2);   // t1 inclusive
  EXPECT_EQ(log.sent(FlowId(0), 8, 10), 0);
  EXPECT_EQ(log.sent(FlowId(1), 0, 100), 1);
}

TEST(ServiceLog, MultipleFlitsSameCycleFromDifferentFlows) {
  // Network contexts can log several flows in one cycle.
  ServiceLog log(3);
  log.on_flit(4, flit(0));
  log.on_flit(4, flit(1));
  log.on_flit(4, flit(2));
  EXPECT_EQ(log.grand_total(), 3);
  EXPECT_EQ(log.sent(FlowId(1), 4, 5), 1);
}

TEST(ServiceLog, BytesScaleByFlitSize) {
  ServiceLog log(1, 8);
  log.on_flit(0, flit(0));
  log.on_flit(1, flit(0));
  EXPECT_EQ(log.total_bytes(FlowId(0)), 16u);
  EXPECT_EQ(log.sent_bytes(FlowId(0), 0, 1), 8u);
  EXPECT_EQ(log.flit_bytes(), 8u);
}

TEST(ServiceLog, EmptyIntervalIsZero) {
  ServiceLog log(1);
  log.on_flit(3, flit(0));
  EXPECT_EQ(log.sent(FlowId(0), 5, 5), 0);
}

TEST(ServiceLogDeath, OutOfOrderFeedAborts) {
  ServiceLog log(1);
  log.on_flit(10, flit(0));
  EXPECT_DEATH(log.on_flit(9, flit(0)), "time order");
}

}  // namespace
}  // namespace wormsched::metrics
