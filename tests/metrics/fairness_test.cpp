#include "metrics/fairness.hpp"

#include <gtest/gtest.h>

#include <array>

#include "metrics/jain.hpp"

namespace wormsched::metrics {
namespace {

core::FlitEvent flit(std::uint32_t flow) {
  core::FlitEvent f;
  f.flow = FlowId(flow);
  f.packet = PacketId(0);
  return f;
}

/// Builds a 2-flow fixture: flow 0 served on even cycles, flow 1 on a
/// configurable subset; both active on [0, horizon).
struct Fixture {
  Fixture(Cycle horizon, int flow1_every)
      : log(2), activity(2) {
    for (Cycle t = 0; t < horizon; ++t) {
      activity.record(t, FlowId(0), true);
      activity.record(t, FlowId(1), true);
      if (t % 2 == 0) log.on_flit(t, flit(0));
      if (flow1_every > 0 && t % static_cast<Cycle>(flow1_every) == 0)
        log.on_flit(t, flit(1));
    }
    activity.finish(horizon);
  }
  ServiceLog log;
  ActivityTracker activity;
};

TEST(FairnessMeasure, EqualServiceGivesZero) {
  Fixture fx(100, 2);  // both flows served every other cycle
  EXPECT_EQ(fairness_measure(fx.log, fx.activity, 0, 100), 0);
}

TEST(FairnessMeasure, UnequalServiceMeasuredExactly) {
  Fixture fx(100, 4);  // flow 0: 50 flits, flow 1: 25 flits
  EXPECT_EQ(fairness_measure(fx.log, fx.activity, 0, 100), 25);
  EXPECT_EQ(fairness_measure(fx.log, fx.activity, 0, 40), 10);
}

TEST(FairnessMeasure, InactiveFlowExcluded) {
  ServiceLog log(2);
  ActivityTracker activity(2);
  for (Cycle t = 0; t < 100; ++t) {
    activity.record(t, FlowId(0), true);
    activity.record(t, FlowId(1), t < 50);  // flow 1 goes idle at 50
    log.on_flit(t, flit(0));
  }
  activity.finish(100);
  // Over [0,100) only flow 0 qualifies -> FM defined as 0.
  EXPECT_EQ(fairness_measure(log, activity, 0, 100), 0);
  // Over [0,50) both qualify: 50 vs 0.
  EXPECT_EQ(fairness_measure(log, activity, 0, 50), 50);
}

TEST(FairnessMeasure, ThreeFlowsUsesExtremes) {
  ServiceLog log(3);
  ActivityTracker activity(3);
  for (Cycle t = 0; t < 90; ++t) {
    for (std::uint32_t f = 0; f < 3; ++f) activity.record(t, FlowId(f), true);
    log.on_flit(t, flit(static_cast<std::uint32_t>(t % 3 == 0 ? 0 : (t % 3 == 1 ? 1 : 1))));
  }
  activity.finish(90);
  // flow 0: 30, flow 1: 60, flow 2: 0 -> FM = 60.
  EXPECT_EQ(fairness_measure(log, activity, 0, 90), 60);
}

TEST(AverageRelativeFairness, ZeroForPerfectlyFairService) {
  Fixture fx(1000, 2);
  Rng rng(3);
  const double avg =
      average_relative_fairness(fx.log, fx.activity, 1000, 200, rng);
  // Alternating single-flit service: any interval differs by at most 1.
  EXPECT_LE(avg, 1.0);
}

TEST(AverageRelativeFairness, GrowsWithImbalance) {
  Fixture fair(2000, 2);
  Fixture skew(2000, 8);
  Rng rng1(5), rng2(5);
  const double avg_fair =
      average_relative_fairness(fair.log, fair.activity, 2000, 300, rng1);
  const double avg_skew =
      average_relative_fairness(skew.log, skew.activity, 2000, 300, rng2);
  EXPECT_GT(avg_skew, avg_fair + 10.0);
}

TEST(MaxFairnessMeasure, FindsWorstBoundaryPair) {
  Fixture fx(100, 4);
  const std::vector<Cycle> boundaries = {0, 10, 40, 100};
  EXPECT_EQ(max_fairness_measure(fx.log, fx.activity, boundaries), 25);
}

TEST(MaxFairnessMeasure, EmptyBoundariesGiveZero) {
  Fixture fx(100, 2);
  EXPECT_EQ(max_fairness_measure(fx.log, fx.activity, {}), 0);
}

TEST(JainIndex, PerfectEqualityIsOne) {
  const std::array<double, 4> equal = {5, 5, 5, 5};
  EXPECT_DOUBLE_EQ(jain_index(equal), 1.0);
}

TEST(JainIndex, MonopolyIsOneOverN) {
  const std::array<double, 4> monopoly = {8, 0, 0, 0};
  EXPECT_DOUBLE_EQ(jain_index(monopoly), 0.25);
}

TEST(JainIndex, IntermediateCase) {
  const std::array<double, 2> skewed = {1, 3};
  // (1+3)^2 / (2 * (1+9)) = 16/20.
  EXPECT_DOUBLE_EQ(jain_index(skewed), 0.8);
}

TEST(JainIndex, ScaleInvariant) {
  const std::array<double, 3> a = {1, 2, 3};
  const std::array<double, 3> b = {10, 20, 30};
  EXPECT_DOUBLE_EQ(jain_index(a), jain_index(b));
}

TEST(JainIndex, DegenerateInputs) {
  EXPECT_DOUBLE_EQ(jain_index({}), 1.0);
  const std::array<double, 3> zeros = {0, 0, 0};
  EXPECT_DOUBLE_EQ(jain_index(zeros), 1.0);
}

}  // namespace
}  // namespace wormsched::metrics
