#include "metrics/activity.hpp"

#include <gtest/gtest.h>

namespace wormsched::metrics {
namespace {

TEST(Activity, SingleWindow) {
  ActivityTracker tracker(1);
  for (Cycle t = 0; t < 100; ++t) tracker.record(t, FlowId(0), t >= 10 && t < 60);
  tracker.finish(100);
  EXPECT_TRUE(tracker.active_throughout(FlowId(0), 10, 60));
  EXPECT_TRUE(tracker.active_throughout(FlowId(0), 20, 40));
  EXPECT_FALSE(tracker.active_throughout(FlowId(0), 9, 60));
  EXPECT_FALSE(tracker.active_throughout(FlowId(0), 10, 61));
  EXPECT_FALSE(tracker.active_throughout(FlowId(0), 0, 5));
}

TEST(Activity, MultipleWindows) {
  ActivityTracker tracker(1);
  auto active = [](Cycle t) { return (t / 10) % 2 == 0; };  // on 0-9, 20-29...
  for (Cycle t = 0; t < 100; ++t) tracker.record(t, FlowId(0), active(t));
  tracker.finish(100);
  EXPECT_TRUE(tracker.active_throughout(FlowId(0), 20, 30));
  EXPECT_TRUE(tracker.active_throughout(FlowId(0), 42, 48));
  EXPECT_FALSE(tracker.active_throughout(FlowId(0), 5, 25));  // spans a gap
  EXPECT_FALSE(tracker.active_throughout(FlowId(0), 12, 15));
}

TEST(Activity, OpenWindowClosedByFinish) {
  ActivityTracker tracker(1);
  for (Cycle t = 0; t < 50; ++t) tracker.record(t, FlowId(0), t >= 30);
  tracker.finish(50);
  EXPECT_TRUE(tracker.active_throughout(FlowId(0), 30, 50));
  EXPECT_FALSE(tracker.active_throughout(FlowId(0), 30, 51));
}

TEST(Activity, NeverActiveFlow) {
  ActivityTracker tracker(2);
  for (Cycle t = 0; t < 10; ++t) {
    tracker.record(t, FlowId(0), true);
    tracker.record(t, FlowId(1), false);
  }
  tracker.finish(10);
  EXPECT_TRUE(tracker.active_throughout(FlowId(0), 0, 10));
  EXPECT_FALSE(tracker.active_throughout(FlowId(1), 3, 4));
}

TEST(Activity, EmptyIntervalAlwaysActive) {
  ActivityTracker tracker(1);
  tracker.finish(10);
  EXPECT_TRUE(tracker.active_throughout(FlowId(0), 5, 5));
}

TEST(Activity, RedundantRecordsCoalesce) {
  ActivityTracker tracker(1);
  tracker.record(0, FlowId(0), true);
  tracker.record(1, FlowId(0), true);
  tracker.record(2, FlowId(0), true);
  tracker.record(3, FlowId(0), false);
  tracker.record(4, FlowId(0), true);
  tracker.finish(10);
  EXPECT_TRUE(tracker.active_throughout(FlowId(0), 0, 3));
  EXPECT_FALSE(tracker.active_throughout(FlowId(0), 0, 4));
  EXPECT_TRUE(tracker.active_throughout(FlowId(0), 4, 10));
}

TEST(ActivityDeath, QueryBeforeFinishAborts) {
  ActivityTracker tracker(1);
  tracker.record(0, FlowId(0), true);
  EXPECT_DEATH((void)tracker.active_throughout(FlowId(0), 0, 1), "finish");
}

}  // namespace
}  // namespace wormsched::metrics
