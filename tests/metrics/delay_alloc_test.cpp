// Allocation audit for DelayStats: per-flow quantile reservoirs must be
// constructed lazily (on a flow's first departure) and sized by the flow
// count.  Pre-fix, the constructor eagerly built one estimator per flow
// with a fixed 1<<18-sample capacity — ~2 MiB of reservoir per flow once
// warm, and >100 MiB reserved up front at 4096 flows, which OOM-killed
// large-topology sweeps before the first cycle ran.
//
// The hook is a byte-counting override of the global allocation functions
// (same four shapes as wormhole/router_alloc_test.cpp), so the eager
// reservation would show up directly in the constructor's byte delta.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "metrics/delay.hpp"

namespace {
std::atomic<std::uint64_t> g_allocated_bytes{0};

void* counted_alloc(std::size_t size, std::size_t alignment) {
  g_allocated_bytes.fetch_add(size, std::memory_order_relaxed);
  void* p = nullptr;
  if (posix_memalign(&p, alignment < sizeof(void*) ? sizeof(void*) : alignment,
                     size == 0 ? 1 : size) != 0) {
    throw std::bad_alloc();
  }
  return p;
}

std::uint64_t allocated_bytes() {
  return g_allocated_bytes.load(std::memory_order_relaxed);
}
}  // namespace

void* operator new(std::size_t size) {
  return counted_alloc(size, alignof(std::max_align_t));
}
void* operator new[](std::size_t size) {
  return counted_alloc(size, alignof(std::max_align_t));
}
void* operator new(std::size_t size, std::align_val_t align) {
  return counted_alloc(size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return counted_alloc(size, static_cast<std::size_t>(align));
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace wormsched::metrics {
namespace {

core::Packet packet(std::uint32_t flow, Cycle arrival) {
  core::Packet p;
  p.id = PacketId(0);
  p.flow = FlowId(flow);
  p.length = 1;
  p.arrival = arrival;
  return p;
}

constexpr std::size_t kManyFlows = 4096;

TEST(DelayStatsAlloc, ConstructionReservesNoPerFlowReservoirs) {
  const std::uint64_t before = allocated_bytes();
  DelayStats stats(kManyFlows);
  const std::uint64_t ctor_bytes = allocated_bytes() - before;
  // Bookkeeping vectors only: a RunningStat and an empty
  // optional<QuantileEstimator> per flow, well under a megabyte total.
  // The pre-fix eager reservoirs were >100 MiB at this flow count.
  EXPECT_LT(ctor_bytes, std::uint64_t{1} << 20) << ctor_bytes;
  EXPECT_EQ(stats.packets(), 0u);
}

TEST(DelayStatsAlloc, OnlyDepartedFlowsPayForReservoirs) {
  DelayStats stats(kManyFlows);
  const std::uint64_t before = allocated_bytes();
  for (Cycle d = 1; d <= 100; ++d) {
    stats.on_packet_departure(d, packet(0, 0));
    stats.on_packet_departure(2 * d, packet(7, 0));
  }
  const std::uint64_t touched_bytes = allocated_bytes() - before;
  // Two flows saw traffic; at 4096 flows each reservoir is capped near
  // (1<<22)/4096 = 1024 samples, so the pair costs tens of KiB — not the
  // ~4 MiB two eager 1<<18-sample reservoirs would.
  EXPECT_LT(touched_bytes, std::uint64_t{1} << 19) << touched_bytes;

  // Lazily built estimators still answer quantile queries...
  EXPECT_NEAR(stats.flow_quantile(FlowId(0), 0.5), 50.0, 2.0);
  EXPECT_NEAR(stats.flow_quantile(FlowId(7), 0.5), 100.0, 4.0);
  // ...and an untouched flow reads as empty rather than crashing.
  EXPECT_DOUBLE_EQ(stats.flow_quantile(FlowId(4000), 0.5), 0.0);
}

TEST(DelayStatsAlloc, ReservoirCapacityScalesWithFlowCount) {
  // A small-flow-count run keeps the historical deep reservoir: feed one
  // flow far more samples than the 4096-flow cap and check the estimator
  // retains enough of them to resolve a fine quantile.
  DelayStats stats(2);
  for (Cycle d = 1; d <= 20000; ++d) stats.on_packet_departure(d, packet(0, 0));
  EXPECT_NEAR(stats.flow_quantile(FlowId(0), 0.999), 19980.0, 200.0);
}

TEST(DelayStatsAlloc, CounterObservesHeapTraffic) {
  // Sanity-check the hook itself.
  const std::uint64_t before = allocated_bytes();
  auto* p = new double[32];
  delete[] p;
  EXPECT_GE(allocated_bytes() - before, 32 * sizeof(double));
}

}  // namespace
}  // namespace wormsched::metrics
