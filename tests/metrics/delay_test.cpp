#include "metrics/delay.hpp"

#include <gtest/gtest.h>

namespace wormsched::metrics {
namespace {

core::Packet packet(std::uint32_t flow, Cycle arrival) {
  core::Packet p;
  p.id = PacketId(0);
  p.flow = FlowId(flow);
  p.length = 1;
  p.arrival = arrival;
  return p;
}

TEST(DelayStats, RecordsDepartureMinusArrival) {
  DelayStats stats(2);
  stats.on_packet_departure(10, packet(0, 4));
  stats.on_packet_departure(20, packet(0, 10));
  stats.on_packet_departure(30, packet(1, 0));
  EXPECT_EQ(stats.packets(), 3u);
  EXPECT_DOUBLE_EQ(stats.overall().mean(), (6.0 + 10.0 + 30.0) / 3.0);
  EXPECT_DOUBLE_EQ(stats.flow(FlowId(0)).mean(), 8.0);
  EXPECT_DOUBLE_EQ(stats.flow(FlowId(1)).mean(), 30.0);
}

TEST(DelayStats, QuantilesTrackDistribution) {
  DelayStats stats(1);
  for (Cycle d = 1; d <= 100; ++d) stats.on_packet_departure(d, packet(0, 0));
  EXPECT_NEAR(stats.quantile(0.5), 50.0, 2.0);
  EXPECT_NEAR(stats.quantile(0.99), 99.0, 2.0);
}

TEST(DelayStats, PerFlowQuantilesAreIndependent) {
  DelayStats stats(2);
  for (Cycle d = 1; d <= 100; ++d) {
    stats.on_packet_departure(d, packet(0, 0));        // delays 1..100
    stats.on_packet_departure(10 * d, packet(1, 0));   // delays 10..1000
  }
  EXPECT_NEAR(stats.flow_quantile(FlowId(0), 0.5), 50.0, 2.0);
  EXPECT_NEAR(stats.flow_quantile(FlowId(1), 0.5), 500.0, 20.0);
}

TEST(DelayStats, ZeroDelayPacket) {
  DelayStats stats(1);
  stats.on_packet_departure(7, packet(0, 7));
  EXPECT_DOUBLE_EQ(stats.overall().mean(), 0.0);
}

TEST(ObserverChain, FansOutAllCallbacks) {
  struct Counter final : core::SchedulerObserver {
    int arrivals = 0, flits = 0, departures = 0;
    void on_packet_arrival(Cycle, const core::Packet&) override { ++arrivals; }
    void on_flit(Cycle, const core::FlitEvent&) override { ++flits; }
    void on_packet_departure(Cycle, const core::Packet&) override {
      ++departures;
    }
  };
  Counter a, b;
  ObserverChain chain;
  chain.add(a);
  chain.add(b);
  chain.on_packet_arrival(0, packet(0, 0));
  core::FlitEvent f;
  f.flow = FlowId(0);
  chain.on_flit(1, f);
  chain.on_flit(2, f);
  chain.on_packet_departure(3, packet(0, 0));
  for (const Counter* c : {&a, &b}) {
    EXPECT_EQ(c->arrivals, 1);
    EXPECT_EQ(c->flits, 2);
    EXPECT_EQ(c->departures, 1);
  }
}

}  // namespace
}  // namespace wormsched::metrics
