// Scaled-down versions of the paper's experiments, asserting the *shapes*
// the figures report.  The full-size regenerators live in bench/.
#include <gtest/gtest.h>

#include <algorithm>

#include "harness/paper_workloads.hpp"
#include "harness/scenario.hpp"
#include "metrics/fairness.hpp"

namespace wormsched::harness {
namespace {

constexpr Cycle kHorizon = 200'000;  // 1/20 of the paper's 4M cycles

struct Fig4Runs {
  traffic::Trace trace;
  ScenarioConfig config;
};

Fig4Runs fig4_setup(std::uint64_t seed) {
  Fig4Runs runs;
  runs.config.horizon = kHorizon;
  runs.config.seed = seed;
  runs.config.sched.drr_quantum = 128;  // Max for this workload
  runs.trace = traffic::generate_trace(fig4_workload(), kHorizon, seed);
  return runs;
}

std::vector<Bytes> per_flow_bytes(const ScenarioResult& r) {
  std::vector<Bytes> out;
  for (std::size_t f = 0; f < r.num_flows(); ++f)
    out.push_back(
        r.service_log.total_bytes(FlowId(static_cast<std::uint32_t>(f))));
  return out;
}

TEST(Fig4Shape, ErrEvensOutThroughputPbrrDoesNot) {
  const auto setup = fig4_setup(11);
  const auto err = run_scenario("err", setup.config, setup.trace);
  const auto pbrr = run_scenario("pbrr", setup.config, setup.trace);

  const auto pbrr_bytes = per_flow_bytes(pbrr);
  // Theorem 3: among flows active throughout a window, the ERR service
  // spread stays below 3m flits.  (Lifetime totals would also fold in the
  // warm-up phase, where briefly-idle flows simply demanded less.)
  const Flits err_fm = metrics::fairness_measure(
      err.service_log, err.activity, kHorizon / 10, kHorizon);
  EXPECT_LT(err_fm, 3 * err.max_served_packet);
  // PBRR hands flow 2 (double-length packets) roughly double bandwidth.
  const double pbrr_flow2 = static_cast<double>(pbrr_bytes[2]);
  double pbrr_others = 0;
  for (std::size_t f = 0; f < 8; ++f)
    if (f != 2 && f != 3) pbrr_others += static_cast<double>(pbrr_bytes[f]);
  pbrr_others /= 6.0;
  EXPECT_GT(pbrr_flow2, 1.7 * pbrr_others);
  EXPECT_LT(pbrr_flow2, 2.3 * pbrr_others);
}

TEST(Fig4Shape, FbrrIsFairestErrClose) {
  const auto setup = fig4_setup(12);
  const auto err = run_scenario("err", setup.config, setup.trace);
  const auto fbrr = run_scenario("fbrr", setup.config, setup.trace);
  // Fig. 4(b): FBRR is the fairest possible at flit granularity; ERR stays
  // within its 3m bound (3 * 128 flits = 3 KBytes here).
  const Flits err_fm = metrics::fairness_measure(
      err.service_log, err.activity, kHorizon / 10, kHorizon);
  const Flits fbrr_fm = metrics::fairness_measure(
      fbrr.service_log, fbrr.activity, kHorizon / 10, kHorizon);
  EXPECT_LE(fbrr_fm, err_fm);
  EXPECT_LT(err_fm, 3 * 128);
}

TEST(Fig4Shape, FcfsRewardsRateAndLengthErrDoesNot) {
  const auto setup = fig4_setup(13);
  const auto fcfs = run_scenario("fcfs", setup.config, setup.trace);
  const auto bytes = per_flow_bytes(fcfs);
  const double base = static_cast<double>(bytes[0]);
  // Flow 2 (2x packet length) and flow 3 (2x packet rate) each steal ~2x.
  EXPECT_NEAR(static_cast<double>(bytes[2]) / base, 2.0, 0.35);
  EXPECT_NEAR(static_cast<double>(bytes[3]) / base, 2.0, 0.35);
}

TEST(Fig4Shape, ErrAndDrrComparableForUniformLengths) {
  const auto setup = fig4_setup(14);
  const auto err = run_scenario("err", setup.config, setup.trace);
  const auto drr = run_scenario("drr", setup.config, setup.trace);
  // Fig. 4(d): the two disciplines are comparable; each respects its
  // analytical fairness bound over the all-active window.
  const Flits err_fm = metrics::fairness_measure(
      err.service_log, err.activity, kHorizon / 10, kHorizon);
  const Flits drr_fm = metrics::fairness_measure(
      drr.service_log, drr.activity, kHorizon / 10, kHorizon);
  EXPECT_LT(err_fm, 3 * 128);
  EXPECT_LE(drr_fm, 128 + 2 * 128);
}

double flow_averaged_delay(const ScenarioResult& r) {
  double sum = 0.0;
  for (std::size_t f = 0; f < r.num_flows(); ++f)
    sum += r.delays.flow(FlowId(static_cast<std::uint32_t>(f))).mean();
  return sum / static_cast<double>(r.num_flows());
}

TEST(Fig5Shape, ErrBeatsFcfsAndPbrrOnAverageDelay) {
  // Per-flow-averaged delay, the Fig. 5 metric (see bench_fig5_delay.cpp
  // for why packet-weighted averaging would double-count flow 3).
  ScenarioConfig config;
  config.horizon = 10'000;
  config.drain = true;
  config.seed = 21;
  config.sched.drr_quantum = 128;
  const auto workload = fig5_workload(1.25);
  const auto trace = traffic::generate_trace(workload, config.horizon, 21);
  const auto err = run_scenario("err", config, trace);
  const auto fcfs = run_scenario("fcfs", config, trace);
  const auto pbrr = run_scenario("pbrr", config, trace);
  EXPECT_LT(flow_averaged_delay(err), flow_averaged_delay(fcfs));
  EXPECT_LT(flow_averaged_delay(err), flow_averaged_delay(pbrr));
}

TEST(Fig5Shape, ErrDelayGainComesFromHeavyFlows) {
  // The queuing-theory conservation remark (Sec. 5): ERR's better average
  // delay is paid for by the over-demanding flows (2 and 3).
  ScenarioConfig config;
  config.horizon = 10'000;
  config.drain = true;
  config.seed = 22;
  const auto trace =
      traffic::generate_trace(fig5_workload(1.3), config.horizon, 22);
  const auto err = run_scenario("err", config, trace);
  const auto fcfs = run_scenario("fcfs", config, trace);
  // Flows 0 and 1 (well-behaved) do better under ERR; flow 2 (long
  // packets) does worse.
  EXPECT_LT(err.delays.flow(FlowId(0)).mean(),
            fcfs.delays.flow(FlowId(0)).mean());
  EXPECT_LT(err.delays.flow(FlowId(1)).mean(),
            fcfs.delays.flow(FlowId(1)).mean());
  EXPECT_GT(err.delays.flow(FlowId(2)).mean(),
            fcfs.delays.flow(FlowId(2)).mean());
}

TEST(Fig6Shape, ErrBeatsDrrForExponentialLengths) {
  // With lambda=0.2 lengths on [1,64], m (largest packet actually seen)
  // sits far below Max=64 most of the time... but over a long run m -> 64.
  // The advantage the paper shows comes from DRR's quantum being sized to
  // Max while ERR adapts to the packets that actually arrive.  Average
  // relative fairness over random intervals must favour ERR.
  ScenarioConfig config;
  config.horizon = kHorizon;
  config.seed = 23;
  config.sched.drr_quantum = 64;  // Max
  const auto trace =
      traffic::generate_trace(fig6_workload(6), kHorizon, 23);
  const auto err = run_scenario("err", config, trace);
  const auto drr = run_scenario("drr", config, trace);
  Rng rng_a(7), rng_b(7);
  const double err_arf = metrics::average_relative_fairness(
      err.service_log, err.activity, kHorizon, 2000, rng_a);
  const double drr_arf = metrics::average_relative_fairness(
      drr.service_log, drr.activity, kHorizon, 2000, rng_b);
  EXPECT_LT(err_arf, drr_arf);
}

}  // namespace
}  // namespace wormsched::harness
