#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cmath>

namespace wormsched {
namespace {

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_u64() == b.next_u64()) ++equal;
  EXPECT_LT(equal, 2);
}

TEST(Rng, UniformU64RespectsBound) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(rng.uniform_u64(13), 13u);
}

TEST(Rng, UniformIntCoversClosedRange) {
  Rng rng(7);
  std::array<int, 5> seen{};
  for (int i = 0; i < 5000; ++i) {
    const auto v = rng.uniform_int(3, 7);
    ASSERT_GE(v, 3);
    ASSERT_LE(v, 7);
    ++seen[static_cast<std::size_t>(v - 3)];
  }
  for (const int count : seen) EXPECT_GT(count, 700);  // ~1000 expected each
}

TEST(Rng, UniformIntSingleton) {
  Rng rng(7);
  EXPECT_EQ(rng.uniform_int(5, 5), 5);
}

TEST(Rng, UniformRealInUnitInterval) {
  Rng rng(11);
  double sum = 0;
  for (int i = 0; i < 100000; ++i) {
    const double u = rng.uniform_real();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 100000.0, 0.5, 0.01);
}

TEST(Rng, BernoulliMatchesProbability) {
  Rng rng(13);
  int hits = 0;
  for (int i = 0; i < 100000; ++i)
    if (rng.bernoulli(0.3)) ++hits;
  EXPECT_NEAR(static_cast<double>(hits) / 100000.0, 0.3, 0.01);
  EXPECT_FALSE(rng.bernoulli(0.0));
  EXPECT_TRUE(rng.bernoulli(1.0));
}

TEST(Rng, ExponentialHasExpectedMean) {
  Rng rng(17);
  double sum = 0;
  for (int i = 0; i < 100000; ++i) sum += rng.exponential(0.25);
  EXPECT_NEAR(sum / 100000.0, 4.0, 0.1);
}

TEST(Rng, TruncatedExponentialStaysInRange) {
  Rng rng(19);
  for (int i = 0; i < 20000; ++i) {
    const auto k = rng.truncated_exponential_int(0.2, 1, 64);
    ASSERT_GE(k, 1);
    ASSERT_LE(k, 64);
  }
}

TEST(Rng, TruncatedExponentialSkewsSmall) {
  // The Fig. 6 premise: with lambda=0.2 small packets dominate — the
  // bottom quarter of the range should hold well over half the mass.
  Rng rng(23);
  int small = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i)
    if (rng.truncated_exponential_int(0.2, 1, 64) <= 16) ++small;
  EXPECT_GT(static_cast<double>(small) / n, 0.9);
}

TEST(Rng, PoissonSmallMean) {
  Rng rng(29);
  double sum = 0;
  for (int i = 0; i < 100000; ++i)
    sum += static_cast<double>(rng.poisson(3.0));
  EXPECT_NEAR(sum / 100000.0, 3.0, 0.05);
}

TEST(Rng, PoissonLargeMeanUsesNormalPath) {
  Rng rng(31);
  double sum = 0;
  for (int i = 0; i < 20000; ++i)
    sum += static_cast<double>(rng.poisson(200.0));
  EXPECT_NEAR(sum / 20000.0, 200.0, 1.0);
}

TEST(Rng, PoissonZeroMean) {
  Rng rng(37);
  EXPECT_EQ(rng.poisson(0.0), 0u);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng parent(41);
  Rng child = parent.split();
  // Child must differ from a same-seed parent continuation.
  int equal = 0;
  for (int i = 0; i < 64; ++i)
    if (parent.next_u64() == child.next_u64()) ++equal;
  EXPECT_LT(equal, 2);
}

}  // namespace
}  // namespace wormsched
