// Randomized differential tests: RingBuffer against std::deque and
// IntrusiveList against std::list, driven by the same operation streams.
#include <gtest/gtest.h>

#include <deque>
#include <list>
#include <vector>

#include "common/intrusive_list.hpp"
#include "common/ring_buffer.hpp"
#include "common/rng.hpp"

namespace wormsched {
namespace {

class ContainerFuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ContainerFuzzTest, RingBufferMatchesDeque) {
  Rng rng(GetParam() * 31 + 7);
  RingBuffer<int> ring;
  std::deque<int> reference;
  int next_value = 0;
  for (int op = 0; op < 20000; ++op) {
    const auto choice = rng.uniform_u64(100);
    if (choice < 55) {  // push
      ring.push_back(next_value);
      reference.push_back(next_value);
      ++next_value;
    } else if (choice < 90) {  // pop
      if (!reference.empty()) {
        ASSERT_EQ(ring.pop_front(), reference.front());
        reference.pop_front();
      }
    } else if (choice < 95) {  // indexed peek
      if (!reference.empty()) {
        const auto idx = rng.uniform_u64(reference.size());
        ASSERT_EQ(ring[static_cast<std::size_t>(idx)],
                  reference[static_cast<std::size_t>(idx)]);
      }
    } else if (choice < 97) {  // clear
      ring.clear();
      reference.clear();
    } else {  // bulk state check
      ASSERT_EQ(ring.size(), reference.size());
      ASSERT_EQ(ring.empty(), reference.empty());
      if (!reference.empty()) {
        ASSERT_EQ(ring.front(), reference.front());
        ASSERT_EQ(ring.back(), reference.back());
      }
    }
  }
  ASSERT_EQ(ring.size(), reference.size());
  while (!reference.empty()) {
    ASSERT_EQ(ring.pop_front(), reference.front());
    reference.pop_front();
  }
}

struct FuzzNode {
  int id = 0;
  IntrusiveListHook hook;
};

TEST_P(ContainerFuzzTest, IntrusiveListMatchesStdList) {
  Rng rng(GetParam() * 57 + 3);
  constexpr int kNodes = 64;
  std::vector<FuzzNode> nodes(kNodes);
  for (int i = 0; i < kNodes; ++i) nodes[static_cast<std::size_t>(i)].id = i;

  IntrusiveList<FuzzNode, &FuzzNode::hook> list;
  std::list<int> reference;  // ids, same order

  const auto is_member = [&](int id) {
    return decltype(list)::is_linked(nodes[static_cast<std::size_t>(id)]);
  };

  for (int op = 0; op < 20000; ++op) {
    const auto choice = rng.uniform_u64(100);
    const int id = static_cast<int>(rng.uniform_u64(kNodes));
    auto& node = nodes[static_cast<std::size_t>(id)];
    if (choice < 40) {  // push_back if absent
      if (!is_member(id)) {
        list.push_back(node);
        reference.push_back(id);
      }
    } else if (choice < 50) {  // push_front if absent
      if (!is_member(id)) {
        list.push_front(node);
        reference.push_front(id);
      }
    } else if (choice < 75) {  // pop_front
      if (!reference.empty()) {
        ASSERT_EQ(list.pop_front().id, reference.front());
        reference.pop_front();
      }
    } else if (choice < 90) {  // erase arbitrary member
      if (is_member(id)) {
        list.erase(node);
        reference.remove(id);
      }
    } else {  // full order check
      ASSERT_EQ(list.size(), reference.size());
      auto it = reference.begin();
      for (const FuzzNode& n : list) {
        ASSERT_NE(it, reference.end());
        ASSERT_EQ(n.id, *it);
        ++it;
      }
    }
  }
  list.clear();
}

INSTANTIATE_TEST_SUITE_P(Seeds, ContainerFuzzTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

}  // namespace
}  // namespace wormsched
