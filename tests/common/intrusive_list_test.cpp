#include "common/intrusive_list.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace wormsched {
namespace {

struct Item {
  explicit Item(int v = 0) : value(v) {}
  int value = 0;
  IntrusiveListHook hook;
  IntrusiveListHook other_hook;
};
using List = IntrusiveList<Item, &Item::hook>;
using OtherList = IntrusiveList<Item, &Item::other_hook>;

TEST(IntrusiveList, StartsEmpty) {
  List list;
  EXPECT_TRUE(list.empty());
  EXPECT_EQ(list.size(), 0u);
}

TEST(IntrusiveList, PushBackPopFrontIsFifo) {
  List list;
  Item a{1}, b{2}, c{3};
  list.push_back(a);
  list.push_back(b);
  list.push_back(c);
  EXPECT_EQ(list.size(), 3u);
  EXPECT_EQ(list.pop_front().value, 1);
  EXPECT_EQ(list.pop_front().value, 2);
  EXPECT_EQ(list.pop_front().value, 3);
  EXPECT_TRUE(list.empty());
}

TEST(IntrusiveList, PushFrontPutsItemAtHead) {
  List list;
  Item a{1}, b{2};
  list.push_back(a);
  list.push_front(b);
  EXPECT_EQ(list.front().value, 2);
  EXPECT_EQ(list.back().value, 1);
  list.clear();
}

TEST(IntrusiveList, EraseFromMiddle) {
  List list;
  Item a{1}, b{2}, c{3};
  list.push_back(a);
  list.push_back(b);
  list.push_back(c);
  list.erase(b);
  EXPECT_EQ(list.size(), 2u);
  EXPECT_FALSE(List::is_linked(b));
  EXPECT_EQ(list.pop_front().value, 1);
  EXPECT_EQ(list.pop_front().value, 3);
}

TEST(IntrusiveList, ReinsertAfterPop) {
  List list;
  Item a{1}, b{2};
  list.push_back(a);
  list.push_back(b);
  Item& popped = list.pop_front();
  list.push_back(popped);  // round-robin rotation
  EXPECT_EQ(list.pop_front().value, 2);
  EXPECT_EQ(list.pop_front().value, 1);
}

TEST(IntrusiveList, IsLinkedTracksMembership) {
  List list;
  Item a{1};
  EXPECT_FALSE(List::is_linked(a));
  list.push_back(a);
  EXPECT_TRUE(List::is_linked(a));
  list.erase(a);
  EXPECT_FALSE(List::is_linked(a));
}

TEST(IntrusiveList, IterationVisitsInOrder) {
  List list;
  Item items[5];
  for (int i = 0; i < 5; ++i) {
    items[i].value = i;
    list.push_back(items[i]);
  }
  std::vector<int> seen;
  for (const Item& item : list) seen.push_back(item.value);
  EXPECT_EQ(seen, (std::vector<int>{0, 1, 2, 3, 4}));
  list.clear();
}

TEST(IntrusiveList, TwoHooksTwoIndependentLists) {
  List list;
  OtherList other;
  Item a{7};
  list.push_back(a);
  other.push_back(a);
  EXPECT_TRUE(List::is_linked(a));
  EXPECT_TRUE(OtherList::is_linked(a));
  list.erase(a);
  EXPECT_FALSE(List::is_linked(a));
  EXPECT_TRUE(OtherList::is_linked(a));
  other.clear();
}

TEST(IntrusiveList, ClearUnlinksEverything) {
  List list;
  Item a, b;
  list.push_back(a);
  list.push_back(b);
  list.clear();
  EXPECT_TRUE(list.empty());
  EXPECT_FALSE(List::is_linked(a));
  EXPECT_FALSE(List::is_linked(b));
}

TEST(IntrusiveListDeath, DoubleInsertAborts) {
  List list;
  Item a;
  list.push_back(a);
  EXPECT_DEATH(list.push_back(a), "already-linked");
  list.clear();
}

TEST(IntrusiveListDeath, EraseUnlinkedAborts) {
  List list;
  Item a;
  EXPECT_DEATH(list.erase(a), "unlinked");
}

}  // namespace
}  // namespace wormsched
