#include "common/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"

namespace wormsched {
namespace {

TEST(RunningStat, EmptyIsZero) {
  RunningStat s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStat, KnownMoments) {
  RunningStat s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
}

TEST(RunningStat, MergeEqualsSequential) {
  RunningStat all, left, right;
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform_real(0, 100);
    all.add(x);
    (i < 500 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-6);
  EXPECT_DOUBLE_EQ(left.min(), all.min());
  EXPECT_DOUBLE_EQ(left.max(), all.max());
}

TEST(RunningStat, MergeWithEmpty) {
  RunningStat a, b;
  a.add(1.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 1u);
  b.merge(a);
  EXPECT_EQ(b.count(), 1u);
  EXPECT_DOUBLE_EQ(b.mean(), 1.0);
}

TEST(Histogram, BinsAndEdges) {
  Histogram h(0.0, 10.0, 5);
  h.add(0.0);   // bin 0
  h.add(1.99);  // bin 0
  h.add(2.0);   // bin 1
  h.add(9.99);  // bin 4
  h.add(-1.0);  // underflow
  h.add(10.0);  // overflow (hi is exclusive)
  EXPECT_EQ(h.bin(0), 2u);
  EXPECT_EQ(h.bin(1), 1u);
  EXPECT_EQ(h.bin(4), 1u);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_EQ(h.total(), 6u);
  EXPECT_DOUBLE_EQ(h.bin_lo(1), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(1), 4.0);
}

TEST(Histogram, ToStringMentionsCounts) {
  Histogram h(0.0, 4.0, 2);
  h.add(1.0);
  h.add(3.0);
  h.add(3.5);
  const std::string s = h.to_string();
  EXPECT_NE(s.find("1 "), std::string::npos);
  EXPECT_NE(s.find("2 "), std::string::npos);
}

TEST(QuantileEstimator, ExactWhenUnderCapacity) {
  QuantileEstimator q(1000);
  for (int i = 1; i <= 100; ++i) q.add(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(q.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(q.quantile(1.0), 100.0);
  EXPECT_NEAR(q.quantile(0.5), 50.0, 1.0);
  EXPECT_NEAR(q.quantile(0.9), 90.0, 1.0);
}

TEST(QuantileEstimator, ReservoirApproximatesUniform) {
  QuantileEstimator q(512);
  Rng rng(77);
  for (int i = 0; i < 200000; ++i) q.add(rng.uniform_real(0, 1000));
  EXPECT_NEAR(q.quantile(0.5), 500.0, 80.0);
  EXPECT_NEAR(q.quantile(0.95), 950.0, 60.0);
  EXPECT_EQ(q.sample_count(), 200000u);
}

TEST(QuantileEstimator, EmptyReturnsZero) {
  QuantileEstimator q;
  EXPECT_EQ(q.quantile(0.5), 0.0);
}

}  // namespace
}  // namespace wormsched
