// CSV, ASCII table and CLI parser tests.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <utility>

#include "common/cli.hpp"
#include "common/csv.hpp"
#include "common/table.hpp"

namespace wormsched {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

class CsvTest : public ::testing::Test {
 protected:
  std::string path_ = ::testing::TempDir() + "/ws_csv_test.csv";
  void TearDown() override { std::remove(path_.c_str()); }
};

TEST_F(CsvTest, WritesHeaderAndRows) {
  {
    CsvWriter csv(path_);
    csv.header({"flow", "bytes"});
    csv.row(0, 4096);
    csv.row(1, 8192);
    EXPECT_EQ(csv.rows_written(), 3u);
  }
  EXPECT_EQ(slurp(path_), "flow,bytes\n0,4096\n1,8192\n");
}

TEST_F(CsvTest, EscapesSpecialCharacters) {
  {
    CsvWriter csv(path_);
    csv.row("plain", "with,comma", "with\"quote");
  }
  EXPECT_EQ(slurp(path_), "plain,\"with,comma\",\"with\"\"quote\"\n");
}

TEST_F(CsvTest, MixedTypesFormatted) {
  {
    CsvWriter csv(path_);
    csv.row("x", 1.5, 7u, -3);
  }
  EXPECT_EQ(slurp(path_), "x,1.5,7,-3\n");
}

TEST(CsvWriterError, UnwritablePathThrows) {
  EXPECT_THROW(CsvWriter("/nonexistent-dir/x.csv"), std::runtime_error);
}

TEST(AsciiTable, AlignsColumns) {
  AsciiTable t("Title");
  t.set_header({"name", "value"});
  t.add_row("a", 1);
  t.add_row("longer", 22);
  const std::string s = t.to_string();
  EXPECT_NE(s.find("Title"), std::string::npos);
  EXPECT_NE(s.find("| name "), std::string::npos);
  EXPECT_NE(s.find("| longer |"), std::string::npos);
  // Every data line has the same width.
  std::istringstream is(s);
  std::string line;
  std::size_t width = 0;
  std::getline(is, line);  // title
  while (std::getline(is, line)) {
    if (width == 0) width = line.size();
    EXPECT_EQ(line.size(), width) << line;
  }
}

TEST(AsciiTable, RuleInsertsSeparator) {
  AsciiTable t;
  t.set_header({"a"});
  t.add_row(1);
  t.add_rule();
  t.add_row(2);
  const std::string s = t.to_string();
  // header rule + top + mid + bottom = 4 separator lines
  std::size_t rules = 0;
  std::istringstream is(s);
  std::string line;
  while (std::getline(is, line))
    if (!line.empty() && line[0] == '+') ++rules;
  EXPECT_EQ(rules, 4u);
}

TEST(Fixed, FormatsWithPrecision) {
  EXPECT_EQ(fixed(3.14159, 2), "3.14");
  EXPECT_EQ(fixed(2.0, 0), "2");
}

TEST(CliParser, ParsesOptionsAndFlags) {
  CliParser cli("test");
  cli.add_option("cycles", "run length", "1000");
  cli.add_option("rate", "injection rate", "0.5");
  cli.add_flag("verbose", "chatty");
  const char* argv[] = {"prog", "--cycles", "5000", "--verbose",
                        "--rate=0.25", "pos1"};
  ASSERT_TRUE(cli.parse(6, argv));
  EXPECT_EQ(cli.get_uint("cycles"), 5000u);
  EXPECT_DOUBLE_EQ(cli.get_double("rate"), 0.25);
  EXPECT_TRUE(cli.get_flag("verbose"));
  ASSERT_EQ(cli.positional().size(), 1u);
  EXPECT_EQ(cli.positional()[0], "pos1");
}

TEST(CliParser, DefaultsApplyWhenAbsent) {
  CliParser cli("test");
  cli.add_option("n", "count", "42");
  cli.add_flag("quiet", "silence");
  const char* argv[] = {"prog"};
  ASSERT_TRUE(cli.parse(1, argv));
  EXPECT_EQ(cli.get_int("n"), 42);
  EXPECT_FALSE(cli.get_flag("quiet"));
}

TEST(CliParser, UnknownOptionFails) {
  CliParser cli("test");
  const char* argv[] = {"prog", "--nope", "1"};
  EXPECT_FALSE(cli.parse(3, argv));
}

TEST(CliParser, MissingValueFails) {
  CliParser cli("test");
  cli.add_option("n", "count", "1");
  const char* argv[] = {"prog", "--n"};
  EXPECT_FALSE(cli.parse(2, argv));
}

TEST(CliParser, HelpReturnsFalse) {
  CliParser cli("test");
  const char* argv[] = {"prog", "--help"};
  EXPECT_FALSE(cli.parse(2, argv));
}

// --- Strict numeric parsing (regressions: stoll/stoull/stod accepted
// trailing junk, silently wrapped negatives into unsigned, and threw
// uncaught out_of_range on overflow). -----------------------------------

TEST(CliParserStrictDeathTest, TrailingJunkExitsWithMessage) {
  CliParser cli("test");
  cli.add_option("cycles", "run length", "1000");
  const char* argv[] = {"prog", "--cycles=10x"};
  ASSERT_TRUE(cli.parse(2, argv));
  EXPECT_EXIT((void)cli.get_uint("cycles"), ::testing::ExitedWithCode(2),
              "option --cycles: '10x' is not a non-negative integer");
}

TEST(CliParserStrictDeathTest, NegativeUnsignedDoesNotWrap) {
  // Pre-fix, std::stoull("-1") wrapped to 2^64-1 and a sweep would try to
  // run 18 quintillion seeds.
  CliParser cli("test");
  cli.add_option("seeds", "seed count", "1");
  const char* argv[] = {"prog", "--seeds=-1"};
  ASSERT_TRUE(cli.parse(2, argv));
  EXPECT_EXIT((void)cli.get_uint("seeds"), ::testing::ExitedWithCode(2),
              "option --seeds: '-1' is not a non-negative integer");
}

TEST(CliParserStrictDeathTest, IntegerOverflowExits) {
  CliParser cli("test");
  cli.add_option("n", "count", "0");
  const char* argv[] = {"prog", "--n=99999999999999999999"};
  ASSERT_TRUE(cli.parse(2, argv));
  EXPECT_EXIT((void)cli.get_int("n"), ::testing::ExitedWithCode(2),
              "overflows a signed 64-bit integer");
}

TEST(CliParserStrictDeathTest, DoubleJunkExits) {
  CliParser cli("test");
  cli.add_option("rate", "rate", "0.5");
  const char* argv[] = {"prog", "--rate", "1.5q"};
  ASSERT_TRUE(cli.parse(3, argv));
  EXPECT_EXIT((void)cli.get_double("rate"), ::testing::ExitedWithCode(2),
              "option --rate: '1.5q' is not a number");
}

TEST(CliParserStrictDeathTest, EmptyValueExits) {
  CliParser cli("test");
  cli.add_option("n", "count", "0");
  const char* argv[] = {"prog", "--n="};
  ASSERT_TRUE(cli.parse(2, argv));
  EXPECT_EXIT((void)cli.get_int("n"), ::testing::ExitedWithCode(2),
              "is not an integer");
}

// --- --threads / --shards (sharded network tick) ------------------------

TEST(NetworkParallelismDeathTest, ZeroThreadsExits) {
  // 0 is NOT an "auto" wildcard here: a fabric cannot tick with zero
  // worker threads, and silently promoting 0 to 1 would mask typos.
  CliParser cli("test");
  add_network_parallel_options(cli);
  const char* argv[] = {"prog", "--threads=0"};
  ASSERT_TRUE(cli.parse(2, argv));
  EXPECT_EXIT((void)resolve_network_parallelism(cli),
              ::testing::ExitedWithCode(2),
              "option --threads: '0' must be >= 1");
}

TEST(NetworkParallelismDeathTest, ZeroShardsExits) {
  CliParser cli("test");
  add_network_parallel_options(cli);
  const char* argv[] = {"prog", "--threads=2", "--shards=0"};
  ASSERT_TRUE(cli.parse(3, argv));
  EXPECT_EXIT((void)resolve_network_parallelism(cli),
              ::testing::ExitedWithCode(2),
              "option --shards: '0' must be >= 1");
}

TEST(NetworkParallelismDeathTest, NonNumericThreadsExits) {
  CliParser cli("test");
  add_network_parallel_options(cli);
  const char* argv[] = {"prog", "--threads=four"};
  ASSERT_TRUE(cli.parse(2, argv));
  EXPECT_EXIT((void)resolve_network_parallelism(cli),
              ::testing::ExitedWithCode(2),
              "option --threads: 'four' is not a non-negative integer");
}

TEST(NetworkParallelismDeathTest, TrailingJunkShardsExits) {
  CliParser cli("test");
  add_network_parallel_options(cli);
  const char* argv[] = {"prog", "--shards=4x"};
  ASSERT_TRUE(cli.parse(2, argv));
  EXPECT_EXIT((void)resolve_network_parallelism(cli),
              ::testing::ExitedWithCode(2),
              "option --shards: '4x' is not a non-negative integer");
}

TEST(NetworkParallelism, DefaultsAreSerial) {
  CliParser cli("test");
  add_network_parallel_options(cli);
  const char* argv[] = {"prog"};
  ASSERT_TRUE(cli.parse(1, argv));
  const NetworkParallelism par = resolve_network_parallelism(cli);
  EXPECT_EQ(par.threads, 1u);
  EXPECT_EQ(par.shards, 1u);
}

TEST(NetworkParallelism, UnsetShardsFollowThreads) {
  CliParser cli("test");
  add_network_parallel_options(cli);
  const char* argv[] = {"prog", "--threads=6"};
  ASSERT_TRUE(cli.parse(2, argv));
  const NetworkParallelism par = resolve_network_parallelism(cli);
  EXPECT_EQ(par.threads, 6u);
  EXPECT_EQ(par.shards, 6u);
}

TEST(NetworkParallelism, ExplicitShardsOverride) {
  CliParser cli("test");
  add_network_parallel_options(cli);
  const char* argv[] = {"prog", "--threads=2", "--shards=8"};
  ASSERT_TRUE(cli.parse(3, argv));
  const NetworkParallelism par = resolve_network_parallelism(cli);
  EXPECT_EQ(par.threads, 2u);
  EXPECT_EQ(par.shards, 8u);
}

TEST(CliParserStrict, ValidNumbersStillParse) {
  CliParser cli("test");
  cli.add_option("a", "", "0");
  cli.add_option("b", "", "0");
  cli.add_option("c", "", "0");
  const char* argv[] = {"prog", "--a=-7", "--b=18446744073709551615",
                        "--c=2.5e-3"};
  ASSERT_TRUE(cli.parse(4, argv));
  EXPECT_EQ(cli.get_int("a"), -7);
  EXPECT_EQ(cli.get_uint("b"), 18446744073709551615ull);
  EXPECT_DOUBLE_EQ(cli.get_double("c"), 2.5e-3);
}

// --- Flag inline-value validation (regression: --audit=on parsed fine
// but get_flag read it back as false). ----------------------------------

TEST(CliParserFlags, UnrecognizedInlineValueFailsParse) {
  CliParser cli("test");
  cli.add_flag("audit", "auditing");
  const char* argv[] = {"prog", "--audit=on"};
  EXPECT_FALSE(cli.parse(2, argv));
}

TEST(CliParserFlags, RecognizedInlineValuesParse) {
  for (const auto& [value, expected] :
       {std::pair<const char*, bool>{"true", true},
        {"1", true},
        {"yes", true},
        {"false", false},
        {"0", false},
        {"no", false}}) {
    CliParser cli("test");
    cli.add_flag("audit", "auditing");
    const std::string arg = std::string("--audit=") + value;
    const char* argv[] = {"prog", arg.c_str()};
    ASSERT_TRUE(cli.parse(2, argv)) << arg;
    EXPECT_EQ(cli.get_flag("audit"), expected) << arg;
  }
}

TEST(CliParser, ItemsReturnsEffectiveValues) {
  CliParser cli("test");
  cli.add_option("cycles", "run length", "1000");
  cli.add_option("rate", "rate", "0.5");
  cli.add_flag("audit", "auditing");
  const char* argv[] = {"prog", "--cycles", "250", "--audit"};
  ASSERT_TRUE(cli.parse(4, argv));
  const auto items = cli.items();
  ASSERT_EQ(items.size(), 3u);
  // std::map order: audit, cycles, rate.
  EXPECT_EQ(items[0], (std::pair<std::string, std::string>{"audit", "true"}));
  EXPECT_EQ(items[1], (std::pair<std::string, std::string>{"cycles", "250"}));
  EXPECT_EQ(items[2], (std::pair<std::string, std::string>{"rate", "0.5"}));
}

TEST(CliParserChoice, BareUsesBareValueAndKeepsNextTokenPositional) {
  CliParser cli("test");
  cli.add_choice_flag("audit", "audit mode", {"incremental", "full", "off"},
                      "incremental", "off");
  // A choice flag must never eat the following token, so scripts that
  // treated it as a boolean (`--audit run.json`) keep working.
  const char* argv[] = {"prog", "--audit", "run.json"};
  ASSERT_TRUE(cli.parse(3, argv));
  EXPECT_EQ(cli.get("audit"), "incremental");
  ASSERT_EQ(cli.positional().size(), 1u);
  EXPECT_EQ(cli.positional()[0], "run.json");
}

TEST(CliParserChoice, InlineValueValidatedAgainstChoices) {
  CliParser cli("test");
  cli.add_choice_flag("audit", "audit mode", {"incremental", "full", "off"},
                      "incremental", "off");
  const char* argv[] = {"prog", "--audit=full"};
  ASSERT_TRUE(cli.parse(2, argv));
  EXPECT_EQ(cli.get("audit"), "full");
}

TEST(CliParserChoice, UnknownChoiceFailsParse) {
  CliParser cli("test");
  cli.add_choice_flag("audit", "audit mode", {"incremental", "full", "off"},
                      "incremental", "off");
  const char* argv[] = {"prog", "--audit=sometimes"};
  EXPECT_FALSE(cli.parse(2, argv));
}

TEST(CliParserChoice, AbsentReadsBackDefault) {
  CliParser cli("test");
  cli.add_choice_flag("audit", "audit mode", {"incremental", "full", "off"},
                      "incremental", "off");
  const char* argv[] = {"prog"};
  ASSERT_TRUE(cli.parse(1, argv));
  EXPECT_EQ(cli.get("audit"), "off");
}

TEST(CliParserChoice, UsageListsChoicesAndBareMeaning) {
  CliParser cli("test");
  cli.add_choice_flag("audit", "audit mode", {"incremental", "full", "off"},
                      "incremental", "off");
  const std::string usage = cli.usage("prog");
  EXPECT_NE(usage.find("incremental|full|off"), std::string::npos);
  EXPECT_NE(usage.find("bare: incremental"), std::string::npos);
}

TEST(CliParser, UsageListsOptions) {
  CliParser cli("my tool");
  cli.add_option("alpha", "the alpha", "1");
  const std::string usage = cli.usage("prog");
  EXPECT_NE(usage.find("my tool"), std::string::npos);
  EXPECT_NE(usage.find("--alpha"), std::string::npos);
  EXPECT_NE(usage.find("default: 1"), std::string::npos);
}

}  // namespace
}  // namespace wormsched
