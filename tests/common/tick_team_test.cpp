#include "common/tick_team.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace wormsched {
namespace {

TEST(SpinBarrier, SinglePartyNeverBlocks) {
  SpinBarrier barrier(1);
  for (int i = 0; i < 1000; ++i) barrier.arrive_and_wait();
}

TEST(TickTeam, SingleLaneRunsInline) {
  TickTeam team(1);
  EXPECT_EQ(team.lanes(), 1u);
  std::uint32_t seen = 99;
  team.run([&](std::uint32_t lane) { seen = lane; });
  EXPECT_EQ(seen, 0u);
}

TEST(TickTeam, EveryLaneRunsExactlyOncePerCall) {
  TickTeam team(4);
  ASSERT_EQ(team.lanes(), 4u);
  std::vector<std::atomic<int>> hits(4);
  for (int round = 0; round < 100; ++round)
    team.run([&](std::uint32_t lane) { ++hits[lane]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 100);
}

TEST(TickTeam, LanesSeeWritesFromBeforeRun) {
  // The start barrier must publish caller writes to every lane, and the
  // done barrier must publish lane writes back — the exact pattern the
  // sharded tick's classify/compute/commit phases rely on.
  TickTeam team(3);
  std::vector<std::uint64_t> input(3, 0);
  std::vector<std::uint64_t> output(3, 0);
  std::uint64_t total = 0;
  for (std::uint64_t round = 1; round <= 500; ++round) {
    for (std::uint64_t l = 0; l < 3; ++l) input[l] = round * 10 + l;
    team.run([&](std::uint32_t lane) { output[lane] = input[lane] * 2; });
    for (std::uint64_t l = 0; l < 3; ++l) total += output[l];
  }
  std::uint64_t expect = 0;
  for (std::uint64_t round = 1; round <= 500; ++round)
    for (std::uint64_t l = 0; l < 3; ++l) expect += (round * 10 + l) * 2;
  EXPECT_EQ(total, expect);
}

TEST(TickTeam, WorkerExceptionReachesTheCaller) {
  TickTeam team(4);
  EXPECT_THROW(team.run([](std::uint32_t lane) {
    if (lane == 2) throw std::runtime_error("lane 2 failed");
  }),
               std::runtime_error);
  // The team stays usable after the error is consumed.
  std::atomic<int> ran{0};
  team.run([&](std::uint32_t) { ++ran; });
  EXPECT_EQ(ran.load(), 4);
}

TEST(TickTeam, CallerLaneExceptionAlsoPropagates) {
  TickTeam team(2);
  EXPECT_THROW(team.run([](std::uint32_t lane) {
    if (lane == 0) throw std::runtime_error("lane 0 failed");
  }),
               std::runtime_error);
}

TEST(TickTeam, ManyRapidRoundsStayConsistent) {
  // Task-storm stress: thousands of tiny fork/joins back to back, the
  // cadence of a per-cycle tick.  Any lost wakeup or generation mixup
  // deadlocks or drops a round.
  TickTeam team(4);
  std::vector<std::uint64_t> sums(4, 0);
  for (std::uint64_t round = 0; round < 5000; ++round)
    team.run([&](std::uint32_t lane) { sums[lane] += round; });
  const std::uint64_t per_lane = 5000ull * 4999ull / 2ull;
  for (const std::uint64_t s : sums) EXPECT_EQ(s, per_lane);
}

TEST(TickTeam, DestructionWithNoRunsIsClean) {
  TickTeam team(8);
  EXPECT_EQ(team.lanes(), 8u);
}

}  // namespace
}  // namespace wormsched
