// RNG checkpoint/restore round-trip (docs/TESTING.md).
//
// The restore-equivalence contract bottoms out here: a generator whose
// 256-bit state is captured mid-stream and restored into a fresh instance
// must produce the identical draw sequence — for every draw kind the
// simulator uses, not just next_u64 — or nothing downstream can be
// bit-identical.  The 10k-draw horizon is deliberate overkill: xoshiro
// state divergence shows up within a couple of draws, so a pass here
// means the state really is the whole story.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "common/snapshot.hpp"

namespace wormsched {
namespace {

/// Serializes the state the way the simulator's components do.
Rng::State round_trip_through_snapshot(const Rng::State& state) {
  SnapshotWriter w;
  for (const std::uint64_t word : state) w.u64(word);
  SnapshotReader r(w.bytes());
  Rng::State out;
  for (std::uint64_t& word : out) word = r.u64();
  return out;
}

TEST(RngRoundTrip, MidStreamStateResumesIdentically) {
  Rng original(12345);
  for (int i = 0; i < 1234; ++i) (void)original.next_u64();  // mid-stream

  Rng restored(999);  // deliberately different seed; state must win
  restored.set_state(round_trip_through_snapshot(original.state()));

  for (int i = 0; i < 10'000; ++i)
    ASSERT_EQ(original.next_u64(), restored.next_u64()) << "draw " << i;
}

TEST(RngRoundTrip, EveryDrawKindMatchesAfterRestore) {
  Rng original(77);
  for (int i = 0; i < 500; ++i) (void)original.uniform_real();

  Rng restored;
  restored.set_state(original.state());

  for (int i = 0; i < 2'000; ++i) {
    ASSERT_EQ(original.next_u64(), restored.next_u64());
    ASSERT_EQ(original.uniform_u64(97), restored.uniform_u64(97));
    ASSERT_EQ(original.uniform_int(-5, 40), restored.uniform_int(-5, 40));
    ASSERT_EQ(original.uniform_real(), restored.uniform_real());  // bit-exact
    ASSERT_EQ(original.bernoulli(0.3), restored.bernoulli(0.3));
    ASSERT_EQ(original.exponential(0.2), restored.exponential(0.2));
    ASSERT_EQ(original.truncated_exponential_int(0.2, 1, 64),
              restored.truncated_exponential_int(0.2, 1, 64));
    ASSERT_EQ(original.poisson(3.5), restored.poisson(3.5));
  }
}

TEST(RngRoundTrip, SplitChildrenRestoreIndependently) {
  // Per-flow child streams (split()) checkpoint independently: restoring
  // one child must not depend on the parent's position.
  Rng parent(31);
  Rng child_a = parent.split();
  Rng child_b = parent.split();
  for (int i = 0; i < 100; ++i) {
    (void)child_a.next_u64();
    (void)child_b.next_u64();
  }

  Rng restored_b;
  restored_b.set_state(child_b.state());
  (void)parent.next_u64();    // perturb the parent
  (void)child_a.next_u64();   // and the sibling
  for (int i = 0; i < 10'000; ++i)
    ASSERT_EQ(child_b.next_u64(), restored_b.next_u64()) << "draw " << i;
}

TEST(RngRoundTrip, RestoredStreamsStayDistinct) {
  // Restoring two different mid-stream states must reproduce two
  // *different* streams (guards against a restore that ignores state).
  Rng a(1);
  Rng b(2);
  Rng ra;
  Rng rb;
  ra.set_state(a.state());
  rb.set_state(b.state());
  bool diverged = false;
  for (int i = 0; i < 16 && !diverged; ++i)
    diverged = ra.next_u64() != rb.next_u64();
  EXPECT_TRUE(diverged);
}

TEST(RngRoundTripDeathTest, AllZeroStateRejected) {
  // The all-zero state is xoshiro's fixed point (the stream would be all
  // zeros forever); a corrupted snapshot must not install it.
  Rng rng(5);
  EXPECT_DEATH(rng.set_state(Rng::State{0, 0, 0, 0}), "all-zero");
}

}  // namespace
}  // namespace wormsched
