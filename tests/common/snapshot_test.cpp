// Snapshot primitive and container tests (docs/TESTING.md).
//
// Two promises under test: (1) every field round-trips bit-exactly —
// doubles travel as raw bit patterns, so NaN payloads and signed zeros
// survive; (2) every malformed input fails with SnapshotError and a
// message naming the problem, never undefined behaviour.  The corruption
// matrix drives parse_snapshot_bytes directly so each mutation lands on
// a known container field.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <limits>
#include <string>
#include <vector>

#include "common/snapshot.hpp"

namespace wormsched {
namespace {

TEST(SnapshotPrimitives, ScalarsRoundTripBitExactly) {
  SnapshotWriter w;
  w.u8(0xAB);
  w.b(true);
  w.b(false);
  w.u32(0xDEADBEEFu);
  w.u64(0x0123456789ABCDEFull);
  w.i64(-42);
  w.f64(0.1);  // not representable exactly; must round-trip bit-for-bit
  w.f64(-0.0);
  w.f64(std::numeric_limits<double>::infinity());
  w.f64(std::numeric_limits<double>::quiet_NaN());
  w.str("hello");
  w.str("");

  SnapshotReader r(w.bytes());
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_TRUE(r.b());
  EXPECT_FALSE(r.b());
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(r.i64(), -42);
  EXPECT_EQ(r.f64(), 0.1);
  const double neg_zero = r.f64();
  EXPECT_EQ(neg_zero, 0.0);
  EXPECT_TRUE(std::signbit(neg_zero));
  EXPECT_EQ(r.f64(), std::numeric_limits<double>::infinity());
  EXPECT_TRUE(std::isnan(r.f64()));
  EXPECT_EQ(r.str(), "hello");
  EXPECT_EQ(r.str(), "");
  EXPECT_TRUE(r.exhausted());
}

TEST(SnapshotPrimitives, ReadPastEndThrows) {
  SnapshotWriter w;
  w.u32(7);
  SnapshotReader r(w.bytes());
  (void)r.u32();
  EXPECT_THROW((void)r.u64(), SnapshotError);
}

TEST(SnapshotPrimitives, TruncatedStringLengthThrows) {
  SnapshotWriter w;
  w.u64(1000);  // claims a 1000-byte string with no bytes behind it
  SnapshotReader r(w.bytes());
  EXPECT_THROW((void)r.str(), SnapshotError);
}

TEST(SnapshotSections, NestAndRoundTrip) {
  SnapshotWriter w;
  w.begin_section(0x11111111u);
  w.u64(1);
  w.begin_section(0x22222222u);
  w.u64(2);
  w.end_section();
  w.u64(3);
  w.end_section();

  SnapshotReader r(w.bytes());
  EXPECT_EQ(r.peek_section(), 0x11111111u);
  r.enter_section(0x11111111u);
  EXPECT_EQ(r.u64(), 1u);
  r.enter_section(0x22222222u);
  EXPECT_EQ(r.u64(), 2u);
  r.leave_section();
  EXPECT_EQ(r.u64(), 3u);
  r.leave_section();
  EXPECT_TRUE(r.exhausted());
  EXPECT_EQ(r.peek_section(), 0u);
}

TEST(SnapshotSections, SkipUnknownSection) {
  // Forward compatibility: a reader hops over sections it does not know
  // (how NetworkRun leaves the soak harness's trailing SOAK section
  // unread, and how resume_soak finds it).
  SnapshotWriter w;
  w.begin_section(0x41414141u);
  w.u64(99);
  w.str("future payload this reader cannot interpret");
  w.end_section();
  w.begin_section(0x42424242u);
  w.u64(7);
  w.end_section();

  SnapshotReader r(w.bytes());
  r.skip_section();
  r.enter_section(0x42424242u);
  EXPECT_EQ(r.u64(), 7u);
  r.leave_section();
  EXPECT_TRUE(r.exhausted());
}

TEST(SnapshotSections, LeaveSkipsUnreadRemainder) {
  // A section may grow trailing fields in a newer writer; an older
  // reader leaves them unread without losing stream position.
  SnapshotWriter w;
  w.begin_section(0x51515151u);
  w.u64(1);
  w.u64(2);  // the "new" trailing field
  w.end_section();
  w.u64(77);

  SnapshotReader r(w.bytes());
  r.enter_section(0x51515151u);
  EXPECT_EQ(r.u64(), 1u);
  r.leave_section();  // the unread u64(2) is skipped
  EXPECT_EQ(r.u64(), 77u);
}

TEST(SnapshotSections, WrongTagThrows) {
  SnapshotWriter w;
  w.begin_section(0x61616161u);
  w.end_section();
  SnapshotReader r(w.bytes());
  EXPECT_THROW(r.enter_section(0x99999999u), SnapshotError);
}

TEST(SnapshotSections, SectionBoundsReads) {
  // Reads inside a section must not cross its declared end even when the
  // stream has more bytes after it.
  SnapshotWriter w;
  w.begin_section(0x71717171u);
  w.u8(1);
  w.end_section();
  w.u64(0xFFFFFFFFFFFFFFFFull);
  SnapshotReader r(w.bytes());
  r.enter_section(0x71717171u);
  EXPECT_EQ(r.u8(), 1);
  EXPECT_THROW((void)r.u64(), SnapshotError);  // would cross the boundary
}

TEST(SnapshotSequences, VectorAndDoublesRoundTrip) {
  SnapshotWriter w;
  const std::vector<std::uint32_t> ids = {1, 5, 9};
  save_sequence(w, ids, [](SnapshotWriter& o, std::uint32_t v) { o.u32(v); });
  const std::vector<double> xs = {0.25, -1e300, 3.0};
  save_doubles(w, xs);

  SnapshotReader r(w.bytes());
  std::vector<std::uint32_t> ids2;
  restore_sequence(r, ids2, [](SnapshotReader& in) { return in.u32(); });
  EXPECT_EQ(ids2, ids);
  std::vector<double> xs2;
  restore_doubles(r, xs2);
  EXPECT_EQ(xs2, xs);
}

/// --- File container corruption matrix ------------------------------------

class SnapshotFileTest : public ::testing::Test {
 protected:
  std::string path() const {
    return testing::TempDir() + "snapshot_test_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name() +
           ".wsnp";
  }

  std::vector<std::uint8_t> valid_image() {
    SnapshotWriter w;
    w.begin_section(0x31313131u);
    w.u64(1234);
    w.end_section();
    const std::string p = path();
    write_snapshot_file(p, "{\"schema\":\"wormsched-manifest-v1\"}",
                        w.bytes());
    std::ifstream in(p, std::ios::binary);
    std::vector<std::uint8_t> bytes(
        (std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
    std::remove(p.c_str());
    return bytes;
  }
};

TEST_F(SnapshotFileTest, WriteReadRoundTrip) {
  SnapshotWriter w;
  w.begin_section(0x31313131u);
  w.u64(1234);
  w.end_section();
  const std::string p = path();
  write_snapshot_file(p, "{\"seed\":7}", w.bytes());
  const SnapshotFile file = read_snapshot_file(p);
  EXPECT_EQ(file.version, kSnapshotFormatVersion);
  EXPECT_EQ(file.manifest_json, "{\"seed\":7}");
  EXPECT_EQ(file.payload, w.bytes());
  std::remove(p.c_str());
}

TEST_F(SnapshotFileTest, MissingFileThrows) {
  EXPECT_THROW((void)read_snapshot_file(path() + ".does-not-exist"),
               SnapshotError);
}

TEST_F(SnapshotFileTest, ValidImageParses) {
  const SnapshotFile file = parse_snapshot_bytes(valid_image());
  SnapshotReader r(file.payload);
  r.enter_section(0x31313131u);
  EXPECT_EQ(r.u64(), 1234u);
}

TEST_F(SnapshotFileTest, BadMagicThrows) {
  auto bytes = valid_image();
  bytes[0] ^= 0xFF;
  try {
    (void)parse_snapshot_bytes(bytes);
    FAIL() << "bad magic accepted";
  } catch (const SnapshotError& e) {
    EXPECT_NE(std::string(e.what()).find("magic"), std::string::npos)
        << e.what();
  }
}

TEST_F(SnapshotFileTest, WrongVersionThrows) {
  auto bytes = valid_image();
  bytes[8] = 0xEE;  // u32 version follows the 8-byte magic
  try {
    (void)parse_snapshot_bytes(bytes);
    FAIL() << "wrong version accepted";
  } catch (const SnapshotError& e) {
    EXPECT_NE(std::string(e.what()).find("version"), std::string::npos)
        << e.what();
  }
}

TEST_F(SnapshotFileTest, EveryTruncationThrows) {
  // Chop the image at every length: none may read out of bounds (ASan
  // would catch it) and none may parse successfully.
  const auto bytes = valid_image();
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    const std::vector<std::uint8_t> cut(bytes.begin(), bytes.begin() + len);
    EXPECT_THROW((void)parse_snapshot_bytes(cut), SnapshotError) << len;
  }
}

TEST_F(SnapshotFileTest, PayloadCorruptionFailsCrc) {
  // Flip one bit in every payload byte position; each must be caught by
  // the CRC before any section parsing happens.
  const auto bytes = valid_image();
  // Payload sits between the manifest and the trailing 4-byte CRC.
  const std::size_t crc_start = bytes.size() - 4;
  for (std::size_t pos = crc_start - 9; pos < crc_start; ++pos) {
    auto corrupt = bytes;
    corrupt[pos] ^= 0x01;
    try {
      (void)parse_snapshot_bytes(corrupt);
      FAIL() << "corrupt payload byte " << pos << " accepted";
    } catch (const SnapshotError& e) {
      EXPECT_NE(std::string(e.what()).find("CRC"), std::string::npos)
          << e.what();
    }
  }
}

TEST_F(SnapshotFileTest, CrcFieldCorruptionDetected) {
  auto bytes = valid_image();
  bytes.back() ^= 0xFF;
  EXPECT_THROW((void)parse_snapshot_bytes(bytes), SnapshotError);
}

TEST(SnapshotCrc, KnownVector) {
  // IEEE 802.3 check value: crc32("123456789") == 0xCBF43926.
  const char* s = "123456789";
  EXPECT_EQ(snapshot_crc32(reinterpret_cast<const std::uint8_t*>(s), 9),
            0xCBF43926u);
}

}  // namespace
}  // namespace wormsched
