#include "common/log.hpp"

#include <gtest/gtest.h>

namespace wormsched {
namespace {

class LogTest : public ::testing::Test {
 protected:
  void SetUp() override { saved_ = log_level(); }
  void TearDown() override { set_log_level(saved_); }
  LogLevel saved_;
};

TEST_F(LogTest, LevelRoundTrips) {
  set_log_level(LogLevel::kDebug);
  EXPECT_EQ(log_level(), LogLevel::kDebug);
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
}

TEST_F(LogTest, EmitsToStderrAtOrAboveLevel) {
  set_log_level(LogLevel::kInfo);
  ::testing::internal::CaptureStderr();
  log_info("hello ", 42);
  log_debug("invisible");
  const std::string err = ::testing::internal::GetCapturedStderr();
  EXPECT_NE(err.find("[INFO] hello 42"), std::string::npos);
  EXPECT_EQ(err.find("invisible"), std::string::npos);
}

TEST_F(LogTest, OffSilencesEverything) {
  set_log_level(LogLevel::kOff);
  ::testing::internal::CaptureStderr();
  log_error("nope");
  EXPECT_TRUE(::testing::internal::GetCapturedStderr().empty());
}

TEST_F(LogTest, ConcatenatesMixedTypes) {
  set_log_level(LogLevel::kTrace);
  ::testing::internal::CaptureStderr();
  log_warn("x=", 1.5, " y=", 2, " z=", "s");
  const std::string err = ::testing::internal::GetCapturedStderr();
  EXPECT_NE(err.find("[WARN] x=1.5 y=2 z=s"), std::string::npos);
}

}  // namespace
}  // namespace wormsched
