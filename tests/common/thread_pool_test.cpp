#include "common/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

namespace wormsched {
namespace {

TEST(ThreadPool, InlinePoolSpawnsNoThreads) {
  ThreadPool serial(1);
  EXPECT_EQ(serial.worker_count(), 0u);
  ThreadPool also_serial(0);
  // workers == 0 means "all cores"; a 1-core machine still gets an inline
  // pool, anything larger gets real threads.
  if (ThreadPool::hardware_workers() <= 1) {
    EXPECT_EQ(also_serial.worker_count(), 0u);
  } else {
    EXPECT_EQ(also_serial.worker_count(), ThreadPool::hardware_workers());
  }
}

TEST(ThreadPool, InlineSubmitRunsBeforeReturning) {
  ThreadPool pool(1);
  int ran = 0;
  pool.submit([&] { ran = 1; });
  EXPECT_EQ(ran, 1);  // no wait_idle needed on the inline path
  pool.wait_idle();
}

TEST(ThreadPool, SubmitAndWaitRunsEveryTask) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) pool.submit([&] { ++count; });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
  for (const std::size_t workers : {std::size_t{1}, std::size_t{4}}) {
    ThreadPool pool(workers);
    std::vector<std::atomic<int>> hits(257);
    pool.parallel_for(hits.size(),
                      [&](std::size_t i) { ++hits[i]; });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  }
}

TEST(ThreadPool, ParallelForZeroIsANoOp) {
  ThreadPool pool(4);
  pool.parallel_for(0, [](std::size_t) { FAIL() << "body ran for n = 0"; });
}

TEST(ThreadPool, WaitIdleRethrowsFirstTaskError) {
  ThreadPool pool(2);
  pool.submit([] { throw std::runtime_error("task failed"); });
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);
  // The pool stays usable after an error has been consumed.
  std::atomic<int> ran{0};
  pool.submit([&] { ++ran; });
  pool.wait_idle();
  EXPECT_EQ(ran.load(), 1);
}

TEST(ThreadPool, ParallelForPropagatesBodyError) {
  ThreadPool pool(1);
  EXPECT_THROW(pool.parallel_for(8,
                                 [](std::size_t i) {
                                   if (i == 3)
                                     throw std::runtime_error("index 3");
                                 }),
               std::runtime_error);
}

TEST(ThreadPool, DestructorJoinsOutstandingWork) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(3);
    for (int i = 0; i < 24; ++i)
      pool.submit([&] {
        std::this_thread::yield();
        ++count;
      });
    pool.wait_idle();
  }
  EXPECT_EQ(count.load(), 24);
}

TEST(ThreadPool, HardwareWorkersIsPositive) {
  EXPECT_GE(ThreadPool::hardware_workers(), 1u);
}

}  // namespace
}  // namespace wormsched
