#include "common/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

namespace wormsched {
namespace {

TEST(ThreadPool, InlinePoolSpawnsNoThreads) {
  ThreadPool serial(1);
  EXPECT_EQ(serial.worker_count(), 0u);
  ThreadPool also_serial(0);
  // workers == 0 means "all cores"; a 1-core machine still gets an inline
  // pool, anything larger gets real threads.
  if (ThreadPool::hardware_workers() <= 1) {
    EXPECT_EQ(also_serial.worker_count(), 0u);
  } else {
    EXPECT_EQ(also_serial.worker_count(), ThreadPool::hardware_workers());
  }
}

TEST(ThreadPool, InlineSubmitRunsBeforeReturning) {
  ThreadPool pool(1);
  int ran = 0;
  pool.submit([&] { ran = 1; });
  EXPECT_EQ(ran, 1);  // no wait_idle needed on the inline path
  pool.wait_idle();
}

TEST(ThreadPool, SubmitAndWaitRunsEveryTask) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) pool.submit([&] { ++count; });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
  for (const std::size_t workers : {std::size_t{1}, std::size_t{4}}) {
    ThreadPool pool(workers);
    std::vector<std::atomic<int>> hits(257);
    pool.parallel_for(hits.size(),
                      [&](std::size_t i) { ++hits[i]; });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  }
}

TEST(ThreadPool, ParallelForZeroIsANoOp) {
  ThreadPool pool(4);
  pool.parallel_for(0, [](std::size_t) { FAIL() << "body ran for n = 0"; });
}

TEST(ThreadPool, WaitIdleRethrowsFirstTaskError) {
  ThreadPool pool(2);
  pool.submit([] { throw std::runtime_error("task failed"); });
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);
  // The pool stays usable after an error has been consumed.
  std::atomic<int> ran{0};
  pool.submit([&] { ++ran; });
  pool.wait_idle();
  EXPECT_EQ(ran.load(), 1);
}

TEST(ThreadPool, ParallelForPropagatesBodyError) {
  ThreadPool pool(1);
  EXPECT_THROW(pool.parallel_for(8,
                                 [](std::size_t i) {
                                   if (i == 3)
                                     throw std::runtime_error("index 3");
                                 }),
               std::runtime_error);
}

TEST(ThreadPool, DestructorJoinsOutstandingWork) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(3);
    for (int i = 0; i < 24; ++i)
      pool.submit([&] {
        std::this_thread::yield();
        ++count;
      });
    pool.wait_idle();
  }
  EXPECT_EQ(count.load(), 24);
}

TEST(ThreadPool, HardwareWorkersIsPositive) {
  EXPECT_GE(ThreadPool::hardware_workers(), 1u);
}

TEST(ThreadPool, InlineParallelForRunsEveryIndexDespiteErrors) {
  // Exception contract parity with the pooled path: every index executes,
  // the FIRST error is rethrown at the end.  The inline path used to bail
  // at the throwing index.
  ThreadPool pool(1);
  ASSERT_EQ(pool.worker_count(), 0u);
  std::vector<int> hits(8, 0);
  try {
    pool.parallel_for(hits.size(), [&](std::size_t i) {
      ++hits[i];
      if (i == 2 || i == 5) throw std::runtime_error("index " + std::to_string(i));
    });
    FAIL() << "parallel_for swallowed the error";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "index 2") << "not the first error";
  }
  for (const int h : hits) EXPECT_EQ(h, 1);
}

TEST(ThreadPool, WaitIdleWithNothingSubmittedIsANoOp) {
  ThreadPool pool(3);
  pool.wait_idle();
  pool.wait_idle();  // and again, on an already-quiesced pool
}

TEST(ThreadPool, TaskStormDrainsCompletely) {
  ThreadPool pool(4);
  std::atomic<std::uint64_t> sum{0};
  for (int wave = 0; wave < 20; ++wave) {
    for (int i = 0; i < 500; ++i) pool.submit([&] { sum.fetch_add(1); });
    pool.wait_idle();
  }
  EXPECT_EQ(sum.load(), 20u * 500u);
}

TEST(ThreadPool, ReentrantSubmitFromATaskCompletes) {
  // A task that submits follow-up work must not deadlock wait_idle: the
  // pool counts outstanding tasks, not submission batches.
  ThreadPool pool(2);
  std::atomic<int> count{0};
  for (int i = 0; i < 16; ++i)
    pool.submit([&] {
      ++count;
      pool.submit([&] { ++count; });
    });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 32);
}

TEST(ThreadPool, ReentrantParallelForNestsInline) {
  // parallel_for from inside a task must make progress even when every
  // worker is already busy (the inner loop may run inline on the caller).
  ThreadPool pool(2);
  std::atomic<int> inner{0};
  pool.submit([&] {
    ThreadPool nested(1);
    nested.parallel_for(8, [&](std::size_t) { ++inner; });
  });
  pool.wait_idle();
  EXPECT_EQ(inner.load(), 8);
}

}  // namespace
}  // namespace wormsched
