// EpochBitset: the O(1)-clear membership structure under the scheduler
// pools.  The differential fuzz drives it against std::vector<bool>
// through enough clear_all() cycles to cross an epoch wrap.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/epoch_bitset.hpp"
#include "common/rng.hpp"

namespace wormsched {
namespace {

TEST(EpochBitset, SetTestClearCount) {
  EpochBitset bits(200);
  EXPECT_EQ(bits.size(), 200u);
  EXPECT_FALSE(bits.any());
  bits.set(0);
  bits.set(63);
  bits.set(64);
  bits.set(199);
  EXPECT_EQ(bits.count(), 4u);
  EXPECT_TRUE(bits.test(63));
  EXPECT_FALSE(bits.test(65));
  bits.set(63);  // idempotent
  EXPECT_EQ(bits.count(), 4u);
  bits.clear(63);
  EXPECT_FALSE(bits.test(63));
  bits.clear(63);  // idempotent
  EXPECT_EQ(bits.count(), 3u);
}

TEST(EpochBitset, ClearAllIsImmediateAndReusable) {
  EpochBitset bits(130);
  for (std::size_t i = 0; i < 130; i += 3) bits.set(i);
  EXPECT_TRUE(bits.any());
  bits.clear_all();
  EXPECT_EQ(bits.count(), 0u);
  for (std::size_t i = 0; i < 130; ++i) EXPECT_FALSE(bits.test(i)) << i;
  // Words written in a stale epoch must behave as zero when re-set.
  bits.set(129);
  EXPECT_EQ(bits.count(), 1u);
  EXPECT_TRUE(bits.test(129));
  EXPECT_FALSE(bits.test(126));
}

TEST(EpochBitset, NextSetWalksInOrder) {
  EpochBitset bits(300);
  const std::size_t expected[] = {5, 64, 127, 128, 299};
  for (const std::size_t i : expected) bits.set(i);
  std::size_t at = 0;
  std::vector<std::size_t> seen;
  for (std::size_t i = bits.next_set(0); i != EpochBitset::npos;
       i = bits.next_set(i + 1))
    seen.push_back(i);
  for (const std::size_t i : expected) EXPECT_EQ(seen[at++], i);
  EXPECT_EQ(at, seen.size());
  EXPECT_EQ(bits.next_set(300), EpochBitset::npos);

  std::vector<std::size_t> visited;
  bits.for_each_set([&](std::size_t i) { visited.push_back(i); });
  EXPECT_EQ(visited, seen);
}

TEST(EpochBitset, DifferentialFuzzAcrossEpochWraps) {
  const std::size_t n = 257;
  EpochBitset bits(n);
  std::vector<bool> model(n, false);
  Rng rng(2024);
  for (int op = 0; op < 200'000; ++op) {
    const std::uint64_t kind = rng.uniform_u64(100);
    const std::size_t i = rng.uniform_u64(n);
    if (kind < 45) {
      bits.set(i);
      model[i] = true;
    } else if (kind < 90) {
      bits.clear(i);
      model[i] = false;
    } else if (kind < 99) {
      ASSERT_EQ(bits.test(i), model[i]) << "index " << i << " op " << op;
    } else {
      bits.clear_all();
      model.assign(n, false);
    }
  }
  std::size_t model_count = 0;
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(bits.test(i), model[i]) << i;
    model_count += model[i];
  }
  EXPECT_EQ(bits.count(), model_count);
}

TEST(EpochBitset, ResizeResetsContents) {
  EpochBitset bits(10);
  bits.set(3);
  bits.resize(80);
  EXPECT_EQ(bits.size(), 80u);
  EXPECT_EQ(bits.count(), 0u);
  EXPECT_FALSE(bits.test(3));
  bits.set(79);
  EXPECT_TRUE(bits.test(79));
}

}  // namespace
}  // namespace wormsched
