#include "common/ring_buffer.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <string>

namespace wormsched {
namespace {

TEST(RingBuffer, StartsEmpty) {
  RingBuffer<int> rb;
  EXPECT_TRUE(rb.empty());
  EXPECT_EQ(rb.size(), 0u);
}

TEST(RingBuffer, FifoOrder) {
  RingBuffer<int> rb;
  for (int i = 0; i < 100; ++i) rb.push_back(i);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rb.pop_front(), i);
  EXPECT_TRUE(rb.empty());
}

TEST(RingBuffer, WrapsAroundWithoutReallocation) {
  RingBuffer<int> rb(8);
  const std::size_t cap = rb.capacity();
  // Interleave pushes and pops so head walks the whole ring repeatedly.
  int next_in = 0;
  int next_out = 0;
  for (int round = 0; round < 50; ++round) {
    for (int k = 0; k < 3; ++k) rb.push_back(next_in++);
    for (int k = 0; k < 3; ++k) EXPECT_EQ(rb.pop_front(), next_out++);
  }
  EXPECT_EQ(rb.capacity(), cap);
}

TEST(RingBuffer, IndexedPeek) {
  RingBuffer<int> rb;
  for (int i = 0; i < 10; ++i) rb.push_back(i * 10);
  (void)rb.pop_front();
  EXPECT_EQ(rb[0], 10);
  EXPECT_EQ(rb[3], 40);
  EXPECT_EQ(rb.front(), 10);
  EXPECT_EQ(rb.back(), 90);
}

TEST(RingBuffer, GrowsPreservingOrderAcrossWrap) {
  RingBuffer<int> rb(4);
  for (int i = 0; i < 3; ++i) rb.push_back(i);
  (void)rb.pop_front();
  (void)rb.pop_front();
  // head is now mid-storage; grow across the wrap point
  for (int i = 3; i < 40; ++i) rb.push_back(i);
  for (int i = 2; i < 40; ++i) EXPECT_EQ(rb.pop_front(), i);
}

TEST(RingBuffer, MoveOnlyElements) {
  RingBuffer<std::unique_ptr<int>> rb;
  for (int i = 0; i < 20; ++i) rb.push_back(std::make_unique<int>(i));
  for (int i = 0; i < 20; ++i) {
    auto p = rb.pop_front();
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(*p, i);
  }
}

TEST(RingBuffer, CopyMakesIndependentBuffer) {
  RingBuffer<std::string> rb;
  rb.push_back("a");
  rb.push_back("b");
  RingBuffer<std::string> copy(rb);
  (void)rb.pop_front();
  EXPECT_EQ(copy.size(), 2u);
  EXPECT_EQ(copy.front(), "a");
}

TEST(RingBuffer, MoveStealsStorage) {
  RingBuffer<int> rb;
  rb.push_back(42);
  RingBuffer<int> moved(std::move(rb));
  EXPECT_EQ(moved.pop_front(), 42);
}

TEST(RingBuffer, ClearDestroysElements) {
  auto counter = std::make_shared<int>(0);
  struct Probe {
    std::shared_ptr<int> c;
    ~Probe() {
      if (c) ++*c;
    }
  };
  {
    RingBuffer<Probe> rb;
    rb.push_back(Probe{counter});
    rb.push_back(Probe{counter});
    const int before = *counter;  // temporaries already destroyed
    rb.clear();
    EXPECT_EQ(*counter, before + 2);
  }
}

TEST(RingBuffer, EmplaceBack) {
  RingBuffer<std::pair<int, std::string>> rb;
  rb.emplace_back(1, "one");
  EXPECT_EQ(rb.front().second, "one");
}

TEST(RingBufferDeath, PopEmptyAborts) {
  RingBuffer<int> rb;
  EXPECT_DEATH((void)rb.pop_front(), "empty");
}

TEST(RingBufferDeath, OutOfRangeIndexAborts) {
  RingBuffer<int> rb;
  rb.push_back(1);
  EXPECT_DEATH((void)rb[1], "size");
}

}  // namespace
}  // namespace wormsched
