// SmallVec: fixed-capacity semantics, checked overflow, object lifetime
// for non-trivial element types, and the trivially-copyable fast path.
#include "common/small_vec.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <type_traits>

namespace wormsched {
namespace {

TEST(SmallVec, StartsEmptyWithFixedCapacity) {
  SmallVec<int, 4> v;
  EXPECT_TRUE(v.empty());
  EXPECT_EQ(v.size(), 0u);
  EXPECT_EQ(v.capacity(), 4u);
}

TEST(SmallVec, PushAccessPopRoundTrip) {
  SmallVec<int, 4> v;
  v.push_back(10);
  v.push_back(20);
  v.emplace_back(30);
  ASSERT_EQ(v.size(), 3u);
  EXPECT_EQ(v[0], 10);
  EXPECT_EQ(v[1], 20);
  EXPECT_EQ(v[2], 30);
  EXPECT_EQ(v.front(), 10);
  EXPECT_EQ(v.back(), 30);
  v.pop_back();
  EXPECT_EQ(v.size(), 2u);
  EXPECT_EQ(v.back(), 20);
  v.clear();
  EXPECT_TRUE(v.empty());
}

TEST(SmallVec, RangeForIteratesInOrder) {
  SmallVec<int, 8> v;
  for (int i = 0; i < 5; ++i) v.push_back(i * i);
  int expected = 0;
  int count = 0;
  for (const int x : v) {
    EXPECT_EQ(x, expected * expected);
    ++expected;
    ++count;
  }
  EXPECT_EQ(count, 5);
}

TEST(SmallVec, CopyAndMoveOfTrivialType) {
  static_assert(std::is_trivially_copyable_v<int>);
  SmallVec<int, 4> a;
  a.push_back(1);
  a.push_back(2);
  SmallVec<int, 4> b(a);  // memcpy fast path
  ASSERT_EQ(b.size(), 2u);
  EXPECT_EQ(b[0], 1);
  EXPECT_EQ(b[1], 2);
  SmallVec<int, 4> c(std::move(a));
  EXPECT_EQ(c.size(), 2u);
  EXPECT_EQ(a.size(), 0u);  // moved-from is emptied
  b[0] = 99;
  EXPECT_EQ(c[0], 1);  // copies are independent storage
}

TEST(SmallVec, NonTrivialTypeDestroysElements) {
  // shared_ptr use counts observe construction/destruction exactly.
  auto tracked = std::make_shared<int>(42);
  {
    SmallVec<std::shared_ptr<int>, 4> v;
    v.push_back(tracked);
    v.push_back(tracked);
    EXPECT_EQ(tracked.use_count(), 3);
    v.pop_back();
    EXPECT_EQ(tracked.use_count(), 2);
    SmallVec<std::shared_ptr<int>, 4> copy(v);
    EXPECT_EQ(tracked.use_count(), 3);
    SmallVec<std::shared_ptr<int>, 4> moved(std::move(copy));
    EXPECT_EQ(tracked.use_count(), 3);
    EXPECT_TRUE(copy.empty());
  }
  EXPECT_EQ(tracked.use_count(), 1);  // every element destroyed on scope exit
}

TEST(SmallVec, CopyAssignReplacesContents) {
  SmallVec<std::string, 3> a;
  a.push_back("left");
  SmallVec<std::string, 3> b;
  b.push_back("right");
  b.push_back("tail");
  a = b;
  ASSERT_EQ(a.size(), 2u);
  EXPECT_EQ(a[0], "right");
  EXPECT_EQ(a[1], "tail");
  a = a;  // self-assignment is a no-op
  EXPECT_EQ(a.size(), 2u);
}

TEST(SmallVecDeath, OverflowIsChecked) {
  SmallVec<int, 2> v;
  v.push_back(1);
  v.push_back(2);
  EXPECT_DEATH(v.push_back(3), "capacity overflow");
}

TEST(SmallVecDeath, OutOfRangeIndexIsChecked) {
  SmallVec<int, 2> v;
  v.push_back(1);
  EXPECT_DEATH((void)v[1], "");
}

TEST(SmallVecDeath, PopFromEmptyIsChecked) {
  SmallVec<int, 2> v;
  EXPECT_DEATH(v.pop_back(), "");
}

}  // namespace
}  // namespace wormsched
