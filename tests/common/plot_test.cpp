#include "common/plot.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace wormsched {
namespace {

TEST(AsciiChart, EmptyChartSaysNoData) {
  AsciiChart chart("empty");
  EXPECT_NE(chart.to_string().find("no data"), std::string::npos);
}

TEST(AsciiChart, RendersTitleAxesAndLegend) {
  AsciiChart chart("delay vs load", 32, 8);
  chart.set_x_label("load");
  chart.set_y_label("cycles");
  chart.add_series("ERR", {1.0, 2.0, 3.0}, {10.0, 20.0, 40.0});
  chart.add_series("FCFS", {1.0, 2.0, 3.0}, {12.0, 30.0, 60.0});
  const std::string out = chart.to_string();
  EXPECT_NE(out.find("delay vs load"), std::string::npos);
  EXPECT_NE(out.find("load"), std::string::npos);
  EXPECT_NE(out.find("cycles"), std::string::npos);
  EXPECT_NE(out.find("* ERR"), std::string::npos);
  EXPECT_NE(out.find("o FCFS"), std::string::npos);
  EXPECT_NE(out.find('*'), std::string::npos);
  EXPECT_NE(out.find('o'), std::string::npos);
}

TEST(AsciiChart, ExtremesLandOnOppositeRows) {
  AsciiChart chart("line", 16, 6);
  chart.add_series("s", {0.0, 1.0}, {0.0, 100.0});
  std::istringstream is(chart.to_string());
  std::string line;
  std::getline(is, line);  // title
  std::vector<std::string> rows;
  while (std::getline(is, line)) {
    if (line.find('|') != std::string::npos) rows.push_back(line);
  }
  ASSERT_GE(rows.size(), 6u);
  // The max point renders near the top row, the min near the bottom.
  EXPECT_NE(rows.front().find('*'), std::string::npos);
  EXPECT_NE(rows[rows.size() - 1].find('*'), std::string::npos);
}

TEST(AsciiChart, AxisLabelsShowRange) {
  AsciiChart chart("r", 16, 6);
  chart.add_series("s", {2.0, 8.0}, {5.0, 15.0});
  const std::string out = chart.to_string();
  EXPECT_NE(out.find("2.00"), std::string::npos);  // x min
  EXPECT_NE(out.find("8.00"), std::string::npos);  // x max
  EXPECT_NE(out.find("5.0"), std::string::npos);   // y min
}

TEST(AsciiChart, FlatSeriesDoesNotDivideByZero) {
  AsciiChart chart("flat", 16, 6);
  chart.add_series("s", {1.0, 2.0, 3.0}, {7.0, 7.0, 7.0});
  EXPECT_FALSE(chart.to_string().empty());
}

TEST(AsciiChart, SinglePoint) {
  AsciiChart chart("dot", 16, 6);
  chart.add_series("s", {5.0}, {5.0});
  EXPECT_NE(chart.to_string().find('*'), std::string::npos);
}

TEST(AsciiChartDeath, MismatchedSeriesAborts) {
  AsciiChart chart("bad", 16, 6);
  EXPECT_DEATH(chart.add_series("s", {1.0, 2.0}, {1.0}), "mismatch");
}

}  // namespace
}  // namespace wormsched
