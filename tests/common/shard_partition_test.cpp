#include "common/shard_partition.hpp"

#include <gtest/gtest.h>

#include <cstdint>

namespace wormsched {
namespace {

// Every partition must tile [0, count) contiguously and ascending — the
// sharded tick's determinism proof rests on it (see shard_partition.hpp).
void expect_tiles(const std::vector<ShardRange>& ranges, std::uint32_t count) {
  std::uint32_t at = 0;
  for (const ShardRange& r : ranges) {
    EXPECT_EQ(r.begin, at);
    EXPECT_GT(r.end, r.begin) << "empty shard";
    at = r.end;
  }
  EXPECT_EQ(at, count);
}

TEST(ShardPartition, SplitsEvenly) {
  const auto ranges = make_shard_partition(64, 4);
  ASSERT_EQ(ranges.size(), 4u);
  for (const ShardRange& r : ranges) EXPECT_EQ(r.size(), 16u);
  expect_tiles(ranges, 64);
}

TEST(ShardPartition, RemainderGoesToTheFirstShards) {
  const auto ranges = make_shard_partition(10, 4);
  ASSERT_EQ(ranges.size(), 4u);
  EXPECT_EQ(ranges[0].size(), 3u);
  EXPECT_EQ(ranges[1].size(), 3u);
  EXPECT_EQ(ranges[2].size(), 2u);
  EXPECT_EQ(ranges[3].size(), 2u);
  expect_tiles(ranges, 10);
}

TEST(ShardPartition, MoreShardsThanItemsClampsToOnePerItem) {
  const auto ranges = make_shard_partition(3, 64);
  ASSERT_EQ(ranges.size(), 3u);
  for (const ShardRange& r : ranges) EXPECT_EQ(r.size(), 1u);
  expect_tiles(ranges, 3);
}

TEST(ShardPartition, SingleItemSingleShard) {
  const auto ranges = make_shard_partition(1, 8);
  ASSERT_EQ(ranges.size(), 1u);
  EXPECT_EQ(ranges[0], (ShardRange{0, 1}));
}

TEST(ShardPartition, ZeroItemsYieldsNoShards) {
  EXPECT_TRUE(make_shard_partition(0, 4).empty());
}

TEST(ShardPartition, ZeroShardsIsTreatedAsOne) {
  const auto ranges = make_shard_partition(7, 0);
  ASSERT_EQ(ranges.size(), 1u);
  EXPECT_EQ(ranges[0], (ShardRange{0, 7}));
}

TEST(ShardPartition, LargeUnevenSplitTilesExactly) {
  for (const std::uint32_t count : {17u, 100u, 1023u, 1024u}) {
    for (const std::uint32_t shards : {1u, 2u, 3u, 7u, 8u, 16u}) {
      const auto ranges = make_shard_partition(count, shards);
      ASSERT_LE(ranges.size(), static_cast<std::size_t>(shards));
      expect_tiles(ranges, count);
      // Balance: sizes differ by at most one.
      std::uint32_t lo = ranges[0].size(), hi = ranges[0].size();
      for (const ShardRange& r : ranges) {
        lo = std::min(lo, r.size());
        hi = std::max(hi, r.size());
      }
      EXPECT_LE(hi - lo, 1u) << count << " items, " << shards << " shards";
    }
  }
}

}  // namespace
}  // namespace wormsched
