#include "core/err.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "test_util.hpp"

namespace wormsched::core {
namespace {

using test::enqueue;
using test::per_flow_flits;
using test::pump;

TEST(ErrPolicy, FirstRoundAllowanceIsOne) {
  ErrPolicy policy(ErrConfig{3});
  for (std::uint32_t i = 0; i < 3; ++i) policy.flow_activated(FlowId(i));
  for (std::uint32_t i = 0; i < 3; ++i) {
    const FlowId f = policy.begin_opportunity();
    EXPECT_EQ(f, FlowId(i));  // ActiveList order = activation order
    EXPECT_DOUBLE_EQ(policy.allowance(), 1.0);
    policy.charge(5.0);
    policy.end_opportunity(true);
  }
  EXPECT_EQ(policy.round(), 1u);
}

TEST(ErrPolicy, SurplusCountIsSentMinusAllowance) {
  ErrPolicy policy(ErrConfig{1});
  policy.flow_activated(FlowId(0));
  (void)policy.begin_opportunity();
  policy.charge(7.0);
  policy.end_opportunity(true);
  EXPECT_DOUBLE_EQ(policy.surplus_count(FlowId(0)), 6.0);
  EXPECT_DOUBLE_EQ(policy.max_sc(), 6.0);
}

TEST(ErrPolicy, NextRoundAllowanceUsesPreviousMaxSc) {
  ErrPolicy policy(ErrConfig{2});
  policy.flow_activated(FlowId(0));
  policy.flow_activated(FlowId(1));
  // Round 1: flow 0 overshoots hard, flow 1 barely.
  (void)policy.begin_opportunity();
  policy.charge(10.0);  // SC = 9
  policy.end_opportunity(true);
  (void)policy.begin_opportunity();
  policy.charge(3.0);  // SC = 2
  policy.end_opportunity(true);
  // Round 2: A_0 = 1 + 9 - 9 = 1; A_1 = 1 + 9 - 2 = 8.
  EXPECT_EQ(policy.begin_opportunity(), FlowId(0));
  EXPECT_DOUBLE_EQ(policy.allowance(), 1.0);
  policy.charge(1.0);
  policy.end_opportunity(true);
  EXPECT_EQ(policy.begin_opportunity(), FlowId(1));
  EXPECT_DOUBLE_EQ(policy.allowance(), 8.0);
}

TEST(ErrPolicy, EmptiedFlowSurplusStillRaisesMaxSc) {
  // Pseudo-code order: MaxSC absorbs SC before the idle reset.
  ErrPolicy policy(ErrConfig{2});
  policy.flow_activated(FlowId(0));
  policy.flow_activated(FlowId(1));
  (void)policy.begin_opportunity();
  policy.charge(20.0);
  policy.end_opportunity(/*still_backlogged=*/false);  // flow 0 drained
  EXPECT_DOUBLE_EQ(policy.surplus_count(FlowId(0)), 0.0);  // reset
  EXPECT_DOUBLE_EQ(policy.max_sc(), 19.0);                 // but counted
}

TEST(ErrPolicy, DeactivatedFlowReactivatesWithZeroSc) {
  ErrPolicy policy(ErrConfig{1});
  policy.flow_activated(FlowId(0));
  (void)policy.begin_opportunity();
  policy.charge(50.0);
  policy.end_opportunity(false);
  EXPECT_FALSE(policy.has_active_flows());
  policy.flow_activated(FlowId(0));
  EXPECT_DOUBLE_EQ(policy.surplus_count(FlowId(0)), 0.0);
}

TEST(ErrPolicy, MidRoundActivationServedNextRound) {
  // Fig. 2: D activates during round 1 and is visited only in round 2.
  ErrPolicy policy(ErrConfig{4});
  for (std::uint32_t i = 0; i < 3; ++i) policy.flow_activated(FlowId(i));
  EXPECT_EQ(policy.begin_opportunity(), FlowId(0));
  policy.charge(1.0);
  policy.end_opportunity(true);
  policy.flow_activated(FlowId(3));  // D arrives mid-round
  EXPECT_EQ(policy.round(), 1u);
  EXPECT_EQ(policy.begin_opportunity(), FlowId(1));
  policy.charge(1.0);
  policy.end_opportunity(true);
  EXPECT_EQ(policy.begin_opportunity(), FlowId(2));
  policy.charge(1.0);
  policy.end_opportunity(true);
  // Round 2 begins; A, B, C were re-appended before D? No — D was appended
  // when it activated, i.e. after A but before B and C re-joined.
  EXPECT_EQ(policy.begin_opportunity(), FlowId(0));
  EXPECT_EQ(policy.round(), 2u);
  policy.charge(1.0);
  policy.end_opportunity(true);
  EXPECT_EQ(policy.begin_opportunity(), FlowId(3));
  EXPECT_EQ(policy.round(), 2u);
}

TEST(ErrPolicy, RoundRobinVisitCountSnapshotsActiveFlows) {
  ErrPolicy policy(ErrConfig{4});
  policy.flow_activated(FlowId(0));
  policy.flow_activated(FlowId(1));
  (void)policy.begin_opportunity();
  EXPECT_EQ(policy.round_robin_visit_count(), 2u);
  policy.charge(1.0);
  policy.end_opportunity(true);
  EXPECT_EQ(policy.round_robin_visit_count(), 1u);
}

TEST(ErrPolicy, PaperFaithfulKeepsStateAcrossIdle) {
  // One flow overshoots by 29 and drains; the system idles.  In the
  // pseudo-code MaxSC survives the idle gap, so the next round — opened by
  // a completely different flow — inherits PreviousMaxSC = 29 and hands it
  // an inflated allowance of 30.
  ErrPolicy policy(ErrConfig{2, /*reset_on_idle=*/false});
  policy.flow_activated(FlowId(0));
  (void)policy.begin_opportunity();
  policy.charge(30.0);
  policy.end_opportunity(false);  // system idles; MaxSC=29 retained
  EXPECT_FALSE(policy.has_active_flows());
  policy.flow_activated(FlowId(1));
  (void)policy.begin_opportunity();
  EXPECT_DOUBLE_EQ(policy.previous_max_sc(), 29.0);
  EXPECT_DOUBLE_EQ(policy.allowance(), 30.0);
}

TEST(ErrPolicy, ResetOnIdleClearsRoundState) {
  // Same scenario with the idle-reset variant: the post-idle flow starts a
  // clean slate with allowance 1.
  ErrPolicy policy(ErrConfig{2, /*reset_on_idle=*/true});
  policy.flow_activated(FlowId(0));
  (void)policy.begin_opportunity();
  policy.charge(30.0);
  policy.end_opportunity(false);
  policy.flow_activated(FlowId(1));
  (void)policy.begin_opportunity();
  EXPECT_DOUBLE_EQ(policy.previous_max_sc(), 0.0);
  EXPECT_DOUBLE_EQ(policy.allowance(), 1.0);
}

TEST(ErrPolicy, ListenerReceivesOpportunityRecords) {
  ErrPolicy policy(ErrConfig{1});
  std::vector<ErrOpportunity> records;
  policy.set_opportunity_listener(
      [&](const ErrOpportunity& r) { records.push_back(r); });
  policy.flow_activated(FlowId(0));
  (void)policy.begin_opportunity();
  policy.charge(4.0);
  policy.end_opportunity(true);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].round, 1u);
  EXPECT_EQ(records[0].flow, FlowId(0));
  EXPECT_DOUBLE_EQ(records[0].allowance, 1.0);
  EXPECT_DOUBLE_EQ(records[0].sent, 4.0);
  EXPECT_DOUBLE_EQ(records[0].surplus_count, 3.0);
}

TEST(ErrPolicyDeath, WeightBelowOneRejected) {
  ErrPolicy policy(ErrConfig{1});
  EXPECT_DEATH(policy.set_weight(FlowId(0), 0.5), "normalize");
}

// --------------------------------------------------------------------
// ErrScheduler (flit-pull frame)

TEST(ErrScheduler, SingleFlowStreamsContiguously) {
  ErrScheduler s(ErrConfig{2});
  enqueue(s, 0, 0, 4);
  const auto ems = pump(s, 6);
  ASSERT_EQ(ems.size(), 4u);
  EXPECT_TRUE(ems[0].head);
  EXPECT_TRUE(ems[3].tail);
  for (const auto& e : ems) EXPECT_EQ(e.flow, FlowId(0));
}

TEST(ErrScheduler, EqualPacketSizesRotateStrictly) {
  ErrScheduler s(ErrConfig{3});
  for (std::uint32_t f = 0; f < 3; ++f)
    for (int k = 0; k < 3; ++k) enqueue(s, 0, f, 5);
  const auto order = test::completions(pump(s, 3 * 3 * 5));
  ASSERT_EQ(order.size(), 9u);
  // Round structure: f0, f1, f2 repeated (SCs stay equal).
  for (std::size_t i = 0; i < order.size(); ++i)
    EXPECT_EQ(order[i].first, i % 3) << i;
}

TEST(ErrScheduler, ElasticOvershootRepaidNextRound) {
  // Flow 0 sends 10-flit packets, flow 1 sends 2-flit packets; per round
  // ERR serves one 10-flit packet vs five 2-flit packets (allowance 9
  // reached after the fifth), converging to equal flit shares.
  ErrScheduler s(ErrConfig{2});
  for (int k = 0; k < 40; ++k) enqueue(s, 0, 0, 10);
  for (int k = 0; k < 200; ++k) enqueue(s, 0, 1, 2);
  const auto ems = pump(s, 400);
  const auto counts = per_flow_flits(ems, 2);
  EXPECT_NEAR(static_cast<double>(counts[0]),
              static_cast<double>(counts[1]), 3.0 * 10);
}

TEST(ErrScheduler, AlwaysSendsAtLeastOnePacketPerOpportunity) {
  // Even a flow with a huge previous surplus gets allowance >= 1 and must
  // transmit one packet when visited (the do/while in Fig. 1).
  ErrScheduler s(ErrConfig{2});
  enqueue(s, 0, 0, 60);
  enqueue(s, 0, 0, 60);
  enqueue(s, 0, 1, 1);
  enqueue(s, 0, 1, 1);
  const auto order = test::completions(pump(s, 200));
  ASSERT_GE(order.size(), 3u);
  EXPECT_EQ(order[0].first, 0u);
  EXPECT_EQ(order[1].first, 1u);
  EXPECT_EQ(order[2].first, 0u);  // visited again despite SC = 59
}

TEST(ErrScheduler, WeightedFlowGetsProportionalService) {
  ErrScheduler s(ErrConfig{2});
  s.set_weight(FlowId(0), 3.0);
  for (int k = 0; k < 300; ++k) {
    enqueue(s, 0, 0, 4);
    enqueue(s, 0, 1, 4);
  }
  // 1000 cycles drains at most 750 of flow 0's 1200 queued flits, so both
  // flows stay backlogged for the whole measurement.
  const auto counts = per_flow_flits(pump(s, 1000), 2);
  const double ratio =
      static_cast<double>(counts[0]) / static_cast<double>(counts[1]);
  EXPECT_NEAR(ratio, 3.0, 0.15);
}

TEST(ErrScheduler, IdleWhenAllQueuesEmpty) {
  ErrScheduler s(ErrConfig{2});
  EXPECT_TRUE(s.idle());
  EXPECT_FALSE(s.pull_flit(0).has_value());
  enqueue(s, 1, 0, 2);
  EXPECT_FALSE(s.idle());
  (void)pump(s, 5, 1);
  EXPECT_TRUE(s.idle());
}

TEST(ErrScheduler, DoesNotRequireAprioriLength) {
  ErrScheduler s(ErrConfig{1});
  EXPECT_FALSE(s.requires_apriori_length());
}

TEST(ErrScheduler, ArrivalDuringServiceJoinsSameQueue) {
  ErrScheduler s(ErrConfig{2});
  enqueue(s, 0, 0, 6);
  auto ems = pump(s, 3);  // mid-packet
  enqueue(s, 3, 0, 2);    // arrives while flow 0 is in service
  ems = pump(s, 10, 3);
  // Both packets complete; conservation holds.
  EXPECT_EQ(test::completions(ems).size(), 2u);
  EXPECT_TRUE(s.idle());
}

}  // namespace
}  // namespace wormsched::core
