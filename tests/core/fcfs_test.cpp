#include "core/fcfs.hpp"

#include <gtest/gtest.h>

#include "test_util.hpp"

namespace wormsched::core {
namespace {

using test::enqueue;
using test::per_flow_flits;
using test::pump;

TEST(Fcfs, ServesInGlobalArrivalOrder) {
  FcfsScheduler s(3);
  enqueue(s, 0, 2, 2);
  enqueue(s, 0, 0, 2);
  enqueue(s, 0, 1, 2);
  const auto order = test::completions(pump(s, 6));
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0].first, 2u);
  EXPECT_EQ(order[1].first, 0u);
  EXPECT_EQ(order[2].first, 1u);
}

TEST(Fcfs, LaterArrivalWaitsBehindEarlierBurst) {
  FcfsScheduler s(2);
  // Flow 0 bursts 5 packets at t=0; flow 1's packet arrives at t=1 and
  // must wait for the whole burst (the unfairness the paper calls out).
  for (int k = 0; k < 5; ++k) enqueue(s, 0, 0, 4);
  auto ems = pump(s, 1);
  enqueue(s, 1, 1, 4);
  ems = pump(s, 30, 1);
  const auto order = test::completions(ems);
  ASSERT_EQ(order.size(), 6u);
  for (int k = 0; k < 5; ++k) EXPECT_EQ(order[static_cast<std::size_t>(k)].first, 0u);
  EXPECT_EQ(order[5].first, 1u);
}

TEST(Fcfs, BandwidthProportionalToInjectionRate) {
  // Interleaved arrivals, flow 0 at twice the packet rate: FCFS hands it
  // twice the bandwidth (Fig. 4(c) behaviour).
  FcfsScheduler s(2);
  Cycle t = 0;
  for (int k = 0; k < 100; ++k) {
    enqueue(s, t, 0, 8);
    enqueue(s, t, 0, 8);
    enqueue(s, t, 1, 8);
  }
  const auto counts = per_flow_flits(pump(s, 1200), 2);
  const double ratio =
      static_cast<double>(counts[0]) / static_cast<double>(counts[1]);
  EXPECT_NEAR(ratio, 2.0, 0.1);
}

TEST(Fcfs, PacketsRemainContiguous) {
  FcfsScheduler s(2);
  enqueue(s, 0, 0, 6);
  enqueue(s, 0, 1, 6);
  const auto ems = pump(s, 12);
  for (std::size_t i = 0; i < 6; ++i) EXPECT_EQ(ems[i].flow, FlowId(0));
  for (std::size_t i = 6; i < 12; ++i) EXPECT_EQ(ems[i].flow, FlowId(1));
}

TEST(Fcfs, IdleThenResume) {
  FcfsScheduler s(1);
  enqueue(s, 0, 0, 2);
  (void)pump(s, 4);
  EXPECT_TRUE(s.idle());
  enqueue(s, 10, 0, 3);
  const auto ems = pump(s, 5, 10);
  EXPECT_EQ(ems.size(), 3u);
}

}  // namespace
}  // namespace wormsched::core
