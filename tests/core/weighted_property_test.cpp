// Weighted-sharing property sweep: every weight-honouring discipline must
// deliver service shares proportional to the configured weights when all
// flows are saturated, across several weight vectors and seeds.
#include <gtest/gtest.h>

#include <string>
#include <tuple>
#include <vector>

#include "core/registry.hpp"
#include "traffic/workload.hpp"

namespace wormsched::core {
namespace {

using WeightedCase = std::tuple<std::string_view, int>;  // scheduler, case id

std::vector<double> weight_vector(int case_id) {
  switch (case_id) {
    case 0: return {1.0, 1.0, 1.0};
    case 1: return {1.0, 2.0, 4.0};
    case 2: return {1.0, 1.0, 6.0};
    default: return {2.0, 3.0, 5.0};
  }
}

class WeightedSharingTest : public ::testing::TestWithParam<WeightedCase> {};

TEST_P(WeightedSharingTest, SharesTrackWeights) {
  const auto [scheduler_name, case_id] = GetParam();
  const std::vector<double> weights = weight_vector(case_id);
  double total_weight = 0.0;
  for (const double w : weights) total_weight += w;

  SchedulerParams params;
  params.num_flows = weights.size();
  params.drr_quantum = 16;
  auto s = make_scheduler(scheduler_name, params);
  ASSERT_NE(s, nullptr);
  for (std::size_t f = 0; f < weights.size(); ++f)
    s->set_weight(FlowId(static_cast<FlowId::rep_type>(f)), weights[f]);

  // Saturate: enough packets that no flow ever drains during the run.
  Rng rng(static_cast<std::uint64_t>(case_id) * 97 + 13);
  PacketId::rep_type id = 0;
  const Cycle horizon = 60000;
  for (int k = 0; k < 8000; ++k) {
    for (std::uint32_t f = 0; f < weights.size(); ++f) {
      s->enqueue(0, Packet{.id = PacketId(id++), .flow = FlowId(f),
                           .length = rng.uniform_int(1, 12), .arrival = 0});
    }
  }
  std::vector<Flits> served(weights.size(), 0);
  for (Cycle t = 0; t < horizon; ++t) {
    const auto flit = s->pull_flit(t);
    ASSERT_TRUE(flit.has_value());
    ++served[flit->flow.index()];
  }
  for (std::size_t f = 0; f < weights.size(); ++f) {
    const double share =
        static_cast<double>(served[f]) / static_cast<double>(horizon);
    const double target = weights[f] / total_weight;
    EXPECT_NEAR(share, target, 0.05 * target + 0.005)
        << scheduler_name << " flow " << f;
  }
}

std::vector<WeightedCase> weighted_cases() {
  std::vector<WeightedCase> cases;
  // WRR qualifies here because the test's integer weights and identically
  // distributed lengths make packet-proportional == flit-proportional.
  for (const auto name :
       {"ERR", "DRR", "SRR", "WRR", "SCFQ", "STFQ", "VC", "WFQ", "WF2Q+"})
    for (int c = 0; c < 4; ++c) cases.emplace_back(name, c);
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    WeightHonouringSchedulers, WeightedSharingTest,
    ::testing::ValuesIn(weighted_cases()), [](const auto& param_info) {
      std::string name(std::get<0>(param_info.param));
      for (char& c : name) {
        if (c == '+') c = 'p';
      }
      return name + "_case" + std::to_string(std::get<1>(param_info.param));
    });

}  // namespace
}  // namespace wormsched::core
