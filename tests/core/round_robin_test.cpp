#include "core/round_robin.hpp"

#include <gtest/gtest.h>

#include "core/wrr.hpp"
#include "test_util.hpp"

namespace wormsched::core {
namespace {

using test::enqueue;
using test::per_flow_flits;
using test::pump;

TEST(ActiveFlowRing, FifoRotation) {
  ActiveFlowRing ring(3);
  ring.activate(FlowId(2));
  ring.activate(FlowId(0));
  EXPECT_EQ(ring.size(), 2u);
  EXPECT_TRUE(ring.contains(FlowId(2)));
  EXPECT_FALSE(ring.contains(FlowId(1)));
  EXPECT_EQ(ring.take_next(), FlowId(2));
  ring.activate(FlowId(2));
  EXPECT_EQ(ring.take_next(), FlowId(0));
  EXPECT_EQ(ring.take_next(), FlowId(2));
  EXPECT_TRUE(ring.empty());
}

TEST(Pbrr, OnePacketPerVisit) {
  PbrrScheduler s(2);
  enqueue(s, 0, 0, 3);
  enqueue(s, 0, 0, 3);
  enqueue(s, 0, 1, 3);
  enqueue(s, 0, 1, 3);
  const auto order = test::completions(pump(s, 12));
  ASSERT_EQ(order.size(), 4u);
  EXPECT_EQ(order[0].first, 0u);
  EXPECT_EQ(order[1].first, 1u);
  EXPECT_EQ(order[2].first, 0u);
  EXPECT_EQ(order[3].first, 1u);
}

TEST(Pbrr, LongPacketFlowStealsBandwidth) {
  // The Fig. 4(a) effect: equal packet *rates*, 2x packet sizes -> 2x
  // bandwidth under PBRR.
  PbrrScheduler s(2);
  for (int k = 0; k < 100; ++k) {
    enqueue(s, 0, 0, 20);
    enqueue(s, 0, 1, 10);
  }
  const auto counts = per_flow_flits(pump(s, 1200), 2);
  const double ratio =
      static_cast<double>(counts[0]) / static_cast<double>(counts[1]);
  EXPECT_NEAR(ratio, 2.0, 0.1);
}

TEST(Pbrr, PacketsAreContiguous) {
  PbrrScheduler s(2);
  enqueue(s, 0, 0, 5);
  enqueue(s, 0, 1, 5);
  const auto ems = pump(s, 10);
  ASSERT_EQ(ems.size(), 10u);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(ems[static_cast<std::size_t>(i)].flow, FlowId(0));
  for (int i = 5; i < 10; ++i) EXPECT_EQ(ems[static_cast<std::size_t>(i)].flow, FlowId(1));
}

TEST(Fbrr, InterleavesFlitByFlit) {
  FbrrScheduler s(2);
  enqueue(s, 0, 0, 4);
  enqueue(s, 0, 1, 4);
  const auto ems = pump(s, 8);
  ASSERT_EQ(ems.size(), 8u);
  for (std::size_t i = 0; i < 8; ++i)
    EXPECT_EQ(ems[i].flow, FlowId(static_cast<std::uint32_t>(i % 2))) << i;
}

TEST(Fbrr, PerfectFlitFairnessRegardlessOfPacketSize) {
  FbrrScheduler s(2);
  for (int k = 0; k < 10; ++k) enqueue(s, 0, 0, 50);
  for (int k = 0; k < 100; ++k) enqueue(s, 0, 1, 5);
  const auto counts = per_flow_flits(pump(s, 600), 2);
  // Both flows backlogged for all 600 cycles: difference at most 1 flit.
  EXPECT_LE(std::abs(counts[0] - counts[1]), 1);
}

TEST(Fbrr, SingleFlowGetsFullBandwidth) {
  FbrrScheduler s(3);
  enqueue(s, 0, 1, 10);
  const auto ems = pump(s, 10);
  EXPECT_EQ(ems.size(), 10u);
  EXPECT_TRUE(s.idle());
}

TEST(Fbrr, DrainedFlowLeavesRotation) {
  FbrrScheduler s(2);
  enqueue(s, 0, 0, 2);
  enqueue(s, 0, 1, 6);
  const auto ems = pump(s, 8);
  ASSERT_EQ(ems.size(), 8u);
  // After flow 0's 2 flits are gone, flow 1 gets every remaining cycle.
  const auto counts = per_flow_flits(ems, 2);
  EXPECT_EQ(counts[0], 2);
  EXPECT_EQ(counts[1], 6);
  EXPECT_TRUE(s.idle());
}

TEST(Wrr, DefaultWeightIsPlainPbrr) {
  WrrScheduler s(2);
  for (int k = 0; k < 3; ++k) {
    enqueue(s, 0, 0, 2);
    enqueue(s, 0, 1, 2);
  }
  const auto order = test::completions(pump(s, 12));
  ASSERT_EQ(order.size(), 6u);
  for (std::size_t i = 0; i < order.size(); ++i)
    EXPECT_EQ(order[i].first, i % 2);
}

TEST(Wrr, WeightedVisitServesMultiplePackets) {
  WrrScheduler s(2);
  s.set_weight(FlowId(0), 3.0);
  for (int k = 0; k < 6; ++k) enqueue(s, 0, 0, 2);
  for (int k = 0; k < 2; ++k) enqueue(s, 0, 1, 2);
  const auto order = test::completions(pump(s, 16));
  ASSERT_EQ(order.size(), 8u);
  // Visit pattern: 0,0,0, 1, 0,0,0, 1.
  const std::vector<std::uint32_t> expected = {0, 0, 0, 1, 0, 0, 0, 1};
  for (std::size_t i = 0; i < order.size(); ++i)
    EXPECT_EQ(order[i].first, expected[i]) << i;
}

TEST(Wrr, InheritsPbrrLengthUnfairness) {
  // Equal packet rates, 4x packet sizes -> 4x bandwidth: packet-fair,
  // byte-unfair (why WRR/PBRR cannot replace ERR).
  WrrScheduler s(2);
  for (int k = 0; k < 100; ++k) {
    enqueue(s, 0, 0, 16);
    enqueue(s, 0, 1, 4);
  }
  const auto counts = per_flow_flits(pump(s, 1500), 2);
  EXPECT_NEAR(static_cast<double>(counts[0]) / static_cast<double>(counts[1]),
              4.0, 0.2);
}

TEST(Wrr, DrainsAndIdles) {
  WrrScheduler s(3);
  s.set_weight(FlowId(1), 2.0);
  for (std::uint32_t f = 0; f < 3; ++f)
    for (int k = 0; k < 3; ++k) enqueue(s, 0, f, 5);
  (void)pump(s, 3 * 3 * 5 + 3);
  EXPECT_TRUE(s.idle());
}

TEST(Fbrr, CompletionsInterleaveAcrossFlows) {
  // Packet completion ordering differs from PBRR: short packets of one
  // flow complete while another flow's long packet is still in flight.
  FbrrScheduler s(2);
  enqueue(s, 0, 0, 10);
  enqueue(s, 0, 1, 2);
  enqueue(s, 0, 1, 2);
  const auto order = test::completions(pump(s, 14));
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0].first, 1u);
  EXPECT_EQ(order[1].first, 1u);
  EXPECT_EQ(order[2].first, 0u);
}

}  // namespace
}  // namespace wormsched::core
