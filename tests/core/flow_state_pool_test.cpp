// SoA pool primitives under the million-flow scheduler core.
//
// ActiveFifo is fuzzed against a std::deque + membership-flag model (the
// seed's intrusive-list semantics), PacketQueuePool against per-flow
// std::deque<Packet> queues — the pre-pool state layouts the SoA
// migration replaced.  Exact FIFO order is the observable round-robin
// order, so the differentials compare order, not just membership.
#include <gtest/gtest.h>

#include <deque>
#include <vector>

#include "common/rng.hpp"
#include "common/snapshot.hpp"
#include "core/flow_state_pool.hpp"

namespace wormsched::core {
namespace {

TEST(ActiveFifo, PreservesActivationOrder) {
  ActiveFifo fifo(8);
  fifo.push_back(5);
  fifo.push_back(2);
  fifo.push_back(7);
  EXPECT_EQ(fifo.size(), 3u);
  EXPECT_TRUE(fifo.contains(2));
  EXPECT_FALSE(fifo.contains(3));
  EXPECT_EQ(fifo.front(), 5u);
  EXPECT_EQ(fifo.pop_front(), 5u);
  fifo.push_back(5);  // re-activation goes to the back
  EXPECT_EQ(fifo.pop_front(), 2u);
  EXPECT_EQ(fifo.pop_front(), 7u);
  EXPECT_EQ(fifo.pop_front(), 5u);
  EXPECT_TRUE(fifo.empty());
}

TEST(ActiveFifo, DifferentialFuzzAgainstDequeModel) {
  const std::uint32_t n = 61;
  ActiveFifo fifo(n);
  std::deque<std::uint32_t> model;
  std::vector<bool> linked(n, false);
  Rng rng(77);
  for (int op = 0; op < 100'000; ++op) {
    const std::uint64_t kind = rng.uniform_u64(100);
    if (kind < 50) {
      const auto flow = static_cast<std::uint32_t>(rng.uniform_u64(n));
      if (!linked[flow]) {
        fifo.push_back(flow);
        model.push_back(flow);
        linked[flow] = true;
      }
      ASSERT_TRUE(fifo.contains(flow));
    } else if (kind < 95) {
      if (!model.empty()) {
        ASSERT_EQ(fifo.front(), model.front());
        ASSERT_EQ(fifo.pop_front(), model.front());
        linked[model.front()] = false;
        model.pop_front();
      } else {
        ASSERT_TRUE(fifo.empty());
      }
    } else if (kind < 99) {
      ASSERT_EQ(fifo.size(), model.size());
    } else {
      fifo.clear();
      model.clear();
      linked.assign(n, false);
    }
  }
  while (!model.empty()) {
    ASSERT_EQ(fifo.pop_front(), model.front());
    model.pop_front();
  }
  EXPECT_TRUE(fifo.empty());
}

TEST(ActiveFifo, SaveRestoreRoundTripsOrder) {
  ActiveFifo fifo(16);
  for (const std::uint32_t f : {9u, 1u, 14u, 0u}) fifo.push_back(f);
  SnapshotWriter w;
  fifo.save(w);

  ActiveFifo restored(16);
  restored.push_back(3);  // stale state the restore must discard
  SnapshotReader r(w.bytes().data(), w.bytes().size());
  restored.restore(r, "test list");
  EXPECT_EQ(restored.size(), 4u);
  EXPECT_FALSE(restored.contains(3));
  for (const std::uint32_t f : {9u, 1u, 14u, 0u})
    EXPECT_EQ(restored.pop_front(), f);
}

TEST(ActiveFifo, RestoreRejectsOutOfRangeFlow) {
  ActiveFifo fifo(32);
  fifo.push_back(31);
  SnapshotWriter w;
  fifo.save(w);
  ActiveFifo small(8);
  SnapshotReader r(w.bytes().data(), w.bytes().size());
  EXPECT_THROW(small.restore(r, "test list"), SnapshotError);
}

Packet make_packet(std::uint64_t id, std::uint32_t flow, Flits length,
                   Cycle arrival) {
  Packet p;
  p.id = PacketId(id);
  p.flow = FlowId(flow);
  p.length = length;
  p.arrival = arrival;
  return p;
}

TEST(PacketQueuePool, DifferentialFuzzAgainstPerFlowDeques) {
  const std::size_t flows = 23;
  PacketQueuePool pool(flows);
  std::vector<std::deque<Packet>> model(flows);
  Rng rng(12345);
  std::uint64_t next_id = 0;
  for (int op = 0; op < 100'000; ++op) {
    const std::size_t flow = rng.uniform_u64(flows);
    if (rng.uniform_u64(100) < 55) {
      const Packet p =
          make_packet(next_id++, static_cast<std::uint32_t>(flow),
                      static_cast<Flits>(1 + rng.uniform_u64(64)),
                      static_cast<Cycle>(op));
      pool.push_back(flow, p);
      model[flow].push_back(p);
    } else if (!model[flow].empty()) {
      const Packet& expect = model[flow].front();
      ASSERT_EQ(pool.head_length(flow), expect.length);
      ASSERT_EQ(pool.head_id(flow), expect.id);
      const Packet got = pool.pop_front(flow);
      ASSERT_EQ(got.id, expect.id);
      ASSERT_EQ(got.flow.index(), flow);
      ASSERT_EQ(got.length, expect.length);
      ASSERT_EQ(got.arrival, expect.arrival);
      model[flow].pop_front();
    } else {
      ASSERT_TRUE(pool.empty(flow));
    }
    ASSERT_EQ(pool.size(flow), model[flow].size());
  }
}

TEST(PacketQueuePool, NodesAreRecycledAcrossFlows) {
  // Freelist check: churning one flow then another reuses the same
  // nodes — the steady-state footprint is the high-water mark, not the
  // total packet count (the zero-allocation claim's mechanism).
  PacketQueuePool pool(2);
  for (int round = 0; round < 1'000; ++round) {
    const std::size_t flow = round & 1;
    for (std::uint64_t i = 0; i < 8; ++i)
      pool.push_back(flow, make_packet(i, static_cast<std::uint32_t>(flow),
                                       4, 0));
    for (std::uint64_t i = 0; i < 8; ++i)
      EXPECT_EQ(pool.pop_front(flow).id, PacketId(i));
    EXPECT_TRUE(pool.empty(flow));
  }
}

TEST(PacketQueuePool, StampsFollowTheirPackets) {
  PacketQueuePool pool(1);
  for (std::uint64_t i = 0; i < 5; ++i) {
    pool.push_back(0, make_packet(i, 0, 1, 0));
    pool.set_tail_stamp(0, static_cast<double>(10 * i));
  }
  EXPECT_EQ(pool.head_stamp(0), 0.0);
  (void)pool.pop_front(0);
  EXPECT_EQ(pool.head_stamp(0), 10.0);
  std::vector<double> stamps;
  pool.for_each_stamp(0, [&](double s) { stamps.push_back(s); });
  EXPECT_EQ(stamps, (std::vector<double>{10.0, 20.0, 30.0, 40.0}));
  int next = 0;
  pool.assign_stamps(0, 4, [&] { return static_cast<double>(next++); });
  EXPECT_EQ(pool.head_stamp(0), 0.0);
}

TEST(PacketQueuePool, SaveRestoreRoundTripsQueues) {
  PacketQueuePool pool(3);
  pool.push_back(0, make_packet(1, 0, 7, 10));
  pool.push_back(0, make_packet(2, 0, 3, 11));
  pool.push_back(2, make_packet(3, 2, 9, 12));
  SnapshotWriter w;
  for (std::size_t f = 0; f < 3; ++f) pool.save_flow(w, f);

  PacketQueuePool restored(3);
  restored.push_back(1, make_packet(99, 1, 1, 0));  // must be replaced
  SnapshotReader r(w.bytes().data(), w.bytes().size());
  for (std::size_t f = 0; f < 3; ++f) restored.restore_flow(r, f);
  EXPECT_EQ(restored.size(0), 2u);
  EXPECT_EQ(restored.size(1), 0u);
  EXPECT_EQ(restored.size(2), 1u);
  EXPECT_EQ(restored.pop_front(0).id, PacketId(1));
  EXPECT_EQ(restored.pop_front(0).length, 3);
  EXPECT_EQ(restored.pop_front(2).arrival, 12u);
}

TEST(FlowStatePool, RowsRoundTripThroughLegacyLayout) {
  FlowStatePool pool(4, 1.0);
  pool.set_sc(1, 2.5);
  pool.set_weight(3, 4.0);
  pool.active().push_back(3);
  pool.active().push_back(1);
  SnapshotWriter w;
  pool.save_rows(w);
  pool.active().save(w);

  FlowStatePool restored(4, 1.0);
  restored.set_sc(0, 9.0);  // stale state the restore must overwrite
  SnapshotReader r(w.bytes().data(), w.bytes().size());
  restored.restore_rows(r, "TEST");
  restored.active().restore(r, "TEST ActiveList");
  EXPECT_EQ(restored.sc(0), 0.0);
  EXPECT_EQ(restored.sc(1), 2.5);
  EXPECT_EQ(restored.weight(3), 4.0);
  EXPECT_EQ(restored.active().pop_front(), 3u);
  EXPECT_EQ(restored.active().pop_front(), 1u);
}

TEST(FlowStatePool, RestoreRejectsFlowCountMismatch) {
  FlowStatePool pool(8, 1.0);
  SnapshotWriter w;
  pool.save_rows(w);
  FlowStatePool other(4, 1.0);
  SnapshotReader r(w.bytes().data(), w.bytes().size());
  EXPECT_THROW(other.restore_rows(r, "TEST"), SnapshotError);
}

}  // namespace
}  // namespace wormsched::core
