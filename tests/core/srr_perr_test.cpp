// Tests for the two extension disciplines: Surplus Round Robin and
// Prioritized ERR.
#include <gtest/gtest.h>

#include "core/perr.hpp"
#include "core/srr.hpp"
#include "test_util.hpp"

namespace wormsched::core {
namespace {

using test::enqueue;
using test::per_flow_flits;
using test::pump;

TEST(Srr, DoesNotRequireAprioriLength) {
  SrrScheduler s(SrrConfig{2, 16});
  EXPECT_FALSE(s.requires_apriori_length());
}

TEST(Srr, CreditGoesNegativeOnOvershoot) {
  SrrScheduler s(SrrConfig{2, 4});
  enqueue(s, 0, 0, 10);  // one packet far larger than the quantum
  enqueue(s, 0, 0, 1);
  (void)pump(s, 10);
  // Visit: credit 4, packet of 10 -> credit -6 (elastic overshoot).
  EXPECT_DOUBLE_EQ(s.credit(FlowId(0)), -6.0);
}

TEST(Srr, NegativeCreditThrottlesFutureRounds) {
  // Flow 0 overshoots with a 12-flit packet (quantum 4); it then needs
  // three visits of credit before its next packet may start, during which
  // flow 1 catches up.
  SrrScheduler s(SrrConfig{2, 4});
  enqueue(s, 0, 0, 12);
  for (int k = 0; k < 10; ++k) enqueue(s, 0, 0, 4);
  for (int k = 0; k < 20; ++k) enqueue(s, 0, 1, 4);
  const auto counts = per_flow_flits(pump(s, 80), 2);
  EXPECT_NEAR(static_cast<double>(counts[0]),
              static_cast<double>(counts[1]), 12.0 + 4.0);
}

TEST(Srr, LongRunFairnessAcrossUnequalPacketSizes) {
  SrrScheduler s(SrrConfig{2, 16});
  for (int k = 0; k < 60; ++k) enqueue(s, 0, 0, 20);
  for (int k = 0; k < 600; ++k) enqueue(s, 0, 1, 2);
  const auto counts = per_flow_flits(pump(s, 2000), 2);
  EXPECT_NEAR(static_cast<double>(counts[0]),
              static_cast<double>(counts[1]), 2.0 * 20 + 16);
}

TEST(Srr, DeepDebtDefersButDoesNotStarve) {
  SrrScheduler s(SrrConfig{2, 1});
  enqueue(s, 0, 0, 30);  // overshoot: credit 1 - 30 = -29
  enqueue(s, 0, 0, 30);
  enqueue(s, 0, 1, 1);
  enqueue(s, 0, 1, 1);
  const auto order = test::completions(pump(s, 100));
  ASSERT_EQ(order.size(), 4u);
  // Flow 1 drains both packets while flow 0 repays its debt, but flow 0
  // eventually gets served again (no permanent starvation).
  EXPECT_EQ(order[0].first, 0u);
  EXPECT_EQ(order[1].first, 1u);
  EXPECT_EQ(order[2].first, 1u);
  EXPECT_EQ(order[3].first, 0u);
}

TEST(Srr, WeightScalesQuantum) {
  SrrScheduler s(SrrConfig{2, 8});
  s.set_weight(FlowId(0), 3.0);
  for (int k = 0; k < 300; ++k) {
    enqueue(s, 0, 0, 4);
    enqueue(s, 0, 1, 4);
  }
  const auto counts = per_flow_flits(pump(s, 1000), 2);
  EXPECT_NEAR(static_cast<double>(counts[0]) / static_cast<double>(counts[1]),
              3.0, 0.25);
}

TEST(Srr, IdleFlowForfeitsCredit) {
  SrrScheduler s(SrrConfig{2, 4});
  enqueue(s, 0, 0, 10);
  (void)pump(s, 12);
  EXPECT_TRUE(s.idle());
  // Reactivation resets the -6 credit to 0.
  enqueue(s, 20, 0, 2);
  (void)pump(s, 4, 20);
  EXPECT_DOUBLE_EQ(s.credit(FlowId(0)), 0.0);  // reset, then 4-2 -> ...
}

// ---------------------------------------------------------------------
// PERR

TEST(Perr, DefaultIsSingleClassErr) {
  PerrScheduler s(PerrConfig{3, {}, false});
  EXPECT_EQ(s.num_classes(), 1u);
  for (std::uint32_t f = 0; f < 3; ++f)
    for (int k = 0; k < 2; ++k) enqueue(s, 0, f, 5);
  const auto order = test::completions(pump(s, 30));
  ASSERT_EQ(order.size(), 6u);
  for (std::size_t i = 0; i < order.size(); ++i)
    EXPECT_EQ(order[i].first, i % 3);
}

TEST(Perr, HighPriorityClassPreemptsAtPacketBoundary) {
  // Flows 0,1 in class 1 (low); flow 2 in class 0 (high).
  PerrScheduler s(PerrConfig{3, {1, 1, 0}, false});
  enqueue(s, 0, 0, 6);
  enqueue(s, 0, 1, 6);
  auto ems = pump(s, 3);  // class 1 starts serving flow 0 mid-packet
  enqueue(s, 3, 2, 4);    // high-priority packet arrives
  ems = pump(s, 20, 3);
  const auto order = test::completions(ems);
  ASSERT_EQ(order.size(), 3u);
  // Flow 0's packet completes (no interleaving!), then the high class
  // preempts flow 1 even though class 1's rotation would serve it next.
  EXPECT_EQ(order[0].first, 0u);
  EXPECT_EQ(order[1].first, 2u);
  EXPECT_EQ(order[2].first, 1u);
}

TEST(Perr, HighClassSaturationStarvesLowClass) {
  // Strict priority: a saturated class 0 takes everything.  (Starvation
  // protection across classes is the operator's job — the point of PERR
  // is isolation of latency classes.)
  PerrScheduler s(PerrConfig{2, {0, 1}, false});
  for (int k = 0; k < 20; ++k) enqueue(s, 0, 0, 5);
  enqueue(s, 0, 1, 5);
  const auto ems = pump(s, 50);
  const auto counts = per_flow_flits(ems, 2);
  EXPECT_EQ(counts[1], 0);
}

TEST(Perr, FairWithinEachClass) {
  PerrScheduler s(PerrConfig{4, {0, 0, 1, 1}, false});
  // Class 0 lightly loaded; class 1 saturated with unequal packet sizes.
  for (int k = 0; k < 5; ++k) {
    enqueue(s, 0, 0, 2);
    enqueue(s, 0, 1, 2);
  }
  for (int k = 0; k < 30; ++k) enqueue(s, 0, 2, 12);
  for (int k = 0; k < 120; ++k) enqueue(s, 0, 3, 3);
  const auto counts = per_flow_flits(pump(s, 600), 4);
  // Class 0 fully served.
  EXPECT_EQ(counts[0], 10);
  EXPECT_EQ(counts[1], 10);
  // Class 1 split fairly despite the 4x packet-size asymmetry.
  EXPECT_NEAR(static_cast<double>(counts[2]),
              static_cast<double>(counts[3]), 3.0 * 12);
}

TEST(Perr, LowClassOpportunityResumesAfterPreemption) {
  // Class 1's flow has an allowance that spans several packets; a class-0
  // packet intervenes mid-opportunity, then the class-1 opportunity
  // resumes with its allowance intact (elastic accounting is preserved).
  PerrScheduler s(PerrConfig{3, {1, 1, 0}, false});
  // Round 1: flow 0 overshoots (10 >> 1), flow 1 sends 1.
  enqueue(s, 0, 0, 10);
  enqueue(s, 0, 1, 1);
  for (int k = 0; k < 12; ++k) enqueue(s, 0, 1, 1);
  auto ems = pump(s, 12);  // flow 0's 10 + flow 1's first two packets
  // Round 2 gives flow 1 allowance 1+9-0=10; let it start, then preempt.
  enqueue(s, 12, 2, 5);
  ems = pump(s, 30, 12);
  const auto counts = per_flow_flits(ems, 3);
  EXPECT_EQ(counts[2], 5);              // high class served
  EXPECT_GE(counts[1], 9);              // flow 1 still got its allowance
}

TEST(PerrDeath, MismatchedPriorityVectorAborts) {
  EXPECT_DEATH(PerrScheduler(PerrConfig{3, {0, 1}, false}),
               "one entry per flow");
}

}  // namespace
}  // namespace wormsched::core
