// Golden-trace test in the style of the paper's Fig. 3: three continuously
// backlogged flows with scripted packet sizes, checked opportunity by
// opportunity against hand-computed allowances, surplus counts and MaxSC.
//
// Hand computation (paper Eqs. (1) and (2)):
//   Round 1 (PrevMaxSC = 0, A = 1 for everyone):
//     F0 sends 32 -> SC 31;  F1 sends 24 -> SC 23;  F2 sends 12 -> SC 11
//     MaxSC(1) = 31
//   Round 2 (PrevMaxSC = 31):
//     F0: A = 1+31-31 = 1,  sends 16          -> SC 15
//     F1: A = 1+31-23 = 9,  sends 8+8  = 16   -> SC 7
//     F2: A = 1+31-11 = 21, sends 20+4 = 24   -> SC 3
//     MaxSC(2) = 15
//   Round 3 (PrevMaxSC = 15):
//     F0: A = 1+15-15 = 1,  sends 8           -> SC 7
//     F1: A = 1+15-7  = 9,  sends 8+8  = 16   -> SC 7
//     F2: A = 1+15-3  = 13, sends 6+6+6 = 18  -> SC 5
#include <gtest/gtest.h>

#include <vector>

#include "core/err.hpp"
#include "test_util.hpp"

namespace wormsched::core {
namespace {

struct Expected {
  std::size_t round;
  std::uint32_t flow;
  double allowance;
  double sent;
  double surplus;
  double max_sc_so_far;
};

TEST(ErrTrace, ThreeRoundWorkedExample) {
  ErrScheduler s(ErrConfig{3});
  std::vector<ErrOpportunity> log;
  s.policy().set_opportunity_listener(
      [&](const ErrOpportunity& r) { log.push_back(r); });

  const std::vector<Flits> f0 = {32, 16, 8, 1};
  const std::vector<Flits> f1 = {24, 8, 8, 8, 8, 1};
  const std::vector<Flits> f2 = {12, 20, 4, 6, 6, 6, 1};
  for (const Flits len : f0) test::enqueue(s, 0, 0, len);
  for (const Flits len : f1) test::enqueue(s, 0, 1, len);
  for (const Flits len : f2) test::enqueue(s, 0, 2, len);

  // Rounds 1-3 transmit 68 + 56 + 42 = 166 flits.
  (void)test::pump(s, 166);

  const std::vector<Expected> expected = {
      {1, 0, 1, 32, 31, 31},  //
      {1, 1, 1, 24, 23, 31},  //
      {1, 2, 1, 12, 11, 31},  //
      {2, 0, 1, 16, 15, 15},  //
      {2, 1, 9, 16, 7, 15},   //
      {2, 2, 21, 24, 3, 15},  //
      {3, 0, 1, 8, 7, 7},     //
      {3, 1, 9, 16, 7, 7},    //
      {3, 2, 13, 18, 5, 7},   //
  };
  ASSERT_GE(log.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    SCOPED_TRACE(i);
    EXPECT_EQ(log[i].round, expected[i].round);
    EXPECT_EQ(log[i].flow, FlowId(expected[i].flow));
    EXPECT_DOUBLE_EQ(log[i].allowance, expected[i].allowance);
    EXPECT_DOUBLE_EQ(log[i].sent, expected[i].sent);
    EXPECT_DOUBLE_EQ(log[i].surplus_count, expected[i].surplus);
    EXPECT_DOUBLE_EQ(log[i].max_sc_so_far, expected[i].max_sc_so_far);
  }
}

TEST(ErrTrace, FlowsStarvedOneRoundCatchUpNext) {
  // The paper's remark on Fig. 3: "flows which receive very little service
  // in a round are given an opportunity to receive proportionately more
  // service in the next round."  Quantify it: flow with smallest Sent in
  // round r has the largest allowance in round r+1.
  ErrScheduler s(ErrConfig{2});
  std::vector<ErrOpportunity> log;
  s.policy().set_opportunity_listener(
      [&](const ErrOpportunity& r) { log.push_back(r); });
  // Flow 0: big packets; flow 1: unit packets.
  for (int k = 0; k < 10; ++k) test::enqueue(s, 0, 0, 40);
  for (int k = 0; k < 200; ++k) test::enqueue(s, 0, 1, 1);
  (void)test::pump(s, 170);

  ASSERT_GE(log.size(), 4u);
  // Round 1: F0 sent 40 (SC 39), F1 sent 1 (SC 0).
  EXPECT_DOUBLE_EQ(log[0].sent, 40.0);
  EXPECT_DOUBLE_EQ(log[1].sent, 1.0);
  // Round 2: F1's allowance is 1 + 39 - 0 = 40 -> it catches up in full.
  EXPECT_EQ(log[3].flow, FlowId(1));
  EXPECT_DOUBLE_EQ(log[3].allowance, 40.0);
  EXPECT_DOUBLE_EQ(log[3].sent, 40.0);
}

}  // namespace
}  // namespace wormsched::core
