// WFQ (PGPS) and WF2Q+ tests.
#include <gtest/gtest.h>

#include "core/wf2q.hpp"
#include "core/wfq.hpp"
#include "test_util.hpp"

namespace wormsched::core {
namespace {

using test::enqueue;
using test::per_flow_flits;
using test::pump;

TEST(Wfq, DeclaresAprioriLengthRequirement) {
  WfqScheduler s(2);
  EXPECT_TRUE(s.requires_apriori_length());
}

TEST(Wfq, EqualBacklogSharesEqually) {
  WfqScheduler s(2);
  for (int k = 0; k < 100; ++k) {
    enqueue(s, 0, 0, 5);
    enqueue(s, 0, 1, 5);
  }
  const auto counts = per_flow_flits(pump(s, 600), 2);
  EXPECT_NEAR(static_cast<double>(counts[0]),
              static_cast<double>(counts[1]), 10.0);
}

TEST(Wfq, WeightedSharing) {
  WfqScheduler s(2);
  s.set_weight(FlowId(0), 2.0);
  for (int k = 0; k < 300; ++k) {
    enqueue(s, 0, 0, 4);
    enqueue(s, 0, 1, 4);
  }
  const auto counts = per_flow_flits(pump(s, 1600), 2);
  EXPECT_NEAR(static_cast<double>(counts[0]) / static_cast<double>(counts[1]),
              2.0, 0.15);
}

TEST(Wfq, VirtualTimeAdvancesWithArrivals) {
  WfqScheduler s(2);
  enqueue(s, 0, 0, 10);
  EXPECT_DOUBLE_EQ(s.virtual_time(), 0.0);
  (void)pump(s, 5);
  // V updates lazily at arrivals; an arrival at t=20 (after the 10-flit
  // GPS departure at virtual 10 with phi=1) must advance V past 10.
  enqueue(s, 20, 1, 5);
  EXPECT_GE(s.virtual_time(), 10.0);
}

TEST(Wfq, IdleFlowIsNotPunished) {
  // Unlike Virtual Clock, WFQ restarts an idle flow from current virtual
  // time: a flow that used the idle system keeps no debt.
  WfqScheduler s(2);
  for (int k = 0; k < 20; ++k) enqueue(s, 0, 0, 10);
  (void)pump(s, 200);
  for (int k = 0; k < 20; ++k) {
    enqueue(s, 200, 0, 10);
    enqueue(s, 200, 1, 10);
  }
  const auto counts = per_flow_flits(pump(s, 200, 200), 2);
  EXPECT_NEAR(static_cast<double>(counts[0]),
              static_cast<double>(counts[1]), 20.0);
}

TEST(Wfq, LateArrivalIntoLongBacklogFinishesFairly) {
  WfqScheduler s(2);
  // Flow 0 queues 400 flits at t=0; flow 1 arrives at t=100 with 30 flits.
  for (int k = 0; k < 8; ++k) enqueue(s, 0, 0, 50);
  auto ems = pump(s, 100);
  for (int k = 0; k < 15; ++k) enqueue(s, 100, 1, 2);
  ems = pump(s, 120, 100);
  // From t=100 GPS serves both at 1/2; flow 1's 30 flits finish by
  // ~t=160 in GPS, so within this 120-cycle window flow 1 must complete
  // all 30 flits (up to one packet of slack for PGPS).
  const auto counts = per_flow_flits(ems, 2);
  EXPECT_EQ(counts[1], 30);
}

TEST(Wf2qPlus, EqualBacklogSharesEqually) {
  Wf2qPlusScheduler s(2);
  for (int k = 0; k < 100; ++k) {
    enqueue(s, 0, 0, 5);
    enqueue(s, 0, 1, 5);
  }
  const auto counts = per_flow_flits(pump(s, 600), 2);
  EXPECT_NEAR(static_cast<double>(counts[0]),
              static_cast<double>(counts[1]), 10.0);
}

TEST(Wf2qPlus, WeightedSharing) {
  Wf2qPlusScheduler s(2);
  s.set_weight(FlowId(0), 3.0);
  for (int k = 0; k < 300; ++k) {
    enqueue(s, 0, 0, 4);
    enqueue(s, 0, 1, 4);
  }
  const auto counts = per_flow_flits(pump(s, 1600), 2);
  EXPECT_NEAR(static_cast<double>(counts[0]) / static_cast<double>(counts[1]),
              3.0, 0.2);
}

TEST(Wf2qPlus, EligibilityPreventsRunAhead) {
  // Worst-case-fairness: with equal weights and equal unit packets, the
  // service alternates strictly — no flow ever leads by more than one
  // packet, which plain WFQ does not guarantee in general.
  Wf2qPlusScheduler s(2);
  for (int k = 0; k < 50; ++k) {
    enqueue(s, 0, 0, 2);
    enqueue(s, 0, 1, 2);
  }
  const auto ems = pump(s, 200);
  Flits lead = 0;
  Flits max_lead = 0;
  for (const auto& e : ems) {
    lead += e.flow == FlowId(0) ? 1 : -1;
    max_lead = std::max(max_lead, std::abs(lead));
  }
  EXPECT_LE(max_lead, 2);
}

TEST(Wf2qPlus, SingleFlowUsesFullLink) {
  Wf2qPlusScheduler s(3);
  for (int k = 0; k < 10; ++k) enqueue(s, 0, 2, 7);
  const auto ems = pump(s, 70);
  EXPECT_EQ(ems.size(), 70u);
  EXPECT_TRUE(s.idle());
}

TEST(Wf2qPlus, DrainsAndResumes) {
  Wf2qPlusScheduler s(2);
  enqueue(s, 0, 0, 5);
  (void)pump(s, 10);
  EXPECT_TRUE(s.idle());
  enqueue(s, 50, 1, 5);
  enqueue(s, 50, 0, 5);
  (void)pump(s, 12, 50);
  EXPECT_TRUE(s.idle());
}

}  // namespace
}  // namespace wormsched::core
