#include "core/drr.hpp"

#include <gtest/gtest.h>

#include "test_util.hpp"

namespace wormsched::core {
namespace {

using test::enqueue;
using test::per_flow_flits;
using test::pump;

TEST(DrrPolicy, DeficitAccumulatesByQuantum) {
  DrrPolicy policy(DrrConfig{2, 5});
  policy.flow_activated(FlowId(0));
  (void)policy.begin_opportunity();
  EXPECT_DOUBLE_EQ(policy.deficit(FlowId(0)), 5.0);
  EXPECT_TRUE(policy.may_serve(5));
  EXPECT_FALSE(policy.may_serve(6));
  policy.charge(3);
  EXPECT_DOUBLE_EQ(policy.deficit(FlowId(0)), 2.0);
  policy.end_opportunity(true);
  (void)policy.begin_opportunity();
  EXPECT_DOUBLE_EQ(policy.deficit(FlowId(0)), 7.0);
  policy.end_opportunity(true);
}

TEST(DrrPolicy, IdleFlowForfeitsDeficit) {
  DrrPolicy policy(DrrConfig{1, 10});
  policy.flow_activated(FlowId(0));
  (void)policy.begin_opportunity();
  policy.charge(2);
  policy.end_opportunity(/*still_backlogged=*/false);
  EXPECT_DOUBLE_EQ(policy.deficit(FlowId(0)), 0.0);
}

TEST(DrrScheduler, DeclaresAprioriLengthRequirement) {
  DrrScheduler s(DrrConfig{1, 64});
  EXPECT_TRUE(s.requires_apriori_length());
}

TEST(DrrScheduler, PacketLargerThanDeficitWaitsForNextVisit) {
  // Quantum 5, packet of 8: the flow needs two visits before it may send.
  DrrScheduler s(DrrConfig{2, 5});
  enqueue(s, 0, 0, 8);
  enqueue(s, 0, 1, 3);
  enqueue(s, 0, 1, 3);
  const auto order = test::completions(pump(s, 20));
  ASSERT_EQ(order.size(), 3u);
  // Visit 1: flow 0 banks deficit 5 (8 > 5, nothing sent).  Flow 1 sends
  // one 3 (deficit 5 -> 2; next 3 > 2 ends the visit).  Visit 2: flow 0's
  // deficit reaches 10 and the 8 goes; then flow 1's second 3.
  EXPECT_EQ(order[0].first, 1u);
  EXPECT_EQ(order[1].first, 0u);
  EXPECT_EQ(order[2].first, 1u);
}

TEST(DrrScheduler, ServesMultiplePacketsWithinQuantum) {
  DrrScheduler s(DrrConfig{2, 10});
  for (int k = 0; k < 5; ++k) enqueue(s, 0, 0, 3);
  enqueue(s, 0, 1, 10);
  const auto order = test::completions(pump(s, 40));
  ASSERT_EQ(order.size(), 6u);
  // Flow 0 fits three 3-flit packets in its quantum of 10 (deficit 10 ->
  // 7 -> 4 -> 1), then flow 1 sends its 10.
  EXPECT_EQ(order[0].first, 0u);
  EXPECT_EQ(order[1].first, 0u);
  EXPECT_EQ(order[2].first, 0u);
  EXPECT_EQ(order[3].first, 1u);
}

TEST(DrrScheduler, LongRunFairnessAcrossUnequalPacketSizes) {
  DrrScheduler s(DrrConfig{2, 64});
  for (int k = 0; k < 50; ++k) enqueue(s, 0, 0, 40);
  for (int k = 0; k < 500; ++k) enqueue(s, 0, 1, 4);
  const auto counts = per_flow_flits(pump(s, 1500), 2);
  EXPECT_NEAR(static_cast<double>(counts[0]),
              static_cast<double>(counts[1]), 2.0 * 64);
}

TEST(DrrScheduler, WeightScalesQuantum) {
  DrrScheduler s(DrrConfig{2, 16});
  s.set_weight(FlowId(0), 2.0);
  for (int k = 0; k < 200; ++k) {
    enqueue(s, 0, 0, 8);
    enqueue(s, 0, 1, 8);
  }
  const auto counts = per_flow_flits(pump(s, 1200), 2);
  const double ratio =
      static_cast<double>(counts[0]) / static_cast<double>(counts[1]);
  EXPECT_NEAR(ratio, 2.0, 0.2);
}

TEST(DrrScheduler, DrainsCompletely) {
  DrrScheduler s(DrrConfig{3, 64});
  for (std::uint32_t f = 0; f < 3; ++f)
    for (int k = 0; k < 4; ++k) enqueue(s, 0, f, 7);
  (void)pump(s, 3 * 4 * 7 + 5);
  EXPECT_TRUE(s.idle());
  EXPECT_EQ(s.backlog_flits(), 0);
}

TEST(DrrScheduler, TinyQuantumStillMakesProgress) {
  // Quantum 1 with 64-flit packets: 64 visits of banked deficit per
  // packet; correctness (not O(1) work) must survive.
  DrrScheduler s(DrrConfig{2, 1});
  enqueue(s, 0, 0, 8);
  enqueue(s, 0, 1, 8);
  (void)pump(s, 30);
  EXPECT_TRUE(s.idle());
}

}  // namespace
}  // namespace wormsched::core
