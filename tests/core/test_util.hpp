// Shared helpers for driving schedulers in core tests.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/packet.hpp"
#include "core/scheduler.hpp"

namespace wormsched::core::test {

struct Emission {
  Cycle cycle;
  FlowId flow;
  PacketId packet;
  bool head;
  bool tail;
};

/// Enqueues a packet with an auto-assigned id and returns that id.
inline PacketId enqueue(Scheduler& s, Cycle now, std::uint32_t flow,
                        Flits length) {
  static_assert(sizeof(PacketId::rep_type) == 8);
  // Ids only need to be unique within one scheduler; a per-call counter
  // shared across tests is fine.
  static std::uint64_t next_id = 0;
  const PacketId id(next_id++);
  s.enqueue(now, Packet{.id = id, .flow = FlowId(flow), .length = length,
                        .arrival = now});
  return id;
}

/// Pulls one flit per cycle for `cycles` cycles starting at `start`,
/// recording every emission.
inline std::vector<Emission> pump(Scheduler& s, Cycle cycles,
                                  Cycle start = 0) {
  std::vector<Emission> out;
  for (Cycle t = start; t < start + cycles; ++t) {
    const std::optional<FlitEvent> flit = s.pull_flit(t);
    if (flit) {
      out.push_back(Emission{t, flit->flow, flit->packet, flit->is_head,
                             flit->is_tail});
    }
  }
  return out;
}

/// Flits emitted per flow.
inline std::vector<Flits> per_flow_flits(const std::vector<Emission>& ems,
                                         std::size_t num_flows) {
  std::vector<Flits> counts(num_flows, 0);
  for (const Emission& e : ems) ++counts[e.flow.index()];
  return counts;
}

/// The sequence of (flow, packet) pairs in order of packet *completion*.
inline std::vector<std::pair<std::uint32_t, PacketId>> completions(
    const std::vector<Emission>& ems) {
  std::vector<std::pair<std::uint32_t, PacketId>> out;
  for (const Emission& e : ems)
    if (e.tail) out.emplace_back(e.flow.value(), e.packet);
  return out;
}

}  // namespace wormsched::core::test
