// Million-flow memory audit for the pool-backed scheduler core: once the
// SoA pools reach their high-water mark, the ERR hot path (enqueue +
// pull_flit) must allocate NOTHING and hold RSS flat over a trace-driven
// soak segment (docs/PERFORMANCE.md).  This is the load-bearing claim of
// the SoA migration — per-packet cost stays O(1) in time AND in memory
// traffic at 1M flows.
//
// Own binary: overrides the global allocation functions (same counting
// shapes as harness/soak_alloc_test.cpp).  The workload streams from a
// binary trace image through BinaryTraceReader, so the zero-alloc
// assertion covers the trace-ingestion path too — the reader decodes
// entries zero-copy out of the borrowed image.
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <new>
#include <optional>
#include <vector>

#include "core/err.hpp"
#include "traffic/binary_trace.hpp"
#include "traffic/trace_synth.hpp"

namespace {
std::atomic<std::uint64_t> g_allocations{0};

void* counted_alloc(std::size_t size, std::size_t alignment) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  void* p = nullptr;
  if (posix_memalign(&p, alignment < sizeof(void*) ? sizeof(void*) : alignment,
                     size == 0 ? 1 : size) != 0) {
    throw std::bad_alloc();
  }
  return p;
}

std::uint64_t allocations() {
  return g_allocations.load(std::memory_order_relaxed);
}
}  // namespace

void* operator new(std::size_t size) {
  return counted_alloc(size, alignof(std::max_align_t));
}
void* operator new[](std::size_t size) {
  return counted_alloc(size, alignof(std::max_align_t));
}
void* operator new(std::size_t size, std::align_val_t align) {
  return counted_alloc(size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return counted_alloc(size, static_cast<std::size_t>(align));
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace wormsched::core {
namespace {

std::uint64_t rss_bytes() {
  std::ifstream statm("/proc/self/statm");
  std::uint64_t total_pages = 0;
  std::uint64_t resident_pages = 0;
  statm >> total_pages >> resident_pages;
  return resident_pages * static_cast<std::uint64_t>(sysconf(_SC_PAGESIZE));
}

std::size_t flow_count() {
  if (const char* env = std::getenv("WS_FLOW_SCALE_FLOWS")) {
    const long long v = std::atoll(env);
    if (v > 0) return static_cast<std::size_t>(v);
  }
  return 1'000'000;
}

TEST(FlowScaleAlloc, MillionFlowErrSteadyStateAllocatesNothing) {
  const std::size_t flows = flow_count();
  const Cycle horizon = 200'000;

  // Build the binary trace image up front (allocates freely; the audit
  // has not started).  A fan-in prelude opens one 8-flit packet on every
  // 8th flow at cycle 0 — that burst sets the packet pool's high-water
  // mark, so the steady phase (offered load 0.9 < 1 against a draining
  // backlog) recycles freelist nodes and never grows the store.
  traffic::BinaryTraceWriter writer(flows);
  for (std::size_t f = 0; f < flows; f += 8)
    writer.append(traffic::TraceEntry{
        0, FlowId(static_cast<FlowId::rep_type>(f)), 8});
  traffic::SynthSpec spec;
  spec.num_flows = flows;
  spec.horizon = horizon;
  spec.load = 0.9;
  traffic::synthesize_trace(spec, 3, [&](const traffic::TraceEntry& e) {
    writer.append(e);
  });
  const std::vector<std::uint8_t> image = writer.finish();

  ErrScheduler scheduler(ErrConfig{flows});
  traffic::BinaryTraceReader reader(image);
  std::optional<traffic::TraceEntry> pending = reader.next();
  PacketId::rep_type next_id = 0;
  std::uint64_t flits = 0;
  Cycle scheduler_cycle = 0;

  const auto drive_until = [&](Cycle end) {
    // end == 0: run to drain after the last arrival.
    for (Cycle t = scheduler_cycle;; ++t) {
      while (pending.has_value() && pending->cycle <= t) {
        scheduler.enqueue(t, Packet{.id = PacketId(next_id++),
                                    .flow = pending->flow,
                                    .length = pending->length,
                                    .arrival = t});
        pending = reader.next();
      }
      if (scheduler.pull_flit(t).has_value()) ++flits;
      scheduler_cycle = t + 1;
      if (end != 0 && scheduler_cycle >= end) return;
      if (end == 0 && !pending.has_value() && scheduler.idle()) return;
    }
  };

  // Warm-up: the prelude burst plus half the arrival window.  Every
  // pool must top out here — the packet store at the prelude's size,
  // the activation FIFO at the backlogged-flow count.
  drive_until(horizon / 2);
  ASSERT_FALSE(scheduler.idle()) << "warm-up drained the backlog; the "
                                    "steady phase would be vacuous";

  // Measured phase: the rest of the arrivals plus the full drain, with
  // the counter read last (rss_bytes() itself allocates a filebuf).
  const std::uint64_t rss_before = rss_bytes();
  const std::uint64_t flits_before = flits;
  const std::uint64_t allocs_before = allocations();
  drive_until(0);
  const std::uint64_t allocs_after = allocations();
  const std::uint64_t rss_after = rss_bytes();

  EXPECT_TRUE(scheduler.idle());
  EXPECT_GT(flits - flits_before, static_cast<std::uint64_t>(flows))
      << "measured phase served too little to exercise the hot path";
  EXPECT_EQ(allocs_after - allocs_before, 0u)
      << "steady-state scheduling at " << flows << " flows allocated";
  const std::uint64_t rss_growth =
      rss_after > rss_before ? rss_after - rss_before : 0;
  EXPECT_LT(rss_growth, std::uint64_t{8} * 1024 * 1024)
      << "RSS grew " << rss_growth << " bytes during the trace-driven "
      << "soak segment";
}

}  // namespace
}  // namespace wormsched::core
