// Scheduler checkpoint/restore differential, over every registered
// discipline (docs/TESTING.md).
//
// Methodology: one deterministic arrival script drives two executions of
// the same discipline — straight through N cycles, and split at cycle k
// by save_state() into a freshly constructed instance that continues via
// restore_state().  The emitted flit streams (flow, packet, index,
// head/tail flags, and the cycle of emission) must be identical, which
// pins every piece of discipline-private state (ERR allowances and
// surplus counts, DRR deficits, timestamp virtual clocks, round cursors)
// as well as the framework's queues, weights, and in-flight latch.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/snapshot.hpp"
#include "core/packet.hpp"
#include "core/registry.hpp"
#include "core/scheduler.hpp"

namespace wormsched::core {
namespace {

constexpr std::size_t kNumFlows = 4;
constexpr Cycle kHorizon = 900;
constexpr Cycle kSplit = 311;  // deliberately not a round boundary

struct Arrival {
  Cycle cycle;
  Packet packet;
};

/// Deterministic arrival script shared by both executions: a simple LCG
/// (not the simulator Rng, so this test has no dependency on its
/// stream) mixes flows and lengths, with a mid-run idle gap so
/// idle-reset disciplines exercise their reset path.
std::vector<Arrival> make_script() {
  std::vector<Arrival> script;
  std::uint64_t x = 0x2545F4914F6CDD1Dull;
  PacketId::rep_type next_id = 0;
  for (Cycle t = 0; t < kHorizon; ++t) {
    if (t >= 400 && t < 480) continue;  // idle gap
    x = x * 6364136223846793005ull + 1442695040888963407ull;
    if ((x >> 33) % 100 < 35) {
      const auto flow = static_cast<FlowId::rep_type>((x >> 17) % kNumFlows);
      const auto length = static_cast<Flits>(1 + ((x >> 7) % 8));
      script.push_back({t, Packet{.id = PacketId(next_id++),
                                  .flow = FlowId(flow),
                                  .length = length,
                                  .arrival = t}});
    }
  }
  return script;
}

SchedulerParams params_for(std::string_view name) {
  SchedulerParams params;
  params.num_flows = kNumFlows;
  params.drr_quantum = 8;  // max packet length in the script
  if (name == "perr") params.perr_priorities = {0, 1, 0, 1};
  return params;
}

std::unique_ptr<Scheduler> fresh(std::string_view name) {
  auto scheduler = make_scheduler(name, params_for(name));
  EXPECT_NE(scheduler, nullptr) << name;
  return scheduler;
}

struct EmittedFlit {
  Cycle cycle;
  FlowId::rep_type flow;
  PacketId::rep_type packet;
  Flits index;
  bool is_head;
  bool is_tail;

  bool operator==(const EmittedFlit& o) const {
    return cycle == o.cycle && flow == o.flow && packet == o.packet &&
           index == o.index && is_head == o.is_head && is_tail == o.is_tail;
  }
};

/// Drives `scheduler` over cycles [from, to), feeding the script and
/// appending every emitted flit to `out`.
void drive(Scheduler& scheduler, const std::vector<Arrival>& script,
           Cycle from, Cycle to, std::vector<EmittedFlit>& out) {
  std::size_t cursor = 0;
  while (cursor < script.size() && script[cursor].cycle < from) ++cursor;
  for (Cycle t = from; t < to; ++t) {
    while (cursor < script.size() && script[cursor].cycle == t)
      scheduler.enqueue(t, script[cursor++].packet);
    if (const auto flit = scheduler.pull_flit(t))
      out.push_back({t, flit->flow.value(), flit->packet.value(), flit->index,
                     flit->is_head, flit->is_tail});
  }
}

class SchedulerSnapshotTest : public ::testing::TestWithParam<std::string> {};

TEST_P(SchedulerSnapshotTest, SplitRunMatchesStraightRun) {
  const std::string name = GetParam();
  const std::vector<Arrival> script = make_script();

  std::vector<EmittedFlit> straight;
  {
    auto scheduler = fresh(name);
    scheduler->set_weight(FlowId(1), 2.0);
    scheduler->set_weight(FlowId(3), 3.0);
    drive(*scheduler, script, 0, kHorizon, straight);
  }

  std::vector<EmittedFlit> split;
  SnapshotWriter w;
  {
    auto scheduler = fresh(name);
    scheduler->set_weight(FlowId(1), 2.0);
    scheduler->set_weight(FlowId(3), 3.0);
    drive(*scheduler, script, 0, kSplit, split);
    scheduler->save_state(w);
  }  // the saving instance is gone before the restore, like a real restart
  {
    auto scheduler = fresh(name);
    // Weights are deliberately NOT re-applied: they are part of the
    // snapshot and must survive the restore on their own.
    SnapshotReader r(w.bytes());
    scheduler->restore_state(r);
    drive(*scheduler, script, kSplit, kHorizon, split);
  }

  ASSERT_EQ(straight.size(), split.size()) << name;
  for (std::size_t i = 0; i < straight.size(); ++i)
    ASSERT_TRUE(straight[i] == split[i]) << name << " flit " << i << " at "
                                         << straight[i].cycle << " vs "
                                         << split[i].cycle;
}

TEST_P(SchedulerSnapshotTest, DoubleSplitAlsoMatches) {
  // Checkpoint chains: save -> restore -> save -> restore must compose.
  const std::string name = GetParam();
  const std::vector<Arrival> script = make_script();

  std::vector<EmittedFlit> straight;
  {
    auto scheduler = fresh(name);
    drive(*scheduler, script, 0, kHorizon, straight);
  }

  std::vector<EmittedFlit> chained;
  SnapshotWriter first;
  {
    auto scheduler = fresh(name);
    drive(*scheduler, script, 0, 200, chained);
    scheduler->save_state(first);
  }
  SnapshotWriter second;
  {
    auto scheduler = fresh(name);
    SnapshotReader r(first.bytes());
    scheduler->restore_state(r);
    drive(*scheduler, script, 200, 500, chained);
    scheduler->save_state(second);
  }
  {
    auto scheduler = fresh(name);
    SnapshotReader r(second.bytes());
    scheduler->restore_state(r);
    drive(*scheduler, script, 500, kHorizon, chained);
  }

  ASSERT_EQ(straight.size(), chained.size()) << name;
  for (std::size_t i = 0; i < straight.size(); ++i)
    ASSERT_TRUE(straight[i] == chained[i]) << name << " flit " << i;
}

TEST_P(SchedulerSnapshotTest, FlowCountMismatchThrows) {
  const std::string name = GetParam();
  SnapshotWriter w;
  {
    auto scheduler = fresh(name);
    scheduler->save_state(w);
  }
  SchedulerParams wrong = params_for(name);
  wrong.num_flows = kNumFlows + 1;
  if (name == "perr") wrong.perr_priorities = {0, 1, 0, 1, 0};
  auto scheduler = make_scheduler(name, wrong);
  ASSERT_NE(scheduler, nullptr);
  SnapshotReader r(w.bytes());
  EXPECT_THROW(scheduler->restore_state(r), SnapshotError) << name;
}

std::vector<std::string> all_scheduler_names() {
  std::vector<std::string> names;
  for (const std::string_view name : scheduler_names())
    names.emplace_back(name);
  return names;
}

INSTANTIATE_TEST_SUITE_P(AllDisciplines, SchedulerSnapshotTest,
                         ::testing::ValuesIn(all_scheduler_names()),
                         [](const auto& info) {
                           std::string tag = info.param;
                           for (char& c : tag)
                             if (!std::isalnum(static_cast<unsigned char>(c)))
                               c = '_';
                           return tag;
                         });

}  // namespace
}  // namespace wormsched::core
