// Latency-oriented properties of ERR and PERR:
//
//   * ERR startup latency — a newly activated flow joins the ActiveList
//     tail; every flow ahead of it gets exactly one opportunity first,
//     and each opportunity transmits at most A_i + (m-1) <= 2m - 1 flits
//     (allowance at most 1 + MaxSC <= m by Corollary 1, overshoot < m).
//     So service starts within (n_active)(2m - 1) cycles of activation.
//   * PERR class isolation — a high-priority packet waits at most for the
//     residual of the packet in flight plus its own class's queue, never
//     for low-priority backlogs.
// Plus adversarial workloads driving the surplus machinery to its edges.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "common/rng.hpp"
#include "core/err.hpp"
#include "core/perr.hpp"
#include "test_util.hpp"

namespace wormsched::core {
namespace {

class StartupLatencyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(StartupLatencyTest, ErrNewFlowServedWithinBound) {
  constexpr std::size_t kFlows = 5;
  constexpr Flits kMaxLen = 24;
  ErrScheduler s(ErrConfig{kFlows});
  Rng rng(GetParam() * 131);

  struct Activation {
    Cycle when;
    FlowId flow;
  };
  std::vector<Activation> pending_checks;
  std::map<std::uint64_t, Cycle> first_service;  // flow -> cycle (per epoch)

  // Flows 0..3 stay saturated; flow 4 activates at random instants and
  // must start service within (active flows)*(2m-1) cycles.
  PacketId::rep_type id = 0;
  const auto enqueue = [&](Cycle t, std::uint32_t f, Flits len) {
    s.enqueue(t, Packet{.id = PacketId(id++), .flow = FlowId(f),
                        .length = len, .arrival = t});
  };
  for (std::uint32_t f = 0; f < 4; ++f)
    for (int k = 0; k < 400; ++k)
      enqueue(0, f, rng.uniform_int(1, kMaxLen));

  Cycle activation = 0;
  bool probe_outstanding = false;
  Cycle probe_activated = 0;
  int checks = 0;
  for (Cycle t = 0; t < 30000; ++t) {
    if (!probe_outstanding && t > 0 && t % 1500 == 0) {
      enqueue(t, 4, rng.uniform_int(1, kMaxLen));
      probe_outstanding = true;
      probe_activated = t;
    }
    const auto flit = s.pull_flit(t);
    if (flit && flit->flow == FlowId(4) && flit->is_head) {
      const Cycle wait = t - probe_activated;
      // n_active = 5 flows, m <= kMaxLen.
      EXPECT_LE(wait, 5 * (2 * kMaxLen - 1))
          << "activation at " << probe_activated;
      ++checks;
    }
    if (flit && flit->flow == FlowId(4) && flit->is_tail)
      probe_outstanding = false;
  }
  EXPECT_GT(checks, 10);
  (void)activation;
  (void)first_service;
}

TEST_P(StartupLatencyTest, PerrHighClassStartsWithinResidualPlusOwnQueue) {
  // Low class: 3 saturated flows with big packets.  High class: a single
  // probe flow.  The probe's head flit must appear within m cycles of its
  // arrival (the worst case is one low-class packet mid-flight).
  constexpr Flits kMaxLen = 32;
  PerrScheduler s(PerrConfig{4, {1, 1, 1, 0}, false});
  Rng rng(GetParam() * 733);
  PacketId::rep_type id = 0;
  const auto enqueue = [&](Cycle t, std::uint32_t f, Flits len) {
    s.enqueue(t, Packet{.id = PacketId(id++), .flow = FlowId(f),
                        .length = len, .arrival = t});
  };
  for (std::uint32_t f = 0; f < 3; ++f)
    for (int k = 0; k < 300; ++k)
      enqueue(0, f, rng.uniform_int(kMaxLen / 2, kMaxLen));

  bool probe_outstanding = false;
  Cycle probe_arrival = 0;
  int checks = 0;
  for (Cycle t = 0; t < 20000; ++t) {
    if (!probe_outstanding && t > 0 && t % 700 == 0) {
      enqueue(t, 3, rng.uniform_int(1, 8));
      probe_outstanding = true;
      probe_arrival = t;
    }
    const auto flit = s.pull_flit(t);
    if (flit && flit->flow == FlowId(3)) {
      if (flit->is_head) {
        EXPECT_LE(t - probe_arrival, static_cast<Cycle>(kMaxLen))
            << "arrival at " << probe_arrival;
        ++checks;
      }
      if (flit->is_tail) probe_outstanding = false;
    }
  }
  EXPECT_GT(checks, 10);
}

INSTANTIATE_TEST_SUITE_P(Seeds, StartupLatencyTest,
                         ::testing::Values(1, 2, 3));

// ---------------------------------------------------------------------
// Adversarial workloads for the fairness machinery.

TEST(Adversarial, SawtoothDrivesSurplusToMaximumButNotPast) {
  // Alternating 1-flit and m-flit packets, phase-shifted across flows, is
  // the worst realistic driver of surplus counts; Lemma 1 must hold with
  // SC actually *reaching* m-1 (bound tight), never exceeding it.
  constexpr Flits kM = 16;
  ErrScheduler s(ErrConfig{2});
  double max_sc_seen = 0.0;
  s.policy().set_opportunity_listener([&](const ErrOpportunity& r) {
    EXPECT_GE(r.surplus_count, 0.0);
    EXPECT_LE(r.surplus_count, static_cast<double>(kM - 1));
    max_sc_seen = std::max(max_sc_seen, r.surplus_count);
  });
  for (int k = 0; k < 200; ++k) {
    test::enqueue(s, 0, 0, k % 2 == 0 ? kM : 1);
    test::enqueue(s, 0, 1, k % 2 == 0 ? 1 : kM);
  }
  (void)test::pump(s, 200 * (kM + 1));
  EXPECT_TRUE(s.idle());
  EXPECT_DOUBLE_EQ(max_sc_seen, static_cast<double>(kM - 1));  // tight
}

TEST(Adversarial, SingleGreedyFlowCannotBeatFairShare) {
  // Flow 0 floods with maximum-size packets; flows 1-3 offer exactly
  // their fair share in minimum-size packets.  ERR must not let the
  // greedy flow take more than share + 3m over the measured window.
  ErrScheduler s(ErrConfig{4});
  PacketId::rep_type id = 0;
  for (int k = 0; k < 300; ++k)
    s.enqueue(0, Packet{.id = PacketId(id++), .flow = FlowId(0),
                        .length = 64, .arrival = 0});
  Flits greedy_served = 0;
  Cycle t = 0;
  for (; t < 12000; ++t) {
    // Fair-share trickle for the polite flows: one flit each per 4 cycles.
    if (t % 4 == 0) {
      for (std::uint32_t f = 1; f < 4; ++f)
        s.enqueue(t, Packet{.id = PacketId(id++), .flow = FlowId(f),
                            .length = 1, .arrival = t});
    }
    const auto flit = s.pull_flit(t);
    if (flit && flit->flow == FlowId(0)) ++greedy_served;
  }
  EXPECT_LE(greedy_served, 12000 / 4 + 3 * 64);
  EXPECT_GE(greedy_served, 12000 / 4 - 3 * 64);
}

TEST(Adversarial, ManyFlowsOneFlitEach) {
  // Degenerate burst: 512 flows, one 1-flit packet each, all at once.
  ErrScheduler s(ErrConfig{512});
  PacketId::rep_type id = 0;
  for (std::uint32_t f = 0; f < 512; ++f)
    s.enqueue(0, Packet{.id = PacketId(id++), .flow = FlowId(f),
                        .length = 1, .arrival = 0});
  std::vector<bool> served(512, false);
  for (Cycle t = 0; t < 512; ++t) {
    const auto flit = s.pull_flit(t);
    ASSERT_TRUE(flit.has_value());
    EXPECT_FALSE(served[flit->flow.index()]) << "double service";
    served[flit->flow.index()] = true;
  }
  EXPECT_TRUE(s.idle());
}

}  // namespace
}  // namespace wormsched::core
