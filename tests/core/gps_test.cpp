#include "core/gps.hpp"

#include <gtest/gtest.h>

namespace wormsched::core {
namespace {

TEST(Gps, SingleFlowDrainsAtFullCapacity) {
  GpsReference gps(1);
  gps.add_arrival(0.0, FlowId(0), 100.0);
  gps.finalize();
  EXPECT_DOUBLE_EQ(gps.service(FlowId(0), 50.0), 50.0);
  EXPECT_DOUBLE_EQ(gps.service(FlowId(0), 100.0), 100.0);
  EXPECT_DOUBLE_EQ(gps.service(FlowId(0), 200.0), 100.0);
  EXPECT_NEAR(gps.drain_time(), 100.0, 1e-9);
}

TEST(Gps, TwoEqualFlowsSplitCapacity) {
  GpsReference gps(2);
  gps.add_arrival(0.0, FlowId(0), 100.0);
  gps.add_arrival(0.0, FlowId(1), 100.0);
  gps.finalize();
  EXPECT_NEAR(gps.service(FlowId(0), 50.0), 25.0, 1e-9);
  EXPECT_NEAR(gps.service(FlowId(1), 50.0), 25.0, 1e-9);
  EXPECT_NEAR(gps.drain_time(), 200.0, 1e-6);
}

TEST(Gps, UnequalBacklogsOneDrainsFirst) {
  GpsReference gps(2);
  gps.add_arrival(0.0, FlowId(0), 10.0);
  gps.add_arrival(0.0, FlowId(1), 100.0);
  gps.finalize();
  // Both at rate 1/2 until flow 0 drains at t=20; then flow 1 alone.
  EXPECT_NEAR(gps.service(FlowId(0), 20.0), 10.0, 1e-9);
  EXPECT_NEAR(gps.service(FlowId(1), 20.0), 10.0, 1e-9);
  EXPECT_NEAR(gps.service(FlowId(1), 30.0), 20.0, 1e-9);
  EXPECT_NEAR(gps.drain_time(), 110.0, 1e-6);
}

TEST(Gps, WeightsSkewRates) {
  GpsReference gps(2);
  gps.set_weight(FlowId(0), 3.0);
  gps.add_arrival(0.0, FlowId(0), 300.0);
  gps.add_arrival(0.0, FlowId(1), 300.0);
  gps.finalize();
  EXPECT_NEAR(gps.service(FlowId(0), 40.0), 30.0, 1e-9);
  EXPECT_NEAR(gps.service(FlowId(1), 40.0), 10.0, 1e-9);
}

TEST(Gps, MidStreamArrivalChangesRates) {
  GpsReference gps(2);
  gps.add_arrival(0.0, FlowId(0), 100.0);
  gps.add_arrival(50.0, FlowId(1), 10.0);
  gps.finalize();
  // Flow 0 alone until t=50 (50 served), then both at 1/2 until flow 1's
  // 10 units drain at t=70, then flow 0 alone again.
  EXPECT_NEAR(gps.service(FlowId(0), 50.0), 50.0, 1e-9);
  EXPECT_NEAR(gps.service(FlowId(0), 70.0), 60.0, 1e-9);
  EXPECT_NEAR(gps.service(FlowId(1), 70.0), 10.0, 1e-9);
  EXPECT_NEAR(gps.drain_time(), 110.0, 1e-6);
}

TEST(Gps, IdleGapThenSecondBusyPeriod) {
  GpsReference gps(1);
  gps.add_arrival(0.0, FlowId(0), 10.0);
  gps.add_arrival(100.0, FlowId(0), 10.0);
  gps.finalize();
  EXPECT_NEAR(gps.service(FlowId(0), 10.0), 10.0, 1e-9);
  EXPECT_NEAR(gps.service(FlowId(0), 100.0), 10.0, 1e-9);
  EXPECT_NEAR(gps.service(FlowId(0), 105.0), 15.0, 1e-9);
}

TEST(Gps, ServiceIsMonotoneAndConserving) {
  GpsReference gps(3);
  gps.add_arrival(0.0, FlowId(0), 37.0);
  gps.add_arrival(3.0, FlowId(1), 21.0);
  gps.add_arrival(9.0, FlowId(2), 55.0);
  gps.add_arrival(40.0, FlowId(0), 13.0);
  gps.finalize();
  double prev_total = 0.0;
  for (double t = 0.0; t <= gps.drain_time() + 5.0; t += 1.7) {
    double total = 0.0;
    for (std::uint32_t f = 0; f < 3; ++f) {
      const double s = gps.service(FlowId(f), t);
      EXPECT_GE(s, 0.0);
      total += s;
    }
    EXPECT_GE(total + 1e-9, prev_total);  // monotone
    prev_total = total;
  }
  EXPECT_NEAR(prev_total, 37.0 + 21.0 + 55.0 + 13.0, 1e-6);
}

TEST(Gps, CustomCapacity) {
  GpsReference gps(1, 2.0);
  gps.add_arrival(0.0, FlowId(0), 100.0);
  gps.finalize();
  EXPECT_NEAR(gps.service(FlowId(0), 25.0), 50.0, 1e-9);
  EXPECT_NEAR(gps.drain_time(), 50.0, 1e-6);
}

TEST(GpsDeath, UnorderedArrivalsAbort) {
  GpsReference gps(1);
  gps.add_arrival(10.0, FlowId(0), 1.0);
  EXPECT_DEATH(gps.add_arrival(5.0, FlowId(0), 1.0), "time-ordered");
}

}  // namespace
}  // namespace wormsched::core
