#include "core/registry.hpp"

#include <gtest/gtest.h>

namespace wormsched::core {
namespace {

TEST(Registry, CreatesEveryAdvertisedScheduler) {
  SchedulerParams params;
  params.num_flows = 4;
  for (const auto name : scheduler_names()) {
    const auto s = make_scheduler(name, params);
    ASSERT_NE(s, nullptr) << name;
    EXPECT_EQ(s->num_flows(), 4u) << name;
    EXPECT_EQ(s->name(), name);
  }
}

TEST(Registry, NamesAreCaseInsensitive) {
  SchedulerParams params;
  params.num_flows = 2;
  EXPECT_NE(make_scheduler("ERR", params), nullptr);
  EXPECT_NE(make_scheduler("err", params), nullptr);
  EXPECT_NE(make_scheduler("Drr", params), nullptr);
}

TEST(Registry, AliasesResolve) {
  SchedulerParams params;
  params.num_flows = 2;
  EXPECT_EQ(make_scheduler("vclock", params)->name(), "VC");
  EXPECT_EQ(make_scheduler("wf2q", params)->name(), "WF2Q+");
}

TEST(Registry, UnknownNameReturnsNull) {
  SchedulerParams params;
  params.num_flows = 2;
  EXPECT_EQ(make_scheduler("nope", params), nullptr);
  EXPECT_EQ(make_scheduler("", params), nullptr);
}

TEST(Registry, AprioriLengthFlagsMatchTable1) {
  // The wormhole-deployability split the paper's Table 1 and Sec. 2 imply:
  // ERR and the plain round robins / FCFS work without packet lengths;
  // DRR and every timestamp discipline do not.
  SchedulerParams params;
  params.num_flows = 2;
  const auto needs_length = [&](std::string_view name) {
    return make_scheduler(name, params)->requires_apriori_length();
  };
  EXPECT_FALSE(needs_length("err"));
  EXPECT_FALSE(needs_length("srr"));
  EXPECT_FALSE(needs_length("perr"));
  EXPECT_FALSE(needs_length("pbrr"));
  EXPECT_FALSE(needs_length("wrr"));
  EXPECT_FALSE(needs_length("fbrr"));
  EXPECT_FALSE(needs_length("fcfs"));
  EXPECT_TRUE(needs_length("drr"));
  EXPECT_TRUE(needs_length("scfq"));
  EXPECT_TRUE(needs_length("stfq"));
  EXPECT_TRUE(needs_length("vc"));
  EXPECT_TRUE(needs_length("wfq"));
  EXPECT_TRUE(needs_length("wf2q+"));
}

TEST(Registry, ErrResetOnIdleParamPropagates) {
  SchedulerParams params;
  params.num_flows = 2;
  params.err_reset_on_idle = true;
  const auto s = make_scheduler("err", params);
  ASSERT_NE(s, nullptr);  // behaviour covered by ErrPolicy tests
}

}  // namespace
}  // namespace wormsched::core
