// Discipline-independent invariants, checked for every scheduler in the
// registry over randomized workloads (parameterized sweep):
//   * work conservation (a backlogged scheduler always emits),
//   * flit conservation (everything injected is eventually emitted, once),
//   * per-flow FIFO packet order,
//   * well-formed flit framing (head..tail, contiguous indices),
//   * global packet contiguity for packet-granular disciplines,
//   * idle() consistency.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "core/registry.hpp"
#include "traffic/workload.hpp"

namespace wormsched::core {
namespace {

struct RunOutcome {
  std::vector<Flits> injected_flits;
  std::vector<Flits> emitted_flits;
  std::vector<std::vector<PacketId>> completion_order;  // per flow
  bool framing_ok = true;
  bool contiguity_ok = true;  // only meaningful for packet-granular
  bool work_conserving = true;
};

traffic::Trace random_trace(std::uint64_t seed, std::size_t num_flows,
                            Cycle horizon) {
  traffic::WorkloadSpec spec;
  Rng rng(seed * 77 + 1);
  for (std::size_t i = 0; i < num_flows; ++i) {
    traffic::FlowSpec flow;
    flow.arrival =
        traffic::ArrivalSpec::bernoulli(rng.uniform_real(0.002, 0.04));
    flow.length = traffic::LengthSpec::uniform(
        1, rng.uniform_int(2, 32));
    spec.flows.push_back(flow);
  }
  return traffic::generate_trace(spec, horizon, seed);
}

RunOutcome run(Scheduler& s, const traffic::Trace& trace, Cycle horizon) {
  const std::size_t n = trace.num_flows;
  RunOutcome out;
  out.injected_flits.assign(n, 0);
  out.emitted_flits.assign(n, 0);
  out.completion_order.resize(n);

  struct PacketProgress {
    Flits next_index = 0;
    FlowId flow;
  };
  std::map<PacketId, PacketProgress> in_flight;
  std::optional<PacketId> open_packet;  // for global contiguity

  std::size_t next_arrival = 0;
  PacketId::rep_type next_id = 0;
  Cycle t = 0;
  for (;;) {
    while (next_arrival < trace.entries.size() &&
           trace.entries[next_arrival].cycle == t) {
      const auto& e = trace.entries[next_arrival++];
      s.enqueue(t, Packet{.id = PacketId(next_id++), .flow = e.flow,
                          .length = e.length, .arrival = t});
      out.injected_flits[e.flow.index()] += e.length;
    }
    const bool had_backlog = !s.idle();
    const auto flit = s.pull_flit(t);
    if (had_backlog && !flit) out.work_conserving = false;
    if (!had_backlog && flit) out.work_conserving = false;
    if (flit) {
      ++out.emitted_flits[flit->flow.index()];
      // Framing.
      auto [it, inserted] = in_flight.try_emplace(
          flit->packet, PacketProgress{0, flit->flow});
      if (flit->is_head != (it->second.next_index == 0) ||
          flit->index != it->second.next_index ||
          it->second.flow != flit->flow) {
        out.framing_ok = false;
      }
      ++it->second.next_index;
      // Global contiguity.
      if (open_packet && *open_packet != flit->packet)
        out.contiguity_ok = false;
      open_packet = flit->is_tail ? std::nullopt
                                  : std::make_optional(flit->packet);
      if (flit->is_tail) {
        out.completion_order[flit->flow.index()].push_back(flit->packet);
        in_flight.erase(flit->packet);
      }
    }
    ++t;
    if (t >= horizon && next_arrival >= trace.entries.size() && s.idle())
      break;
    if (t > horizon * 20) break;  // safety net against livelock
  }
  EXPECT_TRUE(in_flight.empty());
  return out;
}

class SchedulerPropertyTest
    : public ::testing::TestWithParam<std::string_view> {};

TEST_P(SchedulerPropertyTest, InvariantsHoldOnRandomWorkloads) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    SCOPED_TRACE(seed);
    const Cycle horizon = 4000;
    const traffic::Trace trace = random_trace(seed, 6, horizon);
    SchedulerParams params;
    params.num_flows = 6;
    params.drr_quantum = 32;
    auto s = make_scheduler(GetParam(), params);
    ASSERT_NE(s, nullptr);
    const RunOutcome out = run(*s, trace, horizon);

    EXPECT_TRUE(out.work_conserving);
    EXPECT_TRUE(out.framing_ok);
    if (GetParam() != "FBRR") {
      EXPECT_TRUE(out.contiguity_ok);
    }

    for (std::size_t f = 0; f < 6; ++f) {
      EXPECT_EQ(out.emitted_flits[f], out.injected_flits[f]) << "flow " << f;
      // Per-flow FIFO: packet ids per flow are assigned in arrival order,
      // so completions must be strictly increasing.
      const auto& order = out.completion_order[f];
      for (std::size_t i = 1; i < order.size(); ++i)
        EXPECT_LT(order[i - 1], order[i]) << "flow " << f;
    }
    EXPECT_TRUE(s->idle());
    EXPECT_EQ(s->backlog_flits(), 0);
  }
}

TEST_P(SchedulerPropertyTest, SaturatedFlowsAllMakeProgress) {
  // No starvation: with every flow permanently backlogged, each gets
  // service within any window of a few thousand cycles.
  SchedulerParams params;
  params.num_flows = 4;
  params.drr_quantum = 32;
  auto s = make_scheduler(GetParam(), params);
  ASSERT_NE(s, nullptr);
  Rng rng(99);
  PacketId::rep_type next_id = 0;
  // Interleave the enqueues: FCFS serves in arrival order, so a per-flow
  // batch order would make it (correctly) serve whole flows back to back.
  for (int k = 0; k < 400; ++k)
    for (std::uint32_t f = 0; f < 4; ++f)
      s->enqueue(0, Packet{.id = PacketId(next_id++), .flow = FlowId(f),
                           .length = rng.uniform_int(1, 16), .arrival = 0});
  std::vector<Flits> served(4, 0);
  for (Cycle t = 0; t < 6000; ++t) {
    const auto flit = s->pull_flit(t);
    ASSERT_TRUE(flit.has_value());
    ++served[flit->flow.index()];
  }
  for (std::uint32_t f = 0; f < 4; ++f) EXPECT_GT(served[f], 0) << f;
}

INSTANTIATE_TEST_SUITE_P(AllSchedulers, SchedulerPropertyTest,
                         ::testing::ValuesIn(scheduler_names()),
                         [](const auto& param_info) {
                           std::string name(param_info.param);
                           for (char& c : name) {
                             if (c == '+') c = 'p';
                           }
                           return name;
                         });

}  // namespace
}  // namespace wormsched::core
