#include "core/timestamp.hpp"

#include <gtest/gtest.h>

#include "test_util.hpp"

namespace wormsched::core {
namespace {

using test::enqueue;
using test::per_flow_flits;
using test::pump;

TEST(Scfq, DeclaresAprioriLengthRequirement) {
  ScfqScheduler s(2);
  EXPECT_TRUE(s.requires_apriori_length());
}

TEST(Scfq, EqualFlowsShareEqually) {
  ScfqScheduler s(2);
  for (int k = 0; k < 100; ++k) {
    enqueue(s, 0, 0, 5);
    enqueue(s, 0, 1, 5);
  }
  const auto counts = per_flow_flits(pump(s, 600), 2);
  EXPECT_NEAR(static_cast<double>(counts[0]),
              static_cast<double>(counts[1]), 10.0);
}

TEST(Scfq, LongPacketsDoNotGainBandwidth) {
  ScfqScheduler s(2);
  for (int k = 0; k < 40; ++k) enqueue(s, 0, 0, 20);
  for (int k = 0; k < 400; ++k) enqueue(s, 0, 1, 2);
  const auto counts = per_flow_flits(pump(s, 700), 2);
  EXPECT_NEAR(static_cast<double>(counts[0]),
              static_cast<double>(counts[1]), 25.0);
}

TEST(Scfq, WeightedSharing) {
  ScfqScheduler s(2);
  s.set_weight(FlowId(0), 3.0);
  for (int k = 0; k < 300; ++k) {
    enqueue(s, 0, 0, 4);
    enqueue(s, 0, 1, 4);
  }
  const auto counts = per_flow_flits(pump(s, 1600), 2);
  EXPECT_NEAR(static_cast<double>(counts[0]) / static_cast<double>(counts[1]),
              3.0, 0.2);
}

TEST(Scfq, ShortPacketJumpsLongQueue) {
  // A 1-flit packet stamped just after service starts on a 100-flit worm
  // still finishes well before flow 0's *next* 100-flit packet.
  ScfqScheduler s(2);
  enqueue(s, 0, 0, 100);
  enqueue(s, 0, 0, 100);
  auto ems = pump(s, 1);  // flow 0's first packet enters service
  enqueue(s, 1, 1, 1);
  ems = pump(s, 250, 1);
  const auto order = test::completions(ems);
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0].first, 0u);
  EXPECT_EQ(order[1].first, 1u);  // the short packet beats packet #2
  EXPECT_EQ(order[2].first, 0u);
}

TEST(Scfq, VirtualTimeResetsWhenIdle) {
  ScfqScheduler s(2);
  enqueue(s, 0, 0, 50);
  (void)pump(s, 60);
  ASSERT_TRUE(s.idle());
  // After the reset a fresh pair of flows competes evenly from zero.
  for (int k = 0; k < 50; ++k) {
    enqueue(s, 100, 0, 4);
    enqueue(s, 100, 1, 4);
  }
  const auto counts = per_flow_flits(pump(s, 300, 100), 2);
  EXPECT_NEAR(static_cast<double>(counts[0]),
              static_cast<double>(counts[1]), 8.0);
}

TEST(Stfq, EqualFlowsShareEqually) {
  StfqScheduler s(2);
  for (int k = 0; k < 100; ++k) {
    enqueue(s, 0, 0, 5);
    enqueue(s, 0, 1, 5);
  }
  const auto counts = per_flow_flits(pump(s, 600), 2);
  EXPECT_NEAR(static_cast<double>(counts[0]),
              static_cast<double>(counts[1]), 10.0);
}

TEST(Stfq, WeightedSharing) {
  StfqScheduler s(2);
  s.set_weight(FlowId(0), 2.0);
  for (int k = 0; k < 300; ++k) {
    enqueue(s, 0, 0, 4);
    enqueue(s, 0, 1, 4);
  }
  const auto counts = per_flow_flits(pump(s, 1600), 2);
  EXPECT_NEAR(static_cast<double>(counts[0]) / static_cast<double>(counts[1]),
              2.0, 0.15);
}

TEST(Stfq, BigPacketDoesNotBlockSmallFlowLong) {
  // After flow 0's 100-flit packet, its next start tag sits at virtual
  // time 100 while flow 1's packets start at the current virtual time:
  // flow 1 catches up with several packets in a row.
  StfqScheduler s(2);
  enqueue(s, 0, 0, 100);
  enqueue(s, 0, 0, 100);
  for (int k = 0; k < 20; ++k) enqueue(s, 0, 1, 5);
  const auto ems = pump(s, 200);
  // Within the first 200 cycles: flow 0's first packet (100 flits) plus
  // all of flow 1's 100 flits that had started before flow 0's second
  // 100-flit packet becomes eligible again.
  const auto counts = per_flow_flits(ems, 2);
  EXPECT_GE(counts[1], 95);
}

TEST(VirtualClock, EqualFlowsShareEqually) {
  VirtualClockScheduler s(2);
  for (int k = 0; k < 100; ++k) {
    enqueue(s, 0, 0, 5);
    enqueue(s, 0, 1, 5);
  }
  const auto counts = per_flow_flits(pump(s, 600), 2);
  EXPECT_NEAR(static_cast<double>(counts[0]),
              static_cast<double>(counts[1]), 10.0);
}

TEST(VirtualClock, PunishesPastOveruse) {
  // Classic Virtual Clock behaviour: a flow that consumed the idle system
  // far above its reserved rate has advanced its auxVC; when a competitor
  // appears, the overuser is locked out until real time catches up.
  VirtualClockScheduler s(2);
  for (int k = 0; k < 20; ++k) enqueue(s, 0, 0, 10);  // alone: 200 flits
  auto ems = pump(s, 200);
  EXPECT_EQ(ems.size(), 200u);
  // Competitor arrives; flow 0 also has fresh packets.
  for (int k = 0; k < 10; ++k) {
    enqueue(s, 200, 0, 10);
    enqueue(s, 200, 1, 10);
  }
  ems = pump(s, 100, 200);
  const auto counts = per_flow_flits(ems, 2);
  // Flow 0's stamps start near 400 (auxVC after 200 flits at rate 1/2);
  // flow 1's start near 220 — flow 1 dominates this window.
  EXPECT_GT(counts[1], counts[0] * 3);
}

TEST(VirtualClock, WeightedReservation) {
  VirtualClockScheduler s(2);
  s.set_weight(FlowId(0), 3.0);
  for (int k = 0; k < 300; ++k) {
    enqueue(s, 0, 0, 4);
    enqueue(s, 0, 1, 4);
  }
  const auto counts = per_flow_flits(pump(s, 1600), 2);
  EXPECT_NEAR(static_cast<double>(counts[0]) / static_cast<double>(counts[1]),
              3.0, 0.25);
}

}  // namespace
}  // namespace wormsched::core
