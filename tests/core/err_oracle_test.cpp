// Differential test: ErrScheduler against an independent packet-
// granularity transcription of the paper's Fig. 1 pseudo-code.
//
// The oracle is deliberately structured differently from the library
// implementation (std::deque rotation, explicit time cursor, packet-level
// bookkeeping instead of a flit-pull state machine), so a bookkeeping bug
// in either one shows up as a divergence in the service schedule.
#include <gtest/gtest.h>

#include <deque>
#include <vector>

#include "core/err.hpp"
#include "traffic/workload.hpp"
#include "validate/faults.hpp"

namespace wormsched::core {
namespace {

struct ServiceRecord {
  Cycle start;
  std::uint32_t flow;
  Flits length;
  bool operator==(const ServiceRecord&) const = default;
};

/// Direct transcription of Initialize/Enqueue/Dequeue from the paper.
/// `weights` empty = the unweighted pseudo-code; otherwise the weighted
/// allowance A_i = w_i(1 + MaxSC) - SC_i.
std::vector<ServiceRecord> oracle_schedule(
    const traffic::Trace& trace, const std::vector<double>& weights = {}) {
  const std::size_t n = trace.num_flows;
  std::vector<std::deque<Flits>> queues(n);
  std::vector<double> sc(n, 0.0);
  std::vector<bool> active(n, false);
  std::deque<std::size_t> active_list;
  double prev_max_sc = 0.0;
  double max_sc = 0.0;
  std::size_t rr_visit_count = 0;

  std::size_t next_arrival = 0;
  // Delivers every arrival with cycle <= t (the scheduler enqueues a
  // cycle's arrivals before that cycle's pull).
  const auto deliver_upto = [&](Cycle t) {
    while (next_arrival < trace.entries.size() &&
           trace.entries[next_arrival].cycle <= t) {
      const auto& e = trace.entries[next_arrival++];
      const std::size_t f = e.flow.index();
      queues[f].push_back(e.length);
      if (!active[f]) {
        active[f] = true;
        sc[f] = 0.0;
        active_list.push_back(f);
      }
    }
  };

  std::vector<ServiceRecord> schedule;
  Cycle t = 0;
  for (;;) {
    deliver_upto(t);
    if (active_list.empty()) {
      if (next_arrival >= trace.entries.size()) break;
      t = std::max(t, trace.entries[next_arrival].cycle);
      continue;
    }
    if (rr_visit_count == 0) {
      prev_max_sc = max_sc;
      rr_visit_count = active_list.size();
      max_sc = 0.0;
    }
    const std::size_t f = active_list.front();
    active_list.pop_front();
    const double w = weights.empty() ? 1.0 : weights[f];
    const double allowance = w * (1.0 + prev_max_sc) - sc[f];
    double sent = 0.0;
    // do { transmit } while (Sent < A and the queue holds more) — with
    // arrivals up to the tail-emission cycle visible to the emptiness
    // check, exactly as the flit-pull framework sees them.
    do {
      const Flits len = queues[f].front();
      queues[f].pop_front();
      schedule.push_back(
          ServiceRecord{t, static_cast<std::uint32_t>(f), len});
      t += static_cast<Cycle>(len);
      sent += static_cast<double>(len);
      deliver_upto(t - 1);  // arrivals during (and at) the tail cycle
    } while (sent < allowance && !queues[f].empty());
    sc[f] = sent - allowance;
    if (sc[f] > max_sc) max_sc = sc[f];
    if (!queues[f].empty()) {
      active_list.push_back(f);
    } else {
      sc[f] = 0.0;
      active[f] = false;
    }
    --rr_visit_count;
  }
  return schedule;
}

/// Runs the library's ErrScheduler over the trace and records the same
/// schedule through head-flit observations.
std::vector<ServiceRecord> library_schedule(
    const traffic::Trace& trace, const std::vector<double>& weights = {}) {
  ErrScheduler scheduler(ErrConfig{trace.num_flows});
  for (std::size_t i = 0; i < weights.size(); ++i)
    scheduler.set_weight(FlowId(static_cast<FlowId::rep_type>(i)),
                         weights[i]);
  struct Probe final : SchedulerObserver {
    void on_flit(Cycle now, const FlitEvent& flit) override {
      if (flit.is_head)
        schedule.push_back(ServiceRecord{now, flit.flow.value(), 0});
    }
    void on_packet_departure(Cycle, const Packet& p) override {
      // Head order == departure order for packet-contiguous service.
      schedule[next_departure++].length = p.length;
    }
    std::vector<ServiceRecord> schedule;
    std::size_t next_departure = 0;
  } probe;
  scheduler.set_observer(&probe);

  std::size_t next_arrival = 0;
  PacketId::rep_type id = 0;
  Cycle t = 0;
  while (t < 1'000'000) {
    while (next_arrival < trace.entries.size() &&
           trace.entries[next_arrival].cycle == t) {
      const auto& e = trace.entries[next_arrival++];
      scheduler.enqueue(t, Packet{.id = PacketId(id++), .flow = e.flow,
                                  .length = e.length, .arrival = t});
    }
    (void)scheduler.pull_flit(t);
    ++t;
    if (next_arrival >= trace.entries.size() && scheduler.idle()) break;
  }
  EXPECT_TRUE(scheduler.idle());
  return probe.schedule;
}

class ErrOracleTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ErrOracleTest, SchedulesMatchExactly) {
  traffic::WorkloadSpec spec;
  Rng rng(GetParam() * 1003);
  const std::size_t flows = 2 + rng.uniform_u64(5);
  for (std::size_t i = 0; i < flows; ++i) {
    traffic::FlowSpec f;
    // Mix of bursty and steady flows with idle gaps, so round state,
    // activations and idle-time behaviour all get exercised.
    if (i % 2 == 0) {
      f.arrival = traffic::ArrivalSpec::on_off(0.2, 60, 200);
    } else {
      f.arrival =
          traffic::ArrivalSpec::bernoulli(rng.uniform_real(0.005, 0.05));
    }
    f.length = traffic::LengthSpec::uniform(1, rng.uniform_int(2, 40));
    spec.flows.push_back(f);
  }
  const traffic::Trace trace = traffic::generate_trace(spec, 8000, GetParam());
  ASSERT_FALSE(trace.entries.empty());

  const auto expected = oracle_schedule(trace);
  const auto actual = library_schedule(trace);
  ASSERT_EQ(actual.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    ASSERT_EQ(actual[i], expected[i])
        << "divergence at service #" << i << ": oracle (t="
        << expected[i].start << ", flow=" << expected[i].flow
        << ", len=" << expected[i].length << ") vs library (t="
        << actual[i].start << ", flow=" << actual[i].flow
        << ", len=" << actual[i].length << ")";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ErrOracleTest,
                         ::testing::Range<std::uint64_t>(1, 13));

/// Shared random-workload generator for the differential extensions.
traffic::WorkloadSpec random_workload(Rng& rng) {
  traffic::WorkloadSpec spec;
  const std::size_t flows = 2 + rng.uniform_u64(5);
  for (std::size_t i = 0; i < flows; ++i) {
    traffic::FlowSpec f;
    if (i % 2 == 0) {
      f.arrival = traffic::ArrivalSpec::on_off(0.2, 60, 200);
    } else {
      f.arrival =
          traffic::ArrivalSpec::bernoulli(rng.uniform_real(0.005, 0.05));
    }
    f.length = traffic::LengthSpec::uniform(1, rng.uniform_int(2, 40));
    spec.flows.push_back(f);
  }
  return spec;
}

/// Weighted differential: the oracle's weighted allowance against the
/// library's set_weight path, over random integer weights >= 1.
class WeightedErrOracleTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(WeightedErrOracleTest, SchedulesMatchExactly) {
  Rng rng(GetParam() * 7717);
  const traffic::WorkloadSpec spec = random_workload(rng);
  std::vector<double> weights;
  for (std::size_t i = 0; i < spec.flows.size(); ++i)
    weights.push_back(static_cast<double>(rng.uniform_int(1, 4)));
  const traffic::Trace trace =
      traffic::generate_trace(spec, 8000, GetParam());
  ASSERT_FALSE(trace.entries.empty());

  const auto expected = oracle_schedule(trace, weights);
  const auto actual = library_schedule(trace, weights);
  ASSERT_EQ(actual.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    ASSERT_EQ(actual[i], expected[i])
        << "divergence at service #" << i << " (weighted, seed "
        << GetParam() << ")";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WeightedErrOracleTest,
                         ::testing::Range<std::uint64_t>(1, 13));

/// Fault-perturbed differential: the same oracle/library agreement must
/// hold on traces mangled by the deterministic fault injector (jitter,
/// drops, duplicate bursts) — any trace is a valid scheduler input.
class FaultedErrOracleTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FaultedErrOracleTest, SchedulesMatchUnderTraceFaults) {
  Rng rng(GetParam() * 40503);
  const traffic::WorkloadSpec spec = random_workload(rng);
  const traffic::Trace clean =
      traffic::generate_trace(spec, 8000, GetParam());
  const traffic::Trace trace = validate::apply_trace_faults(
      validate::FaultSpec::chaos(GetParam()), clean);
  ASSERT_FALSE(trace.entries.empty());

  const auto expected = oracle_schedule(trace);
  const auto actual = library_schedule(trace);
  ASSERT_EQ(actual.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    ASSERT_EQ(actual[i], expected[i])
        << "divergence at service #" << i << " (faulted, seed "
        << GetParam() << ")";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FaultedErrOracleTest,
                         ::testing::Range<std::uint64_t>(1, 13));

}  // namespace
}  // namespace wormsched::core
