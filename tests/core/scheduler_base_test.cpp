// Scheduler framework (base-class) contract tests: bookkeeping, observer
// plumbing, and the checked-invariant surface.
#include <gtest/gtest.h>

#include <vector>

#include "core/err.hpp"
#include "core/fcfs.hpp"
#include "test_util.hpp"

namespace wormsched::core {
namespace {

using test::enqueue;
using test::pump;

TEST(SchedulerBase, BacklogAccounting) {
  FcfsScheduler s(2);
  EXPECT_EQ(s.backlog_flits(), 0);
  enqueue(s, 0, 0, 5);
  enqueue(s, 0, 1, 3);
  EXPECT_EQ(s.backlog_flits(), 8);
  EXPECT_EQ(s.queue_length(FlowId(0)), 1u);
  (void)pump(s, 2);
  EXPECT_EQ(s.backlog_flits(), 6);  // two flits emitted
  (void)pump(s, 10, 2);
  EXPECT_EQ(s.backlog_flits(), 0);
  EXPECT_EQ(s.queue_length(FlowId(0)), 0u);
}

TEST(SchedulerBase, PacketTimestampsFilledIn) {
  ErrScheduler s(ErrConfig{1});
  struct Probe final : SchedulerObserver {
    std::vector<Packet> departed;
    void on_packet_departure(Cycle, const Packet& p) override {
      departed.push_back(p);
    }
  } probe;
  s.set_observer(&probe);
  enqueue(s, 5, 0, 4);
  (void)pump(s, 10, 5);
  ASSERT_EQ(probe.departed.size(), 1u);
  const Packet& p = probe.departed[0];
  EXPECT_EQ(p.arrival, 5u);
  EXPECT_EQ(p.first_service, 5u);
  EXPECT_EQ(p.departure, 8u);
}

TEST(SchedulerBase, ObserverSeesArrivalsFlitsDepartures) {
  ErrScheduler s(ErrConfig{2});
  struct Probe final : SchedulerObserver {
    int arrivals = 0, flits = 0, departures = 0;
    void on_packet_arrival(Cycle, const Packet&) override { ++arrivals; }
    void on_flit(Cycle, const FlitEvent&) override { ++flits; }
    void on_packet_departure(Cycle, const Packet&) override { ++departures; }
  } probe;
  s.set_observer(&probe);
  enqueue(s, 0, 0, 3);
  enqueue(s, 0, 1, 2);
  (void)pump(s, 6);
  EXPECT_EQ(probe.arrivals, 2);
  EXPECT_EQ(probe.flits, 5);
  EXPECT_EQ(probe.departures, 2);
}

TEST(SchedulerBase, DetachedObserverStopsReceiving) {
  ErrScheduler s(ErrConfig{1});
  struct Probe final : SchedulerObserver {
    int flits = 0;
    void on_flit(Cycle, const FlitEvent&) override { ++flits; }
  } probe;
  s.set_observer(&probe);
  enqueue(s, 0, 0, 2);
  (void)pump(s, 2);
  s.set_observer(nullptr);
  enqueue(s, 2, 0, 2);
  (void)pump(s, 4, 2);
  EXPECT_EQ(probe.flits, 2);
}

TEST(SchedulerBase, PullOnIdleReturnsNothingForever) {
  ErrScheduler s(ErrConfig{3});
  for (Cycle t = 0; t < 100; ++t)
    EXPECT_FALSE(s.pull_flit(t).has_value());
}

TEST(SchedulerBaseDeath, ZeroLengthPacketRejected) {
  ErrScheduler s(ErrConfig{1});
  EXPECT_DEATH(s.enqueue(0, Packet{.id = PacketId(1), .flow = FlowId(0),
                                   .length = 0}),
               "zero-length");
}

TEST(SchedulerBaseDeath, OutOfRangeFlowRejected) {
  ErrScheduler s(ErrConfig{2});
  EXPECT_DEATH(s.enqueue(0, Packet{.id = PacketId(1), .flow = FlowId(2),
                                   .length = 1}),
               "");
}

TEST(SchedulerBaseDeath, NonPositiveWeightRejected) {
  ErrScheduler s(ErrConfig{1});
  EXPECT_DEATH(s.set_weight(FlowId(0), 0.0), "");
}

}  // namespace
}  // namespace wormsched::core
