// Verification of the paper's analytical results on randomized workloads:
//   Lemma 1     0 <= SC_i(r) <= m-1           (m = largest packet served
//   Corollary 1 0 <= MaxSC(r) <= m-1           so far)
//   Theorem 2   window bounds on per-flow service over n rounds
//   Theorem 3   FM < 3m for ERR
//   Table 1     FM <= Max + 2m for DRR
// plus an ERR-vs-GPS proximity check.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "core/drr.hpp"
#include "core/err.hpp"
#include "core/gps.hpp"
#include "harness/scenario.hpp"
#include "metrics/fairness.hpp"
#include "traffic/workload.hpp"

namespace wormsched::core {
namespace {

/// Tracks the largest packet *served so far* (the paper's m is defined
/// over served packets; observers fire before the ERR opportunity
/// listener, so `m` is current when the listener asserts).
class MaxServedProbe final : public SchedulerObserver {
 public:
  void on_packet_departure(Cycle, const Packet& p) override {
    m = std::max(m, p.length);
  }
  Flits m = 0;
};

traffic::Trace saturating_trace(std::uint64_t seed, std::size_t num_flows,
                                Flits max_len, Cycle horizon) {
  // Overloaded Bernoulli arrivals: every flow's offered load exceeds its
  // fair share, so after a short warm-up all flows stay backlogged.
  traffic::WorkloadSpec spec;
  for (std::size_t i = 0; i < num_flows; ++i) {
    traffic::FlowSpec flow;
    flow.length = traffic::LengthSpec::uniform(1, max_len);
    flow.arrival = traffic::ArrivalSpec::bernoulli(
        2.0 / (static_cast<double>(num_flows) *
               flow.length.mean_length()));
    spec.flows.push_back(flow);
  }
  return traffic::generate_trace(spec, horizon, seed);
}

void drive(Scheduler& s, const traffic::Trace& trace, Cycle horizon) {
  std::size_t next = 0;
  PacketId::rep_type id = 0;
  for (Cycle t = 0; t < horizon; ++t) {
    while (next < trace.entries.size() && trace.entries[next].cycle == t) {
      const auto& e = trace.entries[next++];
      s.enqueue(t, Packet{.id = PacketId(id++), .flow = e.flow,
                          .length = e.length, .arrival = t});
    }
    (void)s.pull_flit(t);
  }
}

class ErrBoundsTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ErrBoundsTest, Lemma1AndCorollary1) {
  ErrScheduler s(ErrConfig{5});
  MaxServedProbe probe;
  s.set_observer(&probe);
  bool checked_any = false;
  s.policy().set_opportunity_listener([&](const ErrOpportunity& r) {
    checked_any = true;
    ASSERT_GT(probe.m, 0);
    // Lemma 1 (for flows that stayed backlogged; drained flows report the
    // reset value 0, which satisfies the bound trivially).
    EXPECT_GE(r.surplus_count, 0.0);
    EXPECT_LE(r.surplus_count, static_cast<double>(probe.m - 1));
    // Corollary 1.
    EXPECT_GE(r.max_sc_so_far, 0.0);
    EXPECT_LE(r.max_sc_so_far, static_cast<double>(probe.m - 1));
  });
  const auto trace = saturating_trace(GetParam(), 5, 24, 30000);
  drive(s, trace, 30000);
  EXPECT_TRUE(checked_any);
}

TEST_P(ErrBoundsTest, Theorem2WindowBounds) {
  ErrScheduler s(ErrConfig{4});
  MaxServedProbe probe;
  s.set_observer(&probe);
  struct Opp {
    std::size_t round;
    std::uint32_t flow;
    double sent;
    bool deactivated;
  };
  std::vector<Opp> opportunities;
  std::map<std::size_t, double> round_max_sc;
  s.policy().set_opportunity_listener([&](const ErrOpportunity& r) {
    opportunities.push_back(Opp{r.round, r.flow.value(), r.sent,
                                r.deactivated});
    round_max_sc[r.round] = r.max_sc_so_far;  // last write = round's MaxSC
  });
  const auto trace = saturating_trace(GetParam() + 100, 4, 16, 20000);
  drive(s, trace, 20000);

  const Flits m = probe.m;
  ASSERT_GT(m, 0);
  const std::size_t last_round = opportunities.back().round;
  ASSERT_GT(last_round, 20u);

  // Per (flow, round) service; a flow is "active over rounds k..k+n-1"
  // here iff it received *exactly one* opportunity in each of them (a flow
  // that drained and reactivated within one round gets two, and its SC
  // reset breaks the telescoping the theorem relies on — skip those).
  std::map<std::pair<std::uint32_t, std::size_t>, double> sent;
  std::map<std::pair<std::uint32_t, std::size_t>, int> visits;
  for (const Opp& o : opportunities) {
    sent[{o.flow, o.round}] += o.sent;
    // A deactivation resets SC, which breaks the telescoping; poison this
    // round and the next so no checked window straddles the reset.
    ++visits[{o.flow, o.round}];
    if (o.deactivated) {
      visits[{o.flow, o.round}] += 100;
      visits[{o.flow, o.round + 1}] += 100;
    }
  }

  int windows_checked = 0;
  for (std::uint32_t flow = 0; flow < 4; ++flow) {
    for (std::size_t k = 3; k + 8 < last_round; k += 5) {
      const std::size_t n = 6;
      double total = 0.0;
      bool active_throughout = true;
      for (std::size_t r = k; r < k + n; ++r) {
        const auto it = sent.find({flow, r});
        if (it == sent.end() || visits.at({flow, r}) != 1) {
          active_throughout = false;
          break;
        }
        total += it->second;
      }
      if (!active_throughout) continue;
      double max_sc_sum = 0.0;
      for (std::size_t r = k - 1; r <= k + n - 2; ++r)
        max_sc_sum += round_max_sc.at(r);
      const double lo =
          static_cast<double>(n) + max_sc_sum - static_cast<double>(m - 1);
      const double hi =
          static_cast<double>(n) + max_sc_sum + static_cast<double>(m - 1);
      EXPECT_GE(total, lo) << "flow " << flow << " window " << k;
      EXPECT_LE(total, hi) << "flow " << flow << " window " << k;
      ++windows_checked;
    }
  }
  EXPECT_GT(windows_checked, 10);
}

TEST_P(ErrBoundsTest, Theorem3RelativeFairnessBelow3m) {
  harness::ScenarioConfig config;
  config.horizon = 60000;
  config.seed = GetParam();
  traffic::WorkloadSpec spec;
  for (int i = 0; i < 4; ++i) {
    traffic::FlowSpec flow;
    flow.length = traffic::LengthSpec::uniform(1, 32);
    flow.arrival = traffic::ArrivalSpec::bernoulli(0.02);
    spec.flows.push_back(flow);
  }
  const auto trace = traffic::generate_trace(spec, config.horizon, config.seed);
  const auto result = harness::run_scenario("err", config, trace);

  // Evaluate FM over service-opportunity boundaries (Lemma 2 says the
  // maximum lives there); subsample to keep the pair count tractable.
  std::vector<Cycle> boundaries;
  for (std::size_t i = 0; i < result.service_starts.size(); i += 7)
    boundaries.push_back(result.service_starts[i]);
  const Flits fm = metrics::max_fairness_measure(result.service_log,
                                                 result.activity, boundaries);
  EXPECT_LT(fm, 3 * result.max_served_packet);
}

TEST_P(ErrBoundsTest, DrrFairnessWithinMaxPlus2m) {
  harness::ScenarioConfig config;
  config.horizon = 60000;
  config.seed = GetParam() + 17;
  config.sched.drr_quantum = 32;  // == Max for the O(1) regime
  traffic::WorkloadSpec spec;
  for (int i = 0; i < 4; ++i) {
    traffic::FlowSpec flow;
    flow.length = traffic::LengthSpec::uniform(1, 32);
    flow.arrival = traffic::ArrivalSpec::bernoulli(0.02);
    spec.flows.push_back(flow);
  }
  const auto trace = traffic::generate_trace(spec, config.horizon, config.seed);
  const auto result = harness::run_scenario("drr", config, trace);
  std::vector<Cycle> boundaries;
  for (std::size_t i = 0; i < result.service_starts.size(); i += 7)
    boundaries.push_back(result.service_starts[i]);
  const Flits fm = metrics::max_fairness_measure(result.service_log,
                                                 result.activity, boundaries);
  EXPECT_LE(fm, 32 + 2 * result.max_served_packet);
}

TEST_P(ErrBoundsTest, ErrStaysNearGps) {
  // All flows saturated from t=0: GPS grants each exactly t/n by time t.
  // ERR's discrete service must stay within 3m of the fluid ideal.
  const Flits max_len = 16;
  ErrScheduler s(ErrConfig{4});
  MaxServedProbe probe;
  s.set_observer(&probe);
  Rng rng(GetParam() * 13 + 5);
  PacketId::rep_type id = 0;
  GpsReference gps(4);
  for (std::uint32_t f = 0; f < 4; ++f) {
    for (int k = 0; k < 300; ++k) {
      const Flits len = rng.uniform_int(1, max_len);
      s.enqueue(0, Packet{.id = PacketId(id++), .flow = FlowId(f),
                          .length = len, .arrival = 0});
      gps.add_arrival(0.0, FlowId(f), static_cast<double>(len));
    }
  }
  gps.finalize();
  std::vector<Flits> served(4, 0);
  for (Cycle t = 0; t < 8000; ++t) {
    const auto flit = s.pull_flit(t);
    ASSERT_TRUE(flit.has_value());
    ++served[flit->flow.index()];
    if (t % 500 == 499) {
      for (std::uint32_t f = 0; f < 4; ++f) {
        const double ideal = gps.service(FlowId(f), static_cast<double>(t + 1));
        EXPECT_NEAR(static_cast<double>(served[f]), ideal,
                    3.0 * static_cast<double>(max_len))
            << "flow " << f << " at t=" << t;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ErrBoundsTest, ::testing::Values(1, 2, 3, 4));

}  // namespace
}  // namespace wormsched::core
