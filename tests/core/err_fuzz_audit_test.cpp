// Property/fuzz suite: randomized workloads through the ERR scheduler with
// the runtime invariant auditor attached, across 200 seeds in four blocks
// (plain, weighted, fault-perturbed traces, weighted + faults).  The
// property under test is the paper's whole bound set at once: every seed
// must finish with audit_violations == 0 — Lemma 1, the Theorem 2 service
// windows, the Theorem 3 fairness accumulator and the allowance/MaxSC
// round replay all hold on every service opportunity.
#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "harness/scenario.hpp"
#include "traffic/workload.hpp"
#include "validate/faults.hpp"
#include "validate/violation.hpp"

namespace wormsched::harness {
namespace {

traffic::WorkloadSpec fuzz_workload(Rng& rng) {
  traffic::WorkloadSpec spec;
  const std::size_t flows = 2 + rng.uniform_u64(7);
  for (std::size_t i = 0; i < flows; ++i) {
    traffic::FlowSpec f;
    switch (rng.uniform_u64(3)) {
      case 0:
        f.arrival = traffic::ArrivalSpec::on_off(
            rng.uniform_real(0.05, 0.4),
            static_cast<double>(rng.uniform_int(10, 100)),
            static_cast<double>(rng.uniform_int(50, 400)));
        break;
      case 1:
        f.arrival =
            traffic::ArrivalSpec::bernoulli(rng.uniform_real(0.002, 0.08));
        break;
      default:
        // Deliberately overloading flows: ERR's bounds are proven for
        // continuously-backlogged flows, so saturation is the hard case.
        f.arrival = traffic::ArrivalSpec::bernoulli(0.5);
        break;
    }
    f.length = traffic::LengthSpec::uniform(1, rng.uniform_int(1, 48));
    spec.flows.push_back(f);
  }
  return spec;
}

std::string violation_digest(const validate::AuditLog& log) {
  std::ostringstream out;
  out << log.count() << " violation(s):";
  for (const auto& v : log.kept()) out << "\n  [" << v.check << "] " << v.detail;
  return out.str();
}

/// One fuzz case: build a seed-derived workload (and, per block, weights
/// and/or trace faults), run it audited, and require a clean log.
void run_fuzz_case(std::uint64_t seed, bool weighted, bool faulted) {
  Rng rng(seed * 0x9e3779b97f4a7c15ULL + (weighted ? 1 : 0) +
          (faulted ? 2 : 0));
  const traffic::WorkloadSpec spec = fuzz_workload(rng);

  validate::AuditLog log(validate::AuditLog::Mode::kCount);
  ScenarioConfig config;
  config.horizon = 6000;
  config.drain = true;
  config.seed = seed;
  config.audit = true;
  config.audit_log = &log;
  config.sched.err_reset_on_idle = rng.uniform_u64(2) == 0;
  if (weighted) {
    // Random weights >= 1 in steps of 0.5 — the weighted-ERR analogue of
    // every bound must hold just as tightly.
    for (std::size_t i = 0; i < spec.flows.size(); ++i)
      config.weights.push_back(1.0 +
                               0.5 * static_cast<double>(rng.uniform_u64(7)));
  }

  traffic::Trace trace = traffic::generate_trace(spec, config.horizon, seed);
  if (faulted)
    trace = validate::apply_trace_faults(validate::FaultSpec::chaos(seed),
                                         trace);
  if (trace.entries.empty()) GTEST_SKIP() << "empty trace for seed " << seed;

  const ScenarioResult result = run_scenario("err", config, trace);
  EXPECT_GT(result.audit_opportunities, 0u);
  EXPECT_EQ(result.audit_violations, 0u) << violation_digest(log);
}

class ErrFuzzAuditTest : public ::testing::TestWithParam<std::uint64_t> {};
TEST_P(ErrFuzzAuditTest, AuditorClean) {
  run_fuzz_case(GetParam(), /*weighted=*/false, /*faulted=*/false);
}
INSTANTIATE_TEST_SUITE_P(Seeds, ErrFuzzAuditTest,
                         ::testing::Range<std::uint64_t>(1, 51));

class WeightedErrFuzzAuditTest
    : public ::testing::TestWithParam<std::uint64_t> {};
TEST_P(WeightedErrFuzzAuditTest, AuditorClean) {
  run_fuzz_case(GetParam(), /*weighted=*/true, /*faulted=*/false);
}
INSTANTIATE_TEST_SUITE_P(Seeds, WeightedErrFuzzAuditTest,
                         ::testing::Range<std::uint64_t>(1, 51));

class FaultedErrFuzzAuditTest
    : public ::testing::TestWithParam<std::uint64_t> {};
TEST_P(FaultedErrFuzzAuditTest, AuditorClean) {
  run_fuzz_case(GetParam(), /*weighted=*/false, /*faulted=*/true);
}
INSTANTIATE_TEST_SUITE_P(Seeds, FaultedErrFuzzAuditTest,
                         ::testing::Range<std::uint64_t>(1, 51));

class WeightedFaultedErrFuzzAuditTest
    : public ::testing::TestWithParam<std::uint64_t> {};
TEST_P(WeightedFaultedErrFuzzAuditTest, AuditorClean) {
  run_fuzz_case(GetParam(), /*weighted=*/true, /*faulted=*/true);
}
INSTANTIATE_TEST_SUITE_P(Seeds, WeightedFaultedErrFuzzAuditTest,
                         ::testing::Range<std::uint64_t>(1, 51));

}  // namespace
}  // namespace wormsched::harness
