// Regenerates the paper's Figure 5 (a), (b): average packet delay under a
// transient congestion of configurable intensity.
//
// Methodology (Sec. 5): 4 flows with the Fig. 4 asymmetries inject for
// 10,000 cycles at an aggregate rate of `ratio` times the output rate;
// injection then halts and the simulation continues until every queue is
// empty.  Delay = cycles from enqueue to the dequeue of the last flit.
//
//   (a) ERR vs FCFS — ERR's mean delay is lower; the gain is paid by the
//       over-demanding flows (flow 2: long packets, flow 3: double rate).
//   (b) ERR vs PBRR — ERR is far lower; PBRR favours long packets, which
//       inflates everyone else's queueing time.
#include <cstdio>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "common/cli.hpp"
#include "common/csv.hpp"
#include "common/plot.hpp"
#include "common/table.hpp"
#include "harness/paper_workloads.hpp"
#include "harness/scenario.hpp"

using namespace wormsched;

int main(int argc, char** argv) {
  CliParser cli("Figure 5: mean packet delay vs transient congestion ratio");
  cli.add_option("congestion-cycles", "transient congestion window", "10000");
  cli.add_option("ratio-min", "lowest input/output rate ratio", "1.0");
  cli.add_option("ratio-max", "highest input/output rate ratio", "1.3");
  cli.add_option("ratio-step", "sweep step", "0.05");
  cli.add_option("seeds", "averaging runs per point", "5");
  cli.add_option("csv", "output CSV path", "fig5_delay.csv");
  if (!cli.parse(argc, argv)) return 1;

  const Cycle window = cli.get_uint("congestion-cycles");
  const double lo = cli.get_double("ratio-min");
  const double hi = cli.get_double("ratio-max");
  const double step = cli.get_double("ratio-step");
  const std::uint64_t seeds = cli.get_uint("seeds");

  const std::vector<std::string> schedulers = {"ERR", "FCFS", "PBRR", "DRR",
                                               "FBRR"};
  // Primary metric: the per-flow mean delays averaged across flows, which
  // weighs every *flow* equally ("the average delay of packets in all of
  // the flows", Sec. 5).  A packet-weighted mean would double-count flow 3
  // (it injects twice the packets) and hide exactly the effect the paper
  // describes: ERR's gain comes from delaying the over-demanding flows.
  AsciiTable table("Figure 5: per-flow-averaged mean packet delay (cycles) "
                   "after a " + std::to_string(window) +
                   "-cycle congestion transient");
  table.set_header({"ratio", "ERR", "FCFS", "PBRR", "DRR", "FBRR",
                    "ERR flow2", "ERR flow3"});
  AsciiTable pkt_table(
      "Figure 5 (alternative averaging): packet-weighted mean delay");
  pkt_table.set_header({"ratio", "ERR", "FCFS", "PBRR", "DRR", "FBRR"});
  CsvWriter csv(cli.get("csv"));
  csv.header({"ratio", "ERR", "FCFS", "PBRR", "DRR", "FBRR", "err_pkt_mean",
              "fcfs_pkt_mean", "err_flow2", "err_flow3"});

  std::map<std::string, std::vector<double>> curve;
  std::vector<double> ratios;
  for (double ratio = lo; ratio <= hi + 1e-9; ratio += step) {
    std::map<std::string, double> flow_mean;
    std::map<std::string, double> packet_mean;
    double err_flow2 = 0.0;
    double err_flow3 = 0.0;
    for (std::uint64_t seed = 1; seed <= seeds; ++seed) {
      const auto workload = harness::fig5_workload(ratio, window);
      const auto trace = traffic::generate_trace(workload, window, seed);
      harness::ScenarioConfig config;
      config.horizon = window;
      config.drain = true;
      config.seed = seed;
      config.sched.drr_quantum = 128;
      for (const auto& name : schedulers) {
        const auto result = harness::run_scenario(name, config, trace);
        double sum = 0.0;
        for (std::uint32_t f = 0; f < 4; ++f)
          sum += result.delays.flow(FlowId(f)).mean();
        flow_mean[name] += sum / 4.0;
        packet_mean[name] += result.delays.overall().mean();
        if (name == "ERR") {
          err_flow2 += result.delays.flow(FlowId(2)).mean();
          err_flow3 += result.delays.flow(FlowId(3)).mean();
        }
      }
    }
    const auto avg = [&](auto& map, const std::string& name) {
      return map[name] / static_cast<double>(seeds);
    };
    table.add_row(
        fixed(ratio, 2), fixed(avg(flow_mean, "ERR"), 1),
        fixed(avg(flow_mean, "FCFS"), 1), fixed(avg(flow_mean, "PBRR"), 1),
        fixed(avg(flow_mean, "DRR"), 1), fixed(avg(flow_mean, "FBRR"), 1),
        fixed(err_flow2 / static_cast<double>(seeds), 1),
        fixed(err_flow3 / static_cast<double>(seeds), 1));
    pkt_table.add_row(
        fixed(ratio, 2), fixed(avg(packet_mean, "ERR"), 1),
        fixed(avg(packet_mean, "FCFS"), 1), fixed(avg(packet_mean, "PBRR"), 1),
        fixed(avg(packet_mean, "DRR"), 1), fixed(avg(packet_mean, "FBRR"), 1));
    ratios.push_back(ratio);
    for (const auto& name : schedulers)
      curve[name].push_back(avg(flow_mean, name));
    csv.row(ratio, avg(flow_mean, "ERR"), avg(flow_mean, "FCFS"),
            avg(flow_mean, "PBRR"), avg(flow_mean, "DRR"),
            avg(flow_mean, "FBRR"), avg(packet_mean, "ERR"),
            avg(packet_mean, "FCFS"),
            err_flow2 / static_cast<double>(seeds),
            err_flow3 / static_cast<double>(seeds));
  }
  table.print(std::cout);
  std::cout << "(well-behaved flows 0/1 gain under ERR; the over-demanding "
               "flows 2 and 3 pay — the conservation-law trade the paper "
               "quotes from Kleinrock)\n\n";
  pkt_table.print(std::cout);
  std::cout << "\n";

  AsciiChart chart("Figure 5 shape: mean delay vs congestion ratio");
  chart.set_x_label("total input rate / output rate");
  chart.set_y_label("mean packet delay (cycles)");
  for (const auto& name : {"ERR", "FCFS", "PBRR"})
    chart.add_series(name, ratios, curve[name]);
  chart.print(std::cout);
  std::printf("wrote %s\n", cli.get("csv").c_str());
  return 0;
}
