// Ablation A2: the idle-state wart of the IPDPS-2000 pseudo-code
// (DESIGN.md design decision 4).
//
// Scenario: a flow transmits one maximum-size packet (surplus count m-1),
// then the whole system idles.  In the paper-faithful algorithm MaxSC
// survives the gap, so when traffic resumes the first flow served inherits
// an allowance of ~m and may burst a whole allowance worth of small
// packets while its competitor waits.  The reset_on_idle variant clears
// round state when the ActiveList empties.
//
// Metric: the largest single-opportunity Sent observed after an idle gap
// ("post-idle burst") and the worst FM across the resumption window,
// averaged over many gap episodes.
#include <cstdio>
#include <iostream>

#include "common/cli.hpp"
#include "common/csv.hpp"
#include "common/table.hpp"
#include "core/err.hpp"

using namespace wormsched;
using core::ErrConfig;
using core::ErrOpportunity;
using core::ErrScheduler;

namespace {

struct EpisodeResult {
  double max_post_idle_sent = 0.0;
  double worst_service_gap = 0.0;  // |served_0 - served_1| after resumption
};

EpisodeResult run_variant(bool reset_on_idle, int episodes, Flits big) {
  ErrScheduler s(ErrConfig{2, reset_on_idle});
  EpisodeResult out;
  bool in_resumption = false;
  double max_sent = 0.0;
  s.policy().set_opportunity_listener([&](const ErrOpportunity& r) {
    if (in_resumption) max_sent = std::max(max_sent, r.sent);
  });

  PacketId::rep_type id = 0;
  Cycle t = 0;
  const auto enqueue = [&](std::uint32_t flow, Flits len) {
    s.enqueue(t, core::Packet{.id = PacketId(id++), .flow = FlowId(flow),
                              .length = len, .arrival = t});
  };
  const auto pump = [&](Cycle cycles) {
    for (Cycle k = 0; k < cycles; ++k) (void)s.pull_flit(t++);
  };

  for (int e = 0; e < episodes; ++e) {
    // Busy period: flow 0 sends one huge packet and drains -> SC ~ big-1.
    in_resumption = false;
    enqueue(0, big);
    pump(static_cast<Cycle>(big) + 4);  // drain fully; system idles
    t += 100;                           // idle gap

    // Resumption: both flows offer many small packets.
    in_resumption = true;
    max_sent = 0.0;
    const int small_packets = static_cast<int>(big);
    for (int k = 0; k < small_packets; ++k) {
      enqueue(0, 2);
      enqueue(1, 2);
    }
    Flits served0 = 0;
    Flits served1 = 0;
    double worst_gap = 0.0;
    for (Cycle k = 0; k < static_cast<Cycle>(2 * big); ++k) {
      const auto flit = s.pull_flit(t++);
      if (!flit) break;
      (flit->flow == FlowId(0) ? served0 : served1) += 1;
      worst_gap = std::max(
          worst_gap, static_cast<double>(std::abs(served0 - served1)));
    }
    pump(static_cast<Cycle>(4 * big));  // drain the episode completely
    t += 100;
    out.max_post_idle_sent = std::max(out.max_post_idle_sent, max_sent);
    out.worst_service_gap = std::max(out.worst_service_gap, worst_gap);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli("Ablation A2: effect of resetting ERR round state on idle");
  cli.add_option("episodes", "idle/resume episodes per variant", "50");
  cli.add_option("csv", "output CSV path", "ablation_idle_reset.csv");
  if (!cli.parse(argc, argv)) return 1;

  const int episodes = static_cast<int>(cli.get_int("episodes"));

  AsciiTable table("A2: post-idle burst and worst service gap (flits)");
  table.set_header({"big packet m", "variant", "max opportunity Sent",
                    "worst |served0-served1|"});
  CsvWriter csv(cli.get("csv"));
  csv.header({"m", "variant", "max_post_idle_sent", "worst_gap"});
  for (const Flits big : {32, 64, 128, 256}) {
    for (const bool reset : {false, true}) {
      const auto r = run_variant(reset, episodes, big);
      const char* variant = reset ? "reset-on-idle" : "paper-faithful";
      table.add_row(big, variant, fixed(r.max_post_idle_sent, 0),
                    fixed(r.worst_service_gap, 0));
      csv.row(big, variant, r.max_post_idle_sent, r.worst_service_gap);
    }
    table.add_rule();
  }
  table.print(std::cout);
  std::cout << "(paper-faithful: the stale MaxSC from before the gap inflates "
               "the first post-idle allowance;\n reset-on-idle: resumption "
               "starts from allowance 1)\n";
  std::printf("wrote %s\n", cli.get("csv").c_str());
  return 0;
}
