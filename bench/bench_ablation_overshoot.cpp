// Ablation A1: the cost of elasticity.
//
// ERR lets the final packet of an opportunity overshoot the allowance,
// which is why its fairness degrades linearly with the largest packet m.
// This bench sweeps the maximum packet size and shows the measured
// relative fairness tracking the 3m bound — and staying insensitive to
// everything else (flow count held constant, load held constant).
#include <cstdio>
#include <iostream>

#include "common/cli.hpp"
#include "common/csv.hpp"
#include "common/table.hpp"
#include "harness/scenario.hpp"
#include "metrics/fairness.hpp"

using namespace wormsched;

int main(int argc, char** argv) {
  CliParser cli("Ablation A1: ERR fairness vs maximum packet size m");
  cli.add_option("cycles", "simulated cycles per point", "400000");
  cli.add_option("flows", "number of flows", "4");
  cli.add_option("csv", "output CSV path", "ablation_overshoot.csv");
  if (!cli.parse(argc, argv)) return 1;

  const Cycle cycles = cli.get_uint("cycles");
  const std::size_t flows = cli.get_uint("flows");

  AsciiTable table("A1: measured ERR relative fairness vs max packet size");
  table.set_header({"max packet (flits)", "measured FM", "3m bound",
                    "FM / 3m"});
  CsvWriter csv(cli.get("csv"));
  csv.header({"max_packet", "measured_fm", "bound"});

  for (const Flits max_len : {4, 8, 16, 32, 64, 128, 256}) {
    traffic::WorkloadSpec workload;
    for (std::size_t i = 0; i < flows; ++i) {
      traffic::FlowSpec f;
      f.length = traffic::LengthSpec::uniform(1, max_len);
      // Offered load 1.5/n per flow regardless of m.
      f.arrival = traffic::ArrivalSpec::bernoulli(
          1.5 / (static_cast<double>(flows) * f.length.mean_length()));
      workload.flows.push_back(f);
    }
    const auto trace = traffic::generate_trace(workload, cycles, 5);
    harness::ScenarioConfig config;
    config.horizon = cycles;
    const auto result = harness::run_scenario("err", config, trace);
    const Flits fm = metrics::fairness_measure(
        result.service_log, result.activity, cycles / 10, cycles);
    const Flits bound = 3 * result.max_served_packet;
    table.add_row(max_len, fm, bound,
                  fixed(static_cast<double>(fm) / static_cast<double>(bound),
                        3));
    csv.row(max_len, fm, bound);
  }
  table.print(std::cout);
  std::printf("wrote %s\n", cli.get("csv").c_str());
  return 0;
}
