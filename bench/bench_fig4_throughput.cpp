// Regenerates the paper's Figure 4 (a)-(d): number of KBytes transmitted
// per flow over a 4M-cycle run during which all 8 flows stay active.
//
//   (a) ERR vs PBRR   — PBRR hands flow 2 (1-128 flit packets) ~2x bytes
//   (b) ERR vs FBRR   — near-identical; ERR within 3*128 flits = 3 KB
//   (c) ERR vs FCFS   — FCFS rewards flow 2 (length) and flow 3 (rate)
//   (d) ERR vs DRR    — comparable for uniformly distributed lengths
//
// Workload (Sec. 5): 8 flows; flow 3 at twice the packet rate; lengths
// U[1,64] flits except flow 2 U[1,128]; flit = 8 bytes; 1 flit/cycle.
#include <cstdio>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "common/cli.hpp"
#include "common/csv.hpp"
#include "common/table.hpp"
#include "harness/paper_workloads.hpp"
#include "harness/scenario.hpp"
#include "metrics/fairness.hpp"

using namespace wormsched;

int main(int argc, char** argv) {
  CliParser cli("Figure 4: per-flow throughput under ERR vs PBRR/FBRR/FCFS/DRR");
  cli.add_option("cycles", "simulated cycles", "4000000");
  cli.add_option("seed", "workload seed", "1");
  cli.add_option("overload", "aggregate offered load / capacity", "1.5");
  cli.add_option("csv", "output CSV path", "fig4_throughput.csv");
  if (!cli.parse(argc, argv)) return 1;

  const Cycle cycles = cli.get_uint("cycles");
  const auto workload =
      harness::fig4_workload(8, cli.get_double("overload"));
  const auto trace =
      traffic::generate_trace(workload, cycles, cli.get_uint("seed"));

  harness::ScenarioConfig config;
  config.horizon = cycles;
  config.seed = cli.get_uint("seed");
  config.sched.drr_quantum = 128;  // Max for this workload (DRR O(1) regime)

  const std::vector<std::string> schedulers = {"ERR", "PBRR", "FBRR", "FCFS",
                                               "DRR"};
  std::map<std::string, std::vector<double>> kbytes;
  std::map<std::string, Flits> fm;
  for (const auto& name : schedulers) {
    const auto result = harness::run_scenario(name, config, trace);
    auto& row = kbytes[name];
    for (std::uint32_t f = 0; f < 8; ++f)
      row.push_back(static_cast<double>(
                        result.service_log.total_bytes(FlowId(f))) /
                    1024.0);
    fm[name] = metrics::fairness_measure(result.service_log, result.activity,
                                         cycles / 10, cycles);
    std::printf("ran %-5s  m=%lld  FM[0.4M,4M)=%lld flits\n", name.c_str(),
                static_cast<long long>(result.max_served_packet),
                static_cast<long long>(fm[name]));
  }

  const auto panel = [&](const char* label, const std::string& rival) {
    AsciiTable t(std::string("Figure 4") + label + ": KBytes transmitted per flow (" +
                 std::to_string(cycles) + " cycles)");
    t.set_header({"flow", "ERR", rival});
    for (std::uint32_t f = 0; f < 8; ++f)
      t.add_row(f, fixed(kbytes["ERR"][f], 1), fixed(kbytes[rival][f], 1));
    t.print(std::cout);
    std::cout << "\n";
  };

  panel("(a)", "PBRR");
  panel("(b)", "FBRR");
  panel("(c)", "FCFS");
  panel("(d)", "DRR");

  CsvWriter csv(cli.get("csv"));
  csv.header({"flow", "ERR", "PBRR", "FBRR", "FCFS", "DRR"});
  for (std::uint32_t f = 0; f < 8; ++f)
    csv.row(f, kbytes["ERR"][f], kbytes["PBRR"][f], kbytes["FBRR"][f],
            kbytes["FCFS"][f], kbytes["DRR"][f]);
  std::printf("wrote %s\n", cli.get("csv").c_str());
  return 0;
}
