// Ablation A7: wormhole substrate sensitivity.
//
// Sweeps the router parameters the paper's context fixes implicitly —
// input VC buffer depth, number of VC classes, routing algorithm — under
// uniform random traffic near saturation, reporting delivered throughput
// and latency.  Establishes that the headline ERR results are not an
// artifact of one substrate configuration, and quantifies what the
// adaptive west-first extension buys.
//
// Each (config, rate) point runs --seeds independent instances through
// harness::sweep_network, fanned across --jobs workers; the default
// --seeds 1 reproduces the historical single-run tables exactly.
#include <cstdio>
#include <iostream>

#include "common/cli.hpp"
#include "common/csv.hpp"
#include "common/table.hpp"
#include "harness/network_sweep.hpp"
#include "obs/manifest.hpp"

using namespace wormsched;
using namespace wormsched::harness;
using namespace wormsched::wormhole;

int main(int argc, char** argv) {
  CliParser cli("Ablation A7: latency-vs-load curves per routing/buffering");
  cli.add_option("cycles", "injection cycles per point", "30000");
  cli.add_option("seeds", "independent seeds per point", "1");
  cli.add_option("csv", "output CSV path", "network_sweep.csv");
  add_jobs_option(cli);
  if (!cli.parse(argc, argv)) return 1;

  const Cycle cycles = cli.get_uint("cycles");
  SweepOptions sweep;
  sweep.base_seed = 5;
  sweep.seeds = cli.get_uint("seeds");
  sweep.jobs = resolve_jobs(cli);

  CsvWriter csv(cli.get("csv"));
  csv.header({"config", "rate", "flits_per_cycle", "mean_latency",
              "p99_latency"});

  struct ConfigCase {
    const char* name;
    NetworkConfig config;
  };
  std::vector<ConfigCase> cases;
  {
    NetworkConfig base;
    base.topo = TopologySpec::mesh(4, 4);
    base.router.buffer_depth = 2;
    cases.push_back({"mesh DOR depth=2", base});
    base.router.buffer_depth = 8;
    cases.push_back({"mesh DOR depth=8", base});
    base.routing = NetworkConfig::Routing::kWestFirst;
    cases.push_back({"mesh west-first depth=8", base});
    NetworkConfig torus;
    torus.topo = TopologySpec::torus(4, 4);
    torus.router.num_vcs = 2;
    torus.router.buffer_depth = 8;
    cases.push_back({"torus DOR depth=8", torus});
    // Flow-control schemes (PR 9): threshold signalling against the same
    // mesh, and the fat tree under both up/down variants.
    NetworkConfig onoff;
    onoff.topo = TopologySpec::mesh(4, 4);
    onoff.router.buffer_depth = 8;
    onoff.router.flow_control = FlowControl::kOnOff;
    cases.push_back({"mesh on/off depth=8", onoff});
    NetworkConfig fat;
    fat.topo = TopologySpec::fat_tree(4);
    fat.router.buffer_depth = 8;
    cases.push_back({"fattree:4 up/down depth=8", fat});
    fat.routing = NetworkConfig::Routing::kUpDownAdaptive;
    fat.router.flow_control = FlowControl::kOnOff;
    cases.push_back({"fattree:4 adaptive on/off depth=8", fat});
  }

  AsciiTable table(
      "A7: 4x4 network, uniform traffic, ERR arbitration — latency vs load");
  table.set_header({"config", "pkts/node/cyc", "delivered flits/cyc",
                    "mean latency", "p99 latency"});
  for (const auto& [name, config] : cases) {
    for (const double rate : {0.02, 0.05, 0.08, 0.11}) {
      NetworkScenarioConfig point;
      point.network = config;
      point.traffic.packets_per_node_per_cycle = rate;
      point.traffic.inject_until = cycles;
      point.traffic.lengths = traffic::LengthSpec::uniform(1, 12);
      point.traffic.pattern.kind = PatternSpec::Kind::kUniform;
      const SweepResult r = sweep_network(
          point, sweep,
          [cycles](const NetworkScenarioResult& run, SweepResult& out) {
            out.add("flits_per_cycle",
                    static_cast<double>(run.delivered_flits) /
                        static_cast<double>(cycles));
            out.add("mean_latency", run.latency.mean());
            out.add("p99_latency", run.p99_latency);
          });
      table.add_row(name, fixed(rate, 2),
                    fixed(r.mean("flits_per_cycle"), 2),
                    fixed(r.mean("mean_latency"), 1),
                    fixed(r.mean("p99_latency"), 0));
      csv.row(name, rate, r.mean("flits_per_cycle"), r.mean("mean_latency"),
              r.mean("p99_latency"));
    }
    table.add_rule();
  }
  table.print(std::cout);
  std::cout
      << "(the classic NoC shape: flat latency at low load, a knee near "
         "saturation; deeper\n buffers and the torus's wrap links push the "
         "knee right.  Note west-first's greedy\n credit heuristic loses to "
         "DOR under *balanced* uniform load — its win is routing\n around "
         "localized jams, shown in the adaptive-routing tests — the "
         "well-known\n determinism-vs-adaptivity trade)\n";
  std::printf("wrote %s\n", cli.get("csv").c_str());

  // Provenance manifest next to the CSV (docs/OBSERVABILITY.md).
  obs::RunManifest manifest;
  manifest.tool = "bench_network_sweep";
  manifest.seed = sweep.base_seed;
  for (const auto& [name, value] : cli.items())
    manifest.add_config(name, value);
  manifest.add_counter("config_cases", static_cast<double>(cases.size()));
  manifest.add_counter("seeds_per_point", static_cast<double>(sweep.seeds));
  const std::string manifest_path = cli.get("csv") + ".manifest.json";
  manifest.write_file(manifest_path);
  std::printf("wrote %s\n", manifest_path.c_str());
  return 0;
}
