// Ablation A7: wormhole substrate sensitivity.
//
// Sweeps the router parameters the paper's context fixes implicitly —
// input VC buffer depth, number of VC classes, routing algorithm — under
// uniform random traffic near saturation, reporting delivered throughput
// and latency.  Establishes that the headline ERR results are not an
// artifact of one substrate configuration, and quantifies what the
// adaptive west-first extension buys.
#include <cstdio>
#include <iostream>

#include "common/cli.hpp"
#include "common/csv.hpp"
#include "common/table.hpp"
#include "sim/engine.hpp"
#include "wormhole/network.hpp"
#include "wormhole/patterns.hpp"

using namespace wormsched;
using namespace wormsched::wormhole;

namespace {

struct RunResult {
  double delivered_flits_per_cycle = 0.0;
  double mean_latency = 0.0;
  double p99_latency = 0.0;
};

RunResult run(const NetworkConfig& config, double rate, Cycle cycles) {
  Network net(config);
  NetworkTrafficSource::Config traffic_config;
  traffic_config.packets_per_node_per_cycle = rate;
  traffic_config.inject_until = cycles;
  traffic_config.lengths = traffic::LengthSpec::uniform(1, 12);
  traffic_config.pattern.kind = PatternSpec::Kind::kUniform;
  traffic_config.seed = 5;
  NetworkTrafficSource source(net, traffic_config);
  sim::Engine engine;
  engine.add_component(source);
  engine.add_component(net);
  engine.run_until(cycles);
  engine.run_until_idle(cycles * 50);

  RunResult result;
  result.delivered_flits_per_cycle =
      static_cast<double>(net.delivered_flits()) / static_cast<double>(cycles);
  QuantileEstimator q;
  RunningStat lat;
  for (const auto& p : net.delivered()) {
    const auto d = static_cast<double>(p.delivered - p.created);
    lat.add(d);
    q.add(d);
  }
  result.mean_latency = lat.mean();
  result.p99_latency = q.quantile(0.99);
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli("Ablation A7: latency-vs-load curves per routing/buffering");
  cli.add_option("cycles", "injection cycles per point", "30000");
  cli.add_option("csv", "output CSV path", "network_sweep.csv");
  if (!cli.parse(argc, argv)) return 1;

  const Cycle cycles = cli.get_uint("cycles");

  CsvWriter csv(cli.get("csv"));
  csv.header({"config", "rate", "flits_per_cycle", "mean_latency",
              "p99_latency"});

  struct ConfigCase {
    const char* name;
    NetworkConfig config;
  };
  std::vector<ConfigCase> cases;
  {
    NetworkConfig base;
    base.topo = TopologySpec::mesh(4, 4);
    base.router.buffer_depth = 2;
    cases.push_back({"mesh DOR depth=2", base});
    base.router.buffer_depth = 8;
    cases.push_back({"mesh DOR depth=8", base});
    base.routing = NetworkConfig::Routing::kWestFirst;
    cases.push_back({"mesh west-first depth=8", base});
    NetworkConfig torus;
    torus.topo = TopologySpec::torus(4, 4);
    torus.router.num_vcs = 2;
    torus.router.buffer_depth = 8;
    cases.push_back({"torus DOR depth=8", torus});
  }

  AsciiTable table(
      "A7: 4x4 network, uniform traffic, ERR arbitration — latency vs load");
  table.set_header({"config", "pkts/node/cyc", "delivered flits/cyc",
                    "mean latency", "p99 latency"});
  for (const auto& [name, config] : cases) {
    for (const double rate : {0.02, 0.05, 0.08, 0.11}) {
      const RunResult r = run(config, rate, cycles);
      table.add_row(name, fixed(rate, 2),
                    fixed(r.delivered_flits_per_cycle, 2),
                    fixed(r.mean_latency, 1), fixed(r.p99_latency, 0));
      csv.row(name, rate, r.delivered_flits_per_cycle, r.mean_latency,
              r.p99_latency);
    }
    table.add_rule();
  }
  table.print(std::cout);
  std::cout
      << "(the classic NoC shape: flat latency at low load, a knee near "
         "saturation; deeper\n buffers and the torus's wrap links push the "
         "knee right.  Note west-first's greedy\n credit heuristic loses to "
         "DOR under *balanced* uniform load — its win is routing\n around "
         "localized jams, shown in the adaptive-routing tests — the "
         "well-known\n determinism-vs-adaptivity trade)\n";
  std::printf("wrote %s\n", cli.get("csv").c_str());
  return 0;
}
