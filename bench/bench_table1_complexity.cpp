// Regenerates the paper's Table 1: fairness measure and work complexity of
// the fair-queuing family — the analytic table, plus two empirical panels:
//
//   1. per-flit scheduling cost vs number of flows n (flat for the O(1)
//      disciplines: ERR/DRR/PBRR/FBRR/FCFS; growing ~log n for the
//      timestamp disciplines: SCFQ/VC/WFQ/WF2Q+),
//   2. measured relative fairness on the Fig. 4 workload next to each
//      discipline's analytic bound.
#include <chrono>
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "common/cli.hpp"
#include "common/csv.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "core/registry.hpp"
#include "harness/paper_workloads.hpp"
#include "harness/scenario.hpp"
#include "metrics/fairness.hpp"

using namespace wormsched;

namespace {

/// Nanoseconds per pull_flit with `n` permanently saturated flows.
double cost_per_flit_ns(std::string_view name, std::size_t n, Flits pulls) {
  core::SchedulerParams params;
  params.num_flows = n;
  // Quantum == packet size: DRR also makes one full decision per packet
  // (a larger quantum would amortize its rotation over several packets
  // and hide cost the other disciplines are paying).
  params.drr_quantum = 1;
  auto s = core::make_scheduler(name, params);
  PacketId::rep_type id = 0;
  // Pre-fill each flow with enough single-flit packets to outlast the
  // run: with 1-flit packets every pull is a full scheduling decision
  // (nothing amortizes over a worm), the worst case Theorem 1 is about.
  const int packets_per_flow =
      static_cast<int>(pulls / static_cast<Flits>(n)) + 2;
  for (std::uint32_t f = 0; f < n; ++f)
    for (int k = 0; k < packets_per_flow; ++k)
      s->enqueue(0, core::Packet{.id = PacketId(id++),
                                 .flow = FlowId(f),
                                 .length = 1,
                                 .arrival = 0});
  const auto start = std::chrono::steady_clock::now();
  for (Flits i = 0; i < pulls; ++i)
    (void)s->pull_flit(static_cast<Cycle>(i));
  const auto stop = std::chrono::steady_clock::now();
  const auto ns =
      std::chrono::duration_cast<std::chrono::nanoseconds>(stop - start);
  return static_cast<double>(ns.count()) / static_cast<double>(pulls);
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli("Table 1: fairness and work complexity of the FQ family");
  cli.add_option("pulls", "flits pulled per timing measurement", "400000");
  cli.add_option("fairness-cycles", "cycles for the fairness panel", "400000");
  cli.add_option("csv", "output CSV path", "table1_complexity.csv");
  if (!cli.parse(argc, argv)) return 1;

  // --- Panel 0: the analytic table as printed in the paper. -------------
  AsciiTable analytic("Table 1 (analytic): relative fairness and work complexity");
  analytic.set_header({"scheduling discipline", "fairness", "complexity",
                       "wormhole-capable"});
  analytic.add_row("Packet-Based Round Robin", "unbounded", "O(1)", "yes");
  analytic.add_row("First-Come-First-Served", "unbounded", "O(1)", "yes");
  analytic.add_row("Fair Queuing (WFQ/SCFQ/VC)", "~m", "O(log n)", "no");
  analytic.add_row("Deficit Round Robin", "Max + 2m", "O(1)", "no");
  analytic.add_row("Elastic Round Robin", "3m", "O(1)", "yes");
  analytic.print(std::cout);
  std::cout << "\n";

  // --- Panel 1: measured per-flit cost vs n. ----------------------------
  const Flits pulls = static_cast<Flits>(cli.get_uint("pulls"));
  const std::vector<std::size_t> flow_counts = {2, 16, 128, 1024, 4096};
  AsciiTable cost("Measured scheduling cost (ns per flit) vs number of flows");
  cost.set_header({"scheduler", "n=2", "n=16", "n=128", "n=1024", "n=4096",
                   "growth 16->4096"});
  CsvWriter csv(cli.get("csv"));
  csv.header({"scheduler", "flows", "ns_per_flit"});
  for (const auto name : core::scheduler_names()) {
    std::vector<double> ns;
    for (const auto n : flow_counts) {
      ns.push_back(cost_per_flit_ns(name, n, pulls));
      csv.row(name, n, ns.back());
    }
    cost.add_row(name, fixed(ns[0], 1), fixed(ns[1], 1), fixed(ns[2], 1),
                 fixed(ns[3], 1), fixed(ns[4], 1), fixed(ns[4] / ns[1], 2));
    std::printf("timed %s\n", std::string(name).c_str());
  }
  cost.print(std::cout);
  std::cout
      << "(every discipline touches per-flow state, so very large n adds "
         "cache-miss cost for\n all of them; the timestamp disciplines pay "
         "the additional O(log n) heap work on top,\n which keeps them the "
         "most expensive column-for-column — Theorem 1's comparison)\n\n";

  // --- Panel 2: measured fairness vs analytic bound. --------------------
  const Cycle cycles = cli.get_uint("fairness-cycles");
  const auto workload = harness::fig4_workload();
  const auto trace = traffic::generate_trace(workload, cycles, 3);
  harness::ScenarioConfig config;
  config.horizon = cycles;
  config.sched.drr_quantum = 128;
  AsciiTable fair("Measured relative fairness on the Fig. 4 workload (flits)");
  fair.set_header({"scheduler", "measured FM", "analytic bound"});
  for (const auto name : core::scheduler_names()) {
    const auto result = harness::run_scenario(name, config, trace);
    const Flits fm = metrics::fairness_measure(
        result.service_log, result.activity, cycles / 10, cycles);
    std::string bound = "unbounded";
    const auto m = result.max_served_packet;
    if (name == "ERR" || name == "PERR")
      bound = "3m = " + std::to_string(3 * m);
    if (name == "DRR") bound = "Max+2m = " + std::to_string(128 + 2 * m);
    if (name == "SRR") bound = "~Q+2m = " + std::to_string(128 + 2 * m);
    if (name == "FBRR") bound = "~1 flit";
    if (name == "SCFQ" || name == "STFQ" || name == "WFQ" || name == "VC" ||
        name == "WF2Q+")
      bound = "~m = " + std::to_string(m);
    fair.add_row(name, fm, bound);
  }
  fair.print(std::cout);
  std::printf("wrote %s\n", cli.get("csv").c_str());
  return 0;
}
