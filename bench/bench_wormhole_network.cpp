// Ablation A4: ERR in its native habitat — wormhole switches where
// downstream congestion decouples occupancy time from packet length.
//
// Panel 1 (single switch): two saturated inputs, one sending 12-flit
// packets and one sending 3-flit packets, through an output that stalls
// randomly (downstream congestion).  Cycle-charging ERR equalizes
// *occupancy*; flit-charging ERR equalizes flits (and therefore lets the
// long-packet input hold the output longer); RR and FCFS do neither.
//
// Panel 2 (4x4 mesh, hot ejection port): every node floods node 0; odd
// sources use 16-flit packets, even sources 4-flit packets.  Fairness of
// delivered flits across the 15 sources (Jain index) under each VA
// arbiter, plus mean packet latency.
#include <cmath>
#include <cstdio>
#include <iostream>
#include <vector>

#include "common/cli.hpp"
#include "common/csv.hpp"
#include "common/table.hpp"
#include "metrics/jain.hpp"
#include "sim/engine.hpp"
#include "wormhole/network.hpp"
#include "wormhole/switch.hpp"

using namespace wormsched;
using namespace wormsched::wormhole;
using metrics::jain_index;

namespace {

void single_switch_panel(Cycle cycles, AsciiTable& table, CsvWriter& csv) {
  for (const char* arbiter : {"err-cycles", "err-flits", "rr", "fcfs"}) {
    SwitchConfig config;
    config.num_inputs = 2;
    config.arbiter = arbiter;
    // Input 0's packets head towards a congested downstream path: while
    // one of them owns the output it stalls 50% of the cycles.  Input 1's
    // path is clear.  Packet lengths are equal (4 flits), so any
    // difference between cycle- and flit-charging is purely the stalls.
    config.per_input_stall = {0.5, 0.0};
    config.seed = 11;
    WormholeSwitch sw(config);
    // Saturate both inputs with interleaved arrivals.
    const int packets = static_cast<int>(cycles / 4) + 1;
    for (int k = 0; k < packets; ++k) {
      sw.inject(0, FlowId(0), 4);
      sw.inject(0, FlowId(1), 4);
    }
    for (Cycle t = 0; t < cycles; ++t) sw.tick(t);

    const auto occ0 = static_cast<double>(sw.occupancy_cycles(FlowId(0)));
    const auto occ1 = static_cast<double>(sw.occupancy_cycles(FlowId(1)));
    const auto fl0 = static_cast<double>(sw.forwarded_flits(FlowId(0)));
    const auto fl1 = static_cast<double>(sw.forwarded_flits(FlowId(1)));
    table.add_row(arbiter, fixed(occ0 / (occ0 + occ1), 3),
                  fixed(fl0 / (fl0 + fl1), 3), fixed(occ0 / occ1, 2),
                  fixed(fl0 / fl1, 2));
    csv.row("switch", arbiter, occ0 / (occ0 + occ1), fl0 / (fl0 + fl1));
  }
}

void mesh_panel(Cycle cycles, AsciiTable& table, CsvWriter& csv) {
  for (const char* arbiter : {"err-cycles", "err-flits", "rr", "fcfs"}) {
    NetworkConfig config;
    config.topo = TopologySpec::mesh(4, 4);
    config.router.arbiter = arbiter;
    config.router.buffer_depth = 8;
    Network net(config);
    Rng rng(13);
    sim::Engine engine;
    engine.add_component(net);
    PacketId::rep_type id = 0;
    const Cycle inject_until = cycles * 3 / 4;
    for (Cycle t = 0; t < cycles; ++t) {
      if (t < inject_until) {
        for (std::uint32_t n = 1; n < 16; ++n) {
          // Hot ejection port at node 0; rate well past its capacity so
          // the VA arbiters along the tree decide the shares.
          if (!rng.bernoulli(0.08)) continue;
          PacketDescriptor pkt;
          pkt.id = PacketId(id++);
          pkt.flow = FlowId(n);
          pkt.source = NodeId(n);
          pkt.dest = NodeId(0);
          pkt.length = (n % 2 == 1) ? 16 : 4;
          pkt.created = t;
          net.inject(t, pkt);
        }
      }
      engine.step();
    }
    const auto flits = net.delivered_flits_by_flow(16);
    std::vector<double> shares;
    for (std::uint32_t n = 1; n < 16; ++n)
      shares.push_back(static_cast<double>(flits[n]));
    double odd = 0.0;
    double even = 0.0;
    for (std::uint32_t n = 1; n < 16; ++n)
      (n % 2 == 1 ? odd : even) += static_cast<double>(flits[n]);
    table.add_row(arbiter, fixed(jain_index(shares), 4),
                  fixed(odd / even, 2),
                  fixed(net.latency_overall().mean(), 1),
                  static_cast<long long>(net.delivered().size()));
    csv.row("mesh", arbiter, jain_index(shares), odd / even);
  }
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli("Ablation A4: ERR arbitration inside wormhole switches");
  cli.add_option("switch-cycles", "single-switch run length", "200000");
  cli.add_option("mesh-cycles", "mesh run length", "100000");
  cli.add_option("csv", "output CSV path", "wormhole_network.csv");
  if (!cli.parse(argc, argv)) return 1;

  CsvWriter csv(cli.get("csv"));
  csv.header({"panel", "arbiter", "metric1", "metric2"});

  AsciiTable sw_table(
      "A4 panel 1: single wormhole switch; input 0's downstream path "
      "stalls 50% of cycles,\ninput 1's never; equal 4-flit packets, both "
      "inputs saturated");
  sw_table.set_header({"arbiter", "occupancy share in0", "flit share in0",
                       "occ in0/in1", "flits in0/in1"});
  single_switch_panel(cli.get_uint("switch-cycles"), sw_table, csv);
  sw_table.print(std::cout);
  std::cout
      << "(err-cycles: occupancy shares equalize at 0.5, so the stalled "
         "flow pays for its\n congestion with fewer flits; err-flits / rr / "
         "fcfs: flit shares equalize at 0.5,\n letting the stalled flow "
         "consume ~2/3 of the output's time — the unfairness the\n paper's "
         "occupancy argument (Sec. 1) is about)\n\n";

  AsciiTable mesh_table(
      "A4 panel 2: 4x4 mesh, all nodes flooding node 0\n"
      "odd sources: 16-flit packets, even sources: 4-flit packets");
  mesh_table.set_header({"arbiter", "Jain(delivered flits)", "odd/even flits",
                         "mean latency", "packets"});
  mesh_panel(cli.get_uint("mesh-cycles"), mesh_table, csv);
  mesh_table.print(std::cout);
  std::printf("wrote %s\n", cli.get("csv").c_str());
  return 0;
}
