// Simulator performance baseline: the numbers future PRs are held to.
//
// Three canonical scenarios, chosen to cover the three hot paths the
// performance layer owns:
//   1. fig4-standalone — the scenario runner replaying the paper's Fig. 4
//      workload through ERR (scheduler + metrics hot loop);
//   2. mesh8x8-hotspot — the wormhole substrate with the hot ejection
//      port driven just past saturation (0.5 * rate * 64 nodes * 6.5
//      mean flits ~ 1.25 flits/cycle at the default --hotspot-rate),
//      measured three ways: the legacy dense tick-everything loop, the
//      active set with the dense full-scan router pipeline (the previous
//      baseline), and the active set with the bitmask-sparse router
//      pipeline (the production configuration), plus two audited legs on
//      the production configuration — the full-rescan auditor (the
//      pre-incremental baseline) and the incremental dirty-set auditor —
//      giving the audited-vs-unaudited overhead and the incremental
//      speedup.  All runs are checked flit-for-flit identical; a final
//      instrumented run (never timed against the others) attaches the
//      per-stage perf counters plus the incremental auditor and yields
//      the stage breakdown with the observer share;
//   3. sweep-50seed — wall time of a 50-seed standalone sweep, serial vs
//      --jobs workers.  Both legs always run: on a single-hardware-thread
//      machine the parallel leg is forced to 2 jobs and flagged
//      parallel_forced (an oversubscription measurement, but the speedup
//      column must never be absent — CI guards read it unconditionally);
//   4. threads-scaling — the sharded network tick on mesh16x16 and
//      mesh32x32 uniform traffic at 1/2/4/8 threads (shards = threads),
//      every leg checked flit-for-flit identical to the serial run.
// Prints an ASCII table and writes the machine-readable BENCH_perf.json
// (schema wormsched-perf-v5) that reproduce.sh copies to the repo root.
// v2 added a provenance block — jobs, compiler, build type, git SHA; v3
// added the pipeline split, the stage breakdown and the sweep skip flag;
// v4 added the audited legs (audited/unaudited cycles_per_sec,
// audited_speedup, audit_overhead, observer_share) and always records
// the sweep's serial leg; v5 adds the threads_scaling block and replaces
// the sweep's parallel_skipped flag with the always-run parallel_forced
// leg.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "common/thread_pool.hpp"
#include "harness/network_sweep.hpp"
#include "harness/paper_workloads.hpp"
#include "harness/scenario.hpp"
#include "harness/sweep.hpp"
#include "metrics/perf_counters.hpp"
#include "obs/manifest.hpp"

using namespace wormsched;
using namespace wormsched::harness;

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  const auto elapsed = std::chrono::steady_clock::now() - start;
  return std::chrono::duration<double>(elapsed).count();
}

struct StandaloneRun {
  double wall_seconds = 0.0;
  Cycle cycles = 0;
  std::uint64_t flits = 0;
};

StandaloneRun run_fig4_standalone(Cycle horizon) {
  ScenarioConfig config;
  config.horizon = horizon;
  config.flit_bytes = kPaperFlitBytes;
  const traffic::WorkloadSpec workload = fig4_workload();
  const auto start = std::chrono::steady_clock::now();
  const ScenarioResult result = run_scenario("err", config, workload);
  StandaloneRun run;
  run.wall_seconds = seconds_since(start);
  run.cycles = result.end_cycle;
  run.flits = static_cast<std::uint64_t>(result.service_log.grand_total());
  return run;
}

struct NetworkRun {
  double wall_seconds = 0.0;
  Cycle cycles = 0;
  std::uint64_t flits = 0;
  std::uint64_t delivered_packets = 0;
  std::uint64_t audit_violations = 0;
};

struct HotspotMode {
  bool dense_tick = false;
  bool dense_pipeline = false;
  metrics::PerfCounters* perf_counters = nullptr;
  bool audit = false;
  validate::AuditMode audit_mode = validate::AuditMode::kIncremental;
  bool audit_err = true;
};

NetworkRun run_hotspot(Cycle inject_cycles, double rate,
                       const HotspotMode& mode) {
  NetworkScenarioConfig config;
  config.network.topo = wormhole::TopologySpec::mesh(8, 8);
  config.network.dense_tick = mode.dense_tick;
  config.network.router.dense_pipeline = mode.dense_pipeline;
  config.traffic.packets_per_node_per_cycle = rate;
  config.traffic.inject_until = inject_cycles;
  config.traffic.lengths = traffic::LengthSpec::uniform(1, 12);
  config.traffic.pattern.kind = wormhole::PatternSpec::Kind::kHotspot;
  config.perf_counters = mode.perf_counters;
  config.audit = mode.audit;
  config.audit_config.mode = mode.audit_mode;
  config.audit_err = mode.audit_err;
  // Three timed repetitions, keeping the fastest wall clock: the legs
  // are compared as ratios, so scheduler noise on either side skews the
  // headline numbers more than any real effect at these run lengths
  // (the fast legs finish in tens of milliseconds, where a single
  // scheduler preemption is a double-digit-percent error).  All
  // repetitions are deterministic replays of the same seed, so the
  // simulation outputs are identical; the instrumented run keeps one
  // repetition (its counters must cover exactly one run).
  const int reps = mode.perf_counters != nullptr ? 1 : 3;
  NetworkRun run;
  for (int rep = 0; rep < reps; ++rep) {
    const auto start = std::chrono::steady_clock::now();
    const NetworkScenarioResult result = run_network_scenario(config, 7);
    const double wall = seconds_since(start);
    if (rep == 0 || wall < run.wall_seconds) run.wall_seconds = wall;
    run.cycles = result.end_cycle;
    run.flits = result.delivered_flits;
    run.delivered_packets = result.delivered_packets;
    run.audit_violations = result.audit_violations;
  }
  return run;
}

double run_sweep(std::size_t seeds, std::size_t jobs, Cycle horizon) {
  ScenarioConfig config;
  config.horizon = horizon;
  config.drain = true;
  SweepOptions options;
  options.base_seed = 1;
  options.seeds = seeds;
  options.jobs = jobs;
  const traffic::WorkloadSpec workload = fig4_workload();
  const auto start = std::chrono::steady_clock::now();
  const SweepResult result = sweep_scenario(
      "err", config, workload, options,
      [](const ScenarioResult& r, SweepResult& out) {
        out.add("mean_delay", r.delays.overall().mean());
        out.add("served", static_cast<double>(r.service_log.grand_total()));
      });
  (void)result;
  return seconds_since(start);
}

// One leg of the threads-scaling sweep: a dim x dim mesh under uniform
// traffic, ticked with `threads` worker threads over `threads` shard
// domains (threads == 1 is the serial kernel).  Uniform traffic keeps
// every shard busy, which is what a scaling measurement needs; min-of-2
// repetitions bounds scheduler noise without doubling the bench cost on
// the big mesh.
NetworkRun run_scaling(Cycle inject_cycles, std::uint32_t dim,
                       std::uint32_t threads) {
  NetworkScenarioConfig config;
  config.network.topo = wormhole::TopologySpec::mesh(dim, dim);
  config.network.threads = threads;
  config.network.shards = threads;
  config.traffic.packets_per_node_per_cycle = 0.02;
  config.traffic.inject_until = inject_cycles;
  config.traffic.lengths = traffic::LengthSpec::uniform(1, 12);
  NetworkRun run;
  for (int rep = 0; rep < 2; ++rep) {
    const auto start = std::chrono::steady_clock::now();
    const NetworkScenarioResult result = run_network_scenario(config, 7);
    const double wall = seconds_since(start);
    if (rep == 0 || wall < run.wall_seconds) run.wall_seconds = wall;
    run.cycles = result.end_cycle;
    run.flits = result.delivered_flits;
    run.delivered_packets = result.delivered_packets;
    run.audit_violations = result.audit_violations;
  }
  return run;
}

double per_sec(double quantity, double secs) {
  return secs > 0.0 ? quantity / secs : 0.0;
}

// Set per-target from CMAKE_BUILD_TYPE; "unknown" outside CMake.
#ifndef WORMSCHED_BUILD_TYPE
#define WORMSCHED_BUILD_TYPE "unknown"
#endif

std::string compiler_id() {
#if defined(__clang__)
  return std::string("clang ") + __clang_version__;
#elif defined(__GNUC__)
  return std::string("gcc ") + __VERSION__;
#else
  return "unknown";
#endif
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli("simulator perf baseline: kernel + sweep throughput");
  cli.add_option("fig4-cycles", "standalone scenario horizon", "400000");
  cli.add_option("hotspot-cycles", "8x8 hotspot injection cycles", "60000");
  cli.add_option("hotspot-rate", "packets/node/cycle into the hotspot run",
                 "0.006");
  cli.add_option("sweep-seeds", "seeds in the sweep scenario", "50");
  cli.add_option("sweep-cycles", "per-seed horizon in the sweep", "20000");
  cli.add_option("scaling-cycles",
                 "injection cycles per threads-scaling leg (CI shrinks this)",
                 "8000");
  cli.add_option("out", "output JSON path", "BENCH_perf.json");
  add_jobs_option(cli, /*default_value=*/"0");
  if (!cli.parse(argc, argv)) return 1;

  const Cycle fig4_cycles = cli.get_uint("fig4-cycles");
  const Cycle hotspot_cycles = cli.get_uint("hotspot-cycles");
  const std::size_t sweep_seeds = cli.get_uint("sweep-seeds");
  const Cycle sweep_cycles = cli.get_uint("sweep-cycles");
  const Cycle scaling_cycles = cli.get_uint("scaling-cycles");
  const std::size_t jobs = resolve_jobs(cli);
  const std::size_t hardware_threads = ThreadPool::hardware_workers();

  const StandaloneRun fig4 = run_fig4_standalone(fig4_cycles);

  const double hotspot_rate = cli.get_double("hotspot-rate");
  // Timed runs, uninstrumented: the legacy full-fabric/full-scan loop,
  // the previous baseline (active set over the dense router pipeline),
  // and the production kernel (active set over the sparse pipeline).
  const NetworkRun dense = run_hotspot(
      hotspot_cycles, hotspot_rate,
      HotspotMode{/*dense_tick=*/true, /*dense_pipeline=*/true});
  const NetworkRun active_dense_pipeline = run_hotspot(
      hotspot_cycles, hotspot_rate,
      HotspotMode{/*dense_tick=*/false, /*dense_pipeline=*/true});
  const NetworkRun active = run_hotspot(
      hotspot_cycles, hotspot_rate,
      HotspotMode{/*dense_tick=*/false, /*dense_pipeline=*/false});
  const auto same = [](const NetworkRun& a, const NetworkRun& b) {
    return a.cycles == b.cycles && a.flits == b.flits &&
           a.delivered_packets == b.delivered_packets;
  };
  const bool identical =
      same(dense, active) && same(active_dense_pipeline, active);
  if (!identical) {
    std::fprintf(stderr,
                 "FATAL: hotspot runs diverged (cycles %llu / %llu / %llu, "
                 "flits %llu / %llu / %llu)\n",
                 static_cast<unsigned long long>(dense.cycles),
                 static_cast<unsigned long long>(active_dense_pipeline.cycles),
                 static_cast<unsigned long long>(active.cycles),
                 static_cast<unsigned long long>(dense.flits),
                 static_cast<unsigned long long>(active_dense_pipeline.flits),
                 static_cast<unsigned long long>(active.flits));
    return 1;
  }
  const double kernel_speedup =
      active.wall_seconds > 0.0 ? dense.wall_seconds / active.wall_seconds
                                : 0.0;
  const double pipeline_speedup =
      active.wall_seconds > 0.0
          ? active_dense_pipeline.wall_seconds / active.wall_seconds
          : 0.0;

  // Audited legs on the production configuration: the every-cycle
  // full-rescan auditor (the pre-incremental baseline) vs the
  // incremental dirty-set auditor.  Both are timed uninstrumented; both
  // must reproduce the unaudited run flit-for-flit with zero violations.
  const NetworkRun audited_full = run_hotspot(
      hotspot_cycles, hotspot_rate,
      HotspotMode{/*dense_tick=*/false, /*dense_pipeline=*/false, nullptr,
                  /*audit=*/true, validate::AuditMode::kFull,
                  /*audit_err=*/false});
  const NetworkRun audited_incremental = run_hotspot(
      hotspot_cycles, hotspot_rate,
      HotspotMode{/*dense_tick=*/false, /*dense_pipeline=*/false, nullptr,
                  /*audit=*/true, validate::AuditMode::kIncremental,
                  /*audit_err=*/false});
  if (!same(audited_full, active) || !same(audited_incremental, active)) {
    std::fprintf(stderr,
                 "FATAL: audited runs diverged from the unaudited run\n");
    return 1;
  }
  if (audited_full.audit_violations != 0 ||
      audited_incremental.audit_violations != 0) {
    std::fprintf(stderr,
                 "FATAL: auditor violations in audited runs: %llu / %llu\n",
                 static_cast<unsigned long long>(
                     audited_full.audit_violations),
                 static_cast<unsigned long long>(
                     audited_incremental.audit_violations));
    return 1;
  }
  // Incremental auditing vs the full-rescan baseline, and what auditing
  // costs at all relative to the unaudited kernel.
  const double audited_speedup =
      audited_incremental.wall_seconds > 0.0
          ? audited_full.wall_seconds / audited_incremental.wall_seconds
          : 0.0;
  const double audit_overhead =
      active.wall_seconds > 0.0
          ? audited_incremental.wall_seconds / active.wall_seconds
          : 0.0;

  // Instrumented run: stage counters + incremental invariant auditor.
  // Never timed against the runs above; its wall clock pays for both
  // instruments.
  metrics::PerfCounters counters;
  const NetworkRun instrumented = run_hotspot(
      hotspot_cycles, hotspot_rate,
      HotspotMode{/*dense_tick=*/false, /*dense_pipeline=*/false, &counters,
                  /*audit=*/true});
  if (!same(instrumented, active)) {
    std::fprintf(stderr,
                 "FATAL: instrumented run diverged from the timed run\n");
    return 1;
  }
  if (instrumented.audit_violations != 0) {
    std::fprintf(stderr, "FATAL: auditor reported %llu violation(s)\n",
                 static_cast<unsigned long long>(
                     instrumented.audit_violations));
    return 1;
  }
  const std::uint64_t observer_ticks =
      counters.total(metrics::Stage::kObserver).ticks;
  const std::uint64_t grand_ticks = counters.grand_total_ticks();
  const double observer_share =
      grand_ticks > 0 ? static_cast<double>(observer_ticks) /
                            static_cast<double>(grand_ticks)
                      : 0.0;

  // The parallel sweep always runs.  On a single hardware thread a real
  // speedup is impossible, so the leg is forced to 2 jobs and flagged:
  // the number then measures oversubscription overhead, which is itself
  // worth tracking — and the speedup column is never absent, so CI
  // guards can read it unconditionally.
  const bool parallel_forced = hardware_threads < 2 || jobs < 2;
  const std::size_t parallel_jobs = std::max<std::size_t>(jobs, 2);
  const double sweep_serial = run_sweep(sweep_seeds, 1, sweep_cycles);
  const double sweep_parallel =
      run_sweep(sweep_seeds, parallel_jobs, sweep_cycles);
  const double sweep_speedup =
      sweep_parallel > 0.0 ? sweep_serial / sweep_parallel : 0.0;

  // Threads-scaling sweep for the sharded network tick.  The 1-thread
  // leg is the serial kernel; every sharded leg must reproduce it
  // flit for flit (the bench double-checks what the 200-seed fuzz suite
  // already proves, here at mesh16x16/mesh32x32 scale).
  constexpr std::uint32_t kScalingDims[] = {16, 32};
  constexpr std::uint32_t kScalingThreads[] = {1, 2, 4, 8};
  NetworkRun scaling[2][4];
  bool scaling_identical = true;
  for (std::size_t d = 0; d < 2; ++d) {
    for (std::size_t t = 0; t < 4; ++t) {
      scaling[d][t] =
          run_scaling(scaling_cycles, kScalingDims[d], kScalingThreads[t]);
      if (!same(scaling[d][t], scaling[d][0])) scaling_identical = false;
    }
  }
  if (!scaling_identical) {
    std::fprintf(stderr,
                 "FATAL: sharded threads-scaling runs diverged from the "
                 "serial kernel\n");
    return 1;
  }

  AsciiTable table("simulator perf baseline (wall-clock)");
  table.set_header({"scenario", "wall s", "cycles/s", "flits/s", "speedup"});
  table.add_row("fig4 standalone (ERR)", fixed(fig4.wall_seconds, 3),
                fixed(per_sec(static_cast<double>(fig4.cycles),
                              fig4.wall_seconds), 0),
                fixed(per_sec(static_cast<double>(fig4.flits),
                              fig4.wall_seconds), 0),
                "-");
  table.add_row("8x8 hotspot, dense tick", fixed(dense.wall_seconds, 3),
                fixed(per_sec(static_cast<double>(dense.cycles),
                              dense.wall_seconds), 0),
                fixed(per_sec(static_cast<double>(dense.flits),
                              dense.wall_seconds), 0),
                "1.00 (baseline)");
  table.add_row("8x8 hotspot, active+dense pipe",
                fixed(active_dense_pipeline.wall_seconds, 3),
                fixed(per_sec(static_cast<double>(active_dense_pipeline.cycles),
                              active_dense_pipeline.wall_seconds), 0),
                fixed(per_sec(static_cast<double>(active_dense_pipeline.flits),
                              active_dense_pipeline.wall_seconds), 0),
                fixed(dense.wall_seconds > 0.0 &&
                              active_dense_pipeline.wall_seconds > 0.0
                          ? dense.wall_seconds /
                                active_dense_pipeline.wall_seconds
                          : 0.0,
                      2));
  table.add_row("8x8 hotspot, active+sparse pipe",
                fixed(active.wall_seconds, 3),
                fixed(per_sec(static_cast<double>(active.cycles),
                              active.wall_seconds), 0),
                fixed(per_sec(static_cast<double>(active.flits),
                              active.wall_seconds), 0),
                fixed(kernel_speedup, 2));
  table.add_row("8x8 hotspot, audited (full rescan)",
                fixed(audited_full.wall_seconds, 3),
                fixed(per_sec(static_cast<double>(audited_full.cycles),
                              audited_full.wall_seconds), 0),
                fixed(per_sec(static_cast<double>(audited_full.flits),
                              audited_full.wall_seconds), 0),
                "1.00 (audit baseline)");
  table.add_row("8x8 hotspot, audited (incremental)",
                fixed(audited_incremental.wall_seconds, 3),
                fixed(per_sec(static_cast<double>(audited_incremental.cycles),
                              audited_incremental.wall_seconds), 0),
                fixed(per_sec(static_cast<double>(audited_incremental.flits),
                              audited_incremental.wall_seconds), 0),
                fixed(audited_speedup, 2));
  table.add_row("sweep " + std::to_string(sweep_seeds) + " seeds, jobs=1",
                fixed(sweep_serial, 3), "-", "-", "1.00 (baseline)");
  table.add_row("sweep " + std::to_string(sweep_seeds) +
                    " seeds, jobs=" + std::to_string(parallel_jobs) +
                    (parallel_forced ? " (forced)" : ""),
                fixed(sweep_parallel, 3), "-", "-", fixed(sweep_speedup, 2));
  for (std::size_t d = 0; d < 2; ++d) {
    const std::string mesh = "mesh" + std::to_string(kScalingDims[d]) + "x" +
                             std::to_string(kScalingDims[d]);
    for (std::size_t t = 0; t < 4; ++t) {
      const NetworkRun& leg = scaling[d][t];
      const double speedup = leg.wall_seconds > 0.0
                                 ? scaling[d][0].wall_seconds / leg.wall_seconds
                                 : 0.0;
      table.add_row(mesh + " uniform, threads=" +
                        std::to_string(kScalingThreads[t]),
                    fixed(leg.wall_seconds, 3),
                    fixed(per_sec(static_cast<double>(leg.cycles),
                                  leg.wall_seconds), 0),
                    fixed(per_sec(static_cast<double>(leg.flits),
                                  leg.wall_seconds), 0),
                    t == 0 ? std::string("1.00 (baseline)")
                           : fixed(speedup, 2));
    }
  }
  table.print(std::cout);
  std::printf("(all hotspot runs verified flit-for-flit identical; sparse "
              "vs dense-pipeline speedup %.2f;\n incremental audit "
              "overhead %.2fx unaudited, observer share %.1f%%; auditor "
              "violations: %llu)\n",
              pipeline_speedup, audit_overhead, 100.0 * observer_share,
              static_cast<unsigned long long>(instrumented.audit_violations));

  AsciiTable stage_table(
      "8x8 hotspot stage breakdown (instrumented run, TSC ticks)");
  stage_table.set_header({"stage", "ticks", "calls", "share %"});
  const std::uint64_t grand = counters.grand_total_ticks();
  for (std::size_t s = 0; s < metrics::kNumStages; ++s) {
    const auto stage = static_cast<metrics::Stage>(s);
    const auto& total = counters.total(stage);
    const double share =
        grand > 0 ? 100.0 * static_cast<double>(total.ticks) /
                        static_cast<double>(grand)
                  : 0.0;
    stage_table.add_row(metrics::stage_name(stage),
                        std::to_string(total.ticks),
                        std::to_string(total.calls), fixed(share, 1));
  }
  stage_table.print(std::cout);
  if (!metrics::kPerfCountersCompiled) {
    std::printf("(perf counters compiled out: stage breakdown is empty; "
                "configure with -DWORMSCHED_PERF_COUNTERS=ON)\n");
  }

  FILE* out = std::fopen(cli.get("out").c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", cli.get("out").c_str());
    return 1;
  }
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"schema\": \"wormsched-perf-v5\",\n");
  std::fprintf(out, "  \"hardware_threads\": %zu,\n", hardware_threads);
  std::fprintf(out, "  \"perf_counters_compiled\": %s,\n",
               metrics::kPerfCountersCompiled ? "true" : "false");
  std::fprintf(out,
               "  \"provenance\": {\"jobs\": %zu, \"compiler\": \"%s\", "
               "\"build_type\": \"%s\", \"git_sha\": \"%s\"},\n",
               jobs, compiler_id().c_str(), WORMSCHED_BUILD_TYPE,
               obs::current_git_sha().c_str());
  std::fprintf(out, "  \"scenarios\": {\n");
  std::fprintf(out,
               "    \"fig4_standalone\": {\"wall_seconds\": %.6f, "
               "\"sim_cycles\": %llu, \"served_flits\": %llu, "
               "\"cycles_per_sec\": %.0f, \"flits_per_sec\": %.0f},\n",
               fig4.wall_seconds,
               static_cast<unsigned long long>(fig4.cycles),
               static_cast<unsigned long long>(fig4.flits),
               per_sec(static_cast<double>(fig4.cycles), fig4.wall_seconds),
               per_sec(static_cast<double>(fig4.flits), fig4.wall_seconds));
  std::fprintf(out,
               "    \"mesh8x8_hotspot\": {\"sim_cycles\": %llu, "
               "\"delivered_flits\": %llu, \"results_identical\": %s,\n"
               "      \"dense\": {\"wall_seconds\": %.6f, "
               "\"cycles_per_sec\": %.0f},\n"
               "      \"active_set_dense_pipeline\": {\"wall_seconds\": %.6f, "
               "\"cycles_per_sec\": %.0f},\n"
               "      \"active_set\": {\"wall_seconds\": %.6f, "
               "\"cycles_per_sec\": %.0f},\n"
               "      \"audited_full\": {\"wall_seconds\": %.6f, "
               "\"cycles_per_sec\": %.0f},\n"
               "      \"audited_incremental\": {\"wall_seconds\": %.6f, "
               "\"cycles_per_sec\": %.0f},\n"
               "      \"kernel_speedup\": %.3f,\n"
               "      \"pipeline_speedup\": %.3f,\n"
               "      \"audited_speedup\": %.3f,\n"
               "      \"audit_overhead\": %.3f,\n"
               "      \"observer_share\": %.4f,\n"
               "      \"audit_violations\": %llu,\n",
               static_cast<unsigned long long>(active.cycles),
               static_cast<unsigned long long>(active.flits),
               identical ? "true" : "false", dense.wall_seconds,
               per_sec(static_cast<double>(dense.cycles), dense.wall_seconds),
               active_dense_pipeline.wall_seconds,
               per_sec(static_cast<double>(active_dense_pipeline.cycles),
                       active_dense_pipeline.wall_seconds),
               active.wall_seconds,
               per_sec(static_cast<double>(active.cycles),
                       active.wall_seconds),
               audited_full.wall_seconds,
               per_sec(static_cast<double>(audited_full.cycles),
                       audited_full.wall_seconds),
               audited_incremental.wall_seconds,
               per_sec(static_cast<double>(audited_incremental.cycles),
                       audited_incremental.wall_seconds),
               kernel_speedup, pipeline_speedup, audited_speedup,
               audit_overhead, observer_share,
               static_cast<unsigned long long>(
                   instrumented.audit_violations));
  std::fprintf(out, "      \"stage_breakdown\": {\"total_ticks\": %llu",
               static_cast<unsigned long long>(grand));
  for (std::size_t s = 0; s < metrics::kNumStages; ++s) {
    const auto stage = static_cast<metrics::Stage>(s);
    const auto& total = counters.total(stage);
    std::fprintf(out, ", \"%s\": {\"ticks\": %llu, \"calls\": %llu}",
                 metrics::stage_name(stage),
                 static_cast<unsigned long long>(total.ticks),
                 static_cast<unsigned long long>(total.calls));
  }
  std::fprintf(out, "}},\n");
  // Both sweep legs always run and are always recorded; parallel_forced
  // marks the oversubscribed single-hardware-thread measurement.
  std::fprintf(out,
               "    \"sweep_50seed\": {\"seeds\": %zu, \"jobs\": %zu, "
               "\"hardware_threads\": %zu, \"serial_seconds\": %.6f, "
               "\"parallel_forced\": %s, "
               "\"parallel_seconds\": %.6f, "
               "\"parallel_speedup\": %.3f},\n",
               sweep_seeds, parallel_jobs, hardware_threads, sweep_serial,
               parallel_forced ? "true" : "false", sweep_parallel,
               sweep_speedup);
  std::fprintf(out,
               "    \"threads_scaling\": {\"scaling_cycles\": %llu, "
               "\"pattern\": \"uniform\", \"hardware_threads\": %zu, "
               "\"results_identical\": %s",
               static_cast<unsigned long long>(scaling_cycles),
               hardware_threads, scaling_identical ? "true" : "false");
  for (std::size_t d = 0; d < 2; ++d) {
    std::fprintf(out,
                 ",\n      \"mesh%ux%u\": {\"sim_cycles\": %llu, "
                 "\"delivered_flits\": %llu",
                 kScalingDims[d], kScalingDims[d],
                 static_cast<unsigned long long>(scaling[d][0].cycles),
                 static_cast<unsigned long long>(scaling[d][0].flits));
    for (std::size_t t = 0; t < 4; ++t) {
      const NetworkRun& leg = scaling[d][t];
      const double speedup = leg.wall_seconds > 0.0
                                 ? scaling[d][0].wall_seconds / leg.wall_seconds
                                 : 0.0;
      std::fprintf(out,
                   ", \"threads%u\": {\"wall_seconds\": %.6f, "
                   "\"cycles_per_sec\": %.0f, \"speedup\": %.3f}",
                   kScalingThreads[t], leg.wall_seconds,
                   per_sec(static_cast<double>(leg.cycles), leg.wall_seconds),
                   speedup);
    }
    std::fprintf(out, "}");
  }
  std::fprintf(out, "}\n");
  std::fprintf(out, "  }\n}\n");
  std::fclose(out);
  std::printf("wrote %s\n", cli.get("out").c_str());

  // Run manifest next to the JSON: the same provenance record every
  // traced run writes (docs/OBSERVABILITY.md), so downstream tooling can
  // treat bench outputs and sweep outputs uniformly.
  obs::RunManifest manifest;
  manifest.tool = "bench_perf_kernel";
  for (const auto& [name, value] : cli.items())
    manifest.add_config(name, value);
  manifest.add_counter("kernel_speedup", kernel_speedup);
  manifest.add_counter("pipeline_speedup", pipeline_speedup);
  manifest.add_counter("audited_speedup", audited_speedup);
  manifest.add_counter("audit_overhead", audit_overhead);
  manifest.add_counter("observer_share", observer_share);
  manifest.add_counter("sweep_speedup", sweep_speedup);
  manifest.add_counter(
      "threads8_speedup_mesh32x32",
      scaling[1][3].wall_seconds > 0.0
          ? scaling[1][0].wall_seconds / scaling[1][3].wall_seconds
          : 0.0);
  manifest.add_counter("hotspot_cycles",
                       static_cast<double>(active.cycles));
  manifest.add_counter("hotspot_flits", static_cast<double>(active.flits));
  manifest.violations = instrumented.audit_violations;
  const std::string manifest_path = cli.get("out") + ".manifest.json";
  manifest.write_file(manifest_path);
  std::printf("wrote %s\n", manifest_path.c_str());
  return 0;
}
