// Simulator performance baseline: the numbers future PRs are held to.
//
// Three canonical scenarios, chosen to cover the three hot paths the
// performance layer owns:
//   1. fig4-standalone — the scenario runner replaying the paper's Fig. 4
//      workload through ERR (scheduler + metrics hot loop);
//   2. mesh8x8-hotspot — the wormhole substrate with the hot ejection
//      port driven just past saturation (0.5 * rate * 64 nodes * 6.5
//      mean flits ~ 1.25 flits/cycle at the default --hotspot-rate),
//      measured with active-set scheduling and with the legacy dense
//      tick-everything loop (the kernel speedup claim), results checked
//      bit-identical;
//   3. sweep-50seed — wall time of a 50-seed standalone sweep, serial vs
//      --jobs workers (the parallel-sweep speedup claim; bounded by the
//      machine's core count).
// Prints an ASCII table and writes the machine-readable BENCH_perf.json
// (schema wormsched-perf-v2) that reproduce.sh copies to the repo root.
// v2 adds a provenance block — jobs, compiler, build type, git SHA — so a
// baseline can be traced to the build that produced it.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "common/thread_pool.hpp"
#include "harness/network_sweep.hpp"
#include "harness/paper_workloads.hpp"
#include "harness/scenario.hpp"
#include "harness/sweep.hpp"

using namespace wormsched;
using namespace wormsched::harness;

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  const auto elapsed = std::chrono::steady_clock::now() - start;
  return std::chrono::duration<double>(elapsed).count();
}

struct StandaloneRun {
  double wall_seconds = 0.0;
  Cycle cycles = 0;
  std::uint64_t flits = 0;
};

StandaloneRun run_fig4_standalone(Cycle horizon) {
  ScenarioConfig config;
  config.horizon = horizon;
  config.flit_bytes = kPaperFlitBytes;
  const traffic::WorkloadSpec workload = fig4_workload();
  const auto start = std::chrono::steady_clock::now();
  const ScenarioResult result = run_scenario("err", config, workload);
  StandaloneRun run;
  run.wall_seconds = seconds_since(start);
  run.cycles = result.end_cycle;
  run.flits = static_cast<std::uint64_t>(result.service_log.grand_total());
  return run;
}

struct NetworkRun {
  double wall_seconds = 0.0;
  Cycle cycles = 0;
  std::uint64_t flits = 0;
  std::uint64_t delivered_packets = 0;
};

NetworkRun run_hotspot(Cycle inject_cycles, double rate, bool dense_tick) {
  NetworkScenarioConfig config;
  config.network.topo = wormhole::TopologySpec::mesh(8, 8);
  config.network.dense_tick = dense_tick;
  config.traffic.packets_per_node_per_cycle = rate;
  config.traffic.inject_until = inject_cycles;
  config.traffic.lengths = traffic::LengthSpec::uniform(1, 12);
  config.traffic.pattern.kind = wormhole::PatternSpec::Kind::kHotspot;
  const auto start = std::chrono::steady_clock::now();
  const NetworkScenarioResult result = run_network_scenario(config, 7);
  NetworkRun run;
  run.wall_seconds = seconds_since(start);
  run.cycles = result.end_cycle;
  run.flits = result.delivered_flits;
  run.delivered_packets = result.delivered_packets;
  return run;
}

double run_sweep(std::size_t seeds, std::size_t jobs, Cycle horizon) {
  ScenarioConfig config;
  config.horizon = horizon;
  config.drain = true;
  SweepOptions options;
  options.base_seed = 1;
  options.seeds = seeds;
  options.jobs = jobs;
  const traffic::WorkloadSpec workload = fig4_workload();
  const auto start = std::chrono::steady_clock::now();
  const SweepResult result = sweep_scenario(
      "err", config, workload, options,
      [](const ScenarioResult& r, SweepResult& out) {
        out.add("mean_delay", r.delays.overall().mean());
        out.add("served", static_cast<double>(r.service_log.grand_total()));
      });
  (void)result;
  return seconds_since(start);
}

double per_sec(double quantity, double secs) {
  return secs > 0.0 ? quantity / secs : 0.0;
}

// Set per-target from CMAKE_BUILD_TYPE; "unknown" outside CMake.
#ifndef WORMSCHED_BUILD_TYPE
#define WORMSCHED_BUILD_TYPE "unknown"
#endif

std::string compiler_id() {
#if defined(__clang__)
  return std::string("clang ") + __clang_version__;
#elif defined(__GNUC__)
  return std::string("gcc ") + __VERSION__;
#else
  return "unknown";
#endif
}

// reproduce.sh exports the checkout's SHA; a perf number without the
// commit it measured is unreviewable.
std::string git_sha() {
  const char* sha = std::getenv("WORMSCHED_GIT_SHA");
  return sha != nullptr && *sha != '\0' ? sha : "unknown";
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli("simulator perf baseline: kernel + sweep throughput");
  cli.add_option("fig4-cycles", "standalone scenario horizon", "400000");
  cli.add_option("hotspot-cycles", "8x8 hotspot injection cycles", "20000");
  cli.add_option("hotspot-rate", "packets/node/cycle into the hotspot run",
                 "0.006");
  cli.add_option("sweep-seeds", "seeds in the sweep scenario", "50");
  cli.add_option("sweep-cycles", "per-seed horizon in the sweep", "20000");
  cli.add_option("out", "output JSON path", "BENCH_perf.json");
  add_jobs_option(cli, /*default_value=*/"0");
  if (!cli.parse(argc, argv)) return 1;

  const Cycle fig4_cycles = cli.get_uint("fig4-cycles");
  const Cycle hotspot_cycles = cli.get_uint("hotspot-cycles");
  const std::size_t sweep_seeds = cli.get_uint("sweep-seeds");
  const Cycle sweep_cycles = cli.get_uint("sweep-cycles");
  const std::size_t jobs = resolve_jobs(cli);

  const StandaloneRun fig4 = run_fig4_standalone(fig4_cycles);

  const double hotspot_rate = cli.get_double("hotspot-rate");
  const NetworkRun dense =
      run_hotspot(hotspot_cycles, hotspot_rate, /*dense_tick=*/true);
  const NetworkRun active =
      run_hotspot(hotspot_cycles, hotspot_rate, /*dense_tick=*/false);
  const bool identical = dense.cycles == active.cycles &&
                         dense.flits == active.flits &&
                         dense.delivered_packets == active.delivered_packets;
  if (!identical) {
    std::fprintf(stderr,
                 "FATAL: active-set run diverged from dense baseline "
                 "(cycles %llu vs %llu, flits %llu vs %llu)\n",
                 static_cast<unsigned long long>(active.cycles),
                 static_cast<unsigned long long>(dense.cycles),
                 static_cast<unsigned long long>(active.flits),
                 static_cast<unsigned long long>(dense.flits));
    return 1;
  }
  const double kernel_speedup =
      active.wall_seconds > 0.0 ? dense.wall_seconds / active.wall_seconds
                                : 0.0;

  const double sweep_serial = run_sweep(sweep_seeds, 1, sweep_cycles);
  const double sweep_parallel = run_sweep(sweep_seeds, jobs, sweep_cycles);
  const double sweep_speedup =
      sweep_parallel > 0.0 ? sweep_serial / sweep_parallel : 0.0;

  AsciiTable table("simulator perf baseline (wall-clock)");
  table.set_header({"scenario", "wall s", "cycles/s", "flits/s", "speedup"});
  table.add_row("fig4 standalone (ERR)", fixed(fig4.wall_seconds, 3),
                fixed(per_sec(static_cast<double>(fig4.cycles),
                              fig4.wall_seconds), 0),
                fixed(per_sec(static_cast<double>(fig4.flits),
                              fig4.wall_seconds), 0),
                "-");
  table.add_row("8x8 hotspot, dense tick", fixed(dense.wall_seconds, 3),
                fixed(per_sec(static_cast<double>(dense.cycles),
                              dense.wall_seconds), 0),
                fixed(per_sec(static_cast<double>(dense.flits),
                              dense.wall_seconds), 0),
                "1.00 (baseline)");
  table.add_row("8x8 hotspot, active set", fixed(active.wall_seconds, 3),
                fixed(per_sec(static_cast<double>(active.cycles),
                              active.wall_seconds), 0),
                fixed(per_sec(static_cast<double>(active.flits),
                              active.wall_seconds), 0),
                fixed(kernel_speedup, 2));
  table.add_row("sweep " + std::to_string(sweep_seeds) + " seeds, jobs=1",
                fixed(sweep_serial, 3), "-", "-", "1.00 (baseline)");
  table.add_row("sweep " + std::to_string(sweep_seeds) +
                    " seeds, jobs=" + std::to_string(jobs),
                fixed(sweep_parallel, 3), "-", "-", fixed(sweep_speedup, 2));
  table.print(std::cout);
  std::printf("(active-set results verified identical to the dense "
              "baseline; sweep speedup is bounded\n by the %zu hardware "
              "thread(s) of this machine)\n",
              ThreadPool::hardware_workers());

  FILE* out = std::fopen(cli.get("out").c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", cli.get("out").c_str());
    return 1;
  }
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"schema\": \"wormsched-perf-v2\",\n");
  std::fprintf(out, "  \"hardware_threads\": %zu,\n",
               ThreadPool::hardware_workers());
  std::fprintf(out,
               "  \"provenance\": {\"jobs\": %zu, \"compiler\": \"%s\", "
               "\"build_type\": \"%s\", \"git_sha\": \"%s\"},\n",
               jobs, compiler_id().c_str(), WORMSCHED_BUILD_TYPE,
               git_sha().c_str());
  std::fprintf(out, "  \"scenarios\": {\n");
  std::fprintf(out,
               "    \"fig4_standalone\": {\"wall_seconds\": %.6f, "
               "\"sim_cycles\": %llu, \"served_flits\": %llu, "
               "\"cycles_per_sec\": %.0f, \"flits_per_sec\": %.0f},\n",
               fig4.wall_seconds,
               static_cast<unsigned long long>(fig4.cycles),
               static_cast<unsigned long long>(fig4.flits),
               per_sec(static_cast<double>(fig4.cycles), fig4.wall_seconds),
               per_sec(static_cast<double>(fig4.flits), fig4.wall_seconds));
  std::fprintf(out,
               "    \"mesh8x8_hotspot\": {\"sim_cycles\": %llu, "
               "\"delivered_flits\": %llu, \"results_identical\": %s,\n"
               "      \"dense\": {\"wall_seconds\": %.6f, "
               "\"cycles_per_sec\": %.0f},\n"
               "      \"active_set\": {\"wall_seconds\": %.6f, "
               "\"cycles_per_sec\": %.0f},\n"
               "      \"kernel_speedup\": %.3f},\n",
               static_cast<unsigned long long>(active.cycles),
               static_cast<unsigned long long>(active.flits),
               identical ? "true" : "false", dense.wall_seconds,
               per_sec(static_cast<double>(dense.cycles), dense.wall_seconds),
               active.wall_seconds,
               per_sec(static_cast<double>(active.cycles),
                       active.wall_seconds),
               kernel_speedup);
  std::fprintf(out,
               "    \"sweep_50seed\": {\"seeds\": %zu, \"jobs\": %zu, "
               "\"serial_seconds\": %.6f, \"parallel_seconds\": %.6f, "
               "\"parallel_speedup\": %.3f}\n",
               sweep_seeds, jobs, sweep_serial, sweep_parallel,
               sweep_speedup);
  std::fprintf(out, "  }\n}\n");
  std::fclose(out);
  std::printf("wrote %s\n", cli.get("out").c_str());
  return 0;
}
