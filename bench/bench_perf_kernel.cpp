// Simulator performance baseline: the numbers future PRs are held to.
//
// Three canonical scenarios, chosen to cover the three hot paths the
// performance layer owns:
//   1. fig4-standalone — the scenario runner replaying the paper's Fig. 4
//      workload through ERR (scheduler + metrics hot loop);
//   2. mesh8x8-hotspot — the wormhole substrate with the hot ejection
//      port driven just past saturation (0.5 * rate * 64 nodes * 6.5
//      mean flits ~ 1.25 flits/cycle at the default --hotspot-rate),
//      measured three ways: the legacy dense tick-everything loop, the
//      active set with the dense full-scan router pipeline (the previous
//      baseline), and the active set with the bitmask-sparse router
//      pipeline (the production configuration), plus two audited legs on
//      the production configuration — the full-rescan auditor (the
//      pre-incremental baseline) and the incremental dirty-set auditor —
//      giving the audited-vs-unaudited overhead and the incremental
//      speedup.  All runs are checked flit-for-flit identical; a final
//      instrumented run (never timed against the others) attaches the
//      per-stage perf counters plus the incremental auditor and yields
//      the stage breakdown with the observer share;
//   3. sweep-50seed — wall time of a 50-seed standalone sweep, serial vs
//      --jobs workers.  Both legs always run: on a single-hardware-thread
//      machine the parallel leg is forced to 2 jobs and flagged
//      parallel_forced (an oversubscription measurement, but the speedup
//      column must never be absent — CI guards read it unconditionally);
//   4. threads-scaling — the sharded network tick on mesh16x16 and
//      mesh32x32 uniform traffic at 1/2/4/8 threads (shards = threads),
//      every leg checked flit-for-flit identical to the serial run;
//   5. flow-scaling — the SoA scheduler core driven bare (no scenario
//      runner: its per-cycle activity scan is O(num_flows)) over a
//      synthesized multi-tenant trace whose backlogged-flow population
//      scales with the flow count, at 10k/100k/1M flows for ERR vs DRR
//      vs SCFQ.  The paper's Table 1 claim made measurable: ERR's
//      ns/flit stays flat while the timestamp discipline's grows with
//      the backlog; a paper-scale ERR run is additionally checked
//      packet-for-packet against an AoS deque transcription of Fig. 1
//      (the pre-pool state layout) and recorded as results_identical.
//   6. flow-control — the same 8x8 hotspot point under credit vs on/off
//      (threshold) backpressure, reported as ns/flit per scheme.  The
//      schemes legitimately time flits differently, so the cross-check
//      is packet-set equality (same delivered packets and flits), not
//      cycle identity.
// Prints an ASCII table and writes the machine-readable BENCH_perf.json
// (schema wormsched-perf-v7) that reproduce.sh copies to the repo root.
// v2 added a provenance block — jobs, compiler, build type, git SHA; v3
// added the pipeline split, the stage breakdown and the sweep skip flag;
// v4 added the audited legs (audited/unaudited cycles_per_sec,
// audited_speedup, audit_overhead, observer_share) and always records
// the sweep's serial leg; v5 adds the threads_scaling block and replaces
// the sweep's parallel_skipped flag with the always-run parallel_forced
// leg; v6 adds the flow_scaling block and the threads_scaling `forced`
// annotation (single-hardware-thread sharding measures oversubscription,
// not scaling — CI's ratio floors must not fire on that noise); v7 adds
// the flow_control block (credit vs on/off ns/flit on the hotspot point).
#include <algorithm>
#include <array>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <iostream>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#if defined(__linux__)
#include <unistd.h>
#endif

#include "common/cli.hpp"
#include "common/table.hpp"
#include "common/thread_pool.hpp"
#include "core/err.hpp"
#include "core/registry.hpp"
#include "harness/network_sweep.hpp"
#include "harness/paper_workloads.hpp"
#include "harness/scenario.hpp"
#include "harness/sweep.hpp"
#include "metrics/perf_counters.hpp"
#include "obs/manifest.hpp"
#include "traffic/trace_synth.hpp"

using namespace wormsched;
using namespace wormsched::harness;

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  const auto elapsed = std::chrono::steady_clock::now() - start;
  return std::chrono::duration<double>(elapsed).count();
}

struct StandaloneRun {
  double wall_seconds = 0.0;
  Cycle cycles = 0;
  std::uint64_t flits = 0;
};

StandaloneRun run_fig4_standalone(Cycle horizon) {
  ScenarioConfig config;
  config.horizon = horizon;
  config.flit_bytes = kPaperFlitBytes;
  const traffic::WorkloadSpec workload = fig4_workload();
  const auto start = std::chrono::steady_clock::now();
  const ScenarioResult result = run_scenario("err", config, workload);
  StandaloneRun run;
  run.wall_seconds = seconds_since(start);
  run.cycles = result.end_cycle;
  run.flits = static_cast<std::uint64_t>(result.service_log.grand_total());
  return run;
}

struct NetworkRun {
  double wall_seconds = 0.0;
  Cycle cycles = 0;
  std::uint64_t flits = 0;
  std::uint64_t delivered_packets = 0;
  std::uint64_t audit_violations = 0;
};

struct HotspotMode {
  bool dense_tick = false;
  bool dense_pipeline = false;
  metrics::PerfCounters* perf_counters = nullptr;
  bool audit = false;
  validate::AuditMode audit_mode = validate::AuditMode::kIncremental;
  bool audit_err = true;
  wormhole::FlowControl flow_control = wormhole::FlowControl::kCredit;
};

NetworkRun run_hotspot(Cycle inject_cycles, double rate,
                       const HotspotMode& mode) {
  NetworkScenarioConfig config;
  config.network.topo = wormhole::TopologySpec::mesh(8, 8);
  config.network.dense_tick = mode.dense_tick;
  config.network.router.dense_pipeline = mode.dense_pipeline;
  config.network.router.flow_control = mode.flow_control;
  config.traffic.packets_per_node_per_cycle = rate;
  config.traffic.inject_until = inject_cycles;
  config.traffic.lengths = traffic::LengthSpec::uniform(1, 12);
  config.traffic.pattern.kind = wormhole::PatternSpec::Kind::kHotspot;
  config.perf_counters = mode.perf_counters;
  config.audit = mode.audit;
  config.audit_config.mode = mode.audit_mode;
  config.audit_err = mode.audit_err;
  // Three timed repetitions, keeping the fastest wall clock: the legs
  // are compared as ratios, so scheduler noise on either side skews the
  // headline numbers more than any real effect at these run lengths
  // (the fast legs finish in tens of milliseconds, where a single
  // scheduler preemption is a double-digit-percent error).  All
  // repetitions are deterministic replays of the same seed, so the
  // simulation outputs are identical; the instrumented run keeps one
  // repetition (its counters must cover exactly one run).
  const int reps = mode.perf_counters != nullptr ? 1 : 3;
  NetworkRun run;
  for (int rep = 0; rep < reps; ++rep) {
    const auto start = std::chrono::steady_clock::now();
    const NetworkScenarioResult result = run_network_scenario(config, 7);
    const double wall = seconds_since(start);
    if (rep == 0 || wall < run.wall_seconds) run.wall_seconds = wall;
    run.cycles = result.end_cycle;
    run.flits = result.delivered_flits;
    run.delivered_packets = result.delivered_packets;
    run.audit_violations = result.audit_violations;
  }
  return run;
}

double run_sweep(std::size_t seeds, std::size_t jobs, Cycle horizon) {
  ScenarioConfig config;
  config.horizon = horizon;
  config.drain = true;
  SweepOptions options;
  options.base_seed = 1;
  options.seeds = seeds;
  options.jobs = jobs;
  const traffic::WorkloadSpec workload = fig4_workload();
  const auto start = std::chrono::steady_clock::now();
  const SweepResult result = sweep_scenario(
      "err", config, workload, options,
      [](const ScenarioResult& r, SweepResult& out) {
        out.add("mean_delay", r.delays.overall().mean());
        out.add("served", static_cast<double>(r.service_log.grand_total()));
      });
  (void)result;
  return seconds_since(start);
}

// One leg of the threads-scaling sweep: a dim x dim mesh under uniform
// traffic, ticked with `threads` worker threads over `threads` shard
// domains (threads == 1 is the serial kernel).  Uniform traffic keeps
// every shard busy, which is what a scaling measurement needs; min-of-2
// repetitions bounds scheduler noise without doubling the bench cost on
// the big mesh.
NetworkRun run_scaling(Cycle inject_cycles, std::uint32_t dim,
                       std::uint32_t threads) {
  NetworkScenarioConfig config;
  config.network.topo = wormhole::TopologySpec::mesh(dim, dim);
  config.network.threads = threads;
  config.network.shards = threads;
  config.traffic.packets_per_node_per_cycle = 0.02;
  config.traffic.inject_until = inject_cycles;
  config.traffic.lengths = traffic::LengthSpec::uniform(1, 12);
  NetworkRun run;
  for (int rep = 0; rep < 2; ++rep) {
    const auto start = std::chrono::steady_clock::now();
    const NetworkScenarioResult result = run_network_scenario(config, 7);
    const double wall = seconds_since(start);
    if (rep == 0 || wall < run.wall_seconds) run.wall_seconds = wall;
    run.cycles = result.end_cycle;
    run.flits = result.delivered_flits;
    run.delivered_packets = result.delivered_packets;
    run.audit_violations = result.audit_violations;
  }
  return run;
}

double per_sec(double quantity, double secs) {
  return secs > 0.0 ? quantity / secs : 0.0;
}

/// Resident set size in bytes (0 where /proc is unavailable) — the
/// flow-scaling legs report real memory per flow, not sizeof arithmetic.
long rss_bytes() {
#if defined(__linux__)
  long pages = 0, resident = 0;
  FILE* f = std::fopen("/proc/self/statm", "r");
  if (f == nullptr) return 0;
  const int got = std::fscanf(f, "%ld %ld", &pages, &resident);
  std::fclose(f);
  if (got != 2) return 0;
  return resident * sysconf(_SC_PAGESIZE);
#else
  return 0;
#endif
}

/// The flow-scaling workload: a fan-in prelude (every 4th flow opens
/// with one 96-flit packet at cycle 0, so the backlogged population —
/// what timestamp heaps pay for — scales with the flow count) followed
/// by a synthesized multi-tenant mix over `horizon` cycles.  Packets are
/// wormhole-message sized (tens of flits): per-packet costs — the
/// disciplines' bookkeeping and the cold-cache hit of touching a random
/// flow's state — amortize over the flits of each packet, which is
/// exactly the regime the paper's O(1)-per-packet claim is about.
traffic::Trace make_flow_scale_trace(std::size_t flows, Cycle horizon) {
  traffic::Trace trace;
  trace.num_flows = flows;
  for (std::size_t f = 0; f < flows; f += 4)
    trace.entries.push_back(traffic::TraceEntry{
        0, FlowId(static_cast<FlowId::rep_type>(f)), 96});
  traffic::SynthSpec spec;
  spec.num_flows = flows;
  spec.horizon = horizon;
  spec.load = 0.85;
  spec.elephant_fraction = 0.05;
  spec.elephant_share = 0.4;
  spec.mice_min_length = 32;
  spec.mice_max_length = 96;
  spec.elephant_min_length = 192;
  spec.elephant_max_length = 512;
  spec.incast_every = horizon / 8;
  spec.incast_fanin = flows / 64 + 1;
  traffic::synthesize_trace(spec, 42, [&](const traffic::TraceEntry& e) {
    trace.entries.push_back(e);
  });
  return trace;
}

struct FlowScaleRun {
  double wall_seconds = 0.0;
  Cycle cycles = 0;
  std::uint64_t flits = 0;
  double bytes_per_flow = 0.0;
};

/// Drives one discipline bare over the trace: enqueue this cycle's
/// arrivals, offer one transmission slot, run to drain.  No observers,
/// no activity scan — this times the scheduler core and nothing else.
/// Fastest of `reps` repetitions (a fresh scheduler each time): the
/// small-flow-count legs finish in milliseconds, where one scheduler
/// preemption would swamp the growth ratios the CI guard reads.
FlowScaleRun run_flow_scale(std::string_view sched,
                            const traffic::Trace& trace, int reps) {
  const long rss_before = rss_bytes();
  FlowScaleRun run;
  for (int rep = 0; rep < reps; ++rep) {
    core::SchedulerParams params;
    params.num_flows = trace.num_flows;
    params.drr_quantum = trace.max_observed_length();
    const std::unique_ptr<core::Scheduler> scheduler =
        core::make_scheduler(sched, params);
    if (scheduler == nullptr) {
      std::fprintf(stderr, "FATAL: unknown scheduler '%s'\n",
                   std::string(sched).c_str());
      std::exit(1);
    }
    std::uint64_t flits = 0;
    const auto start = std::chrono::steady_clock::now();
    std::size_t next_arrival = 0;
    PacketId::rep_type next_id = 0;
    for (Cycle t = 0;; ++t) {
      while (next_arrival < trace.entries.size() &&
             trace.entries[next_arrival].cycle == t) {
        const traffic::TraceEntry& e = trace.entries[next_arrival++];
        scheduler->enqueue(t, core::Packet{.id = PacketId(next_id++),
                                           .flow = e.flow,
                                           .length = e.length,
                                           .arrival = t});
      }
      if (scheduler->pull_flit(t).has_value()) ++flits;
      if (next_arrival >= trace.entries.size() && scheduler->idle()) {
        run.cycles = t + 1;
        break;
      }
    }
    const double wall = seconds_since(start);
    if (rep == 0 || wall < run.wall_seconds) run.wall_seconds = wall;
    run.flits = flits;
    if (rep == 0) {
      // Sampled while the scheduler is still alive: its big arrays are
      // mmap-backed and leave RSS the moment it is destroyed.
      const long rss_after = rss_bytes();
      run.bytes_per_flow =
          trace.num_flows > 0 && rss_after > rss_before
              ? static_cast<double>(rss_after - rss_before) /
                    static_cast<double>(trace.num_flows)
              : 0.0;
    }
  }
  return run;
}

struct OracleRecord {
  Cycle start;
  std::uint32_t flow;
  Flits length;
  bool operator==(const OracleRecord&) const = default;
};

/// Packet-granularity transcription of the paper's Fig. 1 pseudo-code in
/// the pre-pool state layout (per-flow deques, a deque ActiveList) — the
/// reference the pool-backed ERR must reproduce packet for packet.
std::vector<OracleRecord> err_aos_oracle(const traffic::Trace& trace) {
  const std::size_t n = trace.num_flows;
  std::vector<std::deque<Flits>> queues(n);
  std::vector<double> sc(n, 0.0);
  std::vector<bool> active(n, false);
  std::deque<std::size_t> active_list;
  double prev_max_sc = 0.0, max_sc = 0.0;
  std::size_t rr_visit_count = 0;
  std::size_t next_arrival = 0;
  const auto deliver_upto = [&](Cycle t) {
    while (next_arrival < trace.entries.size() &&
           trace.entries[next_arrival].cycle <= t) {
      const auto& e = trace.entries[next_arrival++];
      const std::size_t f = e.flow.index();
      queues[f].push_back(e.length);
      if (!active[f]) {
        active[f] = true;
        sc[f] = 0.0;
        active_list.push_back(f);
      }
    }
  };
  std::vector<OracleRecord> schedule;
  Cycle t = 0;
  for (;;) {
    deliver_upto(t);
    if (active_list.empty()) {
      if (next_arrival >= trace.entries.size()) break;
      t = std::max(t, trace.entries[next_arrival].cycle);
      continue;
    }
    if (rr_visit_count == 0) {
      prev_max_sc = max_sc;
      rr_visit_count = active_list.size();
      max_sc = 0.0;
    }
    const std::size_t f = active_list.front();
    active_list.pop_front();
    const double allowance = 1.0 + prev_max_sc - sc[f];
    double sent = 0.0;
    do {
      const Flits len = queues[f].front();
      queues[f].pop_front();
      schedule.push_back(
          OracleRecord{t, static_cast<std::uint32_t>(f), len});
      t += static_cast<Cycle>(len);
      sent += static_cast<double>(len);
      deliver_upto(t - 1);
    } while (sent < allowance && !queues[f].empty());
    sc[f] = sent - allowance;
    if (sc[f] > max_sc) max_sc = sc[f];
    if (!queues[f].empty()) {
      active_list.push_back(f);
    } else {
      sc[f] = 0.0;
      active[f] = false;
    }
    --rr_visit_count;
  }
  return schedule;
}

/// Pool-backed ERR vs the AoS oracle on a paper-scale config (8 flows,
/// the trace-synth front end).  True iff the service schedules match
/// packet for packet.
bool flow_scale_results_identical() {
  traffic::SynthSpec spec;
  spec.num_flows = 8;
  spec.horizon = 20000;
  spec.load = 0.9;
  spec.elephant_fraction = 0.25;
  spec.mice_min_length = 1;
  spec.mice_max_length = 16;
  spec.elephant_min_length = 16;
  spec.elephant_max_length = 64;
  const traffic::Trace trace = traffic::synthesize_trace(spec, 7);

  core::ErrScheduler scheduler(core::ErrConfig{trace.num_flows});
  struct Probe final : core::SchedulerObserver {
    void on_flit(Cycle now, const core::FlitEvent& flit) override {
      if (flit.is_head)
        schedule.push_back(OracleRecord{now, flit.flow.value(), 0});
    }
    void on_packet_departure(Cycle, const core::Packet& p) override {
      schedule[next_departure++].length = p.length;
    }
    std::vector<OracleRecord> schedule;
    std::size_t next_departure = 0;
  } probe;
  scheduler.set_observer(&probe);
  std::size_t next_arrival = 0;
  PacketId::rep_type next_id = 0;
  for (Cycle t = 0;; ++t) {
    while (next_arrival < trace.entries.size() &&
           trace.entries[next_arrival].cycle == t) {
      const traffic::TraceEntry& e = trace.entries[next_arrival++];
      scheduler.enqueue(t, core::Packet{.id = PacketId(next_id++),
                                        .flow = e.flow,
                                        .length = e.length,
                                        .arrival = t});
    }
    (void)scheduler.pull_flit(t);
    if (next_arrival >= trace.entries.size() && scheduler.idle()) break;
  }
  return probe.schedule == err_aos_oracle(trace);
}

// Set per-target from CMAKE_BUILD_TYPE; "unknown" outside CMake.
#ifndef WORMSCHED_BUILD_TYPE
#define WORMSCHED_BUILD_TYPE "unknown"
#endif

std::string compiler_id() {
#if defined(__clang__)
  return std::string("clang ") + __clang_version__;
#elif defined(__GNUC__)
  return std::string("gcc ") + __VERSION__;
#else
  return "unknown";
#endif
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli("simulator perf baseline: kernel + sweep throughput");
  cli.add_option("fig4-cycles", "standalone scenario horizon", "400000");
  cli.add_option("hotspot-cycles", "8x8 hotspot injection cycles", "60000");
  cli.add_option("hotspot-rate", "packets/node/cycle into the hotspot run",
                 "0.006");
  cli.add_option("sweep-seeds", "seeds in the sweep scenario", "50");
  cli.add_option("sweep-cycles", "per-seed horizon in the sweep", "20000");
  cli.add_option("scaling-cycles",
                 "injection cycles per threads-scaling leg (CI shrinks this)",
                 "8000");
  cli.add_option("flow-scale-flows",
                 "comma-separated flow counts for the flow-scaling legs",
                 "10000,100000,1000000");
  cli.add_option("flow-scale-cycles",
                 "synthesized-trace horizon per flow-scaling leg",
                 "100000");
  cli.add_option("out", "output JSON path", "BENCH_perf.json");
  add_jobs_option(cli, /*default_value=*/"0");
  if (!cli.parse(argc, argv)) return 1;

  const Cycle fig4_cycles = cli.get_uint("fig4-cycles");
  const Cycle hotspot_cycles = cli.get_uint("hotspot-cycles");
  const std::size_t sweep_seeds = cli.get_uint("sweep-seeds");
  const Cycle sweep_cycles = cli.get_uint("sweep-cycles");
  const Cycle scaling_cycles = cli.get_uint("scaling-cycles");
  const std::size_t jobs = resolve_jobs(cli);
  const std::size_t hardware_threads = ThreadPool::hardware_workers();

  const StandaloneRun fig4 = run_fig4_standalone(fig4_cycles);

  const double hotspot_rate = cli.get_double("hotspot-rate");
  // Timed runs, uninstrumented: the legacy full-fabric/full-scan loop,
  // the previous baseline (active set over the dense router pipeline),
  // and the production kernel (active set over the sparse pipeline).
  const NetworkRun dense = run_hotspot(
      hotspot_cycles, hotspot_rate,
      HotspotMode{/*dense_tick=*/true, /*dense_pipeline=*/true});
  const NetworkRun active_dense_pipeline = run_hotspot(
      hotspot_cycles, hotspot_rate,
      HotspotMode{/*dense_tick=*/false, /*dense_pipeline=*/true});
  const NetworkRun active = run_hotspot(
      hotspot_cycles, hotspot_rate,
      HotspotMode{/*dense_tick=*/false, /*dense_pipeline=*/false});
  const auto same = [](const NetworkRun& a, const NetworkRun& b) {
    return a.cycles == b.cycles && a.flits == b.flits &&
           a.delivered_packets == b.delivered_packets;
  };
  const bool identical =
      same(dense, active) && same(active_dense_pipeline, active);
  if (!identical) {
    std::fprintf(stderr,
                 "FATAL: hotspot runs diverged (cycles %llu / %llu / %llu, "
                 "flits %llu / %llu / %llu)\n",
                 static_cast<unsigned long long>(dense.cycles),
                 static_cast<unsigned long long>(active_dense_pipeline.cycles),
                 static_cast<unsigned long long>(active.cycles),
                 static_cast<unsigned long long>(dense.flits),
                 static_cast<unsigned long long>(active_dense_pipeline.flits),
                 static_cast<unsigned long long>(active.flits));
    return 1;
  }
  const double kernel_speedup =
      active.wall_seconds > 0.0 ? dense.wall_seconds / active.wall_seconds
                                : 0.0;
  const double pipeline_speedup =
      active.wall_seconds > 0.0
          ? active_dense_pipeline.wall_seconds / active.wall_seconds
          : 0.0;

  // Audited legs on the production configuration: the every-cycle
  // full-rescan auditor (the pre-incremental baseline) vs the
  // incremental dirty-set auditor.  Both are timed uninstrumented; both
  // must reproduce the unaudited run flit-for-flit with zero violations.
  const NetworkRun audited_full = run_hotspot(
      hotspot_cycles, hotspot_rate,
      HotspotMode{/*dense_tick=*/false, /*dense_pipeline=*/false, nullptr,
                  /*audit=*/true, validate::AuditMode::kFull,
                  /*audit_err=*/false});
  const NetworkRun audited_incremental = run_hotspot(
      hotspot_cycles, hotspot_rate,
      HotspotMode{/*dense_tick=*/false, /*dense_pipeline=*/false, nullptr,
                  /*audit=*/true, validate::AuditMode::kIncremental,
                  /*audit_err=*/false});
  if (!same(audited_full, active) || !same(audited_incremental, active)) {
    std::fprintf(stderr,
                 "FATAL: audited runs diverged from the unaudited run\n");
    return 1;
  }
  if (audited_full.audit_violations != 0 ||
      audited_incremental.audit_violations != 0) {
    std::fprintf(stderr,
                 "FATAL: auditor violations in audited runs: %llu / %llu\n",
                 static_cast<unsigned long long>(
                     audited_full.audit_violations),
                 static_cast<unsigned long long>(
                     audited_incremental.audit_violations));
    return 1;
  }
  // Incremental auditing vs the full-rescan baseline, and what auditing
  // costs at all relative to the unaudited kernel.
  const double audited_speedup =
      audited_incremental.wall_seconds > 0.0
          ? audited_full.wall_seconds / audited_incremental.wall_seconds
          : 0.0;
  const double audit_overhead =
      active.wall_seconds > 0.0
          ? audited_incremental.wall_seconds / active.wall_seconds
          : 0.0;

  // Instrumented run: stage counters + incremental invariant auditor.
  // Never timed against the runs above; its wall clock pays for both
  // instruments.
  metrics::PerfCounters counters;
  const NetworkRun instrumented = run_hotspot(
      hotspot_cycles, hotspot_rate,
      HotspotMode{/*dense_tick=*/false, /*dense_pipeline=*/false, &counters,
                  /*audit=*/true});
  if (!same(instrumented, active)) {
    std::fprintf(stderr,
                 "FATAL: instrumented run diverged from the timed run\n");
    return 1;
  }
  if (instrumented.audit_violations != 0) {
    std::fprintf(stderr, "FATAL: auditor reported %llu violation(s)\n",
                 static_cast<unsigned long long>(
                     instrumented.audit_violations));
    return 1;
  }
  const std::uint64_t observer_ticks =
      counters.total(metrics::Stage::kObserver).ticks;
  const std::uint64_t grand_ticks = counters.grand_total_ticks();
  const double observer_share =
      grand_ticks > 0 ? static_cast<double>(observer_ticks) /
                            static_cast<double>(grand_ticks)
                      : 0.0;

  // Flow-control comparison: the production kernel's hotspot point under
  // on/off backpressure (the credit leg is `active`, already timed).
  // Cycle counts legitimately differ between schemes — the cross-check
  // is that the same packets (and therefore flits) were delivered.
  const NetworkRun onoff = run_hotspot(
      hotspot_cycles, hotspot_rate,
      HotspotMode{/*dense_tick=*/false, /*dense_pipeline=*/false, nullptr,
                  /*audit=*/false, validate::AuditMode::kIncremental,
                  /*audit_err=*/true, wormhole::FlowControl::kOnOff});
  const bool flow_control_identical =
      onoff.delivered_packets == active.delivered_packets &&
      onoff.flits == active.flits;
  if (!flow_control_identical) {
    std::fprintf(stderr,
                 "FATAL: on/off run delivered a different packet set than "
                 "the credit run\n");
    return 1;
  }
  const auto net_ns_per_flit = [](const NetworkRun& run) {
    return run.flits > 0
               ? run.wall_seconds * 1e9 / static_cast<double>(run.flits)
               : 0.0;
  };
  const double onoff_vs_credit =
      net_ns_per_flit(active) > 0.0
          ? net_ns_per_flit(onoff) / net_ns_per_flit(active)
          : 0.0;

  // The parallel sweep always runs.  On a single hardware thread a real
  // speedup is impossible, so the leg is forced to 2 jobs and flagged:
  // the number then measures oversubscription overhead, which is itself
  // worth tracking — and the speedup column is never absent, so CI
  // guards can read it unconditionally.
  const bool parallel_forced = hardware_threads < 2 || jobs < 2;
  const std::size_t parallel_jobs = std::max<std::size_t>(jobs, 2);
  const double sweep_serial = run_sweep(sweep_seeds, 1, sweep_cycles);
  const double sweep_parallel =
      run_sweep(sweep_seeds, parallel_jobs, sweep_cycles);
  const double sweep_speedup =
      sweep_parallel > 0.0 ? sweep_serial / sweep_parallel : 0.0;

  // Threads-scaling sweep for the sharded network tick.  The 1-thread
  // leg is the serial kernel; every sharded leg must reproduce it
  // flit for flit (the bench double-checks what the 200-seed fuzz suite
  // already proves, here at mesh16x16/mesh32x32 scale).
  constexpr std::uint32_t kScalingDims[] = {16, 32};
  constexpr std::uint32_t kScalingThreads[] = {1, 2, 4, 8};
  NetworkRun scaling[2][4];
  bool scaling_identical = true;
  for (std::size_t d = 0; d < 2; ++d) {
    for (std::size_t t = 0; t < 4; ++t) {
      scaling[d][t] =
          run_scaling(scaling_cycles, kScalingDims[d], kScalingThreads[t]);
      if (!same(scaling[d][t], scaling[d][0])) scaling_identical = false;
    }
  }
  if (!scaling_identical) {
    std::fprintf(stderr,
                 "FATAL: sharded threads-scaling runs diverged from the "
                 "serial kernel\n");
    return 1;
  }
  // On a single hardware thread the sharded legs measure oversubscription,
  // not scaling; the flag tells CI's ratio floors to stand down.
  const bool scaling_forced = hardware_threads < 2;

  // Flow-scaling legs: the SoA scheduler core driven bare at each flow
  // count over the same synthesized trace.  ERR runs first at each count
  // so its bytes-per-flow figure is measured against freshly mapped
  // memory; later legs at the same count are served from pages the
  // allocator already holds and may legitimately report ~0.
  std::vector<std::size_t> flow_counts;
  {
    const std::string list = cli.get("flow-scale-flows");
    std::size_t pos = 0;
    while (pos < list.size()) {
      std::size_t next = list.find(',', pos);
      if (next == std::string::npos) next = list.size();
      flow_counts.push_back(static_cast<std::size_t>(
          std::stoull(list.substr(pos, next - pos))));
      pos = next + 1;
    }
  }
  if (flow_counts.empty()) {
    std::fprintf(stderr, "FATAL: --flow-scale-flows names no flow counts\n");
    return 1;
  }
  const Cycle flow_scale_cycles = cli.get_uint("flow-scale-cycles");
  constexpr std::string_view kFlowScaleScheds[] = {"err", "drr", "scfq"};
  constexpr std::size_t kNumFlowScaleScheds = 3;
  std::vector<std::array<FlowScaleRun, kNumFlowScaleScheds>> flow_scale(
      flow_counts.size());
  for (std::size_t i = 0; i < flow_counts.size(); ++i) {
    const traffic::Trace trace =
        make_flow_scale_trace(flow_counts[i], flow_scale_cycles);
    const int reps = flow_counts[i] >= 500'000 ? 2 : 3;
    for (std::size_t s = 0; s < kNumFlowScaleScheds; ++s)
      flow_scale[i][s] = run_flow_scale(kFlowScaleScheds[s], trace, reps);
  }
  const bool flow_scale_identical = flow_scale_results_identical();
  if (!flow_scale_identical) {
    std::fprintf(stderr,
                 "FATAL: pool-backed ERR diverged from the AoS Fig. 1 "
                 "oracle\n");
    return 1;
  }
  const auto ns_per_flit = [](const FlowScaleRun& run) {
    return run.flits > 0
               ? run.wall_seconds * 1e9 / static_cast<double>(run.flits)
               : 0.0;
  };
  // ns/flit at the largest flow count over the smallest — the paper's
  // O(1)-work-per-flit claim as a single number per discipline.
  const auto growth = [&](std::size_t s) {
    const double base = ns_per_flit(flow_scale.front()[s]);
    return base > 0.0 ? ns_per_flit(flow_scale.back()[s]) / base : 0.0;
  };

  AsciiTable table("simulator perf baseline (wall-clock)");
  table.set_header({"scenario", "wall s", "cycles/s", "flits/s", "speedup"});
  table.add_row("fig4 standalone (ERR)", fixed(fig4.wall_seconds, 3),
                fixed(per_sec(static_cast<double>(fig4.cycles),
                              fig4.wall_seconds), 0),
                fixed(per_sec(static_cast<double>(fig4.flits),
                              fig4.wall_seconds), 0),
                "-");
  table.add_row("8x8 hotspot, dense tick", fixed(dense.wall_seconds, 3),
                fixed(per_sec(static_cast<double>(dense.cycles),
                              dense.wall_seconds), 0),
                fixed(per_sec(static_cast<double>(dense.flits),
                              dense.wall_seconds), 0),
                "1.00 (baseline)");
  table.add_row("8x8 hotspot, active+dense pipe",
                fixed(active_dense_pipeline.wall_seconds, 3),
                fixed(per_sec(static_cast<double>(active_dense_pipeline.cycles),
                              active_dense_pipeline.wall_seconds), 0),
                fixed(per_sec(static_cast<double>(active_dense_pipeline.flits),
                              active_dense_pipeline.wall_seconds), 0),
                fixed(dense.wall_seconds > 0.0 &&
                              active_dense_pipeline.wall_seconds > 0.0
                          ? dense.wall_seconds /
                                active_dense_pipeline.wall_seconds
                          : 0.0,
                      2));
  table.add_row("8x8 hotspot, active+sparse pipe",
                fixed(active.wall_seconds, 3),
                fixed(per_sec(static_cast<double>(active.cycles),
                              active.wall_seconds), 0),
                fixed(per_sec(static_cast<double>(active.flits),
                              active.wall_seconds), 0),
                fixed(kernel_speedup, 2));
  table.add_row("8x8 hotspot, audited (full rescan)",
                fixed(audited_full.wall_seconds, 3),
                fixed(per_sec(static_cast<double>(audited_full.cycles),
                              audited_full.wall_seconds), 0),
                fixed(per_sec(static_cast<double>(audited_full.flits),
                              audited_full.wall_seconds), 0),
                "1.00 (audit baseline)");
  table.add_row("8x8 hotspot, audited (incremental)",
                fixed(audited_incremental.wall_seconds, 3),
                fixed(per_sec(static_cast<double>(audited_incremental.cycles),
                              audited_incremental.wall_seconds), 0),
                fixed(per_sec(static_cast<double>(audited_incremental.flits),
                              audited_incremental.wall_seconds), 0),
                fixed(audited_speedup, 2));
  table.add_row("8x8 hotspot, on/off flow control",
                fixed(onoff.wall_seconds, 3),
                fixed(per_sec(static_cast<double>(onoff.cycles),
                              onoff.wall_seconds), 0),
                fixed(per_sec(static_cast<double>(onoff.flits),
                              onoff.wall_seconds), 0),
                fixed(onoff.wall_seconds > 0.0
                          ? active.wall_seconds / onoff.wall_seconds
                          : 0.0,
                      2));
  table.add_row("sweep " + std::to_string(sweep_seeds) + " seeds, jobs=1",
                fixed(sweep_serial, 3), "-", "-", "1.00 (baseline)");
  table.add_row("sweep " + std::to_string(sweep_seeds) +
                    " seeds, jobs=" + std::to_string(parallel_jobs) +
                    (parallel_forced ? " (forced)" : ""),
                fixed(sweep_parallel, 3), "-", "-", fixed(sweep_speedup, 2));
  for (std::size_t d = 0; d < 2; ++d) {
    const std::string mesh = "mesh" + std::to_string(kScalingDims[d]) + "x" +
                             std::to_string(kScalingDims[d]);
    for (std::size_t t = 0; t < 4; ++t) {
      const NetworkRun& leg = scaling[d][t];
      const double speedup = leg.wall_seconds > 0.0
                                 ? scaling[d][0].wall_seconds / leg.wall_seconds
                                 : 0.0;
      table.add_row(mesh + " uniform, threads=" +
                        std::to_string(kScalingThreads[t]) +
                        (scaling_forced && t > 0 ? " (forced)" : ""),
                    fixed(leg.wall_seconds, 3),
                    fixed(per_sec(static_cast<double>(leg.cycles),
                                  leg.wall_seconds), 0),
                    fixed(per_sec(static_cast<double>(leg.flits),
                                  leg.wall_seconds), 0),
                    t == 0 ? std::string("1.00 (baseline)")
                           : fixed(speedup, 2));
    }
  }
  table.print(std::cout);
  std::printf("(all hotspot runs verified flit-for-flit identical; sparse "
              "vs dense-pipeline speedup %.2f;\n incremental audit "
              "overhead %.2fx unaudited, observer share %.1f%%; auditor "
              "violations: %llu)\n",
              pipeline_speedup, audit_overhead, 100.0 * observer_share,
              static_cast<unsigned long long>(instrumented.audit_violations));

  AsciiTable stage_table(
      "8x8 hotspot stage breakdown (instrumented run, TSC ticks)");
  stage_table.set_header({"stage", "ticks", "calls", "share %"});
  const std::uint64_t grand = counters.grand_total_ticks();
  for (std::size_t s = 0; s < metrics::kNumStages; ++s) {
    const auto stage = static_cast<metrics::Stage>(s);
    const auto& total = counters.total(stage);
    const double share =
        grand > 0 ? 100.0 * static_cast<double>(total.ticks) /
                        static_cast<double>(grand)
                  : 0.0;
    stage_table.add_row(metrics::stage_name(stage),
                        std::to_string(total.ticks),
                        std::to_string(total.calls), fixed(share, 1));
  }
  AsciiTable flow_table("flow scaling (SoA scheduler core, bare drive)");
  flow_table.set_header(
      {"flows", "sched", "wall s", "flits/s", "ns/flit", "B/flow"});
  for (std::size_t i = 0; i < flow_counts.size(); ++i) {
    for (std::size_t s = 0; s < kNumFlowScaleScheds; ++s) {
      const FlowScaleRun& leg = flow_scale[i][s];
      flow_table.add_row(std::to_string(flow_counts[i]),
                         std::string(kFlowScaleScheds[s]),
                         fixed(leg.wall_seconds, 3),
                         fixed(per_sec(static_cast<double>(leg.flits),
                                       leg.wall_seconds), 0),
                         fixed(ns_per_flit(leg), 1),
                         fixed(leg.bytes_per_flow, 1));
    }
  }
  flow_table.print(std::cout);
  std::printf("(pool-backed ERR vs AoS Fig. 1 oracle at paper scale: "
              "identical; ns/flit growth %zuk->%zuk flows: err %.2fx, "
              "drr %.2fx, scfq %.2fx)\n",
              flow_counts.front() / 1000, flow_counts.back() / 1000,
              growth(0), growth(1), growth(2));

  stage_table.print(std::cout);
  if (!metrics::kPerfCountersCompiled) {
    std::printf("(perf counters compiled out: stage breakdown is empty; "
                "configure with -DWORMSCHED_PERF_COUNTERS=ON)\n");
  }

  FILE* out = std::fopen(cli.get("out").c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", cli.get("out").c_str());
    return 1;
  }
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"schema\": \"wormsched-perf-v7\",\n");
  std::fprintf(out, "  \"hardware_threads\": %zu,\n", hardware_threads);
  std::fprintf(out, "  \"perf_counters_compiled\": %s,\n",
               metrics::kPerfCountersCompiled ? "true" : "false");
  std::fprintf(out,
               "  \"provenance\": {\"jobs\": %zu, \"compiler\": \"%s\", "
               "\"build_type\": \"%s\", \"git_sha\": \"%s\"},\n",
               jobs, compiler_id().c_str(), WORMSCHED_BUILD_TYPE,
               obs::current_git_sha().c_str());
  std::fprintf(out, "  \"scenarios\": {\n");
  std::fprintf(out,
               "    \"fig4_standalone\": {\"wall_seconds\": %.6f, "
               "\"sim_cycles\": %llu, \"served_flits\": %llu, "
               "\"cycles_per_sec\": %.0f, \"flits_per_sec\": %.0f},\n",
               fig4.wall_seconds,
               static_cast<unsigned long long>(fig4.cycles),
               static_cast<unsigned long long>(fig4.flits),
               per_sec(static_cast<double>(fig4.cycles), fig4.wall_seconds),
               per_sec(static_cast<double>(fig4.flits), fig4.wall_seconds));
  std::fprintf(out,
               "    \"mesh8x8_hotspot\": {\"sim_cycles\": %llu, "
               "\"delivered_flits\": %llu, \"results_identical\": %s,\n"
               "      \"dense\": {\"wall_seconds\": %.6f, "
               "\"cycles_per_sec\": %.0f},\n"
               "      \"active_set_dense_pipeline\": {\"wall_seconds\": %.6f, "
               "\"cycles_per_sec\": %.0f},\n"
               "      \"active_set\": {\"wall_seconds\": %.6f, "
               "\"cycles_per_sec\": %.0f},\n"
               "      \"audited_full\": {\"wall_seconds\": %.6f, "
               "\"cycles_per_sec\": %.0f},\n"
               "      \"audited_incremental\": {\"wall_seconds\": %.6f, "
               "\"cycles_per_sec\": %.0f},\n"
               "      \"kernel_speedup\": %.3f,\n"
               "      \"pipeline_speedup\": %.3f,\n"
               "      \"audited_speedup\": %.3f,\n"
               "      \"audit_overhead\": %.3f,\n"
               "      \"observer_share\": %.4f,\n"
               "      \"audit_violations\": %llu,\n",
               static_cast<unsigned long long>(active.cycles),
               static_cast<unsigned long long>(active.flits),
               identical ? "true" : "false", dense.wall_seconds,
               per_sec(static_cast<double>(dense.cycles), dense.wall_seconds),
               active_dense_pipeline.wall_seconds,
               per_sec(static_cast<double>(active_dense_pipeline.cycles),
                       active_dense_pipeline.wall_seconds),
               active.wall_seconds,
               per_sec(static_cast<double>(active.cycles),
                       active.wall_seconds),
               audited_full.wall_seconds,
               per_sec(static_cast<double>(audited_full.cycles),
                       audited_full.wall_seconds),
               audited_incremental.wall_seconds,
               per_sec(static_cast<double>(audited_incremental.cycles),
                       audited_incremental.wall_seconds),
               kernel_speedup, pipeline_speedup, audited_speedup,
               audit_overhead, observer_share,
               static_cast<unsigned long long>(
                   instrumented.audit_violations));
  std::fprintf(out, "      \"stage_breakdown\": {\"total_ticks\": %llu",
               static_cast<unsigned long long>(grand));
  for (std::size_t s = 0; s < metrics::kNumStages; ++s) {
    const auto stage = static_cast<metrics::Stage>(s);
    const auto& total = counters.total(stage);
    std::fprintf(out, ", \"%s\": {\"ticks\": %llu, \"calls\": %llu}",
                 metrics::stage_name(stage),
                 static_cast<unsigned long long>(total.ticks),
                 static_cast<unsigned long long>(total.calls));
  }
  std::fprintf(out, "}},\n");
  // Credit vs on/off on the same hotspot point: ns/flit per scheme plus
  // the packet-set cross-check (cycle identity is not expected).
  std::fprintf(out,
               "    \"flow_control\": {\"packets_identical\": %s,\n"
               "      \"credit\": {\"wall_seconds\": %.6f, \"sim_cycles\": "
               "%llu, \"delivered_flits\": %llu, \"ns_per_flit\": %.3f},\n"
               "      \"onoff\": {\"wall_seconds\": %.6f, \"sim_cycles\": "
               "%llu, \"delivered_flits\": %llu, \"ns_per_flit\": %.3f},\n"
               "      \"onoff_vs_credit_ns_per_flit\": %.3f},\n",
               flow_control_identical ? "true" : "false",
               active.wall_seconds,
               static_cast<unsigned long long>(active.cycles),
               static_cast<unsigned long long>(active.flits),
               net_ns_per_flit(active), onoff.wall_seconds,
               static_cast<unsigned long long>(onoff.cycles),
               static_cast<unsigned long long>(onoff.flits),
               net_ns_per_flit(onoff), onoff_vs_credit);
  // Both sweep legs always run and are always recorded; parallel_forced
  // marks the oversubscribed single-hardware-thread measurement.
  std::fprintf(out,
               "    \"sweep_50seed\": {\"seeds\": %zu, \"jobs\": %zu, "
               "\"hardware_threads\": %zu, \"serial_seconds\": %.6f, "
               "\"parallel_forced\": %s, "
               "\"parallel_seconds\": %.6f, "
               "\"parallel_speedup\": %.3f},\n",
               sweep_seeds, parallel_jobs, hardware_threads, sweep_serial,
               parallel_forced ? "true" : "false", sweep_parallel,
               sweep_speedup);
  std::fprintf(out,
               "    \"threads_scaling\": {\"scaling_cycles\": %llu, "
               "\"pattern\": \"uniform\", \"hardware_threads\": %zu, "
               "\"forced\": %s, \"results_identical\": %s",
               static_cast<unsigned long long>(scaling_cycles),
               hardware_threads, scaling_forced ? "true" : "false",
               scaling_identical ? "true" : "false");
  for (std::size_t d = 0; d < 2; ++d) {
    std::fprintf(out,
                 ",\n      \"mesh%ux%u\": {\"sim_cycles\": %llu, "
                 "\"delivered_flits\": %llu",
                 kScalingDims[d], kScalingDims[d],
                 static_cast<unsigned long long>(scaling[d][0].cycles),
                 static_cast<unsigned long long>(scaling[d][0].flits));
    for (std::size_t t = 0; t < 4; ++t) {
      const NetworkRun& leg = scaling[d][t];
      const double speedup = leg.wall_seconds > 0.0
                                 ? scaling[d][0].wall_seconds / leg.wall_seconds
                                 : 0.0;
      std::fprintf(out,
                   ", \"threads%u\": {\"wall_seconds\": %.6f, "
                   "\"cycles_per_sec\": %.0f, \"speedup\": %.3f}",
                   kScalingThreads[t], leg.wall_seconds,
                   per_sec(static_cast<double>(leg.cycles), leg.wall_seconds),
                   speedup);
    }
    std::fprintf(out, "}");
  }
  std::fprintf(out, "},\n");
  std::fprintf(out,
               "    \"flow_scaling\": {\"horizon\": %llu, "
               "\"results_identical\": %s, \"rows\": [",
               static_cast<unsigned long long>(flow_scale_cycles),
               flow_scale_identical ? "true" : "false");
  bool first_row = true;
  for (std::size_t i = 0; i < flow_counts.size(); ++i) {
    for (std::size_t s = 0; s < kNumFlowScaleScheds; ++s) {
      const FlowScaleRun& leg = flow_scale[i][s];
      std::fprintf(out,
                   "%s\n      {\"flows\": %zu, \"sched\": \"%s\", "
                   "\"wall_seconds\": %.6f, \"sim_cycles\": %llu, "
                   "\"flits\": %llu, \"ns_per_flit\": %.3f, "
                   "\"flits_per_sec\": %.0f, \"bytes_per_flow\": %.1f}",
                   first_row ? "" : ",", flow_counts[i],
                   std::string(kFlowScaleScheds[s]).c_str(),
                   leg.wall_seconds,
                   static_cast<unsigned long long>(leg.cycles),
                   static_cast<unsigned long long>(leg.flits),
                   ns_per_flit(leg),
                   per_sec(static_cast<double>(leg.flits), leg.wall_seconds),
                   leg.bytes_per_flow);
      first_row = false;
    }
  }
  std::fprintf(out,
               "],\n      \"err_growth\": %.3f, \"drr_growth\": %.3f, "
               "\"scfq_growth\": %.3f}\n",
               growth(0), growth(1), growth(2));
  std::fprintf(out, "  }\n}\n");
  std::fclose(out);
  std::printf("wrote %s\n", cli.get("out").c_str());

  // Run manifest next to the JSON: the same provenance record every
  // traced run writes (docs/OBSERVABILITY.md), so downstream tooling can
  // treat bench outputs and sweep outputs uniformly.
  obs::RunManifest manifest;
  manifest.tool = "bench_perf_kernel";
  for (const auto& [name, value] : cli.items())
    manifest.add_config(name, value);
  manifest.add_counter("kernel_speedup", kernel_speedup);
  manifest.add_counter("pipeline_speedup", pipeline_speedup);
  manifest.add_counter("audited_speedup", audited_speedup);
  manifest.add_counter("audit_overhead", audit_overhead);
  manifest.add_counter("observer_share", observer_share);
  manifest.add_counter("sweep_speedup", sweep_speedup);
  manifest.add_counter(
      "threads8_speedup_mesh32x32",
      scaling[1][3].wall_seconds > 0.0
          ? scaling[1][0].wall_seconds / scaling[1][3].wall_seconds
          : 0.0);
  manifest.add_counter("hotspot_cycles",
                       static_cast<double>(active.cycles));
  manifest.add_counter("hotspot_flits", static_cast<double>(active.flits));
  manifest.add_counter("flow_scale_err_growth", growth(0));
  manifest.add_counter("flow_scale_scfq_growth", growth(2));
  manifest.add_counter("flow_scale_err_ns_per_flit",
                       ns_per_flit(flow_scale.back()[0]));
  manifest.add_counter("onoff_vs_credit_ns_per_flit", onoff_vs_credit);
  manifest.violations = instrumented.audit_violations;
  const std::string manifest_path = cli.get("out") + ".manifest.json";
  manifest.write_file(manifest_path);
  std::printf("wrote %s\n", manifest_path.c_str());
  return 0;
}
