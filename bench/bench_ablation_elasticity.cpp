// Ablation A6: adaptive allowances (ERR) vs fixed quanta (SRR, DRR).
//
// ERR's allowance tracks the surpluses that actually occurred, so its
// unfairness scales with m — the largest packet that actually arrives.
// SRR and DRR take the quantum as configuration; sized for a worst case
// (Max) that rarely materializes, they let a flow run a whole quantum
// ahead per round.  This bench fixes the workload (truncated-exponential
// lengths on [1,64], so m is effectively ~30-40 for most intervals) and
// sweeps the configured quantum, measuring relative fairness and mean
// delay.  ERR has no quantum knob — its row is the flat reference line.
#include <cstdio>
#include <iostream>

#include "common/cli.hpp"
#include "common/csv.hpp"
#include "common/table.hpp"
#include "harness/paper_workloads.hpp"
#include "harness/scenario.hpp"
#include "metrics/fairness.hpp"

using namespace wormsched;

int main(int argc, char** argv) {
  CliParser cli("Ablation A6: ERR's elastic allowance vs quantum-based SRR/DRR");
  cli.add_option("cycles", "simulated cycles", "400000");
  cli.add_option("intervals", "random intervals for avg relative fairness",
                 "4000");
  cli.add_option("csv", "output CSV path", "ablation_elasticity.csv");
  if (!cli.parse(argc, argv)) return 1;

  const Cycle cycles = cli.get_uint("cycles");
  const std::size_t intervals = cli.get_uint("intervals");

  const auto workload = harness::fig6_workload(6);
  const auto trace = traffic::generate_trace(workload, cycles, 31);

  AsciiTable table(
      "A6: avg relative fairness (flits) and mean delay, TruncExp lengths");
  table.set_header({"scheduler", "quantum", "avg rel fairness",
                    "FM[10%,end)", "mean delay"});
  CsvWriter csv(cli.get("csv"));
  csv.header({"scheduler", "quantum", "avg_rel_fairness", "fm", "mean_delay"});

  const auto run_one = [&](const char* name, Flits quantum) {
    harness::ScenarioConfig config;
    config.horizon = cycles;
    config.sched.drr_quantum = quantum;
    const auto result = harness::run_scenario(name, config, trace);
    Rng rng(55);
    const double arf = metrics::average_relative_fairness(
        result.service_log, result.activity, cycles, intervals, rng);
    const Flits fm = metrics::fairness_measure(
        result.service_log, result.activity, cycles / 10, cycles);
    table.add_row(name, quantum, fixed(arf, 1), fm,
                  fixed(result.delays.overall().mean(), 1));
    csv.row(name, quantum, arf, fm, result.delays.overall().mean());
  };

  run_one("ERR", 0);  // quantum ignored: adaptive
  table.add_rule();
  for (const Flits q : {16, 64, 256}) run_one("SRR", q);
  table.add_rule();
  for (const Flits q : {64, 256}) run_one("DRR", q);  // DRR needs q >= Max
  table.print(std::cout);
  std::cout << "(SRR/DRR unfairness grows with the configured quantum; "
               "ERR's adapts to the\n traffic with no knob to mis-set — the "
               "practical content of the 3m-vs-Max+2m gap)\n";
  std::printf("wrote %s\n", cli.get("csv").c_str());
  return 0;
}
