// Ablation A3: weighted service differentiation.
//
// The weighted ERR extension (A_i = w_i*(1 + MaxSC) - SC_i) against the
// weighted forms of DRR (quantum scaling) and the timestamp disciplines:
// four saturated flows with target weights 1:2:4:8; report each
// discipline's achieved share and its maximum relative error.
#include <cmath>
#include <cstdio>
#include <iostream>
#include <vector>

#include "common/cli.hpp"
#include "common/csv.hpp"
#include "common/table.hpp"
#include "harness/scenario.hpp"
#include "traffic/workload.hpp"

using namespace wormsched;

int main(int argc, char** argv) {
  CliParser cli("Ablation A3: weighted ERR vs weighted DRR/SCFQ/WFQ/WF2Q+");
  cli.add_option("cycles", "simulated cycles", "400000");
  cli.add_option("csv", "output CSV path", "ablation_weighted.csv");
  if (!cli.parse(argc, argv)) return 1;

  const Cycle cycles = cli.get_uint("cycles");
  const std::vector<double> weights = {1.0, 2.0, 4.0, 8.0};
  const double weight_sum = 15.0;

  // Saturating symmetric workload; weights do the differentiation.
  traffic::WorkloadSpec workload;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    traffic::FlowSpec f;
    f.length = traffic::LengthSpec::uniform(1, 32);
    // 0.75 flits/cycle offered per flow: every flow, including the w=8
    // one (target share 8/15 = 0.533), demands more than its share.
    f.arrival = traffic::ArrivalSpec::bernoulli(3.0 / (4.0 * 16.5));
    workload.flows.push_back(f);
  }
  const auto trace = traffic::generate_trace(workload, cycles, 9);

  AsciiTable table("A3: achieved service shares for target weights 1:2:4:8");
  table.set_header({"scheduler", "share w=1", "share w=2", "share w=4",
                    "share w=8", "max rel. error"});
  CsvWriter csv(cli.get("csv"));
  csv.header({"scheduler", "flow", "weight", "share", "target"});

  for (const char* name :
       {"ERR", "PERR", "DRR", "SRR", "WRR", "SCFQ", "STFQ", "VC", "WFQ",
        "WF2Q+"}) {
    harness::ScenarioConfig config;
    config.horizon = cycles;
    config.weights = weights;
    config.sched.drr_quantum = 32;
    const auto result = harness::run_scenario(name, config, trace);
    Flits total = 0;
    for (std::uint32_t f = 0; f < 4; ++f)
      total += result.service_log.total(FlowId(f));
    std::vector<double> shares;
    double max_err = 0.0;
    for (std::uint32_t f = 0; f < 4; ++f) {
      const double share =
          static_cast<double>(result.service_log.total(FlowId(f))) /
          static_cast<double>(total);
      const double target = weights[f] / weight_sum;
      shares.push_back(share);
      max_err = std::max(max_err, std::abs(share - target) / target);
      csv.row(name, f, weights[f], share, target);
    }
    table.add_row(name, fixed(shares[0], 4), fixed(shares[1], 4),
                  fixed(shares[2], 4), fixed(shares[3], 4),
                  fixed(100.0 * max_err, 2) + "%");
  }
  table.add_rule();
  table.add_row("target", fixed(1.0 / 15, 4), fixed(2.0 / 15, 4),
                fixed(4.0 / 15, 4), fixed(8.0 / 15, 4), "-");
  table.print(std::cout);
  std::printf("wrote %s\n", cli.get("csv").c_str());
  return 0;
}
