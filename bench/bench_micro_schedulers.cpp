// google-benchmark microbenchmarks: per-decision cost of every discipline
// as a function of the number of flows (ablation A5).
//
// Each iteration pulls one flit from a permanently saturated scheduler;
// completed packets are immediately replaced, so the measured cost is the
// steady-state enqueue+dequeue pair — exactly the quantity Theorem 1
// bounds as O(1) for ERR.
#include <benchmark/benchmark.h>

#include <memory>

#include "common/rng.hpp"
#include "core/registry.hpp"

namespace {

using namespace wormsched;

void run_scheduler_benchmark(benchmark::State& state,
                             std::string_view scheduler) {
  const auto num_flows = static_cast<std::size_t>(state.range(0));
  core::SchedulerParams params;
  params.num_flows = num_flows;
  params.drr_quantum = 16;
  auto s = core::make_scheduler(scheduler, params);
  Rng rng(7);
  PacketId::rep_type next_id = 0;
  // Two packets per flow up front; afterwards every completed packet is
  // replaced on the same flow, keeping all flows backlogged.
  for (std::uint32_t f = 0; f < num_flows; ++f)
    for (int k = 0; k < 2; ++k)
      s->enqueue(0, core::Packet{.id = PacketId(next_id++),
                                 .flow = FlowId(f),
                                 .length = rng.uniform_int(1, 16),
                                 .arrival = 0});
  Cycle now = 0;
  for (auto _ : state) {
    const auto flit = s->pull_flit(now++);
    benchmark::DoNotOptimize(flit);
    if (flit && flit->is_tail) {
      s->enqueue(now, core::Packet{.id = PacketId(next_id++),
                                   .flow = flit->flow,
                                   .length = rng.uniform_int(1, 16),
                                   .arrival = now});
    }
  }
  state.SetItemsProcessed(state.iterations());
}

void register_all() {
  for (const auto name : core::scheduler_names()) {
    const std::string bench_name = "pull_flit/" + std::string(name);
    auto* bench = benchmark::RegisterBenchmark(
        bench_name.c_str(), [name](benchmark::State& state) {
          run_scheduler_benchmark(state, name);
        });
    bench->Arg(2)->Arg(16)->Arg(128)->Arg(1024);
  }
}

[[maybe_unused]] const int registered = (register_all(), 0);

}  // namespace
