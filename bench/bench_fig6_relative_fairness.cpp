// Regenerates the paper's Figure 6: average relative fairness of ERR and
// DRR versus the number of flows, with packet lengths exponentially
// distributed (lambda = 0.2) on [1, 64] flits.
//
// This is the experiment where ERR's 3m bound beats DRR's Max + 2m: under
// the exponential law large packets are rare, so the largest packet that
// *actually arrives early in a run* (m) is typically far below Max = 64,
// and DRR's Max-sized quantum lets a flow run further ahead per round.
// Statistic (Sec. 5): FM averaged over 10,000 uniformly random intervals
// of a 4M-cycle run, reported in bytes (flit = 8 bytes).
#include <cstdio>
#include <iostream>
#include <string>

#include "common/cli.hpp"
#include "common/csv.hpp"
#include "common/plot.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "harness/paper_workloads.hpp"
#include "harness/scenario.hpp"
#include "metrics/fairness.hpp"

using namespace wormsched;

int main(int argc, char** argv) {
  CliParser cli("Figure 6: average relative fairness of ERR vs DRR");
  cli.add_option("cycles", "simulated cycles", "4000000");
  cli.add_option("intervals", "random intervals sampled", "10000");
  cli.add_option("flows-min", "minimum number of flows", "2");
  cli.add_option("flows-max", "maximum number of flows", "10");
  cli.add_option("seed", "base workload seed", "1");
  cli.add_option("seeds", "independent runs averaged per point", "3");
  cli.add_option("csv", "output CSV path", "fig6_relative_fairness.csv");
  if (!cli.parse(argc, argv)) return 1;

  const Cycle cycles = cli.get_uint("cycles");
  const std::size_t intervals = cli.get_uint("intervals");
  const std::uint64_t seed = cli.get_uint("seed");
  const std::uint64_t seeds = cli.get_uint("seeds");

  AsciiTable table(
      "Figure 6: average relative fairness (bytes) over " +
      std::to_string(intervals) + " random intervals x " +
      std::to_string(seeds) + " seeds, " + std::to_string(cycles) +
      " cycles, lengths TruncExp(0.2) on [1,64]");
  table.set_header({"# flows", "ERR", "DRR", "ERR/DRR"});
  CsvWriter csv(cli.get("csv"));
  csv.header({"flows", "err_bytes", "err_stddev", "drr_bytes", "drr_stddev"});

  std::vector<double> flow_counts;
  std::vector<double> err_series;
  std::vector<double> drr_series;
  for (std::size_t n = cli.get_uint("flows-min");
       n <= cli.get_uint("flows-max"); ++n) {
    RunningStat err_stat;
    RunningStat drr_stat;
    for (std::uint64_t k = 0; k < seeds; ++k) {
      const auto workload = harness::fig6_workload(n);
      const std::uint64_t run_seed = seed + n * 100 + k;
      const auto trace = traffic::generate_trace(workload, cycles, run_seed);
      harness::ScenarioConfig config;
      config.horizon = cycles;
      config.seed = run_seed;
      config.sched.drr_quantum = 64;  // DRR sized to Max (its O(1) regime)

      const auto err = harness::run_scenario("err", config, trace);
      const auto drr = harness::run_scenario("drr", config, trace);
      Rng rng_err(1234), rng_drr(1234);  // identical interval samples
      err_stat.add(metrics::average_relative_fairness(
                       err.service_log, err.activity, cycles, intervals,
                       rng_err) *
                   8.0);
      drr_stat.add(metrics::average_relative_fairness(
                       drr.service_log, drr.activity, cycles, intervals,
                       rng_drr) *
                   8.0);
    }
    const double err_arf = err_stat.mean();
    const double drr_arf = drr_stat.mean();
    table.add_row(n,
                  fixed(err_arf, 1) + " +/- " + fixed(err_stat.stddev(), 1),
                  fixed(drr_arf, 1) + " +/- " + fixed(drr_stat.stddev(), 1),
                  fixed(err_arf / drr_arf, 3));
    csv.row(n, err_arf, err_stat.stddev(), drr_arf, drr_stat.stddev());
    std::printf("flows=%zu  ERR=%.1f B  DRR=%.1f B\n", n, err_arf, drr_arf);
    flow_counts.push_back(static_cast<double>(n));
    err_series.push_back(err_arf);
    drr_series.push_back(drr_arf);
  }
  table.print(std::cout);
  std::cout << "\n";
  AsciiChart chart("Figure 6 shape: average relative fairness vs # flows");
  chart.set_x_label("# of flows");
  chart.set_y_label("average relative fairness (bytes)");
  chart.add_series("ERR", flow_counts, err_series);
  chart.add_series("DRR", flow_counts, drr_series);
  chart.print(std::cout);
  std::printf("wrote %s\n", cli.get("csv").c_str());
  return 0;
}
