#!/usr/bin/env sh
# One-command reproduction: build, test, regenerate every paper figure and
# table plus the ablations.  Outputs land in ./results (tables as .txt,
# series as .csv) together with test_output.txt and bench_output.txt.
set -eu

cd "$(dirname "$0")"

cmake -B build -G Ninja
cmake --build build -j "$(nproc)"

ctest --test-dir build 2>&1 | tee test_output.txt

mkdir -p results
cd results
: > ../bench_output.txt
for b in ../build/bench/*; do
  name=$(basename "$b")
  echo "=== ${name} ===" | tee -a ../bench_output.txt
  "$b" 2>&1 | tee "${name}.txt" | tee -a ../bench_output.txt
done
echo "done: see results/ and EXPERIMENTS.md"
