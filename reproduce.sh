#!/usr/bin/env sh
# One-command reproduction: build, test, regenerate every paper figure and
# table plus the ablations.  Outputs land in ./results (tables as .txt,
# series as .csv) together with test_output.txt and bench_output.txt; the
# perf baseline BENCH_perf.json is copied to the repo root.
set -eu

cd "$(dirname "$0")"

# Reuse an existing build tree's generator; otherwise prefer Ninja when
# it is installed and fall back to CMake's default (Makefiles) when not.
if [ -f build/CMakeCache.txt ]; then
  cmake -B build
elif command -v ninja >/dev/null 2>&1; then
  cmake -B build -G Ninja
else
  cmake -B build
fi
cmake --build build -j "$(nproc)"

ctest --test-dir build 2>&1 | tee test_output.txt

# Provenance for the perf baseline: bench_perf_kernel records this SHA in
# BENCH_perf.json so the numbers are traceable to a commit.
WORMSCHED_GIT_SHA=$(git rev-parse --short HEAD 2>/dev/null || echo unknown)
export WORMSCHED_GIT_SHA

mkdir -p results
cd results
: > ../bench_output.txt
for b in ../build/bench/*; do
  name=$(basename "$b")
  echo "=== ${name} ===" | tee -a ../bench_output.txt
  "$b" 2>&1 | tee "${name}.txt" | tee -a ../bench_output.txt
done
# bench_perf_kernel writes BENCH_perf.json into results/; the repo-root
# copy is the machine-readable baseline future changes are held to.
# On single-hardware-thread machines the 50-seed parallel sweep and the
# sharded threads-scaling legs still run (recorded with
# "parallel_forced": true) — speedups near 1.0x are expected there and
# the CI gates compare ratios against the committed baseline, never
# absolute wall clock.
if [ -f BENCH_perf.json ]; then
  cp BENCH_perf.json ../BENCH_perf.json
fi
cd ..
echo "done: see results/, BENCH_perf.json and EXPERIMENTS.md"
