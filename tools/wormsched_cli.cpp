// wormsched — command-line front end for the library.
//
//   wormsched compare  --workload <spec> [--cycles N] [--schedulers a,b,c]
//   wormsched run      --workload <spec> --scheduler err [--cycles N]
//   wormsched gen-trace --workload <spec> --out trace.csv [--cycles N]
//   wormsched trace-gen --flows 100000 --cycles 100000 --out trace.wst
//   wormsched replay   --trace trace.csv --scheduler err
//   wormsched network  --topo mesh4x4 --arbiter err-cycles [--rate R]
//   wormsched soak     --topo mesh8x8 --cycles 5000000 --checkpoint s.wsnp
//
// `run`, `network` and `soak` accept --checkpoint <file> (write a snapshot
// at the end of the run), --checkpoint-every N (also write one every N
// cycles) and --restore <file> (continue a checkpointed run; a malformed
// or mismatched snapshot exits 2).
//
// Workload specs use the grammar of harness/workload_parse.hpp, e.g. the
// paper's Fig. 4 traffic is
//   'bern:0.0046:u1-64*2;bern:0.0046:u1-128;bern:0.0092:u1-64;bern:0.0046:u1-64*4'
#include <cstdio>
#include <cstring>
#include <iostream>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/cli.hpp"
#include "common/snapshot.hpp"
#include "common/table.hpp"
#include "common/thread_pool.hpp"
#include "harness/checkpoint.hpp"
#include "harness/network_sweep.hpp"
#include "harness/scenario.hpp"
#include "harness/soak.hpp"
#include "harness/sweep.hpp"
#include "harness/workload_parse.hpp"
#include "metrics/fairness.hpp"
#include "obs/manifest.hpp"
#include "obs/trace_cli.hpp"
#include "obs/trace_export.hpp"
#include "obs/trace_sink.hpp"
#include "sim/engine.hpp"
#include "traffic/binary_trace.hpp"
#include "traffic/trace_io.hpp"
#include "traffic/trace_synth.hpp"
#include "validate/faults.hpp"
#include "wormhole/network.hpp"
#include "wormhole/patterns.hpp"

using namespace wormsched;

namespace {

constexpr const char* kUsage =
    "wormsched <command> [options]\n"
    "\n"
    "commands:\n"
    "  compare    run several schedulers on one workload, print summary\n"
    "  run        run one scheduler, print per-flow detail\n"
    "  gen-trace  expand a workload spec into a trace (CSV or binary)\n"
    "  trace-gen  synthesize a multi-tenant arrival trace (binary;\n"
    "             elephant/mice mixes, tenant churn, incast bursts)\n"
    "  replay     replay a trace (CSV or binary) through one scheduler\n"
    "  network    drive a wormhole mesh/torus with synthetic traffic\n"
    "             or a replayed trace (--trace-in)\n"
    "  soak       long-horizon network run with windowed steady-state\n"
    "             metrics and checkpointed segments\n"
    "\n"
    "run 'wormsched <command> --help' for per-command options\n";

harness::WorkloadParse parse_or_die(const std::string& text) {
  std::string error;
  auto parsed = harness::parse_workload(text, &error);
  if (!parsed) {
    std::fprintf(stderr, "bad --workload: %s\n", error.c_str());
    std::exit(1);
  }
  return std::move(*parsed);
}

void add_checkpoint_options(CliParser& cli) {
  cli.add_option("checkpoint", "write a snapshot here when the run ends", "");
  cli.add_option("checkpoint-every",
                 "also write the snapshot every N cycles (0 = only at end)",
                 "0");
  cli.add_option("restore",
                 "continue from a snapshot written by --checkpoint", "");
}

/// Drives a resumable run to completion.  With --checkpoint-every the run
/// advances in N-cycle segments and rewrites the snapshot after each; the
/// final write always reflects the finished state.
template <typename Run>
void drive_with_checkpoints(Run& run, const std::string& path, Cycle every) {
  if (!path.empty() && every > 0) {
    while (!run.done()) {
      run.advance_to((run.now() / every + 1) * every);
      run.save_checkpoint(path);
    }
  } else {
    run.run_to_completion();
    if (!path.empty()) run.save_checkpoint(path);
  }
}

std::vector<std::string> split_names(const std::string& csv) {
  std::vector<std::string> names;
  std::stringstream ss(csv);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) names.push_back(item);
  }
  return names;
}

void print_flow_detail(const harness::ScenarioResult& result) {
  AsciiTable table("per-flow results (" + result.scheduler_name + ")");
  table.set_header({"flow", "served flits", "served bytes", "mean delay",
                    "p99 delay"});
  for (std::uint32_t f = 0; f < result.num_flows(); ++f) {
    table.add_row(f, static_cast<long long>(result.service_log.total(FlowId(f))),
                  static_cast<unsigned long long>(
                      result.service_log.total_bytes(FlowId(f))),
                  fixed(result.delays.flow(FlowId(f)).mean(), 1),
                  fixed(result.delays.flow_quantile(FlowId(f), 0.99), 1));
  }
  table.print(std::cout);
}

int cmd_compare(int argc, const char* const* argv) {
  CliParser cli("compare schedulers on one workload");
  cli.add_option("workload", "workload spec (see workload_parse.hpp)",
                 "bern:0.01:u1-64*4");
  cli.add_option("cycles", "simulated cycles", "200000");
  cli.add_option("seed", "trace seed (base seed when sweeping)", "1");
  cli.add_option("seeds", "seeds to average over (1 = single trace)", "1");
  cli.add_option("schedulers", "comma-separated list (default: all)", "all");
  cli.add_flag("drain", "serve out all queues after the horizon");
  add_jobs_option(cli);
  if (!cli.parse(argc, argv)) return 1;

  const auto workload = parse_or_die(cli.get("workload"));
  const Cycle cycles = cli.get_uint("cycles");
  const std::size_t seeds = cli.get_uint("seeds");

  std::vector<std::string> names;
  if (cli.get("schedulers") == "all") {
    for (const auto n : core::scheduler_names()) names.emplace_back(n);
  } else {
    names = split_names(cli.get("schedulers"));
  }

  harness::ScenarioConfig config;
  config.horizon = cycles;
  config.drain = cli.get_flag("drain");
  config.weights = workload.weights;
  config.sched.drr_quantum = workload.spec.max_packet_length();

  if (seeds <= 1) {
    const auto trace =
        traffic::generate_trace(workload.spec, cycles, cli.get_uint("seed"));
    std::printf("workload: %zu flows, offered load %.3f flits/cycle, %zu "
                "packets generated\n\n",
                workload.spec.flows.size(), workload.spec.offered_load(),
                trace.entries.size());

    AsciiTable table("scheduler comparison, identical trace");
    table.set_header({"scheduler", "served flits", "mean delay", "p95 delay",
                      "FM[10%,end) flits"});
    for (const auto& name : names) {
      const auto result = harness::run_scenario(name, config, trace);
      const Flits fm = metrics::fairness_measure(
          result.service_log, result.activity, cycles / 10, cycles);
      table.add_row(result.scheduler_name,
                    static_cast<long long>(result.service_log.grand_total()),
                    fixed(result.delays.overall().mean(), 1),
                    fixed(result.delays.quantile(0.95), 1), fm);
    }
    table.print(std::cout);
    return 0;
  }

  harness::SweepOptions sweep;
  sweep.base_seed = cli.get_uint("seed");
  sweep.seeds = seeds;
  sweep.jobs = resolve_jobs(cli);
  std::printf("workload: %zu flows, offered load %.3f flits/cycle, "
              "%zu seeds x %llu cycles, %zu worker(s)\n\n",
              workload.spec.flows.size(), workload.spec.offered_load(),
              seeds, static_cast<unsigned long long>(cycles),
              sweep.jobs == 0 ? ThreadPool::hardware_workers() : sweep.jobs);
  AsciiTable table("scheduler comparison, mean +/- stddev over seeds");
  table.set_header({"scheduler", "served flits", "mean delay", "p95 delay",
                    "FM[10%,end) flits"});
  for (const auto& name : names) {
    const auto result = harness::sweep_scenario(
        name, config, workload.spec, sweep,
        [cycles](const harness::ScenarioResult& r, harness::SweepResult& out) {
          out.add("served",
                  static_cast<double>(r.service_log.grand_total()));
          out.add("mean_delay", r.delays.overall().mean());
          out.add("p95_delay", r.delays.quantile(0.95));
          out.add("fm", static_cast<double>(metrics::fairness_measure(
                            r.service_log, r.activity, cycles / 10, cycles)));
        });
    table.add_row(name, result.summary("served", 0),
                  result.summary("mean_delay", 1),
                  result.summary("p95_delay", 1), result.summary("fm", 0));
  }
  table.print(std::cout);
  return 0;
}

int cmd_run(int argc, const char* const* argv) {
  CliParser cli("run one scheduler with per-flow detail");
  cli.add_option("workload", "workload spec", "bern:0.01:u1-64*4");
  cli.add_option("scheduler", "scheduler name", "err");
  cli.add_option("cycles", "simulated cycles", "200000");
  cli.add_option("seed", "trace seed", "1");
  cli.add_flag("drain", "serve out all queues after the horizon");
  cli.add_choice_flag("audit",
                      "run the ERR invariant auditor during the run "
                      "(the mode spellings match the network subcommand; "
                      "the scheduler auditor has one implementation, so "
                      "anything but off enables it)",
                      {"incremental", "full", "off"}, "incremental", "off");
  validate::add_fault_options(cli);
  obs::add_trace_options(cli);
  add_checkpoint_options(cli);
  if (!cli.parse(argc, argv)) return 1;

  const auto workload = parse_or_die(cli.get("workload"));
  harness::ScenarioConfig config;
  config.horizon = cli.get_uint("cycles");
  config.seed = cli.get_uint("seed");
  config.drain = cli.get_flag("drain");
  config.weights = workload.weights;
  config.sched.drr_quantum = workload.spec.max_packet_length();
  config.audit = cli.get("audit") != "off";
  validate::AuditLog audit_log;
  config.audit_log = &audit_log;

  std::string trace_error;
  const auto trace_request = obs::trace_request_from_cli(cli, &trace_error);
  if (!trace_request) {
    std::fprintf(stderr, "%s\n", trace_error.c_str());
    return 1;
  }
  std::optional<obs::TraceSink> sink;
  bool violation_window_dumped = false;
  obs::TraceProvenance provenance;  // filled in when the run is restored
  if (trace_request->enabled()) {
    obs::TraceSink::Options sink_options;
    sink_options.capacity = trace_request->capacity;
    sink_options.mask = trace_request->mask;
    sink.emplace(sink_options);
    config.trace = &*sink;
    // Auditor violations land in the trace, and the first one dumps the
    // event window around it while it is still in the ring (with the
    // snapshot provenance when the run was restored).
    audit_log.set_on_report([&](const validate::Violation& v) {
      sink->record(obs::TraceEvent::violation(
          sink->now(), sink->note(v.check + ": " + v.detail)));
      if (!violation_window_dumped && !trace_request->chrome_path.empty()) {
        violation_window_dumped = true;
        obs::write_chrome_trace_file(
            trace_request->chrome_path + ".violation.json", *sink,
            provenance.restored ? &provenance : nullptr);
      }
    });
  }

  harness::ScenarioSpec spec;
  spec.scheduler = cli.get("scheduler");
  spec.workload_text = cli.get("workload");
  spec.config = config;
  spec.faults = validate::fault_spec_from_cli(cli);

  const std::string restore_path = cli.get("restore");
  std::optional<harness::ScenarioRun> run;
  try {
    if (!restore_path.empty()) {
      const SnapshotFile file = harness::load_checkpoint_or_exit(restore_path);
      run.emplace(spec, file);
    } else {
      if (spec.faults.enabled)
        std::printf("%s\n", spec.faults.describe().c_str());
      run.emplace(spec);
    }
  } catch (const SnapshotError& e) {
    std::fprintf(stderr, "wormsched: %s: %s\n", restore_path.c_str(),
                 e.what());
    return 2;
  }
  if (run->restored()) {
    provenance = run->trace_provenance();
    std::printf("restored from %s at cycle %llu (original seed %llu)\n",
                restore_path.c_str(),
                static_cast<unsigned long long>(provenance.restore_cycle),
                static_cast<unsigned long long>(provenance.original_seed));
  }
  drive_with_checkpoints(*run, cli.get("checkpoint"),
                         cli.get_uint("checkpoint-every"));
  const auto result = run->finish();
  print_flow_detail(result);

  if (sink.has_value()) obs::export_trace(*trace_request, *sink);
  const std::string manifest_path = obs::manifest_path_from_cli(cli);
  if (!manifest_path.empty()) {
    obs::RunManifest manifest =
        obs::manifest_from_cli("wormsched run", cli, config.seed);
    if (run->restored()) {
      manifest.add_config("restored_from", restore_path);
      manifest.add_config("restored_from_sha", provenance.restored_from_sha);
    }
    manifest.add_counter("end_cycle", static_cast<double>(result.end_cycle));
    manifest.add_counter(
        "served_flits",
        static_cast<double>(result.service_log.grand_total()));
    manifest.add_counter("mean_delay", result.delays.overall().mean());
    manifest.add_counter(
        "audit_opportunities",
        static_cast<double>(result.audit_opportunities));
    manifest.violations = result.audit_violations;
    if (sink.has_value()) {
      manifest.trace_path = trace_request->chrome_path;
      manifest.trace_recorded = sink->recorded();
      manifest.trace_dropped = sink->dropped();
    }
    manifest.write_file(manifest_path);
  }

  if (config.audit) {
    std::printf("audit: %llu opportunities checked, %llu violation(s)\n",
                static_cast<unsigned long long>(result.audit_opportunities),
                static_cast<unsigned long long>(result.audit_violations));
    for (const auto& v : audit_log.kept())
      std::printf("  [%s] %s\n", v.check.c_str(), v.detail.c_str());
    if (!audit_log.clean()) return 2;
  }
  return 0;
}

/// Provenance JSON for generated binary traces (wormsched-trace-meta-v1).
std::string trace_meta_json(const std::string& tool, std::uint64_t seed) {
  std::ostringstream os;
  os << "{\"format\":\"wormsched-trace-meta-v1\",\"tool\":\"" << tool
     << "\",\"seed\":" << seed << "}";
  return os.str();
}

int cmd_gen_trace(int argc, const char* const* argv) {
  CliParser cli("expand a workload spec into a trace (CSV or binary)");
  cli.add_option("workload", "workload spec", "bern:0.01:u1-64*4");
  cli.add_option("cycles", "horizon", "100000");
  cli.add_option("seed", "seed", "1");
  cli.add_option("out", "output trace path", "trace.csv");
  cli.add_choice_flag("format", "output encoding", {"csv", "binary"}, "binary",
                      "csv");
  if (!cli.parse(argc, argv)) return 1;

  const auto workload = parse_or_die(cli.get("workload"));
  const auto trace = traffic::generate_trace(
      workload.spec, cli.get_uint("cycles"), cli.get_uint("seed"));
  if (cli.get("format") == "binary")
    traffic::save_binary_trace_file(
        cli.get("out"), trace,
        trace_meta_json("wormsched gen-trace", cli.get_uint("seed")));
  else
    traffic::save_trace_file(cli.get("out"), trace);
  std::printf("wrote %zu arrivals (%lld flits, %zu flows) to %s\n",
              trace.entries.size(),
              static_cast<long long>(trace.total_flits()), trace.num_flows,
              cli.get("out").c_str());
  return 0;
}

int cmd_trace_gen(int argc, const char* const* argv) {
  CliParser cli(
      "synthesize a multi-tenant arrival trace (binary): seed-hashed "
      "elephant/mice roles, optional tenant churn and incast bursts");
  cli.add_option("flows", "number of flows", "100000");
  cli.add_option("cycles", "injection horizon", "100000");
  cli.add_option("load", "aggregate offered load, flits/cycle", "0.9");
  cli.add_option("seed", "seed", "1");
  cli.add_option("elephant-fraction", "share of flows that are elephants",
                 "0.1");
  cli.add_option("elephant-share", "share of load elephants carry", "0.5");
  cli.add_option("churn-epoch",
                 "cycles per tenant-churn epoch (0 = no churn)", "0");
  cli.add_option("active-fraction",
                 "eligible share of each class within a churn epoch", "0.25");
  cli.add_option("incast-every",
                 "cycles between incast bursts (0 = no bursts)", "0");
  cli.add_option("incast-fanin", "flows firing together per burst", "32");
  cli.add_choice_flag(
      "scenario",
      "named preset overriding the knobs above: incast = frequent "
      "wide-fanin bursts (pair with --pattern hotspot when replaying); "
      "elephant-mice = a few elephants carrying most of the load over a "
      "mice swarm",
      {"none", "incast", "elephant-mice"}, "incast", "none");
  cli.add_option("out", "output binary trace path", "trace.wst");
  if (!cli.parse(argc, argv)) return 1;

  traffic::SynthSpec spec;
  spec.num_flows = cli.get_uint("flows");
  spec.horizon = cli.get_uint("cycles");
  spec.load = cli.get_double("load");
  spec.elephant_fraction = cli.get_double("elephant-fraction");
  spec.elephant_share = cli.get_double("elephant-share");
  spec.churn_epoch = cli.get_uint("churn-epoch");
  spec.active_fraction = cli.get_double("active-fraction");
  spec.incast_every = cli.get_uint("incast-every");
  spec.incast_fanin = cli.get_uint("incast-fanin");
  const std::string scenario = cli.get("scenario");
  if (scenario == "incast") {
    // Synchronized fan-in every few hundred cycles: the workload the
    // on/off-vs-credit and fat-tree adaptive differentials stress.
    spec.incast_every = 512;
    spec.incast_fanin = 64;
  } else if (scenario == "elephant-mice") {
    spec.elephant_fraction = 0.05;
    spec.elephant_share = 0.7;
  }
  if (spec.num_flows == 0 || spec.load <= 0.0) {
    std::fprintf(stderr, "--flows and --load must be positive\n");
    return 1;
  }

  // Stream straight into the encoder — a million-flow trace never exists
  // as a materialised vector here.
  const std::uint64_t seed = cli.get_uint("seed");
  traffic::BinaryTraceWriter writer(spec.num_flows);
  traffic::synthesize_trace(
      spec, seed,
      [&](const traffic::TraceEntry& e) { writer.append(e); });
  traffic::write_binary_trace_bytes(
      cli.get("out"),
      writer.finish(trace_meta_json("wormsched trace-gen", seed)));
  std::printf("wrote %llu arrivals (%lld flits, %llu flows) to %s\n",
              static_cast<unsigned long long>(writer.entry_count()),
              static_cast<long long>(writer.total_flits()),
              static_cast<unsigned long long>(spec.num_flows),
              cli.get("out").c_str());
  return 0;
}

/// Loads a trace by magic sniff: binary container or CSV.  Malformed
/// binary traces exit 2 (like snapshots), malformed CSV exits 1.
std::optional<traffic::Trace> load_trace_any(const std::string& path,
                                             int* exit_code) {
  try {
    if (traffic::is_binary_trace_file(path))
      return traffic::load_binary_trace_file(path);
    return traffic::load_trace_file(path);
  } catch (const SnapshotError& e) {
    std::fprintf(stderr, "wormsched: %s: %s\n", path.c_str(), e.what());
    *exit_code = 2;
  } catch (const std::runtime_error& e) {
    std::fprintf(stderr, "%s\n", e.what());
    *exit_code = 1;
  }
  return std::nullopt;
}

int cmd_replay(int argc, const char* const* argv) {
  CliParser cli("replay a trace (CSV or binary) through one scheduler");
  cli.add_option("trace", "input trace (CSV or binary)", "trace.csv");
  cli.add_option("scheduler", "scheduler name", "err");
  if (!cli.parse(argc, argv)) return 1;

  // Both loaders reject malformed, header-only and unreadable traces
  // with a message naming the problem.
  int exit_code = 1;
  const auto loaded = load_trace_any(cli.get("trace"), &exit_code);
  if (!loaded) return exit_code;
  const traffic::Trace& trace = *loaded;
  if (trace.entries.empty()) {
    std::fprintf(stderr, "trace is empty\n");
    return 1;
  }
  harness::ScenarioConfig config;
  config.horizon = trace.entries.back().cycle + 1;
  config.drain = true;
  config.sched.drr_quantum = trace.max_observed_length();
  const auto result =
      harness::run_scenario(cli.get("scheduler"), config, trace);
  print_flow_detail(result);
  return 0;
}

/// Strict "--topo" parse: mesh<W>x<H>, torus<W>x<H> or fattree:<K>.
/// Malformed specs ("mesh8xjunk", "meshx8", "mesh0x4") print
/// "option --topo: ..." and exit 2 — the same contract as the numeric
/// getters — instead of silently truncating or throwing out of stoul.
wormhole::TopologySpec parse_topo_or_exit(const std::string& text) {
  std::string error;
  const auto spec = wormhole::parse_topology_spec(text, &error);
  if (!spec) {
    std::fprintf(stderr, "option --topo: %s\n", error.c_str());
    std::exit(2);
  }
  return *spec;
}

/// Shared flow-control / buffer-model / routing options for the network
/// and soak subcommands, so every spelling and default matches.
void add_flow_control_options(CliParser& cli) {
  cli.add_choice_flag("flow-control",
                      "backpressure scheme: per-VC credits or on/off "
                      "(threshold) signalling with high/low watermarks",
                      {"credit", "onoff"}, "onoff", "credit");
  cli.add_choice_flag("buffer-model",
                      "finite input buffers (backpressure active) or "
                      "infinite buffers (no backpressure at all)",
                      {"finite", "infinite"}, "infinite", "finite");
  cli.add_option("on-high",
                 "on/off only: occupancy that sends \"off\" (0 = auto, "
                 "buffer_depth minus the signal round-trip)",
                 "0");
  cli.add_option("on-low",
                 "on/off only: occupancy that sends \"on\" (0 = auto, "
                 "half of on-high)",
                 "0");
  cli.add_choice_flag("routing",
                      "dor = deterministic (XY / up-down); westfirst = "
                      "partially adaptive mesh turns; adaptive = westfirst "
                      "on mesh, adaptive up-down on fattree",
                      {"dor", "westfirst", "adaptive"}, "adaptive", "dor");
}

/// Applies the shared options onto a NetworkConfig whose `topo` is
/// already set.  Invalid combinations exit 2 with an option-style
/// message rather than tripping a fabric assertion later.
void apply_flow_control_options(const CliParser& cli,
                                wormhole::NetworkConfig* config) {
  const std::uint64_t buffers = cli.get_uint("buffers");
  if (buffers == 0) {
    std::fprintf(stderr,
                 "option --buffers: buffer depth must be >= 1 (a zero-slot "
                 "buffer can never accept a flit, deadlocking every "
                 "flow-control scheme)\n");
    std::exit(2);
  }
  config->router.buffer_depth = static_cast<std::uint32_t>(buffers);
  config->router.flow_control = cli.get("flow-control") == "onoff"
                                    ? wormhole::FlowControl::kOnOff
                                    : wormhole::FlowControl::kCredit;
  config->router.buffer_model = cli.get("buffer-model") == "infinite"
                                    ? wormhole::BufferModel::kInfinite
                                    : wormhole::BufferModel::kFinite;
  config->router.on_high = static_cast<std::uint32_t>(cli.get_uint("on-high"));
  config->router.on_low = static_cast<std::uint32_t>(cli.get_uint("on-low"));
  const bool fattree =
      config->topo.kind == wormhole::TopologySpec::Kind::kFatTree;
  const std::string routing = cli.get("routing");
  if (routing == "dor") {
    config->routing = wormhole::NetworkConfig::Routing::kDor;
  } else if (routing == "westfirst") {
    if (config->topo.kind != wormhole::TopologySpec::Kind::kMesh) {
      std::fprintf(stderr, "option --routing: westfirst is mesh-only\n");
      std::exit(2);
    }
    config->routing = wormhole::NetworkConfig::Routing::kWestFirst;
  } else {  // adaptive: the topology's natural adaptive scheme
    if (config->topo.kind == wormhole::TopologySpec::Kind::kTorus) {
      std::fprintf(stderr,
                   "option --routing: torus has no adaptive scheme (use "
                   "dor)\n");
      std::exit(2);
    }
    config->routing = fattree
                          ? wormhole::NetworkConfig::Routing::kUpDownAdaptive
                          : wormhole::NetworkConfig::Routing::kWestFirst;
  }
  if (config->router.flow_control == wormhole::FlowControl::kOnOff &&
      config->router.buffer_model == wormhole::BufferModel::kFinite) {
    const std::uint32_t high = config->router.on_high;
    const std::uint32_t low = config->router.on_low;
    if (high != 0 && high > config->router.buffer_depth) {
      std::fprintf(stderr,
                   "option --on-high: must be <= --buffers (%u)\n",
                   config->router.buffer_depth);
      std::exit(2);
    }
    if (low != 0 && high != 0 && low > high) {
      std::fprintf(stderr, "option --on-low: must be <= --on-high\n");
      std::exit(2);
    }
  }
}

wormhole::PatternSpec::Kind pattern_kind(const std::string& name) {
  using Kind = wormhole::PatternSpec::Kind;
  return name == "transpose"  ? Kind::kTranspose
         : name == "bitcomp"  ? Kind::kBitComplement
         : name == "hotspot"  ? Kind::kHotspot
         : name == "neighbor" ? Kind::kNeighbor
                              : Kind::kUniform;
}

int cmd_network(int argc, const char* const* argv) {
  CliParser cli(
      "drive a wormhole mesh/torus/fat-tree with synthetic traffic");
  cli.add_option("topo", "mesh<W>x<H>, torus<W>x<H> or fattree:<K>",
                 "mesh4x4");
  cli.add_option("arbiter", "err-cycles|err-flits|rr|fcfs", "err-cycles");
  cli.add_option("pattern", "uniform|transpose|bitcomp|hotspot|neighbor",
                 "uniform");
  cli.add_option("rate", "packets per node per cycle", "0.01");
  cli.add_option("cycles", "injection cycles", "50000");
  cli.add_option("vcs", "virtual channel classes", "2");
  cli.add_option("buffers", "flit slots per input VC", "8");
  add_flow_control_options(cli);
  cli.add_option("seed", "traffic seed (base seed when sweeping)", "99");
  cli.add_option("seeds", "seeds to average over (1 = single run)", "1");
  cli.add_option("trace-in",
                 "replay an arrival trace (binary or CSV) instead of the "
                 "synthetic source; flow -> source node, destinations from "
                 "--pattern (single run only)",
                 "");
  cli.add_choice_flag("audit",
                      "attach the conservation + ERR auditors; incremental "
                      "audits O(touched) per cycle with periodic full-rescan "
                      "cross-checks, full rescans the fabric every check",
                      {"incremental", "full", "off"}, "incremental", "off");
  validate::add_fault_options(cli);
  obs::add_trace_options(cli);
  add_jobs_option(cli);
  add_network_parallel_options(cli);
  add_checkpoint_options(cli);
  if (!cli.parse(argc, argv)) return 1;

  wormhole::NetworkConfig config;
  config.topo = parse_topo_or_exit(cli.get("topo"));
  config.router.arbiter = cli.get("arbiter");
  config.router.num_vcs = static_cast<std::uint32_t>(cli.get_uint("vcs"));
  apply_flow_control_options(cli, &config);
  {
    const NetworkParallelism par = resolve_network_parallelism(cli);
    config.threads = par.threads;
    config.shards = par.shards;
  }

  wormhole::NetworkTrafficSource::Config traffic_config;
  traffic_config.packets_per_node_per_cycle = cli.get_double("rate");
  traffic_config.inject_until = cli.get_uint("cycles");
  traffic_config.pattern.kind = pattern_kind(cli.get("pattern"));
  harness::NetworkScenarioConfig point;
  point.network = config;
  point.traffic = traffic_config;
  point.faults = validate::fault_spec_from_cli(cli);
  {
    const std::string audit = cli.get("audit");
    point.audit = audit != "off";
    point.audit_config.mode = audit == "full"
                                  ? validate::AuditMode::kFull
                                  : validate::AuditMode::kIncremental;
  }
  std::string trace_error;
  const auto trace_request = obs::trace_request_from_cli(cli, &trace_error);
  if (!trace_request) {
    std::fprintf(stderr, "%s\n", trace_error.c_str());
    return 1;
  }
  point.trace = *trace_request;
  if (point.faults.enabled)
    std::printf("%s\n", point.faults.describe().c_str());

  const std::string trace_in = cli.get("trace-in");
  if (!trace_in.empty()) {
    if (cli.get_uint("seeds") > 1 || !cli.get("restore").empty()) {
      std::fprintf(stderr,
                   "--trace-in supports a single run (no --seeds/--restore)\n");
      return 1;
    }
    int exit_code = 1;
    const auto loaded = load_trace_any(trace_in, &exit_code);
    if (!loaded) return exit_code;
    wormhole::Network net(config);
    wormhole::TraceTrafficSource::Config src_config;
    src_config.trace = &*loaded;
    src_config.pattern = traffic_config.pattern;
    src_config.seed = cli.get_uint("seed");
    wormhole::TraceTrafficSource source(net, src_config);
    sim::Engine engine;
    engine.add_component(source);
    engine.add_component(net);
    // Same drain discipline as the scenario runner: injection window
    // times the drain factor bounds a fabric that never goes idle.
    const Cycle cap = source.inject_until() * 50 + 1000;
    const Cycle end = engine.run_until_idle(cap);
    std::printf("%s, %s, trace %s: injected %llu packets, delivered %llu, "
                "drained at cycle %llu\n",
                config.topo.describe().c_str(), cli.get("arbiter").c_str(),
                trace_in.c_str(),
                static_cast<unsigned long long>(source.generated()),
                static_cast<unsigned long long>(net.delivered_packets()),
                static_cast<unsigned long long>(end));
    std::printf("latency cycles: mean %.1f  min %.0f  max %.0f  p99 %.0f\n",
                net.latency_overall().mean(), net.latency_overall().min(),
                net.latency_overall().max(),
                net.latency_quantiles().quantile(0.99));
    return 0;
  }

  const std::string manifest_path = obs::manifest_path_from_cli(cli);
  const std::size_t seeds = cli.get_uint("seeds");
  const std::string restore_path = cli.get("restore");
  if (!restore_path.empty() && seeds > 1) {
    std::fprintf(stderr, "--restore requires --seeds 1\n");
    return 1;
  }
  if (seeds <= 1) {
    std::optional<harness::NetworkRun> run;
    try {
      if (!restore_path.empty()) {
        const SnapshotFile file =
            harness::load_checkpoint_or_exit(restore_path);
        run.emplace(point, file);
      } else {
        run.emplace(point, cli.get_uint("seed"));
      }
    } catch (const SnapshotError& e) {
      std::fprintf(stderr, "wormsched: %s: %s\n", restore_path.c_str(),
                   e.what());
      return 2;
    }
    if (run->restored()) {
      const obs::TraceProvenance& prov = run->trace_provenance();
      std::printf("restored from %s at cycle %llu (original seed %llu)\n",
                  restore_path.c_str(),
                  static_cast<unsigned long long>(prov.restore_cycle),
                  static_cast<unsigned long long>(prov.original_seed));
    }
    drive_with_checkpoints(*run, cli.get("checkpoint"),
                           cli.get_uint("checkpoint-every"));
    const bool restored = run->restored();
    const std::string restored_sha =
        restored ? run->trace_provenance().restored_from_sha : std::string();
    const auto result = run->finish();
    std::printf("%s, %s, %s: injected %llu packets, delivered %zu, drained "
                "at cycle %llu\n",
                config.topo.describe().c_str(), cli.get("arbiter").c_str(),
                traffic_config.pattern.describe().c_str(),
                static_cast<unsigned long long>(result.generated_packets),
                static_cast<std::size_t>(result.delivered_packets),
                static_cast<unsigned long long>(result.end_cycle));
    std::printf("latency cycles: mean %.1f  min %.0f  max %.0f\n",
                result.latency.mean(), result.latency.min(),
                result.latency.max());
    if (!manifest_path.empty()) {
      obs::RunManifest manifest =
          obs::manifest_from_cli("wormsched network", cli,
                                 cli.get_uint("seed"));
      if (restored) {
        manifest.add_config("restored_from", restore_path);
        manifest.add_config("restored_from_sha", restored_sha);
      }
      manifest.add_counter("generated_packets",
                           static_cast<double>(result.generated_packets));
      manifest.add_counter("delivered_packets",
                           static_cast<double>(result.delivered_packets));
      manifest.add_counter("delivered_flits",
                           static_cast<double>(result.delivered_flits));
      manifest.add_counter("end_cycle",
                           static_cast<double>(result.end_cycle));
      manifest.add_counter("mean_latency", result.latency.mean());
      manifest.add_counter("p99_latency", result.p99_latency);
      manifest.add_counter("audit_checks",
                           static_cast<double>(result.audit_checks));
      manifest.violations = result.audit_violations;
      if (point.trace.enabled()) {
        manifest.trace_path = point.trace.chrome_path;
        manifest.trace_recorded = result.trace_recorded;
        manifest.trace_dropped = result.trace_dropped;
      }
      manifest.write_file(manifest_path);
    }
    if (point.audit) {
      std::printf("audit: %llu cycle checks, %llu ERR opportunities, "
                  "%llu violation(s)\n",
                  static_cast<unsigned long long>(result.audit_checks),
                  static_cast<unsigned long long>(result.audit_opportunities),
                  static_cast<unsigned long long>(result.audit_violations));
      if (result.audit_violations != 0) return 2;
    }
    return 0;
  }

  harness::SweepOptions sweep;
  sweep.base_seed = cli.get_uint("seed");
  sweep.seeds = seeds;
  sweep.jobs = resolve_jobs(cli);
  const auto r = harness::sweep_network(
      point, sweep,
      [](const harness::NetworkScenarioResult& run,
         harness::SweepResult& out) {
        out.add("delivered", static_cast<double>(run.delivered_packets));
        out.add("drain_cycle", static_cast<double>(run.end_cycle));
        out.add("mean_latency", run.latency.mean());
        out.add("p99_latency", run.p99_latency);
      });
  std::printf("%s, %s, %s: %zu seeds, %zu worker(s)\n",
              config.topo.describe().c_str(), cli.get("arbiter").c_str(),
              traffic_config.pattern.describe().c_str(), seeds,
              sweep.jobs == 0 ? ThreadPool::hardware_workers() : sweep.jobs);
  std::printf("delivered packets: %s\n", r.summary("delivered", 0).c_str());
  std::printf("drain cycle:       %s\n", r.summary("drain_cycle", 0).c_str());
  std::printf("latency cycles:    mean %s  p99 %s\n",
              r.summary("mean_latency", 1).c_str(),
              r.summary("p99_latency", 0).c_str());
  if (!manifest_path.empty()) {
    obs::RunManifest manifest =
        obs::manifest_from_cli("wormsched network", cli, sweep.base_seed);
    manifest.add_counter("seeds", static_cast<double>(seeds));
    manifest.add_counter("mean_delivered_packets", r.mean("delivered"));
    manifest.add_counter("mean_drain_cycle", r.mean("drain_cycle"));
    manifest.add_counter("mean_latency", r.mean("mean_latency"));
    manifest.add_counter("mean_p99_latency", r.mean("p99_latency"));
    if (point.audit)
      manifest.violations = static_cast<std::uint64_t>(
          r.mean("audit_violations") * static_cast<double>(seeds));
    // Per-seed traces land next to the base path (trace.seedK.json).
    if (point.trace.enabled()) manifest.trace_path = point.trace.chrome_path;
    manifest.write_file(manifest_path);
  }
  if (point.audit) {
    std::printf("audit violations:  %s\n",
                r.summary("audit_violations", 0).c_str());
    if (r.mean("audit_violations") != 0.0) return 2;
  }
  return 0;
}

int cmd_soak(int argc, const char* const* argv) {
  CliParser cli(
      "long-horizon network soak: windowed steady-state metrics in O(1) "
      "memory, chained across checkpointed segments");
  cli.add_option("topo", "mesh<W>x<H>, torus<W>x<H> or fattree:<K>",
                 "mesh8x8");
  cli.add_option("arbiter", "err-cycles|err-flits|rr|fcfs", "err-cycles");
  cli.add_option("pattern", "uniform|transpose|bitcomp|hotspot|neighbor",
                 "uniform");
  cli.add_option("rate", "packets per node per cycle", "0.01");
  cli.add_option("cycles", "cycle target for this segment", "5000000");
  cli.add_option("horizon",
                 "injection horizon in cycles (0 = --cycles); fixed by the "
                 "first segment and carried in the checkpoint thereafter",
                 "0");
  cli.add_option("vcs", "virtual channel classes", "2");
  cli.add_option("buffers", "flit slots per input VC", "8");
  add_flow_control_options(cli);
  cli.add_option("seed", "traffic seed", "99");
  cli.add_option("window", "steady-state window width in cycles", "10000");
  cli.add_option("stable-windows",
                 "consecutive stable windows that declare warm-up done", "5");
  cli.add_option("rel-tol",
                 "relative mean-delay tolerance for window stability", "0.10");
  cli.add_choice_flag("audit",
                      "attach the conservation + ERR auditors for the "
                      "whole soak (spellings as in the network subcommand)",
                      {"incremental", "full", "off"}, "incremental", "off");
  validate::add_fault_options(cli);
  obs::add_trace_options(cli);
  add_network_parallel_options(cli);
  add_checkpoint_options(cli);
  if (!cli.parse(argc, argv)) return 1;

  harness::NetworkScenarioConfig point;
  point.network.topo = parse_topo_or_exit(cli.get("topo"));
  point.network.router.arbiter = cli.get("arbiter");
  point.network.router.num_vcs =
      static_cast<std::uint32_t>(cli.get_uint("vcs"));
  apply_flow_control_options(cli, &point.network);
  {
    const NetworkParallelism par = resolve_network_parallelism(cli);
    point.network.threads = par.threads;
    point.network.shards = par.shards;
  }
  point.traffic.packets_per_node_per_cycle = cli.get_double("rate");
  const Cycle cycles = cli.get_uint("cycles");
  const Cycle horizon = cli.get_uint("horizon");
  point.traffic.inject_until = horizon > 0 ? horizon : cycles;
  point.traffic.pattern.kind = pattern_kind(cli.get("pattern"));
  point.faults = validate::fault_spec_from_cli(cli);
  {
    const std::string audit = cli.get("audit");
    point.audit = audit != "off";
    point.audit_config.mode = audit == "full"
                                  ? validate::AuditMode::kFull
                                  : validate::AuditMode::kIncremental;
  }
  {
    std::string trace_error;
    const auto trace_request = obs::trace_request_from_cli(cli, &trace_error);
    if (!trace_request) {
      std::fprintf(stderr, "%s\n", trace_error.c_str());
      return 1;
    }
    point.trace = *trace_request;
  }
  if (point.faults.enabled)
    std::printf("%s\n", point.faults.describe().c_str());

  harness::SoakOptions options;
  options.cycles = cycles;
  options.checkpoint_every = cli.get_uint("checkpoint-every");
  options.checkpoint_path = cli.get("checkpoint");
  options.window.window = cli.get_uint("window");
  options.window.stable_windows = cli.get_uint("stable-windows");
  options.window.rel_tol = cli.get_double("rel-tol");

  const std::string restore_path = cli.get("restore");
  harness::SoakSummary summary;
  try {
    if (!restore_path.empty()) {
      const SnapshotFile file = harness::load_checkpoint_or_exit(restore_path);
      summary = harness::resume_soak(point, file, options);
    } else {
      summary = harness::run_soak(point, cli.get_uint("seed"), options);
    }
  } catch (const SnapshotError& e) {
    std::fprintf(stderr, "wormsched: %s: %s\n", restore_path.c_str(),
                 e.what());
    return 2;
  }

  std::printf("%s, %s, %s: soaked to cycle %llu%s\n",
              point.network.topo.describe().c_str(),
              cli.get("arbiter").c_str(),
              point.traffic.pattern.describe().c_str(),
              static_cast<unsigned long long>(summary.end_cycle),
              summary.restore_count > 0 ? " (resumed)" : "");
  std::printf("delivered %llu packets / %llu flits over %llu window(s)\n",
              static_cast<unsigned long long>(summary.delivered_packets),
              static_cast<unsigned long long>(summary.delivered_flits),
              static_cast<unsigned long long>(summary.windows_closed));
  if (summary.warmed_up) {
    std::printf("warm-up ended at cycle %llu; steady mean delay %.2f "
                "cycles, throughput %.4f flits/cycle (window stddev %.2f)\n",
                static_cast<unsigned long long>(summary.warmup_end),
                summary.steady_mean_delay, summary.steady_throughput,
                summary.window_mean_stddev);
  } else {
    std::printf("warm-up not reached within %llu windows\n",
                static_cast<unsigned long long>(summary.windows_closed));
  }
  if (summary.checkpoints_written > 0)
    std::printf("wrote %llu checkpoint(s) to %s\n",
                static_cast<unsigned long long>(summary.checkpoints_written),
                options.checkpoint_path.c_str());

  const std::string manifest_path = obs::manifest_path_from_cli(cli);
  if (!manifest_path.empty()) {
    obs::RunManifest manifest =
        obs::manifest_from_cli("wormsched soak", cli, cli.get_uint("seed"));
    if (!restore_path.empty())
      manifest.add_config("restored_from", restore_path);
    manifest.add_counter("end_cycle", static_cast<double>(summary.end_cycle));
    manifest.add_counter("delivered_packets",
                         static_cast<double>(summary.delivered_packets));
    manifest.add_counter("delivered_flits",
                         static_cast<double>(summary.delivered_flits));
    manifest.add_counter("windows_closed",
                         static_cast<double>(summary.windows_closed));
    manifest.add_counter("warmed_up", summary.warmed_up ? 1.0 : 0.0);
    manifest.add_counter("warmup_end",
                         static_cast<double>(summary.warmup_end));
    manifest.add_counter("steady_mean_delay", summary.steady_mean_delay);
    manifest.add_counter("steady_throughput", summary.steady_throughput);
    manifest.violations = summary.audit_violations;
    manifest.write_file(manifest_path);
  }
  if (point.audit) {
    std::printf("audit: %llu violation(s)\n",
                static_cast<unsigned long long>(summary.audit_violations));
    if (summary.audit_violations != 0) return 2;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fputs(kUsage, stderr);
    return 1;
  }
  const std::string command = argv[1];
  const int sub_argc = argc - 1;
  const char* const* sub_argv = argv + 1;
  if (command == "compare") return cmd_compare(sub_argc, sub_argv);
  if (command == "run") return cmd_run(sub_argc, sub_argv);
  if (command == "gen-trace") return cmd_gen_trace(sub_argc, sub_argv);
  if (command == "trace-gen") return cmd_trace_gen(sub_argc, sub_argv);
  if (command == "replay") return cmd_replay(sub_argc, sub_argv);
  if (command == "network") return cmd_network(sub_argc, sub_argv);
  if (command == "soak") return cmd_soak(sub_argc, sub_argv);
  if (command == "--help" || command == "-h") {
    std::fputs(kUsage, stdout);
    return 0;
  }
  std::fprintf(stderr, "unknown command '%s'\n\n%s", command.c_str(), kUsage);
  return 1;
}
