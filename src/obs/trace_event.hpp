// Typed events for the runtime observability layer (docs/OBSERVABILITY.md).
//
// One TraceEvent is a fixed-size POD record: the hot paths construct and
// copy it into a TraceSink ring with no allocation and no formatting.
// The payload fields are generic (flow / node / aux / id / v0 / v1); the
// static factories below fix their meaning per kind, and the exporters
// (trace_export.hpp) render them symbolically.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "common/types.hpp"

namespace wormsched::obs {

enum class EventKind : std::uint8_t {
  kPacketEnqueue = 0,   // scheduler: packet joined a flow queue
  kPacketDequeue,       // scheduler: packet fully served
  kOpportunity,         // one completed ERR service opportunity
  kRoundBoundary,       // ERR round counter advanced
  kFlitInject,          // NIC pushed a flit into the fabric
  kFlitEject,           // router delivered a flit to its local NIC
  kRouterStall,         // busy output port moved no flit this cycle
  kFaultLinkStall,      // fault injector stalled the link fabric
  kFaultCreditHold,     // fault injector quarantined a credit
  kViolation,           // an auditor reported an invariant violation
};
inline constexpr std::size_t kNumEventKinds = 10;

[[nodiscard]] constexpr const char* event_kind_name(EventKind kind) {
  switch (kind) {
    case EventKind::kPacketEnqueue: return "packet_enqueue";
    case EventKind::kPacketDequeue: return "packet_dequeue";
    case EventKind::kOpportunity: return "opportunity";
    case EventKind::kRoundBoundary: return "round";
    case EventKind::kFlitInject: return "flit_inject";
    case EventKind::kFlitEject: return "flit_eject";
    case EventKind::kRouterStall: return "router_stall";
    case EventKind::kFaultLinkStall: return "fault_link_stall";
    case EventKind::kFaultCreditHold: return "fault_credit_hold";
    case EventKind::kViolation: return "violation";
  }
  return "?";
}

[[nodiscard]] constexpr std::uint32_t event_bit(EventKind kind) {
  return std::uint32_t{1} << static_cast<std::uint32_t>(kind);
}
inline constexpr std::uint32_t kAllEventsMask =
    (std::uint32_t{1} << kNumEventKinds) - 1;

/// Parses a `--trace-events` list ("packet,flit,fault", "all", ...) into
/// an event mask.  Group names select related kinds: packet, opportunity,
/// round, flit, stall, fault, violation.  Returns nullopt and fills
/// `error` on an unrecognized name.
[[nodiscard]] std::optional<std::uint32_t> parse_event_mask(
    const std::string& text, std::string* error);

struct TraceEvent {
  Cycle cycle = 0;
  EventKind kind = EventKind::kPacketEnqueue;
  std::uint32_t flow = 0;  // flow id / ERR requester index
  std::uint32_t node = 0;  // fabric node, 0 for standalone-scheduler events
  std::uint32_t aux = 0;   // kind-specific (length, port, unit, note index)
  std::uint64_t id = 0;    // packet id or round number
  double v0 = 0.0;         // kind-specific (allowance, flit index, hold)
  double v1 = 0.0;         // kind-specific (surplus count, latency)

  // --- Factories: the single source of truth for field meanings. -------
  [[nodiscard]] static TraceEvent packet_enqueue(Cycle now, std::uint32_t flow,
                                                 std::uint64_t packet,
                                                 Flits length) {
    return TraceEvent{now, EventKind::kPacketEnqueue, flow, 0,
                      static_cast<std::uint32_t>(length), packet, 0.0, 0.0};
  }
  /// `allowance`/`surplus` are the serving flow's ERR state at the
  /// decision instant (0 for non-ERR disciplines).
  [[nodiscard]] static TraceEvent packet_dequeue(Cycle now, std::uint32_t flow,
                                                 std::uint64_t packet,
                                                 Flits length, double allowance,
                                                 double surplus) {
    return TraceEvent{now,    EventKind::kPacketDequeue,
                      flow,   0,
                      static_cast<std::uint32_t>(length), packet,
                      allowance, surplus};
  }
  /// One completed ERR service opportunity; `unit` is the router
  /// output-port unit for fabric arbiters (0 standalone).
  [[nodiscard]] static TraceEvent opportunity(Cycle now, std::uint32_t flow,
                                              std::uint64_t round,
                                              double allowance, double surplus,
                                              std::uint32_t node = 0,
                                              std::uint32_t unit = 0) {
    return TraceEvent{now, EventKind::kOpportunity, flow, node, unit,
                      round, allowance, surplus};
  }
  [[nodiscard]] static TraceEvent round_boundary(Cycle now, std::uint64_t round,
                                                 double previous_max_sc) {
    return TraceEvent{now, EventKind::kRoundBoundary, 0, 0, 0,
                      round, previous_max_sc, 0.0};
  }
  [[nodiscard]] static TraceEvent flit_inject(Cycle now, std::uint32_t node,
                                              std::uint32_t flow,
                                              std::uint64_t packet,
                                              Flits index) {
    return TraceEvent{now, EventKind::kFlitInject, flow, node, 0, packet,
                      static_cast<double>(index), 0.0};
  }
  /// `tail` marks the packet-completing flit; its v1 is the end-to-end
  /// packet latency in cycles (0 for non-tail flits).
  [[nodiscard]] static TraceEvent flit_eject(Cycle now, std::uint32_t node,
                                             std::uint32_t flow,
                                             std::uint64_t packet, Flits index,
                                             bool tail, double latency) {
    return TraceEvent{now, EventKind::kFlitEject, flow, node, tail ? 1u : 0u,
                      packet, static_cast<double>(index), latency};
  }
  [[nodiscard]] static TraceEvent router_stall(Cycle now, std::uint32_t node,
                                               std::uint32_t port) {
    return TraceEvent{now, EventKind::kRouterStall, 0, node, port, 0, 0.0,
                      0.0};
  }
  [[nodiscard]] static TraceEvent fault_link_stall(Cycle now) {
    return TraceEvent{now, EventKind::kFaultLinkStall, 0, 0, 0, 0, 0.0, 0.0};
  }
  [[nodiscard]] static TraceEvent fault_credit_hold(Cycle now,
                                                    std::uint32_t node,
                                                    Cycle hold) {
    return TraceEvent{now, EventKind::kFaultCreditHold, 0, node, 0, 0,
                      static_cast<double>(hold), 0.0};
  }
  /// `note` indexes a detail string stored in the sink's note table.
  [[nodiscard]] static TraceEvent violation(Cycle now, std::uint32_t note) {
    return TraceEvent{now, EventKind::kViolation, 0, 0, note, 0, 0.0, 0.0};
  }
};

}  // namespace wormsched::obs
