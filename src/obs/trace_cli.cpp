#include "obs/trace_cli.hpp"

namespace wormsched::obs {

void add_trace_options(CliParser& cli) {
  cli.add_option("trace",
                 "write a chrome://tracing JSON of the run to this path",
                 "");
  cli.add_option("trace-csv",
                 "write the per-flow service timeline CSV to this path", "");
  cli.add_option("trace-events",
                 "comma list of event groups to record: packet, opportunity, "
                 "round, flit, stall, fault, violation, all",
                 "all");
  cli.add_option("trace-capacity",
                 "events retained in the trace ring (oldest dropped first)",
                 "65536");
  cli.add_option("manifest", "write a run-manifest JSON to this path", "");
}

std::optional<TraceRequest> trace_request_from_cli(const CliParser& cli,
                                                   std::string* error) {
  TraceRequest request;
  request.chrome_path = cli.get("trace");
  request.timeline_csv = cli.get("trace-csv");
  const auto mask = parse_event_mask(cli.get("trace-events"), error);
  if (!mask) return std::nullopt;
  request.mask = *mask;
  request.capacity = static_cast<std::size_t>(cli.get_uint("trace-capacity"));
  return request;
}

std::string manifest_path_from_cli(const CliParser& cli) {
  return cli.get("manifest");
}

RunManifest manifest_from_cli(const std::string& tool, const CliParser& cli,
                              std::uint64_t seed) {
  RunManifest manifest;
  manifest.tool = tool;
  manifest.seed = seed;
  for (const auto& [name, value] : cli.items())
    manifest.add_config(name, value);
  return manifest;
}

}  // namespace wormsched::obs
