// Run manifests: the provenance record written next to every bench /
// sweep / traced output (docs/OBSERVABILITY.md).
//
// A manifest answers "what exactly produced this file?": git SHA, seed,
// the full effective configuration, the headline counters, and the
// auditor verdict.  A result file without one is unreviewable — the same
// argument BENCH_perf.json's provenance block already makes, promoted to
// a reusable layer.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

namespace wormsched::obs {

/// The checkout's commit SHA: $WORMSCHED_GIT_SHA when set (reproduce.sh
/// and CI export it), else `git rev-parse HEAD` in the working directory,
/// else "unknown".  Never fails.
[[nodiscard]] std::string current_git_sha();

struct RunManifest {
  std::string tool;  // e.g. "wormsched network" or "bench_perf_kernel"
  std::string git_sha = current_git_sha();
  std::uint64_t seed = 0;
  /// Effective configuration, key order preserved (CLI front ends feed
  /// every declared option through CliParser::items()).
  std::vector<std::pair<std::string, std::string>> config;
  /// Headline result counters (delivered packets, end cycle, ...).
  std::vector<std::pair<std::string, double>> counters;
  /// Total auditor violations (0 when auditing was off or clean).
  std::uint64_t violations = 0;
  /// Trace exports attached to the run (empty when tracing was off).
  std::string trace_path;
  std::uint64_t trace_recorded = 0;
  std::uint64_t trace_dropped = 0;

  void add_config(std::string key, std::string value) {
    config.emplace_back(std::move(key), std::move(value));
  }
  void add_counter(std::string key, double value) {
    counters.emplace_back(std::move(key), value);
  }

  /// JSON (schema "wormsched-manifest-v1"), deterministic field order.
  void write(std::ostream& os) const;
  /// Throws std::runtime_error when the path cannot open.
  void write_file(const std::string& path) const;
};

}  // namespace wormsched::obs
