#include "obs/manifest.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <ostream>
#include <stdexcept>

#include "obs/trace_export.hpp"

namespace wormsched::obs {

namespace {

std::string fmt_number(double v) {
  char buf[64];
  if (std::nearbyint(v) == v && std::fabs(v) < 1e15) {
    std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v));
  } else {
    std::snprintf(buf, sizeof buf, "%.6g", v);
  }
  return buf;
}

}  // namespace

std::string current_git_sha() {
  const char* env = std::getenv("WORMSCHED_GIT_SHA");
  if (env != nullptr && *env != '\0') return env;
  FILE* pipe = ::popen("git rev-parse HEAD 2>/dev/null", "r");
  if (pipe == nullptr) return "unknown";
  char buf[128] = {};
  std::string sha;
  if (std::fgets(buf, sizeof buf, pipe) != nullptr) sha = buf;
  ::pclose(pipe);
  while (!sha.empty() && (sha.back() == '\n' || sha.back() == '\r'))
    sha.pop_back();
  return sha.empty() ? "unknown" : sha;
}

void RunManifest::write(std::ostream& os) const {
  os << "{\n";
  os << "  \"schema\": \"wormsched-manifest-v1\",\n";
  os << "  \"tool\": \"" << json_escape(tool) << "\",\n";
  os << "  \"git_sha\": \"" << json_escape(git_sha) << "\",\n";
  os << "  \"seed\": " << seed << ",\n";
  os << "  \"config\": {";
  bool first = true;
  for (const auto& [key, value] : config) {
    if (!first) os << ",";
    first = false;
    os << "\n    \"" << json_escape(key) << "\": \"" << json_escape(value)
       << "\"";
  }
  os << (config.empty() ? "" : "\n  ") << "},\n";
  os << "  \"counters\": {";
  first = true;
  for (const auto& [key, value] : counters) {
    if (!first) os << ",";
    first = false;
    os << "\n    \"" << json_escape(key) << "\": " << fmt_number(value);
  }
  os << (counters.empty() ? "" : "\n  ") << "},\n";
  os << "  \"violations\": " << violations << ",\n";
  if (trace_path.empty()) {
    os << "  \"trace\": null\n";
  } else {
    os << "  \"trace\": {\"path\": \"" << json_escape(trace_path)
       << "\", \"recorded\": " << trace_recorded
       << ", \"dropped\": " << trace_dropped << "}\n";
  }
  os << "}\n";
}

void RunManifest::write_file(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open " + path);
  write(out);
}

}  // namespace wormsched::obs
