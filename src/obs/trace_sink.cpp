#include "obs/trace_sink.hpp"

#include <sstream>

#include "common/assert.hpp"

namespace wormsched::obs {

TraceSink::TraceSink() : TraceSink(Options()) {}

TraceSink::TraceSink(const Options& options)
    : ring_(options.capacity == 0 ? 1 : options.capacity),
      mask_(options.mask & kAllEventsMask) {}

std::uint32_t TraceSink::note(std::string text) {
  if (notes_.size() >= kNoteLimit) {
    notes_.back() = std::move(text);
    return static_cast<std::uint32_t>(notes_.size() - 1);
  }
  notes_.push_back(std::move(text));
  return static_cast<std::uint32_t>(notes_.size() - 1);
}

const std::string& TraceSink::note_text(std::uint32_t index) const {
  WS_CHECK(index < notes_.size());
  return notes_[index];
}

std::vector<TraceEvent> TraceSink::snapshot() const {
  std::vector<TraceEvent> out;
  out.reserve(size_);
  // Oldest event: head_ when the ring has wrapped, slot 0 otherwise.
  const std::size_t start = size_ == ring_.size() ? head_ : 0;
  for (std::size_t i = 0; i < size_; ++i)
    out.push_back(ring_[(start + i) % ring_.size()]);
  return out;
}

std::optional<std::uint32_t> parse_event_mask(const std::string& text,
                                              std::string* error) {
  std::uint32_t mask = 0;
  std::stringstream ss(text);
  std::string name;
  bool any = false;
  while (std::getline(ss, name, ',')) {
    if (name.empty()) continue;
    any = true;
    if (name == "all") {
      mask |= kAllEventsMask;
    } else if (name == "packet") {
      mask |= event_bit(EventKind::kPacketEnqueue) |
              event_bit(EventKind::kPacketDequeue);
    } else if (name == "opportunity") {
      mask |= event_bit(EventKind::kOpportunity);
    } else if (name == "round") {
      mask |= event_bit(EventKind::kRoundBoundary);
    } else if (name == "flit") {
      mask |= event_bit(EventKind::kFlitInject) |
              event_bit(EventKind::kFlitEject);
    } else if (name == "stall") {
      mask |= event_bit(EventKind::kRouterStall);
    } else if (name == "fault") {
      mask |= event_bit(EventKind::kFaultLinkStall) |
              event_bit(EventKind::kFaultCreditHold);
    } else if (name == "violation") {
      mask |= event_bit(EventKind::kViolation);
    } else {
      if (error != nullptr)
        *error = "unknown event group '" + name +
                 "' (use packet, opportunity, round, flit, stall, fault, "
                 "violation or all)";
      return std::nullopt;
    }
  }
  if (!any) {
    if (error != nullptr) *error = "empty event list";
    return std::nullopt;
  }
  return mask;
}

}  // namespace wormsched::obs
