// Shared tracing / manifest CLI surface, mirroring validate's
// add_fault_options: every front end that can trace declares the flags
// through these helpers so they read identically everywhere.
#pragma once

#include <optional>
#include <string>

#include "common/cli.hpp"
#include "obs/manifest.hpp"
#include "obs/trace_export.hpp"

namespace wormsched::obs {

/// Declares --trace, --trace-csv, --trace-events, --trace-capacity and
/// --manifest.
void add_trace_options(CliParser& cli);

/// Builds a TraceRequest from the parsed options.  Returns nullopt and
/// fills `error` when --trace-events does not parse.
[[nodiscard]] std::optional<TraceRequest> trace_request_from_cli(
    const CliParser& cli, std::string* error);

/// --manifest's path ("" = no manifest requested).
[[nodiscard]] std::string manifest_path_from_cli(const CliParser& cli);

/// Starts a manifest for one CLI invocation: tool name, seed, and every
/// declared option's effective value as the config block.
[[nodiscard]] RunManifest manifest_from_cli(const std::string& tool,
                                            const CliParser& cli,
                                            std::uint64_t seed);

}  // namespace wormsched::obs
