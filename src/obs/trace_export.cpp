#include "obs/trace_export.hpp"

#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <ostream>
#include <stdexcept>

namespace wormsched::obs {

namespace {

/// Whether the event belongs to a scheduler flow track (vs a fabric node
/// track) in the Chrome rendering.
bool flow_track(EventKind kind) {
  switch (kind) {
    case EventKind::kPacketEnqueue:
    case EventKind::kPacketDequeue:
    case EventKind::kOpportunity:
      return true;
    default:
      return false;
  }
}

const char* category(EventKind kind) {
  switch (kind) {
    case EventKind::kPacketEnqueue:
    case EventKind::kPacketDequeue:
    case EventKind::kOpportunity:
    case EventKind::kRoundBoundary:
      return "sched";
    case EventKind::kFlitInject:
    case EventKind::kFlitEject:
    case EventKind::kRouterStall:
      return "net";
    case EventKind::kFaultLinkStall:
    case EventKind::kFaultCreditHold:
      return "fault";
    case EventKind::kViolation:
      return "audit";
  }
  return "?";
}

/// Integral doubles print as integers (lengths, rounds, flit indices);
/// everything else as %.6g.  Keeps the JSON stable and readable.
std::string fmt_double(double v) {
  char buf[64];
  if (std::nearbyint(v) == v && std::fabs(v) < 1e15) {
    std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v));
  } else {
    std::snprintf(buf, sizeof buf, "%.6g", v);
  }
  return buf;
}

void write_args(std::ostream& os, const TraceEvent& e, const TraceSink& sink) {
  switch (e.kind) {
    case EventKind::kPacketEnqueue:
      os << "{\"packet\":" << e.id << ",\"length\":" << e.aux << "}";
      break;
    case EventKind::kPacketDequeue:
      os << "{\"packet\":" << e.id << ",\"length\":" << e.aux
         << ",\"allowance\":" << fmt_double(e.v0)
         << ",\"surplus\":" << fmt_double(e.v1) << "}";
      break;
    case EventKind::kOpportunity:
      os << "{\"round\":" << e.id << ",\"allowance\":" << fmt_double(e.v0)
         << ",\"surplus\":" << fmt_double(e.v1) << ",\"node\":" << e.node
         << ",\"unit\":" << e.aux << "}";
      break;
    case EventKind::kRoundBoundary:
      os << "{\"round\":" << e.id
         << ",\"prev_max_sc\":" << fmt_double(e.v0) << "}";
      break;
    case EventKind::kFlitInject:
      os << "{\"flow\":" << e.flow << ",\"packet\":" << e.id
         << ",\"index\":" << fmt_double(e.v0) << "}";
      break;
    case EventKind::kFlitEject:
      os << "{\"flow\":" << e.flow << ",\"packet\":" << e.id
         << ",\"index\":" << fmt_double(e.v0)
         << ",\"tail\":" << (e.aux != 0 ? "true" : "false")
         << ",\"latency\":" << fmt_double(e.v1) << "}";
      break;
    case EventKind::kRouterStall:
      os << "{\"port\":" << e.aux << "}";
      break;
    case EventKind::kFaultLinkStall:
      os << "{}";
      break;
    case EventKind::kFaultCreditHold:
      os << "{\"hold_cycles\":" << fmt_double(e.v0) << "}";
      break;
    case EventKind::kViolation:
      os << "{\"detail\":\""
         << (e.aux < sink.note_count()
                 ? json_escape(sink.note_text(e.aux))
                 : std::string())
         << "\"}";
      break;
  }
}

}  // namespace

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void write_chrome_trace(std::ostream& os, const TraceSink& sink,
                        const TraceProvenance* provenance) {
  os << "{\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent& e : sink.snapshot()) {
    if (!first) os << ",";
    first = false;
    const std::uint32_t tid = flow_track(e.kind) ? e.flow : e.node;
    os << "\n{\"name\":\"" << event_kind_name(e.kind) << "\",\"cat\":\""
       << category(e.kind) << "\",\"ph\":\"i\",\"s\":\"t\",\"ts\":" << e.cycle
       << ",\"pid\":0,\"tid\":" << tid << ",\"args\":";
    write_args(os, e, sink);
    os << "}";
  }
  os << "\n],\"displayTimeUnit\":\"ms\",\"otherData\":{"
     << "\"tool\":\"wormsched\",\"recorded\":" << sink.recorded()
     << ",\"dropped\":" << sink.dropped()
     << ",\"filtered\":" << sink.filtered();
  if (provenance != nullptr && provenance->restored) {
    os << ",\"restored\":true,\"restored_from_sha\":\""
       << json_escape(provenance->restored_from_sha)
       << "\",\"original_seed\":" << provenance->original_seed
       << ",\"restore_cycle\":" << provenance->restore_cycle;
  }
  os << "}}\n";
}

void write_service_timeline_csv(std::ostream& os, const TraceSink& sink) {
  os << "cycle,event,flow,node,id,units,allowance,surplus\n";
  for (const TraceEvent& e : sink.snapshot()) {
    switch (e.kind) {
      case EventKind::kPacketEnqueue:
      case EventKind::kPacketDequeue:
        os << e.cycle << ',' << event_kind_name(e.kind) << ',' << e.flow
           << ',' << e.node << ',' << e.id << ',' << e.aux << ','
           << fmt_double(e.v0) << ',' << fmt_double(e.v1) << '\n';
        break;
      case EventKind::kOpportunity:
        os << e.cycle << ',' << event_kind_name(e.kind) << ',' << e.flow
           << ',' << e.node << ',' << e.id << ',' << fmt_double(0.0) << ','
           << fmt_double(e.v0) << ',' << fmt_double(e.v1) << '\n';
        break;
      case EventKind::kFlitEject:
        if (e.aux == 0) break;  // tails only: one row per delivered packet
        os << e.cycle << ',' << event_kind_name(e.kind) << ',' << e.flow
           << ',' << e.node << ',' << e.id << ",1," << fmt_double(e.v1)
           << ",0\n";
        break;
      default:
        break;
    }
  }
}

namespace {

template <typename Fn>
void write_file_or_throw(const std::string& path, Fn&& fn) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open " + path);
  fn(out);
}

}  // namespace

void write_chrome_trace_file(const std::string& path, const TraceSink& sink,
                             const TraceProvenance* provenance) {
  write_file_or_throw(path, [&](std::ostream& os) {
    write_chrome_trace(os, sink, provenance);
  });
}

void write_service_timeline_csv_file(const std::string& path,
                                     const TraceSink& sink) {
  write_file_or_throw(path, [&](std::ostream& os) {
    write_service_timeline_csv(os, sink);
  });
}

void export_trace(const TraceRequest& request, const TraceSink& sink) {
  if (!request.chrome_path.empty())
    write_chrome_trace_file(request.chrome_path, sink);
  if (!request.timeline_csv.empty())
    write_service_timeline_csv_file(request.timeline_csv, sink);
}

std::string with_seed_suffix(const std::string& path,
                             std::uint64_t seed_index) {
  const std::string suffix = ".seed" + std::to_string(seed_index);
  const auto slash = path.find_last_of('/');
  const auto dot = path.find_last_of('.');
  if (dot == std::string::npos ||
      (slash != std::string::npos && dot < slash)) {
    return path + suffix;
  }
  return path.substr(0, dot) + suffix + path.substr(dot);
}

}  // namespace wormsched::obs
