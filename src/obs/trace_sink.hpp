// Runtime-toggled structured event recorder (docs/OBSERVABILITY.md).
//
// A TraceSink is a fixed-capacity ring of TraceEvents: recording is an
// allocation-free, lock-free store into pre-sized memory, and once the
// ring is full the oldest events are overwritten — the sink always holds
// the most recent window, which is exactly what the violation-dump mode
// needs.  Cost model, mirroring metrics::PerfCounters:
//   * no sink attached (the default) — one null-pointer test per site;
//   * sink attached — one mask test plus a POD copy per event.
//
// A sink is single-threaded by design: every simulation run owns its own
// sink (parallel sweeps therefore get one per worker-run, never shared),
// so the hot path needs no atomics at all.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "obs/trace_event.hpp"

namespace wormsched::obs {

class TraceSink {
 public:
  struct Options {
    /// Events retained; older ones are overwritten (drop-oldest).
    std::size_t capacity = std::size_t{1} << 16;
    /// Which EventKinds to keep (see parse_event_mask).
    std::uint32_t mask = kAllEventsMask;
  };

  TraceSink();
  explicit TraceSink(const Options& options);

  /// Clock for event sites that fire from callbacks without a cycle
  /// argument (ERR opportunity listeners): the driving loop stamps the
  /// current cycle here once per tick.
  void set_now(Cycle now) { now_ = now; }
  [[nodiscard]] Cycle now() const { return now_; }

  [[nodiscard]] bool wants(EventKind kind) const {
    return (mask_ & event_bit(kind)) != 0;
  }
  [[nodiscard]] std::uint32_t mask() const { return mask_; }
  [[nodiscard]] std::size_t capacity() const { return ring_.size(); }

  /// Records one event (a POD copy; never allocates).  Events not
  /// selected by the mask are counted as filtered and discarded.
  void record(const TraceEvent& event) {
    if (!wants(event.kind)) {
      ++filtered_;
      return;
    }
    ring_[head_] = event;
    head_ = head_ + 1 == ring_.size() ? 0 : head_ + 1;
    if (size_ < ring_.size()) {
      ++size_;
    } else {
      ++dropped_;
    }
    ++recorded_;
    ++per_kind_[static_cast<std::size_t>(event.kind)];
  }

  /// Interns a detail string (violation context) and returns its index
  /// for TraceEvent::violation.  Bounded: beyond kNoteLimit the last
  /// slot is reused so a violation storm cannot grow memory.
  [[nodiscard]] std::uint32_t note(std::string text);
  [[nodiscard]] const std::string& note_text(std::uint32_t index) const;
  [[nodiscard]] std::size_t note_count() const { return notes_.size(); }

  /// Events accepted over the sink's lifetime (filtered ones excluded).
  [[nodiscard]] std::uint64_t recorded() const { return recorded_; }
  /// Accepted events later overwritten by newer ones.
  [[nodiscard]] std::uint64_t dropped() const { return dropped_; }
  /// Events rejected by the kind mask.
  [[nodiscard]] std::uint64_t filtered() const { return filtered_; }
  [[nodiscard]] std::uint64_t count(EventKind kind) const {
    return per_kind_[static_cast<std::size_t>(kind)];
  }
  /// Events currently retained in the ring.
  [[nodiscard]] std::size_t size() const { return size_; }

  /// Retained events, oldest first (copies out of the ring).
  [[nodiscard]] std::vector<TraceEvent> snapshot() const;

  static constexpr std::size_t kNoteLimit = 64;

 private:
  std::vector<TraceEvent> ring_;
  std::size_t head_ = 0;  // next write slot
  std::size_t size_ = 0;
  std::uint32_t mask_;
  Cycle now_ = 0;
  std::uint64_t recorded_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t filtered_ = 0;
  std::array<std::uint64_t, kNumEventKinds> per_kind_{};
  std::vector<std::string> notes_;
};

}  // namespace wormsched::obs
