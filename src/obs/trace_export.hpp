// Exporters for recorded trace windows (docs/OBSERVABILITY.md).
//
// Two renderings of one TraceSink:
//   * Chrome trace JSON — loads directly in chrome://tracing (or
//     https://ui.perfetto.dev): every event becomes an instant event on
//     the timeline, with the cycle number as the timestamp and the flow
//     (scheduler events) or fabric node (network events) as the track.
//   * Per-flow service timeline CSV — the packet/opportunity/ejection
//     events as flat rows, the format fairness post-analyses consume.
#pragma once

#include <iosfwd>
#include <string>

#include "obs/trace_sink.hpp"

namespace wormsched::obs {

/// What a run should trace and where the exports go.  Carried by run
/// configs (harness::NetworkScenarioConfig) and built from CLI flags by
/// trace_request_from_cli.
struct TraceRequest {
  /// Chrome trace JSON output path; empty = none.
  std::string chrome_path;
  /// Per-flow service timeline CSV path; empty = none.
  std::string timeline_csv;
  std::uint32_t mask = kAllEventsMask;
  std::size_t capacity = std::size_t{1} << 16;

  /// Tracing is on iff at least one export is requested.
  [[nodiscard]] bool enabled() const {
    return !chrome_path.empty() || !timeline_csv.empty();
  }
};

/// Provenance of a trace window recorded by a run restored from a
/// checkpoint.  Exported into the Chrome JSON's otherData block so a
/// violation-window dump names the snapshot it continued from (the saving
/// build's git SHA, the run's original seed, the restore cycle) — the
/// evidence a post-mortem needs to regenerate the exact run.
struct TraceProvenance {
  bool restored = false;
  std::string restored_from_sha;
  std::uint64_t original_seed = 0;
  std::uint64_t restore_cycle = 0;
};

/// Writes the sink's retained window as Chrome trace JSON (object form,
/// {"traceEvents": [...]}).  Deterministic for a given event sequence.
/// `provenance` (optional) lands in otherData.
void write_chrome_trace(std::ostream& os, const TraceSink& sink,
                        const TraceProvenance* provenance = nullptr);

/// Writes the service-relevant events (packet enqueue/dequeue, ERR
/// opportunities, tail-flit ejections) as a per-flow timeline CSV with
/// header `cycle,event,flow,node,id,units,allowance,surplus`.
void write_service_timeline_csv(std::ostream& os, const TraceSink& sink);

/// File wrappers; throw std::runtime_error when the path cannot open.
void write_chrome_trace_file(const std::string& path, const TraceSink& sink,
                             const TraceProvenance* provenance = nullptr);
void write_service_timeline_csv_file(const std::string& path,
                                     const TraceSink& sink);

/// Runs both requested exports (chrome_path / timeline_csv) for `sink`.
void export_trace(const TraceRequest& request, const TraceSink& sink);

/// "trace.json" -> "trace.seed3.json" (suffix before the last extension;
/// appended when the path has none).  Multi-seed sweeps name each
/// per-run trace this way so parallel workers never share a file.
[[nodiscard]] std::string with_seed_suffix(const std::string& path,
                                           std::uint64_t seed_index);

/// Minimal JSON string escaping (quotes, backslashes, control chars).
[[nodiscard]] std::string json_escape(const std::string& text);

}  // namespace wormsched::obs
