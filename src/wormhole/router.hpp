// Wormhole virtual-channel router.
//
// A standard credit-flow-controlled VC router with the canonical stages,
// executed once per cycle:
//   RC — route computation for head flits that reached a buffer front;
//   VA — output-queue allocation: packet-granular arbitration, the stage
//        the paper's ERR targets ("scheduling entry into the output
//        queues from the various input queues, all flits of a packet have
//        to be scheduled before a flit from another packet enters the
//        same output queue");
//   SA/ST — per physical port, one flit per cycle moves from the winning
//        bound input VC to the link, consuming a downstream credit.
//
// The VA arbiter never sees packet lengths — it is charged per cycle of
// output occupancy (or per flit, for the ablation), which is exactly the
// information a real wormhole switch has.
//
// The default pipeline is bitmask-sparse: three uint64_t pending masks
// (routable inputs, requesting outputs, bound outputs) are walked with
// std::countr_zero, so a tick costs work proportional to pending units,
// not kNumDirections x num_vcs.  The legacy full-scan pipeline is kept
// behind RouterConfig::dense_pipeline; it reads only the per-unit flags,
// never the masks, so the dense-vs-sparse differential tests catch any
// mask-bookkeeping bug.  Both paths mutate state through the same
// helpers and are flit-for-flit identical by construction.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/ring_buffer.hpp"
#include "common/types.hpp"
#include "metrics/perf_counters.hpp"
#include "obs/trace_sink.hpp"
#include "wormhole/arbiter.hpp"
#include "wormhole/flit.hpp"
#include "wormhole/topology.hpp"

namespace wormsched::wormhole {

/// Backpressure scheme between adjacent routers.
///  * kCredit — the classic wormhole credit loop: the sender holds one
///    credit per downstream buffer slot and a credit flit returns per
///    forwarded flit.
///  * kOnOff — threshold (XON/XOFF) signalling: the receiver raises an
///    "off" signal when an input VC's occupancy crosses `on_high` and an
///    "on" signal when it falls back to `on_low`; the sender streams
///    freely while the peer is "on".  Signals ride the credit wire, so
///    they share its latency; the watermark headroom must absorb the
///    flits in flight during one signal round-trip (Network resolves the
///    auto watermarks to guarantee that).
enum class FlowControl : std::uint8_t { kCredit = 0, kOnOff = 1 };

/// Buffer model: kFinite bounds every input VC at `buffer_depth` (the
/// flow-control scheme enforces it); kInfinite lets buffers grow without
/// bound and disables backpressure entirely (no credits, no signals) —
/// the idealized baseline the finite schemes are compared against.
enum class BufferModel : std::uint8_t { kFinite = 0, kInfinite = 1 };

struct RouterConfig {
  std::uint32_t num_vcs = 2;       // VC classes per port (torus needs >= 2)
  std::uint32_t buffer_depth = 8;  // flit slots per input VC
  std::string arbiter = "err-cycles";
  FlowControl flow_control = FlowControl::kCredit;
  BufferModel buffer_model = BufferModel::kFinite;
  /// On/off watermarks (flits buffered in one input VC).  0 means "auto":
  /// the Network resolves high = buffer_depth - (3*link_latency - 2)
  /// (clamped to >= 1; the headroom derivation is in Network's ctor) and
  /// low = (high + 1) / 2 before building routers.  A Router in on/off
  /// mode requires resolved values with
  /// 1 <= on_low <= on_high <= buffer_depth.
  std::uint32_t on_high = 0;
  std::uint32_t on_low = 0;
  /// Legacy full-scan pipeline: every input and output unit is visited
  /// every tick.  Bit-identical to the default bitmask-sparse pipeline
  /// (same helpers, same visit order); kept as the differential baseline
  /// the sparse pipeline is verified against, mirroring
  /// NetworkConfig::dense_tick one level up.
  bool dense_pipeline = false;
};

/// Callbacks the router needs from its surrounding network.
class RouterEnv {
 public:
  virtual ~RouterEnv() = default;
  /// Puts `flit` on the link leaving `from` through `out` (non-local).
  virtual void send_flit(NodeId from, Direction out, const Flit& flit) = 0;
  /// Delivers `flit` to the NIC sink of `node`.
  virtual void eject(NodeId node, const Flit& flit, Cycle now) = 0;
  /// Returns one credit to the upstream router feeding (`node`, `in`).
  virtual void send_credit(NodeId node, Direction in, std::uint32_t cls) = 0;
  /// Carries an on/off signal to the upstream router feeding (`node`,
  /// `in`): `on` false stops the peer, true restarts it.  Only called in
  /// on/off flow-control mode; the default aborts so a credit-only env
  /// never silently swallows a signal.
  virtual void send_signal(NodeId node, Direction in, std::uint32_t cls,
                           bool on);
  /// Routing oracle (delegates to the Topology).
  virtual RouteDecision route(NodeId node, const Flit& flit, Direction in_from,
                              std::uint32_t in_class) = 0;
  /// Adaptive routing oracle: appends all legal next hops for the packet
  /// to `out` (called with `out` empty; must stay allocation-free).  The
  /// router picks the least-congested one at route-computation time.
  /// Default: the single deterministic route.
  virtual void route_candidates(NodeId node, const Flit& flit,
                                Direction in_from, std::uint32_t in_class,
                                RouteCandidates& out) {
    out.push_back(route(node, flit, in_from, in_class));
  }
};

class Router {
 public:
  Router(NodeId id, const RouterConfig& config);

  [[nodiscard]] NodeId id() const { return id_; }
  [[nodiscard]] const RouterConfig& config() const { return config_; }

  /// Files an arriving flit into input buffer (`in`, `cls`).  The credit
  /// protocol guarantees space; overflow is a checked invariant violation.
  void accept_flit(Direction in, std::uint32_t cls, Flit flit);

  /// Returns one credit to output (`out`, `cls`).
  void accept_credit(Direction out, std::uint32_t cls);

  /// Applies an on/off signal from the downstream router fed through
  /// output (`out`, `cls`): `on` false parks the output, true releases
  /// it.  On/off mode only.
  void accept_signal(Direction out, std::uint32_t cls, bool on);

  /// NIC-side query: can the local input VC take one more flit?
  [[nodiscard]] bool can_accept_local(std::uint32_t cls) const;

  /// One router cycle: RC, VA, occupancy charging, SA/ST.
  void tick(Cycle now, RouterEnv& env);

  /// True when no flits are buffered and no output is owned.  O(1): both
  /// quantities are counted as flits and bindings come and go, because
  /// the network's active-set scheduler queries this after every tick.
  [[nodiscard]] bool drained() const {
    return buffered_flits_ == 0 && bound_outputs_ == 0;
  }

  [[nodiscard]] std::uint64_t forwarded_flits() const { return forwarded_; }

  /// Checkpoint/restore: input buffers (flit-for-flit), output bindings
  /// and credits, per-port SA pointers and stats, counters, pending
  /// bitmasks, and each output arbiter's discipline state.  Restore on a
  /// freshly constructed router with the same config (unit count and
  /// arbiter name are checked).
  void save_state(SnapshotWriter& w) const;
  void restore_state(SnapshotReader& r);

  /// Per-stage wall-tick sink for the instrumented bench run; nullptr
  /// (the default) keeps the hot path uninstrumented.
  void set_perf_counters(metrics::PerfCounters* counters) {
    perf_ = counters;
  }

  /// Structured event sink (not owned); nullptr (the default) keeps the
  /// hot path at one pointer test.  Records kRouterStall on starved busy
  /// ports.
  void set_trace_sink(obs::TraceSink* sink) { trace_ = sink; }

  /// Per-output-port observability counters.
  struct PortStats {
    std::uint64_t flits = 0;     // flits transmitted through the port
    std::uint64_t grants = 0;    // packets granted an output queue
    std::uint64_t busy = 0;      // cycles >= 1 of the port's queues bound
    std::uint64_t starved = 0;   // busy cycles in which no flit moved
                                 // (bubbles or exhausted credits)
  };
  [[nodiscard]] const PortStats& port_stats(Direction port) const {
    return port_stats_[static_cast<std::size_t>(port)];
  }

  /// --- Audit accessors (read-only views for src/validate) -------------
  /// Flits buffered across all input VCs.
  [[nodiscard]] std::uint32_t buffered_flits() const {
    return buffered_flits_;
  }
  /// Flits buffered in input VC (`in`, `cls`).
  [[nodiscard]] std::size_t input_buffer_size(Direction in,
                                              std::uint32_t cls) const {
    return inputs_[unit(in, cls)].buffer.size();
  }
  /// Whether input VC (`in`, `cls`)'s front packet holds a route.
  [[nodiscard]] bool input_routed(Direction in, std::uint32_t cls) const {
    return inputs_[unit(in, cls)].routed;
  }
  /// Credits currently held for output VC (`out`, `cls`).
  [[nodiscard]] std::uint32_t output_credits(Direction out,
                                             std::uint32_t cls) const {
    return outputs_[unit(out, cls)].credits;
  }
  /// Same, by router-local unit index — for observers that carry
  /// precomputed unit keys (CycleDelta::UnitEvent).
  [[nodiscard]] std::uint32_t output_credits_by_unit(std::uint32_t u) const {
    return outputs_[u].credits;
  }
  /// Whether output VC (`out`, `cls`) is owned by a packet in flight.
  [[nodiscard]] bool output_bound(Direction out, std::uint32_t cls) const {
    return outputs_[unit(out, cls)].bound;
  }
  /// On/off mode: whether this router has an outstanding "off" toward
  /// the upstream feeding input VC (`in`, `cls`).
  [[nodiscard]] bool off_sent(Direction in, std::uint32_t cls) const {
    return off_sent_[unit(in, cls)] != 0;
  }
  /// On/off mode: the last signal received for output VC (`out`, `cls`)
  /// (true until the first "off" arrives).
  [[nodiscard]] bool peer_on(Direction out, std::uint32_t cls) const {
    return peer_on_[unit(out, cls)] != 0;
  }
  /// The arbiter governing output port `out`, class `cls` (never null).
  [[nodiscard]] PortArbiter& arbiter(Direction out, std::uint32_t cls) {
    return *outputs_[unit(out, cls)].arbiter;
  }
  [[nodiscard]] const PortArbiter& arbiter(Direction out,
                                           std::uint32_t cls) const {
    return *outputs_[unit(out, cls)].arbiter;
  }
  /// Pending bitmasks (unit index = direction * num_vcs + class).  The
  /// sparse pipeline walks these; the auditor re-derives each from the
  /// per-unit flags and cross-checks.
  [[nodiscard]] std::uint64_t routable_inputs_mask() const {
    return routable_inputs_;
  }
  [[nodiscard]] std::uint64_t requesting_outputs_mask() const {
    return requesting_outputs_;
  }
  [[nodiscard]] std::uint64_t bound_outputs_mask() const {
    return bound_outputs_mask_;
  }
  [[nodiscard]] std::uint32_t num_units() const {
    return static_cast<std::uint32_t>(inputs_.size());
  }

  [[nodiscard]] std::uint32_t unit(Direction d, std::uint32_t cls) const {
    return static_cast<std::uint32_t>(d) * config_.num_vcs + cls;
  }
  [[nodiscard]] Direction unit_direction(std::uint32_t index) const {
    return static_cast<Direction>(index / config_.num_vcs);
  }
  [[nodiscard]] std::uint32_t unit_class(std::uint32_t index) const {
    return index % config_.num_vcs;
  }

 private:
  struct InputVc {
    RingBuffer<Flit> buffer;
    bool routed = false;  // the packet at the front has a route
    Direction out = Direction::kLocal;
    std::uint32_t out_class = 0;
  };
  struct OutputVc {
    std::uint32_t credits = 0;
    bool bound = false;
    std::uint32_t owner = 0;  // input VC index owning this output queue
    std::unique_ptr<PortArbiter> arbiter;
  };

  [[nodiscard]] static std::uint64_t bit(std::uint32_t u) {
    return std::uint64_t{1} << u;
  }

  /// Picks the best candidate route for a head flit: an unbound output VC
  /// with the most credits wins (greedy congestion-aware selection); a
  /// deterministic oracle returns one candidate and this reduces to it.
  [[nodiscard]] RouteDecision choose_route(RouterEnv& env, const Flit& head,
                                           Direction in_from,
                                           std::uint32_t in_class);

  /// RC for one input unit: routes the head at its front, raises the
  /// arbitration request, maintains the masks.  Shared by both pipelines
  /// and by the tail-handling re-request in SA.
  void route_input(std::uint32_t g, RouterEnv& env);
  /// VA for one free output unit: grant + bind + mask upkeep.
  void try_bind_output(std::uint32_t i, Cycle now);
  /// Occupancy: one batched walk charging every bound output queue.
  void charge_bound();
  /// SA/ST for one physical port (`port_busy` = any of its VCs bound).
  void sa_port(std::uint32_t p, bool port_busy, Cycle now, RouterEnv& env);

  void tick_sparse(Cycle now, RouterEnv& env);
  void tick_dense(Cycle now, RouterEnv& env);
  /// On/off hysteresis, run at the end of every tick: raises "off" for
  /// non-local input VCs that crossed on_high, "on" for parked ones that
  /// drained to on_low.  Emitting from the router's own tick (not at
  /// flit-arrival time) keeps the signal order identical between the
  /// serial and the sharded network tick.
  void emit_onoff_signals(RouterEnv& env);

  NodeId id_;
  RouterConfig config_;
  // Mode shorthands: exactly one is set unless the buffer model is
  // infinite (then neither — no backpressure at all).
  bool credit_flow_ = true;
  bool onoff_flow_ = false;
  std::vector<InputVc> inputs_;
  std::vector<OutputVc> outputs_;
  /// On/off state: per input unit, 1 while our "off" is outstanding; per
  /// output unit, 0 while the downstream peer has us parked.
  std::vector<std::uint8_t> off_sent_;
  std::vector<std::uint8_t> peer_on_;
  std::vector<std::uint32_t> sa_pointer_;  // per port: RR over its VCs
  std::vector<PortStats> port_stats_ =
      std::vector<PortStats>(kNumDirections);
  std::uint64_t forwarded_ = 0;
  std::uint32_t buffered_flits_ = 0;  // across all input VCs
  std::uint32_t bound_outputs_ = 0;   // output VCs currently owned
  // Pending bitmasks, one bit per port/VC unit (ctor checks units <= 64).
  // Maintained by the shared mutation helpers in every mode; only the
  // sparse pipeline reads them.
  std::uint64_t routable_inputs_ = 0;    // front is an unrouted head
  std::uint64_t requesting_outputs_ = 0; // arbiter pending_total() > 0
  std::uint64_t bound_outputs_mask_ = 0; // mirrors OutputVc::bound
  metrics::PerfCounters* perf_ = nullptr;
  obs::TraceSink* trace_ = nullptr;
};

}  // namespace wormsched::wormhole
