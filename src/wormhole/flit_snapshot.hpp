// Flit/packet-descriptor serialization shared by the router and network
// checkpoints.
#pragma once

#include "common/snapshot.hpp"
#include "wormhole/flit.hpp"

namespace wormsched::wormhole {

inline void save_flit(SnapshotWriter& w, const Flit& f) {
  w.u8(static_cast<std::uint8_t>(f.type));
  w.u64(f.packet.value());
  w.u32(f.flow.value());
  w.u32(f.source.value());
  w.u32(f.dest.value());
  w.u32(f.vc_class.value());
  w.i64(f.index);
  w.u64(f.created);
}

inline Flit load_flit(SnapshotReader& r) {
  Flit f;
  const std::uint8_t type = r.u8();
  if (type > static_cast<std::uint8_t>(FlitType::kHeadTail))
    throw SnapshotError("snapshot contains an invalid flit type");
  f.type = static_cast<FlitType>(type);
  f.packet = PacketId(r.u64());
  f.flow = FlowId(r.u32());
  f.source = NodeId(r.u32());
  f.dest = NodeId(r.u32());
  f.vc_class = VcId(r.u32());
  f.index = r.i64();
  f.created = r.u64();
  return f;
}

inline void save_packet_descriptor(SnapshotWriter& w,
                                   const PacketDescriptor& p) {
  w.u64(p.id.value());
  w.u32(p.flow.value());
  w.u32(p.source.value());
  w.u32(p.dest.value());
  w.i64(p.length);
  w.u64(p.created);
}

inline PacketDescriptor load_packet_descriptor(SnapshotReader& r) {
  PacketDescriptor p;
  p.id = PacketId(r.u64());
  p.flow = FlowId(r.u32());
  p.source = NodeId(r.u32());
  p.dest = NodeId(r.u32());
  p.length = r.i64();
  p.created = r.u64();
  return p;
}

}  // namespace wormsched::wormhole
