#include "wormhole/router.hpp"

#include "common/assert.hpp"

namespace wormsched::wormhole {

namespace {
// The local "ejection" output is an infinite sink; its credits start at a
// value no run can exhaust.
constexpr std::uint32_t kLocalCredits = 1u << 30;
}  // namespace

Router::Router(NodeId id, const RouterConfig& config)
    : id_(id),
      config_(config),
      inputs_(kNumDirections * config.num_vcs),
      outputs_(kNumDirections * config.num_vcs),
      sa_pointer_(kNumDirections, 0) {
  WS_CHECK(config.num_vcs >= 1);
  WS_CHECK(config.buffer_depth >= 1);
  const std::size_t requesters = inputs_.size();
  for (std::uint32_t i = 0; i < outputs_.size(); ++i) {
    OutputVc& ov = outputs_[i];
    ov.credits = unit_direction(i) == Direction::kLocal ? kLocalCredits
                                                        : config.buffer_depth;
    ov.arbiter = make_arbiter(config.arbiter, requesters);
    WS_CHECK_MSG(ov.arbiter != nullptr, "unknown router arbiter");
  }
}

void Router::accept_flit(Direction in, std::uint32_t cls, Flit flit) {
  InputVc& iv = inputs_[unit(in, cls)];
  WS_CHECK_MSG(iv.buffer.size() < config_.buffer_depth,
               "credit protocol violated: input buffer overflow");
  iv.buffer.push_back(flit);
  ++buffered_flits_;
}

void Router::accept_credit(Direction out, std::uint32_t cls) {
  OutputVc& ov = outputs_[unit(out, cls)];
  WS_CHECK_MSG(ov.credits < config_.buffer_depth,
               "credit protocol violated: credit overflow");
  ++ov.credits;
}

bool Router::can_accept_local(std::uint32_t cls) const {
  return inputs_[unit(Direction::kLocal, cls)].buffer.size() <
         config_.buffer_depth;
}

RouteDecision Router::choose_route(RouterEnv& env, const Flit& head,
                                   Direction in_from, std::uint32_t in_class) {
  const auto candidates =
      env.route_candidates(id_, head, in_from, in_class);
  WS_CHECK(!candidates.empty());
  const RouteDecision* best = &candidates[0];
  std::int64_t best_score = -1;
  for (const RouteDecision& cand : candidates) {
    const OutputVc& ov = outputs_[unit(cand.out, cand.out_class)];
    const std::int64_t score =
        ov.bound ? 0 : 1 + static_cast<std::int64_t>(ov.credits);
    if (score > best_score) {
      best_score = score;
      best = &cand;
    }
  }
  return *best;
}

void Router::tick(Cycle now, RouterEnv& env) {
  // --- RC: route fresh head flits and raise arbitration requests. -------
  for (std::uint32_t g = 0; g < inputs_.size(); ++g) {
    InputVc& iv = inputs_[g];
    if (iv.routed || iv.buffer.empty()) continue;
    const Flit& head = iv.buffer.front();
    WS_CHECK_MSG(is_head(head.type),
                 "input VC front is mid-packet but VC has no route");
    const RouteDecision d =
        choose_route(env, head, unit_direction(g), unit_class(g));
    iv.out = d.out;
    iv.out_class = d.out_class;
    iv.routed = true;
    outputs_[unit(d.out, d.out_class)].arbiter->request(FlowId(g));
  }

  // --- VA: bind free output queues to winning packets. ------------------
  for (std::uint32_t i = 0; i < outputs_.size(); ++i) {
    OutputVc& ov = outputs_[i];
    if (ov.bound) continue;
    const auto chosen = ov.arbiter->grant(now);
    if (!chosen) continue;
    ov.bound = true;
    ov.owner = static_cast<std::uint32_t>(chosen->value());
    ++bound_outputs_;
    ++port_stats_[static_cast<std::size_t>(unit_direction(i))].grants;
  }

  // --- Occupancy: every bound output queue is occupied this cycle. ------
  for (OutputVc& ov : outputs_) {
    if (ov.bound) ov.arbiter->charge_cycle();
  }

  // --- SA/ST: one flit per physical port per cycle. ---------------------
  for (std::uint32_t p = 0; p < kNumDirections; ++p) {
    const auto port = static_cast<Direction>(p);
    const std::uint32_t vcs = config_.num_vcs;
    bool port_busy = false;
    bool port_moved = false;
    for (std::uint32_t cls0 = 0; cls0 < vcs; ++cls0)
      port_busy |= outputs_[unit(port, cls0)].bound;
    for (std::uint32_t probe = 0; probe < vcs; ++probe) {
      const std::uint32_t cls = (sa_pointer_[p] + probe) % vcs;
      OutputVc& ov = outputs_[unit(port, cls)];
      if (!ov.bound || ov.credits == 0) continue;
      InputVc& iv = inputs_[ov.owner];
      if (iv.buffer.empty()) continue;  // worm bubble: flits still upstream

      Flit flit = iv.buffer.pop_front();
      --buffered_flits_;
      flit.vc_class = VcId(cls);
      --ov.credits;
      ov.arbiter->charge_flit();
      ++forwarded_;

      const Direction in_dir = unit_direction(ov.owner);
      if (in_dir != Direction::kLocal)
        env.send_credit(id_, in_dir, unit_class(ov.owner));

      if (port == Direction::kLocal) {
        env.eject(id_, flit, now);
      } else {
        env.send_flit(id_, port, flit);
      }

      if (is_tail(flit.type)) {
        iv.routed = false;
        ov.bound = false;
        --bound_outputs_;
        // If the next packet's head is already buffered, route it and
        // raise its request *before* releasing: the arbiter then sees the
        // input VC as still backlogged, which is what lets ERR apply its
        // continuation rule (and carry surplus counts across packets)
        // instead of treating every packet boundary as an idle gap.
        if (!iv.buffer.empty()) {
          const Flit& next_head = iv.buffer.front();
          WS_CHECK(is_head(next_head.type));
          const RouteDecision d = choose_route(env, next_head,
                                               unit_direction(ov.owner),
                                               unit_class(ov.owner));
          iv.out = d.out;
          iv.out_class = d.out_class;
          iv.routed = true;
          outputs_[unit(d.out, d.out_class)].arbiter->request(
              FlowId(ov.owner));
        }
        ov.arbiter->release();
      }
      sa_pointer_[p] = (cls + 1) % vcs;  // rotate fairness among VCs
      port_moved = true;
      break;  // port bandwidth: one flit/cycle
    }
    PortStats& stats = port_stats_[p];
    if (port_busy) {
      ++stats.busy;
      if (!port_moved) ++stats.starved;
    }
    if (port_moved) ++stats.flits;
  }
}

}  // namespace wormsched::wormhole
