#include "wormhole/router.hpp"

#include <bit>

#include "common/assert.hpp"
#include "common/snapshot.hpp"
#include "wormhole/flit_snapshot.hpp"

namespace wormsched::wormhole {

namespace {
// The local "ejection" output is an infinite sink; its credits start at a
// value no run can exhaust.
constexpr std::uint32_t kLocalCredits = 1u << 30;
}  // namespace

void RouterEnv::send_signal(NodeId, Direction, std::uint32_t, bool) {
  WS_CHECK_MSG(false, "router env does not carry on/off signals");
}

Router::Router(NodeId id, const RouterConfig& config)
    : id_(id),
      config_(config),
      credit_flow_(config.flow_control == FlowControl::kCredit &&
                   config.buffer_model == BufferModel::kFinite),
      onoff_flow_(config.flow_control == FlowControl::kOnOff &&
                  config.buffer_model == BufferModel::kFinite),
      inputs_(kNumDirections * config.num_vcs),
      outputs_(kNumDirections * config.num_vcs),
      off_sent_(kNumDirections * config.num_vcs, 0),
      peer_on_(kNumDirections * config.num_vcs, 1),
      sa_pointer_(kNumDirections, 0) {
  WS_CHECK(config.num_vcs >= 1);
  WS_CHECK_MSG(config.buffer_depth >= 1,
               "buffer_depth 0 deadlocks every flow-control scheme");
  WS_CHECK_MSG(kNumDirections * config.num_vcs <= 64,
               "pending bitmasks hold at most 64 port/VC units");
  if (onoff_flow_) {
    WS_CHECK_MSG(config.on_low >= 1 && config.on_low <= config.on_high &&
                     config.on_high <= config.buffer_depth,
                 "on/off watermarks must satisfy "
                 "1 <= on_low <= on_high <= buffer_depth");
  }
  const std::size_t requesters = inputs_.size();
  for (std::uint32_t i = 0; i < outputs_.size(); ++i) {
    OutputVc& ov = outputs_[i];
    ov.credits = unit_direction(i) == Direction::kLocal ? kLocalCredits
                                                        : config.buffer_depth;
    ov.arbiter = make_arbiter(config.arbiter, requesters);
    WS_CHECK_MSG(ov.arbiter != nullptr, "unknown router arbiter");
  }
}

void Router::save_state(SnapshotWriter& w) const {
  w.u64(inputs_.size());
  w.str(config_.arbiter);
  for (std::uint32_t g = 0; g < inputs_.size(); ++g) {
    const InputVc& iv = inputs_[g];
    save_sequence(w, iv.buffer, save_flit);
    w.b(iv.routed);
    w.u32(static_cast<std::uint32_t>(iv.out));
    w.u32(iv.out_class);
    w.b(off_sent_[g] != 0);
  }
  for (std::uint32_t o = 0; o < outputs_.size(); ++o) {
    const OutputVc& ov = outputs_[o];
    w.u32(ov.credits);
    w.b(ov.bound);
    w.u32(ov.owner);
    w.b(peer_on_[o] != 0);
    ov.arbiter->save_state(w);
  }
  for (const std::uint32_t p : sa_pointer_) w.u32(p);
  for (const PortStats& ps : port_stats_) {
    w.u64(ps.flits);
    w.u64(ps.grants);
    w.u64(ps.busy);
    w.u64(ps.starved);
  }
  w.u64(forwarded_);
  w.u32(buffered_flits_);
  w.u32(bound_outputs_);
  w.u64(routable_inputs_);
  w.u64(requesting_outputs_);
  w.u64(bound_outputs_mask_);
}

void Router::restore_state(SnapshotReader& r) {
  const std::uint64_t units = r.u64();
  if (units != inputs_.size())
    throw SnapshotError("router snapshot unit count mismatch");
  const std::string arb = r.str();
  if (arb != config_.arbiter)
    throw SnapshotError("router snapshot was taken with arbiter '" + arb +
                        "', this router runs '" + config_.arbiter + "'");
  for (std::uint32_t g = 0; g < inputs_.size(); ++g) {
    InputVc& iv = inputs_[g];
    restore_sequence(r, iv.buffer, load_flit);
    if (config_.buffer_model == BufferModel::kFinite &&
        iv.buffer.size() > config_.buffer_depth)
      throw SnapshotError("router snapshot overflows an input buffer");
    iv.routed = r.b();
    const std::uint32_t out = r.u32();
    if (out >= kNumDirections)
      throw SnapshotError("router snapshot names an invalid direction");
    iv.out = static_cast<Direction>(out);
    iv.out_class = r.u32();
    if (iv.out_class >= config_.num_vcs)
      throw SnapshotError("router snapshot names an invalid VC class");
    off_sent_[g] = r.b() ? 1 : 0;
  }
  for (std::uint32_t o = 0; o < outputs_.size(); ++o) {
    OutputVc& ov = outputs_[o];
    ov.credits = r.u32();
    ov.bound = r.b();
    ov.owner = r.u32();
    if (ov.owner >= inputs_.size())
      throw SnapshotError("router snapshot names an invalid owner unit");
    peer_on_[o] = r.b() ? 1 : 0;
    ov.arbiter->restore_state(r);
  }
  for (std::uint32_t& p : sa_pointer_) p = r.u32();
  for (PortStats& ps : port_stats_) {
    ps.flits = r.u64();
    ps.grants = r.u64();
    ps.busy = r.u64();
    ps.starved = r.u64();
  }
  forwarded_ = r.u64();
  buffered_flits_ = r.u32();
  bound_outputs_ = r.u32();
  routable_inputs_ = r.u64();
  requesting_outputs_ = r.u64();
  bound_outputs_mask_ = r.u64();
}

void Router::accept_flit(Direction in, std::uint32_t cls, Flit flit) {
  const std::uint32_t g = unit(in, cls);
  InputVc& iv = inputs_[g];
  if (config_.buffer_model == BufferModel::kFinite) {
    WS_CHECK_MSG(iv.buffer.size() < config_.buffer_depth,
                 credit_flow_
                     ? "credit protocol violated: input buffer overflow"
                     : "on/off protocol violated: input buffer overflow");
  }
  iv.buffer.push_back(flit);
  ++buffered_flits_;
  // While the VC holds no route its front is an unrouted packet head
  // (wormhole ordering: mid-packet flits only arrive while routed).
  if (!iv.routed) routable_inputs_ |= bit(g);
}

void Router::accept_credit(Direction out, std::uint32_t cls) {
  WS_CHECK_MSG(credit_flow_, "credit delivered outside credit flow control");
  OutputVc& ov = outputs_[unit(out, cls)];
  WS_CHECK_MSG(ov.credits < config_.buffer_depth,
               "credit protocol violated: credit overflow");
  ++ov.credits;
}

void Router::accept_signal(Direction out, std::uint32_t cls, bool on) {
  WS_CHECK_MSG(onoff_flow_, "on/off signal outside on/off flow control");
  peer_on_[unit(out, cls)] = on ? 1 : 0;
}

bool Router::can_accept_local(std::uint32_t cls) const {
  return config_.buffer_model == BufferModel::kInfinite ||
         inputs_[unit(Direction::kLocal, cls)].buffer.size() <
             config_.buffer_depth;
}

RouteDecision Router::choose_route(RouterEnv& env, const Flit& head,
                                   Direction in_from, std::uint32_t in_class) {
  RouteCandidates candidates;
  env.route_candidates(id_, head, in_from, in_class, candidates);
  WS_CHECK(!candidates.empty());
  const RouteDecision* best = &candidates[0];
  std::int64_t best_score = -1;
  for (const RouteDecision& cand : candidates) {
    const std::uint32_t o = unit(cand.out, cand.out_class);
    const OutputVc& ov = outputs_[o];
    // Congestion signal per mode: free credits under credit flow, the
    // peer's on/off state under threshold flow, nothing when buffers are
    // infinite (any unbound output is equally good).
    std::int64_t score = 0;
    if (!ov.bound) {
      if (credit_flow_) {
        score = 1 + static_cast<std::int64_t>(ov.credits);
      } else if (onoff_flow_) {
        score = peer_on_[o] != 0 ? 2 : 1;
      } else {
        score = 1;
      }
    }
    if (score > best_score) {
      best_score = score;
      best = &cand;
    }
  }
  return *best;
}

void Router::route_input(std::uint32_t g, RouterEnv& env) {
  InputVc& iv = inputs_[g];
  const Flit& head = iv.buffer.front();
  WS_CHECK_MSG(is_head(head.type),
               "input VC front is mid-packet but VC has no route");
  const RouteDecision d =
      choose_route(env, head, unit_direction(g), unit_class(g));
  iv.out = d.out;
  iv.out_class = d.out_class;
  iv.routed = true;
  routable_inputs_ &= ~bit(g);
  const std::uint32_t o = unit(d.out, d.out_class);
  outputs_[o].arbiter->request(FlowId(g));
  requesting_outputs_ |= bit(o);
}

void Router::try_bind_output(std::uint32_t i, Cycle now) {
  OutputVc& ov = outputs_[i];
  const auto chosen = ov.arbiter->grant(now);
  if (!chosen) return;
  ov.bound = true;
  ov.owner = static_cast<std::uint32_t>(chosen->value());
  ++bound_outputs_;
  bound_outputs_mask_ |= bit(i);
  if (ov.arbiter->pending_total() == 0) requesting_outputs_ &= ~bit(i);
  ++port_stats_[static_cast<std::size_t>(unit_direction(i))].grants;
}

void Router::charge_bound() {
  for (std::uint64_t m = bound_outputs_mask_; m != 0; m &= m - 1) {
    const auto i = static_cast<std::uint32_t>(std::countr_zero(m));
    outputs_[i].arbiter->charge_cycle();
  }
}

void Router::sa_port(std::uint32_t p, bool port_busy, Cycle now,
                     RouterEnv& env) {
  const auto port = static_cast<Direction>(p);
  const std::uint32_t vcs = config_.num_vcs;
  bool port_moved = false;
  for (std::uint32_t probe = 0; probe < vcs; ++probe) {
    const std::uint32_t cls = (sa_pointer_[p] + probe) % vcs;
    const std::uint32_t o = unit(port, cls);
    OutputVc& ov = outputs_[o];
    if (!ov.bound) continue;
    // Downstream-space gate per mode; the infinite model never blocks.
    if (credit_flow_) {
      if (ov.credits == 0) continue;
    } else if (onoff_flow_) {
      if (peer_on_[o] == 0) continue;
    }
    InputVc& iv = inputs_[ov.owner];
    if (iv.buffer.empty()) continue;  // worm bubble: flits still upstream

    Flit flit = iv.buffer.pop_front();
    --buffered_flits_;
    flit.vc_class = VcId(cls);
    if (credit_flow_) --ov.credits;
    ov.arbiter->charge_flit();
    ++forwarded_;

    const Direction in_dir = unit_direction(ov.owner);
    if (credit_flow_ && in_dir != Direction::kLocal)
      env.send_credit(id_, in_dir, unit_class(ov.owner));

    if (port == Direction::kLocal) {
      env.eject(id_, flit, now);
    } else {
      env.send_flit(id_, port, flit);
    }

    if (is_tail(flit.type)) {
      iv.routed = false;
      ov.bound = false;
      --bound_outputs_;
      bound_outputs_mask_ &= ~bit(o);
      // If the next packet's head is already buffered, route it and
      // raise its request *before* releasing: the arbiter then sees the
      // input VC as still backlogged, which is what lets ERR apply its
      // continuation rule (and carry surplus counts across packets)
      // instead of treating every packet boundary as an idle gap.
      if (!iv.buffer.empty()) {
        route_input(ov.owner, env);
      }
      ov.arbiter->release();
    }
    sa_pointer_[p] = (cls + 1) % vcs;  // rotate fairness among VCs
    port_moved = true;
    break;  // port bandwidth: one flit/cycle
  }
  PortStats& stats = port_stats_[p];
  if (port_busy) {
    ++stats.busy;
    if (!port_moved) {
      ++stats.starved;
      if (trace_ != nullptr)
        trace_->record(obs::TraceEvent::router_stall(now, id_.value(), p));
    }
  }
  if (port_moved) ++stats.flits;
}

void Router::emit_onoff_signals(RouterEnv& env) {
  // Skip the local units (g < num_vcs): the NIC feeds them through
  // can_accept_local, not a link, so there is no upstream to signal.
  // Ports without an upstream (mesh edges, unwired fat-tree slots) never
  // buffer a flit, so the >= on_high branch is unreachable for them.
  for (std::uint32_t g = config_.num_vcs; g < inputs_.size(); ++g) {
    const std::size_t occ = inputs_[g].buffer.size();
    if (off_sent_[g] == 0) {
      if (occ >= config_.on_high) {
        off_sent_[g] = 1;
        env.send_signal(id_, unit_direction(g), unit_class(g), /*on=*/false);
      }
    } else if (occ <= config_.on_low) {
      off_sent_[g] = 0;
      env.send_signal(id_, unit_direction(g), unit_class(g), /*on=*/true);
    }
  }
}

void Router::tick(Cycle now, RouterEnv& env) {
  if (config_.dense_pipeline) {
    tick_dense(now, env);
  } else {
    tick_sparse(now, env);
  }
  // Hysteresis runs after SA in the same tick, so a router that drains
  // completely always restores its upstream to "on" before retiring from
  // the active set.
  if (onoff_flow_) emit_onoff_signals(env);
}

// Bitmask-sparse pipeline: each stage walks only the units with work.
// Visit order within each stage is ascending unit index — the same order
// the dense scan produces after its skip tests — so every arbiter call,
// env callback, and stat update happens in the identical sequence.
void Router::tick_sparse(Cycle now, RouterEnv& env) {
  // --- RC: route fresh head flits and raise arbitration requests. -------
  // route_input only clears bits, so walking a snapshot of the mask
  // visits exactly the units the dense scan would route.
  {
    metrics::ScopedStageTimer timer(perf_, metrics::Stage::kRouteCompute);
    for (std::uint64_t m = routable_inputs_; m != 0; m &= m - 1) {
      route_input(static_cast<std::uint32_t>(std::countr_zero(m)), env);
    }
  }

  // --- VA + occupancy. --------------------------------------------------
  {
    metrics::ScopedStageTimer timer(perf_, metrics::Stage::kVcAlloc);
    // Lazy arbitration: only outputs with pending heads (requesting bit)
    // and no current owner can change state; grant() on any other unit is
    // a proven no-op, so the walk skips it entirely.  Binding unit i only
    // touches bit i, so a snapshot walk is exact.
    for (std::uint64_t m = requesting_outputs_ & ~bound_outputs_mask_; m != 0;
         m &= m - 1) {
      try_bind_output(static_cast<std::uint32_t>(std::countr_zero(m)), now);
    }
    // Every bound output queue is occupied this cycle: one batched walk
    // over the bound mask replaces the all-outputs scan.
    charge_bound();
  }

  // --- SA/ST: one flit per physical port per cycle. ---------------------
  {
    metrics::ScopedStageTimer timer(perf_, metrics::Stage::kSwitchTraversal);
    // A port with no bound VC cannot move a flit and records no stats;
    // skip it without touching its VCs.
    std::uint64_t busy_ports = 0;
    for (std::uint64_t m = bound_outputs_mask_; m != 0; m &= m - 1) {
      busy_ports |= std::uint64_t{1}
                    << (static_cast<std::uint32_t>(std::countr_zero(m)) /
                        config_.num_vcs);
    }
    for (std::uint64_t m = busy_ports; m != 0; m &= m - 1) {
      sa_port(static_cast<std::uint32_t>(std::countr_zero(m)),
              /*port_busy=*/true, now, env);
    }
  }
}

// Legacy full-scan pipeline (the PR-1 kernel): every unit is visited every
// tick, and all work tests read the per-unit flags — never the pending
// masks — so a dense-vs-sparse differential run flags any divergence
// between mask state and flag state.
void Router::tick_dense(Cycle now, RouterEnv& env) {
  // --- RC ---------------------------------------------------------------
  for (std::uint32_t g = 0; g < inputs_.size(); ++g) {
    InputVc& iv = inputs_[g];
    if (iv.routed || iv.buffer.empty()) continue;
    route_input(g, env);
  }

  // --- VA ---------------------------------------------------------------
  for (std::uint32_t i = 0; i < outputs_.size(); ++i) {
    if (outputs_[i].bound) continue;
    try_bind_output(i, now);
  }

  // --- Occupancy --------------------------------------------------------
  for (OutputVc& ov : outputs_) {
    if (ov.bound) ov.arbiter->charge_cycle();
  }

  // --- SA/ST ------------------------------------------------------------
  for (std::uint32_t p = 0; p < kNumDirections; ++p) {
    bool port_busy = false;
    for (std::uint32_t cls = 0; cls < config_.num_vcs; ++cls)
      port_busy |= outputs_[unit(static_cast<Direction>(p), cls)].bound;
    if (!port_busy) continue;  // no stats and no movement possible
    sa_port(p, /*port_busy=*/true, now, env);
  }
}

}  // namespace wormsched::wormhole
