// Flit-level types for the wormhole network substrate.
//
// Wormhole switching (Sec. 1 of the paper): packets are split into flits;
// only the head flit carries routing information, and the remaining flits
// follow its path.  Once a head flit is routed to an output queue, no
// other packet's flits may enter that queue until the tail flit passes.
#pragma once

#include <cstdint>

#include "common/types.hpp"

namespace wormsched::wormhole {

enum class FlitType : std::uint8_t {
  kHead,      // carries routing info; opens the worm
  kBody,      // payload
  kTail,      // closes the worm, releases channel state
  kHeadTail,  // single-flit packet
};

[[nodiscard]] constexpr bool is_head(FlitType t) {
  return t == FlitType::kHead || t == FlitType::kHeadTail;
}
[[nodiscard]] constexpr bool is_tail(FlitType t) {
  return t == FlitType::kTail || t == FlitType::kHeadTail;
}

struct Flit {
  FlitType type = FlitType::kBody;
  PacketId packet;
  /// Traffic flow (source NIC or source-destination class) for fairness
  /// accounting.
  FlowId flow;
  NodeId source;
  NodeId dest;
  /// Virtual-channel class, used for torus dateline deadlock avoidance.
  VcId vc_class{0};
  /// 0-based position within the packet.
  Flits index = 0;
  /// Cycle the packet was created (head flit carries it; copied to all
  /// flits for convenience).
  Cycle created = 0;
};

struct PacketDescriptor {
  PacketId id;
  FlowId flow;
  NodeId source;
  NodeId dest;
  Flits length = 1;
  Cycle created = 0;
};

}  // namespace wormsched::wormhole
