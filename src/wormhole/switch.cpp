#include "wormhole/switch.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace wormsched::wormhole {

WormholeSwitch::WormholeSwitch(const SwitchConfig& config)
    : config_(config),
      arbiter_(make_arbiter(config.arbiter, config.num_inputs)),
      queues_(config.num_inputs),
      stats_(config.num_inputs),
      rng_(config.seed) {
  WS_CHECK(config.num_inputs > 0);
  WS_CHECK_MSG(arbiter_ != nullptr, "unknown arbiter name");
  WS_CHECK_MSG(config.per_input_stall.empty() ||
                   config.per_input_stall.size() == config.num_inputs,
               "per_input_stall must have one entry per input");
}

void WormholeSwitch::inject(Cycle now, FlowId input, Flits length) {
  WS_CHECK(length > 0);
  queues_[input.index()].push_back(QueuedPacket{length, now});
  backlog_ += length;
  arbiter_->request(input);
}

bool WormholeSwitch::downstream_stalled(Cycle now, FlowId owner) {
  if (config_.stall_period > 0 &&
      now % config_.stall_period < config_.stall_burst) {
    return true;
  }
  if (!config_.per_input_stall.empty() &&
      rng_.bernoulli(config_.per_input_stall[owner.index()])) {
    return true;
  }
  return config_.stall_probability > 0.0 &&
         rng_.bernoulli(config_.stall_probability);
}

void WormholeSwitch::tick(Cycle now) {
  if (!bound_) {
    const auto chosen = arbiter_->grant(now);
    if (!chosen) return;
    bound_ = true;
    owner_ = *chosen;
    WS_CHECK(!queues_[owner_.index()].empty());
    remaining_ = queues_[owner_.index()].front().length;
    current_packet_occupancy_ = 0;
  }

  // The owner occupies the output this cycle whether or not it advances.
  arbiter_->charge_cycle();
  ++stats_[owner_.index()].occupancy;
  ++current_packet_occupancy_;

  if (downstream_stalled(now, owner_)) {
    ++stalled_;
    return;
  }

  arbiter_->charge_flit();
  ++stats_[owner_.index()].flits;
  WS_CHECK(remaining_ > 0);
  --remaining_;
  --backlog_;
  if (remaining_ == 0) {
    const QueuedPacket done = queues_[owner_.index()].pop_front();
    auto& s = stats_[owner_.index()];
    ++s.packets;
    s.delay.add(static_cast<double>(now - done.injected));
    bound_ = false;
    max_packet_occupancy_ =
        std::max(max_packet_occupancy_, current_packet_occupancy_);
    arbiter_->release();
  }
}

bool WormholeSwitch::idle() const { return !bound_ && backlog_ == 0; }

}  // namespace wormsched::wormhole
