// Packet-granular output arbitration for wormhole switches.
//
// A PortArbiter decides which requester (input queue / input VC) owns an
// output resource next.  Ownership is packet-granular — wormhole switching
// forbids interleaving flits of different packets in one output queue —
// and the arbiter is never told packet lengths: it learns a packet's cost
// only through charge_cycle()/charge_flit() calls while the packet drains.
//
// This is exactly the environment the paper designs ERR for: under
// downstream congestion a granted packet can hold the output far longer
// than its length (Sec. 1), and the ERR arbiter charges that *occupancy*,
// in cycles, against the flow's allowance.  A flit-charging mode is
// provided for the A4 ablation (occupancy- vs volume-fairness).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string_view>
#include <vector>

#include "common/ring_buffer.hpp"
#include "common/types.hpp"
#include "core/err.hpp"
#include "core/round_robin.hpp"

namespace wormsched::wormhole {

class PortArbiter {
 public:
  /// What the owner is charged for while it holds the output.  Stored in
  /// the base so charge_cycle()/charge_flit() are non-virtual and inline:
  /// the router batch-charges every bound output every cycle, and a
  /// virtual fan-out on that path costs more than the work it does.
  enum class Charging : std::uint8_t {
    kNone,    // discipline ignores cost (RR, FCFS)
    kCycles,  // charge output-occupancy time (the paper's wormhole mode)
    kFlits,   // charge transmitted flits (the paper's abstract model)
  };

  explicit PortArbiter(std::size_t num_requesters,
                       Charging charging = Charging::kNone)
      : pending_(num_requesters, 0), charging_(charging) {}
  virtual ~PortArbiter() = default;
  PortArbiter(const PortArbiter&) = delete;
  PortArbiter& operator=(const PortArbiter&) = delete;

  [[nodiscard]] virtual std::string_view name() const = 0;

  /// A new packet head from `requester` is waiting for this output.
  void request(FlowId requester);

  /// The output is free: pick the next owner (nullopt if nobody waits).
  /// The chosen requester's pending head is consumed.
  [[nodiscard]] std::optional<FlowId> grant(Cycle now);

  /// The current owner occupied the output for one cycle (moving or
  /// stalled).  Call every cycle between grant and release.
  void charge_cycle() {
    if (charging_ == Charging::kCycles) held_ += 1.0;
  }

  /// The current owner forwarded one flit.
  void charge_flit() {
    if (charging_ == Charging::kFlits) held_ += 1.0;
  }

  /// The owner's tail flit has left the output.
  void release();

  [[nodiscard]] bool bound() const { return owner_.is_valid(); }
  [[nodiscard]] FlowId owner() const { return owner_; }
  [[nodiscard]] std::uint32_t pending(FlowId f) const {
    return pending_[f.index()];
  }
  /// Heads waiting across all requesters.  O(1); the router skips the
  /// whole grant path for outputs where this is zero (lazy arbitration),
  /// which is sound because every discipline's pick() is a no-op with no
  /// pending heads.
  [[nodiscard]] std::uint32_t pending_total() const { return pending_total_; }

  /// Checkpoint/restore: pending counts, the current owner and its
  /// accumulated cost, then the discipline's state via the
  /// save_discipline/restore_discipline hooks.  pending_total_ is
  /// recomputed from the restored counts.  Must be called on a freshly
  /// constructed arbiter of the same discipline and requester count.
  void save_state(SnapshotWriter& w) const;
  void restore_state(SnapshotReader& r);

 protected:
  virtual void save_discipline(SnapshotWriter& w) const { (void)w; }
  virtual void restore_discipline(SnapshotReader& r) { (void)r; }

  /// Discipline hooks, called with pending_ already updated.
  virtual void on_new_request(FlowId requester) = 0;
  virtual std::optional<FlowId> pick(Cycle now) = 0;
  virtual void on_release(FlowId owner) = 0;

  std::vector<std::uint32_t> pending_;
  FlowId owner_ = FlowId::invalid();
  /// Cost accumulated by the current owner; consumed by on_release.
  double held_ = 0.0;

 private:
  Charging charging_;
  std::uint32_t pending_total_ = 0;
};

/// ERR arbitration (the paper's algorithm in its native habitat).
class ErrArbiter final : public PortArbiter {
 public:
  enum class Accounting {
    kCycles,  // charge output-occupancy time (the paper's wormhole mode)
    kFlits,   // charge transmitted flits (the paper's abstract model)
  };

  ErrArbiter(std::size_t num_requesters, Accounting accounting,
             bool reset_on_idle = false);

  [[nodiscard]] std::string_view name() const override {
    return accounting_ == Accounting::kCycles ? "ERR-cycles" : "ERR-flits";
  }

  [[nodiscard]] core::ErrPolicy& policy() { return policy_; }

 protected:
  void on_new_request(FlowId requester) override;
  std::optional<FlowId> pick(Cycle now) override;
  void on_release(FlowId owner) override;
  void save_discipline(SnapshotWriter& w) const override;
  void restore_discipline(SnapshotReader& r) override;

 private:
  core::ErrPolicy policy_;
  Accounting accounting_;
};

/// Packet-based round-robin arbitration (what many real switches do).
class RrArbiter final : public PortArbiter {
 public:
  explicit RrArbiter(std::size_t num_requesters);

  [[nodiscard]] std::string_view name() const override { return "RR"; }

 protected:
  void on_new_request(FlowId requester) override;
  std::optional<FlowId> pick(Cycle now) override;
  void on_release(FlowId owner) override;
  void save_discipline(SnapshotWriter& w) const override;
  void restore_discipline(SnapshotReader& r) override;

 private:
  core::ActiveFlowRing ring_;
};

/// First-come-first-served arbitration by head-arrival order.
class FcfsArbiter final : public PortArbiter {
 public:
  explicit FcfsArbiter(std::size_t num_requesters);

  [[nodiscard]] std::string_view name() const override { return "FCFS"; }

 protected:
  void on_new_request(FlowId requester) override;
  std::optional<FlowId> pick(Cycle now) override;
  void on_release(FlowId owner) override;
  void save_discipline(SnapshotWriter& w) const override;
  void restore_discipline(SnapshotReader& r) override;

 private:
  RingBuffer<FlowId> order_;
};

/// Creates an arbiter by name: "err" / "err-cycles", "err-flits", "rr",
/// "fcfs".  Returns nullptr for unknown names.
[[nodiscard]] std::unique_ptr<PortArbiter> make_arbiter(
    std::string_view name, std::size_t num_requesters);

}  // namespace wormsched::wormhole
