#include "wormhole/arbiter.hpp"

#include <string>

#include "common/assert.hpp"
#include "common/snapshot.hpp"

namespace wormsched::wormhole {

void PortArbiter::request(FlowId requester) {
  ++pending_[requester.index()];
  ++pending_total_;
  on_new_request(requester);
}

std::optional<FlowId> PortArbiter::grant(Cycle now) {
  WS_CHECK_MSG(!bound(), "grant while output still owned");
  const std::optional<FlowId> chosen = pick(now);
  if (!chosen) return std::nullopt;
  auto& pending = pending_[chosen->index()];
  WS_CHECK_MSG(pending > 0, "arbiter granted a requester with no pending head");
  WS_CHECK_MSG(pending_total_ > 0, "pending_total out of sync with pending_");
  --pending;
  --pending_total_;
  owner_ = *chosen;
  return chosen;
}

void PortArbiter::release() {
  WS_CHECK_MSG(bound(), "release with no owner");
  const FlowId owner = owner_;
  owner_ = FlowId::invalid();
  on_release(owner);
}

void PortArbiter::save_state(SnapshotWriter& w) const {
  w.u64(pending_.size());
  for (const std::uint32_t p : pending_) w.u32(p);
  w.u32(owner_.value());
  w.f64(held_);
  save_discipline(w);
}

void PortArbiter::restore_state(SnapshotReader& r) {
  const std::uint64_t n = r.u64();
  if (n != pending_.size())
    throw SnapshotError("arbiter snapshot requester count mismatch");
  pending_total_ = 0;
  for (std::uint32_t& p : pending_) {
    p = r.u32();
    pending_total_ += p;
  }
  owner_ = FlowId{r.u32()};
  held_ = r.f64();
  restore_discipline(r);
}

ErrArbiter::ErrArbiter(std::size_t num_requesters, Accounting accounting,
                       bool reset_on_idle)
    : PortArbiter(num_requesters, accounting == Accounting::kCycles
                                      ? Charging::kCycles
                                      : Charging::kFlits),
      policy_(core::ErrConfig{num_requesters, reset_on_idle}),
      accounting_(accounting) {}

void ErrArbiter::on_new_request(FlowId requester) {
  // A requester with exactly one pending head just went busy — unless the
  // policy is still holding it inside an open service opportunity, in
  // which case the opportunity's continuation rule takes precedence.
  if (pending_[requester.index()] == 1 &&
      !(policy_.in_opportunity() && policy_.current_flow() == requester)) {
    policy_.flow_activated(requester);
  }
}

std::optional<FlowId> ErrArbiter::pick(Cycle) {
  if (policy_.in_opportunity()) {
    // release() only leaves an opportunity open when continuation is
    // legal: allowance remaining and another head pending.
    const FlowId flow = policy_.current_flow();
    WS_CHECK(policy_.may_continue() && pending_[flow.index()] > 0);
    return flow;
  }
  if (!policy_.has_active_flows()) return std::nullopt;
  return policy_.begin_opportunity();
}

void ErrArbiter::on_release(FlowId owner) {
  WS_CHECK(policy_.in_opportunity() && policy_.current_flow() == owner);
  WS_CHECK_MSG(held_ > 0.0, "released a packet that was never charged");
  policy_.charge(held_);
  held_ = 0.0;
  const bool more = pending_[owner.index()] > 0;
  if (!more || !policy_.may_continue())
    policy_.end_opportunity(/*still_backlogged=*/more);
}

void ErrArbiter::save_discipline(SnapshotWriter& w) const { policy_.save(w); }

void ErrArbiter::restore_discipline(SnapshotReader& r) { policy_.restore(r); }

RrArbiter::RrArbiter(std::size_t num_requesters)
    : PortArbiter(num_requesters), ring_(num_requesters) {}

void RrArbiter::on_new_request(FlowId requester) {
  if (pending_[requester.index()] == 1 && requester != owner() &&
      !ring_.contains(requester)) {
    ring_.activate(requester);
  }
}

std::optional<FlowId> RrArbiter::pick(Cycle) {
  if (ring_.empty()) return std::nullopt;
  return ring_.take_next();
}

void RrArbiter::on_release(FlowId owner) {
  if (pending_[owner.index()] > 0) ring_.activate(owner);
}

void RrArbiter::save_discipline(SnapshotWriter& w) const { ring_.save(w); }

void RrArbiter::restore_discipline(SnapshotReader& r) { ring_.restore(r); }

FcfsArbiter::FcfsArbiter(std::size_t num_requesters)
    : PortArbiter(num_requesters) {}

void FcfsArbiter::on_new_request(FlowId requester) {
  order_.push_back(requester);
}

std::optional<FlowId> FcfsArbiter::pick(Cycle) {
  if (order_.empty()) return std::nullopt;
  return order_.pop_front();
}

void FcfsArbiter::on_release(FlowId) {}

void FcfsArbiter::save_discipline(SnapshotWriter& w) const {
  save_sequence(w, order_,
                [](SnapshotWriter& o, FlowId f) { o.u32(f.value()); });
}

void FcfsArbiter::restore_discipline(SnapshotReader& r) {
  restore_sequence(r, order_,
                   [](SnapshotReader& i) { return FlowId{i.u32()}; });
}

std::unique_ptr<PortArbiter> make_arbiter(std::string_view name,
                                          std::size_t num_requesters) {
  const std::string lower(name);
  if (lower == "err" || lower == "err-cycles")
    return std::make_unique<ErrArbiter>(num_requesters,
                                        ErrArbiter::Accounting::kCycles);
  if (lower == "err-flits")
    return std::make_unique<ErrArbiter>(num_requesters,
                                        ErrArbiter::Accounting::kFlits);
  if (lower == "rr") return std::make_unique<RrArbiter>(num_requesters);
  if (lower == "fcfs") return std::make_unique<FcfsArbiter>(num_requesters);
  return nullptr;
}

}  // namespace wormsched::wormhole
