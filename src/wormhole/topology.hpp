// Topologies and deterministic dimension-order routing.
//
// The library ships k-ary 2-meshes and 2-ary tori (the interconnects of
// the parallel systems the paper targets: Cray T3D, Intel Paragon, IBM SP
// all use low-dimensional meshes/tori or closely related fabrics).  XY
// dimension-order routing is deadlock-free on the mesh; on the torus the
// classic Dally-Seitz dateline rule moves a packet to virtual-channel
// class 1 when it crosses a wrap link, breaking each ring's channel-
// dependency cycle.
//
// A k-ary fat tree (k in {2, 4}; the radix is capped by the router's
// four non-local ports) provides the datacenter-flavored substrate: k
// pods of k/2 edge and k/2 aggregation switches under (k/2)^2 cores.
// Only edge switches carry NICs, so endpoints are the first k^2/2 node
// ids.  Up/down routing — climb to a common ancestor, then descend — is
// deadlock-free on the tree because a packet never turns from a down
// channel back into an up channel.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/small_vec.hpp"
#include "common/types.hpp"

namespace wormsched::wormhole {

/// Router port directions.  For mesh/torus the names are geographic; the
/// fat tree reuses the same four non-local slots as opaque port indices
/// (edge switches use ports 1..k/2 as uplinks, aggregation switches use
/// 1..k/2 down and k/2+1..k up, cores use 1..k down — one per pod).
enum class Direction : std::uint8_t {
  kLocal = 0,
  kEast = 1,
  kWest = 2,
  kNorth = 3,
  kSouth = 4,
};
inline constexpr std::uint32_t kNumDirections = 5;

[[nodiscard]] constexpr PortId port_of(Direction d) {
  return PortId(static_cast<std::uint32_t>(d));
}
[[nodiscard]] constexpr Direction direction_of(PortId p) {
  return static_cast<Direction>(p.value());
}
[[nodiscard]] const char* direction_name(Direction d);

struct Coord {
  std::uint32_t x = 0;
  std::uint32_t y = 0;
  bool operator==(const Coord&) const = default;
};

struct TopologySpec {
  enum class Kind { kMesh, kTorus, kFatTree };
  Kind kind = Kind::kMesh;
  std::uint32_t width = 4;
  std::uint32_t height = 4;

  [[nodiscard]] static TopologySpec mesh(std::uint32_t w, std::uint32_t h) {
    return {Kind::kMesh, w, h};
  }
  [[nodiscard]] static TopologySpec torus(std::uint32_t w, std::uint32_t h) {
    return {Kind::kTorus, w, h};
  }
  /// k-ary fat tree; `width` carries k, `height` is 1.
  [[nodiscard]] static TopologySpec fat_tree(std::uint32_t k) {
    return {Kind::kFatTree, k, 1};
  }

  [[nodiscard]] std::uint32_t fat_tree_k() const { return width; }

  /// Switch count (every switch is a routed node; for the fat tree that
  /// is k^2 edge+aggregation switches plus (k/2)^2 cores).
  [[nodiscard]] std::uint32_t num_nodes() const;

  [[nodiscard]] std::string describe() const;
};

/// Strict parser for the CLI `--topo` grammar: `mesh<W>x<H>`,
/// `torus<W>x<H>`, `fattree:<K>`.  Dimensions must be full-string
/// decimal integers (no trailing garbage) and non-zero; K must be 2 or
/// 4.  On failure returns nullopt and fills `error` with a diagnostic.
[[nodiscard]] std::optional<TopologySpec> parse_topology_spec(
    const std::string& text, std::string* error);

/// Result of one routing decision.
struct RouteDecision {
  Direction out = Direction::kLocal;
  /// VC class the flit must use on the chosen output (dateline rule).
  std::uint32_t out_class = 0;
  /// True when the hop traverses a wrap-around link (torus only).
  bool wraps = false;
};

/// Candidate routes for one head flit, filled in place by the routing
/// oracles so route computation never touches the heap.  A candidate
/// names one (output port, VC class) unit, so the candidate set is
/// bounded by kNumDirections x num_vcs — and the router's pending
/// bitmasks already cap that product at 64 units.
inline constexpr std::size_t kMaxRouteCandidates = 64;
using RouteCandidates = SmallVec<RouteDecision, kMaxRouteCandidates>;

class Topology {
 public:
  explicit Topology(const TopologySpec& spec);

  [[nodiscard]] const TopologySpec& spec() const { return spec_; }
  [[nodiscard]] std::uint32_t num_nodes() const { return spec_.num_nodes(); }

  /// Nodes that carry a NIC.  Mesh/torus: every node.  Fat tree: the
  /// edge switches, which occupy ids [0, k^2/2) — endpoints are always
  /// the contiguous prefix of the id space.
  [[nodiscard]] std::uint32_t num_endpoints() const;
  [[nodiscard]] bool is_endpoint(NodeId n) const {
    return n.value() < num_endpoints();
  }
  [[nodiscard]] NodeId endpoint(std::uint32_t i) const;

  [[nodiscard]] Coord coord(NodeId node) const;
  [[nodiscard]] NodeId node(Coord c) const;

  /// The neighbour reached from `node` through `d`; invalid NodeId when
  /// no link exists there.  kLocal maps to the node itself.
  [[nodiscard]] NodeId neighbor(NodeId node, Direction d) const;

  /// The port at the far end of link (node, d): a flit (or credit /
  /// on-off signal) leaving `node` through `d` arrives at
  /// `neighbor(node, d)` on this port.  Mesh/torus links are geometric,
  /// so this is the opposite compass direction; fat-tree links come from
  /// the wiring table.
  [[nodiscard]] Direction peer_port(NodeId node, Direction d) const;

  /// True when (node, d) is a torus wrap-around link.
  [[nodiscard]] bool is_wrap_link(NodeId node, Direction d) const;

  /// Deterministic routing step: XY dimension-order with dateline
  /// VC-class assignment on mesh/torus, destination-hashed up/down on
  /// the fat tree.  `in_class` is the class the flit arrived on.
  [[nodiscard]] RouteDecision route(NodeId current, NodeId dest,
                                    Direction in_from,
                                    std::uint32_t in_class) const;

  /// West-first turn-model candidates (Glass & Ni): if the destination
  /// lies to the west the packet must finish all west hops first (single
  /// candidate); otherwise every productive direction among {E, N, S} is
  /// legal and the router may pick adaptively.  Deadlock-free on the mesh
  /// with any VC count because the two turns into West are never taken.
  /// Mesh only (wrap links would reintroduce ring cycles); asserts on a
  /// torus.  Appends 1-3 candidates to `out` (allocation-free); kLocal
  /// alone when current == dest.
  void west_first_candidates(NodeId current, NodeId dest, Direction in_from,
                             std::uint32_t in_class,
                             RouteCandidates& out) const;

  /// Adaptive up/down candidates (fat tree only): while climbing, every
  /// uplink reaches some common ancestor, so all of them are legal and
  /// the router may pick by congestion; the descent is deterministic
  /// (single candidate).  Deadlock-free for the same reason as the
  /// deterministic variant — no down-to-up turns.
  void updown_candidates(NodeId current, NodeId dest, Direction in_from,
                         std::uint32_t in_class, RouteCandidates& out) const;

  /// Minimum hop count between two nodes under this topology's
  /// deterministic routing.
  [[nodiscard]] std::uint32_t hops(NodeId a, NodeId b) const;

 private:
  [[nodiscard]] Direction x_step(std::uint32_t from_x, std::uint32_t to_x,
                                 bool* wraps) const;
  [[nodiscard]] Direction y_step(std::uint32_t from_y, std::uint32_t to_y,
                                 bool* wraps) const;
  [[nodiscard]] RouteDecision updown_route(NodeId current, NodeId dest,
                                           std::uint32_t in_class) const;
  void build_fat_tree();
  void add_link(NodeId a, Direction pa, NodeId b, Direction pb);

  TopologySpec spec_;
  /// Fat-tree wiring (empty for mesh/torus): per node, the peer reached
  /// through each port and the port index at that peer.
  std::vector<std::array<NodeId, kNumDirections>> fat_links_;
  std::vector<std::array<Direction, kNumDirections>> fat_peer_ports_;
};

}  // namespace wormsched::wormhole
