// Topologies and deterministic dimension-order routing.
//
// The library ships k-ary 2-meshes and 2-ary tori (the interconnects of
// the parallel systems the paper targets: Cray T3D, Intel Paragon, IBM SP
// all use low-dimensional meshes/tori or closely related fabrics).  XY
// dimension-order routing is deadlock-free on the mesh; on the torus the
// classic Dally-Seitz dateline rule moves a packet to virtual-channel
// class 1 when it crosses a wrap link, breaking each ring's channel-
// dependency cycle.
#pragma once

#include <cstdint>
#include <string>

#include "common/small_vec.hpp"
#include "common/types.hpp"

namespace wormsched::wormhole {

/// Router port directions for 2D topologies.
enum class Direction : std::uint8_t {
  kLocal = 0,
  kEast = 1,
  kWest = 2,
  kNorth = 3,
  kSouth = 4,
};
inline constexpr std::uint32_t kNumDirections = 5;

[[nodiscard]] constexpr PortId port_of(Direction d) {
  return PortId(static_cast<std::uint32_t>(d));
}
[[nodiscard]] constexpr Direction direction_of(PortId p) {
  return static_cast<Direction>(p.value());
}
[[nodiscard]] const char* direction_name(Direction d);

struct Coord {
  std::uint32_t x = 0;
  std::uint32_t y = 0;
  bool operator==(const Coord&) const = default;
};

struct TopologySpec {
  enum class Kind { kMesh, kTorus };
  Kind kind = Kind::kMesh;
  std::uint32_t width = 4;
  std::uint32_t height = 4;

  [[nodiscard]] static TopologySpec mesh(std::uint32_t w, std::uint32_t h) {
    return {Kind::kMesh, w, h};
  }
  [[nodiscard]] static TopologySpec torus(std::uint32_t w, std::uint32_t h) {
    return {Kind::kTorus, w, h};
  }
  [[nodiscard]] std::string describe() const;
};

/// Result of one routing decision.
struct RouteDecision {
  Direction out = Direction::kLocal;
  /// VC class the flit must use on the chosen output (dateline rule).
  std::uint32_t out_class = 0;
  /// True when the hop traverses a wrap-around link (torus only).
  bool wraps = false;
};

/// Candidate routes for one head flit, filled in place by the routing
/// oracles so route computation never touches the heap.  A candidate
/// names one (output port, VC class) unit, so the candidate set is
/// bounded by kNumDirections x num_vcs — and the router's pending
/// bitmasks already cap that product at 64 units.
inline constexpr std::size_t kMaxRouteCandidates = 64;
using RouteCandidates = SmallVec<RouteDecision, kMaxRouteCandidates>;

class Topology {
 public:
  explicit Topology(const TopologySpec& spec);

  [[nodiscard]] const TopologySpec& spec() const { return spec_; }
  [[nodiscard]] std::uint32_t num_nodes() const {
    return spec_.width * spec_.height;
  }
  [[nodiscard]] Coord coord(NodeId node) const;
  [[nodiscard]] NodeId node(Coord c) const;

  /// The neighbour reached from `node` through `d`; invalid NodeId when
  /// the mesh has no link there.  kLocal maps to the node itself.
  [[nodiscard]] NodeId neighbor(NodeId node, Direction d) const;

  /// True when (node, d) is a torus wrap-around link.
  [[nodiscard]] bool is_wrap_link(NodeId node, Direction d) const;

  /// XY dimension-order routing step with dateline VC-class assignment.
  /// `in_class` is the class the flit arrived on.
  [[nodiscard]] RouteDecision route(NodeId current, NodeId dest,
                                    Direction in_from,
                                    std::uint32_t in_class) const;

  /// West-first turn-model candidates (Glass & Ni): if the destination
  /// lies to the west the packet must finish all west hops first (single
  /// candidate); otherwise every productive direction among {E, N, S} is
  /// legal and the router may pick adaptively.  Deadlock-free on the mesh
  /// with any VC count because the two turns into West are never taken.
  /// Mesh only (wrap links would reintroduce ring cycles); asserts on a
  /// torus.  Appends 1-3 candidates to `out` (allocation-free); kLocal
  /// alone when current == dest.
  void west_first_candidates(NodeId current, NodeId dest, Direction in_from,
                             std::uint32_t in_class,
                             RouteCandidates& out) const;

  /// Minimum hop count between two nodes under this topology's DOR.
  [[nodiscard]] std::uint32_t hops(NodeId a, NodeId b) const;

 private:
  [[nodiscard]] Direction x_step(std::uint32_t from_x, std::uint32_t to_x,
                                 bool* wraps) const;
  [[nodiscard]] Direction y_step(std::uint32_t from_y, std::uint32_t to_y,
                                 bool* wraps) const;

  TopologySpec spec_;
};

}  // namespace wormsched::wormhole
