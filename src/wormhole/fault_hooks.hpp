// Fault-injection hook interface for the wormhole substrate.
//
// The network and its traffic source consult an optional FaultModel at
// well-defined points (wire delivery, credit return, injection).  The
// interface lives here, below the concrete implementation: the substrate
// knows only the questions it may ask, while the deterministic schedule
// that answers them (validate::ScheduledFaults) plugs in from above.
//
// Contract: every answer must be a pure function of (cycle, node) and the
// model's own configuration — never of call order or call count.  The
// active-set and dense_tick execution paths may interleave queries
// differently, and the flit-for-flit differential tests require both
// paths to see the identical fault schedule.
#pragma once

#include <optional>

#include "common/types.hpp"

namespace wormsched::wormhole {

class FaultModel {
 public:
  virtual ~FaultModel() = default;

  /// Fabric-wide link stall: when true, flit-wire delivery pauses for this
  /// cycle (in-flight flits keep their order and arrive late).
  [[nodiscard]] virtual bool link_stalled(Cycle now) const {
    (void)now;
    return false;
  }

  /// Credit starvation: cycles to quarantine a credit arriving at `node`
  /// this cycle (0 = deliver normally).  Release cycles must be
  /// non-decreasing in arrival order so the quarantine stays a FIFO.
  [[nodiscard]] virtual Cycle credit_hold_cycles(Cycle now,
                                                 NodeId node) const {
    (void)now;
    (void)node;
    return 0;
  }

  /// Injection-rate multiplier for `node`'s traffic source: 0 churns the
  /// source off for the cycle, > 1 models a burst.  The effective rate is
  /// clamped to 1 packet/node/cycle by the source.
  [[nodiscard]] virtual double injection_multiplier(Cycle now,
                                                    NodeId node) const {
    (void)now;
    (void)node;
    return 1.0;
  }

  /// Destination override during hotspot bursts; nullopt = pattern's
  /// choice.  Returning `src` itself is ignored by the source.
  [[nodiscard]] virtual std::optional<NodeId> burst_destination(
      Cycle now, NodeId src) const {
    (void)now;
    (void)src;
    return std::nullopt;
  }
};

}  // namespace wormsched::wormhole
