#include "wormhole/patterns.hpp"

#include <sstream>

#include "common/assert.hpp"
#include "common/snapshot.hpp"

namespace wormsched::wormhole {

std::string PatternSpec::describe() const {
  switch (kind) {
    case Kind::kUniform: return "uniform";
    case Kind::kTranspose: return "transpose";
    case Kind::kBitComplement: return "bit-complement";
    case Kind::kHotspot: {
      std::ostringstream os;
      os << "hotspot(" << hotspot_fraction << "->node" << hotspot.value()
         << ")";
      return os.str();
    }
    case Kind::kNeighbor: return "neighbor";
  }
  return "?";
}

NodeId pick_destination(const Topology& topo, const PatternSpec& pattern,
                        NodeId src, Rng& rng) {
  // Traffic flows between endpoints.  On mesh/torus every node is one,
  // so the draws below are unchanged from the all-nodes form; on a fat
  // tree only the edge switches inject/eject and n counts just those.
  const std::uint32_t n = topo.num_endpoints();
  WS_CHECK(n >= 2);
  const bool fat = topo.spec().kind == TopologySpec::Kind::kFatTree;
  const auto next_of = [n](NodeId id) {
    return NodeId((id.value() + 1) % n);
  };
  NodeId dest = src;
  switch (pattern.kind) {
    case PatternSpec::Kind::kUniform:
      dest = topo.endpoint(static_cast<std::uint32_t>(rng.uniform_u64(n)));
      break;
    case PatternSpec::Kind::kTranspose: {
      if (fat) {
        // No grid to transpose: use the analogous fixed permutation, a
        // half-rotation of the endpoint ring (maximally non-local).
        dest = topo.endpoint((src.value() + n / 2) % n);
        break;
      }
      const Coord c = topo.coord(src);
      // Requires a square fabric to be a permutation; clamp otherwise.
      const Coord t{c.y % topo.spec().width, c.x % topo.spec().height};
      dest = topo.node(t);
      break;
    }
    case PatternSpec::Kind::kBitComplement:
      dest = topo.endpoint((n - 1) - src.value());
      break;
    case PatternSpec::Kind::kHotspot:
      dest = rng.bernoulli(pattern.hotspot_fraction)
                 ? pattern.hotspot
                 : topo.endpoint(
                       static_cast<std::uint32_t>(rng.uniform_u64(n)));
      break;
    case PatternSpec::Kind::kNeighbor: {
      if (fat) {
        dest = next_of(src);
        break;
      }
      const NodeId east = topo.neighbor(src, Direction::kEast);
      dest = east.is_valid() ? east : topo.neighbor(src, Direction::kWest);
      break;
    }
  }
  if (dest == src) dest = next_of(dest);
  return dest;
}

NetworkTrafficSource::NetworkTrafficSource(Network& network,
                                           const Config& config)
    : network_(network), config_(config), rng_(config.seed) {}

void NetworkTrafficSource::tick(Cycle now) {
  next_cycle_ = now + 1;
  if (now >= config_.inject_until) return;
  const Topology& topo = network_.topology();
  const FaultModel* faults = config_.faults;
  for (std::uint32_t n = 0; n < topo.num_endpoints(); ++n) {
    const NodeId src = topo.endpoint(n);
    double rate = config_.packets_per_node_per_cycle;
    if (faults != nullptr) {
      rate *= faults->injection_multiplier(now, src);
      if (rate > 1.0) rate = 1.0;
    }
    if (!rng_.bernoulli(rate)) continue;
    PacketDescriptor pkt;
    pkt.id = PacketId(next_id_++);
    pkt.flow = FlowId(n);  // fairness accounted per source node
    pkt.source = src;
    pkt.dest = pick_destination(topo, config_.pattern, src, rng_);
    if (faults != nullptr) {
      const std::optional<NodeId> burst = faults->burst_destination(now, src);
      if (burst.has_value() && *burst != src &&
          burst->value() < topo.num_endpoints()) {
        pkt.dest = *burst;
      }
    }
    pkt.length = sample_length(rng_, config_.lengths);
    pkt.created = now;
    network_.inject(now, pkt);
    ++generated_;
  }
}

void NetworkTrafficSource::save_state(SnapshotWriter& w) const {
  for (const std::uint64_t word : rng_.state()) w.u64(word);
  w.u64(next_id_);
  w.u64(generated_);
  w.u64(next_cycle_);
}

void NetworkTrafficSource::restore_state(SnapshotReader& r) {
  Rng::State state;
  for (std::uint64_t& word : state) word = r.u64();
  if ((state[0] | state[1] | state[2] | state[3]) == 0)
    throw SnapshotError("traffic source RNG state is all zero");
  rng_.set_state(state);
  next_id_ = r.u64();
  generated_ = r.u64();
  next_cycle_ = r.u64();
}

TraceTrafficSource::TraceTrafficSource(Network& network, const Config& config)
    : network_(network), config_(config), rng_(config.seed) {
  WS_CHECK_MSG(config_.trace != nullptr, "trace source needs a trace");
}

void TraceTrafficSource::tick(Cycle now) {
  const Topology& topo = network_.topology();
  const std::vector<traffic::TraceEntry>& entries = config_.trace->entries;
  while (cursor_ < entries.size() && entries[cursor_].cycle <= now) {
    const traffic::TraceEntry& e = entries[cursor_];
    const NodeId src = topo.endpoint(e.flow.value() % topo.num_endpoints());
    PacketDescriptor pkt;
    pkt.id = PacketId(next_id_++);
    pkt.flow = FlowId(src.value());  // fairness accounted per source node
    pkt.source = src;
    pkt.dest = pick_destination(topo, config_.pattern, src, rng_);
    pkt.length = e.length;
    pkt.created = now;
    network_.inject(now, pkt);
    ++generated_;
    ++cursor_;
  }
}

void TraceTrafficSource::save_state(SnapshotWriter& w) const {
  for (const std::uint64_t word : rng_.state()) w.u64(word);
  w.u64(cursor_);
  w.u64(next_id_);
  w.u64(generated_);
}

void TraceTrafficSource::restore_state(SnapshotReader& r) {
  Rng::State state;
  for (std::uint64_t& word : state) word = r.u64();
  if ((state[0] | state[1] | state[2] | state[3]) == 0)
    throw SnapshotError("trace source RNG state is all zero");
  rng_.set_state(state);
  cursor_ = r.u64();
  if (cursor_ > config_.trace->entries.size())
    throw SnapshotError("trace source cursor is past the end of the trace");
  next_id_ = r.u64();
  generated_ = r.u64();
}

}  // namespace wormsched::wormhole
