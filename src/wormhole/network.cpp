#include "wormhole/network.hpp"

#include "common/assert.hpp"

namespace wormsched::wormhole {

Network::Network(const NetworkConfig& config)
    : config_(config), topo_(config.topo) {
  WS_CHECK(config.link_latency >= 1);
  if (config.topo.kind == TopologySpec::Kind::kTorus) {
    WS_CHECK_MSG(config.router.num_vcs >= 2,
                 "torus requires >= 2 VC classes (dateline rule)");
    WS_CHECK_MSG(config.routing == NetworkConfig::Routing::kDor,
                 "west-first routing is mesh-only");
  }
  routers_.reserve(topo_.num_nodes());
  for (std::uint32_t n = 0; n < topo_.num_nodes(); ++n)
    routers_.emplace_back(NodeId(n), config.router);
  nics_.resize(topo_.num_nodes());
}

void Network::inject(Cycle, const PacketDescriptor& packet) {
  WS_CHECK(packet.length > 0);
  WS_CHECK(packet.source.value() < topo_.num_nodes());
  WS_CHECK(packet.dest.value() < topo_.num_nodes());
  nics_[packet.source.index()].queue.push_back(packet);
  nic_backlog_flits_ += packet.length;
  ++injected_;
}

Direction Network::opposite(Direction d) {
  switch (d) {
    case Direction::kEast: return Direction::kWest;
    case Direction::kWest: return Direction::kEast;
    case Direction::kNorth: return Direction::kSouth;
    case Direction::kSouth: return Direction::kNorth;
    case Direction::kLocal: return Direction::kLocal;
  }
  return Direction::kLocal;
}

void Network::send_flit(NodeId from, Direction out, const Flit& flit) {
  const NodeId to = topo_.neighbor(from, out);
  WS_CHECK_MSG(to.is_valid(), "flit sent off the edge of the mesh");
  flit_wire_.push_back(WireFlit{now_ + config_.link_latency, to,
                                opposite(out),
                                static_cast<std::uint32_t>(flit.vc_class.value()),
                                flit});
}

void Network::eject(NodeId node, const Flit& flit, Cycle now) {
  ++delivered_flits_;
  WS_CHECK_MSG(flit.dest == node, "flit ejected at the wrong node");
  if (is_tail(flit.type)) {
    delivered_.push_back(DeliveredPacket{flit.packet, flit.flow, flit.source,
                                         flit.dest, flit.index + 1,
                                         flit.created, now});
  }
}

void Network::send_credit(NodeId node, Direction in, std::uint32_t cls) {
  const NodeId upstream = topo_.neighbor(node, in);
  WS_CHECK(upstream.is_valid());
  credit_wire_.push_back(
      WireCredit{now_ + config_.link_latency, upstream, opposite(in), cls});
}

RouteDecision Network::route(NodeId node, const Flit& flit, Direction in_from,
                             std::uint32_t in_class) {
  return topo_.route(node, flit.dest, in_from, in_class);
}

std::vector<RouteDecision> Network::route_candidates(NodeId node,
                                                     const Flit& flit,
                                                     Direction in_from,
                                                     std::uint32_t in_class) {
  if (config_.routing == NetworkConfig::Routing::kWestFirst)
    return topo_.west_first_candidates(node, flit.dest, in_from, in_class);
  return {route(node, flit, in_from, in_class)};
}

void Network::tick(Cycle now) {
  now_ = now;

  // 1. Wire delivery (constant latency -> FIFO order).
  while (!flit_wire_.empty() && flit_wire_.front().arrive <= now) {
    const WireFlit wf = flit_wire_.pop_front();
    routers_[wf.to.index()].accept_flit(wf.in, wf.cls, wf.flit);
  }
  while (!credit_wire_.empty() && credit_wire_.front().arrive <= now) {
    const WireCredit wc = credit_wire_.pop_front();
    routers_[wc.to.index()].accept_credit(wc.out, wc.cls);
  }

  // 2. NIC injection: one flit per node per cycle into local VC class 0.
  for (std::uint32_t n = 0; n < nics_.size(); ++n) {
    Nic& nic = nics_[n];
    if (nic.queue.empty()) continue;
    Router& r = routers_[n];
    if (!r.can_accept_local(0)) continue;
    const PacketDescriptor& pkt = nic.queue.front();
    Flit flit;
    flit.packet = pkt.id;
    flit.flow = pkt.flow;
    flit.source = pkt.source;
    flit.dest = pkt.dest;
    flit.vc_class = VcId(0);
    flit.index = nic.sent_of_current;
    flit.created = pkt.created;
    const bool head = nic.sent_of_current == 0;
    const bool tail = nic.sent_of_current + 1 == pkt.length;
    flit.type = head && tail  ? FlitType::kHeadTail
                : head        ? FlitType::kHead
                : tail        ? FlitType::kTail
                              : FlitType::kBody;
    r.accept_flit(Direction::kLocal, 0, flit);
    --nic_backlog_flits_;
    if (tail) {
      (void)nic.queue.pop_front();
      nic.sent_of_current = 0;
    } else {
      ++nic.sent_of_current;
    }
  }

  // 3. Router pipelines.
  for (Router& r : routers_) r.tick(now, *this);
}

bool Network::idle() const {
  if (nic_backlog_flits_ != 0) return false;
  if (!flit_wire_.empty() || !credit_wire_.empty()) return false;
  for (const Router& r : routers_)
    if (!r.drained()) return false;
  return true;
}

RunningStat Network::latency_by_source(NodeId source) const {
  RunningStat stat;
  for (const DeliveredPacket& p : delivered_)
    if (p.source == source)
      stat.add(static_cast<double>(p.delivered - p.created));
  return stat;
}

RunningStat Network::latency_overall() const {
  RunningStat stat;
  for (const DeliveredPacket& p : delivered_)
    stat.add(static_cast<double>(p.delivered - p.created));
  return stat;
}

std::vector<Flits> Network::delivered_flits_by_flow(
    std::size_t num_flows) const {
  std::vector<Flits> counts(num_flows, 0);
  for (const DeliveredPacket& p : delivered_) {
    WS_CHECK(p.flow.index() < num_flows);
    counts[p.flow.index()] += p.length;
  }
  return counts;
}

}  // namespace wormsched::wormhole
