#include "wormhole/network.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "common/snapshot.hpp"
#include "wormhole/flit_snapshot.hpp"

namespace wormsched::wormhole {

Network::Network(const NetworkConfig& config)
    : config_(config), topo_(config.topo) {
  WS_CHECK(config.link_latency >= 1);
  WS_CHECK_MSG(config.shards >= 1, "shards must be >= 1");
  WS_CHECK_MSG(config.threads >= 1, "threads must be >= 1");
  WS_CHECK_MSG(config.router.buffer_depth >= 1,
               "buffer_depth 0 deadlocks every flow-control scheme");
  if (config.topo.kind == TopologySpec::Kind::kTorus) {
    WS_CHECK_MSG(config.router.num_vcs >= 2,
                 "torus requires >= 2 VC classes (dateline rule)");
    WS_CHECK_MSG(config.routing == NetworkConfig::Routing::kDor,
                 "torus supports deterministic DOR routing only");
  }
  if (config.routing == NetworkConfig::Routing::kWestFirst)
    WS_CHECK_MSG(config.topo.kind == TopologySpec::Kind::kMesh,
                 "west-first routing is mesh-only");
  if (config.routing == NetworkConfig::Routing::kUpDownAdaptive)
    WS_CHECK_MSG(config.topo.kind == TopologySpec::Kind::kFatTree,
                 "up/down adaptive routing is fat-tree-only");
  // Resolve the on/off auto watermarks before any router is built.  An
  // "off" emitted at occupancy on_high takes link_latency (L) cycles to
  // arrive, during which the sender streams L - 1 more flits on top of
  // the L already in flight (2L - 1 of headroom).  A link-stall fault can
  // additionally bunch up to L spaced arrivals into one delivery burst
  // that jumps occupancy past on_high before the off fires, so the auto
  // watermark reserves 3L - 2 slots — overflow-proof even under faults
  // (for L = 1 the two bounds coincide).  Explicit watermarks are only
  // required to be ordered; the auditor polices what a too-tight choice
  // actually breaks.
  if (config.router.flow_control == FlowControl::kOnOff &&
      config.router.buffer_model == BufferModel::kFinite) {
    RouterConfig& rc = config_.router;
    const std::uint32_t headroom =
        static_cast<std::uint32_t>(3 * config.link_latency - 2);
    if (rc.on_high == 0)
      rc.on_high =
          rc.buffer_depth > headroom ? rc.buffer_depth - headroom : 1;
    if (rc.on_low == 0) rc.on_low = (rc.on_high + 1) / 2;
    WS_CHECK_MSG(rc.on_low >= 1 && rc.on_low <= rc.on_high &&
                     rc.on_high <= rc.buffer_depth,
                 "on/off watermarks must satisfy "
                 "1 <= on_low <= on_high <= buffer_depth");
  }
  // In on/off mode a link stall freezes the router pipelines as well:
  // with no credits to absorb the slip, a stalled channel asserts
  // backpressure straight into the output stage, and senders that kept
  // streaming would overflow the fixed watermark headroom the moment the
  // stall released its bunched-up flits.
  freeze_on_stall_ = config.router.flow_control == FlowControl::kOnOff &&
                     config.router.buffer_model == BufferModel::kFinite;
  routers_.reserve(topo_.num_nodes());
  for (std::uint32_t n = 0; n < topo_.num_nodes(); ++n)
    routers_.emplace_back(NodeId(n), config_.router);  // resolved watermarks
  nics_.resize(topo_.num_nodes());
  router_live_.resize(topo_.num_nodes(), 0);
  touched_flag_.resize(topo_.num_nodes(), 0);
  latency_by_source_.resize(topo_.num_nodes());

  // Sharding geometry.  One shard (the default, or anything clamped down
  // to one) keeps the serial kernel; the same per-shard counter arrays
  // back both paths so the bookkeeping code is shared.
  shard_ranges_ = make_shard_partition(topo_.num_nodes(), config.shards);
  const auto num_shards = static_cast<std::uint32_t>(shard_ranges_.size());
  shard_live_.assign(num_shards, 0);
  shard_nonempty_nics_.assign(num_shards, 0);
  shard_nic_backlog_.assign(num_shards, 0);
  shard_of_.resize(topo_.num_nodes());
  for (std::uint32_t s = 0; s < num_shards; ++s)
    for (std::uint32_t n = shard_ranges_[s].begin; n < shard_ranges_[s].end;
         ++n)
      shard_of_[n] = s;
  if (num_shards > 1) {
    lanes_ = std::vector<ShardLane>(num_shards);
    for (std::uint32_t s = 0; s < num_shards; ++s) {
      lanes_[s].net_ = this;
      lanes_[s].shard_ = s;
    }
    team_ = std::make_unique<TickTeam>(std::min(config.threads, num_shards));
  }
}

void Network::inject(Cycle, const PacketDescriptor& packet) {
  WS_CHECK(packet.length > 0);
  WS_CHECK_MSG(packet.source.value() < topo_.num_endpoints() &&
                   packet.dest.value() < topo_.num_endpoints(),
               "packet source/dest must be fabric endpoints");
  Nic& nic = nics_[packet.source.index()];
  const std::uint32_t s = shard_of_[packet.source.index()];
  if (nic.queue.empty()) ++shard_nonempty_nics_[s];
  nic.queue.push_back(packet);
  shard_nic_backlog_[s] += packet.length;
  injected_flits_ += packet.length;
  ++injected_;
  // inject() runs between ticks (traffic sources fire before the
  // network), so the enqueue lands in the delta the next tick publishes.
  if (collect_delta_) delta_.enqueued_flits += packet.length;
}

void Network::refresh_delta_collection() {
  const bool want = observers_.any_wants_delta();
  if (collect_delta_ && !want) {
    for (const std::uint32_t n : delta_.touched) touched_flag_[n] = 0;
    delta_.clear();
  }
  collect_delta_ = want;
}

void Network::mark_live(std::size_t index) {
  if (router_live_[index]) return;
  router_live_[index] = 1;
  ++shard_live_[shard_of_[index]];
}

void Network::set_live(std::size_t index, bool live) {
  if (static_cast<bool>(router_live_[index]) == live) return;
  router_live_[index] = live ? 1 : 0;
  std::uint32_t& count = shard_live_[shard_of_[index]];
  live ? ++count : --count;
}

void Network::apply_wire_credit(const WireCredit& wc) {
  Router& rt = routers_[wc.to.index()];
  if (wc.kind == WireCredit::Kind::kCredit)
    rt.accept_credit(wc.out, wc.cls);
  else
    rt.accept_signal(wc.out, wc.cls, wc.kind == WireCredit::Kind::kOn);
}

void Network::send_flit(NodeId from, Direction out, const Flit& flit) {
  const NodeId to = topo_.neighbor(from, out);
  WS_CHECK_MSG(to.is_valid(), "flit sent off the edge of the fabric");
  flit_wire_.push_back(WireFlit{now_ + config_.link_latency, to,
                                topo_.peer_port(from, out),
                                static_cast<std::uint32_t>(flit.vc_class.value()),
                                flit});
  if (collect_delta_) {
    touch(from.index());
    delta_.flits_to_wire.push_back(CycleDelta::UnitEvent{
        delta_unit(from, out,
                   static_cast<std::uint32_t>(flit.vc_class.value())),
        from.value()});
  }
}

void Network::eject(NodeId node, const Flit& flit, Cycle now) {
  ++delivered_flits_;
  if (collect_delta_) {
    touch(node.index());
    delta_.ejections.push_back(node.value());
  }
  WS_CHECK_MSG(flit.dest == node, "flit ejected at the wrong node");
  const bool tail = is_tail(flit.type);
  double latency = 0.0;
  if (tail) {
    if (config_.record_delivered)
      delivered_.push_back(DeliveredPacket{flit.packet, flit.flow, flit.source,
                                           flit.dest, flit.index + 1,
                                           flit.created, now});
    const std::size_t fi = flit.flow.index();
    if (fi >= flow_delivered_flits_.size())
      flow_delivered_flits_.resize(fi + 1, 0);
    flow_delivered_flits_[fi] += flit.index + 1;
    ++delivered_packets_;
    latency = static_cast<double>(now - flit.created);
    latency_by_source_[flit.source.index()].add(latency);
    latency_overall_.add(latency);
    latency_quantiles_.add(latency);
  }
  if (trace_ != nullptr)
    trace_->record(obs::TraceEvent::flit_eject(now, node.value(),
                                               flit.flow.value(),
                                               flit.packet.value(), flit.index,
                                               tail, latency));
}

void Network::send_credit(NodeId node, Direction in, std::uint32_t cls) {
  const NodeId upstream = topo_.neighbor(node, in);
  WS_CHECK(upstream.is_valid());
  credit_wire_.push_back(WireCredit{now_ + config_.link_latency, upstream,
                                    topo_.peer_port(node, in), cls,
                                    WireCredit::Kind::kCredit});
  if (collect_delta_) {
    touch(node.index());
    delta_.credits_to_wire.push_back(
        CycleDelta::UnitEvent{delta_unit(node, in, cls), node.value()});
  }
}

void Network::send_signal(NodeId node, Direction in, std::uint32_t cls,
                          bool on) {
  const NodeId upstream = topo_.neighbor(node, in);
  WS_CHECK(upstream.is_valid());
  credit_wire_.push_back(
      WireCredit{now_ + config_.link_latency, upstream,
                 topo_.peer_port(node, in), cls,
                 on ? WireCredit::Kind::kOn : WireCredit::Kind::kOff});
  if (collect_delta_) {
    touch(node.index());
    delta_.credits_to_wire.push_back(
        CycleDelta::UnitEvent{delta_unit(node, in, cls), node.value()});
  }
}

RouteDecision Network::route(NodeId node, const Flit& flit, Direction in_from,
                             std::uint32_t in_class) {
  return topo_.route(node, flit.dest, in_from, in_class);
}

void Network::route_candidates(NodeId node, const Flit& flit,
                               Direction in_from, std::uint32_t in_class,
                               RouteCandidates& out) {
  if (config_.routing == NetworkConfig::Routing::kWestFirst) {
    topo_.west_first_candidates(node, flit.dest, in_from, in_class, out);
    return;
  }
  if (config_.routing == NetworkConfig::Routing::kUpDownAdaptive) {
    topo_.updown_candidates(node, flit.dest, in_from, in_class, out);
    return;
  }
  out.push_back(route(node, flit, in_from, in_class));
}

void Network::set_perf_counters(metrics::PerfCounters* counters) {
  perf_ = counters;
  for (Router& r : routers_) r.set_perf_counters(counters);
}

void Network::set_trace_sink(obs::TraceSink* sink) {
  trace_ = sink;
  for (Router& r : routers_) r.set_trace_sink(sink);
}

void Network::nic_inject_one(Cycle now, std::uint32_t n, CycleDelta& delta) {
  Nic& nic = nics_[n];
  Router& r = routers_[n];
  if (!r.can_accept_local(0)) return;
  const PacketDescriptor& pkt = nic.queue.front();
  Flit flit;
  flit.packet = pkt.id;
  flit.flow = pkt.flow;
  flit.source = pkt.source;
  flit.dest = pkt.dest;
  flit.vc_class = VcId(0);
  flit.index = nic.sent_of_current;
  flit.created = pkt.created;
  const bool head = nic.sent_of_current == 0;
  const bool tail = nic.sent_of_current + 1 == pkt.length;
  flit.type = head && tail  ? FlitType::kHeadTail
              : head        ? FlitType::kHead
              : tail        ? FlitType::kTail
                            : FlitType::kBody;
  r.accept_flit(Direction::kLocal, 0, flit);
  if (trace_ != nullptr)
    trace_->record(obs::TraceEvent::flit_inject(
        now, n, flit.flow.value(), flit.packet.value(), flit.index));
  mark_live(n);
  if (collect_delta_) {
    touch_into(delta, n);
    delta.injections.push_back(n);
  }
  const std::uint32_t s = shard_of_[n];
  --shard_nic_backlog_[s];
  if (tail) {
    (void)nic.queue.pop_front();
    nic.sent_of_current = 0;
    if (nic.queue.empty()) --shard_nonempty_nics_[s];
  } else {
    ++nic.sent_of_current;
  }
}

void Network::tick(Cycle now) {
  // Trace sinks and perf counters are single-threaded; their attachment
  // falls back to the serial kernel.  Results are bit-identical either
  // way, so a traced run still reproduces a sharded one exactly.
  if (shard_ranges_.size() > 1 && trace_ == nullptr && perf_ == nullptr)
    tick_sharded(now);
  else
    tick_serial(now);
}

void Network::tick_serial(Cycle now) {
  now_ = now;
  if (trace_ != nullptr) trace_->set_now(now);
  const FaultModel* faults = config_.faults;
  const bool stalled = faults != nullptr && faults->link_stalled(now);
  // Under on/off flow control a stalled link freezes the pipelines too
  // (see the ctor comment); signals still deliver, traffic still queues
  // at the NICs.
  const bool frozen = stalled && freeze_on_stall_;

  {
    metrics::ScopedStageTimer timer(perf_, metrics::Stage::kWireDelivery);

    // 0. Credits whose starvation window has elapsed re-enter the
    // protocol.
    while (!credit_quarantine_.empty() &&
           credit_quarantine_.front().arrive <= now) {
      const WireCredit wc = credit_quarantine_.pop_front();
      apply_wire_credit(wc);
      mark_live(wc.to.index());
      if (collect_delta_) {
        touch(wc.to.index());
        delta_.credits_from_wire.push_back(CycleDelta::UnitEvent{
            delta_unit(wc.to, wc.out, wc.cls), wc.to.value()});
      }
    }

    // 1. Wire delivery (constant latency -> FIFO order).  An arriving
    // flit or credit enrolls its destination router in the active set.  A
    // link stall pauses flit delivery for the cycle — the flits stay
    // queued, in order, and arrive late; nothing is ever dropped.
    if (!stalled) {
      while (!flit_wire_.empty() && flit_wire_.front().arrive <= now) {
        const WireFlit wf = flit_wire_.pop_front();
        routers_[wf.to.index()].accept_flit(wf.in, wf.cls, wf.flit);
        mark_live(wf.to.index());
        if (collect_delta_) {
          touch(wf.to.index());
          delta_.flits_from_wire.push_back(CycleDelta::UnitEvent{
              delta_unit(wf.to, wf.in, wf.cls), wf.to.value()});
        }
      }
    } else if (trace_ != nullptr && !flit_wire_.empty() &&
               flit_wire_.front().arrive <= now) {
      // Only stalls that actually delay a due flit are events; recording
      // every cycle of an idle-fabric stall window would just flood the
      // ring.
      trace_->record(obs::TraceEvent::fault_link_stall(now));
    }
    while (!credit_wire_.empty() && credit_wire_.front().arrive <= now) {
      const WireCredit wc = credit_wire_.pop_front();
      // On/off signals are exempt from the credit-hold fault: delaying
      // an "off" would break the watermark overshoot bound, turning a
      // liveness fault into a buffer-overflow correctness bug.  The
      // fault model is a pure hash of (cycle, node), so skipping the
      // query for signals leaves every credit's verdict unchanged.
      const Cycle hold =
          faults != nullptr && wc.kind == WireCredit::Kind::kCredit
              ? faults->credit_hold_cycles(now, wc.to)
              : 0;
      if (hold > 0) {
        WireCredit held = wc;
        held.arrive = now + hold;
        credit_quarantine_.push_back(held);
        if (trace_ != nullptr)
          trace_->record(
              obs::TraceEvent::fault_credit_hold(now, wc.to.value(), hold));
        continue;
      }
      apply_wire_credit(wc);
      mark_live(wc.to.index());
      if (collect_delta_) {
        touch(wc.to.index());
        delta_.credits_from_wire.push_back(CycleDelta::UnitEvent{
            delta_unit(wc.to, wc.out, wc.cls), wc.to.value()});
      }
    }
  }

  // 2. NIC injection: one flit per node per cycle into local VC class 0.
  // Only NICs holding backlog are visited; `remaining` cuts the scan off
  // once every nonempty NIC has been seen.
  if (!frozen && nic_backlog_flits() != 0) {
    metrics::ScopedStageTimer timer(perf_, metrics::Stage::kNicInject);
    std::uint32_t remaining = 0;
    for (const std::uint32_t c : shard_nonempty_nics_) remaining += c;
    for (std::uint32_t n = 0; remaining != 0 && n < nics_.size(); ++n) {
      if (nics_[n].queue.empty()) continue;
      --remaining;
      nic_inject_one(now, n, delta_);
    }
  }

  // 3. Router pipelines.  A drained router's tick is a no-op (nothing to
  // route, grant, charge or forward), so only active routers tick; the
  // ascending scan keeps side-effect order — and therefore every figure —
  // identical to the legacy full-fabric loop.  New work can only arrive
  // through the wires (link latency >= 1), never mid-scan.
  if (frozen) {
    // Stalled on/off cycle: no router ticks, no liveness changes.
  } else if (config_.dense_tick) {
    for (std::uint32_t n = 0; n < routers_.size(); ++n) {
      routers_[n].tick(now, *this);
      const bool live_now = !routers_[n].drained();
      // Every event site touches its router, so the only liveness change
      // an event does not already cover is this transition.
      if (collect_delta_ && static_cast<bool>(router_live_[n]) != live_now)
        touch(n);
      set_live(n, live_now);
    }
  } else if (live_router_count() != 0) {
    // Router ticks never enroll *other* routers mid-scan (new work only
    // travels via the wires), so the live count at loop entry bounds the
    // number of routers left to visit.
    std::uint32_t remaining = live_router_count();
    for (std::uint32_t n = 0; remaining != 0 && n < routers_.size(); ++n) {
      if (!router_live_[n]) continue;
      --remaining;
      routers_[n].tick(now, *this);
      if (routers_[n].drained()) {
        set_live(n, false);
        // The one liveness change with no event of its own: a credit can
        // wake an already-drained router, whose next tick is a no-op that
        // idles it again.  The drain itself enrolls it in the touched set.
        if (collect_delta_) touch(n);
      }
    }
  }

  // 4. Observers (auditor, probes) see the settled post-cycle state —
  // identical in the active-set and dense paths by construction — plus
  // this cycle's delta.  The delta is cleared after dispatch; its vectors
  // keep their capacity, so steady state allocates nothing.
  if (!observers_.empty()) {
    metrics::ScopedStageTimer timer(perf_, metrics::Stage::kObserver);
    observers_.on_cycle_end(now, *this, delta_);
    if (collect_delta_) {
      for (const std::uint32_t n : delta_.touched) touched_flag_[n] = 0;
      delta_.clear();
    }
  }
}

void Network::tick_sharded(Cycle now) {
  now_ = now;
  const FaultModel* faults = config_.faults;
  const bool stalled = faults != nullptr && faults->link_stalled(now);
  // link_stalled is a pure hash of (now), so every lane would reach the
  // same answer; computing it once here keeps the shard hot path cheap
  // and makes the freeze decision trivially serial-identical.
  frozen_this_cycle_ = stalled && freeze_on_stall_;
  const auto num_shards = static_cast<std::uint32_t>(shard_ranges_.size());

  // Phase 0 — classify (serial).  The global wires are popped in exactly
  // the serial order — every fault-model decision included — and each
  // arrival lands on the owning shard's delivery list.  The from-wire
  // delta events are recorded here, straight into the global delta, so
  // their order matches the serial kernel's event order exactly.  The
  // global FIFOs stay the single source of truth the audit accessors
  // expose; between ticks their contents are byte-identical to a serial
  // run's.
  while (!credit_quarantine_.empty() &&
         credit_quarantine_.front().arrive <= now) {
    const WireCredit wc = credit_quarantine_.pop_front();
    lanes_[shard_of_[wc.to.index()]].quarantine_due_.push_back(wc);
    if (collect_delta_) {
      touch(wc.to.index());
      delta_.credits_from_wire.push_back(CycleDelta::UnitEvent{
          delta_unit(wc.to, wc.out, wc.cls), wc.to.value()});
    }
  }
  if (!stalled) {
    while (!flit_wire_.empty() && flit_wire_.front().arrive <= now) {
      const WireFlit wf = flit_wire_.pop_front();
      lanes_[shard_of_[wf.to.index()]].flits_due_.push_back(wf);
      if (collect_delta_) {
        touch(wf.to.index());
        delta_.flits_from_wire.push_back(CycleDelta::UnitEvent{
            delta_unit(wf.to, wf.in, wf.cls), wf.to.value()});
      }
    }
  }
  while (!credit_wire_.empty() && credit_wire_.front().arrive <= now) {
    const WireCredit wc = credit_wire_.pop_front();
    // Signals skip the credit-hold fault; see tick_serial.
    const Cycle hold =
        faults != nullptr && wc.kind == WireCredit::Kind::kCredit
            ? faults->credit_hold_cycles(now, wc.to)
            : 0;
    if (hold > 0) {
      WireCredit held = wc;
      held.arrive = now + hold;
      credit_quarantine_.push_back(held);
      continue;
    }
    lanes_[shard_of_[wc.to.index()]].credits_due_.push_back(wc);
    if (collect_delta_) {
      touch(wc.to.index());
      delta_.credits_from_wire.push_back(CycleDelta::UnitEvent{
          delta_unit(wc.to, wc.out, wc.cls), wc.to.value()});
    }
  }

  // Phase 1 — compute (parallel).  Lane l handles shards l, l + lanes,
  // ...  Each shard's work touches only its own routers, NICs, counters,
  // and staging vectors; the barriers inside run() provide the
  // happens-before edges around the serial phases.
  const std::uint32_t nlanes = team_->lanes();
  team_->run([&](std::uint32_t lane) {
    for (std::uint32_t s = lane; s < num_shards; s += nlanes)
      compute_shard(now, s);
  });

  // Phase 2 — commit (serial).  Appending the staged sends shard-
  // ascending reproduces the serial FIFO contents byte for byte (see
  // shard.hpp for the argument).
  for (std::uint32_t s = 0; s < num_shards; ++s) {
    ShardLane& lane = lanes_[s];
    for (const WireFlit& wf : lane.out_flits_) flit_wire_.push_back(wf);
    for (const WireCredit& wc : lane.out_credits_) credit_wire_.push_back(wc);
  }
  // Ejections replay through the serial eject path in shard-ascending
  // (= serial router) order: the delivered log, the latency RunningStats
  // (floating-point summation order included), and the ejection delta
  // events come out exactly as the serial kernel produces them.
  for (std::uint32_t s = 0; s < num_shards; ++s)
    for (const ShardLane::StagedEjection& e : lanes_[s].ejections_)
      eject(e.node, e.flit, now);
  // Merge the lane deltas (to-wire events, injections, touched) into the
  // global delta, shard-ascending — again the serial per-vector order.
  if (collect_delta_) {
    for (std::uint32_t s = 0; s < num_shards; ++s) {
      const CycleDelta& d = lanes_[s].delta_;
      delta_.flits_to_wire.insert(delta_.flits_to_wire.end(),
                                  d.flits_to_wire.begin(),
                                  d.flits_to_wire.end());
      delta_.credits_to_wire.insert(delta_.credits_to_wire.end(),
                                    d.credits_to_wire.begin(),
                                    d.credits_to_wire.end());
      delta_.injections.insert(delta_.injections.end(), d.injections.begin(),
                               d.injections.end());
      delta_.touched.insert(delta_.touched.end(), d.touched.begin(),
                            d.touched.end());
    }
  }
  for (std::uint32_t s = 0; s < num_shards; ++s) lanes_[s].clear_cycle();

  // Observers run serially, after commit, against the settled state —
  // the same post-cycle snapshot and (up to benign per-vector grouping of
  // the touched list) the same delta a serial tick dispatches.
  if (!observers_.empty()) {
    observers_.on_cycle_end(now, *this, delta_);
    if (collect_delta_) {
      for (const std::uint32_t n : delta_.touched) touched_flag_[n] = 0;
      delta_.clear();
    }
  }
}

void Network::compute_shard(Cycle now, std::uint32_t s) {
  ShardLane& lane = lanes_[s];
  // Deliver this shard's arrivals in the serial sub-order: quarantine
  // releases first, then flits, then wire credits.  Per-router arrival
  // order is all that matters for bit-identity (routers only interact
  // via the wires), and it is preserved exactly.
  for (const WireCredit& wc : lane.quarantine_due_) {
    apply_wire_credit(wc);
    mark_live(wc.to.index());
  }
  for (const WireFlit& wf : lane.flits_due_) {
    routers_[wf.to.index()].accept_flit(wf.in, wf.cls, wf.flit);
    mark_live(wf.to.index());
  }
  for (const WireCredit& wc : lane.credits_due_) {
    apply_wire_credit(wc);
    mark_live(wc.to.index());
  }

  // Stalled on/off cycle: arrivals above still land (signals must keep
  // moving), but injection and the pipelines freeze — mirroring
  // tick_serial's gate exactly.
  if (frozen_this_cycle_) return;

  // NIC injection for this shard's nodes.  Wire flits never land on a
  // kLocal input, so each node's accept decision depends only on its own
  // router — the parallel scan makes the same choices as the serial one.
  const ShardRange range = shard_ranges_[s];
  if (shard_nic_backlog_[s] != 0) {
    std::uint32_t remaining = shard_nonempty_nics_[s];
    for (std::uint32_t n = range.begin; remaining != 0 && n < range.end; ++n) {
      if (nics_[n].queue.empty()) continue;
      --remaining;
      nic_inject_one(now, n, lane.delta_);
    }
  }

  // Router pipelines, ticked against the staging lane instead of the
  // network itself.
  if (config_.dense_tick) {
    for (std::uint32_t n = range.begin; n < range.end; ++n) {
      routers_[n].tick(now, lane);
      const bool live_now = !routers_[n].drained();
      if (collect_delta_ && static_cast<bool>(router_live_[n]) != live_now)
        touch_into(lane.delta_, n);
      set_live(n, live_now);
    }
  } else if (shard_live_[s] != 0) {
    std::uint32_t remaining = shard_live_[s];
    for (std::uint32_t n = range.begin; remaining != 0 && n < range.end; ++n) {
      if (!router_live_[n]) continue;
      --remaining;
      routers_[n].tick(now, lane);
      if (routers_[n].drained()) {
        set_live(n, false);
        if (collect_delta_) touch_into(lane.delta_, n);
      }
    }
  }
}

bool Network::idle() const {
  if (!flit_wire_.empty() || !credit_wire_.empty() ||
      !credit_quarantine_.empty())
    return false;
  for (const Flits f : shard_nic_backlog_)
    if (f != 0) return false;
  for (const std::uint32_t c : shard_live_)
    if (c != 0) return false;
  return true;
}

namespace {

void save_wire_flit(SnapshotWriter& w, const WireFlit& wf) {
  w.u64(wf.arrive);
  w.u32(wf.to.value());
  w.u8(static_cast<std::uint8_t>(wf.in));
  w.u32(wf.cls);
  save_flit(w, wf.flit);
}

WireFlit load_wire_flit(SnapshotReader& r, std::uint32_t num_nodes,
                        std::uint32_t num_vcs) {
  WireFlit wf;
  wf.arrive = r.u64();
  wf.to = NodeId(r.u32());
  const std::uint8_t in = r.u8();
  if (wf.to.value() >= num_nodes || in >= kNumDirections)
    throw SnapshotError("wire flit addresses a node or port off the fabric");
  wf.in = static_cast<Direction>(in);
  wf.cls = r.u32();
  if (wf.cls >= num_vcs)
    throw SnapshotError("wire flit names a VC class the fabric lacks");
  wf.flit = load_flit(r);
  return wf;
}

void save_wire_credit(SnapshotWriter& w, const WireCredit& wc) {
  w.u64(wc.arrive);
  w.u32(wc.to.value());
  w.u8(static_cast<std::uint8_t>(wc.out));
  w.u32(wc.cls);
  w.u8(static_cast<std::uint8_t>(wc.kind));
}

WireCredit load_wire_credit(SnapshotReader& r, std::uint32_t num_nodes,
                            std::uint32_t num_vcs) {
  WireCredit wc;
  wc.arrive = r.u64();
  wc.to = NodeId(r.u32());
  const std::uint8_t out = r.u8();
  if (wc.to.value() >= num_nodes || out >= kNumDirections)
    throw SnapshotError("wire credit addresses a node or port off the fabric");
  wc.out = static_cast<Direction>(out);
  wc.cls = r.u32();
  if (wc.cls >= num_vcs)
    throw SnapshotError("wire credit names a VC class the fabric lacks");
  const std::uint8_t kind = r.u8();
  if (kind > static_cast<std::uint8_t>(WireCredit::Kind::kOn))
    throw SnapshotError("wire credit has an unknown kind");
  wc.kind = static_cast<WireCredit::Kind>(kind);
  return wc;
}

}  // namespace

void Network::save_state(SnapshotWriter& w) const {
  // Geometry fingerprint, checked on restore.  Sharding (shards/threads)
  // is deliberately absent: it never changes results, so a snapshot is
  // free to restore under a different thread count.
  w.u8(static_cast<std::uint8_t>(config_.topo.kind));
  w.u32(config_.topo.width);
  w.u32(config_.topo.height);
  w.u32(config_.router.num_vcs);
  w.u32(config_.router.buffer_depth);
  w.str(config_.router.arbiter);
  w.u64(config_.link_latency);
  w.u8(static_cast<std::uint8_t>(config_.routing));
  w.u8(static_cast<std::uint8_t>(config_.router.flow_control));
  w.u8(static_cast<std::uint8_t>(config_.router.buffer_model));
  // Watermarks are saved post-resolution (the ctor replaced the 0 = auto
  // sentinels), so resolved state compares against resolved state.
  w.u32(config_.router.on_high);
  w.u32(config_.router.on_low);

  w.u64(now_);
  w.u64(injected_);
  w.u64(delivered_packets_);
  w.u64(delivered_flits_);
  w.i64(injected_flits_);

  w.u64(nics_.size());
  for (const Nic& nic : nics_) {
    save_sequence(w, nic.queue, [](SnapshotWriter& o,
                                   const PacketDescriptor& p) {
      save_packet_descriptor(o, p);
    });
    w.i64(nic.sent_of_current);
  }

  save_sequence(w, flit_wire_, save_wire_flit);
  save_sequence(w, credit_wire_, save_wire_credit);
  save_sequence(w, credit_quarantine_, save_wire_credit);

  w.u64(latency_by_source_.size());
  for (const RunningStat& s : latency_by_source_) s.save(w);
  latency_overall_.save(w);
  latency_quantiles_.save(w);

  w.u64(router_live_.size());
  for (const std::uint8_t live : router_live_) w.b(live != 0);
  for (const Router& router : routers_) router.save_state(w);
}

void Network::restore_state(SnapshotReader& r) {
  const auto kind = static_cast<TopologySpec::Kind>(r.u8());
  const std::uint32_t width = r.u32();
  const std::uint32_t height = r.u32();
  const std::uint32_t num_vcs = r.u32();
  const std::uint32_t buffer_depth = r.u32();
  const std::string arbiter = r.str();
  const Cycle link_latency = r.u64();
  const auto routing = static_cast<NetworkConfig::Routing>(r.u8());
  if (kind != config_.topo.kind || width != config_.topo.width ||
      height != config_.topo.height)
    throw SnapshotError("snapshot topology does not match this network");
  if (num_vcs != config_.router.num_vcs ||
      buffer_depth != config_.router.buffer_depth ||
      arbiter != config_.router.arbiter)
    throw SnapshotError("snapshot router config does not match this network");
  if (link_latency != config_.link_latency || routing != config_.routing)
    throw SnapshotError("snapshot link/routing config does not match this "
                        "network");
  const auto flow_control = static_cast<FlowControl>(r.u8());
  const auto buffer_model = static_cast<BufferModel>(r.u8());
  const std::uint32_t on_high = r.u32();
  const std::uint32_t on_low = r.u32();
  if (flow_control != config_.router.flow_control ||
      buffer_model != config_.router.buffer_model ||
      on_high != config_.router.on_high || on_low != config_.router.on_low)
    throw SnapshotError("snapshot flow-control config does not match this "
                        "network");

  now_ = r.u64();
  injected_ = r.u64();
  delivered_packets_ = r.u64();
  delivered_flits_ = r.u64();
  injected_flits_ = r.i64();

  if (r.u64() != nics_.size())
    throw SnapshotError("snapshot NIC count does not match this network");
  const auto num_shards = static_cast<std::uint32_t>(shard_ranges_.size());
  shard_nonempty_nics_.assign(num_shards, 0);
  shard_nic_backlog_.assign(num_shards, 0);
  for (std::size_t n = 0; n < nics_.size(); ++n) {
    Nic& nic = nics_[n];
    restore_sequence(r, nic.queue, [](SnapshotReader& i) {
      return load_packet_descriptor(i);
    });
    nic.sent_of_current = r.i64();
    if (!nic.queue.empty() &&
        (nic.sent_of_current < 0 ||
         nic.sent_of_current >= nic.queue.front().length))
      throw SnapshotError("NIC mid-packet cursor is outside its packet");
    // Per-shard injection bookkeeping is derived state: recompute it so
    // the shard geometry of the restoring network (which may differ from
    // the saving one) gets consistent counters.
    const std::uint32_t s = shard_of_[n];
    if (!nic.queue.empty()) ++shard_nonempty_nics_[s];
    Flits backlog = -nic.sent_of_current;
    for (std::size_t i = 0; i < nic.queue.size(); ++i) {
      const PacketDescriptor& p = nic.queue[i];
      if (p.length <= 0) throw SnapshotError("queued packet has no flits");
      backlog += p.length;
    }
    shard_nic_backlog_[s] += backlog;
  }

  const std::uint32_t nodes = topo_.num_nodes();
  const std::uint32_t vcs = config_.router.num_vcs;
  restore_sequence(r, flit_wire_, [nodes, vcs](SnapshotReader& i) {
    return load_wire_flit(i, nodes, vcs);
  });
  restore_sequence(r, credit_wire_, [nodes, vcs](SnapshotReader& i) {
    return load_wire_credit(i, nodes, vcs);
  });
  restore_sequence(r, credit_quarantine_, [nodes, vcs](SnapshotReader& i) {
    return load_wire_credit(i, nodes, vcs);
  });

  if (r.u64() != latency_by_source_.size())
    throw SnapshotError("snapshot source count does not match this network");
  for (RunningStat& s : latency_by_source_) s.restore(r);
  latency_overall_.restore(r);
  latency_quantiles_.restore(r);

  if (r.u64() != router_live_.size())
    throw SnapshotError("snapshot router count does not match this network");
  shard_live_.assign(num_shards, 0);
  for (std::size_t n = 0; n < router_live_.size(); ++n) {
    const bool live = r.b();
    router_live_[n] = live ? 1 : 0;
    if (live) ++shard_live_[shard_of_[n]];
  }
  for (Router& router : routers_) router.restore_state(r);
}

std::vector<Flits> Network::delivered_flits_by_flow(
    std::size_t num_flows) const {
  WS_CHECK(flow_delivered_flits_.size() <= num_flows);
  std::vector<Flits> counts(num_flows, 0);
  std::copy(flow_delivered_flits_.begin(), flow_delivered_flits_.end(),
            counts.begin());
  return counts;
}

}  // namespace wormsched::wormhole
