// Synthetic network traffic patterns (the standard interconnect workloads)
// and a Bernoulli packet source that drives a Network.
#pragma once

#include <cstdint>
#include <string>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "sim/engine.hpp"
#include "traffic/length.hpp"
#include "traffic/workload.hpp"
#include "wormhole/network.hpp"

namespace wormsched::wormhole {

struct PatternSpec {
  enum class Kind {
    kUniform,        // uniformly random destination != source
    kTranspose,      // (x, y) -> (y, x)
    kBitComplement,  // node id -> ~id (mod N)
    kHotspot,        // `hotspot_fraction` of packets target `hotspot`
    kNeighbor,       // east neighbour (wraps on mesh edges)
  };
  Kind kind = Kind::kUniform;
  double hotspot_fraction = 0.5;
  NodeId hotspot{0};

  [[nodiscard]] std::string describe() const;
};

/// Picks a destination for a packet from `src` (never returns `src`; for
/// degenerate patterns that would, the next node is used).
[[nodiscard]] NodeId pick_destination(const Topology& topo,
                                      const PatternSpec& pattern, NodeId src,
                                      Rng& rng);

/// Per-node Bernoulli packet source.  Flow id == source node id, which is
/// the granularity the network fairness comparisons use.
class NetworkTrafficSource final : public sim::Component {
 public:
  struct Config {
    double packets_per_node_per_cycle = 0.01;
    traffic::LengthSpec lengths = traffic::LengthSpec::uniform(1, 16);
    PatternSpec pattern;
    Cycle inject_until = kCycleMax;
    std::uint64_t seed = 99;
    /// Optional fault injector (not owned): scales the per-node Bernoulli
    /// rate (churn/burst) and can redirect packets to a hotspot.  The RNG
    /// draw schedule is unchanged — one draw per node per cycle — so runs
    /// differing only in faults stay draw-for-draw comparable.
    const FaultModel* faults = nullptr;
  };

  NetworkTrafficSource(Network& network, const Config& config);

  void tick(Cycle now) override;
  /// Idle once every injection cycle has been ticked through.  Honest
  /// idling is what lets Engine::run_until_idle skip drained stretches
  /// without losing Bernoulli draws; a source with `inject_until` left at
  /// kCycleMax never reports idle, so bound such runs with run_until()
  /// or run_until_idle's max_cycle.
  [[nodiscard]] bool idle() const override {
    return next_cycle_ >= config_.inject_until;
  }

  [[nodiscard]] std::uint64_t generated() const { return generated_; }

  /// Checkpoint/restore: the RNG state, packet-id cursor, generated count
  /// and the next un-ticked cycle.  Restore on a source built with the
  /// same Config (the config itself travels in the checkpoint container,
  /// not here) — the restored source continues the identical draw
  /// sequence.
  void save_state(SnapshotWriter& w) const;
  void restore_state(SnapshotReader& r);

 private:
  Network& network_;
  Config config_;
  Rng rng_;
  PacketId::rep_type next_id_ = 0;
  std::uint64_t generated_ = 0;
  Cycle next_cycle_ = 0;  // first cycle this source has not yet ticked
};

/// Replays an arrival trace (CSV or binary, already loaded) into a
/// Network.  Each trace entry becomes one packet: its source is endpoint
/// `flow mod num_endpoints` (flow/fairness id == source node, matching
/// NetworkTrafficSource), its length comes from the entry, and its
/// destination is drawn from `pattern` with the source's RNG — traces
/// carry *when/who/how much*, the pattern supplies *where to*, so one
/// trace can drive many topologies.
class TraceTrafficSource final : public sim::Component {
 public:
  struct Config {
    /// Not owned; must outlive the source.  Entries must be time-ordered
    /// (both trace loaders enforce this).
    const traffic::Trace* trace = nullptr;
    PatternSpec pattern;
    std::uint64_t seed = 99;
  };

  TraceTrafficSource(Network& network, const Config& config);

  void tick(Cycle now) override;
  /// Idle once the replay cursor is past the last entry.
  [[nodiscard]] bool idle() const override {
    return cursor_ >= config_.trace->entries.size();
  }

  [[nodiscard]] std::uint64_t generated() const { return generated_; }
  /// First cycle with no remaining entries (0 for an empty trace).
  [[nodiscard]] Cycle inject_until() const {
    return config_.trace->entries.empty()
               ? 0
               : config_.trace->entries.back().cycle + 1;
  }

  /// Checkpoint/restore: the RNG state, replay cursor and counters.
  /// Restore on a source built over the identical trace.
  void save_state(SnapshotWriter& w) const;
  void restore_state(SnapshotReader& r);

 private:
  Network& network_;
  Config config_;
  Rng rng_;
  std::size_t cursor_ = 0;  // next trace entry to inject
  PacketId::rep_type next_id_ = 0;
  std::uint64_t generated_ = 0;
};

}  // namespace wormsched::wormhole
