#include "wormhole/shard.hpp"

#include "common/assert.hpp"
#include "wormhole/network.hpp"

namespace wormsched::wormhole {

void ShardLane::send_flit(NodeId from, Direction out, const Flit& flit) {
  const NodeId to = net_->topo_.neighbor(from, out);
  WS_CHECK_MSG(to.is_valid(), "flit sent off the edge of the fabric");
  const auto cls = static_cast<std::uint32_t>(flit.vc_class.value());
  out_flits_.push_back(WireFlit{net_->now_ + net_->config_.link_latency, to,
                                net_->topo_.peer_port(from, out), cls, flit});
  if (net_->collect_delta_) {
    net_->touch_into(delta_, from.index());
    delta_.flits_to_wire.push_back(
        CycleDelta::UnitEvent{net_->delta_unit(from, out, cls), from.value()});
  }
}

void ShardLane::eject(NodeId node, const Flit& flit, Cycle) {
  // Staged whole: the delivered log, the latency stats (whose
  // floating-point summation order must match the serial run), and the
  // ejection delta all happen at commit, in serial router order.
  ejections_.push_back(StagedEjection{node, flit});
}

void ShardLane::send_credit(NodeId node, Direction in, std::uint32_t cls) {
  const NodeId upstream = net_->topo_.neighbor(node, in);
  WS_CHECK(upstream.is_valid());
  out_credits_.push_back(WireCredit{net_->now_ + net_->config_.link_latency,
                                    upstream, net_->topo_.peer_port(node, in),
                                    cls, WireCredit::Kind::kCredit});
  if (net_->collect_delta_) {
    net_->touch_into(delta_, node.index());
    delta_.credits_to_wire.push_back(
        CycleDelta::UnitEvent{net_->delta_unit(node, in, cls), node.value()});
  }
}

void ShardLane::send_signal(NodeId node, Direction in, std::uint32_t cls,
                            bool on) {
  const NodeId upstream = net_->topo_.neighbor(node, in);
  WS_CHECK(upstream.is_valid());
  out_credits_.push_back(WireCredit{
      net_->now_ + net_->config_.link_latency, upstream,
      net_->topo_.peer_port(node, in), cls,
      on ? WireCredit::Kind::kOn : WireCredit::Kind::kOff});
  if (net_->collect_delta_) {
    net_->touch_into(delta_, node.index());
    delta_.credits_to_wire.push_back(
        CycleDelta::UnitEvent{net_->delta_unit(node, in, cls), node.value()});
  }
}

RouteDecision ShardLane::route(NodeId node, const Flit& flit,
                               Direction in_from, std::uint32_t in_class) {
  // Topology routing is const and stateless: safe from any lane.
  return net_->topo_.route(node, flit.dest, in_from, in_class);
}

void ShardLane::route_candidates(NodeId node, const Flit& flit,
                                 Direction in_from, std::uint32_t in_class,
                                 RouteCandidates& out) {
  if (net_->config_.routing == NetworkConfig::Routing::kWestFirst) {
    net_->topo_.west_first_candidates(node, flit.dest, in_from, in_class, out);
    return;
  }
  if (net_->config_.routing == NetworkConfig::Routing::kUpDownAdaptive) {
    net_->topo_.updown_candidates(node, flit.dest, in_from, in_class, out);
    return;
  }
  out.push_back(route(node, flit, in_from, in_class));
}

void ShardLane::clear_cycle() {
  quarantine_due_.clear();
  flits_due_.clear();
  credits_due_.clear();
  out_flits_.clear();
  out_credits_.clear();
  ejections_.clear();
  delta_.clear();
}

}  // namespace wormsched::wormhole
