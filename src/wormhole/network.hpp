// Whole-network wormhole simulator: routers + links + NICs.
//
// Cycle-accurate at flit granularity with credit-based flow control and a
// configurable per-output-queue arbiter in every router (ERR by default).
// Used by the integration tests (delivery, credit conservation, deadlock
// freedom) and the A4 network bench (ERR vs RR/FCFS under hotspot
// traffic).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/ring_buffer.hpp"
#include "common/shard_partition.hpp"
#include "common/stats.hpp"
#include "common/tick_team.hpp"
#include "common/types.hpp"
#include "metrics/perf_counters.hpp"
#include "sim/engine.hpp"
#include "wormhole/fault_hooks.hpp"
#include "wormhole/flit.hpp"
#include "wormhole/observer.hpp"
#include "wormhole/router.hpp"
#include "wormhole/shard.hpp"
#include "wormhole/topology.hpp"

namespace wormsched::wormhole {

struct NetworkConfig {
  enum class Routing {
    kDor,        // deterministic: XY on mesh/torus, hashed up/down on
                 // the fat tree
    kWestFirst,  // adaptive west-first turn model (mesh only)
    kUpDownAdaptive,  // adaptive up/down — all uplinks while climbing
                      // (fat tree only)
  };

  TopologySpec topo = TopologySpec::mesh(4, 4);
  RouterConfig router;
  std::uint32_t link_latency = 1;  // cycles; >= 1
  Routing routing = Routing::kDor;
  /// Legacy full-fabric ticking: every router ticks every cycle even when
  /// drained.  Results are bit-identical to the default active-set
  /// scheduling (a drained router's tick is a no-op by construction);
  /// kept as the perf baseline bench_perf_kernel measures against.
  bool dense_tick = false;
  /// Optional fault injector (not owned; must outlive the network).
  /// nullptr = fault-free.  Faults perturb *timing* (stalled wires,
  /// quarantined credits), never drop flits or credits, so every
  /// conservation invariant holds with faults enabled.
  const FaultModel* faults = nullptr;
  /// Shard domains for the multi-threaded tick (>= 1).  1 (the default)
  /// runs the serial kernel; > 1 partitions routers into contiguous
  /// domains and runs the three-phase classify/compute/commit tick,
  /// bit-identical to the serial kernel by construction (see shard.hpp).
  /// Clamped to the router count (a 1x1 mesh with shards = 8 is serial).
  std::uint32_t shards = 1;
  /// Worker lanes ticking the shard domains (>= 1; clamped to `shards`).
  /// A lane handles shards lane, lane + threads, ... — so threads <
  /// shards oversubscribes domains onto lanes without changing results.
  /// 1 with shards > 1 runs the sharded algorithm single-threaded (the
  /// staging-path differential the tests lean on).
  std::uint32_t threads = 1;
  /// Keep the per-packet delivered log.  The log grows with the run, so
  /// soak mode turns it off and reads the O(1) accumulators instead
  /// (delivered_packets(), latency_overall(), latency_quantiles()); every
  /// counter and statistic is maintained identically either way.
  bool record_delivered = true;
};

struct DeliveredPacket {
  PacketId id;
  FlowId flow;
  NodeId source;
  NodeId dest;
  Flits length = 0;
  Cycle created = 0;
  Cycle delivered = 0;
};

class Network final : public sim::Component, private RouterEnv {
 public:
  // Wire records live at namespace scope (shard.hpp) so the shard lanes
  // can stage them; the nested names remain for the audit accessors.
  using WireFlit = wormhole::WireFlit;
  using WireCredit = wormhole::WireCredit;

  explicit Network(const NetworkConfig& config);

  /// Queues a packet at its source NIC.  Unbounded NIC queue — sources are
  /// modelled as having their own memory; fairness pressure happens inside
  /// the fabric.
  void inject(Cycle now, const PacketDescriptor& packet);

  /// One network cycle: deliver in-flight flits/credits, inject from NICs
  /// (one flit per node per cycle), then tick the active routers.  A
  /// router is active while it holds flits or owns an output; it enrolls
  /// when a flit or credit reaches it and retires once drained, so an
  /// idle fabric costs nothing per cycle.  With config.shards > 1 the
  /// cycle runs as the three-phase sharded tick (see shard.hpp) —
  /// bit-identical results — unless a trace sink or perf counters are
  /// attached, which fall back to the serial kernel (neither sink is
  /// thread-safe; results are identical either way).
  void tick(Cycle now) override;
  /// O(shards): counters track NIC backlog and live routers per shard
  /// (one shard when serial); the wires are FIFOs with O(1) emptiness
  /// checks.
  [[nodiscard]] bool idle() const override;

  [[nodiscard]] const Topology& topology() const { return topo_; }
  [[nodiscard]] Router& router(NodeId node) { return routers_[node.index()]; }

  [[nodiscard]] const std::vector<DeliveredPacket>& delivered() const {
    return delivered_;
  }
  [[nodiscard]] std::uint64_t injected_packets() const { return injected_; }
  /// Packets fully delivered (tail ejected).  O(1); counted even when
  /// config.record_delivered is off.
  [[nodiscard]] std::uint64_t delivered_packets() const {
    return delivered_packets_;
  }
  [[nodiscard]] std::uint64_t delivered_flits() const {
    return delivered_flits_;
  }
  /// End-to-end packet latency (inject call to tail ejection) per source.
  /// O(1): the stats accumulate at ejection time, not by scanning the
  /// delivered log (which grows with the run).
  [[nodiscard]] const RunningStat& latency_by_source(NodeId source) const {
    return latency_by_source_[source.index()];
  }
  [[nodiscard]] const RunningStat& latency_overall() const {
    return latency_overall_;
  }
  /// Reservoir-sampled packet-latency quantiles, fed at tail ejection in
  /// delivery order — the same samples, in the same order, a post-run
  /// scan of the delivered log would feed, so consumers get identical
  /// p99s without the log.
  [[nodiscard]] const QuantileEstimator& latency_quantiles() const {
    return latency_quantiles_;
  }
  /// Delivered flit counts keyed by flow id (for fairness comparisons).
  /// O(num_flows): folded into a running accumulator at tail ejection —
  /// never a scan of the delivered log — so it works with
  /// config.record_delivered off and stays flat-RSS on long runs.
  [[nodiscard]] std::vector<Flits> delivered_flits_by_flow(
      std::size_t num_flows) const;

  /// Attaches a cycle-end observer (not owned; must outlive its
  /// attachment).  Any number may be attached at once — the auditor, a
  /// trace probe, and ad-hoc test hooks compose — and all are notified in
  /// attachment order after every tick in both the active-set and dense
  /// paths.  An observer whose wants_delta() returns true switches on
  /// CycleDelta collection for the whole fabric; wants_delta() is
  /// re-sampled only at attach/detach time, so its answer must be stable
  /// while attached.
  void attach_observer(NetworkObserver* observer) {
    observers_.attach(observer);
    refresh_delta_collection();
  }
  /// Detaches `observer`; a no-op if it is not attached.  Delta
  /// collection stops (and any half-built delta is discarded) once no
  /// remaining observer wants it.
  void detach_observer(NetworkObserver* observer) {
    observers_.detach(observer);
    refresh_delta_collection();
  }
  [[nodiscard]] const ObserverMux& observers() const { return observers_; }
  /// Whether the network is accumulating a CycleDelta each tick.
  [[nodiscard]] bool collecting_delta() const { return collect_delta_; }

  /// Attaches a per-stage perf-counter sink (not owned) to the network
  /// and every router; nullptr (the default) detaches and keeps the hot
  /// path uninstrumented.
  void set_perf_counters(metrics::PerfCounters* counters);

  /// Attaches a structured event sink (not owned) to the network and
  /// every router; nullptr (the default) detaches.  The network stamps
  /// the sink's clock each tick and records flit injection/ejection and
  /// fault-injector actions; routers record output-port stalls.
  void set_trace_sink(obs::TraceSink* sink);

  /// --- Audit accessors (read-only views for src/validate) -------------
  [[nodiscard]] const NetworkConfig& config() const { return config_; }
  [[nodiscard]] const Router& router(NodeId node) const {
    return routers_[node.index()];
  }
  /// Total flits of every packet ever passed to inject().
  [[nodiscard]] Flits injected_flits() const { return injected_flits_; }
  /// Flits still queued at source NICs (not yet entered the fabric).
  /// O(shards): the counters are per shard domain so the compute phase
  /// never writes a shared cache line.
  [[nodiscard]] Flits nic_backlog_flits() const {
    Flits total = 0;
    for (const Flits f : shard_nic_backlog_) total += f;
    return total;
  }
  [[nodiscard]] const RingBuffer<WireFlit>& flit_wire() const {
    return flit_wire_;
  }
  [[nodiscard]] const RingBuffer<WireCredit>& credit_wire() const {
    return credit_wire_;
  }
  /// Credits withheld by a fault's starvation window (empty when
  /// fault-free).
  [[nodiscard]] const RingBuffer<WireCredit>& credit_quarantine() const {
    return credit_quarantine_;
  }
  /// Whether router `node` is enrolled in the active set this cycle.
  [[nodiscard]] bool router_live(NodeId node) const {
    return router_live_[node.index()] != 0;
  }
  [[nodiscard]] std::uint32_t live_router_count() const {
    std::uint32_t total = 0;
    for (const std::uint32_t c : shard_live_) total += c;
    return total;
  }
  /// Effective shard domains (config.shards clamped to the router count).
  [[nodiscard]] std::uint32_t shard_count() const {
    return static_cast<std::uint32_t>(shard_ranges_.size());
  }
  /// Worker lanes the sharded tick uses (1 when the tick is serial).
  [[nodiscard]] std::uint32_t tick_lanes() const {
    return team_ != nullptr ? team_->lanes() : 1;
  }

  /// Checkpoint/restore of the full fabric: NIC queues, in-flight wire
  /// flits and credits (quarantine included), every router pipeline and
  /// arbiter, the latency accumulators and counters, and the clock.
  /// Geometry (topology, VC/buffer/latency/routing/arbiter config) is
  /// embedded and checked on restore — a snapshot only restores into a
  /// freshly constructed network with matching config.  Sharding
  /// (config.shards/threads) is NOT part of the snapshot: the per-shard
  /// counters are recomputed, so a serial checkpoint restores into a
  /// sharded network and vice versa, bit-identically.  The delivered log
  /// is not serialized (it is derived output, unbounded under soak);
  /// restored runs continue the log from empty.
  void save_state(SnapshotWriter& w) const;
  void restore_state(SnapshotReader& r);

 private:
  friend class ShardLane;

  // RouterEnv:
  void send_flit(NodeId from, Direction out, const Flit& flit) override;
  void eject(NodeId node, const Flit& flit, Cycle now) override;
  void send_credit(NodeId node, Direction in, std::uint32_t cls) override;
  void send_signal(NodeId node, Direction in, std::uint32_t cls,
                   bool on) override;
  RouteDecision route(NodeId node, const Flit& flit, Direction in_from,
                      std::uint32_t in_class) override;
  void route_candidates(NodeId node, const Flit& flit, Direction in_from,
                        std::uint32_t in_class,
                        RouteCandidates& out) override;

  /// Dispatches a delivered credit-wire entry by kind: a credit to
  /// accept_credit, an on/off signal to accept_signal.
  void apply_wire_credit(const WireCredit& wc);

  struct Nic {
    RingBuffer<PacketDescriptor> queue;
    Flits sent_of_current = 0;
  };

  /// Enrolls router `index` in the active set (idempotent).
  void mark_live(std::size_t index);
  /// Sets router `index`'s active flag outright (dense-mode bookkeeping).
  void set_live(std::size_t index, bool live);

  /// The serial kernel (also the fallback when tracing or perf counters
  /// are attached) and the three-phase sharded tick.  Bit-identical.
  void tick_serial(Cycle now);
  void tick_sharded(Cycle now);
  /// Phase 1 body for one shard: deliver the classified arrivals, inject
  /// from the shard's NICs, tick the shard's routers against its lane.
  void compute_shard(Cycle now, std::uint32_t s);
  /// Moves one flit of NIC `n`'s front packet into the router if the
  /// local VC has room; delta events go to `delta` (the global delta in
  /// the serial tick, the owning lane's in a sharded one).
  void nic_inject_one(Cycle now, std::uint32_t n, CycleDelta& delta);

  /// Adds router `index` to the cycle's touched set, recording it into
  /// `delta`'s touched list (idempotent across all deltas of the cycle:
  /// the flag array is global and shard lanes only ever flag their own
  /// routers).  Callers guard on collect_delta_.
  void touch_into(CycleDelta& delta, std::size_t index) {
    if (touched_flag_[index]) return;
    touched_flag_[index] = 1;
    delta.touched.push_back(static_cast<std::uint32_t>(index));
  }
  /// Serial-path shorthand: touch into the global delta.
  void touch(std::size_t index) { touch_into(delta_, index); }
  /// Global unit key for CycleDelta events (see UnitEvent in
  /// observer.hpp); emission sites precompute it so consumers pay no
  /// per-event arithmetic.
  [[nodiscard]] std::uint32_t delta_unit(NodeId node, Direction d,
                                         std::uint32_t cls) const {
    return (node.value() * kNumDirections + static_cast<std::uint32_t>(d)) *
               config_.router.num_vcs +
           cls;
  }
  /// Re-derives collect_delta_ from the attached observers; discards any
  /// half-built delta when collection switches off.
  void refresh_delta_collection();

  NetworkConfig config_;
  Topology topo_;
  std::vector<Router> routers_;
  std::vector<Nic> nics_;
  // Constant latency means launch order == arrival order: plain FIFOs.
  RingBuffer<WireFlit> flit_wire_;
  RingBuffer<WireCredit> credit_wire_;
  // Credits held back by a fault's starvation window; release cycles are
  // non-decreasing (FaultModel contract), so this too is a FIFO.
  RingBuffer<WireCredit> credit_quarantine_;
  std::vector<DeliveredPacket> delivered_;
  // Streaming per-flow delivered-flit totals (grown on first delivery of
  // a flow).  Like the latency stats — and unlike the delivered log — it
  // is derived observability state and not part of the snapshot; a
  // restored network counts deliveries from the restore point, exactly
  // as the log-scanning implementation did.
  std::vector<Flits> flow_delivered_flits_;
  std::vector<RunningStat> latency_by_source_;  // indexed by source node
  RunningStat latency_overall_;
  QuantileEstimator latency_quantiles_;
  std::uint64_t injected_ = 0;
  std::uint64_t delivered_packets_ = 0;
  std::uint64_t delivered_flits_ = 0;
  Flits injected_flits_ = 0;
  ObserverMux observers_;
  // Per-cycle movement record handed to observers.  Collection runs only
  // while some attached observer wants it (collect_delta_); the vectors
  // are cleared — never shrunk — after dispatch, so steady-state
  // collection allocates nothing.  touched_flag_ dedups the touched list.
  CycleDelta delta_;
  std::vector<std::uint8_t> touched_flag_;
  bool collect_delta_ = false;
  // On/off + finite buffers: a link-stall fault freezes NIC injection and
  // the router pipelines for the cycle (see the ctor comment); computed
  // once so the tick hot path tests a bool.
  bool freeze_on_stall_ = false;
  // Set per cycle by tick_sharded so compute_shard freezes its shard
  // without re-deriving the fault decision on every lane.
  bool frozen_this_cycle_ = false;
  Cycle now_ = 0;  // cached for send_flit latency stamping
  // Active-set bookkeeping.  router_live_[n] means router n must tick
  // this cycle (it holds work or just received a flit/credit); the
  // per-shard counters make idle() O(shards).  Maintained identically in
  // dense mode.  Counters are split per shard domain so the parallel
  // compute phase updates them without sharing a cache line; the serial
  // kernel uses the same arrays (one shard when config.shards == 1).
  std::vector<std::uint8_t> router_live_;
  std::vector<std::uint32_t> shard_live_;          // live routers per shard
  std::vector<std::uint32_t> shard_nonempty_nics_;  // NICs with backlog
  std::vector<Flits> shard_nic_backlog_;            // queued flits per shard
  // Sharding geometry: contiguous ascending router ranges plus the
  // inverse map (node index -> owning shard).
  std::vector<ShardRange> shard_ranges_;
  std::vector<std::uint32_t> shard_of_;
  // Per-shard staging lanes + the persistent worker team, built only when
  // config.shards > 1.
  std::vector<ShardLane> lanes_;
  std::unique_ptr<TickTeam> team_;
  metrics::PerfCounters* perf_ = nullptr;
  obs::TraceSink* trace_ = nullptr;
};

}  // namespace wormsched::wormhole
