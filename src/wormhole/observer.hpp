// Composable network observation: per-cycle deltas and an observer mux.
//
// The wormhole network used to expose a single `NetworkObserver*` slot,
// which meant the invariant auditor, tracing, and any future cycle-end
// consumer fought over one attachment point.  ObserverMux lets any number
// of observers subscribe at once, and the network hands every observer a
// CycleDelta — the exact set of routers, wire movements, injections and
// ejections the cycle produced — so an observer can audit in O(touched)
// instead of rescanning the fabric.
//
// Cost contract:
//   * no observer attached — one emptiness test per cycle, no delta
//     accumulation, no virtual calls;
//   * observers attached, none wants the delta — one virtual call per
//     observer per cycle; delta collection stays off so the hot-path
//     movement sites pay only a predictable dead branch;
//   * an observer returns true from wants_delta() — the network records
//     each movement into reusable vectors (no steady-state allocation)
//     and clears them after the observers run.
#pragma once

#include <cstdint>
#include <vector>

#include "common/assert.hpp"
#include "common/types.hpp"
#include "wormhole/topology.hpp"

namespace wormsched::wormhole {

class Network;

/// Everything that moved during one network cycle, at unit granularity.
/// Event vectors are reused cycle to cycle (cleared, never shrunk), so
/// steady-state collection is allocation-free once high-water marks are
/// reached.
struct CycleDelta {
  /// One flit or credit crossing a unit boundary.  `unit` is the global
  /// unit key `(node * kNumDirections + port) * num_vcs + cls`, where
  /// `port` is the output direction for wire-bound flits and delivered
  /// credits, and the input direction for delivered flits and launched
  /// credits; `unit - node * kNumDirections * num_vcs` is the router-local
  /// unit index (Router::unit_direction / unit_class decode it).  The key
  /// is precomputed at the emission site — where node, port, and class
  /// are already in registers — so consumers indexing per-unit state pay
  /// no arithmetic per event.
  struct UnitEvent {
    std::uint32_t unit;
    std::uint32_t node;
  };

  /// Routers whose auditable state changed this cycle, deduplicated: an
  /// event below landed on them, or their active-set liveness flipped.
  /// (A live router that ticks without moving anything cannot change its
  /// buffered count, credits, or liveness, so it is NOT listed.)
  std::vector<std::uint32_t> touched;
  /// Router `node` pushed a flit onto the link leaving the output unit.
  std::vector<UnitEvent> flits_to_wire;
  /// The wire delivered a flit into router `node`'s input unit.
  std::vector<UnitEvent> flits_from_wire;
  /// Router `node` popped the input unit's front flit and launched the
  /// credit upstream (non-local inputs only; local pops return no credit).
  std::vector<UnitEvent> credits_to_wire;
  /// A credit reached router `node`'s output unit — either straight off
  /// the wire or released from a fault's quarantine.
  std::vector<UnitEvent> credits_from_wire;
  /// One entry per flit a NIC moved into its router's local input VC.
  std::vector<std::uint32_t> injections;
  /// One entry per flit ejected to a NIC sink.
  std::vector<std::uint32_t> ejections;
  /// Flits added to NIC backlogs by Network::inject() calls this cycle.
  Flits enqueued_flits = 0;

  void clear() {
    touched.clear();
    flits_to_wire.clear();
    flits_from_wire.clear();
    credits_to_wire.clear();
    credits_from_wire.clear();
    injections.clear();
    ejections.clear();
    enqueued_flits = 0;
  }
};

/// Observes the network after every completed cycle.  The runtime
/// invariant auditor (src/validate) implements this to check flit/credit
/// conservation and active-set consistency while a run is in flight; the
/// read-only audit accessors on Network/Router exist for it.
class NetworkObserver {
 public:
  virtual ~NetworkObserver() = default;
  virtual void on_cycle_end(Cycle now, const Network& network,
                            const CycleDelta& delta) = 0;
  /// Return true to make the network collect a CycleDelta.  Collection is
  /// enabled while *any* attached observer wants it; observers that do
  /// not will simply see the populated delta.
  [[nodiscard]] virtual bool wants_delta() const { return false; }
};

/// Fans one cycle-end notification out to any number of observers, in
/// attachment order.  Replaces the old single `NetworkObserver*` slot so
/// the auditor, tracing, and ad-hoc probes can coexist on one network.
class ObserverMux {
 public:
  /// Attaches `observer` (not owned; must outlive its attachment).
  /// Attaching the same observer twice is a checked error.
  void attach(NetworkObserver* observer) {
    WS_CHECK(observer != nullptr);
    for (const NetworkObserver* existing : observers_)
      WS_CHECK_MSG(existing != observer, "observer attached twice");
    observers_.push_back(observer);
  }

  /// Detaches `observer`; a no-op if it is not attached.
  void detach(NetworkObserver* observer) {
    for (std::size_t i = 0; i < observers_.size(); ++i) {
      if (observers_[i] == observer) {
        observers_.erase(observers_.begin() +
                         static_cast<std::ptrdiff_t>(i));
        return;
      }
    }
  }

  [[nodiscard]] bool empty() const { return observers_.empty(); }
  [[nodiscard]] std::size_t size() const { return observers_.size(); }

  [[nodiscard]] bool any_wants_delta() const {
    for (const NetworkObserver* o : observers_)
      if (o->wants_delta()) return true;
    return false;
  }

  void on_cycle_end(Cycle now, const Network& network,
                    const CycleDelta& delta) {
    for (NetworkObserver* o : observers_) o->on_cycle_end(now, network, delta);
  }

 private:
  std::vector<NetworkObserver*> observers_;
};

}  // namespace wormsched::wormhole
