// Single-output wormhole switch model.
//
// N input queues feed one output queue/link through a packet-granular
// arbiter.  The downstream stage applies backpressure: in stalled cycles
// the worm occupying the output cannot advance, yet — this is the paper's
// central observation — no other packet may use the output either, because
// wormhole switching forbids interleaving.  A packet of length L can
// therefore occupy the output for far more than L cycles, and only
// occupancy-charging disciplines (ERR in cycle mode) remain fair.
//
// This model backs the A4 ablation bench (cycle- vs flit-accounting under
// stalls) and the wormhole integration tests.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/ring_buffer.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/types.hpp"
#include "sim/engine.hpp"
#include "wormhole/arbiter.hpp"

namespace wormsched::wormhole {

struct SwitchConfig {
  std::size_t num_inputs = 4;
  /// Arbiter name per make_arbiter(): "err-cycles", "err-flits", "rr",
  /// "fcfs".
  std::string arbiter = "err-cycles";
  /// Independent per-cycle probability that downstream backpressure stalls
  /// the output (0 = never).
  double stall_probability = 0.0;
  /// Per-input stall probabilities: while input i's packet owns the
  /// output, it stalls with per_input_stall[i] each cycle (models flows
  /// whose *paths* are congested downstream — the situation where a
  /// packet's occupancy diverges from its length per flow).  Empty =
  /// disabled; combines with the global settings above.
  std::vector<double> per_input_stall;
  /// Deterministic burst stalls: every `stall_period` cycles the output is
  /// blocked for `stall_burst` cycles (0 = disabled).  Models a congested
  /// downstream switch draining periodically.
  Cycle stall_period = 0;
  Cycle stall_burst = 0;
  std::uint64_t seed = 7;
};

class WormholeSwitch final : public sim::Component {
 public:
  explicit WormholeSwitch(const SwitchConfig& config);

  /// Queues a packet of `length` flits at input `input`.
  void inject(Cycle now, FlowId input, Flits length);

  /// One switch cycle: grant the output if free, then advance the bound
  /// worm by one flit unless the downstream stalls it.
  void tick(Cycle now) override;
  [[nodiscard]] bool idle() const override;

  /// --- Statistics -----------------------------------------------------
  [[nodiscard]] Flits forwarded_flits(FlowId input) const {
    return stats_[input.index()].flits;
  }
  /// Cycles the flow's packets owned the output (moving or stalled).
  [[nodiscard]] std::uint64_t occupancy_cycles(FlowId input) const {
    return stats_[input.index()].occupancy;
  }
  [[nodiscard]] std::uint64_t packets_delivered(FlowId input) const {
    return stats_[input.index()].packets;
  }
  [[nodiscard]] const RunningStat& delay(FlowId input) const {
    return stats_[input.index()].delay;
  }
  [[nodiscard]] std::size_t queue_length(FlowId input) const {
    return queues_[input.index()].size();
  }
  [[nodiscard]] std::uint64_t stalled_cycles() const { return stalled_; }
  /// Largest output occupancy (cycles) of any single packet so far — the
  /// paper's "m" in the occupancy domain, where the ERR-cycles bound
  /// FM < 3m applies.
  [[nodiscard]] std::uint64_t max_packet_occupancy() const {
    return max_packet_occupancy_;
  }
  [[nodiscard]] PortArbiter& arbiter() { return *arbiter_; }

 private:
  struct QueuedPacket {
    Flits length;
    Cycle injected;
  };
  struct InputStats {
    Flits flits = 0;
    std::uint64_t occupancy = 0;
    std::uint64_t packets = 0;
    RunningStat delay;
  };

  [[nodiscard]] bool downstream_stalled(Cycle now, FlowId owner);

  SwitchConfig config_;
  std::unique_ptr<PortArbiter> arbiter_;
  std::vector<RingBuffer<QueuedPacket>> queues_;
  std::vector<InputStats> stats_;
  Rng rng_;

  // Worm currently occupying the output.
  bool bound_ = false;
  FlowId owner_;
  Flits remaining_ = 0;
  std::uint64_t current_packet_occupancy_ = 0;
  std::uint64_t max_packet_occupancy_ = 0;
  std::uint64_t stalled_ = 0;
  Flits backlog_ = 0;
};

}  // namespace wormsched::wormhole
