#include "wormhole/topology.hpp"

#include <sstream>

#include "common/assert.hpp"

namespace wormsched::wormhole {

const char* direction_name(Direction d) {
  switch (d) {
    case Direction::kLocal: return "local";
    case Direction::kEast: return "east";
    case Direction::kWest: return "west";
    case Direction::kNorth: return "north";
    case Direction::kSouth: return "south";
  }
  return "?";
}

std::string TopologySpec::describe() const {
  std::ostringstream os;
  os << (kind == Kind::kMesh ? "mesh" : "torus") << " " << width << "x"
     << height;
  return os.str();
}

Topology::Topology(const TopologySpec& spec) : spec_(spec) {
  WS_CHECK(spec.width >= 1 && spec.height >= 1);
  if (spec.kind == TopologySpec::Kind::kTorus) {
    WS_CHECK_MSG(spec.width >= 2 && spec.height >= 2,
                 "torus needs at least 2 nodes per dimension");
  }
}

Coord Topology::coord(NodeId node) const {
  WS_CHECK(node.value() < num_nodes());
  return Coord{node.value() % spec_.width, node.value() / spec_.width};
}

NodeId Topology::node(Coord c) const {
  WS_CHECK(c.x < spec_.width && c.y < spec_.height);
  return NodeId(c.y * spec_.width + c.x);
}

NodeId Topology::neighbor(NodeId n, Direction d) const {
  const Coord c = coord(n);
  const bool torus = spec_.kind == TopologySpec::Kind::kTorus;
  Coord target = c;
  switch (d) {
    case Direction::kLocal:
      return n;
    case Direction::kEast:
      if (c.x + 1 < spec_.width) {
        target.x = c.x + 1;
      } else if (torus) {
        target.x = 0;
      } else {
        return NodeId::invalid();
      }
      break;
    case Direction::kWest:
      if (c.x > 0) {
        target.x = c.x - 1;
      } else if (torus) {
        target.x = spec_.width - 1;
      } else {
        return NodeId::invalid();
      }
      break;
    case Direction::kNorth:
      if (c.y > 0) {
        target.y = c.y - 1;
      } else if (torus) {
        target.y = spec_.height - 1;
      } else {
        return NodeId::invalid();
      }
      break;
    case Direction::kSouth:
      if (c.y + 1 < spec_.height) {
        target.y = c.y + 1;
      } else if (torus) {
        target.y = 0;
      } else {
        return NodeId::invalid();
      }
      break;
  }
  return node(target);
}

bool Topology::is_wrap_link(NodeId n, Direction d) const {
  if (spec_.kind != TopologySpec::Kind::kTorus) return false;
  const Coord c = coord(n);
  switch (d) {
    case Direction::kEast: return c.x + 1 == spec_.width;
    case Direction::kWest: return c.x == 0;
    case Direction::kNorth: return c.y == 0;
    case Direction::kSouth: return c.y + 1 == spec_.height;
    case Direction::kLocal: return false;
  }
  return false;
}

Direction Topology::x_step(std::uint32_t from_x, std::uint32_t to_x,
                           bool* wraps) const {
  WS_CHECK(from_x != to_x);
  *wraps = false;
  if (spec_.kind == TopologySpec::Kind::kMesh)
    return to_x > from_x ? Direction::kEast : Direction::kWest;
  // Torus: go the shorter way round (ties eastward).
  const std::uint32_t east_dist = (to_x + spec_.width - from_x) % spec_.width;
  const Direction dir =
      east_dist * 2 <= spec_.width ? Direction::kEast : Direction::kWest;
  *wraps = (dir == Direction::kEast && from_x + 1 == spec_.width) ||
           (dir == Direction::kWest && from_x == 0);
  return dir;
}

Direction Topology::y_step(std::uint32_t from_y, std::uint32_t to_y,
                           bool* wraps) const {
  WS_CHECK(from_y != to_y);
  *wraps = false;
  if (spec_.kind == TopologySpec::Kind::kMesh)
    return to_y > from_y ? Direction::kSouth : Direction::kNorth;
  const std::uint32_t south_dist =
      (to_y + spec_.height - from_y) % spec_.height;
  const Direction dir =
      south_dist * 2 <= spec_.height ? Direction::kSouth : Direction::kNorth;
  *wraps = (dir == Direction::kSouth && from_y + 1 == spec_.height) ||
           (dir == Direction::kNorth && from_y == 0);
  return dir;
}

RouteDecision Topology::route(NodeId current, NodeId dest, Direction in_from,
                              std::uint32_t in_class) const {
  RouteDecision decision;
  if (current == dest) {
    decision.out = Direction::kLocal;
    decision.out_class = in_class;
    return decision;
  }
  const Coord c = coord(current);
  const Coord d = coord(dest);
  bool wraps = false;
  if (c.x != d.x) {
    decision.out = x_step(c.x, d.x, &wraps);
  } else {
    decision.out = y_step(c.y, d.y, &wraps);
  }
  decision.wraps = wraps;
  // Dateline rule: within one dimension the class persists and jumps to 1
  // at the wrap link; turning into a new dimension (or leaving the NIC)
  // restarts at class 0.  Deadlock-free with XY order because dependency
  // cycles only exist inside a single ring.
  const auto dimension = [](Direction dir) {
    return (dir == Direction::kEast || dir == Direction::kWest) ? 0 : 1;
  };
  const bool same_dimension =
      in_from != Direction::kLocal && dimension(in_from) == dimension(decision.out);
  const std::uint32_t base = same_dimension ? in_class : 0;
  decision.out_class = wraps ? 1 : base;
  return decision;
}

void Topology::west_first_candidates(NodeId current, NodeId dest, Direction,
                                     std::uint32_t in_class,
                                     RouteCandidates& out) const {
  WS_CHECK_MSG(spec_.kind == TopologySpec::Kind::kMesh,
               "west-first routing is mesh-only");
  if (current == dest) {
    out.push_back(RouteDecision{Direction::kLocal, in_class, false});
    return;
  }
  const Coord c = coord(current);
  const Coord d = coord(dest);
  if (d.x < c.x) {
    // All west hops must come first: deterministic.
    out.push_back(RouteDecision{Direction::kWest, 0, false});
    return;
  }
  // Adaptive among the productive non-west directions.
  if (d.x > c.x) out.push_back(RouteDecision{Direction::kEast, 0, false});
  if (d.y > c.y) out.push_back(RouteDecision{Direction::kSouth, 0, false});
  if (d.y < c.y) out.push_back(RouteDecision{Direction::kNorth, 0, false});
  WS_CHECK(!out.empty());
}

std::uint32_t Topology::hops(NodeId a, NodeId b) const {
  std::uint32_t count = 0;
  NodeId cur = a;
  Direction from = Direction::kLocal;
  std::uint32_t cls = 0;
  while (cur != b) {
    const RouteDecision d = route(cur, b, from, cls);
    WS_CHECK(d.out != Direction::kLocal);
    cur = neighbor(cur, d.out);
    WS_CHECK(cur.is_valid());
    // The next router sees the flit arriving from the opposite direction.
    switch (d.out) {
      case Direction::kEast: from = Direction::kWest; break;
      case Direction::kWest: from = Direction::kEast; break;
      case Direction::kNorth: from = Direction::kSouth; break;
      case Direction::kSouth: from = Direction::kNorth; break;
      case Direction::kLocal: break;
    }
    cls = d.out_class;
    ++count;
    WS_CHECK_MSG(count <= num_nodes() * 2, "routing loop");
  }
  return count;
}

}  // namespace wormsched::wormhole
