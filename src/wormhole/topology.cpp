#include "wormhole/topology.hpp"

#include <charconv>
#include <sstream>

#include "common/assert.hpp"

namespace wormsched::wormhole {
namespace {

constexpr Direction kInvalidPort = Direction::kLocal;

Direction opposite_compass(Direction d) {
  switch (d) {
    case Direction::kEast: return Direction::kWest;
    case Direction::kWest: return Direction::kEast;
    case Direction::kNorth: return Direction::kSouth;
    case Direction::kSouth: return Direction::kNorth;
    case Direction::kLocal: return Direction::kLocal;
  }
  return Direction::kLocal;
}

/// Full-string strict decimal parse; rejects empty, signs, and trailing
/// garbage (the CLI exit-2 contract shared with CliParser's get_uint).
bool parse_u32_strict(std::string_view text, std::uint32_t* out) {
  if (text.empty()) return false;
  const char* first = text.data();
  const char* last = text.data() + text.size();
  auto [ptr, ec] = std::from_chars(first, last, *out);
  return ec == std::errc{} && ptr == last;
}

}  // namespace

const char* direction_name(Direction d) {
  switch (d) {
    case Direction::kLocal: return "local";
    case Direction::kEast: return "east";
    case Direction::kWest: return "west";
    case Direction::kNorth: return "north";
    case Direction::kSouth: return "south";
  }
  return "?";
}

std::uint32_t TopologySpec::num_nodes() const {
  if (kind == Kind::kFatTree) {
    const std::uint32_t k = width;
    return k * k + (k / 2) * (k / 2);
  }
  return width * height;
}

std::string TopologySpec::describe() const {
  std::ostringstream os;
  if (kind == Kind::kFatTree) {
    os << "fattree:" << width;
  } else {
    os << (kind == Kind::kMesh ? "mesh" : "torus") << " " << width << "x"
       << height;
  }
  return os.str();
}

std::optional<TopologySpec> parse_topology_spec(const std::string& text,
                                                std::string* error) {
  const auto fail = [&](const std::string& why) -> std::optional<TopologySpec> {
    if (error != nullptr) *error = why;
    return std::nullopt;
  };
  if (text.rfind("fattree:", 0) == 0) {
    std::uint32_t k = 0;
    if (!parse_u32_strict(std::string_view(text).substr(8), &k))
      return fail("expected fattree:<K> with a decimal K, got '" + text + "'");
    if (k != 2 && k != 4)
      return fail("fat-tree K must be 2 or 4 (router radix is 4), got '" +
                  text + "'");
    return TopologySpec::fat_tree(k);
  }
  TopologySpec spec;
  std::string_view dims;
  if (text.rfind("torus", 0) == 0) {
    spec.kind = TopologySpec::Kind::kTorus;
    dims = std::string_view(text).substr(5);
  } else if (text.rfind("mesh", 0) == 0) {
    spec.kind = TopologySpec::Kind::kMesh;
    dims = std::string_view(text).substr(4);
  } else {
    return fail("expected mesh<W>x<H>, torus<W>x<H> or fattree:<K>, got '" +
                text + "'");
  }
  const std::size_t x = dims.find('x');
  if (x == std::string_view::npos)
    return fail("expected <W>x<H> dimensions, got '" + text + "'");
  if (!parse_u32_strict(dims.substr(0, x), &spec.width) ||
      !parse_u32_strict(dims.substr(x + 1), &spec.height))
    return fail("malformed <W>x<H> dimensions in '" + text + "'");
  if (spec.width == 0 || spec.height == 0)
    return fail("topology dimensions must be non-zero in '" + text + "'");
  if (spec.kind == TopologySpec::Kind::kTorus &&
      (spec.width < 2 || spec.height < 2))
    return fail("torus needs at least 2 nodes per dimension in '" + text +
                "'");
  return spec;
}

Topology::Topology(const TopologySpec& spec) : spec_(spec) {
  if (spec.kind == TopologySpec::Kind::kFatTree) {
    WS_CHECK_MSG(spec.width == 2 || spec.width == 4,
                 "fat-tree K must be 2 or 4 (router radix is 4)");
    build_fat_tree();
    return;
  }
  WS_CHECK(spec.width >= 1 && spec.height >= 1);
  if (spec.kind == TopologySpec::Kind::kTorus) {
    WS_CHECK_MSG(spec.width >= 2 && spec.height >= 2,
                 "torus needs at least 2 nodes per dimension");
  }
}

std::uint32_t Topology::num_endpoints() const {
  if (spec_.kind == TopologySpec::Kind::kFatTree)
    return spec_.width * spec_.width / 2;  // edge switches only
  return num_nodes();
}

NodeId Topology::endpoint(std::uint32_t i) const {
  WS_CHECK(i < num_endpoints());
  return NodeId(i);  // endpoints are the contiguous prefix of the ids
}

void Topology::add_link(NodeId a, Direction pa, NodeId b, Direction pb) {
  auto& la = fat_links_[a.index()];
  auto& lb = fat_links_[b.index()];
  WS_CHECK(!la[port_of(pa).value()].is_valid());
  WS_CHECK(!lb[port_of(pb).value()].is_valid());
  la[port_of(pa).value()] = b;
  lb[port_of(pb).value()] = a;
  fat_peer_ports_[a.index()][port_of(pa).value()] = pb;
  fat_peer_ports_[b.index()][port_of(pb).value()] = pa;
}

void Topology::build_fat_tree() {
  const std::uint32_t k = spec_.width;
  const std::uint32_t half = k / 2;
  const std::uint32_t num_edges = k * half;
  const std::uint32_t num_aggs = k * half;
  const std::uint32_t total = num_nodes();
  fat_links_.assign(total, {NodeId::invalid(), NodeId::invalid(),
                            NodeId::invalid(), NodeId::invalid(),
                            NodeId::invalid()});
  fat_peer_ports_.assign(total, {kInvalidPort, kInvalidPort, kInvalidPort,
                                 kInvalidPort, kInvalidPort});
  // Edge (pod p, index i) uplink j -> agg (pod p, index j) down port 1+i.
  for (std::uint32_t p = 0; p < k; ++p) {
    for (std::uint32_t i = 0; i < half; ++i) {
      const NodeId edge(p * half + i);
      for (std::uint32_t j = 0; j < half; ++j) {
        const NodeId agg(num_edges + p * half + j);
        add_link(edge, static_cast<Direction>(1 + j), agg,
                 static_cast<Direction>(1 + i));
      }
    }
  }
  // Agg (pod p, index j) uplink m -> core (j, m) down port 1+p.
  for (std::uint32_t p = 0; p < k; ++p) {
    for (std::uint32_t j = 0; j < half; ++j) {
      const NodeId agg(num_edges + p * half + j);
      for (std::uint32_t m = 0; m < half; ++m) {
        const NodeId core(num_edges + num_aggs + j * half + m);
        add_link(agg, static_cast<Direction>(1 + half + m), core,
                 static_cast<Direction>(1 + p));
      }
    }
  }
}

Coord Topology::coord(NodeId node) const {
  WS_CHECK(spec_.kind != TopologySpec::Kind::kFatTree);
  WS_CHECK(node.value() < num_nodes());
  return Coord{node.value() % spec_.width, node.value() / spec_.width};
}

NodeId Topology::node(Coord c) const {
  WS_CHECK(c.x < spec_.width && c.y < spec_.height);
  return NodeId(c.y * spec_.width + c.x);
}

NodeId Topology::neighbor(NodeId n, Direction d) const {
  if (d == Direction::kLocal) return n;
  if (spec_.kind == TopologySpec::Kind::kFatTree) {
    WS_CHECK(n.value() < num_nodes());
    return fat_links_[n.index()][port_of(d).value()];
  }
  const Coord c = coord(n);
  const bool torus = spec_.kind == TopologySpec::Kind::kTorus;
  Coord target = c;
  switch (d) {
    case Direction::kLocal:
      return n;
    case Direction::kEast:
      if (c.x + 1 < spec_.width) {
        target.x = c.x + 1;
      } else if (torus) {
        target.x = 0;
      } else {
        return NodeId::invalid();
      }
      break;
    case Direction::kWest:
      if (c.x > 0) {
        target.x = c.x - 1;
      } else if (torus) {
        target.x = spec_.width - 1;
      } else {
        return NodeId::invalid();
      }
      break;
    case Direction::kNorth:
      if (c.y > 0) {
        target.y = c.y - 1;
      } else if (torus) {
        target.y = spec_.height - 1;
      } else {
        return NodeId::invalid();
      }
      break;
    case Direction::kSouth:
      if (c.y + 1 < spec_.height) {
        target.y = c.y + 1;
      } else if (torus) {
        target.y = 0;
      } else {
        return NodeId::invalid();
      }
      break;
  }
  return node(target);
}

Direction Topology::peer_port(NodeId n, Direction d) const {
  if (d == Direction::kLocal) return Direction::kLocal;
  if (spec_.kind == TopologySpec::Kind::kFatTree) {
    WS_CHECK(n.value() < num_nodes());
    WS_CHECK_MSG(fat_links_[n.index()][port_of(d).value()].is_valid(),
                 "peer_port on an unwired fat-tree port");
    return fat_peer_ports_[n.index()][port_of(d).value()];
  }
  return opposite_compass(d);
}

bool Topology::is_wrap_link(NodeId n, Direction d) const {
  if (spec_.kind != TopologySpec::Kind::kTorus) return false;
  const Coord c = coord(n);
  switch (d) {
    case Direction::kEast: return c.x + 1 == spec_.width;
    case Direction::kWest: return c.x == 0;
    case Direction::kNorth: return c.y == 0;
    case Direction::kSouth: return c.y + 1 == spec_.height;
    case Direction::kLocal: return false;
  }
  return false;
}

Direction Topology::x_step(std::uint32_t from_x, std::uint32_t to_x,
                           bool* wraps) const {
  WS_CHECK(from_x != to_x);
  *wraps = false;
  if (spec_.kind == TopologySpec::Kind::kMesh)
    return to_x > from_x ? Direction::kEast : Direction::kWest;
  // Torus: go the shorter way round (ties eastward).
  const std::uint32_t east_dist = (to_x + spec_.width - from_x) % spec_.width;
  const Direction dir =
      east_dist * 2 <= spec_.width ? Direction::kEast : Direction::kWest;
  *wraps = (dir == Direction::kEast && from_x + 1 == spec_.width) ||
           (dir == Direction::kWest && from_x == 0);
  return dir;
}

Direction Topology::y_step(std::uint32_t from_y, std::uint32_t to_y,
                           bool* wraps) const {
  WS_CHECK(from_y != to_y);
  *wraps = false;
  if (spec_.kind == TopologySpec::Kind::kMesh)
    return to_y > from_y ? Direction::kSouth : Direction::kNorth;
  const std::uint32_t south_dist =
      (to_y + spec_.height - from_y) % spec_.height;
  const Direction dir =
      south_dist * 2 <= spec_.height ? Direction::kSouth : Direction::kNorth;
  *wraps = (dir == Direction::kSouth && from_y + 1 == spec_.height) ||
           (dir == Direction::kNorth && from_y == 0);
  return dir;
}

RouteDecision Topology::updown_route(NodeId current, NodeId dest,
                                     std::uint32_t in_class) const {
  RouteDecision decision;
  if (current == dest) {
    decision.out = Direction::kLocal;
    decision.out_class = in_class;
    return decision;
  }
  const std::uint32_t k = spec_.width;
  const std::uint32_t half = k / 2;
  const std::uint32_t num_edges = k * half;
  const std::uint32_t cur = current.value();
  WS_CHECK_MSG(is_endpoint(dest), "fat-tree destination must be an endpoint");
  const std::uint32_t dest_pod = dest.value() / half;
  const std::uint32_t dest_idx = dest.value() % half;
  // Destination-hashed uplink choice: deterministic, and it spreads
  // distinct destinations across the uplinks like ECMP would.
  if (cur < num_edges) {
    decision.out = static_cast<Direction>(1 + dest.value() % half);
  } else if (cur < 2 * num_edges) {
    const std::uint32_t pod = (cur - num_edges) / half;
    decision.out = pod == dest_pod
                       ? static_cast<Direction>(1 + dest_idx)
                       : static_cast<Direction>(1 + half + dest.value() % half);
  } else {
    decision.out = static_cast<Direction>(1 + dest_pod);
  }
  decision.out_class = 0;
  return decision;
}

RouteDecision Topology::route(NodeId current, NodeId dest, Direction in_from,
                              std::uint32_t in_class) const {
  if (spec_.kind == TopologySpec::Kind::kFatTree)
    return updown_route(current, dest, in_class);
  RouteDecision decision;
  if (current == dest) {
    decision.out = Direction::kLocal;
    decision.out_class = in_class;
    return decision;
  }
  const Coord c = coord(current);
  const Coord d = coord(dest);
  bool wraps = false;
  if (c.x != d.x) {
    decision.out = x_step(c.x, d.x, &wraps);
  } else {
    decision.out = y_step(c.y, d.y, &wraps);
  }
  decision.wraps = wraps;
  // Dateline rule: within one dimension the class persists and jumps to 1
  // at the wrap link; turning into a new dimension (or leaving the NIC)
  // restarts at class 0.  Deadlock-free with XY order because dependency
  // cycles only exist inside a single ring.
  const auto dimension = [](Direction dir) {
    return (dir == Direction::kEast || dir == Direction::kWest) ? 0 : 1;
  };
  const bool same_dimension =
      in_from != Direction::kLocal && dimension(in_from) == dimension(decision.out);
  const std::uint32_t base = same_dimension ? in_class : 0;
  decision.out_class = wraps ? 1 : base;
  return decision;
}

void Topology::west_first_candidates(NodeId current, NodeId dest, Direction,
                                     std::uint32_t in_class,
                                     RouteCandidates& out) const {
  WS_CHECK_MSG(spec_.kind == TopologySpec::Kind::kMesh,
               "west-first routing is mesh-only");
  if (current == dest) {
    out.push_back(RouteDecision{Direction::kLocal, in_class, false});
    return;
  }
  const Coord c = coord(current);
  const Coord d = coord(dest);
  if (d.x < c.x) {
    // All west hops must come first: deterministic.
    out.push_back(RouteDecision{Direction::kWest, 0, false});
    return;
  }
  // Adaptive among the productive non-west directions.
  if (d.x > c.x) out.push_back(RouteDecision{Direction::kEast, 0, false});
  if (d.y > c.y) out.push_back(RouteDecision{Direction::kSouth, 0, false});
  if (d.y < c.y) out.push_back(RouteDecision{Direction::kNorth, 0, false});
  WS_CHECK(!out.empty());
}

void Topology::updown_candidates(NodeId current, NodeId dest, Direction,
                                 std::uint32_t in_class,
                                 RouteCandidates& out) const {
  WS_CHECK_MSG(spec_.kind == TopologySpec::Kind::kFatTree,
               "up/down routing is fat-tree-only");
  if (current == dest) {
    out.push_back(RouteDecision{Direction::kLocal, in_class, false});
    return;
  }
  const std::uint32_t k = spec_.width;
  const std::uint32_t half = k / 2;
  const std::uint32_t num_edges = k * half;
  const std::uint32_t cur = current.value();
  WS_CHECK_MSG(is_endpoint(dest), "fat-tree destination must be an endpoint");
  const std::uint32_t dest_pod = dest.value() / half;
  const bool climbing =
      cur < num_edges ||
      (cur < 2 * num_edges && (cur - num_edges) / half != dest_pod);
  if (!climbing) {
    out.push_back(updown_route(current, dest, in_class));
    return;
  }
  // Every uplink reaches a common ancestor of the destination.
  const std::uint32_t first_up = cur < num_edges ? 1 : 1 + half;
  for (std::uint32_t u = 0; u < half; ++u)
    out.push_back(
        RouteDecision{static_cast<Direction>(first_up + u), 0, false});
}

std::uint32_t Topology::hops(NodeId a, NodeId b) const {
  std::uint32_t count = 0;
  NodeId cur = a;
  Direction from = Direction::kLocal;
  std::uint32_t cls = 0;
  while (cur != b) {
    const RouteDecision d = route(cur, b, from, cls);
    WS_CHECK(d.out != Direction::kLocal);
    // The next router sees the flit arriving on the link's far-end port.
    from = peer_port(cur, d.out);
    cur = neighbor(cur, d.out);
    WS_CHECK(cur.is_valid());
    cls = d.out_class;
    ++count;
    WS_CHECK_MSG(count <= num_nodes() * 2, "routing loop");
  }
  return count;
}

}  // namespace wormsched::wormhole
