// Shard staging for the multi-threaded network tick.
//
// The sharded tick (NetworkConfig::shards > 1) partitions routers into
// contiguous shard domains and runs each domain's RC/VA/SA/ST pipeline on
// a worker lane.  Determinism is by construction, not by luck:
//
//   Phase 0 (serial, caller thread) — "classify": due entries are popped
//   off the global wire FIFOs in exactly the serial order (including
//   every fault-model decision) and routed into the owning shard's
//   delivery lists.  The global wires stay the single source of truth the
//   audit accessors expose.
//
//   Phase 1 (parallel) — "compute": each lane delivers its shard's
//   credits and flits, injects from its shard's NICs, and ticks its
//   shard's routers with THIS object as the RouterEnv.  Sends and
//   ejections are staged into per-shard queues; nothing global is
//   written.  Router ticks are mutually independent within a cycle (all
//   inter-router interaction travels over wires with link_latency >= 1),
//   so any lane interleaving computes the identical per-router state.
//
//   Phase 2 (serial) — "commit": staged sends are appended to the global
//   wires shard-ascending.  The serial kernel pushes wire entries in
//   router-ascending order (routers tick ascending, each router's port
//   walk is ascending, and a (router, port) emits at most one flit and
//   one credit per cycle), and shards are contiguous ascending router
//   ranges — so the concatenation reproduces the serial FIFO contents
//   byte for byte.  Ejections replay in the same order, keeping the
//   delivered log and the latency RunningStats (floating-point summation
//   order included) bit-identical to the serial run.
//
// Each lane also accumulates its own CycleDelta; the commit phase merges
// the lane deltas into the global delta handed to ObserverMux, so
// incremental auditing keeps working under threads (the auditor's ledger
// updates are commutative integer adds, so the shard-grouped event order
// yields the same ledgers and the same verdicts).
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "wormhole/flit.hpp"
#include "wormhole/observer.hpp"
#include "wormhole/router.hpp"
#include "wormhole/topology.hpp"

namespace wormsched::wormhole {

class Network;

/// One flit in flight on a link (public for the audit accessors).
struct WireFlit {
  Cycle arrive;
  NodeId to;
  Direction in;  // input port at the destination router
  std::uint32_t cls;
  Flit flit;
};
/// One credit — or, in on/off flow control, one threshold signal — in
/// flight back to `to`'s output (`out`, `cls`).  Signals share the
/// credit wire (same latency, same FIFO order) so the sharded tick's
/// commit argument covers them unchanged.
struct WireCredit {
  enum class Kind : std::uint8_t { kCredit = 0, kOff = 1, kOn = 2 };
  Cycle arrive;
  NodeId to;
  Direction out;  // output port credited/signalled at the destination
  std::uint32_t cls;
  Kind kind = Kind::kCredit;
};

/// Per-shard staging state + the RouterEnv its routers tick against.
/// Owned by the Network, one per shard domain; every vector is cleared —
/// never shrunk — each cycle, so the sharded tick allocates nothing in
/// steady state.
class ShardLane final : public RouterEnv {
 public:
  ShardLane() = default;

 private:
  friend class Network;

  struct StagedEjection {
    NodeId node;
    Flit flit;
  };

  // RouterEnv: stage instead of mutating the global fabric.  Only this
  // lane's thread runs these during the compute phase, and they touch
  // only this lane's vectors, this lane's routers' touched flags, and
  // read-only network state.
  void send_flit(NodeId from, Direction out, const Flit& flit) override;
  void eject(NodeId node, const Flit& flit, Cycle now) override;
  void send_credit(NodeId node, Direction in, std::uint32_t cls) override;
  void send_signal(NodeId node, Direction in, std::uint32_t cls,
                   bool on) override;
  RouteDecision route(NodeId node, const Flit& flit, Direction in_from,
                      std::uint32_t in_class) override;
  void route_candidates(NodeId node, const Flit& flit, Direction in_from,
                        std::uint32_t in_class, RouteCandidates& out) override;

  /// Clears every per-cycle vector (capacity retained).
  void clear_cycle();

  Network* net_ = nullptr;
  std::uint32_t shard_ = 0;

  // Delivery lists, filled by the serial classify phase in global FIFO
  // pop order and drained by this lane's compute phase in the same
  // serial sub-order (quarantine releases, then flits, then credits).
  std::vector<WireCredit> quarantine_due_;
  std::vector<WireFlit> flits_due_;
  std::vector<WireCredit> credits_due_;

  // Staged results of the compute phase, committed serially.
  std::vector<WireFlit> out_flits_;
  std::vector<WireCredit> out_credits_;
  std::vector<StagedEjection> ejections_;

  // This shard's slice of the cycle's movement record; merged into the
  // network's global delta at commit.
  CycleDelta delta_;
};

}  // namespace wormsched::wormhole
