#include "core/fcfs.hpp"

#include "common/assert.hpp"

namespace wormsched::core {

FcfsScheduler::FcfsScheduler(std::size_t num_flows) : Scheduler(num_flows) {}

void FcfsScheduler::on_flow_backlogged(FlowId) {}

void FcfsScheduler::on_packet_enqueued(Cycle, FlowId flow, Flits) {
  arrival_order_.push_back(flow);
}

FlowId FcfsScheduler::select_next_flow(Cycle) {
  WS_CHECK(!arrival_order_.empty());
  return arrival_order_.pop_front();
}

void FcfsScheduler::on_packet_complete(FlowId, Flits, bool) {}

}  // namespace wormsched::core
