#include "core/fcfs.hpp"

#include "common/assert.hpp"
#include "common/snapshot.hpp"

namespace wormsched::core {

FcfsScheduler::FcfsScheduler(std::size_t num_flows) : Scheduler(num_flows) {}

void FcfsScheduler::on_flow_backlogged(FlowId) {}

void FcfsScheduler::on_packet_enqueued(Cycle, FlowId flow, Flits) {
  arrival_order_.push_back(flow);
}

FlowId FcfsScheduler::select_next_flow(Cycle) {
  WS_CHECK(!arrival_order_.empty());
  return arrival_order_.pop_front();
}

void FcfsScheduler::on_packet_complete(FlowId, Flits, bool) {}

void FcfsScheduler::save_discipline(SnapshotWriter& w) const {
  save_sequence(w, arrival_order_,
                [](SnapshotWriter& o, FlowId f) { o.u32(f.value()); });
}

void FcfsScheduler::restore_discipline(SnapshotReader& r) {
  restore_sequence(r, arrival_order_,
                   [](SnapshotReader& i) { return FlowId{i.u32()}; });
}

}  // namespace wormsched::core
