#include "core/drr.hpp"

#include "common/assert.hpp"
#include "common/snapshot.hpp"

namespace wormsched::core {

DrrPolicy::DrrPolicy(const DrrConfig& config)
    : flows_(config.num_flows), base_quantum_(config.quantum) {
  WS_CHECK(config.num_flows > 0);
  WS_CHECK_MSG(config.quantum > 0, "DRR quantum must be positive");
  for (std::size_t i = 0; i < config.num_flows; ++i) {
    flows_[i].id = FlowId(static_cast<FlowId::rep_type>(i));
    flows_[i].quantum = static_cast<double>(base_quantum_);
  }
}

void DrrPolicy::set_weight(FlowId flow, double weight) {
  WS_CHECK_MSG(weight > 0.0, "DRR weight must be positive");
  flows_[flow.index()].quantum = weight * static_cast<double>(base_quantum_);
}

void DrrPolicy::flow_activated(FlowId flow) {
  FlowState& state = flows_[flow.index()];
  WS_CHECK(!decltype(active_list_)::is_linked(state));
  state.deficit = 0.0;
  active_list_.push_back(state);
}

FlowId DrrPolicy::begin_opportunity() {
  WS_CHECK(!in_opportunity_);
  WS_CHECK(!active_list_.empty());
  FlowState& state = active_list_.pop_front();
  state.deficit += state.quantum;
  in_opportunity_ = true;
  current_ = state.id;
  return state.id;
}

bool DrrPolicy::may_serve(Flits length) const {
  WS_CHECK(in_opportunity_);
  return static_cast<double>(length) <= flows_[current_.index()].deficit;
}

void DrrPolicy::charge(Flits length) {
  WS_CHECK(in_opportunity_);
  flows_[current_.index()].deficit -= static_cast<double>(length);
}

void DrrPolicy::end_opportunity(bool still_backlogged) {
  WS_CHECK(in_opportunity_);
  FlowState& state = flows_[current_.index()];
  if (still_backlogged) {
    active_list_.push_back(state);
  } else {
    state.deficit = 0.0;  // idle flows forfeit accumulated deficit
  }
  in_opportunity_ = false;
}

void DrrPolicy::save(SnapshotWriter& w) const {
  w.u64(flows_.size());
  for (const FlowState& f : flows_) {
    w.f64(f.deficit);
    w.f64(f.quantum);
  }
  w.u64(active_list_.size());
  for (const FlowState& f : active_list_) w.u32(f.id.value());
  w.i64(base_quantum_);
  w.b(in_opportunity_);
  w.u32(current_.value());
}

void DrrPolicy::restore(SnapshotReader& r) {
  const std::uint64_t n = r.u64();
  if (n != flows_.size())
    throw SnapshotError("DRR snapshot has " + std::to_string(n) +
                        " flows, this policy has " +
                        std::to_string(flows_.size()));
  for (FlowState& f : flows_) {
    f.deficit = r.f64();
    f.quantum = r.f64();
  }
  active_list_.clear();
  const std::uint64_t linked = r.u64();
  if (linked > flows_.size())
    throw SnapshotError("DRR ActiveList longer than the flow table");
  for (std::uint64_t i = 0; i < linked; ++i) {
    const FlowId id{r.u32()};
    if (id.index() >= flows_.size())
      throw SnapshotError("DRR ActiveList names an out-of-range flow");
    FlowState& f = flows_[id.index()];
    if (decltype(active_list_)::is_linked(f))
      throw SnapshotError("DRR ActiveList names a flow twice");
    active_list_.push_back(f);
  }
  base_quantum_ = r.i64();
  in_opportunity_ = r.b();
  current_ = FlowId{r.u32()};
}

DrrScheduler::DrrScheduler(const DrrConfig& config)
    : Scheduler(config.num_flows), policy_(config) {}

void DrrScheduler::set_weight(FlowId flow, double weight) {
  Scheduler::set_weight(flow, weight);
  policy_.set_weight(flow, weight);
}

void DrrScheduler::on_flow_backlogged(FlowId flow) {
  if (policy_.in_opportunity() && policy_.current_flow() == flow) return;
  policy_.flow_activated(flow);
}

FlowId DrrScheduler::select_next_flow(Cycle) {
  // With quantum >= Max every opportunity transmits, so this loop runs
  // once; with a small quantum a flow may need several visits before its
  // head fits (the deficit grows by one quantum per visit), hence the
  // bounded spin.
  for (;;) {
    if (!policy_.in_opportunity()) (void)policy_.begin_opportunity();
    const FlowId flow = policy_.current_flow();
    if (policy_.may_serve(head_packet_length(flow))) return flow;
    policy_.end_opportunity(/*still_backlogged=*/true);
  }
}

void DrrScheduler::on_packet_complete(FlowId flow, Flits observed_length,
                                      bool queue_now_empty) {
  WS_CHECK(policy_.in_opportunity() && policy_.current_flow() == flow);
  policy_.charge(observed_length);
  if (queue_now_empty) {
    policy_.end_opportunity(/*still_backlogged=*/false);
  } else if (!policy_.may_serve(head_packet_length(flow))) {
    policy_.end_opportunity(/*still_backlogged=*/true);
  }
}

void DrrScheduler::save_discipline(SnapshotWriter& w) const {
  policy_.save(w);
}

void DrrScheduler::restore_discipline(SnapshotReader& r) {
  policy_.restore(r);
}

}  // namespace wormsched::core
