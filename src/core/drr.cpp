#include "core/drr.hpp"

#include "common/assert.hpp"
#include "common/snapshot.hpp"

namespace wormsched::core {

DrrPolicy::DrrPolicy(const DrrConfig& config)
    : pool_(config.num_flows,
            /*initial_weight=*/static_cast<double>(config.quantum)),
      base_quantum_(config.quantum) {
  WS_CHECK(config.num_flows > 0);
  WS_CHECK_MSG(config.quantum > 0, "DRR quantum must be positive");
}

void DrrPolicy::set_weight(FlowId flow, double weight) {
  WS_CHECK_MSG(weight > 0.0, "DRR weight must be positive");
  pool_.set_weight(flow.index(), weight * static_cast<double>(base_quantum_));
}

void DrrPolicy::flow_activated(FlowId flow) {
  const auto i = static_cast<std::uint32_t>(flow.index());
  WS_CHECK(!pool_.active().contains(i));
  pool_.set_sc(i, 0.0);
  pool_.active().push_back(i);
}

FlowId DrrPolicy::begin_opportunity() {
  WS_CHECK(!in_opportunity_);
  WS_CHECK(!pool_.active().empty());
  const std::uint32_t i = pool_.active().pop_front();
  pool_.set_sc(i, pool_.sc(i) + pool_.weight(i));
  in_opportunity_ = true;
  current_ = FlowId(i);
  return current_;
}

bool DrrPolicy::may_serve(Flits length) const {
  WS_CHECK(in_opportunity_);
  return static_cast<double>(length) <= pool_.sc(current_.index());
}

void DrrPolicy::charge(Flits length) {
  WS_CHECK(in_opportunity_);
  const std::size_t i = current_.index();
  pool_.set_sc(i, pool_.sc(i) - static_cast<double>(length));
}

void DrrPolicy::end_opportunity(bool still_backlogged) {
  WS_CHECK(in_opportunity_);
  const auto i = static_cast<std::uint32_t>(current_.index());
  if (still_backlogged) {
    pool_.active().push_back(i);
  } else {
    pool_.set_sc(i, 0.0);  // idle flows forfeit accumulated deficit
  }
  in_opportunity_ = false;
}

void DrrPolicy::save(SnapshotWriter& w) const {
  pool_.save_rows(w);
  pool_.active().save(w);
  w.i64(base_quantum_);
  w.b(in_opportunity_);
  w.u32(current_.value());
}

void DrrPolicy::restore(SnapshotReader& r) {
  pool_.restore_rows(r, "DRR");
  pool_.active().restore(r, "DRR ActiveList");
  base_quantum_ = r.i64();
  in_opportunity_ = r.b();
  current_ = FlowId{r.u32()};
}

DrrScheduler::DrrScheduler(const DrrConfig& config)
    : Scheduler(config.num_flows), policy_(config) {}

void DrrScheduler::set_weight(FlowId flow, double weight) {
  Scheduler::set_weight(flow, weight);
  policy_.set_weight(flow, weight);
}

void DrrScheduler::on_flow_backlogged(FlowId flow) {
  if (policy_.in_opportunity() && policy_.current_flow() == flow) return;
  policy_.flow_activated(flow);
}

FlowId DrrScheduler::select_next_flow(Cycle) {
  // With quantum >= Max every opportunity transmits, so this loop runs
  // once; with a small quantum a flow may need several visits before its
  // head fits (the deficit grows by one quantum per visit), hence the
  // bounded spin.
  for (;;) {
    if (!policy_.in_opportunity()) (void)policy_.begin_opportunity();
    const FlowId flow = policy_.current_flow();
    if (policy_.may_serve(head_packet_length(flow))) return flow;
    policy_.end_opportunity(/*still_backlogged=*/true);
  }
}

void DrrScheduler::on_packet_complete(FlowId flow, Flits observed_length,
                                      bool queue_now_empty) {
  WS_CHECK(policy_.in_opportunity() && policy_.current_flow() == flow);
  policy_.charge(observed_length);
  if (queue_now_empty) {
    policy_.end_opportunity(/*still_backlogged=*/false);
  } else if (!policy_.may_serve(head_packet_length(flow))) {
    policy_.end_opportunity(/*still_backlogged=*/true);
  }
}

void DrrScheduler::save_discipline(SnapshotWriter& w) const {
  policy_.save(w);
}

void DrrScheduler::restore_discipline(SnapshotReader& r) {
  policy_.restore(r);
}

}  // namespace wormsched::core
