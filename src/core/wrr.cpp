#include "core/wrr.hpp"

#include <cmath>

#include "common/assert.hpp"

namespace wormsched::core {

WrrScheduler::WrrScheduler(std::size_t num_flows)
    : Scheduler(num_flows), ring_(num_flows), packets_per_visit_(num_flows, 1) {}

void WrrScheduler::set_weight(FlowId flow, double weight) {
  Scheduler::set_weight(flow, weight);
  packets_per_visit_[flow.index()] =
      static_cast<std::uint32_t>(std::ceil(weight));
  WS_CHECK(packets_per_visit_[flow.index()] >= 1);
}

void WrrScheduler::on_flow_backlogged(FlowId flow) {
  if (flow == serving_) return;
  ring_.activate(flow);
}

FlowId WrrScheduler::select_next_flow(Cycle) {
  if (serving_.is_valid()) return serving_;  // mid-visit
  serving_ = ring_.take_next();
  remaining_this_visit_ = packets_per_visit_[serving_.index()];
  return serving_;
}

void WrrScheduler::on_packet_complete(FlowId flow, Flits, //
                                      bool queue_now_empty) {
  WS_CHECK(flow == serving_);
  WS_CHECK(remaining_this_visit_ > 0);
  --remaining_this_visit_;
  if (queue_now_empty || remaining_this_visit_ == 0) {
    if (!queue_now_empty) ring_.activate(flow);
    serving_ = FlowId::invalid();
  }
}

}  // namespace wormsched::core
