#include "core/wrr.hpp"

#include <cmath>

#include "common/assert.hpp"
#include "common/snapshot.hpp"

namespace wormsched::core {

WrrScheduler::WrrScheduler(std::size_t num_flows)
    : Scheduler(num_flows), ring_(num_flows), packets_per_visit_(num_flows, 1) {}

void WrrScheduler::set_weight(FlowId flow, double weight) {
  Scheduler::set_weight(flow, weight);
  packets_per_visit_[flow.index()] =
      static_cast<std::uint32_t>(std::ceil(weight));
  WS_CHECK(packets_per_visit_[flow.index()] >= 1);
}

void WrrScheduler::on_flow_backlogged(FlowId flow) {
  if (flow == serving_) return;
  ring_.activate(flow);
}

FlowId WrrScheduler::select_next_flow(Cycle) {
  if (serving_.is_valid()) return serving_;  // mid-visit
  serving_ = ring_.take_next();
  remaining_this_visit_ = packets_per_visit_[serving_.index()];
  return serving_;
}

void WrrScheduler::on_packet_complete(FlowId flow, Flits, //
                                      bool queue_now_empty) {
  WS_CHECK(flow == serving_);
  WS_CHECK(remaining_this_visit_ > 0);
  --remaining_this_visit_;
  if (queue_now_empty || remaining_this_visit_ == 0) {
    if (!queue_now_empty) ring_.activate(flow);
    serving_ = FlowId::invalid();
  }
}

void WrrScheduler::save_discipline(SnapshotWriter& w) const {
  ring_.save(w);
  w.u64(packets_per_visit_.size());
  for (const std::uint32_t p : packets_per_visit_) w.u32(p);
  w.u32(serving_.value());
  w.u32(remaining_this_visit_);
}

void WrrScheduler::restore_discipline(SnapshotReader& r) {
  ring_.restore(r);
  const std::uint64_t n = r.u64();
  if (n != packets_per_visit_.size())
    throw SnapshotError("WRR snapshot per-flow array size mismatch");
  for (std::uint32_t& p : packets_per_visit_) p = r.u32();
  serving_ = FlowId{r.u32()};
  remaining_this_visit_ = r.u32();
}

}  // namespace wormsched::core
