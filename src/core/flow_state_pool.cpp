#include "core/flow_state_pool.hpp"

#include "common/snapshot.hpp"

namespace wormsched::core {

void ActiveFifo::save(SnapshotWriter& w) const {
  w.u64(size_);
  for_each([&](std::uint32_t flow) { w.u32(flow); });
}

void ActiveFifo::restore(SnapshotReader& r, std::string_view label) {
  clear();
  const std::uint64_t linked = r.u64();
  if (linked > next_.size())
    throw SnapshotError(std::string(label) + " longer than the flow table");
  for (std::uint64_t i = 0; i < linked; ++i) {
    const std::uint32_t flow = r.u32();
    if (flow >= next_.size())
      throw SnapshotError(std::string(label) +
                          " names an out-of-range flow");
    if (linked_.test(flow))
      throw SnapshotError(std::string(label) + " names a flow twice");
    push_back(flow);
  }
}

void PacketQueuePool::grow() {
  // Geometric growth; every new node goes straight onto the freelist.
  const std::size_t old_size = next_.size();
  const std::size_t new_size = old_size == 0 ? 64 : old_size * 2;
  id_.resize(new_size);
  length_.resize(new_size);
  arrival_.resize(new_size);
  first_service_.resize(new_size);
  departure_.resize(new_size);
  stamp_.resize(new_size);
  next_.resize(new_size);
  for (std::size_t n = new_size; n > old_size; --n) {
    next_[n - 1] = free_head_;
    free_head_ = static_cast<std::uint32_t>(n - 1);
  }
}

void PacketQueuePool::save_flow(SnapshotWriter& w, std::size_t flow) const {
  w.u64(len_[flow]);
  for (std::uint32_t n = head_[flow]; n != kPoolNil; n = next_[n]) {
    w.u64(id_[n]);
    w.u32(static_cast<std::uint32_t>(flow));
    w.i64(length_[n]);
    w.u64(arrival_[n]);
    w.u64(first_service_[n]);
    w.u64(departure_[n]);
  }
}

void PacketQueuePool::restore_flow(SnapshotReader& r, std::size_t flow) {
  while (len_[flow] > 0) (void)pop_front(flow);
  const std::uint64_t n = r.u64();
  for (std::uint64_t i = 0; i < n; ++i) {
    Packet p;
    p.id = PacketId(r.u64());
    p.flow = FlowId(r.u32());
    p.length = r.i64();
    p.arrival = r.u64();
    p.first_service = r.u64();
    p.departure = r.u64();
    push_back(flow, p);
  }
}

void FlowStatePool::save_rows(SnapshotWriter& w) const {
  w.u64(sc_.size());
  for (std::size_t i = 0; i < sc_.size(); ++i) {
    w.f64(sc_[i]);
    w.f64(weight_[i]);
  }
}

void FlowStatePool::restore_rows(SnapshotReader& r, std::string_view what) {
  const std::uint64_t n = r.u64();
  if (n != sc_.size())
    throw SnapshotError(std::string(what) + " snapshot has " +
                        std::to_string(n) + " flows, this policy has " +
                        std::to_string(sc_.size()));
  for (std::size_t i = 0; i < sc_.size(); ++i) {
    sc_[i] = r.f64();
    weight_[i] = r.f64();
  }
}

}  // namespace wormsched::core
