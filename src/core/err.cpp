#include "core/err.hpp"

#include "common/assert.hpp"
#include "common/snapshot.hpp"

namespace wormsched::core {

ErrPolicy::ErrPolicy(const ErrConfig& config)
    : pool_(config.num_flows, /*initial_weight=*/1.0),
      reset_on_idle_(config.reset_on_idle) {
  WS_CHECK(config.num_flows > 0);
}

void ErrPolicy::set_weight(FlowId flow, double weight) {
  // Weights are normalized so the smallest is 1: with w_i >= 1 the
  // allowance w_i*(1 + MaxSC(r-1)) - SC_i(r-1) stays >= 1 (the weighted
  // analogue of Lemma 1), because SC_i(r-1) <= MaxSC(r-1) always.
  WS_CHECK_MSG(weight >= 1.0, "ERR weights must be >= 1 (normalize first)");
  pool_.set_weight(flow.index(), weight);
}

void ErrPolicy::flow_activated(FlowId flow) {
  const auto i = static_cast<std::uint32_t>(flow.index());
  WS_CHECK_MSG(!pool_.active().contains(i),
               "flow_activated on an already-active flow");
  WS_CHECK_MSG(!(in_opportunity_ && current_ == flow),
               "flow_activated on the flow in service");
  pool_.set_sc(i, 0.0);  // Enqueue routine: SC_i = 0
  pool_.active().push_back(i);
  ++active_count_;
}

FlowId ErrPolicy::begin_opportunity() {
  WS_CHECK_MSG(!in_opportunity_, "opportunity already in progress");
  WS_CHECK_MSG(!pool_.active().empty(), "no active flows");

  // Round boundary (Fig. 1): when the visit budget of the previous round
  // is exhausted, snapshot MaxSC and size a new round.
  if (round_robin_visit_count_ == 0) {
    previous_max_sc_ = max_sc_;
    round_robin_visit_count_ = active_count_;
    max_sc_ = 0.0;
    ++round_;
  }

  const std::uint32_t i = pool_.active().pop_front();
  in_opportunity_ = true;
  current_ = FlowId(i);
  allowance_ = pool_.weight(i) * (1.0 + previous_max_sc_) - pool_.sc(i);
  sent_ = 0.0;
  max_charge_ = 0.0;
  WS_CHECK_MSG(allowance_ > 0.0, "ERR allowance must be positive (Lemma 1)");
  return current_;
}

void ErrPolicy::charge(double units) {
  WS_CHECK(in_opportunity_);
  WS_CHECK(units > 0.0);
  sent_ += units;
  if (units > max_charge_) max_charge_ = units;
}

void ErrPolicy::end_opportunity(bool still_backlogged) {
  WS_CHECK(in_opportunity_);
  const auto i = static_cast<std::uint32_t>(current_.index());

  // SC_i = Sent_i - A_i, folded into the round's MaxSC *before* the
  // empty-queue reset — the pseudo-code order, which means a flow that
  // overshot on its final packet still raises MaxSC even if it then idles.
  const double sc = sent_ - allowance_;
  pool_.set_sc(i, sc);
  if (sc > max_sc_) max_sc_ = sc;

  ErrOpportunity record{
      .round = round_,
      .flow = current_,
      .weight = pool_.weight(i),
      .allowance = allowance_,
      .sent = sent_,
      .surplus_count = sc,
      .max_sc_so_far = max_sc_,
      .previous_max_sc = previous_max_sc_,
      .max_charge = max_charge_,
  };

  if (still_backlogged) {
    pool_.active().push_back(i);
  } else {
    pool_.set_sc(i, 0.0);
    record.surplus_count = 0.0;
    record.deactivated = true;
    WS_CHECK(active_count_ > 0);
    --active_count_;
  }
  record.active_after = active_count_;
  WS_CHECK(round_robin_visit_count_ > 0);
  --round_robin_visit_count_;
  in_opportunity_ = false;

  if (active_count_ == 0 && reset_on_idle_) {
    round_robin_visit_count_ = 0;
    max_sc_ = 0.0;
    previous_max_sc_ = 0.0;
  }

  if (listener_) listener_(record);
}

void ErrPolicy::save(SnapshotWriter& w) const {
  pool_.save_rows(w);
  pool_.active().save(w);
  w.u64(active_count_);
  w.u64(round_robin_visit_count_);
  w.f64(max_sc_);
  w.f64(previous_max_sc_);
  w.u64(round_);
  w.b(reset_on_idle_);
  w.b(in_opportunity_);
  w.u32(current_.value());
  w.f64(allowance_);
  w.f64(sent_);
  w.f64(max_charge_);
}

void ErrPolicy::restore(SnapshotReader& r) {
  pool_.restore_rows(r, "ERR");
  pool_.active().restore(r, "ERR ActiveList");
  active_count_ = r.u64();
  round_robin_visit_count_ = r.u64();
  max_sc_ = r.f64();
  previous_max_sc_ = r.f64();
  round_ = r.u64();
  reset_on_idle_ = r.b();
  in_opportunity_ = r.b();
  current_ = FlowId{r.u32()};
  allowance_ = r.f64();
  sent_ = r.f64();
  max_charge_ = r.f64();
}

ErrScheduler::ErrScheduler(const ErrConfig& config)
    : Scheduler(config.num_flows), policy_(config) {}

void ErrScheduler::set_weight(FlowId flow, double weight) {
  Scheduler::set_weight(flow, weight);
  policy_.set_weight(flow, weight);
}

void ErrScheduler::on_flow_backlogged(FlowId flow) {
  // A flow whose queue refills *while it is in service* is not re-added:
  // the in-progress opportunity still owns it and end_opportunity() will
  // re-append it (the pseudo-code's AddQueueToActiveList).
  if (policy_.in_opportunity() && policy_.current_flow() == flow) return;
  policy_.flow_activated(flow);
}

FlowId ErrScheduler::select_next_flow(Cycle) {
  if (policy_.in_opportunity()) {
    // Continuing the current opportunity: Sent < Allowance and the flow
    // still has packets queued.
    return policy_.current_flow();
  }
  return policy_.begin_opportunity();
}

void ErrScheduler::on_packet_complete(FlowId flow, Flits observed_length,
                                      bool queue_now_empty) {
  WS_CHECK(policy_.in_opportunity() && policy_.current_flow() == flow);
  policy_.charge(static_cast<double>(observed_length));
  if (queue_now_empty || !policy_.may_continue())
    policy_.end_opportunity(!queue_now_empty);
}

void ErrScheduler::save_discipline(SnapshotWriter& w) const {
  policy_.save(w);
}

void ErrScheduler::restore_discipline(SnapshotReader& r) {
  policy_.restore(r);
}

}  // namespace wormsched::core
