// First-Come-First-Served — the baseline most wormhole switches actually
// implement (Sec. 2).  Packets are served in global arrival order, so a
// bursty or long-packet source steals bandwidth in proportion to what it
// injects (Fig. 4(c)); its relative fairness measure is unbounded
// (Table 1).
#pragma once

#include <cstddef>
#include <string_view>

#include "common/ring_buffer.hpp"
#include "common/types.hpp"
#include "core/scheduler.hpp"

namespace wormsched::core {

class FcfsScheduler final : public Scheduler {
 public:
  explicit FcfsScheduler(std::size_t num_flows);

  [[nodiscard]] std::string_view name() const override { return "FCFS"; }

 protected:
  void on_flow_backlogged(FlowId flow) override;
  void on_packet_enqueued(Cycle now, FlowId flow, Flits length) override;
  FlowId select_next_flow(Cycle now) override;
  void on_packet_complete(FlowId flow, Flits observed_length,
                          bool queue_now_empty) override;
  void save_discipline(SnapshotWriter& w) const override;
  void restore_discipline(SnapshotReader& r) override;

 private:
  // Global arrival order.  Because per-flow queues are FIFO, the head
  // packet of the recorded flow is exactly the globally oldest packet.
  RingBuffer<FlowId> arrival_order_;
};

}  // namespace wormsched::core
