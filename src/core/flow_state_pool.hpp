// Structure-of-arrays per-flow scheduler state, sized for 1M+ flows.
//
// The seed implementation kept an object per flow: a RingBuffer<Packet>
// per queue and an AoS FlowState{sc, weight, IntrusiveListHook} per
// discipline, linked into pointer-chasing activation lists.  At paper
// cardinality (tens of flows) that is fine; at a million flows the
// per-object overhead dominates memory (an empty RingBuffer costs ~32
// bytes before a single packet arrives) and every list hop is a cold
// pointer dereference.
//
// This header replaces all of it with three flat-array primitives:
//
//   * PacketQueuePool — every flow's FIFO packet queue, stored as
//     parallel arrays of packet fields over a shared node store with an
//     intrusive freelist.  An idle flow costs exactly one {head, tail,
//     len} row (12 bytes); queued packets cost one node each regardless
//     of which flow owns them.  Growth is geometric, so the steady state
//     allocates nothing (the Theorem 1 per-packet cost stays O(1)).
//   * ActiveFifo — the disciplines' activation list as index links in a
//     contiguous u32 array plus an epoch-stamped membership bitset
//     (common/epoch_bitset.hpp).  Push/pop/membership are O(1) array
//     ops; clearing on restore is O(1) via the epoch bump.  FIFO order
//     is preserved exactly — ERR's round-robin order is activation
//     order, so a plain bitset walk would change schedules.
//   * FlowStatePool — the per-flow accounting rows (SC/deficit/credit
//     and weight/quantum) shared by the round-robin family, plus an
//     ActiveFifo, with bulk serialization helpers that emit the legacy
//     v1 snapshot byte layout so existing snapshots restore unchanged.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/assert.hpp"
#include "common/epoch_bitset.hpp"
#include "common/types.hpp"
#include "core/packet.hpp"

namespace wormsched {
class SnapshotReader;
class SnapshotWriter;
}  // namespace wormsched

namespace wormsched::core {

inline constexpr std::uint32_t kPoolNil = 0xFFFFFFFFu;

/// FIFO of flow indices with O(1) push_back / pop_front / membership and
/// O(1) whole-list clear.  Links live in one contiguous u32 array; the
/// membership bit doubles as the is_linked() check the old intrusive
/// hooks provided.
class ActiveFifo {
 public:
  explicit ActiveFifo(std::size_t num_flows)
      : next_(num_flows, kPoolNil), linked_(num_flows) {}

  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool contains(std::uint32_t flow) const {
    return linked_.test(flow);
  }

  void push_back(std::uint32_t flow) {
    WS_CHECK_MSG(!linked_.test(flow), "push_back of an already-linked flow");
    linked_.set(flow);
    next_[flow] = kPoolNil;
    if (tail_ == kPoolNil) {
      head_ = flow;
    } else {
      next_[tail_] = flow;
    }
    tail_ = flow;
    ++size_;
  }

  [[nodiscard]] std::uint32_t front() const {
    WS_CHECK(size_ > 0);
    return head_;
  }

  std::uint32_t pop_front() {
    WS_CHECK(size_ > 0);
    const std::uint32_t flow = head_;
    head_ = next_[flow];
    if (head_ == kPoolNil) tail_ = kPoolNil;
    linked_.clear(flow);
    --size_;
    return flow;
  }

  void clear() {
    head_ = tail_ = kPoolNil;
    size_ = 0;
    linked_.clear_all();
  }

  /// Walks the list head-to-tail (checkpointing; FIFO order is the
  /// observable round-robin order and must be serialized exactly).
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (std::uint32_t i = head_; i != kPoolNil; i = next_[i]) fn(i);
  }

  /// Legacy snapshot layout: u64 size, then the flow ids head-to-tail.
  void save(SnapshotWriter& w) const;
  /// `label` names the list in error messages, e.g. "ERR ActiveList".
  void restore(SnapshotReader& r, std::string_view label);

 private:
  std::vector<std::uint32_t> next_;
  EpochBitset linked_;
  std::uint32_t head_ = kPoolNil;
  std::uint32_t tail_ = kPoolNil;
  std::size_t size_ = 0;
};

/// All flows' FIFO packet queues over one shared structure-of-arrays
/// node store.  Nodes are recycled through an intrusive freelist and the
/// arrays grow geometrically, so sustained enqueue/dequeue traffic at
/// any flow count allocates nothing once the high-water mark is reached.
class PacketQueuePool {
 public:
  explicit PacketQueuePool(std::size_t num_flows)
      : head_(num_flows, kPoolNil), tail_(num_flows, kPoolNil), len_(num_flows, 0) {}

  [[nodiscard]] std::size_t num_flows() const { return head_.size(); }
  [[nodiscard]] bool empty(std::size_t flow) const { return len_[flow] == 0; }
  [[nodiscard]] std::size_t size(std::size_t flow) const { return len_[flow]; }

  void push_back(std::size_t flow, const Packet& p) {
    const std::uint32_t node = alloc_node();
    id_[node] = p.id.value();
    length_[node] = p.length;
    arrival_[node] = p.arrival;
    first_service_[node] = p.first_service;
    departure_[node] = p.departure;
    next_[node] = kPoolNil;
    if (tail_[flow] == kPoolNil) {
      head_[flow] = node;
    } else {
      next_[tail_[flow]] = node;
    }
    tail_[flow] = node;
    ++len_[flow];
  }

  /// Materializes the head packet (its flow field is the queue's flow).
  [[nodiscard]] Packet front(std::size_t flow) const {
    return packet_at(flow, head_node(flow));
  }

  Packet pop_front(std::size_t flow) {
    const std::uint32_t node = head_node(flow);
    const Packet p = packet_at(flow, node);
    head_[flow] = next_[node];
    if (head_[flow] == kPoolNil) tail_[flow] = kPoolNil;
    --len_[flow];
    free_node(node);
    return p;
  }

  /// --- Hot-path head-field access (no Packet materialization) ---------
  [[nodiscard]] Flits head_length(std::size_t flow) const {
    return length_[head_node(flow)];
  }
  [[nodiscard]] PacketId head_id(std::size_t flow) const {
    return PacketId(id_[head_node(flow)]);
  }
  [[nodiscard]] Cycle head_first_service(std::size_t flow) const {
    return first_service_[head_node(flow)];
  }
  void set_head_first_service(std::size_t flow, Cycle c) {
    first_service_[head_node(flow)] = c;
  }
  void set_head_departure(std::size_t flow, Cycle c) {
    departure_[head_node(flow)] = c;
  }

  /// --- Per-node stamps (timestamp disciplines tag queued packets) -----
  [[nodiscard]] double head_stamp(std::size_t flow) const {
    return stamp_[head_node(flow)];
  }
  void set_tail_stamp(std::size_t flow, double s) {
    WS_CHECK(tail_[flow] != kPoolNil);
    stamp_[tail_[flow]] = s;
  }
  template <typename Fn>
  void for_each_stamp(std::size_t flow, Fn&& fn) const {
    for (std::uint32_t n = head_[flow]; n != kPoolNil; n = next_[n])
      fn(stamp_[n]);
  }
  /// Overwrites the queue's stamps head-to-tail with `count` values from
  /// `next_value()`; `count` must equal the queue length.
  template <typename Fn>
  void assign_stamps(std::size_t flow, std::size_t count, Fn&& next_value) {
    WS_CHECK(count == len_[flow]);
    for (std::uint32_t n = head_[flow]; n != kPoolNil; n = next_[n])
      stamp_[n] = next_value();
  }

  /// --- Checkpointing ---------------------------------------------------
  /// Legacy v1 byte layout: u64 count, then each packet's fields in
  /// arrival order — indistinguishable from the seed's per-flow
  /// RingBuffer<Packet> serialization.
  void save_flow(SnapshotWriter& w, std::size_t flow) const;
  void restore_flow(SnapshotReader& r, std::size_t flow);

 private:
  [[nodiscard]] std::uint32_t head_node(std::size_t flow) const {
    WS_CHECK_MSG(len_[flow] > 0, "head of an empty flow queue");
    return head_[flow];
  }

  [[nodiscard]] Packet packet_at(std::size_t flow, std::uint32_t node) const {
    Packet p;
    p.id = PacketId(id_[node]);
    p.flow = FlowId(static_cast<FlowId::rep_type>(flow));
    p.length = length_[node];
    p.arrival = arrival_[node];
    p.first_service = first_service_[node];
    p.departure = departure_[node];
    return p;
  }

  std::uint32_t alloc_node() {
    if (free_head_ == kPoolNil) grow();
    const std::uint32_t node = free_head_;
    free_head_ = next_[node];
    return node;
  }

  void free_node(std::uint32_t node) {
    next_[node] = free_head_;
    free_head_ = node;
  }

  void grow();

  // Per-flow rows.
  std::vector<std::uint32_t> head_;
  std::vector<std::uint32_t> tail_;
  std::vector<std::uint32_t> len_;

  // Shared packet node store (parallel arrays; `next_` doubles as the
  // freelist link for free nodes).
  std::vector<std::uint64_t> id_;
  std::vector<Flits> length_;
  std::vector<Cycle> arrival_;
  std::vector<Cycle> first_service_;
  std::vector<Cycle> departure_;
  std::vector<double> stamp_;
  std::vector<std::uint32_t> next_;
  std::uint32_t free_head_ = kPoolNil;
};

/// The per-flow accounting rows shared by the round-robin family (ERR's
/// SC, DRR's deficit, SRR's credit — plus the weight/quantum column) and
/// the activation FIFO, in contiguous parallel arrays.
class FlowStatePool {
 public:
  FlowStatePool(std::size_t num_flows, double initial_weight)
      : sc_(num_flows, 0.0),
        weight_(num_flows, initial_weight),
        active_(num_flows) {}

  [[nodiscard]] std::size_t num_flows() const { return sc_.size(); }

  [[nodiscard]] double sc(std::size_t flow) const { return sc_[flow]; }
  void set_sc(std::size_t flow, double v) { sc_[flow] = v; }
  [[nodiscard]] double weight(std::size_t flow) const { return weight_[flow]; }
  void set_weight(std::size_t flow, double v) { weight_[flow] = v; }

  [[nodiscard]] ActiveFifo& active() { return active_; }
  [[nodiscard]] const ActiveFifo& active() const { return active_; }

  /// Bulk-serializes the accounting rows in the legacy per-flow
  /// interleaved layout: u64 flow count, then (sc, weight) per flow.
  void save_rows(SnapshotWriter& w) const;
  /// `what` names the discipline in the mismatch error, e.g. "ERR".
  void restore_rows(SnapshotReader& r, std::string_view what);

 private:
  std::vector<double> sc_;
  std::vector<double> weight_;
  ActiveFifo active_;
};

}  // namespace wormsched::core
