// Weighted Fair Queuing / PGPS (Demers, Keshav & Shenker, SIGCOMM 1989 —
// reference [6] of the paper; virtual-time form due to Parekh & Gallager).
//
// WFQ emulates the ideal GPS fluid server: each arriving packet is stamped
// with the virtual time at which GPS would finish it, and packets are
// served in stamp order.  Computing the stamps requires tracking GPS
// virtual time V(t), which advances at rate 1/Phi(t) where Phi is the
// total weight of GPS-backlogged flows — a piecewise-linear function whose
// breakpoints are GPS packet departures.  This is the "Fair Queuing" row
// of Table 1: fairness ~ m, but O(log n) work per packet and a fluid
// tracker on the side — the implementation cost ERR is designed to avoid.
#pragma once

#include <cstddef>
#include <cstdint>
#include <queue>
#include <string_view>
#include <vector>

#include "core/timestamp.hpp"

namespace wormsched::core {

class WfqScheduler final : public TimestampScheduler {
 public:
  explicit WfqScheduler(std::size_t num_flows);

  [[nodiscard]] std::string_view name() const override { return "WFQ"; }

  /// GPS virtual time after the most recent arrival (test hook).
  [[nodiscard]] double virtual_time() const { return virtual_time_; }

 protected:
  double stamp(Cycle now, FlowId flow, Flits length) override;
  void save_stamping(SnapshotWriter& w) const override;
  void restore_stamping(SnapshotReader& r) override;

 private:
  struct GpsDeparture {
    double finish;
    std::uint64_t sequence;
    FlowId flow;
  };
  struct Later {
    bool operator()(const GpsDeparture& a, const GpsDeparture& b) const {
      if (a.finish != b.finish) return a.finish > b.finish;
      return a.sequence > b.sequence;
    }
  };

  /// Advances V to real time `t`, retiring GPS departures that occur in
  /// (last_update_, t] and updating Phi at each.
  void advance_virtual_time(double t);

  double virtual_time_ = 0.0;
  double last_update_ = 0.0;  // real time of the last V update
  double phi_ = 0.0;          // total weight of GPS-backlogged flows
  std::vector<double> last_gps_finish_;
  std::vector<std::uint32_t> gps_pending_;  // packets not yet done in GPS
  std::priority_queue<GpsDeparture, std::vector<GpsDeparture>, Later>
      departures_;
  std::uint64_t next_sequence_ = 0;
};

}  // namespace wormsched::core
