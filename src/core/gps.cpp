#include "core/gps.hpp"

#include <algorithm>
#include <limits>

#include "common/assert.hpp"

namespace wormsched::core {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
// Backlogs below this are treated as drained (floating-point dust from
// repeated rate subtractions).
constexpr double kDrainEps = 1e-9;
}  // namespace

GpsReference::GpsReference(std::size_t num_flows, double capacity)
    : weights_(num_flows, 1.0),
      capacity_(capacity),
      backlog_(num_flows, 0.0),
      served_(num_flows, 0.0) {
  WS_CHECK(num_flows > 0);
  WS_CHECK(capacity > 0.0);
}

void GpsReference::set_weight(FlowId flow, double weight) {
  WS_CHECK_MSG(arrivals_.empty(), "set_weight after arrivals");
  WS_CHECK(weight > 0.0);
  weights_[flow.index()] = weight;
}

void GpsReference::add_arrival(double time, FlowId flow, double work) {
  WS_CHECK(!finalized_);
  WS_CHECK(work > 0.0);
  WS_CHECK_MSG(arrivals_.empty() || time >= arrivals_.back().time,
               "arrivals must be time-ordered");
  arrivals_.push_back(Arrival{time, flow, work});
}

void GpsReference::record_breakpoint(double t) {
  if (!times_.empty() && times_.back() == t) {
    // Overwrite: several events at the same instant collapse into one
    // breakpoint holding the final state.
    for (std::size_t i = 0; i < served_.size(); ++i)
      curves_[i].back() = served_[i];
    return;
  }
  times_.push_back(t);
  if (curves_.empty()) curves_.resize(served_.size());
  for (std::size_t i = 0; i < served_.size(); ++i)
    curves_[i].push_back(served_[i]);
}

void GpsReference::advance_to(double target) {
  WS_CHECK(target >= now_);
  while (now_ < target) {
    double phi = 0.0;
    for (std::size_t i = 0; i < backlog_.size(); ++i)
      if (backlog_[i] > kDrainEps) phi += weights_[i];
    if (phi == 0.0) {
      now_ = target;
      record_breakpoint(now_);
      return;
    }
    // Next internal event: the first backlogged flow to drain fully.
    double step = target - now_;
    for (std::size_t i = 0; i < backlog_.size(); ++i) {
      if (backlog_[i] <= kDrainEps) continue;
      const double rate = capacity_ * weights_[i] / phi;
      step = std::min(step, backlog_[i] / rate);
    }
    for (std::size_t i = 0; i < backlog_.size(); ++i) {
      if (backlog_[i] <= kDrainEps) continue;
      const double rate = capacity_ * weights_[i] / phi;
      const double amount = std::min(backlog_[i], rate * step);
      backlog_[i] -= amount;
      served_[i] += amount;
      if (backlog_[i] <= kDrainEps) backlog_[i] = 0.0;
    }
    now_ += step;
    record_breakpoint(now_);
  }
}

void GpsReference::finalize() {
  WS_CHECK(!finalized_);
  record_breakpoint(0.0);
  for (const Arrival& a : arrivals_) {
    advance_to(a.time);
    backlog_[a.flow.index()] += a.work;
    record_breakpoint(now_);
  }
  // Drain whatever remains.  The remaining backlog needs exactly
  // total/capacity more time; advance_to lands on the final drain event
  // exactly, so the last recorded breakpoint is the drain time.
  for (;;) {
    double total = 0.0;
    for (const double b : backlog_) total += b;
    if (total <= kDrainEps) break;
    advance_to(now_ + total / capacity_);
  }
  finalized_ = true;
}

double GpsReference::service(FlowId flow, double t) const {
  WS_CHECK_MSG(finalized_, "service queried before finalize()");
  const auto& curve = curves_[flow.index()];
  if (t <= times_.front()) return 0.0;
  if (t >= times_.back()) return curve.back();
  const auto it = std::upper_bound(times_.begin(), times_.end(), t);
  const auto hi = static_cast<std::size_t>(it - times_.begin());
  const std::size_t lo = hi - 1;
  const double span = times_[hi] - times_[lo];
  const double alpha = span == 0.0 ? 1.0 : (t - times_[lo]) / span;
  return curve[lo] + alpha * (curve[hi] - curve[lo]);
}

double GpsReference::drain_time() const {
  WS_CHECK(finalized_);
  return times_.empty() ? 0.0 : times_.back();
}

}  // namespace wormsched::core
