// Deficit Round Robin (Shreedhar & Varghese, ToN 1996) — the paper's
// closest O(1) competitor (Sec. 2, Table 1, Figs. 4(d) and 6).
//
// Each flow has a quantum Q_i = weight * base quantum and a deficit
// counter.  At a service opportunity the counter grows by the quantum and
// the flow sends head packets *only while they fit within the counter* —
// which requires knowing each head packet's length before serving it.
// That a-priori length requirement is why DRR cannot run in a wormhole
// switch; the class declares it through requires_apriori_length().
//
// Relative fairness: FM <= Max + 2m (paper Table 1), where Max is the
// largest packet that may ever arrive.  Work is O(1) per packet provided
// Q_i >= Max (otherwise an opportunity can pass without a transmission).
#pragma once

#include <cstddef>
#include <string_view>

#include "common/types.hpp"
#include "core/flow_state_pool.hpp"
#include "core/scheduler.hpp"

namespace wormsched::core {

struct DrrConfig {
  std::size_t num_flows = 0;
  /// Base quantum in flits; flow i's quantum is weight_i * quantum.
  /// For the O(1) bound choose quantum >= the largest possible packet.
  Flits quantum = 64;
};

/// The DRR state machine, decoupled from queue ownership (mirrors
/// ErrPolicy so the two can be compared like-for-like in benches).
class DrrPolicy {
 public:
  explicit DrrPolicy(const DrrConfig& config);

  void set_weight(FlowId flow, double weight);

  void flow_activated(FlowId flow);
  [[nodiscard]] bool has_active_flows() const {
    return !pool_.active().empty();
  }

  /// Pops the next flow and adds its quantum to its deficit counter.
  FlowId begin_opportunity();

  /// True if a head packet of `length` flits fits in the current flow's
  /// deficit counter.
  [[nodiscard]] bool may_serve(Flits length) const;

  /// Accounts a transmitted packet against the deficit counter.
  void charge(Flits length);

  /// `still_backlogged` false resets the deficit counter (the DRR rule
  /// that makes an idle flow forfeit unused deficit).
  void end_opportunity(bool still_backlogged);

  [[nodiscard]] bool in_opportunity() const { return in_opportunity_; }
  [[nodiscard]] FlowId current_flow() const { return current_; }
  [[nodiscard]] double deficit(FlowId flow) const {
    return pool_.sc(flow.index());
  }

  /// Checkpoint/restore: per-flow deficit/quantum, ActiveList order, and
  /// the in-opportunity latch.
  void save(SnapshotWriter& w) const;
  void restore(SnapshotReader& r);

 private:
  // SoA rows: sc column = deficit counter, weight column = quantum.
  FlowStatePool pool_;
  Flits base_quantum_;
  bool in_opportunity_ = false;
  FlowId current_;
};

class DrrScheduler final : public Scheduler {
 public:
  explicit DrrScheduler(const DrrConfig& config);

  [[nodiscard]] std::string_view name() const override { return "DRR"; }
  [[nodiscard]] bool requires_apriori_length() const override { return true; }
  void set_weight(FlowId flow, double weight) override;

  [[nodiscard]] DrrPolicy& policy() { return policy_; }

 protected:
  void on_flow_backlogged(FlowId flow) override;
  FlowId select_next_flow(Cycle now) override;
  void on_packet_complete(FlowId flow, Flits observed_length,
                          bool queue_now_empty) override;
  void save_discipline(SnapshotWriter& w) const override;
  void restore_discipline(SnapshotReader& r) override;

 private:
  DrrPolicy policy_;
};

}  // namespace wormsched::core
