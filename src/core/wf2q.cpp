#include "core/wf2q.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "common/snapshot.hpp"

namespace wormsched::core {

Wf2qPlusScheduler::Wf2qPlusScheduler(std::size_t num_flows)
    : Scheduler(num_flows),
      flows_(num_flows),
      pending_lengths_(num_flows),
      total_weight_(static_cast<double>(num_flows)) {}

void Wf2qPlusScheduler::set_weight(FlowId flow, double w) {
  total_weight_ += w - weight(flow);
  Scheduler::set_weight(flow, w);
}

void Wf2qPlusScheduler::install_head(FlowId flow, Flits length) {
  FlowState& state = flows_[flow.index()];
  WS_CHECK(!state.has_head);
  state.head_start = std::max(virtual_time_, state.last_finish);
  // F = S + L / share, with share = w_i / total weight; virtual time
  // advances by raw work (one unit per flit), so the share normalization
  // lives in the finish increment.
  state.head_finish = state.head_start + static_cast<double>(length) *
                                             total_weight_ / weight(flow);
  state.has_head = true;
  ++state.epoch;
  waiting_.push(
      HeapEntry{state.head_start, next_sequence_++, state.epoch, flow});
}

void Wf2qPlusScheduler::on_packet_enqueued(Cycle, FlowId flow, Flits length) {
  pending_lengths_[flow.index()].push_back(length);
  // The packet becomes the flow's head only if the flow had nothing queued
  // and nothing in service.
  if (pending_lengths_[flow.index()].size() == 1 && serving_ != flow)
    install_head(flow, length);
}

void Wf2qPlusScheduler::drop_stale(Heap& heap) {
  while (!heap.empty() && entry_stale(heap.top())) heap.pop();
}

void Wf2qPlusScheduler::promote_eligible() {
  for (;;) {
    drop_stale(waiting_);
    if (waiting_.empty()) break;
    const HeapEntry top = waiting_.top();
    if (top.key > virtual_time_) break;
    waiting_.pop();
    const FlowState& state = flows_[top.flow.index()];
    eligible_.push(
        HeapEntry{state.head_finish, next_sequence_++, top.epoch, top.flow});
  }
}

FlowId Wf2qPlusScheduler::select_next_flow(Cycle) {
  // V <- max(V + work, min start among backlogged heads).  The min-start
  // clamp only matters when no head is eligible; otherwise min S <= V.
  virtual_time_ += pending_work_;
  pending_work_ = 0.0;
  promote_eligible();
  drop_stale(eligible_);
  if (eligible_.empty()) {
    drop_stale(waiting_);
    WS_CHECK_MSG(!waiting_.empty(), "select with no backlogged flow");
    virtual_time_ = std::max(virtual_time_, waiting_.top().key);
    promote_eligible();
    drop_stale(eligible_);
  }
  WS_CHECK(!eligible_.empty());
  const HeapEntry chosen = eligible_.top();
  eligible_.pop();
  FlowState& state = flows_[chosen.flow.index()];
  state.has_head = false;  // the head is now in service
  ++state.epoch;
  serving_ = chosen.flow;
  return chosen.flow;
}

void Wf2qPlusScheduler::on_packet_complete(FlowId flow, Flits observed_length,
                                           bool queue_now_empty) {
  WS_CHECK(flow == serving_);
  serving_ = FlowId::invalid();
  FlowState& state = flows_[flow.index()];
  state.last_finish = state.head_finish;
  pending_work_ += static_cast<double>(observed_length);
  auto& lengths = pending_lengths_[flow.index()];
  (void)lengths.pop_front();
  WS_CHECK(lengths.empty() == queue_now_empty);
  if (!queue_now_empty) install_head(flow, lengths.front());
}

namespace {

// Heaps are serialized by draining a copy in (key, sequence) order — a
// strict total order, so pushing entries back in that order rebuilds a
// heap with identical pop behaviour.  Stale entries (epoch mismatch) are
// preserved: dropping them lazily is part of the observable algorithm.
template <typename Heap>
void save_heap(SnapshotWriter& w, const Heap& heap) {
  auto drain = heap;
  w.u64(drain.size());
  while (!drain.empty()) {
    const auto& e = drain.top();
    w.f64(e.key);
    w.u64(e.sequence);
    w.u64(e.epoch);
    w.u32(e.flow.value());
    drain.pop();
  }
}

template <typename Heap, typename Entry>
void restore_heap(SnapshotReader& r, Heap& heap, std::size_t num_flows) {
  heap = {};
  const std::uint64_t entries = r.u64();
  for (std::uint64_t i = 0; i < entries; ++i) {
    Entry e;
    e.key = r.f64();
    e.sequence = r.u64();
    e.epoch = r.u64();
    e.flow = FlowId{r.u32()};
    if (e.flow.index() >= num_flows)
      throw SnapshotError("WF2Q+ snapshot heap names an invalid flow");
    heap.push(e);
  }
}

}  // namespace

void Wf2qPlusScheduler::save_discipline(SnapshotWriter& w) const {
  w.u64(flows_.size());
  for (const FlowState& f : flows_) {
    w.f64(f.last_finish);
    w.f64(f.head_start);
    w.f64(f.head_finish);
    w.u64(f.epoch);
    w.b(f.has_head);
  }
  for (const auto& lengths : pending_lengths_)
    save_sequence(w, lengths, [](SnapshotWriter& o, Flits x) { o.i64(x); });
  save_heap(w, eligible_);
  save_heap(w, waiting_);
  w.f64(virtual_time_);
  w.f64(pending_work_);
  w.f64(total_weight_);
  w.u64(next_sequence_);
  w.u32(serving_.value());
}

void Wf2qPlusScheduler::restore_discipline(SnapshotReader& r) {
  const std::uint64_t n = r.u64();
  if (n != flows_.size())
    throw SnapshotError("WF2Q+ snapshot per-flow array size mismatch");
  for (FlowState& f : flows_) {
    f.last_finish = r.f64();
    f.head_start = r.f64();
    f.head_finish = r.f64();
    f.epoch = r.u64();
    f.has_head = r.b();
  }
  for (auto& lengths : pending_lengths_)
    restore_sequence(r, lengths, [](SnapshotReader& i) { return i.i64(); });
  restore_heap<Heap, HeapEntry>(r, eligible_, flows_.size());
  restore_heap<Heap, HeapEntry>(r, waiting_, flows_.size());
  virtual_time_ = r.f64();
  pending_work_ = r.f64();
  total_weight_ = r.f64();
  next_sequence_ = r.u64();
  serving_ = FlowId{r.u32()};
}

}  // namespace wormsched::core
