#include "core/wf2q.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace wormsched::core {

Wf2qPlusScheduler::Wf2qPlusScheduler(std::size_t num_flows)
    : Scheduler(num_flows),
      flows_(num_flows),
      pending_lengths_(num_flows),
      total_weight_(static_cast<double>(num_flows)) {}

void Wf2qPlusScheduler::set_weight(FlowId flow, double w) {
  total_weight_ += w - weight(flow);
  Scheduler::set_weight(flow, w);
}

void Wf2qPlusScheduler::install_head(FlowId flow, Flits length) {
  FlowState& state = flows_[flow.index()];
  WS_CHECK(!state.has_head);
  state.head_start = std::max(virtual_time_, state.last_finish);
  // F = S + L / share, with share = w_i / total weight; virtual time
  // advances by raw work (one unit per flit), so the share normalization
  // lives in the finish increment.
  state.head_finish = state.head_start + static_cast<double>(length) *
                                             total_weight_ / weight(flow);
  state.has_head = true;
  ++state.epoch;
  waiting_.push(
      HeapEntry{state.head_start, next_sequence_++, state.epoch, flow});
}

void Wf2qPlusScheduler::on_packet_enqueued(Cycle, FlowId flow, Flits length) {
  pending_lengths_[flow.index()].push_back(length);
  // The packet becomes the flow's head only if the flow had nothing queued
  // and nothing in service.
  if (pending_lengths_[flow.index()].size() == 1 && serving_ != flow)
    install_head(flow, length);
}

void Wf2qPlusScheduler::drop_stale(Heap& heap) {
  while (!heap.empty() && entry_stale(heap.top())) heap.pop();
}

void Wf2qPlusScheduler::promote_eligible() {
  for (;;) {
    drop_stale(waiting_);
    if (waiting_.empty()) break;
    const HeapEntry top = waiting_.top();
    if (top.key > virtual_time_) break;
    waiting_.pop();
    const FlowState& state = flows_[top.flow.index()];
    eligible_.push(
        HeapEntry{state.head_finish, next_sequence_++, top.epoch, top.flow});
  }
}

FlowId Wf2qPlusScheduler::select_next_flow(Cycle) {
  // V <- max(V + work, min start among backlogged heads).  The min-start
  // clamp only matters when no head is eligible; otherwise min S <= V.
  virtual_time_ += pending_work_;
  pending_work_ = 0.0;
  promote_eligible();
  drop_stale(eligible_);
  if (eligible_.empty()) {
    drop_stale(waiting_);
    WS_CHECK_MSG(!waiting_.empty(), "select with no backlogged flow");
    virtual_time_ = std::max(virtual_time_, waiting_.top().key);
    promote_eligible();
    drop_stale(eligible_);
  }
  WS_CHECK(!eligible_.empty());
  const HeapEntry chosen = eligible_.top();
  eligible_.pop();
  FlowState& state = flows_[chosen.flow.index()];
  state.has_head = false;  // the head is now in service
  ++state.epoch;
  serving_ = chosen.flow;
  return chosen.flow;
}

void Wf2qPlusScheduler::on_packet_complete(FlowId flow, Flits observed_length,
                                           bool queue_now_empty) {
  WS_CHECK(flow == serving_);
  serving_ = FlowId::invalid();
  FlowState& state = flows_[flow.index()];
  state.last_finish = state.head_finish;
  pending_work_ += static_cast<double>(observed_length);
  auto& lengths = pending_lengths_[flow.index()];
  (void)lengths.pop_front();
  WS_CHECK(lengths.empty() == queue_now_empty);
  if (!queue_now_empty) install_head(flow, lengths.front());
}

}  // namespace wormsched::core
