// Timestamp-based fair queuing: the O(log n) family of Table 1.
//
// These disciplines stamp every arriving packet with a virtual finish time
// and serve head packets in increasing stamp order.  They need the packet
// length at *arrival* to compute the stamp, so — like DRR — they cannot
// run in a wormhole switch (requires_apriori_length() is true).  They are
// in the library as the fairness/complexity comparison points for ERR:
// better fairness (FM ~ m for Fair Queuing per Table 1), but with a
// per-packet priority-queue cost of O(log n).
//
// TimestampScheduler provides the shared machinery (per-packet stamps in
// the scheduler's shared queue-node pool, the head-candidate heap,
// service hooks); SCFQ and Virtual Clock are the two concrete stamping
// rules.  WFQ/PGPS and WF2Q+ live in their own files
// because they additionally track GPS virtual time.
#pragma once

#include <cstddef>
#include <cstdint>
#include <queue>
#include <string_view>
#include <vector>

#include "common/epoch_bitset.hpp"
#include "common/types.hpp"
#include "core/scheduler.hpp"

namespace wormsched::core {

class TimestampScheduler : public Scheduler {
 public:
  explicit TimestampScheduler(std::size_t num_flows);

  [[nodiscard]] bool requires_apriori_length() const final { return true; }

 protected:
  /// Computes the virtual finish stamp of a packet of `length` flits
  /// arriving on `flow` at cycle `now`.
  virtual double stamp(Cycle now, FlowId flow, Flits length) = 0;

  /// The packet with stamp `tag` on `flow` enters service (SCFQ advances
  /// its self-clocked virtual time here).
  virtual void on_service_start(FlowId flow, double tag) {
    (void)flow;
    (void)tag;
  }

  /// Every queue just drained (used by SCFQ to reset virtual time).
  virtual void on_all_idle() {}

  void on_flow_backlogged(FlowId) final {}
  void on_packet_enqueued(Cycle now, FlowId flow, Flits length) final;
  FlowId select_next_flow(Cycle now) final;
  void on_packet_complete(FlowId flow, Flits observed_length,
                          bool queue_now_empty) final;

  /// Checkpoint of the shared machinery (per-packet stamps, candidate
  /// heap, sequence counter), then the stamping rule's own state via the
  /// save_stamping/restore_stamping hooks.  The heap is serialized by
  /// draining a copy in (tag, sequence) order; restoring by pushing in
  /// that order rebuilds an equivalent heap because the comparator is a
  /// strict total order (the sequence tie-break), so pop order — the only
  /// observable — is preserved exactly.
  void save_discipline(SnapshotWriter& w) const final;
  void restore_discipline(SnapshotReader& r) final;
  virtual void save_stamping(SnapshotWriter& w) const { (void)w; }
  virtual void restore_stamping(SnapshotReader& r) { (void)r; }

 private:
  struct HeapEntry {
    double tag;
    std::uint64_t sequence;  // FIFO tie-break for equal tags
    FlowId flow;
  };
  struct Later {
    bool operator()(const HeapEntry& a, const HeapEntry& b) const {
      if (a.tag != b.tag) return a.tag > b.tag;
      return a.sequence > b.sequence;
    }
  };

  void push_candidate(FlowId flow);

  // Stamps live in the queue-node pool (one double per queued packet);
  // heap membership is an epoch bitset, O(1) to clear on restore.
  EpochBitset in_heap_;
  std::priority_queue<HeapEntry, std::vector<HeapEntry>, Later> heap_;
  std::uint64_t next_sequence_ = 0;
  std::size_t backlogged_flows_ = 0;
  FlowId serving_ = FlowId::invalid();
};

/// Self-Clocked Fair Queuing (Golestani, INFOCOM 1994 — reference [9] of
/// the paper, the source of the relative fairness measure).  Virtual time
/// is the stamp of the packet in service; arriving packets get
/// F = max(v, F_prev_of_flow) + L / w.
class ScfqScheduler final : public TimestampScheduler {
 public:
  explicit ScfqScheduler(std::size_t num_flows);

  [[nodiscard]] std::string_view name() const override { return "SCFQ"; }

 protected:
  double stamp(Cycle now, FlowId flow, Flits length) override;
  void on_service_start(FlowId flow, double tag) override;
  void on_all_idle() override;
  void save_stamping(SnapshotWriter& w) const override;
  void restore_stamping(SnapshotReader& r) override;

 private:
  double virtual_time_ = 0.0;
  std::vector<double> last_finish_;
};

/// Start-time Fair Queuing (Goyal, Vin & Cheng, SIGCOMM 1996).  Packets
/// are served in order of virtual *start* time S = max(v, F_prev), with
/// v the start tag of the packet in service; immune to SCFQ's burst
///-ahead because a flow's next start never precedes its previous finish.
class StfqScheduler final : public TimestampScheduler {
 public:
  explicit StfqScheduler(std::size_t num_flows);

  [[nodiscard]] std::string_view name() const override { return "STFQ"; }

 protected:
  double stamp(Cycle now, FlowId flow, Flits length) override;
  void on_service_start(FlowId flow, double tag) override;
  void on_all_idle() override;
  void save_stamping(SnapshotWriter& w) const override;
  void restore_stamping(SnapshotReader& r) override;

 private:
  double virtual_time_ = 0.0;
  std::vector<double> last_finish_;
};

/// Virtual Clock (Zhang, SIGCOMM 1990 — reference [20]).  Stamps emulate
/// time-division multiplexing at each flow's reserved rate; unlike SCFQ
/// the clock never resets, so an idle flow's history is not forgiven.
class VirtualClockScheduler final : public TimestampScheduler {
 public:
  explicit VirtualClockScheduler(std::size_t num_flows);

  [[nodiscard]] std::string_view name() const override { return "VC"; }
  void set_weight(FlowId flow, double weight) override;

 protected:
  double stamp(Cycle now, FlowId flow, Flits length) override;
  void save_stamping(SnapshotWriter& w) const override;
  void restore_stamping(SnapshotReader& r) override;

 private:
  /// Reserved rate of `flow` in flits/cycle: weight_i / sum of weights
  /// (the output moves one flit per cycle).
  [[nodiscard]] double rate(FlowId flow) const;

  std::vector<double> aux_vc_;
  double total_weight_;
};

}  // namespace wormsched::core
