// Name-based scheduler factory used by the harness, benches and examples
// (`--scheduler err` on the command line).
#pragma once

#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

#include "common/types.hpp"
#include "core/scheduler.hpp"

namespace wormsched::core {

struct SchedulerParams {
  std::size_t num_flows = 1;
  /// DRR/SRR base quantum in flits; set to the scenario's maximum
  /// possible packet size for the O(1) guarantee (the DRR paper's
  /// requirement).
  Flits drr_quantum = 64;
  /// ERR/PERR idle-reset variant (DESIGN.md design decision 4).
  bool err_reset_on_idle = false;
  /// PERR: flow -> priority class (0 = highest); empty = all class 0.
  std::vector<std::uint32_t> perr_priorities;
};

/// Creates a scheduler by (case-insensitive) name: "err", "drr", "srr",
/// "perr", "pbrr", "fbrr", "fcfs", "scfq", "vc", "wfq", "wf2q+".
/// Returns nullptr for an unknown name.
[[nodiscard]] std::unique_ptr<Scheduler> make_scheduler(
    std::string_view name, const SchedulerParams& params);

/// All names make_scheduler accepts, in canonical (paper) spelling.
[[nodiscard]] const std::vector<std::string_view>& scheduler_names();

}  // namespace wormsched::core
