// The two plain round-robin baselines of Sec. 2:
//
//   * PBRR (Packet-Based Round Robin): one whole packet per flow visit.
//     Unfair when packet sizes differ across flows — a flow sending
//     packets twice as long gets twice the bandwidth (Fig. 4(a)).  Its
//     relative fairness measure is unbounded (Table 1).
//   * FBRR (Flit-Based Round Robin): one flit per flow visit.  The
//     fairest possible discipline at flit granularity (Fig. 4(b)), but
//     only applicable where flits carry flow tags (virtual channels); it
//     cannot schedule entry into a shared output queue of a wormhole
//     switch, where a packet's flits must stay contiguous.
#pragma once

#include <cstddef>
#include <optional>
#include <string_view>

#include "common/types.hpp"
#include "core/flow_state_pool.hpp"
#include "core/scheduler.hpp"

namespace wormsched::core {

/// FIFO of active flows shared by the plain round-robin disciplines.
class ActiveFlowRing {
 public:
  explicit ActiveFlowRing(std::size_t num_flows);

  void activate(FlowId flow);
  [[nodiscard]] bool empty() const { return fifo_.empty(); }
  [[nodiscard]] std::size_t size() const { return fifo_.size(); }
  /// Pops the head flow; the caller re-activates it if still backlogged.
  FlowId take_next();
  [[nodiscard]] bool contains(FlowId flow) const;

  /// Checkpoint/restore: the ring is serialized as its flow-id order.
  void save(SnapshotWriter& w) const;
  void restore(SnapshotReader& r);

 private:
  ActiveFifo fifo_;
};

class PbrrScheduler final : public Scheduler {
 public:
  explicit PbrrScheduler(std::size_t num_flows);

  [[nodiscard]] std::string_view name() const override { return "PBRR"; }

 protected:
  void on_flow_backlogged(FlowId flow) override;
  FlowId select_next_flow(Cycle now) override;
  void on_packet_complete(FlowId flow, Flits observed_length,
                          bool queue_now_empty) override;
  void save_discipline(SnapshotWriter& w) const override;
  void restore_discipline(SnapshotReader& r) override;

 private:
  ActiveFlowRing ring_;
  FlowId serving_;
};

class FbrrScheduler final : public Scheduler {
 public:
  explicit FbrrScheduler(std::size_t num_flows);

  [[nodiscard]] std::string_view name() const override { return "FBRR"; }

 protected:
  void on_flow_backlogged(FlowId flow) override;
  // FBRR interleaves flits directly; the packet-latching path is unused.
  std::optional<FlitEvent> pull_flit_impl(Cycle now) override;
  FlowId select_next_flow(Cycle now) override;
  void on_packet_complete(FlowId flow, Flits observed_length,
                          bool queue_now_empty) override;
  void save_discipline(SnapshotWriter& w) const override;
  void restore_discipline(SnapshotReader& r) override;

 private:
  ActiveFlowRing ring_;
};

}  // namespace wormsched::core
