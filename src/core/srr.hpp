// Surplus Round Robin (SRR) — the other O(1) discipline that can run in a
// wormhole switch.
//
// SRR (folklore variant of DRR, analysed e.g. by Adiseshu, Parulkar &
// Varghese for packet striping) gives each flow a fixed quantum per round
// and lets the deficit counter go *negative*: a flow keeps starting
// packets while its counter is positive, and the final packet's overshoot
// is charged against future rounds.  Like ERR — and unlike DRR — the
// decision to start a packet never needs the packet's length, so SRR is
// wormhole-deployable.
//
// The contrast with ERR is the point of the A6 ablation: SRR's quantum is
// a *fixed* configuration constant, so its per-round imbalance (and its
// latency) scales with the configured quantum even when actual packets
// are small, whereas ERR's allowance adapts to the surpluses that
// actually occurred (its fairness tracks m, the largest packet that
// actually arrived).
#pragma once

#include <cstddef>
#include <string_view>

#include "common/types.hpp"
#include "core/flow_state_pool.hpp"
#include "core/scheduler.hpp"

namespace wormsched::core {

struct SrrConfig {
  std::size_t num_flows = 0;
  /// Quantum added to a flow's credit each time it is visited.  For
  /// work-conservation it should be >= 1; fairness degrades as
  /// max(quantum, m) grows.
  Flits quantum = 64;
};

class SrrScheduler final : public Scheduler {
 public:
  explicit SrrScheduler(const SrrConfig& config);

  [[nodiscard]] std::string_view name() const override { return "SRR"; }
  void set_weight(FlowId flow, double weight) override;

  /// Introspection for tests: the flow's running credit (may be negative).
  [[nodiscard]] double credit(FlowId flow) const {
    return pool_.sc(flow.index());
  }

 protected:
  void on_flow_backlogged(FlowId flow) override;
  FlowId select_next_flow(Cycle now) override;
  void on_packet_complete(FlowId flow, Flits observed_length,
                          bool queue_now_empty) override;
  void save_discipline(SnapshotWriter& w) const override;
  void restore_discipline(SnapshotReader& r) override;

 private:
  // SoA rows: sc column = running credit, weight column = quantum.
  FlowStatePool pool_;
  double base_quantum_ = 0.0;
  bool in_opportunity_ = false;
  FlowId current_;
};

}  // namespace wormsched::core
