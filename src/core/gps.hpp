// Generalized Processor Sharing — the ideal (unimplementable) fluid
// reference of Sec. 2.  GPS serves every backlogged flow simultaneously at
// rate C * w_i / sum of backlogged weights; all fairness measures in the
// literature (including the paper's relative fairness measure) are
// justified by proximity to GPS.
//
// This is an *offline* reference: feed it the arrival trace of an
// experiment, finalize, then query each flow's cumulative fluid service at
// any time.  Property tests use it to bound how far ERR's discrete service
// strays from the ideal.
#pragma once

#include <cstddef>
#include <vector>

#include "common/types.hpp"

namespace wormsched::core {

class GpsReference {
 public:
  /// `capacity` is the server rate in flits per cycle (1.0 matches the
  /// discrete schedulers' one-flit-per-cycle output).
  explicit GpsReference(std::size_t num_flows, double capacity = 1.0);

  /// Must be called before the first arrival.
  void set_weight(FlowId flow, double weight);

  /// Arrival times must be non-decreasing.  `work` is the packet length in
  /// flits (fluid: fractional values are legal).
  void add_arrival(double time, FlowId flow, double work);

  /// Runs the fluid system to empty.  No arrivals may follow.
  void finalize();

  /// Cumulative fluid service delivered to `flow` by time `t`.
  /// Only valid after finalize().
  [[nodiscard]] double service(FlowId flow, double t) const;

  /// Time at which the last drop of backlog drains.
  [[nodiscard]] double drain_time() const;

  [[nodiscard]] std::size_t num_flows() const { return weights_.size(); }

 private:
  struct Arrival {
    double time;
    FlowId flow;
    double work;
  };

  /// Advances the fluid system to `t`, recording a breakpoint there.
  void advance_to(double t);
  void record_breakpoint(double t);

  std::vector<double> weights_;
  double capacity_;

  std::vector<Arrival> arrivals_;
  std::size_t next_arrival_ = 0;

  // Fluid state during the sweep.
  std::vector<double> backlog_;
  std::vector<double> served_;
  double now_ = 0.0;
  bool finalized_ = false;

  // Piecewise-linear service curves: times_[k] with served amount
  // curves_[flow][k]; linear in between.
  std::vector<double> times_;
  std::vector<std::vector<double>> curves_;
};

}  // namespace wormsched::core
