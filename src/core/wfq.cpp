#include "core/wfq.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace wormsched::core {

WfqScheduler::WfqScheduler(std::size_t num_flows)
    : TimestampScheduler(num_flows),
      last_gps_finish_(num_flows, 0.0),
      gps_pending_(num_flows, 0) {}

void WfqScheduler::advance_virtual_time(double t) {
  WS_CHECK(t >= last_update_);
  // Retire every GPS departure that falls before real time t.  Between
  // departures Phi is constant, so V is linear: V hits the next finish tag
  // F at real time last_update_ + (F - V) * Phi.
  while (!departures_.empty()) {
    const GpsDeparture top = departures_.top();
    WS_CHECK(phi_ > 0.0);
    const double reach =
        std::max(last_update_, last_update_ + (top.finish - virtual_time_) * phi_);
    if (reach > t) break;
    virtual_time_ = top.finish;
    last_update_ = reach;
    departures_.pop();
    auto& pending = gps_pending_[top.flow.index()];
    WS_CHECK(pending > 0);
    if (--pending == 0) phi_ -= weight(top.flow);
  }
  if (phi_ > 0.0) virtual_time_ += (t - last_update_) / phi_;
  last_update_ = t;
}

double WfqScheduler::stamp(Cycle now, FlowId flow, Flits length) {
  advance_virtual_time(static_cast<double>(now));
  auto& pending = gps_pending_[flow.index()];
  if (pending == 0) phi_ += weight(flow);
  // A GPS-idle flow starts from V (its stale last finish is < V); a
  // GPS-backlogged one continues from its last assigned finish.
  const double finish =
      std::max(last_gps_finish_[flow.index()], virtual_time_) +
      static_cast<double>(length) / weight(flow);
  last_gps_finish_[flow.index()] = finish;
  ++pending;
  departures_.push(GpsDeparture{finish, next_sequence_++, flow});
  return finish;
}

}  // namespace wormsched::core
