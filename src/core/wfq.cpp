#include "core/wfq.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "common/snapshot.hpp"

namespace wormsched::core {

WfqScheduler::WfqScheduler(std::size_t num_flows)
    : TimestampScheduler(num_flows),
      last_gps_finish_(num_flows, 0.0),
      gps_pending_(num_flows, 0) {}

void WfqScheduler::advance_virtual_time(double t) {
  WS_CHECK(t >= last_update_);
  // Retire every GPS departure that falls before real time t.  Between
  // departures Phi is constant, so V is linear: V hits the next finish tag
  // F at real time last_update_ + (F - V) * Phi.
  while (!departures_.empty()) {
    const GpsDeparture top = departures_.top();
    WS_CHECK(phi_ > 0.0);
    const double reach =
        std::max(last_update_, last_update_ + (top.finish - virtual_time_) * phi_);
    if (reach > t) break;
    virtual_time_ = top.finish;
    last_update_ = reach;
    departures_.pop();
    auto& pending = gps_pending_[top.flow.index()];
    WS_CHECK(pending > 0);
    if (--pending == 0) phi_ -= weight(top.flow);
  }
  if (phi_ > 0.0) virtual_time_ += (t - last_update_) / phi_;
  last_update_ = t;
}

double WfqScheduler::stamp(Cycle now, FlowId flow, Flits length) {
  advance_virtual_time(static_cast<double>(now));
  auto& pending = gps_pending_[flow.index()];
  if (pending == 0) phi_ += weight(flow);
  // A GPS-idle flow starts from V (its stale last finish is < V); a
  // GPS-backlogged one continues from its last assigned finish.
  const double finish =
      std::max(last_gps_finish_[flow.index()], virtual_time_) +
      static_cast<double>(length) / weight(flow);
  last_gps_finish_[flow.index()] = finish;
  ++pending;
  departures_.push(GpsDeparture{finish, next_sequence_++, flow});
  return finish;
}

void WfqScheduler::save_stamping(SnapshotWriter& w) const {
  w.f64(virtual_time_);
  w.f64(last_update_);
  w.f64(phi_);
  save_doubles(w, last_gps_finish_);
  w.u64(gps_pending_.size());
  for (const std::uint32_t p : gps_pending_) w.u32(p);
  auto drain = departures_;  // copy; pops in (finish, sequence) order
  w.u64(drain.size());
  while (!drain.empty()) {
    const GpsDeparture& d = drain.top();
    w.f64(d.finish);
    w.u64(d.sequence);
    w.u32(d.flow.value());
    drain.pop();
  }
  w.u64(next_sequence_);
}

void WfqScheduler::restore_stamping(SnapshotReader& r) {
  virtual_time_ = r.f64();
  last_update_ = r.f64();
  phi_ = r.f64();
  restore_doubles(r, last_gps_finish_);
  const std::uint64_t n = r.u64();
  if (last_gps_finish_.size() != num_flows() || n != num_flows())
    throw SnapshotError("WFQ snapshot per-flow array size mismatch");
  for (std::uint32_t& p : gps_pending_) p = r.u32();
  departures_ = {};
  const std::uint64_t entries = r.u64();
  for (std::uint64_t i = 0; i < entries; ++i) {
    GpsDeparture d;
    d.finish = r.f64();
    d.sequence = r.u64();
    d.flow = FlowId{r.u32()};
    if (d.flow.index() >= num_flows())
      throw SnapshotError("WFQ snapshot GPS queue names an invalid flow");
    departures_.push(d);
  }
  next_sequence_ = r.u64();
}

}  // namespace wormsched::core
