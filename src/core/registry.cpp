#include "core/registry.hpp"

#include <algorithm>
#include <cctype>
#include <string>

#include "core/drr.hpp"
#include "core/err.hpp"
#include "core/fcfs.hpp"
#include "core/perr.hpp"
#include "core/round_robin.hpp"
#include "core/srr.hpp"
#include "core/timestamp.hpp"
#include "core/wf2q.hpp"
#include "core/wfq.hpp"
#include "core/wrr.hpp"

namespace wormsched::core {

std::unique_ptr<Scheduler> make_scheduler(std::string_view name,
                                          const SchedulerParams& params) {
  std::string lower(name);
  std::transform(lower.begin(), lower.end(), lower.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  if (lower == "err")
    return std::make_unique<ErrScheduler>(
        ErrConfig{params.num_flows, params.err_reset_on_idle});
  if (lower == "drr")
    return std::make_unique<DrrScheduler>(
        DrrConfig{params.num_flows, params.drr_quantum});
  if (lower == "srr")
    return std::make_unique<SrrScheduler>(
        SrrConfig{params.num_flows, params.drr_quantum});
  if (lower == "perr")
    return std::make_unique<PerrScheduler>(PerrConfig{
        params.num_flows, params.perr_priorities, params.err_reset_on_idle});
  if (lower == "pbrr") return std::make_unique<PbrrScheduler>(params.num_flows);
  if (lower == "wrr") return std::make_unique<WrrScheduler>(params.num_flows);
  if (lower == "fbrr") return std::make_unique<FbrrScheduler>(params.num_flows);
  if (lower == "fcfs") return std::make_unique<FcfsScheduler>(params.num_flows);
  if (lower == "scfq") return std::make_unique<ScfqScheduler>(params.num_flows);
  if (lower == "stfq") return std::make_unique<StfqScheduler>(params.num_flows);
  if (lower == "vc" || lower == "vclock")
    return std::make_unique<VirtualClockScheduler>(params.num_flows);
  if (lower == "wfq") return std::make_unique<WfqScheduler>(params.num_flows);
  if (lower == "wf2q+" || lower == "wf2q")
    return std::make_unique<Wf2qPlusScheduler>(params.num_flows);
  return nullptr;
}

const std::vector<std::string_view>& scheduler_names() {
  static const std::vector<std::string_view> names = {
      "ERR",  "DRR",  "SRR",  "PERR", "PBRR", "WRR",  "FBRR",
      "FCFS", "SCFQ", "STFQ", "VC",   "WFQ",  "WF2Q+"};
  return names;
}

}  // namespace wormsched::core
