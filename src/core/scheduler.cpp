#include "core/scheduler.hpp"

#include "common/assert.hpp"
#include "common/snapshot.hpp"

namespace wormsched::core {

namespace {

// Section tags inside a scheduler snapshot.
constexpr std::uint32_t kSchedBaseTag = 0x53424153;   // "SABS"
constexpr std::uint32_t kSchedDiscTag = 0x53444953;   // "SIDS"

}  // namespace

void Scheduler::save_state(SnapshotWriter& w) const {
  w.begin_section(kSchedBaseTag);
  w.u64(queues_.num_flows());
  for (std::size_t f = 0; f < queues_.num_flows(); ++f)
    queues_.save_flow(w, f);
  save_doubles(w, weights_);
  save_sequence(w, flits_sent_of_head_,
                [](SnapshotWriter& o, Flits f) { o.i64(f); });
  w.b(latched_flow_.has_value());
  w.u32(latched_flow_ ? latched_flow_->value() : 0);
  w.i64(backlog_flits_);
  w.end_section();
  w.begin_section(kSchedDiscTag);
  save_discipline(w);
  w.end_section();
}

void Scheduler::restore_state(SnapshotReader& r) {
  r.enter_section(kSchedBaseTag);
  const std::uint64_t n = r.u64();
  if (n != queues_.num_flows())
    throw SnapshotError("scheduler snapshot has " + std::to_string(n) +
                        " flows, this scheduler has " +
                        std::to_string(queues_.num_flows()));
  for (std::size_t f = 0; f < queues_.num_flows(); ++f)
    queues_.restore_flow(r, f);
  restore_doubles(r, weights_);
  restore_sequence(r, flits_sent_of_head_,
                   [](SnapshotReader& i) { return i.i64(); });
  if (weights_.size() != queues_.num_flows() ||
      flits_sent_of_head_.size() != queues_.num_flows())
    throw SnapshotError("scheduler snapshot per-flow arrays disagree");
  const bool latched = r.b();
  const std::uint32_t latched_value = r.u32();
  latched_flow_ =
      latched ? std::optional<FlowId>(FlowId(latched_value)) : std::nullopt;
  backlog_flits_ = r.i64();
  r.leave_section();
  r.enter_section(kSchedDiscTag);
  restore_discipline(r);
  r.leave_section();
}

Scheduler::Scheduler(std::size_t num_flows)
    : queues_(num_flows),
      weights_(num_flows, 1.0),
      flits_sent_of_head_(num_flows, 0) {
  WS_CHECK_MSG(num_flows > 0, "scheduler needs at least one flow");
}

void Scheduler::set_weight(FlowId flow, double w) {
  WS_CHECK_MSG(w > 0.0, "flow weight must be positive");
  weights_[flow.index()] = w;
}

void Scheduler::enqueue(Cycle now, Packet packet) {
  WS_CHECK(packet.flow.index() < queues_.num_flows());
  WS_CHECK_MSG(packet.length > 0, "zero-length packet");
  const std::size_t f = packet.flow.index();
  const bool was_idle = queues_.empty(f);
  packet.arrival = now;
  backlog_flits_ += packet.length;
  if (observer_ != nullptr) observer_->on_packet_arrival(now, packet);
  queues_.push_back(f, packet);
  if (was_idle) on_flow_backlogged(packet.flow);
  on_packet_enqueued(now, packet.flow,
                     requires_apriori_length() ? packet.length : Flits{-1});
}

std::size_t Scheduler::queue_length(FlowId flow) const {
  return queues_.size(flow.index());
}

Flits Scheduler::head_packet_length(FlowId flow) const {
  WS_CHECK_MSG(requires_apriori_length(),
               "length oracle used by a discipline that did not declare "
               "requires_apriori_length()");
  WS_CHECK(!queues_.empty(flow.index()));
  return queues_.head_length(flow.index());
}

std::optional<FlitEvent> Scheduler::pull_flit(Cycle now) {
  if (backlog_flits_ == 0) return std::nullopt;
  return pull_flit_impl(now);
}

std::optional<FlitEvent> Scheduler::pull_flit_impl(Cycle now) {
  if (!latched_flow_) latched_flow_ = select_next_flow(now);
  const FlowId flow = *latched_flow_;
  const EmitResult r = emit_flit_from(now, flow);
  if (r.packet_completed) {
    latched_flow_.reset();
    on_packet_complete(flow, r.observed_length, r.queue_now_empty);
  }
  return r.flit;
}

Scheduler::EmitResult Scheduler::emit_flit_from(Cycle now, FlowId flow) {
  const std::size_t f = flow.index();
  WS_CHECK_MSG(!queues_.empty(f),
               "discipline selected a flow with an empty queue");
  const Flits head_length = queues_.head_length(f);
  Flits& progress = flits_sent_of_head_[f];
  WS_CHECK(progress < head_length);

  if (progress == 0) queues_.set_head_first_service(f, now);

  EmitResult result;
  result.flit = FlitEvent{
      .flow = flow,
      .packet = queues_.head_id(f),
      .index = progress,
      .is_head = progress == 0,
      .is_tail = progress + 1 == head_length,
  };
  ++progress;
  WS_CHECK(backlog_flits_ > 0);
  --backlog_flits_;
  if (observer_ != nullptr) observer_->on_flit(now, result.flit);

  if (result.flit.is_tail) {
    queues_.set_head_departure(f, now);
    result.packet_completed = true;
    result.observed_length = head_length;
    const Packet completed = queues_.pop_front(f);
    progress = 0;
    result.queue_now_empty = queues_.empty(f);
    if (observer_ != nullptr) observer_->on_packet_departure(now, completed);
  }
  return result;
}

}  // namespace wormsched::core
