#include "core/scheduler.hpp"

#include "common/assert.hpp"
#include "common/snapshot.hpp"

namespace wormsched::core {

namespace {

// Section tags inside a scheduler snapshot.
constexpr std::uint32_t kSchedBaseTag = 0x53424153;   // "SABS"
constexpr std::uint32_t kSchedDiscTag = 0x53444953;   // "SIDS"

void save_packet(SnapshotWriter& w, const Packet& p) {
  w.u64(p.id.value());
  w.u32(p.flow.value());
  w.i64(p.length);
  w.u64(p.arrival);
  w.u64(p.first_service);
  w.u64(p.departure);
}

Packet load_packet(SnapshotReader& r) {
  Packet p;
  p.id = PacketId(r.u64());
  p.flow = FlowId(r.u32());
  p.length = r.i64();
  p.arrival = r.u64();
  p.first_service = r.u64();
  p.departure = r.u64();
  return p;
}

}  // namespace

void Scheduler::save_state(SnapshotWriter& w) const {
  w.begin_section(kSchedBaseTag);
  w.u64(queues_.size());
  for (const auto& q : queues_) save_sequence(w, q, save_packet);
  save_doubles(w, weights_);
  save_sequence(w, flits_sent_of_head_,
                [](SnapshotWriter& o, Flits f) { o.i64(f); });
  w.b(latched_flow_.has_value());
  w.u32(latched_flow_ ? latched_flow_->value() : 0);
  w.i64(backlog_flits_);
  w.end_section();
  w.begin_section(kSchedDiscTag);
  save_discipline(w);
  w.end_section();
}

void Scheduler::restore_state(SnapshotReader& r) {
  r.enter_section(kSchedBaseTag);
  const std::uint64_t n = r.u64();
  if (n != queues_.size())
    throw SnapshotError("scheduler snapshot has " + std::to_string(n) +
                        " flows, this scheduler has " +
                        std::to_string(queues_.size()));
  for (auto& q : queues_) restore_sequence(r, q, load_packet);
  restore_doubles(r, weights_);
  restore_sequence(r, flits_sent_of_head_,
                   [](SnapshotReader& i) { return i.i64(); });
  if (weights_.size() != queues_.size() ||
      flits_sent_of_head_.size() != queues_.size())
    throw SnapshotError("scheduler snapshot per-flow arrays disagree");
  const bool latched = r.b();
  const std::uint32_t latched_value = r.u32();
  latched_flow_ =
      latched ? std::optional<FlowId>(FlowId(latched_value)) : std::nullopt;
  backlog_flits_ = r.i64();
  r.leave_section();
  r.enter_section(kSchedDiscTag);
  restore_discipline(r);
  r.leave_section();
}

Scheduler::Scheduler(std::size_t num_flows)
    : queues_(num_flows),
      weights_(num_flows, 1.0),
      flits_sent_of_head_(num_flows, 0) {
  WS_CHECK_MSG(num_flows > 0, "scheduler needs at least one flow");
}

void Scheduler::set_weight(FlowId flow, double w) {
  WS_CHECK_MSG(w > 0.0, "flow weight must be positive");
  weights_[flow.index()] = w;
}

void Scheduler::enqueue(Cycle now, Packet packet) {
  WS_CHECK(packet.flow.index() < queues_.size());
  WS_CHECK_MSG(packet.length > 0, "zero-length packet");
  auto& q = queues_[packet.flow.index()];
  const bool was_idle = q.empty();
  packet.arrival = now;
  backlog_flits_ += packet.length;
  if (observer_ != nullptr) observer_->on_packet_arrival(now, packet);
  q.push_back(packet);
  if (was_idle) on_flow_backlogged(packet.flow);
  on_packet_enqueued(now, packet.flow,
                     requires_apriori_length() ? packet.length : Flits{-1});
}

std::size_t Scheduler::queue_length(FlowId flow) const {
  return queues_[flow.index()].size();
}

Flits Scheduler::head_packet_length(FlowId flow) const {
  WS_CHECK_MSG(requires_apriori_length(),
               "length oracle used by a discipline that did not declare "
               "requires_apriori_length()");
  const auto& q = queues_[flow.index()];
  WS_CHECK(!q.empty());
  return q.front().length;
}

std::optional<FlitEvent> Scheduler::pull_flit(Cycle now) {
  if (backlog_flits_ == 0) return std::nullopt;
  return pull_flit_impl(now);
}

std::optional<FlitEvent> Scheduler::pull_flit_impl(Cycle now) {
  if (!latched_flow_) latched_flow_ = select_next_flow(now);
  const FlowId flow = *latched_flow_;
  const EmitResult r = emit_flit_from(now, flow);
  if (r.packet_completed) {
    latched_flow_.reset();
    on_packet_complete(flow, r.observed_length, r.queue_now_empty);
  }
  return r.flit;
}

Scheduler::EmitResult Scheduler::emit_flit_from(Cycle now, FlowId flow) {
  auto& q = queues_[flow.index()];
  WS_CHECK_MSG(!q.empty(), "discipline selected a flow with an empty queue");
  Packet& head = q.front();
  Flits& progress = flits_sent_of_head_[flow.index()];
  WS_CHECK(progress < head.length);

  if (progress == 0) head.first_service = now;

  EmitResult result;
  result.flit = FlitEvent{
      .flow = flow,
      .packet = head.id,
      .index = progress,
      .is_head = progress == 0,
      .is_tail = progress + 1 == head.length,
  };
  ++progress;
  WS_CHECK(backlog_flits_ > 0);
  --backlog_flits_;
  if (observer_ != nullptr) observer_->on_flit(now, result.flit);

  if (result.flit.is_tail) {
    head.departure = now;
    result.packet_completed = true;
    result.observed_length = head.length;
    const Packet completed = q.pop_front();
    progress = 0;
    result.queue_now_empty = q.empty();
    if (observer_ != nullptr) observer_->on_packet_departure(now, completed);
  }
  return result;
}

}  // namespace wormsched::core
