#include "core/scheduler.hpp"

#include "common/assert.hpp"

namespace wormsched::core {

Scheduler::Scheduler(std::size_t num_flows)
    : queues_(num_flows),
      weights_(num_flows, 1.0),
      flits_sent_of_head_(num_flows, 0) {
  WS_CHECK_MSG(num_flows > 0, "scheduler needs at least one flow");
}

void Scheduler::set_weight(FlowId flow, double w) {
  WS_CHECK_MSG(w > 0.0, "flow weight must be positive");
  weights_[flow.index()] = w;
}

void Scheduler::enqueue(Cycle now, Packet packet) {
  WS_CHECK(packet.flow.index() < queues_.size());
  WS_CHECK_MSG(packet.length > 0, "zero-length packet");
  auto& q = queues_[packet.flow.index()];
  const bool was_idle = q.empty();
  packet.arrival = now;
  backlog_flits_ += packet.length;
  if (observer_ != nullptr) observer_->on_packet_arrival(now, packet);
  q.push_back(packet);
  if (was_idle) on_flow_backlogged(packet.flow);
  on_packet_enqueued(now, packet.flow,
                     requires_apriori_length() ? packet.length : Flits{-1});
}

std::size_t Scheduler::queue_length(FlowId flow) const {
  return queues_[flow.index()].size();
}

Flits Scheduler::head_packet_length(FlowId flow) const {
  WS_CHECK_MSG(requires_apriori_length(),
               "length oracle used by a discipline that did not declare "
               "requires_apriori_length()");
  const auto& q = queues_[flow.index()];
  WS_CHECK(!q.empty());
  return q.front().length;
}

std::optional<FlitEvent> Scheduler::pull_flit(Cycle now) {
  if (backlog_flits_ == 0) return std::nullopt;
  return pull_flit_impl(now);
}

std::optional<FlitEvent> Scheduler::pull_flit_impl(Cycle now) {
  if (!latched_flow_) latched_flow_ = select_next_flow(now);
  const FlowId flow = *latched_flow_;
  const EmitResult r = emit_flit_from(now, flow);
  if (r.packet_completed) {
    latched_flow_.reset();
    on_packet_complete(flow, r.observed_length, r.queue_now_empty);
  }
  return r.flit;
}

Scheduler::EmitResult Scheduler::emit_flit_from(Cycle now, FlowId flow) {
  auto& q = queues_[flow.index()];
  WS_CHECK_MSG(!q.empty(), "discipline selected a flow with an empty queue");
  Packet& head = q.front();
  Flits& progress = flits_sent_of_head_[flow.index()];
  WS_CHECK(progress < head.length);

  if (progress == 0) head.first_service = now;

  EmitResult result;
  result.flit = FlitEvent{
      .flow = flow,
      .packet = head.id,
      .index = progress,
      .is_head = progress == 0,
      .is_tail = progress + 1 == head.length,
  };
  ++progress;
  WS_CHECK(backlog_flits_ > 0);
  --backlog_flits_;
  if (observer_ != nullptr) observer_->on_flit(now, result.flit);

  if (result.flit.is_tail) {
    head.departure = now;
    result.packet_completed = true;
    result.observed_length = head.length;
    const Packet completed = q.pop_front();
    progress = 0;
    result.queue_now_empty = q.empty();
    if (observer_ != nullptr) observer_->on_packet_departure(now, completed);
  }
  return result;
}

}  // namespace wormsched::core
